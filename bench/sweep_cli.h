#pragma once

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "campaign/coordinator.h"
#include "campaign/report.h"
#include "sweep/report.h"
#include "sweep/runner.h"

/// Shared driver for the sweep-campaign binaries: sweep_runner and the
/// experiment mains rewritten on the engine (exp_e2_scaling_n,
/// exp_e8_robustness) all parse flags, run the campaign, print the
/// per-cell table, and emit BENCH_sweep_<name>.json + long-form CSV
/// through this one function.
namespace mcs::bench {

/// Runner-owned flags every sweep binary reserves; any other --key=value
/// is applied as a sweep override (fixed value, or a sweep./zip. axis).
inline const std::vector<std::string>& sweepReservedFlags() {
  static const std::vector<std::string> kReserved = {
      "list",    "cells", "dry-run", "sweep",   "preset",  "shard",
      "threads", "out-dir", "out",   "csv",     "resume",  "metrics",
      "probes",  "trace-out", "no-heartbeat", "workers", "fault-kill-cell",
      "store", "store-strip-wall"};
  return kReserved;
}

/// Applies every non-reserved --key=value flag to the sweep spec, in
/// command-line order (key order is load-bearing: a `--range=0.8` after
/// `--sweep.alpha=...` must rescale with the cell's alpha).
inline bool applySweepFlagOverrides(SweepSpec& spec, const Args& args, std::string& err) {
  for (const auto& [key, value] : args.namedOrdered()) {
    bool reserved = false;
    for (const std::string& r : sweepReservedFlags()) {
      if (key == r) {
        reserved = true;
        break;
      }
    }
    if (reserved) continue;
    if (!applySweepOverride(spec, key, value, err)) return false;
  }
  return true;
}

/// Runs `spec` honoring --shard/--threads/--out-dir/--resume/--csv and
/// --cells (list the expansion without running).  `csvPath` overrides the
/// CSV destination (multi-campaign binaries derive one per campaign so a
/// shared --csv value is not overwritten); empty falls back to --csv,
/// then to `<out-dir>/BENCH_sweep_<name>.csv`.  Returns the process exit
/// code: 0 success, 1 failures or unwritable reports, 2 usage.
inline int runSweepCampaignCli(const SweepSpec& spec, const Args& args,
                               const std::string& csvPath = "") {
  CampaignOptions opts;
  opts.threads = static_cast<int>(args.getInt(
      "threads", static_cast<long>(std::max(2u, std::thread::hardware_concurrency()))));
  // --out-dir is the documented flag; --out stays as a compatibility
  // alias for the scenario_runner convention.
  opts.outDir = args.get("out-dir", args.get("out", "."));
  opts.resume = args.getBool("resume");
  const std::string shard = args.get("shard");
  std::string err;
  if (!shard.empty() && !parseShard(shard, opts.shardIndex, opts.shardCount, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }

  if (args.getBool("cells") || args.getBool("dry-run")) {
    std::vector<SweepCell> cells;
    if (!expandSweep(spec, cells, err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    const bool dryRun = args.getBool("dry-run");
    for (const SweepCell& cell : cells) {
      std::printf("%-6d %-5s %s\n", cell.index,
                  cellInShard(cell.index, opts.shardIndex, opts.shardCount) ? "run" : "skip",
                  cell.label.c_str());
      if (dryRun) {
        // The fully-resolved cell spec, indented: exactly what the seed
        // batch would run (debug sweep files without paying for a run).
        const std::string kv = scenarioToKeyValues(cell.spec);
        std::size_t lineStart = 0;
        while (lineStart < kv.size()) {
          std::size_t lineEnd = kv.find('\n', lineStart);
          if (lineEnd == std::string::npos) lineEnd = kv.size();
          std::printf("       %.*s\n", static_cast<int>(lineEnd - lineStart),
                      kv.c_str() + lineStart);
          lineStart = lineEnd + 1;
        }
      }
    }
    return 0;
  }

  // --metrics / --trace-out arm the engine telemetry (per-cell "telemetry"
  // blocks + counter rows in the CSV); the stderr progress heartbeat is on
  // for interactive campaigns unless --no-heartbeat.
  armTelemetryCli(args);
  opts.heartbeat = !args.getBool("no-heartbeat");

  // --store[=path] streams every cell into the columnar campaign store
  // (query it with sweep_query); bare --store derives the path from the
  // campaign name next to the JSON report.
  if (args.has("store")) {
    const std::string storeArg = args.get("store");
    opts.storePath = (storeArg.empty() || storeArg == "1")
                         ? opts.outDir + "/BENCH_sweep_" + spec.name + ".store"
                         : storeArg;
    opts.storeStripWall = args.getBool("store-strip-wall");
  }

  header("sweep: " + spec.name, describeSweep(spec));
  row("%-6s %-32s %10s %9s %5s %8s  %s", "cell", "label", "slots", "dec.rate", "ok",
      "wall(s)", "status");
  opts.onCell = [](const SweepCell& cell, bool cached) {
    if (cached) row("%-6d %-32s %46s", cell.index, cell.label.c_str(), "cached");
  };

  // --workers N selects the multi-process work queue (0 = hardware
  // concurrency); without the flag the in-process runner below is
  // untouched.  Per-cell results and reports are byte-identical either
  // way (wall times aside), so the same baselines gate both modes.
  if (args.has("workers")) {
    campaign::WorkQueueOptions wq;
    wq.workers = static_cast<int>(args.getInt("workers", 0));
    // Process-level parallelism replaces lane parallelism: one lane per
    // worker unless --threads asks for more.
    wq.threadsPerWorker = static_cast<int>(args.getInt("threads", 1));
    wq.shardIndex = opts.shardIndex;
    wq.shardCount = opts.shardCount;
    wq.resume = opts.resume;
    wq.outDir = opts.outDir;
    wq.heartbeat = opts.heartbeat;
    wq.faultKillCell = static_cast<int>(args.getInt("fault-kill-cell", -1));
    wq.onCell = opts.onCell;
    wq.storePath = opts.storePath;
    wq.storeStripWall = opts.storeStripWall;
    // Under --workers the per-process trace rings live in the workers;
    // the coordinator merges them into --trace-out itself (pid = worker
    // id), so finishTelemetryCli must not overwrite it with the
    // coordinator's own (empty) ring.
    wq.traceOut = args.get("trace-out");

    campaign::WorkQueueCampaign wqc;
    if (!campaign::runCampaignWorkQueue(spec, wq, wqc, err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    for (const campaign::CellRecord& rec : wqc.cells) {
      row("%-6d %-32s %10.0f %9.3f %2d/%-2d %8.2f  %s", rec.cell.index,
          rec.cell.label.c_str(), rec.slotsMean, rec.decodeRateMean, rec.delivered,
          rec.cell.spec.seeds, rec.wallMeanSec, rec.fromCache ? "cached" : "ran");
    }
    row("%s", "");
    row("campaign: %zu/%d cells (shard %d/%d), %d cached, %d seed failures, %.2fs",
        wqc.cells.size(), wqc.totalCells, wqc.shardIndex, wqc.shardCount, wqc.cachedCells(),
        wqc.failures(), wqc.wallSec);
    row("work queue: %llu leases, %llu requeues, %llu worker deaths, peak %zu pending "
        "reduce nodes",
        static_cast<unsigned long long>(wqc.leases),
        static_cast<unsigned long long>(wqc.requeues),
        static_cast<unsigned long long>(wqc.workerDeaths), wqc.peakPendingNodes);

    std::string jsonPath;
    if (!campaign::writeWorkQueueCampaignReport(wqc, wq.outDir, wq.outDir, jsonPath, err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %s\n", jsonPath.c_str());
    std::string csv = csvPath;
    if (csv.empty()) csv = args.get("csv");
    if (csv.empty()) csv = wq.outDir + "/BENCH_sweep_" + wqc.name + ".csv";
    if (!campaign::writeWorkQueueCampaignCsv(wqc, wq.outDir, csv, err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv.c_str());
    if (!wq.storePath.empty()) std::printf("wrote %s\n", wq.storePath.c_str());
    if (!wq.traceOut.empty() && telemetry::traceEnabled()) {
      std::printf("wrote %s (merged worker traces)\n", wq.traceOut.c_str());
    }

    if (!finishTelemetryCli(args, wqc.wallSec, /*writeTrace=*/wq.traceOut.empty())) return 1;
    return wqc.failures() > 0 ? 1 : 0;
  }

  CampaignResult campaign;
  if (!runCampaign(spec, opts, campaign, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  for (const CellResult& cell : campaign.cells) {
    const Summary slots = cell.batch.summarizeSlots();
    const Summary rate = cell.batch.summarizeDecodeRate();
    const Summary wall = cell.batch.summarizeWallSec();
    row("%-6d %-32s %10.0f %9.3f %2d/%-2d %8.2f  %s", cell.cell.index,
        cell.cell.label.c_str(), slots.mean, rate.mean, cell.batch.deliveredCount(),
        cell.cell.spec.seeds, wall.mean, cell.fromCache ? "cached" : "ran");
  }
  row("%s", "");
  row("campaign: %zu/%d cells (shard %d/%d), %d cached, %d seed failures, %.2fs",
      campaign.cells.size(), campaign.totalCells, campaign.shardIndex, campaign.shardCount,
      campaign.cachedCells(), campaign.failures(), campaign.wallSec);

  std::string jsonPath;
  if (!writeCampaignReport(campaign, opts.outDir, jsonPath, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  std::printf("wrote %s\n", jsonPath.c_str());
  std::string csv = csvPath;
  if (csv.empty()) csv = args.get("csv");
  if (csv.empty()) csv = opts.outDir + "/BENCH_sweep_" + campaign.name + ".csv";
  if (!writeCampaignCsv(campaign, csv, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  std::printf("wrote %s\n", csv.c_str());
  if (!opts.storePath.empty()) std::printf("wrote %s\n", opts.storePath.c_str());

  if (!finishTelemetryCli(args, campaign.wallSec)) return 1;

  return campaign.failures() > 0 ? 1 : 0;
}

}  // namespace mcs::bench
