#pragma once

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "mcs.h"

/// Shared helpers for the experiment binaries (bench/exp_*).
///
/// Each binary regenerates one table/figure from DESIGN.md §4, prints a
/// self-describing table to stdout, AND records the same numbers through a
/// BenchReport, which writes machine-readable BENCH_<name>.json so future
/// changes can diff perf and results across commits.  All runs are seeded
/// and reproducible; pass --seed / --reps / size flags to vary.
namespace mcs::bench {

/// Monotonic wall-clock seconds (for throughput measurements).
/// Kept as the bench-local name; the one steady-clock read lives in
/// util/clock.h.
inline double now() { return nowSec(); }

/// Arms engine metrics (--metrics), decode-attribution/time-series probes
/// (--probes — implies --metrics, since the cause counters ride the
/// counter registry), and the slot-level trace recorder
/// (--trace-out=<path>) from the shared CLI flags.  Call before the run;
/// pair with finishTelemetryCli() after it.
inline void armTelemetryCli(const Args& args) {
  if (args.getBool("metrics")) telemetry::setEnabled(true);
  if (args.getBool("probes")) telemetry::setProbesEnabled(true);
  if (!args.get("trace-out").empty()) telemetry::setTraceEnabled(true);
}

/// After a run: prints the merged counter/timer table (timer totals with
/// their share of `wallSec` — shares can exceed 100% when several lanes
/// time the same phase concurrently) when metrics are armed, and writes
/// the Chrome trace file when --trace-out was given.  Returns false when
/// the trace write fails, so binaries can propagate it to the exit code.
/// Pass writeTrace=false when something else already wrote the trace file
/// (the campaign coordinator merging worker rings) — the counter/timer
/// table still prints.
inline bool finishTelemetryCli(const Args& args, double wallSec, bool writeTrace = true) {
  if (telemetry::enabled()) {
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    std::printf("\ntelemetry counters:\n");
    for (const telemetry::CounterSample& c : snap.counters) {
      if (c.value != 0) {
        std::printf("  %-34s %llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      }
    }
    std::printf("telemetry timers (wall %.3fs):\n", wallSec);
    for (const telemetry::TimerSample& t : snap.timers) {
      if (t.count == 0) continue;
      const double pct = wallSec > 0.0 ? t.totalSec / wallSec * 100.0 : 0.0;
      std::printf("  %-34s count=%-10llu total=%8.3fs (%5.1f%% of wall) mean=%9.1fus "
                  "max=%9.1fus\n",
                  t.name.c_str(), static_cast<unsigned long long>(t.count), t.totalSec, pct,
                  t.count ? t.totalSec * 1e6 / static_cast<double>(t.count) : 0.0,
                  t.maxSec * 1e6);
    }
    std::fflush(stdout);
  }
  const std::string tracePath = args.get("trace-out");
  if (!tracePath.empty() && writeTrace) {
    std::string terr;
    if (!telemetry::writeTraceFile(tracePath, terr)) {
      std::fprintf(stderr, "%s\n", terr.c_str());
      return false;
    }
    std::printf("wrote %s (%zu trace events)\n", tracePath.c_str(),
                telemetry::traceEventCount());
    std::fflush(stdout);
  }
  return true;
}

/// Accumulates experiment output as ordered key -> (number | string) rows
/// plus run-level metadata, and serializes to BENCH_<name>.json:
///
///   {"name": "...", "meta": {...}, "rows": [{...}, ...]}
///
/// Numbers use shortest round-trip formatting; NaN/inf serialize as null.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  BenchReport& meta(const std::string& key, double v) { return put(meta_, key, v); }
  BenchReport& meta(const std::string& key, const std::string& v) { return put(meta_, key, v); }

  /// Starts a new row; follow with col() calls.
  BenchReport& row() {
    rows_.emplace_back();
    return *this;
  }
  BenchReport& col(const std::string& key, double v) { return put(currentRow(), key, v); }
  BenchReport& col(const std::string& key, const std::string& v) {
    return put(currentRow(), key, v);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] std::string json() const {
    std::string out = "{\"name\": ";
    appendString(out, name_);
    out += ", \"meta\": ";
    appendObject(out, meta_);
    out += ", \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ", ";
      appendObject(out, rows_[i]);
    }
    out += ']';
    // Every BENCH_*.json grows a "telemetry" block when metrics are armed
    // (--metrics); disabled runs keep the historical two-key layout.
    if (telemetry::enabled()) {
      const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
      if (!snap.empty()) {
        out += ", \"telemetry\": ";
        out += snap.toJson().dump();
      }
    }
    out += "}\n";
    return out;
  }

  /// Writes BENCH_<name>.json into `dir` and reports the path on stdout.
  /// Returns false (after reporting on stderr) when the write failed, so
  /// binaries can propagate the failure to their exit code.
  [[nodiscard]] bool write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream f(path);
    f << json();
    f.flush();
    if (!f.good()) {
      std::fprintf(stderr, "FAILED to write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    std::fflush(stdout);
    return true;
  }

 private:
  struct Value {
    bool isNumber = false;
    double number = 0.0;
    std::string text;
  };
  using Object = std::vector<std::pair<std::string, Value>>;

  /// col() before any row() starts one implicitly rather than hitting
  /// undefined behavior on an empty vector.
  Object& currentRow() {
    if (rows_.empty()) rows_.emplace_back();
    return rows_.back();
  }

  BenchReport& put(Object& obj, const std::string& key, double v) {
    obj.push_back({key, Value{true, v, {}}});
    return *this;
  }
  BenchReport& put(Object& obj, const std::string& key, const std::string& v) {
    obj.push_back({key, Value{false, 0.0, v}});
    return *this;
  }

  static void appendString(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  static void appendNumber(std::string& out, double v) {
    if (!std::isfinite(v)) {
      out += "null";
      return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
  }

  static void appendObject(std::string& out, const Object& obj) {
    out += '{';
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i > 0) out += ", ";
      appendString(out, obj[i].first);
      out += ": ";
      if (obj[i].second.isNumber) {
        appendNumber(out, obj[i].second.number);
      } else {
        appendString(out, obj[i].second.text);
      }
    }
    out += '}';
  }

  std::string name_;
  Object meta_;
  std::vector<Object> rows_;
};

/// Uniform deployment at a fixed node density (nodes per unit area),
/// so that Delta stays roughly constant across n (E2/E3 sweeps).
inline Network uniformAtDensity(int n, double density, std::uint64_t seed, Tuning tuning = {}) {
  Rng rng(seed);
  const double side = std::sqrt(static_cast<double>(n) / density);
  auto pts = deployUniformSquare(n, side, rng);
  return Network(std::move(pts), SinrParams{}, tuning);
}

/// Dense square deployment (cluster sizes >> log n: the Delta/F regime).
inline Network densePatch(int n, double side, std::uint64_t seed, Tuning tuning = {}) {
  Rng rng(seed);
  auto pts = deployUniformSquare(n, side, rng);
  return Network(std::move(pts), SinrParams{}, tuning);
}

inline std::vector<double> randomValues(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(static_cast<std::size_t>(n));
  for (double& x : values) x = rng.uniform();
  return values;
}

/// printf-style row helper keeping tables readable in a terminal.
template <class... Ts>
void row(const char* fmt, Ts... args) {
  std::printf(fmt, args...);
  std::printf("\n");
  std::fflush(stdout);
}

inline void header(const std::string& title, const std::string& claim) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
  std::fflush(stdout);
}

}  // namespace mcs::bench
