#pragma once

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "mcs.h"

/// Shared helpers for the experiment binaries (bench/exp_*).
///
/// Each binary regenerates one table/figure from DESIGN.md §4, prints a
/// self-describing table to stdout, AND records the same numbers through a
/// BenchReport, which writes machine-readable BENCH_<name>.json so future
/// changes can diff perf and results across commits.  All runs are seeded
/// and reproducible; pass --seed / --reps / size flags to vary.
namespace mcs::bench {

/// Monotonic wall-clock seconds (for throughput measurements).
inline double now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Accumulates experiment output as ordered key -> (number | string) rows
/// plus run-level metadata, and serializes to BENCH_<name>.json:
///
///   {"name": "...", "meta": {...}, "rows": [{...}, ...]}
///
/// Numbers use shortest round-trip formatting; NaN/inf serialize as null.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  BenchReport& meta(const std::string& key, double v) { return put(meta_, key, v); }
  BenchReport& meta(const std::string& key, const std::string& v) { return put(meta_, key, v); }

  /// Starts a new row; follow with col() calls.
  BenchReport& row() {
    rows_.emplace_back();
    return *this;
  }
  BenchReport& col(const std::string& key, double v) { return put(currentRow(), key, v); }
  BenchReport& col(const std::string& key, const std::string& v) {
    return put(currentRow(), key, v);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] std::string json() const {
    std::string out = "{\"name\": ";
    appendString(out, name_);
    out += ", \"meta\": ";
    appendObject(out, meta_);
    out += ", \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ", ";
      appendObject(out, rows_[i]);
    }
    out += "]}\n";
    return out;
  }

  /// Writes BENCH_<name>.json into `dir` and reports the path on stdout.
  /// Returns false (after reporting on stderr) when the write failed, so
  /// binaries can propagate the failure to their exit code.
  [[nodiscard]] bool write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream f(path);
    f << json();
    f.flush();
    if (!f.good()) {
      std::fprintf(stderr, "FAILED to write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    std::fflush(stdout);
    return true;
  }

 private:
  struct Value {
    bool isNumber = false;
    double number = 0.0;
    std::string text;
  };
  using Object = std::vector<std::pair<std::string, Value>>;

  /// col() before any row() starts one implicitly rather than hitting
  /// undefined behavior on an empty vector.
  Object& currentRow() {
    if (rows_.empty()) rows_.emplace_back();
    return rows_.back();
  }

  BenchReport& put(Object& obj, const std::string& key, double v) {
    obj.push_back({key, Value{true, v, {}}});
    return *this;
  }
  BenchReport& put(Object& obj, const std::string& key, const std::string& v) {
    obj.push_back({key, Value{false, 0.0, v}});
    return *this;
  }

  static void appendString(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  static void appendNumber(std::string& out, double v) {
    if (!std::isfinite(v)) {
      out += "null";
      return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
  }

  static void appendObject(std::string& out, const Object& obj) {
    out += '{';
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i > 0) out += ", ";
      appendString(out, obj[i].first);
      out += ": ";
      if (obj[i].second.isNumber) {
        appendNumber(out, obj[i].second.number);
      } else {
        appendString(out, obj[i].second.text);
      }
    }
    out += '}';
  }

  std::string name_;
  Object meta_;
  std::vector<Object> rows_;
};

/// Uniform deployment at a fixed node density (nodes per unit area),
/// so that Delta stays roughly constant across n (E2/E3 sweeps).
inline Network uniformAtDensity(int n, double density, std::uint64_t seed, Tuning tuning = {}) {
  Rng rng(seed);
  const double side = std::sqrt(static_cast<double>(n) / density);
  auto pts = deployUniformSquare(n, side, rng);
  return Network(std::move(pts), SinrParams{}, tuning);
}

/// Dense square deployment (cluster sizes >> log n: the Delta/F regime).
inline Network densePatch(int n, double side, std::uint64_t seed, Tuning tuning = {}) {
  Rng rng(seed);
  auto pts = deployUniformSquare(n, side, rng);
  return Network(std::move(pts), SinrParams{}, tuning);
}

inline std::vector<double> randomValues(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(static_cast<std::size_t>(n));
  for (double& x : values) x = rng.uniform();
  return values;
}

/// printf-style row helper keeping tables readable in a terminal.
template <class... Ts>
void row(const char* fmt, Ts... args) {
  std::printf(fmt, args...);
  std::printf("\n");
  std::fflush(stdout);
}

inline void header(const std::string& title, const std::string& claim) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
  std::fflush(stdout);
}

}  // namespace mcs::bench
