#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mcs.h"

/// Shared helpers for the experiment binaries (bench/exp_*).
///
/// Each binary regenerates one table/figure from DESIGN.md §4 and prints a
/// self-describing table to stdout.  All runs are seeded and reproducible;
/// pass --seed / --reps / size flags to vary.
namespace mcs::bench {

/// Uniform deployment at a fixed node density (nodes per unit area),
/// so that Delta stays roughly constant across n (E2/E3 sweeps).
inline Network uniformAtDensity(int n, double density, std::uint64_t seed, Tuning tuning = {}) {
  Rng rng(seed);
  const double side = std::sqrt(static_cast<double>(n) / density);
  auto pts = deployUniformSquare(n, side, rng);
  return Network(std::move(pts), SinrParams{}, tuning);
}

/// Dense square deployment (cluster sizes >> log n: the Delta/F regime).
inline Network densePatch(int n, double side, std::uint64_t seed, Tuning tuning = {}) {
  Rng rng(seed);
  auto pts = deployUniformSquare(n, side, rng);
  return Network(std::move(pts), SinrParams{}, tuning);
}

inline std::vector<double> randomValues(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(static_cast<std::size_t>(n));
  for (double& x : values) x = rng.uniform();
  return values;
}

/// printf-style row helper keeping tables readable in a terminal.
template <class... Ts>
void row(const char* fmt, Ts... args) {
  std::printf(fmt, args...);
  std::printf("\n");
  std::fflush(stdout);
}

inline void header(const std::string& title, const std::string& claim) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
  std::fflush(stdout);
}

}  // namespace mcs::bench
