// M1: microbenchmarks of the simulation kernel (google-benchmark):
// SINR slot resolution, spatial index construction/queries, graph build.

#include <benchmark/benchmark.h>

#include "mcs.h"

namespace mcs {
namespace {

std::vector<Vec2> points(int n, std::uint64_t seed) {
  Rng rng(seed);
  return deployUniformSquare(n, std::sqrt(n / 900.0), rng);
}

void BM_MediumResolveSlot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int channels = static_cast<int>(state.range(1));
  const auto pts = points(n, 1);
  Medium medium(SinrParams{}, channels);
  Rng rng(2);
  std::vector<Intent> intents(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const auto c = static_cast<ChannelId>(rng.below(static_cast<std::uint64_t>(channels)));
    intents[static_cast<std::size_t>(v)] =
        rng.bernoulli(0.05) ? Intent::transmit(c, {}) : Intent::listen(c);
  }
  std::vector<Reception> rx;
  for (auto _ : state) {
    medium.resolveSlot(pts, intents, rx);
    benchmark::DoNotOptimize(rx.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MediumResolveSlot)->Args({256, 1})->Args({1024, 1})->Args({1024, 8})->Args({4096, 8});

void BM_GridIndexBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto pts = points(n, 3);
  for (auto _ : state) {
    GridIndex grid(pts, 0.1);
    benchmark::DoNotOptimize(grid.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GridIndexBuild)->Arg(1024)->Arg(8192);

void BM_GridIndexQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto pts = points(n, 4);
  const GridIndex grid(pts, 0.1);
  Rng rng(5);
  std::vector<NodeId> out;
  for (auto _ : state) {
    const Vec2 c = pts[rng.below(pts.size())];
    grid.queryBall(c, 0.1, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GridIndexQuery)->Arg(1024)->Arg(8192);

void BM_CommGraphBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto pts = points(n, 6);
  for (auto _ : state) {
    CommGraph g(pts, 0.5);
    benchmark::DoNotOptimize(g.edgeCount());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CommGraphBuild)->Arg(1024)->Arg(4096);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(7);
  double acc = 0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

}  // namespace
}  // namespace mcs

BENCHMARK_MAIN();
