// sweep_check: the perf-regression gate over sweep campaign reports.
//
//   sweep_check --baseline=sweeps/baseline.json --candidate=BENCH_sweep_smoke.json
//               [--metric-tol=1e-6] [--wall-tol=0.5] [--allow-missing]
//   sweep_check --baseline=sweeps/baseline.json --candidate-store=BENCH_sweep_smoke.store
//
// --candidate-store gates a columnar campaign store (store/reader.h)
// instead of a JSON report: the store's summaries view is rebuilt from
// the per-cell accumulators and compared cell-for-cell like any other
// campaign — the store is the source of truth, the JSON a view of it.
//
// Matches cells by label and fails (exit 1) when any summary mean drifts
// beyond --metric-tol relative, when wall time regresses beyond
// --wall-tol relative (faster is always fine), or when a cell's
// failure/delivery/validity counters get worse.  Exit 2 on unreadable or
// malformed inputs, so a missing baseline cannot pass as "no drift".
//
// Also accepts BenchReport {"rows": [...]} artifacts (e.g.
// BENCH_campaign.json): the layout is auto-detected from the baseline,
// rows match by their string columns, "wall"/"speedup" columns gate perf
// with --wall-tol, everything else drifts with --metric-tol.

#include <cstdio>

#include "store/query.h"
#include "store/reader.h"
#include "sweep/check.h"
#include "util/args.h"

using namespace mcs;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::string baselinePath = args.get("baseline");
  const std::string candidatePath = args.get("candidate");
  const std::string candidateStorePath = args.get("candidate-store");
  if (baselinePath.empty() || (candidatePath.empty() && candidateStorePath.empty())) {
    std::fprintf(stderr,
                 "usage: sweep_check --baseline=<campaign.json> "
                 "(--candidate=<campaign.json> | --candidate-store=<campaign.store>) "
                 "[--metric-tol=R] [--wall-tol=R] [--allow-missing]\n");
    return 2;
  }
  if (!candidatePath.empty() && !candidateStorePath.empty()) {
    std::fprintf(stderr, "sweep_check: pass --candidate or --candidate-store, not both\n");
    return 2;
  }

  SweepCheckOptions opts;
  opts.metricTol = args.getDouble("metric-tol", opts.metricTol);
  opts.wallTol = args.getDouble("wall-tol", opts.wallTol);
  opts.allowMissing = args.getBool("allow-missing");

  Json baseline, candidate;
  std::string err;
  if (!Json::parseFile(baselinePath, baseline, err)) {
    std::fprintf(stderr, "baseline: %s\n", err.c_str());
    return 2;
  }
  if (!candidateStorePath.empty()) {
    store::StoreReader reader;
    if (!reader.open(candidateStorePath, err)) {
      std::fprintf(stderr, "candidate store: %s\n", err.c_str());
      return 2;
    }
    if (!store::storeSummariesJson(reader, candidate, err)) {
      std::fprintf(stderr, "candidate store: %s\n", err.c_str());
      return 2;
    }
  } else if (!Json::parseFile(candidatePath, candidate, err)) {
    std::fprintf(stderr, "candidate: %s\n", err.c_str());
    return 2;
  }

  // Layout auto-detection: campaign reports carry "cells", bench reports
  // carry "rows".  The baseline decides; a candidate of the other layout
  // simply compares as all-missing (which fails, as it should).
  const bool rowsLayout = baseline.find("rows") != nullptr && baseline.find("cells") == nullptr;
  const SweepCheckResult result = rowsLayout ? compareBenchRows(baseline, candidate, opts)
                                             : compareCampaigns(baseline, candidate, opts);
  for (const std::string& note : result.notes) std::printf("note: %s\n", note.c_str());
  for (const std::string& v : result.violations) std::printf("FAIL: %s\n", v.c_str());
  std::printf("sweep_check: %d cells, %d metrics compared, %zu violations -> %s\n",
              result.cellsCompared, result.metricsCompared, result.violations.size(),
              result.ok() ? "PASS" : "FAIL");
  return result.ok() ? 0 : 1;
}
