// E4 ("Fig. 3"): node coloring on the aggregation structure (Theorem 24):
// O(Delta/F + log n log log n) slots, O(Delta) colors, proper coloring.

#include "bench_common.h"

#include <algorithm>
#include <vector>

#include "coloring/coloring.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int n = static_cast<int>(args.getInt("n", 1500));
  const double side = args.getDouble("side", 1.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 4));

  header("E4: coloring slots and palette size vs F",
         "Thm 24: O(Delta/F + log n log log n) slots with O(Delta) colors; "
         "coloring is proper on the communication graph");

  Network net = densePatch(n, side, seed);
  const int delta = net.maxDegree();
  row("n=%d Delta=%d", n, delta);
  BenchReport report("e4_coloring");
  report.meta("n", n).meta("side", side).meta("seed", static_cast<double>(seed));
  report.meta("delta", delta);
  // "classes" counts distinct colors actually used (the palette size the
  // schedule needs); colorsUsed (max color + 1) can be inflated by the
  // rare orphan overflow band (DESIGN.md §3.6) without affecting it.
  row("%-8s %12s %12s %10s %10s %10s %8s", "F", "uplink", "tree", "assign", "classes",
      "cls/Delta", "proper");
  for (const int channels : {1, 2, 4, 8, 16}) {
    Simulator sim(net, channels, seed + 21);
    const AggregationStructure s = buildStructure(sim);
    const ColoringResult col = runColoring(sim, s);
    const int violations = countColoringViolations(net, col.colorOf);
    std::vector<int> sorted(col.colorOf);
    std::sort(sorted.begin(), sorted.end());
    int classes = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i] >= 0 && (i == 0 || sorted[i] != sorted[i - 1])) ++classes;
    }
    row("%-8d %12llu %12llu %10llu %10d %10.2f %8s", channels,
        static_cast<unsigned long long>(col.costs.uplink),
        static_cast<unsigned long long>(col.costs.tree),
        static_cast<unsigned long long>(col.costs.broadcast), classes,
        static_cast<double>(classes) / delta,
        (violations == 0 && col.complete) ? "yes" : "NO");
    report.row()
        .col("channels", channels)
        .col("uplink", static_cast<double>(col.costs.uplink))
        .col("tree", static_cast<double>(col.costs.tree))
        .col("assign", static_cast<double>(col.costs.broadcast))
        .col("classes", classes)
        .col("classes_over_delta", static_cast<double>(classes) / delta)
        .col("proper", (violations == 0 && col.complete) ? 1.0 : 0.0);
  }
  return report.write() ? 0 : 1;
}
