// E4 ("Fig. 3"): node coloring on the aggregation structure (Theorem 24):
// O(Delta/F + log n log log n) slots, O(Delta) colors, proper coloring.
//
// Driven through the Coloring ProtocolDriver: each channel count is one
// scenario batch, so the setup (deployment, structure build, ground-truth
// audit) is the engine's, not hand-wired.

#include <algorithm>
#include <thread>

#include "bench_common.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int n = static_cast<int>(args.getInt("n", 1500));
  const double side = args.getDouble("side", 1.0);
  const int seeds = static_cast<int>(args.getInt("seeds", 1));
  const int lanes = std::min(seeds, static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 4));

  header("E4: coloring slots and palette size vs F",
         "Thm 24: O(Delta/F + log n log log n) slots with O(Delta) colors; "
         "coloring is proper on the communication graph");

  ScenarioSpec spec;
  spec.name = "e4";
  spec.deployment.kind = DeploymentKind::UniformSquare;
  spec.deployment.n = n;
  spec.deployment.side = side;
  spec.protocol = ProtocolKind::Coloring;
  spec.seeds = seeds;
  spec.seed0 = seed;

  BenchReport report("e4_coloring");
  report.meta("n", n).meta("side", side).meta("seed", static_cast<double>(seed));
  report.meta("seeds", seeds);

  // "classes" counts distinct colors actually used (the palette size the
  // schedule needs); the driver's colors_used (max color + 1) can be
  // inflated by the rare orphan overflow band without affecting it.
  row("%-8s %12s %12s %10s %10s %10s %8s", "F", "uplink", "tree", "assign", "classes",
      "cls/Delta", "proper");
  for (const int channels : {1, 2, 4, 8, 16}) {
    spec.channels = channels;
    const ScenarioBatchResult batch = runScenarioBatch(spec, lanes);
    if (batch.failures() > 0) {
      for (const SeedResult& r : batch.perSeed) {
        if (r.failed()) std::fprintf(stderr, "seed %llu failed: %s\n",
                                     static_cast<unsigned long long>(r.seed), r.error.c_str());
      }
      return 1;
    }
    const double uplink = batch.summarizeMetric("coloring_uplink_slots").mean;
    const double tree = batch.summarizeMetric("coloring_tree_slots").mean;
    const double assign = batch.summarizeMetric("coloring_assign_slots").mean;
    const double classes = batch.summarizeMetric("color_classes").mean;
    const double delta = batch.summarizeMetric("delta").mean;
    const bool proper = batch.validCount() == seeds;
    row("%-8d %12.0f %12.0f %10.0f %10.0f %10.2f %8s", channels, uplink, tree, assign,
        classes, delta > 0.0 ? classes / delta : 0.0, proper ? "yes" : "NO");
    report.row()
        .col("channels", channels)
        .col("uplink", uplink)
        .col("tree", tree)
        .col("assign", assign)
        .col("classes", classes)
        .col("classes_over_delta", delta > 0.0 ? classes / delta : 0.0)
        .col("delta", delta)
        .col("proper", proper ? 1.0 : 0.0)
        .col("wall_sec", batch.summarizeWallSec().mean);
  }
  return report.write() ? 0 : 1;
}
