// trace_check: validate a Chrome trace_event JSON file produced by
// --trace-out (telemetry/trace.h).
//
//   trace_check <trace.json> [--min-events=N] [--max-bytes=N]
//
// Checks that the file parses, has a non-empty "traceEvents" array (at
// least --min-events entries, default 1), and that every event is
// well-formed: a string "name", "ph" of "X" (complete, with a numeric
// "dur") or "i" (instant), and numeric "ts"/"pid"/"tid".  --max-bytes
// caps the file size (0 or absent = unlimited) so a runaway emitter —
// an event storm from a hot loop — fails CI by size before this process
// tries to parse gigabytes of JSON.  CI runs this against the smoke
// trace so a malformed emitter fails the build rather than a later
// chrome://tracing load.  Exit 0 when valid, 1 when not, 2 on usage
// errors.

#include <cstdio>
#include <filesystem>
#include <string>

#include "mcs.h"

using namespace mcs;

namespace {

bool numberField(const Json& event, const char* key) {
  const Json* v = event.find(key);
  return v != nullptr && v->isNumber();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: trace_check <trace.json> [--min-events=N] [--max-bytes=N]\n");
    return 2;
  }
  const std::string path = args.positional().front();
  const auto minEvents = static_cast<std::size_t>(args.getInt("min-events", 1));
  const auto maxBytes = static_cast<std::uintmax_t>(args.getInt("max-bytes", 0));

  if (maxBytes > 0) {
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (ec) {
      std::fprintf(stderr, "trace_check: %s: %s\n", path.c_str(), ec.message().c_str());
      return 1;
    }
    if (size > maxBytes) {
      std::fprintf(stderr,
                   "trace_check: %s: %ju bytes exceeds --max-bytes=%ju — runaway emitter?\n",
                   path.c_str(), size, maxBytes);
      return 1;
    }
  }

  Json j;
  std::string err;
  if (!Json::parseFile(path, j, err)) {
    std::fprintf(stderr, "trace_check: %s\n", err.c_str());
    return 1;
  }
  if (!j.isObject()) {
    std::fprintf(stderr, "trace_check: %s: root is not an object\n", path.c_str());
    return 1;
  }
  const Json* events = j.find("traceEvents");
  if (events == nullptr || !events->isArray()) {
    std::fprintf(stderr, "trace_check: %s: missing traceEvents array\n", path.c_str());
    return 1;
  }
  if (events->items().size() < minEvents) {
    std::fprintf(stderr, "trace_check: %s: %zu trace events (expected >= %zu)\n",
                 path.c_str(), events->items().size(), minEvents);
    return 1;
  }

  std::size_t spans = 0, instants = 0;
  for (std::size_t i = 0; i < events->items().size(); ++i) {
    const Json& e = events->items()[i];
    const auto fail = [&](const char* what) {
      std::fprintf(stderr, "trace_check: %s: event %zu: %s\n", path.c_str(), i, what);
      return 1;
    };
    if (!e.isObject()) return fail("not an object");
    const Json* name = e.find("name");
    if (name == nullptr || !name->isString() || name->asString().empty()) {
      return fail("missing string name");
    }
    const std::string ph = e.stringAt("ph");
    if (ph != "X" && ph != "i") return fail("ph is neither \"X\" nor \"i\"");
    if (!numberField(e, "ts")) return fail("missing numeric ts");
    if (!numberField(e, "pid") || !numberField(e, "tid")) {
      return fail("missing numeric pid/tid");
    }
    if (ph == "X") {
      if (!numberField(e, "dur")) return fail("complete event missing numeric dur");
      ++spans;
    } else {
      ++instants;
    }
  }

  std::printf("trace_check: %s ok (%zu events: %zu spans, %zu instants)\n", path.c_str(),
              events->items().size(), spans, instants);
  return 0;
}
