// trace_check: validate a Chrome trace_event JSON file produced by
// --trace-out (telemetry/trace.h), including multi-process traces merged
// by the campaign coordinator (--workers + --trace-out).
//
//   trace_check <trace.json> [--min-events=N] [--max-bytes=N] [--min-pids=N]
//
// Checks that the file parses, has a non-empty "traceEvents" array (at
// least --min-events entries, default 1), and that every event is
// well-formed: a string "name", "ph" of "X" (complete, with a numeric
// "dur"), "i" (instant), or "M" (metadata: a "process_name" label with a
// string args.name), and numeric "ts"/"pid"/"tid".  Timestamps must be
// monotonically non-decreasing within each (pid, tid) lane — each
// worker's ring rebases independently, so cross-lane order carries no
// meaning, but a lane going backwards means a broken emitter or a bad
// merge.  --min-pids=N requires at least N distinct pids AND a
// process_name metadata label for every pid — the merged-trace gate
// (--workers=4 must yield 4 labeled worker lanes).  --max-bytes caps the
// file size (0 or absent = unlimited) so a runaway emitter — an event
// storm from a hot loop — fails CI by size before this process tries to
// parse gigabytes of JSON.  CI runs this against the smoke traces so a
// malformed emitter or merge fails the build rather than a later
// chrome://tracing load.  Exit 0 when valid, 1 when not, 2 on usage
// errors.

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "mcs.h"

using namespace mcs;

namespace {

bool numberField(const Json& event, const char* key) {
  const Json* v = event.find(key);
  return v != nullptr && v->isNumber();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: trace_check <trace.json> [--min-events=N] [--max-bytes=N] "
                 "[--min-pids=N]\n");
    return 2;
  }
  const std::string path = args.positional().front();
  const auto minEvents = static_cast<std::size_t>(args.getInt("min-events", 1));
  const auto maxBytes = static_cast<std::uintmax_t>(args.getInt("max-bytes", 0));
  const auto minPids = static_cast<std::size_t>(args.getInt("min-pids", 0));

  if (maxBytes > 0) {
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (ec) {
      std::fprintf(stderr, "trace_check: %s: %s\n", path.c_str(), ec.message().c_str());
      return 1;
    }
    if (size > maxBytes) {
      std::fprintf(stderr,
                   "trace_check: %s: %ju bytes exceeds --max-bytes=%ju — runaway emitter?\n",
                   path.c_str(), size, maxBytes);
      return 1;
    }
  }

  Json j;
  std::string err;
  if (!Json::parseFile(path, j, err)) {
    std::fprintf(stderr, "trace_check: %s\n", err.c_str());
    return 1;
  }
  if (!j.isObject()) {
    std::fprintf(stderr, "trace_check: %s: root is not an object\n", path.c_str());
    return 1;
  }
  const Json* events = j.find("traceEvents");
  if (events == nullptr || !events->isArray()) {
    std::fprintf(stderr, "trace_check: %s: missing traceEvents array\n", path.c_str());
    return 1;
  }
  if (events->items().size() < minEvents) {
    std::fprintf(stderr, "trace_check: %s: %zu trace events (expected >= %zu)\n",
                 path.c_str(), events->items().size(), minEvents);
    return 1;
  }

  std::size_t spans = 0, instants = 0, metadata = 0;
  std::set<double> pids;
  std::set<double> labeledPids;
  std::map<std::pair<double, double>, double> lastTs;  // (pid, tid) -> last ts seen
  for (std::size_t i = 0; i < events->items().size(); ++i) {
    const Json& e = events->items()[i];
    const auto fail = [&](const char* what) {
      std::fprintf(stderr, "trace_check: %s: event %zu: %s\n", path.c_str(), i, what);
      return 1;
    };
    if (!e.isObject()) return fail("not an object");
    const Json* name = e.find("name");
    if (name == nullptr || !name->isString() || name->asString().empty()) {
      return fail("missing string name");
    }
    const std::string ph = e.stringAt("ph");
    if (ph != "X" && ph != "i" && ph != "M") {
      return fail("ph is none of \"X\", \"i\", \"M\"");
    }
    if (!numberField(e, "ts")) return fail("missing numeric ts");
    if (!numberField(e, "pid") || !numberField(e, "tid")) {
      return fail("missing numeric pid/tid");
    }
    const double pid = e.numberAt("pid");
    pids.insert(pid);
    if (ph == "M") {
      // The only metadata the emitter writes is the process label.
      if (name->asString() != "process_name") {
        return fail("metadata event is not process_name");
      }
      const Json* margs = e.find("args");
      const Json* label = margs != nullptr ? margs->find("name") : nullptr;
      if (label == nullptr || !label->isString() || label->asString().empty()) {
        return fail("process_name metadata missing string args.name");
      }
      labeledPids.insert(pid);
      ++metadata;
      continue;
    }
    // Each (pid, tid) lane must be time-ordered: the per-worker rings are
    // rebased independently, but within a lane the ring replays in
    // recording order.
    const std::pair<double, double> lane(pid, e.numberAt("tid"));
    const double ts = e.numberAt("ts");
    if (const auto it = lastTs.find(lane); it != lastTs.end() && ts < it->second) {
      return fail("ts goes backwards within its (pid, tid) lane");
    }
    lastTs[lane] = ts;
    if (ph == "X") {
      if (!numberField(e, "dur")) return fail("complete event missing numeric dur");
      ++spans;
    } else {
      ++instants;
    }
  }

  if (minPids > 0) {
    if (pids.size() < minPids) {
      std::fprintf(stderr, "trace_check: %s: %zu distinct pids (expected >= %zu)\n",
                   path.c_str(), pids.size(), minPids);
      return 1;
    }
    for (const double pid : pids) {
      if (labeledPids.count(pid) == 0) {
        std::fprintf(stderr,
                     "trace_check: %s: pid %g has no process_name metadata label\n",
                     path.c_str(), pid);
        return 1;
      }
    }
  }

  std::printf("trace_check: %s ok (%zu events: %zu spans, %zu instants, %zu metadata, "
              "%zu pids)\n",
              path.c_str(), events->items().size(), spans, instants, metadata, pids.size());
  return 0;
}
