// E6 ("Fig. 4"): cluster-size approximation (Lemmas 12-14): the large
// variant costs O(log DeltaHat log n); the channel-parallel small variant
// costs O(log n log log n) when DeltaHat <= F polylog n; both produce
// constant-factor estimates.

#include "bench_common.h"

#include "proto/cluster_coloring.h"
#include "proto/csa.h"
#include "proto/dominating_set.h"

using namespace mcs;
using namespace mcs::bench;

namespace {

double worstRatio(const Network& net, const Clustering& cl, const std::vector<double>& est) {
  std::vector<int> size(static_cast<std::size_t>(net.size()), 0);
  for (NodeId v = 0; v < net.size(); ++v) {
    const NodeId d = cl.dominatorOf[static_cast<std::size_t>(v)];
    if (d != kNoNode && d != v) ++size[static_cast<std::size_t>(d)];
  }
  double worst = 1.0;
  for (const NodeId d : cl.dominators) {
    const auto di = static_cast<std::size_t>(d);
    const double got = est[di] + 1.0;
    const double want = size[di] + 1.0;
    worst = std::max(worst, std::max(got / want, want / got));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int n = static_cast<int>(args.getInt("n", 1200));
  const double side = args.getDouble("side", 1.1);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 6));

  header("E6: CSA variants: slots and estimate quality",
         "Lemma 12: large = O(log DeltaHat log n); Lemma 13: small = "
         "O(log n log log n) for DeltaHat <= F polylog n; estimates within a "
         "constant factor; Lemma 14 picks the cheaper one");

  Network net = densePatch(n, side, seed);
  Simulator sim0(net, 8, seed + 31);
  DominatingSetResult ds = buildDominatingSet(sim0);
  Clustering cl = std::move(ds.clustering);
  colorClusters(sim0, cl);
  int maxCluster = 1;
  {
    std::vector<int> size(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      const NodeId d = cl.dominatorOf[static_cast<std::size_t>(v)];
      if (d != kNoNode && d != v) ++size[static_cast<std::size_t>(d)];
    }
    for (const int s : size) maxCluster = std::max(maxCluster, s);
  }
  row("n=%d maxCluster=%d colors=%d", n, maxCluster, cl.numColors);

  BenchReport report("e6_csa");
  report.meta("n", n).meta("side", side).meta("seed", static_cast<double>(seed));
  report.meta("max_cluster", maxCluster).meta("colors", cl.numColors);

  row("%-10s %6s %10s %12s %10s", "variant", "F", "deltaHat", "slots", "worstRatio");
  for (const int channels : {2, 8, 32}) {
    for (const int deltaHat : {2 * maxCluster, n}) {
      Simulator simL(net, channels, seed + 41);
      const CsaResult large = runCsaLarge(simL, cl, deltaHat);
      const double ratioL = worstRatio(net, cl, large.estimateOfNode);
      row("%-10s %6d %10d %12llu %10.2f", "large", channels, deltaHat,
          static_cast<unsigned long long>(large.slotsUsed), ratioL);
      report.row()
          .col("variant", "large")
          .col("channels", channels)
          .col("delta_hat", deltaHat)
          .col("slots", static_cast<double>(large.slotsUsed))
          .col("worst_ratio", ratioL);
      Simulator simS(net, channels, seed + 41);
      const CsaResult small = runCsaSmall(simS, cl, deltaHat);
      const double ratioS = worstRatio(net, cl, small.estimateOfNode);
      row("%-10s %6d %10d %12llu %10.2f", "small", channels, deltaHat,
          static_cast<unsigned long long>(small.slotsUsed), ratioS);
      report.row()
          .col("variant", "small")
          .col("channels", channels)
          .col("delta_hat", deltaHat)
          .col("slots", static_cast<double>(small.slotsUsed))
          .col("worst_ratio", ratioS);
    }
  }
  return report.write() ? 0 : 1;
}
