// E6 ("Fig. 4"): cluster-size approximation (Lemmas 12-14): the large
// variant costs O(log DeltaHat log n); the channel-parallel small variant
// costs O(log n log log n) when DeltaHat <= F polylog n; both produce
// constant-factor estimates.
//
// Driven through the Csa ProtocolDriver: a probe batch measures the true
// max cluster size, then each (F, DeltaHat, variant) cell is one
// scenario batch with the variant forced via the csa_variant spec key.

#include <algorithm>
#include <thread>

#include "bench_common.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int n = static_cast<int>(args.getInt("n", 1000));
  const double side = args.getDouble("side", 1.1);
  const int reps = static_cast<int>(args.getInt("reps", 1));
  const int lanes = std::min(reps, static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 6));

  header("E6: CSA variants: slots and estimate quality",
         "Lemma 12: large = O(log DeltaHat log n); Lemma 13: small = "
         "O(log n log log n) for DeltaHat <= F polylog n; estimates within a "
         "constant factor; Lemma 14 picks the cheaper one");

  ScenarioSpec spec;
  spec.name = "e6";
  spec.deployment.kind = DeploymentKind::UniformSquare;
  spec.deployment.n = n;
  spec.deployment.side = side;
  spec.protocol = ProtocolKind::Csa;
  spec.seed0 = seed;

  // Probe: one auto-variant batch over the same seeds as the sweep, to
  // learn the max cluster size over every instance — so 2*maxCluster is
  // a true DeltaHat upper bound for each seed, as Lemmas 12-14 require.
  spec.channels = 8;
  spec.seeds = reps;
  const ScenarioBatchResult probe = runScenarioBatch(spec, lanes);
  if (probe.failures() > 0 || probe.perSeed.empty()) {
    std::fprintf(stderr, "probe failed: %s\n",
                 probe.perSeed.empty() ? "no seeds" : probe.perSeed[0].error.c_str());
    return 1;
  }
  const int maxCluster =
      std::max(1, static_cast<int>(probe.summarizeMetric("max_cluster").max));
  const int clusters = static_cast<int>(probe.summarizeMetric("clusters").mean);
  row("n=%d maxCluster=%d clusters~%d (over %d seeds)", n, maxCluster, clusters, reps);

  BenchReport report("e6_csa");
  report.meta("n", n).meta("side", side).meta("seed", static_cast<double>(seed));
  report.meta("reps", reps).meta("max_cluster", maxCluster).meta("clusters", clusters);

  row("%-10s %6s %10s %12s %10s", "variant", "F", "deltaHat", "slots", "worstRatio");
  spec.seeds = reps;
  for (const int channels : {2, 8, 32}) {
    for (const int deltaHat : {2 * maxCluster, n}) {
      for (const CsaVariant variant : {CsaVariant::Large, CsaVariant::Small}) {
        spec.channels = channels;
        spec.deltaHat = deltaHat;
        spec.csaVariant = variant;
        const ScenarioBatchResult batch = runScenarioBatch(spec, lanes);
        if (batch.failures() > 0) {
          for (const SeedResult& r : batch.perSeed) {
            if (r.failed()) std::fprintf(stderr, "seed %llu failed: %s\n",
                                         static_cast<unsigned long long>(r.seed),
                                         r.error.c_str());
          }
          return 1;
        }
        const double slots = batch.summarizeMetric("csa_slots").mean;
        const double ratio = batch.summarizeMetric("csa_worst_ratio").mean;
        row("%-10s %6d %10d %12.0f %10.2f", toString(variant).c_str(), channels, deltaHat,
            slots, ratio);
        report.row()
            .col("variant", toString(variant))
            .col("channels", channels)
            .col("delta_hat", deltaHat)
            .col("slots", slots)
            .col("worst_ratio", ratio)
            .col("wall_sec", batch.summarizeWallSec().mean);
      }
    }
  }
  return report.write() ? 0 : 1;
}
