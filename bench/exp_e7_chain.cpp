// E7 ("Table 3"): the exponential-chain lower bound (§1): at most one
// distinct descending sender per channel per slot, so single-channel
// aggregation needs Omega(Delta) slots here; F channels lift the ceiling
// to F, the limit the algorithm's Delta/F term attains.

#include "bench_common.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int n = static_cast<int>(args.getInt("n", 48));
  const int trials = static_cast<int>(args.getInt("trials", 600));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 7));

  header("E7: exponential chain concurrency vs F",
         "section 1 (citing [25]): with uniform power, only one distinct "
         "sender per channel can deliver toward the sink per slot; F "
         "channels multiply the ceiling by F");

  auto pts = deployExponentialChain(n, 2.0, 0.9);
  Network net(std::move(pts), SinrParams{});
  const SinrParams& p = net.sinr();
  row("n=%d alpha=%.1f beta=%.2f (threshold 2^(1/alpha)=%.3f)", n, p.alpha, p.beta,
      chainBetaThreshold(p.alpha));

  BenchReport report("e7_chain");
  report.meta("n", n).meta("trials", trials).meta("seed", static_cast<double>(seed));
  report.meta("alpha", p.alpha).meta("beta", p.beta);

  row("%-6s %14s %14s %14s %14s", "F", "maxDescending", "meanDescending", "maxTotal",
      "meanTotal");
  for (const int channels : {1, 2, 4, 8}) {
    const ChainSlotStats stats = chainConcurrency(net, channels, trials, seed);
    row("%-6d %14d %14.2f %14d %14.2f", channels, stats.maxDescendingSuccesses,
        stats.meanDescendingSuccesses, stats.maxConcurrentSuccesses, stats.meanSuccesses);
    report.row()
        .col("channels", channels)
        .col("max_descending", stats.maxDescendingSuccesses)
        .col("mean_descending", stats.meanDescendingSuccesses)
        .col("max_total", stats.maxConcurrentSuccesses)
        .col("mean_total", stats.meanSuccesses);
  }

  row("%s", "");
  row("%s",
      "Implication: aggregating all n values over one channel needs >= n-1 "
      "descending deliveries => >= n-1 slots; F channels cut this to ~n/F.");
  return report.write() ? 0 : 1;
}
