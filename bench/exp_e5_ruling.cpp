// E5 ("Table 2"): the (r, 2r)-ruling set (Lemma 6): O(log n) rounds whp,
// r-independence, 2r-domination, constant density.
//
// Driven through the RulingSet ProtocolDriver: each n is one scenario
// batch at fixed node density, and the quality columns come from the
// driver's ground-truth audit metrics.

#include <algorithm>
#include <cmath>
#include <thread>

#include "bench_common.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const double density = args.getDouble("density", 900.0);
  const int reps = static_cast<int>(args.getInt("reps", 3));
  const int lanes = std::min(reps, static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 5));

  header("E5: ruling set rounds and quality vs n",
         "Lemma 6: a (r, 2r)-ruling set in O(log n) rounds whp "
         "(rounds / ln n ~ flat); members r-independent, all nodes bound "
         "within 2r, constant density");

  BenchReport report("e5_ruling");
  report.meta("density", density).meta("reps", reps).meta("seed", static_cast<double>(seed));

  row("%-8s %10s %10s %10s %10s %10s %10s", "n", "members", "rounds", "rnds/ln n", "indepViol",
      "unbound", "maxDens");
  for (const int n : {250, 500, 1000, 2000, 4000}) {
    ScenarioSpec spec;
    spec.name = "e5";
    spec.deployment.kind = DeploymentKind::UniformSquare;
    spec.deployment.n = n;
    spec.deployment.side = std::sqrt(static_cast<double>(n) / density);
    spec.protocol = ProtocolKind::RulingSet;
    spec.channels = 1;
    spec.seeds = reps;
    spec.seed0 = seed;

    const ScenarioBatchResult batch = runScenarioBatch(spec, lanes);
    if (batch.failures() > 0) {
      for (const SeedResult& r : batch.perSeed) {
        if (r.failed()) std::fprintf(stderr, "seed %llu failed: %s\n",
                                     static_cast<unsigned long long>(r.seed), r.error.c_str());
      }
      return 1;
    }
    const double members = batch.summarizeMetric("ruling_set_size").mean;
    const double rounds = batch.summarizeMetric("ruling_rounds").mean;
    const double viol = batch.summarizeMetric("independence_violations").mean;
    const double unbound = batch.summarizeMetric("unbound").mean;
    const double dens = batch.summarizeMetric("max_density").mean;
    row("%-8d %10.0f %10.0f %10.2f %10.1f %10.1f %10.1f", n, members, rounds,
        rounds / std::log(static_cast<double>(n)), viol, unbound, dens);
    report.row()
        .col("n", n)
        .col("members", members)
        .col("rounds", rounds)
        .col("rounds_over_lnn", rounds / std::log(static_cast<double>(n)))
        .col("independence_violations", viol)
        .col("unbound", unbound)
        .col("max_density", dens)
        .col("wall_sec", batch.summarizeWallSec().mean);
  }
  return report.write() ? 0 : 1;
}
