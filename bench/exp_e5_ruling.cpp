// E5 ("Table 2"): the (r, 2r)-ruling set (Lemma 6): O(log n) rounds whp,
// r-independence, 2r-domination, constant density.

#include "bench_common.h"

#include "proto/ruling_set.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const double density = args.getDouble("density", 900.0);
  const int reps = static_cast<int>(args.getInt("reps", 3));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 5));

  header("E5: ruling set rounds and quality vs n",
         "Lemma 6: a (r, 2r)-ruling set in O(log n) rounds whp "
         "(rounds / ln n ~ flat); members r-independent, all nodes bound "
         "within 2r, constant density");

  BenchReport report("e5_ruling");
  report.meta("density", density).meta("reps", reps).meta("seed", static_cast<double>(seed));

  row("%-8s %10s %10s %10s %10s %10s %10s", "n", "members", "rounds", "rnds/ln n", "indepViol",
      "unbound", "maxDens");
  for (const int n : {250, 500, 1000, 2000, 4000}) {
    OnlineStats rounds, members, viol, unbound, dens;
    for (int r = 0; r < reps; ++r) {
      Network net = uniformAtDensity(n, density, seed + static_cast<std::uint64_t>(r));
      Simulator sim(net, 1, seed + 100 + static_cast<std::uint64_t>(r));
      RulingSetConfig cfg;
      cfg.radius = net.rc();
      cfg.capProb = 1.0 / (2.0 * net.tuning().muDensity);
      cfg.initialProb = std::min(cfg.capProb, 0.5 / n);
      cfg.epochRounds = net.tuning().domEpochRounds;
      cfg.cycleProb = true;
      cfg.totalRounds = 40 + net.tuning().lnRounds(4.0, n);
      std::vector<char> everyone(static_cast<std::size_t>(n), 1);
      const RulingSetResult rs = runRulingSet(sim, everyone, cfg);

      std::vector<NodeId> mem;
      int unboundCount = 0;
      for (NodeId v = 0; v < n; ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (rs.inSet[vi]) {
          mem.push_back(v);
        } else if (rs.dominator[vi] == kNoNode ||
                   net.distance(v, rs.dominator[vi]) > 2 * cfg.radius) {
          ++unboundCount;
        }
      }
      int violations = 0;
      int maxDensity = 0;
      for (std::size_t i = 0; i < mem.size(); ++i) {
        int inBall = 0;
        for (std::size_t j = 0; j < mem.size(); ++j) {
          if (net.distance(mem[i], mem[j]) <= cfg.radius) {
            ++inBall;
            if (j > i) ++violations;
          }
        }
        maxDensity = std::max(maxDensity, inBall);
      }
      rounds.add(rs.roundsRun);
      members.add(static_cast<double>(mem.size()));
      viol.add(violations);
      unbound.add(unboundCount);
      dens.add(maxDensity);
    }
    row("%-8d %10.0f %10.0f %10.2f %10.1f %10.1f %10.1f", n, members.mean(), rounds.mean(),
        rounds.mean() / std::log(static_cast<double>(n)), viol.mean(), unbound.mean(),
        dens.mean());
    report.row()
        .col("n", n)
        .col("members", members.mean())
        .col("rounds", rounds.mean())
        .col("rounds_over_lnn", rounds.mean() / std::log(static_cast<double>(n)))
        .col("independence_violations", viol.mean())
        .col("unbound", unbound.mean())
        .col("max_density", dens.mean());
  }
  return report.write() ? 0 : 1;
}
