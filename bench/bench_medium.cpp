// M2: SINR medium regression bench.  Measures slot-resolution throughput
// (slots/sec, decodes/sec) across n and channel counts for:
//   - pow:     the original per-pair std::pow kernel (reference replica)
//   - fast:    the alpha-specialized PowerKernel, exact summation (default)
//   - nearfar: grid-batched far-field approximation (MediumMode::NearFar)
//   - threads: exact summation with the per-listener loop parallelized
// Writes BENCH_medium.json so future changes can diff the perf trajectory.

#include <thread>

#include "bench_common.h"

namespace mcs {
namespace {

/// Replica of the seed Medium::resolveSlot inner loop: per-pair
/// std::pow(d2, alpha/2) with the 1e300 co-location sentinel.  Kept here
/// as the fixed baseline the fast kernels are measured against.
struct PowReference {
  SinrParams params;
  int numChannels;
  std::uint64_t decodes = 0;
  std::vector<std::int32_t> start;
  std::vector<NodeId> tx;
  std::vector<NodeId> listeners;

  void resolveSlot(std::span<const Vec2> positions, std::span<const Intent> intents,
                   std::vector<Reception>& out) {
    const std::size_t n = positions.size();
    out.assign(n, Reception{});
    start.assign(static_cast<std::size_t>(numChannels) + 1, 0);
    listeners.clear();
    std::size_t txTotal = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const Intent& it = intents[v];
      if (it.action == Action::Idle) continue;
      if (it.action == Action::Transmit) {
        ++start[static_cast<std::size_t>(it.channel) + 1];
        ++txTotal;
      } else {
        listeners.push_back(static_cast<NodeId>(v));
      }
    }
    if (listeners.empty()) return;
    for (int c = 0; c < numChannels; ++c) {
      start[static_cast<std::size_t>(c) + 1] += start[static_cast<std::size_t>(c)];
    }
    tx.resize(txTotal);
    std::vector<std::int32_t> cursor(start.begin(), start.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (intents[v].action != Action::Transmit) continue;
      tx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(intents[v].channel)]++)] =
          static_cast<NodeId>(v);
    }
    const double alpha = params.alpha;
    const double beta = params.beta;
    const double noise = params.noise;
    const double power = params.power;
    for (const NodeId v : listeners) {
      const ChannelId c = intents[static_cast<std::size_t>(v)].channel;
      const std::int32_t lo = start[static_cast<std::size_t>(c)];
      const std::int32_t hi = start[static_cast<std::size_t>(c) + 1];
      if (lo == hi) continue;
      double total = 0.0;
      double best = -1.0;
      NodeId bestTx = kNoNode;
      const Vec2 pv = positions[static_cast<std::size_t>(v)];
      for (std::int32_t i = lo; i < hi; ++i) {
        const NodeId w = tx[static_cast<std::size_t>(i)];
        const double d2 = dist2(positions[static_cast<std::size_t>(w)], pv);
        const double rx = d2 > 0.0 ? power / std::pow(d2, alpha / 2.0) : 1e300;
        total += rx;
        if (rx > best) {
          best = rx;
          bestTx = w;
        }
      }
      Reception& r = out[static_cast<std::size_t>(v)];
      r.totalPower = total;
      if (bestTx != kNoNode && best >= beta * (noise + (total - best))) {
        r.received = true;
        r.msg = intents[static_cast<std::size_t>(bestTx)].msg;
        r.sinr = best / (noise + (total - best));
        r.signalPower = best;
        r.senderDistance = params.distanceFromPower(best);
        ++decodes;
      }
    }
  }
};

struct Workload {
  std::vector<Vec2> pts;
  std::vector<Intent> intents;
};

Workload makeWorkload(int n, int channels, double density, std::uint64_t seed) {
  Workload w;
  Rng rng(seed);
  w.pts = deployUniformSquare(n, std::sqrt(static_cast<double>(n) / density), rng);
  w.intents.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const auto c = static_cast<ChannelId>(rng.below(static_cast<std::uint64_t>(channels)));
    w.intents[static_cast<std::size_t>(v)] =
        rng.bernoulli(0.05) ? Intent::transmit(c, {}) : Intent::listen(c);
  }
  return w;
}

struct Measured {
  double slotsPerSec = 0.0;
  double decodesPerSec = 0.0;
  std::uint64_t decodesPerSlot = 0;
};

/// Runs `resolve()` repeatedly for at least `budget` seconds (after one
/// warm-up slot) and returns throughput.  `decodesBefore`/`decodesAfter`
/// read the cumulative decode counter around the timed region.
template <class Resolve, class DecodeCount>
Measured measure(Resolve&& resolve, DecodeCount&& decodeCount, double budget) {
  resolve();  // warm-up: scratch allocation, page faults
  const std::uint64_t d0 = decodeCount();
  const double t0 = bench::now();
  std::uint64_t slots = 0;
  double elapsed = 0.0;
  do {
    resolve();
    ++slots;
    elapsed = bench::now() - t0;
  } while (elapsed < budget);
  Measured m;
  m.slotsPerSec = static_cast<double>(slots) / elapsed;
  const std::uint64_t d = decodeCount() - d0;
  m.decodesPerSec = static_cast<double>(d) / elapsed;
  m.decodesPerSlot = d / slots;
  return m;
}

}  // namespace
}  // namespace mcs

int main(int argc, char** argv) {
  using namespace mcs;
  using namespace mcs::bench;

  const Args args(argc, argv);
  const double alpha = args.getDouble("alpha", 3.0);
  const double density = args.getDouble("density", 900.0);
  const double budget = args.getDouble("budget", 0.3);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const int hw = static_cast<int>(args.getInt(
      "threads", static_cast<long>(std::max(2u, std::thread::hardware_concurrency()))));

  SinrParams params;
  params.alpha = alpha;
  params = params.withRange(1.0);
  SinrParams nearFarParams = params;
  nearFarParams.mediumMode = MediumMode::NearFar;

  header("M2: SINR medium throughput (slots/sec)",
         "fast alpha-specialized kernel >= 3x the std::pow reference at the "
         "default alpha=3, n=2000 config");

  BenchReport report("medium");
  report.meta("alpha", alpha).meta("density", density).meta("budget_sec", budget);
  report.meta("seed", static_cast<double>(seed)).meta("threads", hw);

  row("%-6s %4s %10s %12s %12s %12s %10s", "n", "F", "variant", "slots/s", "decodes/s",
      "dec/slot", "vs pow");
  std::vector<std::pair<int, int>> configs{{500, 1}, {500, 8}, {2000, 1},
                                           {2000, 8}, {8000, 1}, {8000, 8}};
  // NearFar's winning regime needs extent >> nearField*R_T AND many
  // transmitters per grid cell; that only happens at larger n.
  if (args.getBool("big")) configs.push_back({32000, 1});
  for (const auto& [n, channels] : configs) {
    {
      const Workload w = makeWorkload(n, channels, density, seed);
      std::vector<Reception> rx;

      PowReference ref{params, channels, 0, {}, {}, {}};
      const Measured pow =
          measure([&] { ref.resolveSlot(w.pts, w.intents, rx); },
                  [&] { return ref.decodes; }, budget);

      Medium fast(params, channels);
      const Measured fastM =
          measure([&] { fast.resolveSlot(w.pts, w.intents, rx); },
                  [&] { return fast.stats().decodes; }, budget);

      Medium nearFar(nearFarParams, channels);
      const Measured nearFarM =
          measure([&] { nearFar.resolveSlot(w.pts, w.intents, rx); },
                  [&] { return nearFar.stats().decodes; }, budget);

      Medium threaded(params, channels, hw);
      const Measured threadedM =
          measure([&] { threaded.resolveSlot(w.pts, w.intents, rx); },
                  [&] { return threaded.stats().decodes; }, budget);

      const struct {
        const char* name;
        const Measured& m;
      } variants[] = {
          {"pow", pow}, {"fast", fastM}, {"nearfar", nearFarM}, {"threads", threadedM}};
      for (const auto& [name, m] : variants) {
        const double speedup = m.slotsPerSec / pow.slotsPerSec;
        row("%-6d %4d %10s %12.1f %12.1f %12llu %9.2fx", n, channels, name, m.slotsPerSec,
            m.decodesPerSec, static_cast<unsigned long long>(m.decodesPerSlot), speedup);
        report.row()
            .col("n", n)
            .col("channels", channels)
            .col("variant", name)
            .col("slots_per_sec", m.slotsPerSec)
            .col("decodes_per_sec", m.decodesPerSec)
            .col("decodes_per_slot", static_cast<double>(m.decodesPerSlot))
            .col("speedup_vs_pow", speedup);
      }
    }
  }
  return report.write() ? 0 : 1;
}
