// M2: SINR medium regression bench.  Measures slot-resolution throughput
// (slots/sec, decodes/sec) across n and channel counts for:
//   - pow:     the original per-pair std::pow kernel (reference replica)
//   - fast:    the alpha-specialized PowerKernel, exact SoA summation
//              (default; auto-vectorized distance/kernel sweep)
//   - nearfar: grid-batched far-field approximation (MediumMode::NearFar)
//   - hier:    pyramid-batched far field (MediumMode::Hierarchical)
//   - threads: exact summation with the per-listener loop parallelized
// Plus the mobility-era cases:
//   - grid_rebuild / grid_update: GridIndex full re-sort vs the
//     incremental update() path over a drifting point set
//   - static / dynamic NearFar resolveSlot at n=32k: a mobile run
//     (positions drift every slot, incremental-grid path) must stay
//     within 2x of the equivalent static run
// Writes BENCH_medium.json so future changes can diff the perf trajectory.

#include <algorithm>
#include <thread>

#include "bench_common.h"
#include "mobility/mobility.h"

namespace mcs {
namespace {

/// Replica of the seed Medium::resolveSlot inner loop: per-pair
/// std::pow(d2, alpha/2) with the 1e300 co-location sentinel.  Kept here
/// as the fixed baseline the fast kernels are measured against.
struct PowReference {
  SinrParams params;
  int numChannels;
  std::uint64_t decodes = 0;
  std::vector<std::int32_t> start;
  std::vector<NodeId> tx;
  std::vector<NodeId> listeners;

  void resolveSlot(std::span<const Vec2> positions, std::span<const Intent> intents,
                   std::vector<Reception>& out) {
    const std::size_t n = positions.size();
    out.assign(n, Reception{});
    start.assign(static_cast<std::size_t>(numChannels) + 1, 0);
    listeners.clear();
    std::size_t txTotal = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const Intent& it = intents[v];
      if (it.action == Action::Idle) continue;
      if (it.action == Action::Transmit) {
        ++start[static_cast<std::size_t>(it.channel) + 1];
        ++txTotal;
      } else {
        listeners.push_back(static_cast<NodeId>(v));
      }
    }
    if (listeners.empty()) return;
    for (int c = 0; c < numChannels; ++c) {
      start[static_cast<std::size_t>(c) + 1] += start[static_cast<std::size_t>(c)];
    }
    tx.resize(txTotal);
    std::vector<std::int32_t> cursor(start.begin(), start.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (intents[v].action != Action::Transmit) continue;
      tx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(intents[v].channel)]++)] =
          static_cast<NodeId>(v);
    }
    const double alpha = params.alpha;
    const double beta = params.beta;
    const double noise = params.noise;
    const double power = params.power;
    for (const NodeId v : listeners) {
      const ChannelId c = intents[static_cast<std::size_t>(v)].channel;
      const std::int32_t lo = start[static_cast<std::size_t>(c)];
      const std::int32_t hi = start[static_cast<std::size_t>(c) + 1];
      if (lo == hi) continue;
      double total = 0.0;
      double best = -1.0;
      NodeId bestTx = kNoNode;
      const Vec2 pv = positions[static_cast<std::size_t>(v)];
      for (std::int32_t i = lo; i < hi; ++i) {
        const NodeId w = tx[static_cast<std::size_t>(i)];
        const double d2 = dist2(positions[static_cast<std::size_t>(w)], pv);
        const double rx = d2 > 0.0 ? power / std::pow(d2, alpha / 2.0) : 1e300;
        total += rx;
        if (rx > best) {
          best = rx;
          bestTx = w;
        }
      }
      Reception& r = out[static_cast<std::size_t>(v)];
      r.totalPower = total;
      if (bestTx != kNoNode && best >= beta * (noise + (total - best))) {
        r.received = true;
        r.msg = intents[static_cast<std::size_t>(bestTx)].msg;
        r.sinr = best / (noise + (total - best));
        r.signalPower = best;
        r.senderDistance = params.distanceFromPower(best);
        ++decodes;
      }
    }
  }
};

struct Workload {
  std::vector<Vec2> pts;
  std::vector<Intent> intents;
};

Workload makeWorkload(int n, int channels, double density, std::uint64_t seed) {
  Workload w;
  Rng rng(seed);
  w.pts = deployUniformSquare(n, std::sqrt(static_cast<double>(n) / density), rng);
  w.intents.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const auto c = static_cast<ChannelId>(rng.below(static_cast<std::uint64_t>(channels)));
    w.intents[static_cast<std::size_t>(v)] =
        rng.bernoulli(0.05) ? Intent::transmit(c, {}) : Intent::listen(c);
  }
  return w;
}

struct Measured {
  double slotsPerSec = 0.0;
  double decodesPerSec = 0.0;
  std::uint64_t decodesPerSlot = 0;
};

/// Bounding box of a point set — the drift clamp target.  Clamping to
/// the *initial sample's* box (not the deployment's [0, side]^2) matches
/// production mobility, where reflect() confines nodes to the deployed
/// box: GridIndex::update never re-anchors, so the timed region measures
/// the pure incremental path.
struct DriftBox {
  double loX, loY, hiX, hiY;
  explicit DriftBox(const std::vector<Vec2>& pts)
      : loX(pts[0].x), loY(pts[0].y), hiX(pts[0].x), hiY(pts[0].y) {
    for (const Vec2& p : pts) {
      loX = std::min(loX, p.x);
      loY = std::min(loY, p.y);
      hiX = std::max(hiX, p.x);
      hiY = std::max(hiY, p.y);
    }
  }
};

/// One bounded random-walk step per point (the mobility drift shape).
void driftPoints(std::vector<Vec2>& pts, const DriftBox& box, double step, Rng& rng) {
  for (Vec2& p : pts) {
    p.x = std::clamp(p.x + step * (2.0 * rng.uniform() - 1.0), box.loX, box.hiX);
    p.y = std::clamp(p.y + step * (2.0 * rng.uniform() - 1.0), box.loY, box.hiY);
  }
}

/// Index maintenance throughput (indexings/sec) over a drifting point
/// set: `incremental` uses GridIndex::update (points move between cells
/// in place), otherwise a full rebuild every step.  The drift itself is
/// excluded from the timed region.
double measureIndexing(bool incremental, int n, double side, double cellSize, double step,
                       std::uint64_t seed, double budget) {
  Rng rng(seed);
  std::vector<Vec2> pts = deployUniformSquare(n, side, rng);
  const DriftBox box(pts);
  GridIndex index(pts, cellSize);
  double elapsed = 0.0;
  std::uint64_t steps = 0;
  while (elapsed < budget) {
    driftPoints(pts, box, step, rng);
    const double t0 = bench::now();
    if (incremental) {
      index.update(pts);
    } else {
      index.rebuild(pts, cellSize);
    }
    elapsed += bench::now() - t0;
    ++steps;
  }
  return static_cast<double>(steps) / elapsed;
}

/// Runs `resolve()` repeatedly for at least `budget` seconds (after one
/// warm-up slot) and returns throughput.  `decodesBefore`/`decodesAfter`
/// read the cumulative decode counter around the timed region.
template <class Resolve, class DecodeCount>
Measured measure(Resolve&& resolve, DecodeCount&& decodeCount, double budget) {
  resolve();  // warm-up: scratch allocation, page faults
  const std::uint64_t d0 = decodeCount();
  const double t0 = bench::now();
  std::uint64_t slots = 0;
  double elapsed = 0.0;
  do {
    resolve();
    ++slots;
    elapsed = bench::now() - t0;
  } while (elapsed < budget);
  Measured m;
  m.slotsPerSec = static_cast<double>(slots) / elapsed;
  const std::uint64_t d = decodeCount() - d0;
  m.decodesPerSec = static_cast<double>(d) / elapsed;
  m.decodesPerSlot = d / slots;
  return m;
}

}  // namespace
}  // namespace mcs

int main(int argc, char** argv) {
  using namespace mcs;
  using namespace mcs::bench;

  const Args args(argc, argv);
  const double alpha = args.getDouble("alpha", 3.0);
  const double density = args.getDouble("density", 900.0);
  const double budget = args.getDouble("budget", 0.3);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const int hw = static_cast<int>(args.getInt(
      "threads", static_cast<long>(std::max(2u, std::thread::hardware_concurrency()))));
  // --metrics / --trace-out: engine telemetry for the measured slots (the
  // telemetry-overhead smoke diffs a --metrics run against a plain one).
  armTelemetryCli(args);
  const double benchT0 = now();

  SinrParams params;
  params.alpha = alpha;
  params = params.withRange(1.0);
  SinrParams nearFarParams = params;
  nearFarParams.mediumMode = MediumMode::NearFar;
  SinrParams hierParams = params;
  hierParams.mediumMode = MediumMode::Hierarchical;

  header("M2: SINR medium throughput (slots/sec)",
         "fast alpha-specialized kernel >= 3x the std::pow reference at the "
         "default alpha=3, n=2000 config");

  BenchReport report("medium");
  report.meta("alpha", alpha).meta("density", density).meta("budget_sec", budget);
  report.meta("seed", static_cast<double>(seed)).meta("threads", hw);

  row("%-6s %4s %10s %12s %12s %12s %10s", "n", "F", "variant", "slots/s", "decodes/s",
      "dec/slot", "vs pow");
  std::vector<std::pair<int, int>> configs{{500, 1}, {500, 8}, {2000, 1},
                                           {2000, 8}, {8000, 1}, {8000, 8}};
  // NearFar's winning regime needs extent >> nearField*R_T AND many
  // transmitters per grid cell; that only happens at larger n.
  if (args.getBool("big")) configs.push_back({32000, 1});
  for (const auto& [n, channels] : configs) {
    {
      const Workload w = makeWorkload(n, channels, density, seed);
      std::vector<Reception> rx;

      PowReference ref{params, channels, 0, {}, {}, {}};
      const Measured pow =
          measure([&] { ref.resolveSlot(w.pts, w.intents, rx); },
                  [&] { return ref.decodes; }, budget);

      Medium fast(params, channels);
      const Measured fastM =
          measure([&] { fast.resolveSlot(w.pts, w.intents, rx); },
                  [&] { return fast.stats().decodes; }, budget);

      Medium nearFar(nearFarParams, channels);
      const Measured nearFarM =
          measure([&] { nearFar.resolveSlot(w.pts, w.intents, rx); },
                  [&] { return nearFar.stats().decodes; }, budget);

      Medium hier(hierParams, channels);
      const Measured hierM =
          measure([&] { hier.resolveSlot(w.pts, w.intents, rx); },
                  [&] { return hier.stats().decodes; }, budget);

      Medium threaded(params, channels, hw);
      const Measured threadedM =
          measure([&] { threaded.resolveSlot(w.pts, w.intents, rx); },
                  [&] { return threaded.stats().decodes; }, budget);

      const struct {
        const char* name;
        const Measured& m;
      } variants[] = {{"pow", pow},
                      {"fast", fastM},
                      {"nearfar", nearFarM},
                      {"hier", hierM},
                      {"threads", threadedM}};
      for (const auto& [name, m] : variants) {
        const double speedup = m.slotsPerSec / pow.slotsPerSec;
        row("%-6d %4d %10s %12.1f %12.1f %12llu %9.2fx", n, channels, name, m.slotsPerSec,
            m.decodesPerSec, static_cast<unsigned long long>(m.decodesPerSlot), speedup);
        report.row()
            .col("n", n)
            .col("channels", channels)
            .col("variant", name)
            .col("slots_per_sec", m.slotsPerSec)
            .col("decodes_per_sec", m.decodesPerSec)
            .col("decodes_per_slot", static_cast<double>(m.decodesPerSlot))
            .col("speedup_vs_pow", speedup);
      }
    }
  }

  // --- Huge tier: the ROADMAP's million-node target ------------------------
  // Exact mode is omitted (O(n * tx) is ~6e9 kernel calls per slot at this
  // size); the point of the tier is that the hierarchical pyramid resolves
  // million-node slots at a pace NearFar's O(occupied cells) per listener
  // cannot match.  Slot counts are tiny (warm-up + budget), so this stays
  // CI-runnable.
  if (args.getBool("huge")) {
    const int n = 1'000'000;
    const int channels = 8;
    // A sparser field than the small-n configs (side ~50 vs ~33): the
    // hierarchical advantage is asymptotic in the occupied-cell count,
    // which the denser default would cap at ~1.1k cells.
    const double hugeDensity = args.getDouble("huge-density", 400.0);
    header("Huge tier: n=1,000,000 F=8 (slots/sec)",
           "hierarchical far-field vs NearFar at the million-node scale");
    const Workload w = makeWorkload(n, channels, hugeDensity, seed);
    std::vector<Reception> rx;

    Medium nearFar(nearFarParams, channels);
    const Measured nearFarM =
        measure([&] { nearFar.resolveSlot(w.pts, w.intents, rx); },
                [&] { return nearFar.stats().decodes; }, budget);

    Medium hier(hierParams, channels);
    const Measured hierM =
        measure([&] { hier.resolveSlot(w.pts, w.intents, rx); },
                [&] { return hier.stats().decodes; }, budget);

    const double ratio = hierM.slotsPerSec / nearFarM.slotsPerSec;
    row("%-8s %4s %14s %12s %12s %10s", "n", "F", "variant", "slots/s", "dec/slot",
        "vs nearfar");
    row("%-8d %4d %14s %12.3f %12llu %10s", n, channels, "nearfar_huge",
        nearFarM.slotsPerSec, static_cast<unsigned long long>(nearFarM.decodesPerSlot), "");
    row("%-8d %4d %14s %12.3f %12llu %9.2fx", n, channels, "grid_hier", hierM.slotsPerSec,
        static_cast<unsigned long long>(hierM.decodesPerSlot), ratio);
    report.row()
        .col("n", n)
        .col("channels", channels)
        .col("variant", "nearfar_huge")
        .col("slots_per_sec", nearFarM.slotsPerSec)
        .col("decodes_per_slot", static_cast<double>(nearFarM.decodesPerSlot));
    report.row()
        .col("n", n)
        .col("channels", channels)
        .col("variant", "grid_hier")
        .col("slots_per_sec", hierM.slotsPerSec)
        .col("decodes_per_slot", static_cast<double>(hierM.decodesPerSlot))
        .col("hier_vs_nearfar", ratio);
    report.meta("hier_vs_nearfar_huge", ratio);
  }

  // --- Mobility cases ------------------------------------------------------
  const double mobilityStep = args.getDouble("mobility-step", 0.002);

  // GridIndex maintenance over a drifting point set: the incremental
  // update() (points move between cells, geometry retained) vs a full
  // rebuild every step.
  header("GridIndex over drifting points (indexings/sec)",
         "incremental update() vs full rebuild; drift excluded from timing");
  row("%-6s %12s %12s %10s", "n", "rebuild/s", "update/s", "ratio");
  for (const int n : {8000, 32000}) {
    const double side = std::sqrt(static_cast<double>(n) / density);
    const double cellSize = 1.0;  // the NearFar medium's cell (nearField * R_T / 2)
    const double rebuildPerSec =
        measureIndexing(false, n, side, cellSize, mobilityStep, seed, budget);
    const double updatePerSec =
        measureIndexing(true, n, side, cellSize, mobilityStep, seed, budget);
    const double ratio = updatePerSec / rebuildPerSec;
    row("%-6d %12.1f %12.1f %9.2fx", n, rebuildPerSec, updatePerSec, ratio);
    report.row()
        .col("n", n)
        .col("variant", "grid_rebuild")
        .col("indexings_per_sec", rebuildPerSec);
    report.row()
        .col("n", n)
        .col("variant", "grid_update")
        .col("indexings_per_sec", updatePerSec)
        .col("update_vs_rebuild", ratio);
  }

  // Dynamic (mobile) vs static slot resolution at n=32k under NearFar:
  // the incremental-grid path must keep a drifting run within 2x of the
  // equivalent static run.  The dynamic lambda pays the realistic mobile
  // cost: a per-slot position drift plus the incremental index update.
  {
    const int n = 32000;
    const int channels = 8;
    header("Dynamic vs static resolveSlot, n=32000 F=8 (NearFar)",
           "mobile runs (drifting positions, incremental grid) within 2x of static");
    const Workload w = makeWorkload(n, channels, density, seed);
    const DriftBox box(w.pts);
    std::vector<Reception> rx;

    Medium staticMed(nearFarParams, channels);
    const Measured staticM =
        measure([&] { staticMed.resolveSlot(w.pts, w.intents, rx); },
                [&] { return staticMed.stats().decodes; }, budget);

    Medium dynamicMed(nearFarParams, channels);
    dynamicMed.setDynamicPositions(true);
    std::vector<Vec2> drifting = w.pts;
    Rng driftRng(seed ^ 0x6d6f62696cULL);
    const Measured dynamicM =
        measure(
            [&] {
              driftPoints(drifting, box, mobilityStep, driftRng);
              dynamicMed.resolveSlot(drifting, w.intents, rx);
            },
            [&] { return dynamicMed.stats().decodes; }, budget);

    const double ratio = dynamicM.slotsPerSec / staticM.slotsPerSec;
    row("%-6s %12s %12s %10s", "", "static/s", "dynamic/s", "ratio");
    row("%-6d %12.1f %12.1f %9.2fx", n, staticM.slotsPerSec, dynamicM.slotsPerSec, ratio);
    report.row()
        .col("n", n)
        .col("channels", channels)
        .col("variant", "nearfar_static")
        .col("slots_per_sec", staticM.slotsPerSec);
    report.row()
        .col("n", n)
        .col("channels", channels)
        .col("variant", "nearfar_dynamic")
        .col("slots_per_sec", dynamicM.slotsPerSec)
        .col("dynamic_vs_static", ratio);
    report.meta("dynamic_vs_static", ratio);
  }

  if (!finishTelemetryCli(args, now() - benchT0)) return 1;
  return report.write() ? 0 : 1;
}
