// scenario_runner: execute a declarative scenario across a seed batch.
//
//   scenario_runner --list
//   scenario_runner --scenario=<preset> [--seeds=K] [--seed0=S] [overrides]
//   scenario_runner --file=spec.txt [overrides]
//   scenario_runner --scenario=<preset> [overrides] --print-spec
//
// Spec resolution order: preset (--scenario) -> scenario file (--file) ->
// any other --key=value flag as a spec override (unknown keys abort; see
// scenario/spec.h for the key list).  Runner-owned flags: --list, --file,
// --scenario, --threads (batch lanes), --out-dir (report directory; the
// deterministic BENCH_scenario_<name>.json lands there instead of the
// cwd; --out is a compatibility alias), --csv (per-seed CSV path), and
// --print-spec (echo the fully-resolved spec as canonical `key = value`
// lines and exit without running — what a sweep cell or a preset plus
// overrides actually resolves to).
//
// Every ProtocolKind runs through its ProtocolDriver, so one CLI covers
// all ten workloads (`--protocol=coloring`, `--protocol=ruling_set`,
// ...).  Output: a per-seed table + batch summary on stdout, and the same
// numbers — including each driver's named metrics — as
// BENCH_scenario_<name>.json via BenchReport so scenario runs accumulate
// in the same perf history as the other benches.  Exit is nonzero when
// any seed fails, when no seed delivers, or when the report cannot be
// written.

#include <cstdio>
#include <thread>

#include "bench_common.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);

  if (args.getBool("list")) {
    for (const ScenarioPresetInfo& info : ScenarioRegistry::list()) {
      std::printf("%-20s %s\n", info.name.c_str(), info.description.c_str());
    }
    std::printf("\nmobility models (the `mobility` scenario key):\n");
    for (const MobilityModelInfo& info : mobilityModelList()) {
      std::printf("  %-18s %s\n", info.name, info.description);
    }
    return 0;
  }

  // 1. Resolve the spec: preset, then file, then flag overrides.
  ScenarioSpec spec;
  const std::string presetName = args.get("scenario");
  if (!presetName.empty() && !ScenarioRegistry::find(presetName, spec)) {
    std::fprintf(stderr, "unknown scenario \"%s\"; --list shows the registry\n",
                 presetName.c_str());
    return 2;
  }
  std::string err;
  const std::string file = args.get("file");
  if (!file.empty() && !loadScenarioFile(spec, file, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  if (!applyScenarioArgs(spec, args,
                         {"list", "scenario", "file", "threads", "out", "out-dir", "csv",
                          "print-spec", "metrics", "probes", "trace-out"},
                         err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  const std::string invalid = validateScenario(spec);
  if (!invalid.empty()) {
    std::fprintf(stderr, "invalid scenario: %s\n", invalid.c_str());
    return 2;
  }

  if (args.getBool("print-spec")) {
    // The canonical serialization: feed it back via --file to reproduce.
    std::fputs(scenarioToKeyValues(spec).c_str(), stdout);
    return 0;
  }

  const int threads = static_cast<int>(args.getInt(
      "threads", static_cast<long>(std::max(2u, std::thread::hardware_concurrency()))));
  const std::string outDir = args.get("out-dir", args.get("out", "."));

  // 2. Run the batch.  --metrics arms the counter/timer registry (summary
  //    table + "telemetry" block in the BENCH json); --trace-out=<path>
  //    records the slot-level Chrome trace.
  armTelemetryCli(args);
  header("scenario: " + spec.name, describeScenario(spec));
  const double t0 = now();
  const ScenarioBatchResult batch = runScenarioBatch(spec, threads);
  const double wall = now() - t0;
  const std::vector<std::string> metricNames = batch.metricNames();

  // 3. Per-seed table + report rows.
  BenchReport report("scenario_" + spec.name);
  report.meta("scenario", describeScenario(spec));
  report.meta("deployment", toString(spec.deployment.kind));
  report.meta("protocol", toString(spec.protocol));
  report.meta("medium_mode", toString(spec.sinr.mediumMode));
  report.meta("fading", toString(spec.sinr.fading.model));
  report.meta("n", spec.deployment.n);
  report.meta("channels", spec.channels);
  report.meta("seeds", spec.seeds);
  report.meta("seed0", static_cast<double>(spec.seed0));
  report.meta("batch_threads", threads);
  report.meta("batch_wall_sec", wall);

  row("%-8s %6s %10s %10s %9s %5s %10s %8s  %s", "seed", "n", "slots", "structure", "dec.rate",
      "ok", "valid", "wall(s)", "error");
  for (const SeedResult& r : batch.perSeed) {
    row("%-8llu %6d %10llu %10llu %9.3f %5s %10s %8.2f  %s",
        static_cast<unsigned long long>(r.seed), r.deployedN,
        static_cast<unsigned long long>(r.slots),
        static_cast<unsigned long long>(r.structureSlots), r.decodeRate,
        r.failed() ? "ERR" : (r.delivered ? "yes" : "NO"), toString(r.validity).c_str(),
        r.wallSec, r.error.c_str());
    report.row()
        .col("seed", static_cast<double>(r.seed))
        .col("deployed_n", r.deployedN)
        .col("slots", static_cast<double>(r.slots))
        .col("transmissions", static_cast<double>(r.transmissions))
        .col("listens", static_cast<double>(r.listens))
        .col("decodes", static_cast<double>(r.decodes))
        .col("decode_rate", r.decodeRate)
        .col("structure_slots", static_cast<double>(r.structureSlots))
        .col("delivered", r.delivered ? 1.0 : 0.0)
        .col("valid", toString(r.validity))
        .col("wall_sec", r.wallSec)
        .col("error", r.error);
    for (const auto& [name, value] : r.metrics.entries()) report.col(name, value);
  }

  // 4. Batch summary: the shared medium metrics, then every named metric
  //    the protocol reported.
  const Summary slots = batch.summarizeSlots();
  const Summary rate = batch.summarizeDecodeRate();
  const Summary wallSec = batch.summarizeWallSec();
  const int failures = batch.failures();
  const int delivered = batch.deliveredCount();
  row("%s", "");
  row("batch: %d seeds, %d delivered, %d failed, %d valid / %d invalid | slots mean=%.0f "
      "[%.0f, %.0f] | decode rate mean=%.3f | seed wall mean=%.2fs | %.2fs (%d lanes)",
      spec.seeds, delivered, failures, batch.validCount(), batch.invalidCount(), slots.mean,
      slots.min, slots.max, rate.mean, wallSec.mean, wall, threads);
  for (const std::string& name : metricNames) {
    const Summary m = batch.summarizeMetric(name);
    row("  metric %-24s mean=%-12.4g min=%-12.4g max=%-12.4g", name.c_str(), m.mean, m.min,
        m.max);
    report.meta(name + "_mean", m.mean);
  }
  report.meta("delivered_count", delivered);
  report.meta("failure_count", failures);
  report.meta("valid_count", batch.validCount());
  report.meta("invalid_count", batch.invalidCount());
  report.meta("slots_mean", slots.mean);
  report.meta("slots_min", slots.min);
  report.meta("slots_max", slots.max);
  report.meta("decode_rate_mean", rate.mean);
  report.meta("wall_sec_mean", wallSec.mean);
  report.meta("wall_sec_min", wallSec.min);
  report.meta("wall_sec_max", wallSec.max);

  // 5. Optional per-seed CSV: fixed columns + one per named metric.
  const std::string csvPath = args.get("csv");
  if (!csvPath.empty()) {
    CsvWriter csv(csvPath);
    std::vector<std::string> headerCols = {"seed",     "deployed_n",      "slots",
                                           "decode_rate", "structure_slots", "delivered",
                                           "valid",    "wall_sec",        "error"};
    for (const std::string& name : metricNames) headerCols.push_back(name);
    csv.header(headerCols);
    for (const SeedResult& r : batch.perSeed) {
      std::vector<std::string> cols = {std::to_string(r.seed),
                                       std::to_string(r.deployedN),
                                       std::to_string(r.slots),
                                       formatDouble(r.decodeRate, 6),
                                       std::to_string(r.structureSlots),
                                       r.delivered ? "1" : "0",
                                       toString(r.validity),
                                       formatDouble(r.wallSec, 4),
                                       r.error};
      for (const std::string& name : metricNames) {
        const double* v = r.metrics.find(name);
        cols.push_back(v ? formatDouble(*v, 9) : "");
      }
      csv.row(cols);
    }
    std::printf("wrote %s (%zu rows)\n", csvPath.c_str(), csv.rows());
  }

  if (!finishTelemetryCli(args, wall)) return 1;
  if (!report.write(outDir)) return 1;
  if (failures > 0) return 1;
  if (delivered == 0) {
    std::fprintf(stderr, "no seed delivered\n");
    return 1;
  }
  return 0;
}
