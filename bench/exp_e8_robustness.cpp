// E8 ("Fig. 5"): robustness to SINR parameters and to parameter
// *uncertainty* (§2: nodes know only [min, max] ranges for alpha, beta, N).

#include "bench_common.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int n = static_cast<int>(args.getInt("n", 800));
  const double side = args.getDouble("side", 1.0);
  const int channels = static_cast<int>(args.getInt("F", 8));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 8));

  header("E8: aggregation across SINR parameters and knowledge uncertainty",
         "section 2: the algorithms assume only bounds on alpha/beta/N; "
         "correctness must hold across the physical range, with graceful "
         "slot-count degradation");

  BenchReport report("e8_robustness");
  report.meta("n", n).meta("side", side).meta("channels", channels);
  report.meta("seed", static_cast<double>(seed));

  row("%-8s %-8s %12s %12s %8s", "alpha", "beta", "structure", "agg", "ok");
  for (const double alpha : {2.5, 3.0, 4.0}) {
    for (const double beta : {1.2, 1.5, 3.0}) {
      SinrParams p;
      p.alpha = alpha;
      p.beta = beta;
      p = p.withRange(1.0);
      Rng rng(seed);
      auto pts = deployUniformSquare(n, side, rng);
      Network net(std::move(pts), p);
      Simulator sim(net, channels, seed + 3);
      const AggregationStructure s = buildStructure(sim);
      const auto values = randomValues(n, seed + 17);
      const AggregateRun run = runAggregation(sim, s, values, AggKind::Max);
      row("%-8.1f %-8.1f %12llu %12llu %8s", alpha, beta,
          static_cast<unsigned long long>(s.costs.structureTotal()),
          static_cast<unsigned long long>(run.costs.aggregationTotal()),
          run.delivered ? "yes" : "NO");
      report.row()
          .col("sweep", "params")
          .col("alpha", alpha)
          .col("beta", beta)
          .col("structure", static_cast<double>(s.costs.structureTotal()))
          .col("agg", static_cast<double>(run.costs.aggregationTotal()))
          .col("delivered", run.delivered ? 1.0 : 0.0);
    }
  }

  row("%s", "");
  row("%s", "Uncertain knowledge (relative range width around true params):");
  row("%-8s %12s %12s %8s", "width", "structure", "agg", "ok");
  for (const double width : {0.0, 0.1, 0.2, 0.4}) {
    const SinrParams truth{};
    const SinrBounds bounds = SinrBounds::around(truth, width);
    Rng rng(seed);
    auto pts = deployUniformSquare(n, side, rng);
    Network net(std::move(pts), truth, Tuning{}, &bounds);
    Simulator sim(net, channels, seed + 3);
    const AggregationStructure s = buildStructure(sim);
    const auto values = randomValues(n, seed + 17);
    const AggregateRun run = runAggregation(sim, s, values, AggKind::Max);
    row("%-8.2f %12llu %12llu %8s", width,
        static_cast<unsigned long long>(s.costs.structureTotal()),
        static_cast<unsigned long long>(run.costs.aggregationTotal()),
        run.delivered ? "yes" : "NO");
    report.row()
        .col("sweep", "uncertainty")
        .col("width", width)
        .col("structure", static_cast<double>(s.costs.structureTotal()))
        .col("agg", static_cast<double>(run.costs.aggregationTotal()))
        .col("delivered", run.delivered ? 1.0 : 0.0);
  }
  return report.write() ? 0 : 1;
}
