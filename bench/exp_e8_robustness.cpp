// E8 ("Fig. 5"): robustness to SINR parameters and to parameter
// *uncertainty* (§2: nodes know only [min, max] ranges for alpha, beta, N).
//
// Driven by the sweep campaign engine as two campaigns:
//   e8_robustness   — the alpha x beta grid (sweeps/e8_robustness.sweep)
//   e8_uncertainty  — the bounds_width knowledge sweep
//                     (sweeps/e8_uncertainty.sweep)
// Each emits its own BENCH_sweep_*.json + CSV.  Flags: the sweep_runner
// set plus scenario/axis overrides, applied to both campaigns.

#include "sweep_cli.h"

#include "sweep/presets.h"

using namespace mcs;
using namespace mcs::bench;

namespace {

int runPreset(const char* name, const Args& args) {
  SweepSpec spec;
  std::string err;
  if (!SweepRegistry::find(name, spec, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  if (!applySweepFlagOverrides(spec, args, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  // Two campaigns share the flag set: an explicit --csv=out.csv becomes
  // out.<campaign>.csv so the second campaign does not overwrite the first.
  std::string csv = args.get("csv");
  if (!csv.empty()) {
    const std::size_t dot = csv.rfind('.');
    const std::size_t slash = csv.find_last_of("/\\");
    const bool hasExt = dot != std::string::npos && (slash == std::string::npos || dot > slash);
    csv = hasExt ? csv.substr(0, dot) + "." + name + csv.substr(dot) : csv + "." + name;
  }
  return runSweepCampaignCli(spec, args, csv);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  header("E8: aggregation across SINR parameters and knowledge uncertainty",
         "section 2: correctness must hold across the physical range and under "
         "bounds-only knowledge, with graceful slot-count degradation");
  const int grid = runPreset("e8_robustness", args);
  const int uncertainty = runPreset("e8_uncertainty", args);
  return grid != 0 ? grid : uncertainty;
}
