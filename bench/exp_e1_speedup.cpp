// E1 ("Fig. 1"): linear speedup of data aggregation in the number of
// channels F (Theorem 22: O(D + Delta/F + log n log log n)).
//
// Dense deployment (cluster sizes >> log n) so the Delta/F term dominates.
// Baseline: the single-channel direct-to-dominator ALOHA aggregation
// ([24]-class, O(D + Delta)) on the same clustering substrate.

#include "bench_common.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int n = static_cast<int>(args.getInt("n", 3500));
  const double side = args.getDouble("side", 0.65);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

  header("E1: aggregation slots vs number of channels F",
         "Thm 22: O(D + Delta/F + log n log log n) -> near-linear speedup in F "
         "until the additive log-terms (and f_v = |C|/(c1 ln n)) saturate");

  Network net = densePatch(n, side, seed);
  row("n=%d side=%.2f Delta=%d D~%d", n, side, net.maxDegree(),
      net.graph().diameterEstimate());
  const auto values = randomValues(n, seed + 99);

  BenchReport report("e1_speedup");
  report.meta("n", n).meta("side", side).meta("seed", static_cast<double>(seed));
  report.meta("delta", net.maxDegree()).meta("diameter", net.graph().diameterEstimate());

  row("%-8s %12s %12s %12s %12s %8s", "F", "uplink", "agg-total", "structure", "speedup(up)",
      "ok");
  double uplink1 = 0;
  for (const int channels : {1, 2, 4, 8, 16, 32}) {
    Simulator sim(net, channels, seed + 7);
    const AggregationStructure s = buildStructure(sim);
    const AggregateRun run = runAggregation(sim, s, values, AggKind::Max);
    if (channels == 1) uplink1 = static_cast<double>(run.costs.uplink);
    const double speedup = uplink1 / static_cast<double>(run.costs.uplink);
    row("%-8d %12llu %12llu %12llu %12.2f %8s", channels,
        static_cast<unsigned long long>(run.costs.uplink),
        static_cast<unsigned long long>(run.costs.aggregationTotal()),
        static_cast<unsigned long long>(s.costs.structureTotal()), speedup,
        run.delivered ? "yes" : "NO");
    report.row()
        .col("variant", "mcs")
        .col("channels", channels)
        .col("uplink", static_cast<double>(run.costs.uplink))
        .col("agg_total", static_cast<double>(run.costs.aggregationTotal()))
        .col("structure", static_cast<double>(s.costs.structureTotal()))
        .col("speedup_uplink", speedup)
        .col("delivered", run.delivered ? 1.0 : 0.0);
  }

  // Baseline: single-channel direct uplink on the same structure.
  {
    Simulator sim(net, 1, seed + 7);
    const AggregationStructure s = buildStructure(sim);
    const AggregateRun aloha = runAlohaAggregation(sim, s, values, AggKind::Max);
    const double speedup = uplink1 / static_cast<double>(aloha.costs.uplink);
    row("%-8s %12llu %12llu %12s %12.2f %8s", "aloha",
        static_cast<unsigned long long>(aloha.costs.uplink),
        static_cast<unsigned long long>(aloha.costs.aggregationTotal()), "-", speedup,
        aloha.delivered ? "yes" : "NO");
    report.row()
        .col("variant", "aloha")
        .col("channels", 1)
        .col("uplink", static_cast<double>(aloha.costs.uplink))
        .col("agg_total", static_cast<double>(aloha.costs.aggregationTotal()))
        .col("speedup_uplink", speedup)
        .col("delivered", aloha.delivered ? 1.0 : 0.0);
  }
  return report.write() ? 0 : 1;
}
