// E9 ("Fig. 6"): the Bounded Contention machinery of §6 (Lemmas 19-21):
// contention stays <= ~lambda * f_v per cluster; the number of increasing
// phases is O(log(Delta/F) + log log n) and unchanging phases
// O(Delta/(F log n)).

#include "bench_common.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const double side = args.getDouble("side", 1.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 9));
  const int channels = static_cast<int>(args.getInt("F", 8));

  header("E9: uplink phase structure and contention (Lemmas 19-21)",
         "contention/f_v stays bounded near lambda=1/2 (one overshoot "
         "doubling allowed); increasing phases grow ~log, unchanging phases "
         "~Delta/(F log n)");

  BenchReport report("e9_contention");
  report.meta("side", side).meta("channels", channels).meta("seed",
                                                            static_cast<double>(seed));

  row("%-8s %6s %10s %12s %12s %12s %12s", "n", "Delta", "maxPhases", "increasing",
      "unchanging", "maxCont/fv", "uplinkSlots");
  for (const int n : {500, 1000, 2000, 4000}) {
    Network net = densePatch(n, side, seed);
    Simulator sim(net, channels, seed + 3);
    const AggregationStructure s = buildStructure(sim);
    const auto values = randomValues(n, seed + 5);
    const IntraResult intra = aggregateIntra(sim, s, values, AggKind::Max);
    row("%-8d %6d %10d %12d %12d %12.2f %12llu", n, net.maxDegree(),
        intra.uplink.maxPhasesAnyCluster, intra.uplink.increasingPhases,
        intra.uplink.unchangingPhases, intra.uplink.maxContentionRatio,
        static_cast<unsigned long long>(intra.uplink.slots));
    report.row()
        .col("n", n)
        .col("delta", net.maxDegree())
        .col("max_phases", intra.uplink.maxPhasesAnyCluster)
        .col("increasing", intra.uplink.increasingPhases)
        .col("unchanging", intra.uplink.unchangingPhases)
        .col("max_contention_ratio", intra.uplink.maxContentionRatio)
        .col("uplink_slots", static_cast<double>(intra.uplink.slots));
  }
  return report.write() ? 0 : 1;
}
