// E2 ("Fig. 2"): aggregation cost as the network grows at fixed density
// and fixed F (Theorem 22 in n: the Delta/F term is constant here, so the
// cost should grow no faster than D + log n log log n).
//
// Driven by the sweep campaign engine: the grid is the `e2_scaling`
// preset, whose text is also committed as sweeps/e2_scaling.sweep — this
// binary, `sweep_runner --sweep=sweeps/e2_scaling.sweep`, and the CI
// shard matrix all run the identical campaign.  Flags: the sweep_runner
// set (--shard, --threads, --out-dir, --resume, --cells) plus any
// scenario/axis override (e.g. --sweep.channels=4,8).

#include "sweep_cli.h"

#include "sweep/presets.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  SweepSpec spec;
  std::string err;
  if (!SweepRegistry::find("e2_scaling", spec, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  if (!applySweepFlagOverrides(spec, args, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  header("E2: aggregation slots vs n (fixed density, fixed F)",
         "Thm 22: with Delta ~ const, total grows like D + log n log log n (slowly)");
  return runSweepCampaignCli(spec, args);
}
