// E2 ("Fig. 2"): aggregation cost as the network grows at fixed density
// and fixed F (Theorem 22 in n: the Delta/F term is constant here, so the
// cost should grow no faster than D + log n log log n).

#include "bench_common.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const double density = args.getDouble("density", 900.0);
  const int channels = static_cast<int>(args.getInt("F", 8));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 2));

  header("E2: aggregation slots vs n (fixed density, fixed F)",
         "Thm 22: with Delta ~ const, total grows like D + log n log log n "
         "(slowly); slots normalized by the predicted shape stay ~flat");

  BenchReport report("e2_scaling_n");
  report.meta("density", density).meta("channels", channels).meta("seed",
                                                                  static_cast<double>(seed));

  row("%-8s %6s %6s %12s %12s %12s %10s %6s", "n", "Delta", "D", "structure", "agg", "total",
      "agg/shape", "ok");
  for (const int n : {250, 500, 1000, 2000, 4000}) {
    Network net = uniformAtDensity(n, density, seed);
    const int delta = net.maxDegree();
    const int diam = net.graph().diameterEstimate();
    Simulator sim(net, channels, seed + 5);
    const AggregationStructure s = buildStructure(sim);
    const auto values = randomValues(n, seed + n);
    const AggregateRun run = runAggregation(sim, s, values, AggKind::Max);
    const double lnn = std::log(static_cast<double>(n));
    const double shape =
        diam + static_cast<double>(delta) / channels + lnn * std::log(lnn);
    row("%-8d %6d %6d %12llu %12llu %12llu %10.1f %6s", n, delta, diam,
        static_cast<unsigned long long>(s.costs.structureTotal()),
        static_cast<unsigned long long>(run.costs.aggregationTotal()),
        static_cast<unsigned long long>(s.costs.total() + run.costs.aggregationTotal()),
        static_cast<double>(run.costs.aggregationTotal()) / shape,
        run.delivered ? "yes" : "NO");
    report.row()
        .col("n", n)
        .col("delta", delta)
        .col("diameter", diam)
        .col("structure", static_cast<double>(s.costs.structureTotal()))
        .col("agg", static_cast<double>(run.costs.aggregationTotal()))
        .col("total", static_cast<double>(s.costs.total() + run.costs.aggregationTotal()))
        .col("agg_over_shape", static_cast<double>(run.costs.aggregationTotal()) / shape)
        .col("delivered", run.delivered ? 1.0 : 0.0);
  }
  return report.write() ? 0 : 1;
}
