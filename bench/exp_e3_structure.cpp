// E3 ("Table 1"): cost of building the aggregation structure (Theorem 10 /
// Lemmas 7, 8, 14): dominating set and coloring are O(log n); CSA is the
// O(log^2 n) bottleneck (naive DeltaHat = n); everything normalized by
// log^2 n should stay bounded.

#include "bench_common.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const double density = args.getDouble("density", 900.0);
  const int channels = static_cast<int>(args.getInt("F", 8));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 3));

  header("E3: structure construction cost per stage vs n",
         "Thm 10: O(log^2 n) total; Lemma 7/8: dominating set + coloring "
         "O(log n); Lemma 14: CSA O(log^2 n) with naive DeltaHat = n");

  BenchReport report("e3_structure");
  report.meta("density", density).meta("channels", channels).meta("seed",
                                                                  static_cast<double>(seed));

  row("%-8s %8s %10s %10s %10s %10s %12s %12s", "n", "doms", "domset", "coloring", "csa",
      "reporters", "total", "tot/log^2 n");
  for (const int n : {250, 500, 1000, 2000, 4000}) {
    Network net = uniformAtDensity(n, density, seed);
    Simulator sim(net, channels, seed + 11);
    const AggregationStructure s = buildStructure(sim);
    const double lnn = std::log(static_cast<double>(n));
    row("%-8d %8zu %10llu %10llu %10llu %10llu %12llu %12.1f", n,
        s.clustering.dominators.size(),
        static_cast<unsigned long long>(s.costs.dominatingSet),
        static_cast<unsigned long long>(s.costs.clusterColoring),
        static_cast<unsigned long long>(s.costs.csa),
        static_cast<unsigned long long>(s.costs.reporters),
        static_cast<unsigned long long>(s.costs.structureTotal()),
        static_cast<double>(s.costs.structureTotal()) / (lnn * lnn));
    report.row()
        .col("n", n)
        .col("dominators", static_cast<double>(s.clustering.dominators.size()))
        .col("dominating_set", static_cast<double>(s.costs.dominatingSet))
        .col("coloring", static_cast<double>(s.costs.clusterColoring))
        .col("csa", static_cast<double>(s.costs.csa))
        .col("reporters", static_cast<double>(s.costs.reporters))
        .col("total", static_cast<double>(s.costs.structureTotal()))
        .col("total_over_log2n", static_cast<double>(s.costs.structureTotal()) / (lnn * lnn));
  }

  row("%s", "");
  row("%s", "With a tight DeltaHat (log^O(1) n-approximation of Delta known):");
  row("%-8s %12s %12s", "n", "csa(naive)", "csa(tight)");
  for (const int n : {500, 1000, 2000}) {
    Network net = uniformAtDensity(n, density, seed);
    Simulator simA(net, channels, seed + 13);
    StructureOptions naive;
    const AggregationStructure sa = buildStructure(simA, naive);
    Simulator simB(net, channels, seed + 13);
    StructureOptions tight;
    tight.deltaHat = 2 * net.maxDegree();
    const AggregationStructure sb = buildStructure(simB, tight);
    row("%-8d %12llu %12llu", n, static_cast<unsigned long long>(sa.costs.csa),
        static_cast<unsigned long long>(sb.costs.csa));
    report.row()
        .col("n", n)
        .col("csa_naive", static_cast<double>(sa.costs.csa))
        .col("csa_tight", static_cast<double>(sb.costs.csa));
  }
  return report.write() ? 0 : 1;
}
