// sweep_runner: execute a declarative parameter-sweep campaign.
//
//   sweep_runner --list
//   sweep_runner --sweep=sweeps/e2_scaling.sweep [--shard=0/2] [overrides]
//   sweep_runner --preset=e4_coloring [--cells] [overrides]
//
// Spec resolution: preset (--preset) -> sweep file (--sweep) -> any other
// --key=value flag as a sweep override (fixed scenario key, or a
// sweep./zip. axis; overrides replace same-key assignments, so
// `--preset=e2_scaling --seeds=1` shrinks the campaign).  Runner-owned
// flags: --list, --cells (print the expansion and shard membership
// without running), --dry-run (like --cells plus each cell's fully
// resolved `key = value` scenario — debug a sweep file without running
// it), --shard=i/k (deterministic cell partition for CI matrices),
// --threads (batch lanes per cell), --out-dir (report + cell JSON root),
// --csv (long-form CSV path), --resume (skip cells whose cell JSON
// already exists).
//
// Output: BENCH_sweep_<name>.json (per-cell summary statistics over every
// named metric and wall time, plus per-seed rows) and a long-form CSV —
// one row per (cell, seed, metric).  Compare campaigns across commits
// with sweep_check.  Exit: 0 success, 1 seed failures or unwritable
// reports, 2 usage/spec errors.

#include "sweep_cli.h"

#include "sweep/presets.h"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);

  if (args.getBool("list")) {
    for (const SweepPresetInfo& info : SweepRegistry::list()) {
      std::printf("%-20s %s\n", info.name.c_str(), info.description.c_str());
    }
    return 0;
  }

  SweepSpec spec;
  std::string err;
  const std::string preset = args.get("preset");
  const std::string file = args.get("sweep");
  if (preset.empty() && file.empty()) {
    std::fprintf(stderr,
                 "usage: sweep_runner --list | --preset=<name> | --sweep=<file> "
                 "[--shard=i/k] [--threads=N] [--out-dir=DIR] [--csv=PATH] [--resume] "
                 "[--cells] [--dry-run] [overrides]\n");
    return 2;
  }
  if (!preset.empty() && !SweepRegistry::find(preset, spec, err)) {
    std::fprintf(stderr, "%s; --list shows the registry\n", err.c_str());
    return 2;
  }
  if (!file.empty() && !loadSweepFile(spec, file, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  if (!applySweepFlagOverrides(spec, args, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  return runSweepCampaignCli(spec, args);
}
