// bench_campaign: work-queue vs static-shard scheduling on a skewed
// sweep grid.
//
// The grid is adversarial for round-robin sharding: with k workers, the
// heavy cells sit at indices ≡ 0 (mod k), so the static partition
// (cell i -> shard i%k) stacks every heavy cell on shard 0 while the
// work queue spreads them across whoever is free.
//
// The gated figure of merit is *makespan*, not raw wall time: per-cell
// costs are measured once by a sequential calibration run, then
//   static makespan = slowest shard's summed cell cost (round-robin), and
//   queue makespan  = greedy list-scheduling makespan (each cell, in
//                     expansion order, goes to the earliest-free worker —
//                     exactly the assignment the coordinator's lease loop
//                     converges to when cell cost dominates frame RTT).
// Makespan is the wall time a machine with >= k cores would see; gating
// on it keeps the bench meaningful on CI boxes with fewer cores than
// workers, where raw wall of any k-process fleet degenerates to
// total-work either way.  The real coordinator still runs end-to-end
// (workers=k, real fork/lease/reduce machinery) and its raw wall and
// lease counters are recorded alongside.
//
//   bench_campaign [--heavy-n=800] [--light-n=150] [--seeds=2]
//                  [--out=.] [--require-speedup=R]
//
// --require-speedup fails the run (exit 1) when the 8-worker makespan
// speedup lands below R — the CI gate for the >= 1.5x target.  Writes
// BENCH_campaign.json (sweep_check compares it row-wise).

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "campaign/coordinator.h"
#include "sweep/expand.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

namespace mcs {
namespace {

/// The skewed sweep: 3*k cells over an n axis, heavy n at every index
/// ≡ 0 (mod k).
bool skewedSweep(int workers, int heavyN, int lightN, int seeds, SweepSpec& spec,
                 std::string& err) {
  spec = SweepSpec{};
  spec.name = "campaign_skew_w" + std::to_string(workers);
  if (!applySweepKey(spec, "base", "uniform_square", "", err)) return false;
  if (!applySweepKey(spec, "seeds", std::to_string(seeds), "", err)) return false;
  if (!applySweepKey(spec, "seed0", "1", "", err)) return false;
  std::string axis;
  for (int i = 0; i < 3 * workers; ++i) {
    if (!axis.empty()) axis += ',';
    axis += std::to_string(i % workers == 0 ? heavyN : lightN);
  }
  return applySweepKey(spec, "sweep.n", axis, "", err);
}

/// Slowest round-robin shard: sum of costs of cells i ≡ shard (mod k).
double staticMakespan(const std::vector<double>& cost, int workers) {
  double worst = 0.0;
  for (int s = 0; s < workers; ++s) {
    double sum = 0.0;
    for (std::size_t i = static_cast<std::size_t>(s); i < cost.size();
         i += static_cast<std::size_t>(workers)) {
      sum += cost[i];
    }
    worst = std::max(worst, sum);
  }
  return worst;
}

/// Greedy list scheduling: each cell, in order, to the earliest-free
/// worker; makespan = last finish time.
double queueMakespan(const std::vector<double>& cost, int workers) {
  std::vector<double> freeAt(static_cast<std::size_t>(workers), 0.0);
  for (const double c : cost) {
    auto it = std::min_element(freeAt.begin(), freeAt.end());
    *it += c;
  }
  return *std::max_element(freeAt.begin(), freeAt.end());
}

}  // namespace
}  // namespace mcs

int main(int argc, char** argv) {
  using namespace mcs;
  using namespace mcs::bench;

  const Args args(argc, argv);
  const int heavyN = static_cast<int>(args.getInt("heavy-n", 800));
  const int lightN = static_cast<int>(args.getInt("light-n", 150));
  const int seeds = static_cast<int>(args.getInt("seeds", 2));
  const std::string outDir = args.get("out", ".");
  const double requireSpeedup = args.getDouble("require-speedup", 0.0);
  armTelemetryCli(args);

  header("bench: campaign scheduling",
         "skewed grid, static round-robin shards vs work-queue leases");
  row("%-8s %-8s %6s %6s %14s %10s %10s", "config", "mode", "cells", "heavy", "makespan(s)",
      "speedup", "wall(s)");

  BenchReport report("campaign");
  report.meta("heavy_n", heavyN).meta("light_n", lightN).meta("seeds", seeds);

  const double t0 = now();
  bool ok = true;
  double w8Speedup = 0.0;
  for (const int workers : {4, 8}) {
    SweepSpec spec;
    std::string err;
    if (!skewedSweep(workers, heavyN, lightN, seeds, spec, err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    // (built up piecewise: GCC 12's -Werror=restrict misfires on the
    // one-line `"w" + std::to_string(...)` form when inlined)
    std::string config = "w";
    config += std::to_string(workers);

    // Calibration: one sequential in-process pass measures every cell's
    // cost on an otherwise idle machine (cells never overlap).
    const std::string calDir = outDir + "/bench-campaign/" + config + "-cal";
    std::filesystem::remove_all(calDir);
    CampaignOptions cal;
    cal.threads = 1;
    cal.outDir = calDir;
    CampaignResult calRun;
    if (!runCampaign(spec, cal, calRun, err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    std::vector<double> cost;
    cost.reserve(calRun.cells.size());
    for (const CellResult& cell : calRun.cells) {
      double sum = 0.0;
      for (const SeedResult& r : cell.batch.perSeed) sum += r.wallSec;
      cost.push_back(sum);
    }

    const double staticMk = staticMakespan(cost, workers);
    const double queueMk = queueMakespan(cost, workers);
    const double speedup = queueMk > 0.0 ? staticMk / queueMk : 0.0;
    if (workers == 8) w8Speedup = speedup;

    // Drive the real coordinator end-to-end on the same grid: forked
    // workers, lease protocol, tree reduction.  Its raw wall depends on
    // the host's core count, so it is recorded, not the gated number.
    const std::string wqDir = outDir + "/bench-campaign/" + config + "-wq";
    std::filesystem::remove_all(wqDir);
    campaign::WorkQueueOptions wq;
    wq.workers = workers;
    wq.outDir = wqDir;
    campaign::WorkQueueCampaign wqc;
    if (!campaign::runCampaignWorkQueue(spec, wq, wqc, err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    if (wqc.failures() > 0 || wqc.leases != cost.size()) ok = false;

    const int heavyCells = 3;
    row("%-8s %-8s %6zu %6d %14.3f %10s %10.2f", config.c_str(), "static", cost.size(),
        heavyCells, staticMk, "1.00", calRun.wallSec);
    row("%-8s %-8s %6zu %6d %14.3f %10.2f %10.2f", config.c_str(), "queue", cost.size(),
        heavyCells, queueMk, speedup, wqc.wallSec);

    report.row()
        .col("config", config)
        .col("mode", "static")
        .col("cells", static_cast<double>(cost.size()))
        .col("heavy_cells", heavyCells)
        .col("makespan_wall_sec", staticMk);
    report.row()
        .col("config", config)
        .col("mode", "queue")
        .col("cells", static_cast<double>(cost.size()))
        .col("heavy_cells", heavyCells)
        .col("makespan_wall_sec", queueMk)
        .col("speedup", speedup)
        .col("wall_sec", wqc.wallSec)
        .col("leases", static_cast<double>(wqc.leases))
        .col("requeues", static_cast<double>(wqc.requeues));
  }
  const double wall = now() - t0;

  row("%s", "");
  if (requireSpeedup > 0.0) {
    row("gate: w8 makespan speedup %.2fx (required >= %.2fx) -> %s", w8Speedup,
        requireSpeedup, w8Speedup >= requireSpeedup ? "PASS" : "FAIL");
    if (w8Speedup < requireSpeedup) ok = false;
  }
  if (!report.write(outDir)) return 1;
  if (!finishTelemetryCli(args, wall)) return 1;
  return ok ? 0 : 1;
}
