// sweep_query: interactive analytics over a columnar campaign store.
//
//   sweep_query <campaign.store> [--schema] [--cells]
//               [--select=metric1,metric2] [--where=axis=value,...]
//               [--group-by=axis] [--format=table|csv|json]
//
// The store is memory-mapped (store/reader.h); a query touches only the
// columns it names, so asking one question of a million-cell campaign
// costs a column scan, not a full-report parse.  Aggregates re-merge the
// per-cell accumulator states: count/mean/stddev/ci95/min/max/sum are
// exact (bit-identical to the campaign reduction), p50/p95 are exact
// below the sketch threshold and within the store's alpha above it.
//
//   --schema     print the store's header, axes, and metrics, then exit
//   --cells      list per-cell rows (index, label, axes, counters)
//   --select     metrics to aggregate (default: all)
//   --where      conjunctive equality filters on axis values (or label=...)
//   --group-by   one group per distinct value of this axis ("label" works)
//   --format     table (default), csv, or json
//
// Exit 0 on success, 1 on bad queries (unknown metric/axis), 2 on usage
// or unreadable stores.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "store/query.h"
#include "store/reader.h"
#include "sweep/report.h"
#include "util/args.h"

using namespace mcs;

namespace {

std::vector<std::string> splitList(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parseWhere(const std::string& s,
                std::vector<std::pair<std::string, std::string>>& out, std::string& err) {
  for (const std::string& clause : splitList(s, ',')) {
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      err = "--where clause \"" + clause + "\" is not axis=value";
      return false;
    }
    out.emplace_back(clause.substr(0, eq), clause.substr(eq + 1));
  }
  return true;
}

int printSchema(const store::StoreReader& reader) {
  const store::StoreHeader& h = reader.header();
  std::printf("campaign:  %s (base %s)\n", reader.campaignName().c_str(),
              reader.baseName().c_str());
  std::printf("cells:     %zu in store (shard %u/%u of %u total)\n", reader.cells(),
              h.shardIndex, h.shardCount, h.totalCells);
  std::printf("file:      %" PRIu64 " bytes, format v%u%s\n", reader.fileBytes(), h.version,
              (h.flags & store::kFlagWallStripped) != 0 ? ", wall times stripped" : "");
  std::printf("sketch:    alpha %g, exact below %u samples\n", h.sketchAlpha,
              h.sketchThreshold);
  std::printf("axes:     ");
  for (const std::string& a : reader.axisNames()) std::printf(" %s", a.c_str());
  std::printf("\nmetrics:  ");
  for (const std::string& m : reader.metricNames()) std::printf(" %s", m.c_str());
  std::printf("\n");
  return 0;
}

int printCells(const store::StoreReader& reader) {
  std::printf("%-6s %-32s", "cell", "label");
  for (const std::string& a : reader.axisNames()) std::printf(" %12s", a.c_str());
  std::printf(" %6s %5s %9s %6s %7s\n", "seeds", "fail", "delivered", "valid", "invalid");
  for (std::size_t row = 0; row < reader.cells(); ++row) {
    std::printf("%-6u %-32s", reader.cellIndexCol()[row],
                reader.str(reader.labelCol()[row]).c_str());
    for (std::size_t a = 0; a < reader.axisNames().size(); ++a) {
      std::printf(" %12s", reader.str(reader.axisCol(a)[row]).c_str());
    }
    std::printf(" %6u %5u %9u %6u %7u\n", reader.seedsCol()[row], reader.failuresCol()[row],
                reader.deliveredCol()[row], reader.validCol()[row],
                reader.invalidCol()[row]);
  }
  return 0;
}

void printTable(const std::string& groupName, const std::vector<store::QueryGroup>& groups) {
  std::printf("%-20s %8s %-24s %10s %12s %12s %12s %12s %12s %12s\n", groupName.c_str(),
              "cells", "metric", "count", "mean", "stddev", "min", "p50", "p95", "max");
  for (const store::QueryGroup& g : groups) {
    for (const auto& [name, s] : g.stats) {
      const Summary sum = s.summary();
      std::printf("%-20s %8" PRIu64 " %-24s %10zu %12.6g %12.6g %12.6g %12.6g %12.6g %12.6g\n",
                  g.key.c_str(), g.cells, name.c_str(), sum.count, sum.mean, sum.stddev,
                  sum.min, sum.median, sum.p95, sum.max);
    }
  }
}

void printCsv(const std::string& groupName, const std::vector<store::QueryGroup>& groups) {
  std::printf("%s,cells,metric,count,mean,stddev,ci95,min,p50,p95,max\n", groupName.c_str());
  for (const store::QueryGroup& g : groups) {
    for (const auto& [name, s] : g.stats) {
      const Summary sum = s.summary();
      std::printf("%s,%" PRIu64 ",%s,%zu,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n",
                  g.key.c_str(), g.cells, name.c_str(), sum.count, sum.mean, sum.stddev,
                  sum.ci95, sum.min, sum.median, sum.p95, sum.max);
    }
  }
}

void printJson(const std::string& groupName, const std::vector<store::QueryGroup>& groups) {
  Json out = Json::array();
  for (const store::QueryGroup& g : groups) {
    Json jg = Json::object();
    jg.set(groupName, g.key);
    jg.set("cells", static_cast<double>(g.cells));
    Json metrics = Json::object();
    for (const auto& [name, s] : g.stats) metrics.set(name, summaryToJson(s.summary()));
    jg.set("metrics", std::move(metrics));
    out.push_back(std::move(jg));
  }
  std::printf("%s\n", out.dump().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: sweep_query <campaign.store> [--schema] [--cells] "
                 "[--select=m1,m2] [--where=axis=value,...] [--group-by=axis] "
                 "[--format=table|csv|json]\n");
    return 2;
  }

  store::StoreReader reader;
  std::string err;
  if (!reader.open(args.positional().front(), err)) {
    std::fprintf(stderr, "sweep_query: %s\n", err.c_str());
    return 2;
  }

  if (args.getBool("schema")) return printSchema(reader);
  if (args.getBool("cells")) return printCells(reader);

  store::StoreQuery query;
  query.metrics = splitList(args.get("select"), ',');
  if (!parseWhere(args.get("where"), query.where, err)) {
    std::fprintf(stderr, "sweep_query: %s\n", err.c_str());
    return 2;
  }
  query.groupBy = args.get("group-by");

  const std::string format = args.get("format", "table");
  if (format != "table" && format != "csv" && format != "json") {
    std::fprintf(stderr, "sweep_query: unknown --format \"%s\"\n", format.c_str());
    return 2;
  }

  std::vector<store::QueryGroup> groups;
  if (!store::runStoreQuery(reader, query, groups, err)) {
    std::fprintf(stderr, "sweep_query: %s\n", err.c_str());
    return 1;
  }

  const std::string groupName = query.groupBy.empty() ? "group" : query.groupBy;
  if (format == "csv") {
    printCsv(groupName, groups);
  } else if (format == "json") {
    printJson(groupName, groups);
  } else {
    printTable(groupName, groups);
  }
  return 0;
}
