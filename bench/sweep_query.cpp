// sweep_query: interactive analytics over columnar campaign stores.
//
//   sweep_query <campaign.store> [<more.store> ...]
//               [--schema] [--cells]
//               [--select=metric1,metric2] [--where=axis=value,...]
//               [--group-by=axis] [--series] [--pivot=rowAxis,colAxis]
//               [--format=table|csv|json]
//
// Stores are memory-mapped (store/reader.h); a query touches only the
// columns it names, so asking one question of a million-cell campaign
// costs a column scan, not a full-report parse.  Several stores query as
// one union (the intended shape: shards of one campaign) — cell indices
// must be disjoint, overlap is an error.  Aggregates re-merge the
// per-cell accumulator states: count/mean/stddev/ci95/min/max/sum are
// exact (bit-identical to the campaign reduction), p50/p95 are exact
// below the sketch threshold and within the store's alpha above it.
//
//   --schema     print each store's header, axes, and metrics, then exit
//   --cells      list per-cell rows (index, label, axes, counters)
//   --select     metrics to aggregate (default: all).  "tm.<counter>"
//                selects a per-cell telemetry counter (absent = 0), e.g.
//                tm.cause.noise_limited — the decode-attribution columns
//   --where      conjunctive equality filters on axis values (or label=...)
//   --group-by   one group per distinct value of this axis ("label" works)
//   --series     merge the where-filtered cells' probe blobs (--probes
//                runs) and print the slot time-series: per-window
//                delivery rate, active transmitters, SINR-margin
//                quantiles, protocol progress — plus the attribution
//                sketches.  --format=json emits the merged probe state
//                (telemetry/probes.h JSON layout)
//   --pivot      axis x axis table of one --select metric's mean
//   --format     table (default), csv, or json
//
// Exit 0 on success, 1 on bad queries (unknown metric/axis, overlapping
// stores, probe-less --series), 2 on usage or unreadable stores.

#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "store/query.h"
#include "store/reader.h"
#include "sweep/report.h"
#include "telemetry/probes.h"
#include "util/args.h"

using namespace mcs;

namespace {

std::vector<std::string> splitList(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parseWhere(const std::string& s,
                std::vector<std::pair<std::string, std::string>>& out, std::string& err) {
  for (const std::string& clause : splitList(s, ',')) {
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      err = "--where clause \"" + clause + "\" is not axis=value";
      return false;
    }
    out.emplace_back(clause.substr(0, eq), clause.substr(eq + 1));
  }
  return true;
}

int printSchema(const store::StoreReader& reader) {
  const store::StoreHeader& h = reader.header();
  std::printf("campaign:  %s (base %s)\n", reader.campaignName().c_str(),
              reader.baseName().c_str());
  std::printf("cells:     %zu in store (shard %u/%u of %u total)\n", reader.cells(),
              h.shardIndex, h.shardCount, h.totalCells);
  std::printf("file:      %" PRIu64 " bytes, format v%u%s\n", reader.fileBytes(), h.version,
              (h.flags & store::kFlagWallStripped) != 0 ? ", wall times stripped" : "");
  std::printf("sketch:    alpha %g, exact below %u samples\n", h.sketchAlpha,
              h.sketchThreshold);
  std::printf("axes:     ");
  for (const std::string& a : reader.axisNames()) std::printf(" %s", a.c_str());
  std::printf("\nmetrics:  ");
  for (const std::string& m : reader.metricNames()) std::printf(" %s", m.c_str());
  std::printf("\n");
  return 0;
}

int printCells(const store::StoreReader& reader) {
  std::printf("%-6s %-32s", "cell", "label");
  for (const std::string& a : reader.axisNames()) std::printf(" %12s", a.c_str());
  std::printf(" %6s %5s %9s %6s %7s\n", "seeds", "fail", "delivered", "valid", "invalid");
  for (std::size_t row = 0; row < reader.cells(); ++row) {
    std::printf("%-6u %-32s", reader.cellIndexCol()[row],
                reader.str(reader.labelCol()[row]).c_str());
    for (std::size_t a = 0; a < reader.axisNames().size(); ++a) {
      std::printf(" %12s", reader.str(reader.axisCol(a)[row]).c_str());
    }
    std::printf(" %6u %5u %9u %6u %7u\n", reader.seedsCol()[row], reader.failuresCol()[row],
                reader.deliveredCol()[row], reader.validCol()[row],
                reader.invalidCol()[row]);
  }
  return 0;
}

void printTable(const std::string& groupName, const std::vector<store::QueryGroup>& groups) {
  std::printf("%-20s %8s %-24s %10s %12s %12s %12s %12s %12s %12s\n", groupName.c_str(),
              "cells", "metric", "count", "mean", "stddev", "min", "p50", "p95", "max");
  for (const store::QueryGroup& g : groups) {
    for (const auto& [name, s] : g.stats) {
      const Summary sum = s.summary();
      std::printf("%-20s %8" PRIu64 " %-24s %10zu %12.6g %12.6g %12.6g %12.6g %12.6g %12.6g\n",
                  g.key.c_str(), g.cells, name.c_str(), sum.count, sum.mean, sum.stddev,
                  sum.min, sum.median, sum.p95, sum.max);
    }
  }
}

void printCsv(const std::string& groupName, const std::vector<store::QueryGroup>& groups) {
  std::printf("%s,cells,metric,count,mean,stddev,ci95,min,p50,p95,max\n", groupName.c_str());
  for (const store::QueryGroup& g : groups) {
    for (const auto& [name, s] : g.stats) {
      const Summary sum = s.summary();
      std::printf("%s,%" PRIu64 ",%s,%zu,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n",
                  g.key.c_str(), g.cells, name.c_str(), sum.count, sum.mean, sum.stddev,
                  sum.ci95, sum.min, sum.median, sum.p95, sum.max);
    }
  }
}

void printJson(const std::string& groupName, const std::vector<store::QueryGroup>& groups) {
  Json out = Json::array();
  for (const store::QueryGroup& g : groups) {
    Json jg = Json::object();
    jg.set(groupName, g.key);
    jg.set("cells", static_cast<double>(g.cells));
    Json metrics = Json::object();
    for (const auto& [name, s] : g.stats) metrics.set(name, summaryToJson(s.summary()));
    jg.set("metrics", std::move(metrics));
    out.push_back(std::move(jg));
  }
  std::printf("%s\n", out.dump().c_str());
}

void printSketchLine(const char* name, const QuantileSketch& s) {
  if (s.count() == 0) {
    std::printf("%-10s (no samples)\n", name);
    return;
  }
  std::printf("%-10s count=%-10" PRIu64 " p10=%9.3f p50=%9.3f p90=%9.3f\n", name,
              s.count(), s.quantile(0.10), s.quantile(0.50), s.quantile(0.90));
}

/// The --series view: per-window time evolution of the merged probe
/// state, plus the campaign-wide attribution sketches.
int printSeries(const telemetry::ProbeState& probes, const std::string& format) {
  if (probes.empty()) {
    std::fprintf(stderr,
                 "sweep_query: no probe data in the selected cells — was the campaign "
                 "run with --probes?\n");
    return 1;
  }
  if (format == "json") {
    std::printf("%s\n", telemetry::probesToJson(probes).dump().c_str());
    return 0;
  }
  const telemetry::SlotSeries& series = probes.series;
  const std::uint64_t span = series.span();
  const std::size_t used = series.windowsUsed();
  if (format == "csv") {
    std::printf(
        "window,slot_start,span,slots,listens,decodes,rate,tx,margin_p10,margin_p50,"
        "margin_p90,progress\n");
    for (std::size_t i = 0; i < used; ++i) {
      const telemetry::SlotSeries::Window& w = series.windows()[i];
      const double rate =
          w.listens > 0 ? static_cast<double>(w.decodes) / static_cast<double>(w.listens)
                        : 0.0;
      const double progress =
          w.progressDen > 0
              ? static_cast<double>(w.progressNum) / static_cast<double>(w.progressDen)
              : 0.0;
      std::printf("%zu,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                  ",%.17g,%" PRIu64 ",%.17g,%.17g,%.17g,%.17g\n",
                  i, static_cast<std::uint64_t>(i) * span, span, w.slots, w.listens,
                  w.decodes, rate, w.txIntents, w.margin.quantile(0.10),
                  w.margin.quantile(0.50), w.margin.quantile(0.90), progress);
    }
    return 0;
  }
  std::printf("decode attribution sketches (dB):\n");
  printSketchLine("margin", probes.marginDb);
  printSketchLine("near_intf", probes.nearDb);
  printSketchLine("far_intf", probes.farDb);
  std::printf("\nslot series: span %" PRIu64 " slot(s)/window, %zu window(s)\n\n", span,
              used);
  std::printf("%-4s %10s %8s %10s %10s %7s %10s %9s %9s %9s %9s\n", "win", "slot0",
              "slots", "listens", "decodes", "rate", "tx", "m.p10", "m.p50", "m.p90",
              "progress");
  for (std::size_t i = 0; i < used; ++i) {
    const telemetry::SlotSeries::Window& w = series.windows()[i];
    const double rate =
        w.listens > 0 ? static_cast<double>(w.decodes) / static_cast<double>(w.listens)
                      : 0.0;
    std::printf("%-4zu %10" PRIu64 " %8" PRIu64 " %10" PRIu64 " %10" PRIu64 " %7.3f %10"
                PRIu64,
                i, static_cast<std::uint64_t>(i) * span, w.slots, w.listens, w.decodes,
                rate, w.txIntents);
    if (w.margin.count() > 0) {
      std::printf(" %9.2f %9.2f %9.2f", w.margin.quantile(0.10), w.margin.quantile(0.50),
                  w.margin.quantile(0.90));
    } else {
      std::printf(" %9s %9s %9s", "-", "-", "-");
    }
    if (w.progressDen > 0) {
      std::printf(" %9.3f\n",
                  static_cast<double>(w.progressNum) / static_cast<double>(w.progressDen));
    } else {
      std::printf(" %9s\n", "-");
    }
  }
  return 0;
}

/// The --pivot view: rowAxis x colAxis table of one metric's mean over
/// the where-filtered cells (a "tm." name reads the telemetry blob,
/// absent = 0).  Keys appear in first-encounter order scanning the
/// stores in argument order.
int runPivot(const std::vector<const store::StoreReader*>& readers,
             const std::string& pivotArg, const std::string& metricName,
             const std::vector<std::pair<std::string, std::string>>& where,
             const std::string& format) {
  std::string err;
  const std::vector<std::string> axes = splitList(pivotArg, ',');
  if (axes.size() != 2) {
    std::fprintf(stderr, "sweep_query: --pivot needs rowAxis,colAxis\n");
    return 2;
  }
  if (metricName.empty()) {
    std::fprintf(stderr, "sweep_query: --pivot needs exactly one --select metric\n");
    return 2;
  }
  if (!store::checkStoreUnion(readers, err)) {
    std::fprintf(stderr, "sweep_query: %s\n", err.c_str());
    return 1;
  }
  // Telemetry blob keys carry the "tm." prefix, so the selector matches
  // them verbatim.
  const bool isTm = metricName.rfind("tm.", 0) == 0 && metricName.size() > 3;
  const std::string& tmKey = metricName;

  std::vector<std::string> rowKeys, colKeys;
  std::map<std::pair<std::size_t, std::size_t>, StreamingStats> acc;
  const auto keyIndex = [](std::vector<std::string>& keys, const std::string& k) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == k) return i;
    }
    keys.push_back(k);
    return keys.size() - 1;
  };

  for (const store::StoreReader* rp : readers) {
    const store::StoreReader& reader = *rp;
    const auto axisColOf = [&](const std::string& name,
                               const std::uint32_t*& col) -> bool {
      if (name == "label") {
        col = reader.labelCol();
        return true;
      }
      const int a = reader.axisIndex(name);
      if (a < 0) {
        std::fprintf(stderr, "sweep_query: axis \"%s\" not in store\n", name.c_str());
        return false;
      }
      col = reader.axisCol(static_cast<std::size_t>(a));
      return true;
    };
    const std::uint32_t* rowCol = nullptr;
    const std::uint32_t* colCol = nullptr;
    if (!axisColOf(axes[0], rowCol) || !axisColOf(axes[1], colCol)) return 1;
    std::vector<const std::uint32_t*> whereCols(where.size(), nullptr);
    for (std::size_t i = 0; i < where.size(); ++i) {
      if (!axisColOf(where[i].first, whereCols[i])) return 1;
    }
    int metricIdx = -1;
    if (!isTm) {
      metricIdx = reader.metricIndex(metricName);
      if (metricIdx < 0) {
        std::fprintf(stderr, "sweep_query: metric \"%s\" not in store\n",
                     metricName.c_str());
        return 1;
      }
    }
    for (std::size_t row = 0; row < reader.cells(); ++row) {
      bool pass = true;
      for (std::size_t i = 0; i < where.size(); ++i) {
        if (reader.str(whereCols[i][row]) != where[i].second) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      const std::size_t ri = keyIndex(rowKeys, reader.str(rowCol[row]));
      const std::size_t ci = keyIndex(colKeys, reader.str(colCol[row]));
      StreamingStats& cell = acc[{ri, ci}];
      if (isTm) {
        std::vector<std::pair<std::string, double>> entries;
        if (!reader.telemetryAt(row, entries, err)) {
          std::fprintf(stderr, "sweep_query: %s\n", err.c_str());
          return 1;
        }
        double value = 0.0;
        for (const auto& [name, v] : entries) {
          if (name == tmKey) {
            value = v;
            break;
          }
        }
        cell.add(value);
      } else {
        StreamingStats rowStats;
        if (!reader.statsAt(static_cast<std::size_t>(metricIdx), row, rowStats, err)) {
          std::fprintf(stderr, "sweep_query: %s\n", err.c_str());
          return 1;
        }
        cell.merge(rowStats);
      }
    }
  }

  const auto meanAt = [&](std::size_t ri, std::size_t ci, double& mean) {
    const auto it = acc.find({ri, ci});
    if (it == acc.end() || it->second.moments.count() == 0) return false;
    mean = it->second.moments.mean();
    return true;
  };

  if (format == "json") {
    Json out = Json::array();
    for (std::size_t ri = 0; ri < rowKeys.size(); ++ri) {
      Json jr = Json::object();
      jr.set(axes[0], rowKeys[ri]);
      for (std::size_t ci = 0; ci < colKeys.size(); ++ci) {
        double mean = 0.0;
        if (meanAt(ri, ci, mean)) jr.set(colKeys[ci], mean);
      }
      out.push_back(std::move(jr));
    }
    std::printf("%s\n", out.dump().c_str());
    return 0;
  }
  if (format == "csv") {
    std::printf("%s", axes[0].c_str());
    for (const std::string& c : colKeys) std::printf(",%s", c.c_str());
    std::printf("\n");
    for (std::size_t ri = 0; ri < rowKeys.size(); ++ri) {
      std::printf("%s", rowKeys[ri].c_str());
      for (std::size_t ci = 0; ci < colKeys.size(); ++ci) {
        double mean = 0.0;
        if (meanAt(ri, ci, mean)) {
          std::printf(",%.17g", mean);
        } else {
          std::printf(",");
        }
      }
      std::printf("\n");
    }
    return 0;
  }
  std::printf("%s: mean by %s (rows) x %s (cols)\n\n", metricName.c_str(), axes[0].c_str(),
              axes[1].c_str());
  std::printf("%-16s", axes[0].c_str());
  for (const std::string& c : colKeys) std::printf(" %12s", c.c_str());
  std::printf("\n");
  for (std::size_t ri = 0; ri < rowKeys.size(); ++ri) {
    std::printf("%-16s", rowKeys[ri].c_str());
    for (std::size_t ci = 0; ci < colKeys.size(); ++ci) {
      double mean = 0.0;
      if (meanAt(ri, ci, mean)) {
        std::printf(" %12.6g", mean);
      } else {
        std::printf(" %12s", "-");
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: sweep_query <campaign.store> [<more.store> ...] [--schema] "
                 "[--cells] [--select=m1,m2] [--where=axis=value,...] [--group-by=axis] "
                 "[--series] [--pivot=rowAxis,colAxis] [--format=table|csv|json]\n");
    return 2;
  }

  std::vector<std::unique_ptr<store::StoreReader>> owned;
  std::vector<const store::StoreReader*> readers;
  std::string err;
  for (const std::string& path : args.positional()) {
    auto reader = std::make_unique<store::StoreReader>();
    if (!reader->open(path, err)) {
      std::fprintf(stderr, "sweep_query: %s\n", err.c_str());
      return 2;
    }
    readers.push_back(reader.get());
    owned.push_back(std::move(reader));
  }

  if (args.getBool("schema") || args.getBool("cells")) {
    for (std::size_t i = 0; i < readers.size(); ++i) {
      if (readers.size() > 1) {
        std::printf("%s== %s ==\n", i > 0 ? "\n" : "", args.positional()[i].c_str());
      }
      if (args.getBool("schema")) (void)printSchema(*readers[i]);
      if (args.getBool("cells")) (void)printCells(*readers[i]);
    }
    return 0;
  }

  std::vector<std::pair<std::string, std::string>> where;
  if (!parseWhere(args.get("where"), where, err)) {
    std::fprintf(stderr, "sweep_query: %s\n", err.c_str());
    return 2;
  }
  const std::string format = args.get("format", "table");
  if (format != "table" && format != "csv" && format != "json") {
    std::fprintf(stderr, "sweep_query: unknown --format \"%s\"\n", format.c_str());
    return 2;
  }
  const std::vector<std::string> select = splitList(args.get("select"), ',');

  if (args.getBool("series")) {
    telemetry::ProbeState probes;
    if (!store::mergeStoreProbes(readers, where, probes, err)) {
      std::fprintf(stderr, "sweep_query: %s\n", err.c_str());
      return 1;
    }
    return printSeries(probes, format);
  }

  if (args.has("pivot")) {
    if (select.size() != 1) {
      std::fprintf(stderr, "sweep_query: --pivot needs exactly one --select metric\n");
      return 2;
    }
    return runPivot(readers, args.get("pivot"), select.front(), where, format);
  }

  store::StoreQuery query;
  query.metrics = select;
  query.where = where;
  query.groupBy = args.get("group-by");

  std::vector<store::QueryGroup> groups;
  if (!store::runStoreQueryUnion(readers, query, groups, err)) {
    std::fprintf(stderr, "sweep_query: %s\n", err.c_str());
    return 1;
  }

  const std::string groupName = query.groupBy.empty() ? "group" : query.groupBy;
  if (format == "csv") {
    printCsv(groupName, groups);
  } else if (format == "json") {
    printJson(groupName, groups);
  } else {
    printTable(groupName, groups);
  }
  return 0;
}
