// bench_store: columnar campaign store at campaign scale.
//
// Writes a synthetic 10^4-cell campaign (two axes, two metrics, a
// telemetry blob per cell) through the streaming StoreWriter, then
// answers a group-by aggregation and a filtered scan through the
// memory-mapped StoreReader.  The point being demonstrated: writing is
// O(cells-in-flight) memory (one row at a time hits the spool), and a
// query is a column scan over the mapping — neither ever materializes
// the campaign, which is what makes million-cell campaigns observable
// rather than write-only.
//
//   bench_store [--cells=10000] [--samples=48] [--out=.]
//
// The group-by result is cross-checked against directly accumulated
// per-group totals (exit 1 on any mismatch — this is a correctness gate
// as well as a perf probe).  Writes BENCH_store.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "store/query.h"
#include "store/reader.h"
#include "store/writer.h"

namespace mcs {
namespace {

/// Deterministic per-cell sample stream (cheap LCG; the bench measures
/// the store, not the RNG).
double sampleValue(std::uint64_t cell, std::uint64_t i) {
  std::uint64_t x = cell * 6364136223846793005ull + i * 1442695040888963407ull + 1ull;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return 1.0 + static_cast<double>(x % 100000) / 1000.0;
}

int run(const Args& args) {
  const auto cells = static_cast<std::size_t>(args.getInt("cells", 10000));
  const auto samples = static_cast<std::uint64_t>(args.getInt("samples", 48));
  const std::string outDir = args.get("out", args.get("out-dir", "."));
  const int loadValues = 10;

  const std::string storePath = outDir + "/BENCH_store_synth.store";
  std::string err;

  bench::BenchReport report("store");
  report.meta("cells", static_cast<double>(cells));
  report.meta("samples_per_cell", static_cast<double>(samples));

  // ---- write: one row per cell, streamed ------------------------------
  store::StoreWriter writer;
  store::StoreMeta meta;
  meta.campaign = "store_synth";
  meta.base = "synthetic";
  meta.totalCells = static_cast<int>(cells);
  meta.cellSlots = cells;
  if (!writer.open(storePath, meta, err)) {
    std::fprintf(stderr, "bench_store: %s\n", err.c_str());
    return 1;
  }

  std::vector<std::uint64_t> expectCellsPerLoad(loadValues, 0);
  std::vector<double> expectSumPerLoad(loadValues, 0.0);
  std::vector<std::uint64_t> expectCountPerLoad(loadValues, 0);

  const double w0 = bench::now();
  MetricMap tm;
  for (std::size_t c = 0; c < cells; ++c) {
    const int load = static_cast<int>(c) % loadValues;
    StreamingStats throughput, latency;
    for (std::uint64_t i = 0; i < samples; ++i) {
      const double v = sampleValue(c, i);
      throughput.add(v);
      latency.add(1.0 / v);
      expectSumPerLoad[static_cast<std::size_t>(load)] += v;
    }
    expectCellsPerLoad[static_cast<std::size_t>(load)] += 1;
    expectCountPerLoad[static_cast<std::size_t>(load)] += samples;

    NamedStats stats;
    stats.emplace_back("throughput", std::move(throughput));
    stats.emplace_back("latency", std::move(latency));
    tm = MetricMap{};
    tm.set("tm.synthetic.count", static_cast<double>(samples));

    store::StoreCellRow row;
    row.cellIndex = static_cast<int>(c);
    row.label = "cell_" + std::to_string(c);
    row.assignments = {{"load", std::to_string(load)},
                       {"bucket", std::to_string(c / 1000)}};
    row.seeds = static_cast<int>(samples);
    row.delivered = static_cast<int>(samples);
    row.stats = &stats;
    row.telemetry = &tm;
    if (!writer.appendCell(c, row, err)) {
      std::fprintf(stderr, "bench_store: cell %zu: %s\n", c, err.c_str());
      return 1;
    }
  }
  if (!writer.finish(err)) {
    std::fprintf(stderr, "bench_store: finish: %s\n", err.c_str());
    return 1;
  }
  const double writeWall = bench::now() - w0;

  bench::header("store: write", std::to_string(cells) + " cells, " +
                                    std::to_string(writer.bytesWritten()) + " bytes");
  bench::row("write: %zu cells in %.3fs (%.0f cells/s, %.1f MB)", cells, writeWall,
             writeWall > 0 ? static_cast<double>(cells) / writeWall : 0.0,
             static_cast<double>(writer.bytesWritten()) / 1e6);
  report.row()
      .col("case", "write")
      .col("cells", static_cast<double>(cells))
      .col("bytes", static_cast<double>(writer.bytesWritten()))
      .col("wall_sec", writeWall);

  // ---- query: group-by over the mapped file ---------------------------
  store::StoreReader reader;
  if (!reader.open(storePath, err)) {
    std::fprintf(stderr, "bench_store: %s\n", err.c_str());
    return 1;
  }

  const double q0 = bench::now();
  store::StoreQuery query;
  query.metrics = {"throughput"};
  query.groupBy = "load";
  std::vector<store::QueryGroup> groups;
  if (!store::runStoreQuery(reader, query, groups, err)) {
    std::fprintf(stderr, "bench_store: query: %s\n", err.c_str());
    return 1;
  }
  const double groupWall = bench::now() - q0;

  if (groups.size() != static_cast<std::size_t>(loadValues)) {
    std::fprintf(stderr, "bench_store: expected %d groups, got %zu\n", loadValues,
                 groups.size());
    return 1;
  }
  for (const store::QueryGroup& g : groups) {
    const auto load = static_cast<std::size_t>(std::stoi(g.key));
    const auto& agg = g.stats[0].second.moments;
    if (g.cells != expectCellsPerLoad[load] || agg.count() != expectCountPerLoad[load]) {
      std::fprintf(stderr, "bench_store: group %s cells/count mismatch\n", g.key.c_str());
      return 1;
    }
    // The merged sum must match the straight accumulation to float noise.
    const double ref = expectSumPerLoad[load];
    if (ref != 0.0 && std::abs(agg.sum() - ref) / std::abs(ref) > 1e-9) {
      std::fprintf(stderr, "bench_store: group %s sum drift (%.17g vs %.17g)\n",
                   g.key.c_str(), agg.sum(), ref);
      return 1;
    }
  }
  bench::row("group-by: %zu groups in %.3fs (%.1f Mcells/s)", groups.size(), groupWall,
             groupWall > 0 ? static_cast<double>(cells) / groupWall / 1e6 : 0.0);
  report.row()
      .col("case", "query_group_by")
      .col("groups", static_cast<double>(groups.size()))
      .col("wall_sec", groupWall);

  // ---- query: filtered scan -------------------------------------------
  const double f0 = bench::now();
  store::StoreQuery filtered;
  filtered.metrics = {"latency"};
  filtered.where = {{"load", "3"}};
  std::vector<store::QueryGroup> one;
  if (!store::runStoreQuery(reader, filtered, one, err)) {
    std::fprintf(stderr, "bench_store: filter: %s\n", err.c_str());
    return 1;
  }
  const double filterWall = bench::now() - f0;
  if (one.size() != 1 || one[0].cells != expectCellsPerLoad[3]) {
    std::fprintf(stderr, "bench_store: filter returned wrong cell set\n");
    return 1;
  }
  bench::row("filter: %llu cells matched in %.3fs",
             static_cast<unsigned long long>(one[0].cells), filterWall);
  report.row()
      .col("case", "query_filter")
      .col("cells_matched", static_cast<double>(one[0].cells))
      .col("wall_sec", filterWall);

  return report.write(outDir) ? 0 : 1;
}

}  // namespace
}  // namespace mcs

int main(int argc, char** argv) {
  const mcs::Args args(argc, argv);
  return mcs::run(args);
}
