#pragma once

#include <span>
#include <vector>

#include "geom/vec2.h"
#include "util/ids.h"

/// Uniform-grid spatial index over a fixed point set.
///
/// Used to build the communication graph and to answer "all points within
/// radius r of p" queries in O(points in the neighborhood) time.  The cell
/// size is chosen at build time (typically the query radius).
namespace mcs {

class GridIndex {
 public:
  GridIndex() = default;

  /// Builds an index over `points` with cells of side `cellSize` (> 0).
  GridIndex(std::span<const Vec2> points, double cellSize);

  /// Re-indexes this instance over a new point set, reusing the internal
  /// buffers' capacity (for callers that rebuild every slot).
  void rebuild(std::span<const Vec2> points, double cellSize);

  /// Incremental re-index over a same-size point set with bounded drift
  /// (the mobility hot path): grid geometry (origin, extents, cell size)
  /// is retained and only points whose cell assignment changed are moved
  /// between cells — when nothing moved cells, the update is a position
  /// copy.  Falls back to a full rebuild (returning false) when the point
  /// count changed, the index is empty, or any point left the original
  /// bounding box.  Either way the index is valid afterwards and query
  /// results are identical to a fresh rebuild over `points` (cell
  /// partitions may differ after a fallback re-anchors the box; ball
  /// queries never do).
  bool update(std::span<const Vec2> points);

  /// Persistent-index maintenance in one call: rebuild() when the point
  /// count or cell size changed, update() otherwise.  The idiom of every
  /// per-slot mobility consumer (Medium's dynamic NearFar grid, the
  /// drift-metric sampler).
  void ensure(std::span<const Vec2> points, double cellSize);

  /// Appends the ids of all points within distance `radius` of `center`
  /// (inclusive) to `out`.  `out` is cleared first.
  void queryBall(Vec2 center, double radius, std::vector<NodeId>& out) const;

  /// Convenience wrapper returning a fresh vector.
  [[nodiscard]] std::vector<NodeId> ball(Vec2 center, double radius) const;

  /// Calls `fn(id)` for every point within `radius` of `center`.
  template <class Fn>
  void forEachInBall(Vec2 center, double radius, Fn&& fn) const {
    if (cells_ == 0) return;
    const double r2 = radius * radius;
    const auto [cxLo, cyLo] = cellOf({center.x - radius, center.y - radius});
    const auto [cxHi, cyHi] = cellOf({center.x + radius, center.y + radius});
    for (long cy = cyLo; cy <= cyHi; ++cy) {
      for (long cx = cxLo; cx <= cxHi; ++cx) {
        const long cell = cellIndex(cx, cy);
        if (cell < 0) continue;
        for (std::size_t i = start_[static_cast<std::size_t>(cell)];
             i < start_[static_cast<std::size_t>(cell) + 1]; ++i) {
          const NodeId id = ids_[i];
          if (dist2(points_[static_cast<std::size_t>(id)], center) <= r2) fn(id);
        }
      }
    }
  }

  /// Calls `fn(cx, cy, ids)` once per non-empty cell, where `ids` is the
  /// span of point ids stored in cell (cx, cy).  Cells are visited in
  /// row-major order, ids within a cell in insertion (id) order.
  template <class Fn>
  void forEachCell(Fn&& fn) const {
    for (long cy = 0; cy < ny_; ++cy) {
      for (long cx = 0; cx < nx_; ++cx) {
        const auto cell = static_cast<std::size_t>(cy * nx_ + cx);
        const std::size_t lo = start_[cell];
        const std::size_t hi = start_[cell + 1];
        if (lo == hi) continue;
        fn(cx, cy, std::span<const NodeId>(ids_.data() + lo, hi - lo));
      }
    }
  }

  /// Squared distance from `p` to the closed box of cell (cx, cy);
  /// zero when `p` lies inside the cell.
  [[nodiscard]] double cellDist2(long cx, long cy, Vec2 p) const noexcept {
    const double x0 = minX_ + static_cast<double>(cx) * cellSize_;
    const double y0 = minY_ + static_cast<double>(cy) * cellSize_;
    const double dx = p.x < x0 ? x0 - p.x : (p.x > x0 + cellSize_ ? p.x - (x0 + cellSize_) : 0.0);
    const double dy = p.y < y0 ? y0 - p.y : (p.y > y0 + cellSize_ ? p.y - (y0 + cellSize_) : 0.0);
    return dx * dx + dy * dy;
  }

  /// Position of an indexed point by id.
  [[nodiscard]] Vec2 point(NodeId id) const noexcept {
    return points_[static_cast<std::size_t>(id)];
  }

  /// Flat cell index of an indexed point (valid after rebuild/update).
  [[nodiscard]] long cellOfId(NodeId id) const noexcept {
    return cellOfPoint_[static_cast<std::size_t>(id)];
  }
  /// (cx, cy) coordinates of a flat cell index.
  [[nodiscard]] std::pair<long, long> cellCoords(long cell) const noexcept {
    return {cell % nx_, cell / nx_};
  }

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] double cellSize() const noexcept { return cellSize_; }

  /// Grid geometry: box origin and cell extents.  HierGrid builds its
  /// coarse pyramid levels on top of these base-level coordinates.
  [[nodiscard]] double minX() const noexcept { return minX_; }
  [[nodiscard]] double minY() const noexcept { return minY_; }
  [[nodiscard]] long nxCells() const noexcept { return nx_; }
  [[nodiscard]] long nyCells() const noexcept { return ny_; }

 private:
  void fillCells();
  [[nodiscard]] std::pair<long, long> cellOf(Vec2 p) const noexcept;
  /// Flat cell index, or -1 when outside the indexed bounding box.
  [[nodiscard]] long cellIndex(long cx, long cy) const noexcept;

  std::vector<Vec2> points_;
  std::vector<NodeId> ids_;         // point ids sorted by cell
  std::vector<std::size_t> start_;  // CSR offsets per cell, size cells_+1
  std::vector<long> cellOfPoint_;    // cell of each point (maintained by update)
  std::vector<long> newCellOf_;      // update scratch
  std::vector<std::size_t> cursor_;  // rebuild scratch
  double cellSize_ = 0.0;
  double minX_ = 0.0, minY_ = 0.0;
  long nx_ = 0, ny_ = 0;
  std::size_t cells_ = 0;
};

}  // namespace mcs
