#pragma once

#include <span>
#include <vector>

#include "geom/vec2.h"
#include "util/ids.h"

/// Uniform-grid spatial index over a fixed point set.
///
/// Used to build the communication graph and to answer "all points within
/// radius r of p" queries in O(points in the neighborhood) time.  The cell
/// size is chosen at build time (typically the query radius).
namespace mcs {

class GridIndex {
 public:
  GridIndex() = default;

  /// Builds an index over `points` with cells of side `cellSize` (> 0).
  GridIndex(std::span<const Vec2> points, double cellSize);

  /// Appends the ids of all points within distance `radius` of `center`
  /// (inclusive) to `out`.  `out` is cleared first.
  void queryBall(Vec2 center, double radius, std::vector<NodeId>& out) const;

  /// Convenience wrapper returning a fresh vector.
  [[nodiscard]] std::vector<NodeId> ball(Vec2 center, double radius) const;

  /// Calls `fn(id)` for every point within `radius` of `center`.
  template <class Fn>
  void forEachInBall(Vec2 center, double radius, Fn&& fn) const {
    if (cells_ == 0) return;
    const double r2 = radius * radius;
    const auto [cxLo, cyLo] = cellOf({center.x - radius, center.y - radius});
    const auto [cxHi, cyHi] = cellOf({center.x + radius, center.y + radius});
    for (long cy = cyLo; cy <= cyHi; ++cy) {
      for (long cx = cxLo; cx <= cxHi; ++cx) {
        const long cell = cellIndex(cx, cy);
        if (cell < 0) continue;
        for (std::size_t i = start_[static_cast<std::size_t>(cell)];
             i < start_[static_cast<std::size_t>(cell) + 1]; ++i) {
          const NodeId id = ids_[i];
          if (dist2(points_[static_cast<std::size_t>(id)], center) <= r2) fn(id);
        }
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] double cellSize() const noexcept { return cellSize_; }

 private:
  [[nodiscard]] std::pair<long, long> cellOf(Vec2 p) const noexcept;
  /// Flat cell index, or -1 when outside the indexed bounding box.
  [[nodiscard]] long cellIndex(long cx, long cy) const noexcept;

  std::vector<Vec2> points_;
  std::vector<NodeId> ids_;         // point ids sorted by cell
  std::vector<std::size_t> start_;  // CSR offsets per cell, size cells_+1
  double cellSize_ = 0.0;
  double minX_ = 0.0, minY_ = 0.0;
  long nx_ = 0, ny_ = 0;
  std::size_t cells_ = 0;
};

}  // namespace mcs
