#pragma once

#include <vector>

#include "geom/vec2.h"
#include "util/rng.h"

/// Deployment generators: the workloads the experiments run on.
///
/// All generators take an explicit Rng so deployments are reproducible.
/// Distances are in units of the transmission range R_T (the library's
/// default SINR parameters are normalized so R_T = 1).
namespace mcs {

/// n points i.i.d. uniform in the axis-aligned square [0, side]^2.
[[nodiscard]] std::vector<Vec2> deployUniformSquare(int n, double side, Rng& rng);

/// n points i.i.d. uniform in the disk of radius `radius` centered at origin.
[[nodiscard]] std::vector<Vec2> deployUniformDisk(int n, double radius, Rng& rng);

/// ~n points on a jittered sqrt(n) x sqrt(n) grid filling [0, side]^2.
/// `jitter` is the maximal per-axis offset as a fraction of grid pitch.
[[nodiscard]] std::vector<Vec2> deployPerturbedGrid(int n, double side, double jitter, Rng& rng);

/// k cluster centers uniform in [0, side]^2; n points split evenly across
/// clusters, Gaussian around their center with std deviation `spread`.
[[nodiscard]] std::vector<Vec2> deployClustered(int n, int k, double side, double spread,
                                                Rng& rng);

/// n points uniform in a corridor [0, length] x [0, width]: a multi-hop
/// "sensor line" deployment with large diameter.
[[nodiscard]] std::vector<Vec2> deployCorridor(int n, double length, double width, Rng& rng);

/// The exponential chain lower-bound instance (§1): point i at x = base^i,
/// scaled so the largest gap equals `maxGap`.  With uniform power and
/// beta >= 2^(1/alpha), at most one transmission per slot per channel can
/// succeed on this instance.
[[nodiscard]] std::vector<Vec2> deployExponentialChain(int n, double base, double maxGap);

/// Poisson-disk "sensor mesh": up to n points in [0, side]^2 with pairwise
/// separation >= minDist (grid-accelerated dart throwing).  Stops early if
/// the region saturates before reaching n, so callers must size minDist so
/// that n << side^2 / minDist^2 (the random sequential packing limit is
/// ~0.55 * (side/minDist)^2 / (pi/4)).  Models hand-placed sensor grids:
/// near-uniform coverage without the clumping of i.i.d. uniform draws.
[[nodiscard]] std::vector<Vec2> deployPoissonDisk(int n, double side, double minDist, Rng& rng);

/// Dense/sparse mixture: round(n * denseFrac) points packed uniformly into
/// a dense square patch of side `side * patchFrac` centered in the region,
/// the rest i.i.d. uniform over the whole [0, side]^2.  A single instance
/// exercising both the Delta/F-dominated regime (inside the hotspot) and
/// the diameter-dominated regime (the sparse field) at once.
[[nodiscard]] std::vector<Vec2> deployDenseSparseMixture(int n, double side, double denseFrac,
                                                         double patchFrac, Rng& rng);

/// Returns a copy of `points` with exact duplicates perturbed by `epsilon`
/// so all positions are distinct (the SINR model needs d(u,v) > 0).
[[nodiscard]] std::vector<Vec2> dedupePositions(std::vector<Vec2> points, double epsilon,
                                                Rng& rng);

}  // namespace mcs
