#include "geom/deployment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <utility>

namespace mcs {

std::vector<Vec2> deployUniformSquare(int n, double side, Rng& rng) {
  assert(n >= 0 && side > 0.0);
  std::vector<Vec2> pts(static_cast<std::size_t>(n));
  for (Vec2& p : pts) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  return pts;
}

std::vector<Vec2> deployUniformDisk(int n, double radius, Rng& rng) {
  assert(n >= 0 && radius > 0.0);
  std::vector<Vec2> pts(static_cast<std::size_t>(n));
  for (Vec2& p : pts) {
    const double r = radius * std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, 2.0 * M_PI);
    p = {r * std::cos(theta), r * std::sin(theta)};
  }
  return pts;
}

std::vector<Vec2> deployPerturbedGrid(int n, double side, double jitter, Rng& rng) {
  assert(n >= 0 && side > 0.0);
  const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))));
  const double pitch = side / cols;
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cx = i % cols;
    const int cy = i / cols;
    const double jx = rng.uniform(-jitter, jitter) * pitch;
    const double jy = rng.uniform(-jitter, jitter) * pitch;
    pts.push_back({(cx + 0.5) * pitch + jx, (cy + 0.5) * pitch + jy});
  }
  return pts;
}

std::vector<Vec2> deployClustered(int n, int k, double side, double spread, Rng& rng) {
  assert(n >= 0 && k > 0 && side > 0.0 && spread > 0.0);
  std::vector<Vec2> centers = deployUniformSquare(k, side, rng);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Vec2 c = centers[static_cast<std::size_t>(i % k)];
    // Box-Muller for a 2-D Gaussian offset.
    const double u1 = std::max(rng.uniform(), 1e-300);
    const double u2 = rng.uniform();
    const double mag = spread * std::sqrt(-2.0 * std::log(u1));
    pts.push_back({c.x + mag * std::cos(2.0 * M_PI * u2), c.y + mag * std::sin(2.0 * M_PI * u2)});
  }
  return pts;
}

std::vector<Vec2> deployCorridor(int n, double length, double width, Rng& rng) {
  assert(n >= 0 && length > 0.0 && width > 0.0);
  std::vector<Vec2> pts(static_cast<std::size_t>(n));
  for (Vec2& p : pts) p = {rng.uniform(0.0, length), rng.uniform(0.0, width)};
  return pts;
}

std::vector<Vec2> deployExponentialChain(int n, double base, double maxGap) {
  assert(n >= 1 && base > 1.0 && maxGap > 0.0);
  std::vector<Vec2> pts(static_cast<std::size_t>(n));
  // Raw positions base^i; the largest gap is base^n - base^(n-1).
  const double largestGap = std::pow(base, n) - std::pow(base, n - 1);
  const double scale = maxGap / largestGap;
  for (int i = 0; i < n; ++i) {
    pts[static_cast<std::size_t>(i)] = {scale * std::pow(base, i + 1), 0.0};
  }
  return pts;
}

std::vector<Vec2> deployPoissonDisk(int n, double side, double minDist, Rng& rng) {
  assert(n >= 0 && side > 0.0 && minDist > 0.0);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  // Uniform grid with cell = minDist: every cell spans <= minDist per
  // axis (the clamped last row/column is narrower), so two points closer
  // than minDist differ by at most 1 in each cell index — the 3x3
  // neighborhood suffices for conflict checks.
  const int cols = std::max(1, static_cast<int>(std::ceil(side / minDist)));
  std::vector<std::vector<std::int32_t>> cellOf(static_cast<std::size_t>(cols) *
                                                static_cast<std::size_t>(cols));
  const auto cellIndex = [&](const Vec2& p) {
    const int cx = std::min(cols - 1, static_cast<int>(p.x / minDist));
    const int cy = std::min(cols - 1, static_cast<int>(p.y / minDist));
    return std::pair<int, int>{cx, cy};
  };
  const double minD2 = minDist * minDist;
  // Dart throwing with a generous attempt budget; saturation densities
  // beyond random sequential packing terminate via the budget.
  const long maxAttempts = 60L * std::max(1, n);
  for (long attempt = 0; attempt < maxAttempts && static_cast<int>(pts.size()) < n; ++attempt) {
    const Vec2 cand{rng.uniform(0.0, side), rng.uniform(0.0, side)};
    const auto [cx, cy] = cellIndex(cand);
    bool ok = true;
    for (int dx = -1; dx <= 1 && ok; ++dx) {
      for (int dy = -1; dy <= 1 && ok; ++dy) {
        const int nx = cx + dx;
        const int ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cols || ny >= cols) continue;
        for (const std::int32_t i :
             cellOf[static_cast<std::size_t>(ny) * static_cast<std::size_t>(cols) +
                    static_cast<std::size_t>(nx)]) {
          if (dist2(pts[static_cast<std::size_t>(i)], cand) < minD2) {
            ok = false;
            break;
          }
        }
      }
    }
    if (!ok) continue;
    cellOf[static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols) +
           static_cast<std::size_t>(cx)]
        .push_back(static_cast<std::int32_t>(pts.size()));
    pts.push_back(cand);
  }
  return pts;
}

std::vector<Vec2> deployDenseSparseMixture(int n, double side, double denseFrac,
                                           double patchFrac, Rng& rng) {
  assert(n >= 0 && side > 0.0);
  assert(denseFrac >= 0.0 && denseFrac <= 1.0);
  assert(patchFrac > 0.0 && patchFrac <= 1.0);
  const int nDense = static_cast<int>(std::lround(static_cast<double>(n) * denseFrac));
  const double patch = side * patchFrac;
  const double lo = (side - patch) * 0.5;
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < nDense; ++i) {
    pts.push_back({lo + rng.uniform(0.0, patch), lo + rng.uniform(0.0, patch)});
  }
  for (int i = nDense; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return pts;
}

std::vector<Vec2> dedupePositions(std::vector<Vec2> points, double epsilon, Rng& rng) {
  assert(epsilon > 0.0);
  // Sort indices by the ORIGINAL coordinates so whole runs of duplicates
  // are detected even as earlier members of the run get perturbed.
  const std::vector<Vec2> original = points;
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (original[a].x != original[b].x) return original[a].x < original[b].x;
    return original[a].y < original[b].y;
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (original[order[i]] == original[order[i - 1]]) {
      const double theta = rng.uniform(0.0, 2.0 * M_PI);
      // Distinct radii guarantee distinctness within the run as well.
      const double r = epsilon * (1.0 + 0.5 * rng.uniform());
      points[order[i]].x += r * std::cos(theta);
      points[order[i]].y += r * std::sin(theta);
    }
  }
  return points;
}

}  // namespace mcs
