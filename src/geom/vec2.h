#pragma once

#include <cmath>

/// 2-D Euclidean geometry primitives.  Node positions live in the plane
/// (paper §2); fading-metric generalizations would swap this type out.
namespace mcs {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr bool operator==(const Vec2&) const noexcept = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  [[nodiscard]] constexpr double norm2() const noexcept { return x * x + y * y; }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(norm2()); }
};

/// Squared Euclidean distance (avoids the sqrt when comparing radii).
[[nodiscard]] constexpr double dist2(Vec2 a, Vec2 b) noexcept { return (a - b).norm2(); }

/// Euclidean distance d(u, v).
[[nodiscard]] inline double dist(Vec2 a, Vec2 b) noexcept { return std::sqrt(dist2(a, b)); }

}  // namespace mcs
