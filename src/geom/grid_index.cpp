#include "geom/grid_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "telemetry/telemetry.h"

namespace mcs {

namespace {

struct GridTelemetry {
  telemetry::TimerId update = telemetry::timerId("geom.grid_update");
  telemetry::CounterId updates = telemetry::counterId("geom.grid_updates");
  telemetry::CounterId fallbacks = telemetry::counterId("geom.grid_rebuild_fallbacks");
};

const GridTelemetry& gridTm() {
  static const GridTelemetry ids;
  return ids;
}

}  // namespace

GridIndex::GridIndex(std::span<const Vec2> points, double cellSize) {
  rebuild(points, cellSize);
}

void GridIndex::rebuild(std::span<const Vec2> points, double cellSize) {
  assert(cellSize > 0.0);
  cellSize_ = cellSize;
  points_.assign(points.begin(), points.end());
  ids_.clear();
  start_.clear();
  minX_ = minY_ = 0.0;
  nx_ = ny_ = 0;
  cells_ = 0;
  if (points_.empty()) return;

  double maxX = points_[0].x, maxY = points_[0].y;
  minX_ = points_[0].x;
  minY_ = points_[0].y;
  for (const Vec2& p : points_) {
    minX_ = std::min(minX_, p.x);
    minY_ = std::min(minY_, p.y);
    maxX = std::max(maxX, p.x);
    maxY = std::max(maxY, p.y);
  }
  nx_ = static_cast<long>(std::floor((maxX - minX_) / cellSize_)) + 1;
  ny_ = static_cast<long>(std::floor((maxY - minY_) / cellSize_)) + 1;
  cells_ = static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);

  cellOfPoint_.resize(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const long cell = cellIndex(cellOf(points_[i]).first, cellOf(points_[i]).second);
    assert(cell >= 0);
    cellOfPoint_[i] = cell;
  }
  fillCells();
}

void GridIndex::fillCells() {
  // Counting sort of points into cells (CSR layout) from cellOfPoint_,
  // preserving id order per cell.  Shared by rebuild() and update() so
  // the layout cannot diverge between the two paths.
  start_.assign(cells_ + 1, 0);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    ++start_[static_cast<std::size_t>(cellOfPoint_[i]) + 1];
  }
  for (std::size_t c = 0; c < cells_; ++c) start_[c + 1] += start_[c];
  ids_.resize(points_.size());
  cursor_.assign(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    ids_[cursor_[static_cast<std::size_t>(cellOfPoint_[i])]++] = static_cast<NodeId>(i);
  }
}

void GridIndex::ensure(std::span<const Vec2> points, double cellSize) {
  if (points_.size() != points.size() || cellSize_ != cellSize) {
    rebuild(points, cellSize);
  } else {
    update(points);
  }
}

bool GridIndex::update(std::span<const Vec2> points) {
  const telemetry::PhaseTimer timer(gridTm().update);
  telemetry::counterAdd(gridTm().updates);
  if (points.size() != points_.size() || cells_ == 0) {
    telemetry::counterAdd(gridTm().fallbacks);
    rebuild(points, cellSize_ > 0.0 ? cellSize_ : 1.0);
    return false;
  }
  // Pass 1: recompute cell assignments against the retained geometry.
  // Any point outside the original bounding box forces the fallback (the
  // box must re-anchor, which moves every cell).
  newCellOf_.resize(points.size());
  bool moved = false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto [cx, cy] = cellOf(points[i]);
    const long cell = cellIndex(cx, cy);
    if (cell < 0) {
      telemetry::counterAdd(gridTm().fallbacks);
      rebuild(points, cellSize_);
      return false;
    }
    newCellOf_[i] = cell;
    moved = moved || cell != cellOfPoint_[i];
  }
  points_.assign(points.begin(), points.end());
  if (!moved) return true;  // same partition: positions refreshed in place

  // Pass 2: move points between cells — a counting re-sort over the
  // retained grid (no bounding-box rescan).
  cellOfPoint_.swap(newCellOf_);
  fillCells();
  return true;
}

std::pair<long, long> GridIndex::cellOf(Vec2 p) const noexcept {
  return {static_cast<long>(std::floor((p.x - minX_) / cellSize_)),
          static_cast<long>(std::floor((p.y - minY_) / cellSize_))};
}

long GridIndex::cellIndex(long cx, long cy) const noexcept {
  if (cx < 0 || cy < 0 || cx >= nx_ || cy >= ny_) return -1;
  return cy * nx_ + cx;
}

void GridIndex::queryBall(Vec2 center, double radius, std::vector<NodeId>& out) const {
  out.clear();
  forEachInBall(center, radius, [&](NodeId id) { out.push_back(id); });
}

std::vector<NodeId> GridIndex::ball(Vec2 center, double radius) const {
  std::vector<NodeId> out;
  queryBall(center, radius, out);
  return out;
}

}  // namespace mcs
