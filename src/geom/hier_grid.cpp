#include "geom/hier_grid.h"

#include <cassert>

namespace mcs {

void HierGrid::build(double minX, double minY, double cellSize, long nx, long ny,
                     std::span<const HierBaseCell> base) {
  numLevels_ = 0;
  if (base.empty() || nx <= 0 || ny <= 0 || cellSize <= 0.0) return;
  minX_ = minX;
  minY_ = minY;

  // Level dimensions halve until a single root cell covers everything.
  int numLevels = 1;
  {
    long w = nx, h = ny;
    while (w > 1 || h > 1) {
      w = (w + 1) / 2;
      h = (h + 1) / 2;
      ++numLevels;
    }
  }
  assert(numLevels <= kMaxLevels);

  // Grow-only resize: Level vectors past numLevels_ keep their capacity
  // for later builds, and assign() below reuses the live ones' storage.
  if (static_cast<int>(levels_.size()) < numLevels) {
    levels_.resize(static_cast<std::size_t>(numLevels));
  }
  numLevels_ = numLevels;
  {
    long w = nx, h = ny;
    double s = cellSize;
    for (int k = 0; k < numLevels_; ++k) {
      Level& L = levels_[static_cast<std::size_t>(k)];
      L.nx = w;
      L.ny = h;
      L.cellSize = s;
      const auto cells = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
      L.count.assign(cells, 0);
      L.sumX.assign(cells, 0.0);
      L.sumY.assign(cells, 0.0);
      w = (w + 1) / 2;
      h = (h + 1) / 2;
      s *= 2.0;
    }
  }

  // Scatter the occupied base cells, then aggregate child -> parent.
  Level& L0 = levels_.front();
  ref_.assign(L0.count.size(), -1);
  for (const HierBaseCell& c : base) {
    assert(c.cx >= 0 && c.cx < L0.nx && c.cy >= 0 && c.cy < L0.ny);
    assert(c.count > 0);
    const auto idx = static_cast<std::size_t>(c.cy * L0.nx + c.cx);
    L0.count[idx] = c.count;
    L0.sumX[idx] = c.sumX;
    L0.sumY[idx] = c.sumY;
    ref_[idx] = c.ref;
  }
  for (int k = 1; k < numLevels_; ++k) {
    const Level& child = levels_[static_cast<std::size_t>(k - 1)];
    Level& parent = levels_[static_cast<std::size_t>(k)];
    for (long cy = 0; cy < child.ny; ++cy) {
      for (long cx = 0; cx < child.nx; ++cx) {
        const auto ci = static_cast<std::size_t>(cy * child.nx + cx);
        if (child.count[ci] == 0) continue;
        const auto pi = static_cast<std::size_t>((cy / 2) * parent.nx + cx / 2);
        parent.count[pi] += child.count[ci];
        parent.sumX[pi] += child.sumX[ci];
        parent.sumY[pi] += child.sumY[ci];
      }
    }
  }
}

std::int64_t HierGrid::totalCount() const noexcept {
  if (numLevels_ == 0) return 0;
  const Level& root = levels_[static_cast<std::size_t>(numLevels_ - 1)];
  std::int64_t total = 0;
  for (const std::int64_t c : root.count) total += c;
  return total;
}

}  // namespace mcs
