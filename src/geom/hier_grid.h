#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.h"

/// Multi-level grid pyramid for Barnes-Hut-style far-field batching.
///
/// Built once per slot from the occupied base cells of a uniform grid
/// (GridIndex geometry + per-cell position sums), it answers "sum a field
/// over all points, batching distant regions coarsely" queries: each query
/// walks the pyramid coarse-to-fine and emits every region at the
/// coarsest level that passes the theta admissibility rule, so the
/// per-query cost drops from O(occupied base cells) toward
/// O(levels + cells near the admissibility boundary) = O(log n) for
/// bounded-density deployments.
namespace mcs {

/// One occupied base-level cell: its grid coordinates, the sum of its
/// members' positions (centroid * count), the member count, and an opaque
/// caller reference handed back verbatim when the cell must be resolved
/// exactly (Medium stores the index of its FarCell here).
struct HierBaseCell {
  long cx = 0;
  long cy = 0;
  double sumX = 0.0;
  double sumY = 0.0;
  std::int64_t count = 0;
  std::int32_t ref = -1;
};

class HierGrid {
 public:
  /// Rebuilds the pyramid over `base` cells laid out on a grid anchored at
  /// (minX, minY) with `nx` x `ny` cells of side `cellSize`.  Level 0 is
  /// the base grid; each coarser level halves the resolution (parent cell
  /// (cx, cy) covers children (2cx..2cx+1, 2cy..2cy+1)) and aggregates
  /// counts and position sums, up to a single root cell.  Internal storage
  /// is reused across rebuilds (per-slot callers allocate nothing in
  /// steady state).
  void build(double minX, double minY, double cellSize, long nx, long ny,
             std::span<const HierBaseCell> base);

  /// Empties the pyramid (queries visit nothing); storage is retained.
  void clear() noexcept { numLevels_ = 0; }

  [[nodiscard]] bool empty() const noexcept { return numLevels_ == 0; }
  [[nodiscard]] int levels() const noexcept { return numLevels_; }
  /// Total point count aggregated at the root (0 when empty).
  [[nodiscard]] std::int64_t totalCount() const noexcept;

  /// Coarse-to-fine field traversal for a query point `p`.
  ///
  /// Every occupied region of the pyramid is reported exactly once, at
  /// the coarsest admissible level: a cell at level k is *admissible* when
  /// its box distance to `p` exceeds max(nearRadius, cellSize_k / theta).
  /// Admissible cells invoke
  ///     far(count, centroid, level, cx, cy)
  /// and their subtree is pruned; inadmissible cells are opened, and at
  /// level 0 invoke near(ref) for the caller to resolve the members
  /// exactly.  Because cellSize_k / theta >= nearRadius never admits a
  /// cell whose box touches the near ball, every point within nearRadius
  /// of `p` is guaranteed to surface through near() — the same exactness
  /// guarantee NearFar's single-level near-ball test provides.  For an
  /// admissible cell at box distance d, every member lies within
  /// cellSize_k * sqrt(2) <= theta * sqrt(2) * d of the centroid, which
  /// bounds the relative displacement (and hence the batched kernel
  /// error) uniformly at every level.
  ///
  /// Traversal order is a pure function of the pyramid and `p` (fixed
  /// child order, no data-dependent tie-breaks), so per-listener results
  /// are reproducible and thread-count independent.
  template <class FarFn, class NearFn>
  void forEachField(Vec2 p, double nearRadius, double theta, FarFn&& far, NearFn&& near) const {
    if (numLevels_ == 0) return;
    const int top = numLevels_ - 1;
    // Per-level admissibility threshold (squared box distance).
    double thr2[kMaxLevels];
    for (int k = 0; k <= top; ++k) {
      const double t = std::max(nearRadius, levels_[static_cast<std::size_t>(k)].cellSize / theta);
      thr2[k] = t * t;
    }
    // Explicit DFS; each opened cell pushes at most 4 children, so the
    // stack is bounded by 3 * levels + 1 entries.
    struct Frame {
      int level;
      long cx, cy;
    };
    Frame stack[3 * kMaxLevels + 4];
    int sp = 0;
    stack[sp++] = {top, 0, 0};
    while (sp > 0) {
      const Frame fr = stack[--sp];
      const Level& L = levels_[static_cast<std::size_t>(fr.level)];
      const std::size_t idx = static_cast<std::size_t>(fr.cy * L.nx + fr.cx);
      const std::int64_t cnt = L.count[idx];
      if (cnt == 0) continue;
      if (boxDist2(p, fr.cx, fr.cy, L.cellSize) > thr2[fr.level]) {
        const double inv = 1.0 / static_cast<double>(cnt);
        far(cnt, Vec2{L.sumX[idx] * inv, L.sumY[idx] * inv}, fr.level, fr.cx, fr.cy);
        continue;
      }
      if (fr.level == 0) {
        near(ref_[idx]);
        continue;
      }
      const Level& C = levels_[static_cast<std::size_t>(fr.level - 1)];
      // Fixed (dy, dx) child order keeps the traversal deterministic.
      for (long dy = 1; dy >= 0; --dy) {
        for (long dx = 1; dx >= 0; --dx) {
          const long ccx = fr.cx * 2 + dx;
          const long ccy = fr.cy * 2 + dy;
          if (ccx >= C.nx || ccy >= C.ny) continue;
          stack[sp++] = {fr.level - 1, ccx, ccy};
        }
      }
    }
  }

 private:
  // Enough for any long-indexable base grid (nx halves per level).
  static constexpr int kMaxLevels = 64;

  struct Level {
    long nx = 0, ny = 0;
    double cellSize = 0.0;
    std::vector<std::int64_t> count;
    std::vector<double> sumX, sumY;
  };

  /// Squared distance from `p` to the closed box of cell (cx, cy) at a
  /// given cell size (all levels share the (minX_, minY_) anchor).
  [[nodiscard]] double boxDist2(Vec2 p, long cx, long cy, double cellSize) const noexcept {
    const double x0 = minX_ + static_cast<double>(cx) * cellSize;
    const double y0 = minY_ + static_cast<double>(cy) * cellSize;
    const double dx = p.x < x0 ? x0 - p.x : (p.x > x0 + cellSize ? p.x - (x0 + cellSize) : 0.0);
    const double dy = p.y < y0 ? y0 - p.y : (p.y > y0 + cellSize ? p.y - (y0 + cellSize) : 0.0);
    return dx * dx + dy * dy;
  }

  std::vector<Level> levels_;       // levels_[0] is the base grid; the
                                    // first numLevels_ entries are live,
                                    // extras retain capacity for reuse
  std::vector<std::int32_t> ref_;   // base-level caller refs (dense)
  int numLevels_ = 0;
  double minX_ = 0.0, minY_ = 0.0;
};

}  // namespace mcs
