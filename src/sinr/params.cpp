#include "sinr/params.h"

// SinrParams and SinrBounds are header-only; this translation unit exists
// to anchor the module in the build and to host future non-inline helpers.
namespace mcs {}
