#include "sinr/params.h"

namespace mcs {
namespace {

// Fixed-exponent replica of PowerKernel::operator()'s binary-exponentiation
// loop.  The multiply sequence (including the trailing squarings the scalar
// loop performs past the last set bit) is reproduced exactly so the batched
// result is bit-identical to the scalar one; with Whole a template constant
// the loop fully unrolls into straight-line multiplies.
template <int Whole>
[[nodiscard]] inline double powWhole(double d2) noexcept {
  double p = 1.0;
  double b = d2;
  for (int e = Whole; e != 0; e >>= 1) {
    if ((e & 1) != 0) p *= b;
    b *= b;
  }
  return p;
}

// Elementwise fast-path sweep for a fixed (whole, quarters) exponent pair.
// One tight loop per specialization: contiguous loads, a constant-length
// multiply chain, optional sqrt(s), one divide, contiguous store — exactly
// the shape Release -O3 auto-vectorizes (verified in bench_medium).
template <int Whole, int Quarters>
void batchFixed(double power, const double* d2, double* out, std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    double p = powWhole<Whole>(d2[i]);
    if constexpr (Quarters != 0) {
      const double s = std::sqrt(d2[i]);
      if constexpr ((Quarters & 2) != 0) p *= s;
      if constexpr ((Quarters & 1) != 0) p *= std::sqrt(s);
    }
    out[i] = power / p;
  }
}

}  // namespace

void PowerKernel::batch(const double* d2, double* out, std::size_t count) const noexcept {
  if (!fast_) {
    for (std::size_t i = 0; i < count; ++i) out[i] = power_ / std::pow(d2[i], halfAlpha_);
    return;
  }
  // alpha in (0.5, 16] covers whole_ in [0, 8]; the practical path-loss
  // range (alpha <= 9.5 -> whole_ <= 4) gets a dedicated specialization,
  // anything beyond falls back to the scalar operator per element.
#define MCS_BATCH_CASE(W, Q)                 \
  case ((W) << 2) | (Q):                     \
    batchFixed<W, Q>(power_, d2, out, count); \
    return;
  switch ((whole_ << 2) | quarters_) {
    MCS_BATCH_CASE(0, 1)
    MCS_BATCH_CASE(0, 2)
    MCS_BATCH_CASE(0, 3)
    MCS_BATCH_CASE(1, 0)
    MCS_BATCH_CASE(1, 1)
    MCS_BATCH_CASE(1, 2)
    MCS_BATCH_CASE(1, 3)
    MCS_BATCH_CASE(2, 0)
    MCS_BATCH_CASE(2, 1)
    MCS_BATCH_CASE(2, 2)
    MCS_BATCH_CASE(2, 3)
    MCS_BATCH_CASE(3, 0)
    MCS_BATCH_CASE(3, 1)
    MCS_BATCH_CASE(3, 2)
    MCS_BATCH_CASE(3, 3)
    MCS_BATCH_CASE(4, 0)
    MCS_BATCH_CASE(4, 1)
    MCS_BATCH_CASE(4, 2)
    MCS_BATCH_CASE(4, 3)
    default:
      for (std::size_t i = 0; i < count; ++i) out[i] = (*this)(d2[i]);
      return;
  }
#undef MCS_BATCH_CASE
}

}  // namespace mcs
