#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "geom/grid_index.h"
#include "geom/hier_grid.h"
#include "geom/vec2.h"
#include "sim/message.h"
#include "sinr/fading.h"
#include "sinr/params.h"
#include "sinr/workspace.h"
#include "util/ids.h"
#include "util/thread_pool.h"

/// The shared wireless medium: resolves one slot of simultaneous
/// transmissions across F non-overlapping channels under the SINR rule.
namespace mcs {

/// Aggregate counters maintained by the medium (for metrics/benches).
struct MediumStats {
  std::uint64_t slots = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t listens = 0;
  std::uint64_t decodes = 0;

  [[nodiscard]] double decodeRate() const noexcept {
    return listens ? static_cast<double>(decodes) / static_cast<double>(listens) : 0.0;
  }
};

/// Resolves slots under one of three interference-summation modes,
/// selected by SinrParams::mediumMode:
///
///  - MediumMode::Exact (default): every same-channel transmitter
///    contributes P/d^alpha to every listener individually.  Results are
///    reproducible bit-for-bit for a given parameter set, independent of
///    the thread count (each listener is resolved independently and the
///    per-listener summation order is fixed).  The slot's transmitters
///    are staged in MediumWorkspace's structure-of-arrays buffers, so
///    the sweep is a unit-stride pass over flat double arrays evaluated
///    through PowerKernel::batch — auto-vectorizable distance/kernel
///    phases followed by a fixed-order scalar reduction, which is how
///    the speedup coexists with the bit-reproducibility contract.
///
///  - MediumMode::NearFar: per channel, transmitters are indexed in a
///    uniform grid.  Transmitters within `nearField * R_T` of a listener
///    are summed exactly (this includes every transmitter that could
///    possibly decode, since nearField >= 1); farther transmitters are
///    batched per grid cell, contributing `count * P/d(centroid)^alpha`.
///    Because the centroid is the mean of the cell's members, the
///    first-order error term vanishes; what remains is a second-order
///    far-field approximation of the interference sum.  Decode decisions
///    can differ from Exact only for listeners whose SINR is within that
///    approximation error of beta.  Per-listener cost is O(occupied
///    cells).
///
///  - MediumMode::Hierarchical: NearFar's near ball (identical exact
///    member summation within `nearField * R_T`), with the far field
///    batched through a HierGrid pyramid over the same base cells:
///    distant regions contribute one centroid kernel call at the
///    coarsest level whose cell passes the SinrParams::hierTheta
///    admissibility rule (cell side <= theta * distance), taking the
///    per-listener far-field cost from O(occupied cells) toward
///    O(log n).  The admissibility rule bounds each batched
///    contribution's centroid displacement by sqrt(2) * theta relative
///    to its distance — the same style of bound the NearFar cell size
///    provides, now holding uniformly at every level.  At the default
///    theta = 0.5, level-0 admissibility coincides exactly with
///    NearFar's near-ball test, so Hierarchical refines NearFar by
///    re-batching only regions NearFar already approximated.
///
/// All modes evaluate path loss through PowerKernel, which specializes
/// integer/half-integer alpha to multiply/sqrt sequences (no std::pow on
/// the hot path).  Co-located node pairs are clamped to
/// SinrParams::kMinDistance so received power and RSSI ranging stay
/// finite even on degenerate inputs.
///
/// When SinrParams::fading selects a FadingModel, every per-pair received
/// power is additionally multiplied by FadingField::gain(slot, tx, rx) —
/// a pure function of the triple and the fading key, so results stay
/// bit-reproducible per seed and independent of thread count (see
/// sinr/fading.h).  In NearFar mode, near-field transmitters get their
/// per-pair gain; a far cell's batched contribution shares one gain drawn
/// per (slot, cell, listener) and counts toward interference only.  That
/// truncates the fading *decode* range at nearField * R_T: a far
/// transmitter whose lucky gain would have decoded under Exact cannot
/// decode under NearFar (with lognormal sigma = 6 dB and nearField = 2,
/// a few percent of pairs beyond the near radius draw such gains).
/// Raise nearField to push that truncation out, or use Exact when
/// fading-tail decodes matter.  Note that fading also perturbs RSSI-based
/// senderDistance estimates — by design, that is the impairment.

/// Node count below which Hierarchical mode is a regression, not an
/// optimization: BENCH_medium.json has hier at 0.96x the *exact* kernel
/// at n=500/8ch and behind NearFar at every measured n through 8000 —
/// the pyramid build is per-slot overhead that only pays for itself when
/// far-field listener work dwarfs it (≫10^4 nodes).  resolveSlot warns
/// once when hier runs below this (see README "Choosing a medium mode").
inline constexpr std::size_t kHierSmallNCrossover = 4000;

class Medium {
 public:
  /// `numThreads` > 1 spreads the per-listener loop over a persistent
  /// std::thread pool; results are identical to the single-threaded run.
  Medium(SinrParams params, int numChannels, int numThreads = 1);

  /// Resolves one slot.  `intents[v]` is node v's declared behavior;
  /// `out[v]` is filled for every listener (and cleared for everyone
  /// else).  Transmitters observe nothing (half-duplex, §2).
  ///
  /// Semantics per listener on channel c:
  ///  - totalPower = sum of P/d(w,v)^alpha over all transmitters w on c;
  ///  - the strongest transmitter u decodes iff
  ///      P/d(u,v)^alpha >= beta * (N + totalPower - P/d(u,v)^alpha);
  ///  - at most one message decodes per slot (beta >= 1 makes the
  ///    strongest the only candidate).
  void resolveSlot(std::span<const Vec2> positions, std::span<const Intent> intents,
                   std::vector<Reception>& out);

  [[nodiscard]] const SinrParams& params() const noexcept { return params_; }
  [[nodiscard]] int numChannels() const noexcept { return numChannels_; }
  [[nodiscard]] int numThreads() const noexcept { return pool_ ? pool_->threads() : 1; }
  [[nodiscard]] const MediumStats& stats() const noexcept { return stats_; }
  void resetStats() noexcept { stats_ = {}; }

  /// Re-keys the fading draws (no-op for FadingModel::None).  The
  /// Simulator calls this with a dedicated fork of its root Rng (stream
  /// 0) so fading is reproducible per simulation seed; standalone Medium
  /// use falls back to FadingField::kDefaultKey.
  void seedFading(std::uint64_t key) noexcept {
    fading_ = FadingField(params_.fading, key);
  }
  [[nodiscard]] const FadingField& fading() const noexcept { return fading_; }

  /// Attribution hook (decode-attribution probes, telemetry/probes.h):
  /// marks nodes as dead so a probes-armed resolveSlot classifies their
  /// failed listens as `cause.dead_listener` instead of a physical cause.
  /// Engine runs never exercise this — Simulator forces churned-out nodes
  /// to Idle before the medium sees them, so the counter is structurally
  /// zero there; hand-wired callers (tests) set the mask and pass Listen
  /// intents for dead nodes directly.  Empty = everyone alive.  The mask
  /// is only consulted for cause classification; receptions are computed
  /// identically with or without it.
  void setAliveMask(std::vector<std::uint8_t> alive) { aliveMask_ = std::move(alive); }

  /// Declares that callers pass *drifting* positions (mobility).  In
  /// NearFar and Hierarchical modes this switches buildFields to the
  /// incremental path: one persistent GridIndex over all node positions,
  /// advanced per slot via GridIndex::update (bounded displacement moves
  /// points between cells; full rebuild fallback), with per-channel far
  /// cells (and, in Hierarchical mode, the pyramid) grouped off that
  /// shared index instead of rebuilding a per-channel grid from each
  /// slot's transmitter set.  Static runs keep the original per-channel
  /// path bit-for-bit; Exact mode ignores the flag entirely (positions
  /// are always read fresh).
  void setDynamicPositions(bool on) noexcept { dynamicPositions_ = on; }
  [[nodiscard]] bool dynamicPositions() const noexcept { return dynamicPositions_; }

 private:
  /// Far-field aggregate of one grid cell (NearFar mode): the member
  /// centroid, the member ids (channel-local), and the cell coordinates.
  struct FarCell {
    Vec2 centroid;
    long cx = 0, cy = 0;
    std::span<const NodeId> ids;  // into the channel grid's CSR storage
  };

  /// Per-channel spatial structure rebuilt each slot in NearFar and
  /// Hierarchical modes.
  struct ChannelField {
    GridIndex grid;          // over this channel's transmitter positions (static path)
    std::int32_t lo = 0;     // slice start in the workspace's txIds
    std::vector<FarCell> cells;
    /// Dynamic path: channel-local tx indices sorted by allGrid_ cell
    /// (FarCell::ids spans into this instead of the per-channel grid).
    std::vector<NodeId> sortedLocals;
    /// Hierarchical mode: the coarse-to-fine pyramid over this channel's
    /// occupied base cells (near() refs index into `cells`).
    HierGrid hier;
  };

  void buildFields(bool buildHier);
  void buildFieldsDynamic(std::span<const Vec2> positions, bool buildHier);

  SinrParams params_;
  PowerKernel kernel_;
  FadingField fading_;
  /// Slot ordinal for fading draws.  Deliberately separate from
  /// stats_.slots: resetStats() must not rewind the fading sequence (a
  /// warmup/measure split would otherwise replay the same gains).
  std::uint64_t fadingSlot_ = 0;
  int numChannels_;
  double nearRadius_ = 0.0;  // nearField * R_T, cached
  MediumStats stats_;
  std::unique_ptr<ThreadPool> pool_;  // present iff numThreads > 1

  // Per-slot SoA staging (channel buckets, flat tx coordinates,
  // listeners); buffers reused across slots to avoid allocation.
  MediumWorkspace ws_;
  std::vector<ChannelField> fields_;
  std::vector<Vec2> fieldPts_;
  std::vector<HierBaseCell> hierBase_;  // pyramid-build scratch

  /// Attribution-only liveness mask (see setAliveMask); empty = alive.
  std::vector<std::uint8_t> aliveMask_;

  // Incremental NearFar path (setDynamicPositions): a persistent index
  // over ALL node positions, updated in place each slot.
  bool dynamicPositions_ = false;
  GridIndex allGrid_;
  std::vector<std::pair<long, NodeId>> cellLocal_;  // (cell, local) scratch
};

}  // namespace mcs
