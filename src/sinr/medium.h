#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.h"
#include "sim/message.h"
#include "sinr/params.h"
#include "util/ids.h"

/// The shared wireless medium: resolves one slot of simultaneous
/// transmissions across F non-overlapping channels under the SINR rule.
namespace mcs {

/// Aggregate counters maintained by the medium (for metrics/benches).
struct MediumStats {
  std::uint64_t slots = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t listens = 0;
  std::uint64_t decodes = 0;

  [[nodiscard]] double decodeRate() const noexcept {
    return listens ? static_cast<double>(decodes) / static_cast<double>(listens) : 0.0;
  }
};

class Medium {
 public:
  Medium(SinrParams params, int numChannels);

  /// Resolves one slot.  `intents[v]` is node v's declared behavior;
  /// `out[v]` is filled for every listener (and cleared for everyone
  /// else).  Transmitters observe nothing (half-duplex, §2).
  ///
  /// Semantics per listener on channel c:
  ///  - totalPower = sum of P/d(w,v)^alpha over all transmitters w on c;
  ///  - the strongest transmitter u decodes iff
  ///      P/d(u,v)^alpha >= beta * (N + totalPower - P/d(u,v)^alpha);
  ///  - at most one message decodes per slot (beta >= 1 makes the
  ///    strongest the only candidate).
  void resolveSlot(std::span<const Vec2> positions, std::span<const Intent> intents,
                   std::vector<Reception>& out);

  [[nodiscard]] const SinrParams& params() const noexcept { return params_; }
  [[nodiscard]] int numChannels() const noexcept { return numChannels_; }
  [[nodiscard]] const MediumStats& stats() const noexcept { return stats_; }
  void resetStats() noexcept { stats_ = {}; }

 private:
  SinrParams params_;
  int numChannels_;
  MediumStats stats_;

  // Scratch buffers reused across slots to avoid per-slot allocation.
  std::vector<std::int32_t> txByChannelStart_;
  std::vector<NodeId> txByChannel_;
  std::vector<NodeId> listeners_;
};

}  // namespace mcs
