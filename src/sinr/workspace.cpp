#include "sinr/workspace.h"

#include <cstdio>
#include <cstdlib>

namespace mcs {
namespace {

// Out-of-range channels corrupt the CSR buckets (and, pre-refactor, the
// txByChannelStart_ indexing) silently in -DNDEBUG builds where asserts
// compile out.  This fires in every build type.
[[noreturn]] void channelRangeFailure(std::size_t node, int channel, int numChannels) {
  std::fprintf(stderr,
               "mcs: fatal: node %zu declared intent on channel %d, outside [0, %d)\n",
               node, channel, numChannels);
  std::abort();
}

}  // namespace

std::size_t MediumWorkspace::populate(std::span<const Vec2> positions,
                                      std::span<const Intent> intents, int numChannels) {
  const std::size_t n = positions.size();
  chanStart.assign(static_cast<std::size_t>(numChannels) + 1, 0);
  listeners.clear();
  std::size_t txTotal = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const Intent& it = intents[v];
    if (it.action == Action::Idle) continue;
    if (it.channel < 0 || it.channel >= numChannels) {
      channelRangeFailure(v, it.channel, numChannels);
    }
    if (it.action == Action::Transmit) {
      ++chanStart[static_cast<std::size_t>(it.channel) + 1];
      ++txTotal;
    } else {
      listeners.push_back(static_cast<NodeId>(v));
    }
  }
  for (int c = 0; c < numChannels; ++c) {
    chanStart[static_cast<std::size_t>(c) + 1] += chanStart[static_cast<std::size_t>(c)];
  }

  txIds.resize(txTotal);
  txX.resize(txTotal);
  txY.resize(txTotal);
  cursor_.assign(chanStart.begin(), chanStart.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    const Intent& it = intents[v];
    if (it.action != Action::Transmit) continue;
    const auto slot = static_cast<std::size_t>(cursor_[static_cast<std::size_t>(it.channel)]++);
    txIds[slot] = static_cast<NodeId>(v);
    txX[slot] = positions[v].x;
    txY[slot] = positions[v].y;
  }
  return txTotal;
}

}  // namespace mcs
