#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <initializer_list>

/// SINR model parameters and derived quantities (paper §2).
namespace mcs {

/// How Medium::resolveSlot sums same-channel interference per listener
/// (see sinr/medium.h for the full contract):
///  - Exact: every transmitter contributes P/d^alpha individually.
///  - NearFar: transmitters within `nearField * R_T` contribute exactly;
///    farther ones are batched per grid cell around the cell's centroid.
///  - Hierarchical: NearFar's near ball, plus a coarse-to-fine grid
///    pyramid over the far field — distant regions contribute one
///    centroid kernel call at the coarsest level whose cell passes the
///    `hierTheta` admissibility rule, taking the per-listener far-field
///    cost from O(occupied cells) toward O(log n).
enum class MediumMode : std::uint8_t { Exact = 0, NearFar = 1, Hierarchical = 2 };

/// Stochastic channel-impairment model applied multiplicatively on top of
/// the deterministic P/d^alpha path loss (see sinr/fading.h for the draw):
///  - Rayleigh: per (slot, transmitter, listener) power gain ~ Exp(1)
///    (unit mean), the classic narrowband multipath fade.
///  - Lognormal: shadowing gain 10^(sigma_dB * Z / 10), Z ~ N(0, 1).
///  - RayleighLognormal: the product of both (composite fading).
enum class FadingModel : std::uint8_t {
  None = 0,
  Rayleigh = 1,
  Lognormal = 2,
  RayleighLognormal = 3,
};

/// Configuration of the fading layer.  All draws are keyed by a dedicated
/// fork of the simulation Rng (Simulator stream 0), so a run is
/// bit-reproducible per seed and independent of thread count; see
/// FadingField in sinr/fading.h for the exact contract.
struct FadingParams {
  FadingModel model = FadingModel::None;
  /// Lognormal shadowing standard deviation in dB (typ. 3-8 dB).
  double shadowSigmaDb = 6.0;

  [[nodiscard]] bool enabled() const noexcept { return model != FadingModel::None; }
  [[nodiscard]] bool valid() const noexcept { return shadowSigmaDb >= 0.0; }
};

/// Received-power kernel: evaluates P / d^alpha from the *squared*
/// distance d^2.  For integer and half-integer alpha (2, 2.5, 3, ... —
/// the whole practical path-loss range) the exponent alpha/2 decomposes
/// into whole + quarter parts, so the hot path costs a few multiplies and
/// square roots instead of a libm std::pow call; any other alpha falls
/// back to std::pow(d2, alpha/2) exactly as before.
class PowerKernel {
 public:
  constexpr PowerKernel() noexcept = default;

  PowerKernel(double power, double alpha) noexcept : power_(power), halfAlpha_(alpha * 0.5) {
    // alpha/2 in quarter units; exact for representable half-integers.
    const double q = alpha * 2.0;
    if (q >= 1.0 && q <= 64.0 && q == std::floor(q)) {
      const int qi = static_cast<int>(q);
      whole_ = qi >> 2;
      quarters_ = qi & 3;
      fast_ = true;
    }
  }

  /// P / d^alpha given d2 = d^2 (> 0).
  [[nodiscard]] double operator()(double d2) const noexcept {
    if (!fast_) return power_ / std::pow(d2, halfAlpha_);
    double p = 1.0;
    double b = d2;
    for (int e = whole_; e != 0; e >>= 1) {
      if ((e & 1) != 0) p *= b;
      b *= b;
    }
    if (quarters_ != 0) {
      const double s = std::sqrt(d2);            // d2^(1/2)
      if ((quarters_ & 2) != 0) p *= s;
      if ((quarters_ & 1) != 0) p *= std::sqrt(s);  // d2^(1/4)
    }
    return power_ / p;
  }

  /// Evaluates the kernel elementwise over contiguous arrays:
  /// out[i] = (*this)(d2[i]), bit-for-bit (locked by test).  The fast
  /// path dispatches once per call to a fixed-exponent inner loop of
  /// plain multiplies/sqrts over the flat buffers — no libm call, no
  /// per-element branching on the exponent — which the compiler unrolls
  /// and auto-vectorizes in Release builds (no intrinsics).  `d2` and
  /// `out` may alias only if identical.
  void batch(const double* d2, double* out, std::size_t count) const noexcept;

  /// True when the integer/half-integer specialization is active.
  [[nodiscard]] bool fastPath() const noexcept { return fast_; }

 private:
  double power_ = 1.0;
  double halfAlpha_ = 1.5;
  int whole_ = 0;
  int quarters_ = 0;
  bool fast_ = false;
};

/// Physical-layer parameters: path-loss exponent alpha (> 2), decoding
/// threshold beta (>= 1), ambient noise N (> 0), uniform transmit power P.
///
/// The library default is normalized so the transmission range
/// R_T = (P / (beta * N))^(1/alpha) equals 1.
struct SinrParams {
  double alpha = 3.0;
  double beta = 1.5;
  double noise = 1.0 / 1.5;  // => R_T = 1 with power = 1
  double power = 1.0;

  /// Interference-summation mode used by the Medium.  Exact is the
  /// default; its results are bit-reproducible for a given parameter
  /// set, independent of thread count.
  MediumMode mediumMode = MediumMode::Exact;
  /// Near-field radius in units of R_T (NearFar and Hierarchical modes).
  /// Must be >= 1 so every decodable transmitter is still summed exactly.
  double nearField = 2.0;

  /// Hierarchical-mode opening angle (0 < hierTheta <= 1): a pyramid
  /// cell of side s is admissible for batching at distance d iff
  /// s / d <= hierTheta (and the cell clears the near radius).  The
  /// centroid displacement within an admissible cell is at most
  /// s * sqrt(2) <= hierTheta * sqrt(2) * d, bounding the relative error
  /// of each batched contribution the same way the NearFar cell-size
  /// bound does; smaller values open more cells (finer, slower, more
  /// accurate).  The default 0.5 matches NearFar's base cells
  /// (cellSize = nearRadius / 2), so level-0 admissibility decisions
  /// coincide exactly with NearFar's near-ball test.
  double hierTheta = 0.5;

  /// Stochastic channel impairments layered on the deterministic path
  /// loss (off by default; every existing result is unchanged).
  FadingParams fading;

  /// Exactly co-located node pairs (d == 0) are treated as this far apart
  /// by the Medium.  The model requires distinct positions; the clamp
  /// keeps received power, SINR, and RSSI ranging finite for degenerate
  /// input without disturbing any positive distance, however small.
  static constexpr double kMinDistance = 1e-9;

  /// Maximum decodable distance absent interference: (P / (beta N))^(1/alpha).
  [[nodiscard]] double transmissionRange() const noexcept {
    return std::pow(power / (beta * noise), 1.0 / alpha);
  }

  /// Received power at distance d: P / d^alpha.
  [[nodiscard]] double rxPower(double d) const noexcept {
    return power / std::pow(d, alpha);
  }

  /// Inverts rxPower: distance estimate from a measured signal strength.
  /// This is the RSSI-based ranging the model grants nodes (§2).
  [[nodiscard]] double distanceFromPower(double signal) const noexcept {
    return std::pow(power / signal, 1.0 / alpha);
  }

  /// Clear-reception interference threshold T_s (Definition 4):
  ///   T_s = N * min{(2^alpha - 1)/2^alpha, beta / 2^alpha}.
  [[nodiscard]] double clearThreshold() const noexcept {
    const double p2a = std::pow(2.0, alpha);
    return noise * std::min((p2a - 1.0) / p2a, beta / p2a);
  }

  /// The Lemma-2 separation constant t = ((alpha-2)/(48 beta (alpha-1)))^(1/alpha):
  /// an r1-independent transmitter set is heard by all (t*r1)-neighbors.
  [[nodiscard]] double lemma2Factor() const noexcept {
    return std::pow((alpha - 2.0) / (48.0 * beta * (alpha - 1.0)), 1.0 / alpha);
  }

  /// The received-power kernel for these parameters (P / d^alpha from d^2).
  [[nodiscard]] PowerKernel kernel() const noexcept { return {power, alpha}; }

  /// Validates the model constraints (alpha > 2, beta >= 1, positive N, P,
  /// and a near-field radius covering the transmission range).
  [[nodiscard]] bool valid() const noexcept {
    return alpha > 2.0 && beta >= 1.0 && noise > 0.0 && power > 0.0 && nearField >= 1.0 &&
           hierTheta > 0.0 && hierTheta <= 1.0 && fading.valid();
  }

  /// Returns parameters rescaled so that transmissionRange() == rt.
  [[nodiscard]] SinrParams withRange(double rt) const noexcept {
    SinrParams p = *this;
    p.noise = p.power / (p.beta * std::pow(rt, p.alpha));
    return p;
  }
};

/// Uncertainty ranges for the SINR parameters (§2 "Knowledge of Nodes").
/// Protocols only see this struct, never the exact SinrParams; they must
/// pick the conservative end of each range.
struct SinrBounds {
  double alphaMin = 3.0, alphaMax = 3.0;
  double betaMin = 1.5, betaMax = 1.5;
  double noiseMin = 1.0 / 1.5, noiseMax = 1.0 / 1.5;
  double power = 1.0;  // uniform power is known exactly

  /// Exact knowledge of `p` (zero-width ranges).
  [[nodiscard]] static SinrBounds exact(const SinrParams& p) noexcept {
    SinrBounds b;
    b.alphaMin = b.alphaMax = p.alpha;
    b.betaMin = b.betaMax = p.beta;
    b.noiseMin = b.noiseMax = p.noise;
    b.power = p.power;
    return b;
  }

  /// Ranges of relative width `rel` centered on `p` (e.g. rel = 0.2 gives
  /// +-10% around each true value).
  [[nodiscard]] static SinrBounds around(const SinrParams& p, double rel) noexcept {
    SinrBounds b;
    const double lo = 1.0 - rel / 2.0, hi = 1.0 + rel / 2.0;
    b.alphaMin = std::max(2.0 + 1e-6, p.alpha * lo);
    b.alphaMax = p.alpha * hi;
    b.betaMin = std::max(1.0, p.beta * lo);
    b.betaMax = p.beta * hi;
    b.noiseMin = p.noise * lo;
    b.noiseMax = p.noise * hi;
    b.power = p.power;
    return b;
  }

  /// Conservative (smallest guaranteed) transmission range.
  [[nodiscard]] double rangeLower() const noexcept {
    SinrParams worst;
    worst.alpha = alphaMax;
    worst.beta = betaMax;
    worst.noise = noiseMax;
    worst.power = power;
    const double a = worst.transmissionRange();
    worst.alpha = alphaMin;
    return std::min(a, worst.transmissionRange());
  }

  /// Conservative clear-reception threshold: the smallest T_s over the
  /// ranges, so that "interference <= T_s" is never declared wrongly.
  [[nodiscard]] double clearThresholdLower() const noexcept {
    double best = 1e300;
    for (double a : {alphaMin, alphaMax}) {
      SinrParams p;
      p.alpha = a;
      p.beta = betaMin;
      p.noise = noiseMin;
      p.power = power;
      best = std::min(best, p.clearThreshold());
    }
    return best;
  }

  /// Conservative distance estimate from RSSI: the largest distance any
  /// parameter setting in the range could map `signal` to.
  [[nodiscard]] double distanceUpper(double signal) const noexcept {
    double d = 0.0;
    for (double a : {alphaMin, alphaMax}) {
      d = std::max(d, std::pow(power / signal, 1.0 / a));
    }
    return d;
  }
};

}  // namespace mcs
