#pragma once

#include <cmath>
#include <cstdint>

#include "sinr/params.h"

/// Stochastic channel impairments: Rayleigh fading and lognormal
/// shadowing as multiplicative power gains on top of P/d^alpha.
///
/// Reproducibility contract: the gain for a (slot, transmitter, listener)
/// triple is a pure function of that triple and a 64-bit key derived from
/// a dedicated fork of the simulation Rng (Simulator stream 0).  No
/// mutable state is involved, so a run is bit-identical for a given seed
/// regardless of evaluation order, listener partitioning, or thread
/// count — the same guarantee MediumMode::Exact gives for the
/// deterministic part of the model.
namespace mcs {

/// The splitmix64 finalizer as a stateless mixing step (hash combining).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counter-based fading field.  Holds the model parameters plus the draw
/// key; `gain()` is const and thread-safe.
class FadingField {
 public:
  /// Key used when no Simulator seeded the medium (standalone Medium use
  /// stays deterministic).
  static constexpr std::uint64_t kDefaultKey = 0x6d63735f66616465ULL;  // "mcs_fade"

  FadingField() = default;
  FadingField(FadingParams params, std::uint64_t key) noexcept
      : params_(params),
        key_(key),
        // sigma of ln(gain): dB -> natural log is ln(10)/10.
        lnSigma_(params.shadowSigmaDb * 0.23025850929940457) {}

  [[nodiscard]] const FadingParams& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t key() const noexcept { return key_; }
  [[nodiscard]] bool enabled() const noexcept { return params_.enabled(); }

  /// Power gain for transmitter `tx` heard by listener `rx` in slot
  /// `slot`.  Pure function of (key, slot, tx, rx); mean 1 for Rayleigh,
  /// exp(lnSigma^2 / 2) for lognormal (the standard dB-symmetric model).
  [[nodiscard]] double gain(std::uint64_t slot, std::uint64_t tx, std::uint64_t rx) const noexcept {
    // Cascaded finalizer mixing: each component fully avalanches before
    // the next is folded in, so structured (slot, tx, rx) lattices do not
    // produce correlated gains.
    std::uint64_t h = mix64(key_ ^ (slot + 0x9e3779b97f4a7c15ULL));
    h = mix64(h ^ tx);
    h = mix64(h ^ rx);

    double g = 1.0;
    const FadingModel m = params_.model;
    if (m == FadingModel::Rayleigh || m == FadingModel::RayleighLognormal) {
      // Exponential(1) via inversion; 1 - u in (0, 1] keeps the log finite.
      g = -std::log(1.0 - unit(h));
      h = mix64(h + 0x9e3779b97f4a7c15ULL);
    }
    if (m == FadingModel::Lognormal || m == FadingModel::RayleighLognormal) {
      // One Box-Muller normal from two fresh uniforms.
      const double u1 = 1.0 - unit(h);
      h = mix64(h + 0x9e3779b97f4a7c15ULL);
      const double u2 = unit(h);
      const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
      g *= std::exp(lnSigma_ * z);
    }
    return g;
  }

 private:
  /// Uniform in [0, 1) from a mixed 64-bit word (same mapping as Rng).
  [[nodiscard]] static double unit(std::uint64_t h) noexcept {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  FadingParams params_{};
  std::uint64_t key_ = kDefaultKey;
  double lnSigma_ = 0.0;
};

}  // namespace mcs
