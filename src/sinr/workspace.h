#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.h"
#include "sim/message.h"
#include "util/ids.h"

/// Per-slot structure-of-arrays staging area for Medium::resolveSlot.
namespace mcs {

/// Flat, channel-bucketed views of one slot's transmitters and listeners,
/// populated once per slot from the caller's AoS spans.  Transmitter
/// positions are split into contiguous x[] / y[] arrays in channel-bucket
/// order, so the Exact-mode interference sweep is a unit-stride pass over
/// doubles that Release builds auto-vectorize (see PowerKernel::batch);
/// NearFar/Hierarchical grid construction reads the same buckets.  All
/// buffers are reused across slots (no steady-state allocation).
struct MediumWorkspace {
  /// CSR channel buckets: channel c's transmitters occupy indices
  /// [chanStart[c], chanStart[c+1]) of txIds/txX/txY.  Within a bucket,
  /// transmitters appear in ascending node id — the fixed summation
  /// order the Exact-mode bit-reproducibility contract relies on.
  std::vector<std::int32_t> chanStart;
  std::vector<NodeId> txIds;
  std::vector<double> txX;
  std::vector<double> txY;
  std::vector<NodeId> listeners;

  /// Rebuilds every buffer from this slot's intents (counting sort by
  /// channel).  Validates that every non-idle intent names a channel in
  /// [0, numChannels) with a check that stays armed in Release builds:
  /// an out-of-range channel would otherwise index out of bounds with
  /// asserts compiled out, so it aborts loudly instead.  Returns the
  /// transmitter count.
  std::size_t populate(std::span<const Vec2> positions, std::span<const Intent> intents,
                       int numChannels);

  [[nodiscard]] std::int32_t bucketBegin(ChannelId c) const noexcept {
    return chanStart[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::int32_t bucketEnd(ChannelId c) const noexcept {
    return chanStart[static_cast<std::size_t>(c) + 1];
  }

 private:
  std::vector<std::int32_t> cursor_;  // counting-sort scratch
};

}  // namespace mcs
