#include "sinr/medium.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

namespace mcs {

Medium::Medium(SinrParams params, int numChannels, int numThreads)
    : params_(params),
      kernel_(params.kernel()),
      fading_(params.fading, FadingField::kDefaultKey),
      numChannels_(numChannels),
      // NearFar decode correctness requires nearRadius_ >= R_T (every
      // decodable transmitter must be summed exactly); clamp rather than
      // trust the assert below, which is compiled out in Release.
      nearRadius_(std::max(params.nearField, 1.0) * params.transmissionRange()) {
  assert(params_.valid());
  assert(numChannels_ >= 1);
  assert(numThreads >= 1);
  if (numThreads > 1) pool_ = std::make_unique<ThreadPool>(numThreads);
  txByChannelStart_.assign(static_cast<std::size_t>(numChannels_) + 1, 0);
}

void Medium::buildFields(std::span<const Vec2> positions) {
  fields_.resize(static_cast<std::size_t>(numChannels_));
  // Half the near radius balances batching (fewer kernel calls per far
  // cell) against centroid accuracy (smaller spread within a cell).
  const double cellSize = nearRadius_ * 0.5;
  for (int c = 0; c < numChannels_; ++c) {
    ChannelField& f = fields_[static_cast<std::size_t>(c)];
    f.lo = txByChannelStart_[static_cast<std::size_t>(c)];
    const std::int32_t hi = txByChannelStart_[static_cast<std::size_t>(c) + 1];
    f.cells.clear();
    if (f.lo == hi) continue;  // no transmitters: cells stay empty
    fieldPts_.clear();
    for (std::int32_t i = f.lo; i < hi; ++i) {
      fieldPts_.push_back(positions[static_cast<std::size_t>(txByChannel_[static_cast<std::size_t>(i)])]);
    }
    f.grid.rebuild(fieldPts_, cellSize);
    f.grid.forEachCell([&f](long cx, long cy, std::span<const NodeId> ids) {
      Vec2 sum{};
      for (const NodeId id : ids) sum = sum + f.grid.point(id);
      f.cells.push_back({sum * (1.0 / static_cast<double>(ids.size())), cx, cy, ids});
    });
  }
}

void Medium::buildFieldsDynamic(std::span<const Vec2> positions) {
  // One persistent grid over every node position, advanced incrementally:
  // bounded per-slot displacement moves points between cells inside
  // GridIndex::update; leaving the box falls back to a rebuild there.
  allGrid_.ensure(positions, nearRadius_ * 0.5);

  fields_.resize(static_cast<std::size_t>(numChannels_));
  for (int c = 0; c < numChannels_; ++c) {
    ChannelField& f = fields_[static_cast<std::size_t>(c)];
    f.lo = txByChannelStart_[static_cast<std::size_t>(c)];
    const std::int32_t hi = txByChannelStart_[static_cast<std::size_t>(c) + 1];
    f.cells.clear();
    f.sortedLocals.clear();
    if (f.lo == hi) continue;

    // Group this channel's transmitters by their shared-grid cell.
    cellLocal_.clear();
    for (std::int32_t i = f.lo; i < hi; ++i) {
      const NodeId w = txByChannel_[static_cast<std::size_t>(i)];
      cellLocal_.emplace_back(allGrid_.cellOfId(w), static_cast<NodeId>(i - f.lo));
    }
    std::sort(cellLocal_.begin(), cellLocal_.end());
    f.sortedLocals.reserve(cellLocal_.size());
    for (const auto& [cell, local] : cellLocal_) f.sortedLocals.push_back(local);

    std::size_t i = 0;
    while (i < cellLocal_.size()) {
      const long cell = cellLocal_[i].first;
      std::size_t j = i;
      Vec2 sum{};
      while (j < cellLocal_.size() && cellLocal_[j].first == cell) {
        const NodeId w =
            txByChannel_[static_cast<std::size_t>(f.lo) +
                         static_cast<std::size_t>(cellLocal_[j].second)];
        sum = sum + positions[static_cast<std::size_t>(w)];
        ++j;
      }
      const auto [cx, cy] = allGrid_.cellCoords(cell);
      f.cells.push_back({sum * (1.0 / static_cast<double>(j - i)), cx, cy,
                         std::span<const NodeId>(f.sortedLocals.data() + i, j - i)});
      i = j;
    }
  }
}

void Medium::resolveSlot(std::span<const Vec2> positions, std::span<const Intent> intents,
                         std::vector<Reception>& out) {
  const std::size_t n = positions.size();
  assert(intents.size() == n);
  out.assign(n, Reception{});
  ++stats_.slots;

  // Bucket transmitters by channel (counting sort) and collect listeners.
  txByChannelStart_.assign(static_cast<std::size_t>(numChannels_) + 1, 0);
  listeners_.clear();
  std::size_t txTotal = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const Intent& it = intents[v];
    if (it.action == Action::Idle) continue;
    assert(it.channel >= 0 && it.channel < numChannels_);
    if (it.action == Action::Transmit) {
      ++txByChannelStart_[static_cast<std::size_t>(it.channel) + 1];
      ++txTotal;
    } else {
      listeners_.push_back(static_cast<NodeId>(v));
    }
  }
  stats_.transmissions += txTotal;
  stats_.listens += listeners_.size();
  if (listeners_.empty()) return;

  for (int c = 0; c < numChannels_; ++c) {
    txByChannelStart_[static_cast<std::size_t>(c) + 1] +=
        txByChannelStart_[static_cast<std::size_t>(c)];
  }
  txByChannel_.resize(txTotal);
  {
    std::vector<std::int32_t> cursor(txByChannelStart_.begin(), txByChannelStart_.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      const Intent& it = intents[v];
      if (it.action != Action::Transmit) continue;
      txByChannel_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(it.channel)]++)] =
          static_cast<NodeId>(v);
    }
  }

  const bool nearFar = params_.mediumMode == MediumMode::NearFar;
  if (nearFar && txTotal > 0) {
    if (dynamicPositions_) {
      buildFieldsDynamic(positions);
    } else {
      buildFields(positions);
    }
  }

  const PowerKernel kern = kernel_;
  const double beta = params_.beta;
  const double noise = params_.noise;
  const double nearR = nearRadius_;
  const double nearR2 = nearR * nearR;
  constexpr double kMinD2 = SinrParams::kMinDistance * SinrParams::kMinDistance;
  const FadingField fad = fading_;
  const bool hasFading = fad.enabled();
  // Keyed on the slot ordinal so gains redraw every slot (block fading).
  const std::uint64_t slotIdx = ++fadingSlot_;

  std::atomic<std::uint64_t> decodes{0};
  const auto processRange = [&](std::size_t rangeBegin, std::size_t rangeEnd) {
    std::uint64_t localDecodes = 0;
    for (std::size_t li = rangeBegin; li < rangeEnd; ++li) {
      const NodeId v = listeners_[li];
      const ChannelId c = intents[static_cast<std::size_t>(v)].channel;
      const std::int32_t lo = txByChannelStart_[static_cast<std::size_t>(c)];
      const std::int32_t hi = txByChannelStart_[static_cast<std::size_t>(c) + 1];
      if (lo == hi) continue;  // silent channel

      double total = 0.0;
      double best = -1.0;
      NodeId bestTx = kNoNode;
      const Vec2 pv = positions[static_cast<std::size_t>(v)];

      if (!nearFar) {
        for (std::int32_t i = lo; i < hi; ++i) {
          const NodeId w = txByChannel_[static_cast<std::size_t>(i)];
          // Distinct positions are a model requirement; exactly co-located
          // pairs are clamped to kMinDistance so power and ranging stay
          // finite (any positive distance passes through untouched).
          const double d2raw = dist2(positions[static_cast<std::size_t>(w)], pv);
          double rx = kern(d2raw > 0.0 ? d2raw : kMinD2);
          if (hasFading) rx *= fad.gain(slotIdx, static_cast<std::uint64_t>(w), static_cast<std::uint64_t>(v));
          total += rx;
          if (rx > best) {
            best = rx;
            bestTx = w;
          }
        }
      } else {
        const ChannelField& f = fields_[static_cast<std::size_t>(c)];
        // Static path: the per-channel grid built this slot.  Dynamic
        // path: cells/coords come from the shared incremental allGrid_,
        // member positions from the caller's drifting span.
        const GridIndex& geom = dynamicPositions_ ? allGrid_ : f.grid;
        // Single pass over non-empty cells: cells entirely beyond the near
        // radius contribute count * P/d(centroid)^alpha in one kernel call;
        // cells touching the near ball have every member summed exactly.
        // Any transmitter that could decode is within R_T <= nearR, hence
        // inside a touching cell, hence an exact `best` candidate.
        for (const FarCell& cell : f.cells) {
          if (geom.cellDist2(cell.cx, cell.cy, pv) > nearR2) {
            const double d2c = dist2(cell.centroid, pv);
            double cellRx = static_cast<double>(cell.ids.size()) * kern(d2c > 0.0 ? d2c : kMinD2);
            if (hasFading) {
              // One shared draw per (slot, cell, listener): far cells are
              // already a batched approximation, and a shared gain keeps
              // the per-slot cost O(cells), not O(transmitters).
              const std::uint64_t cellId =
                  mix64((static_cast<std::uint64_t>(c) << 48) ^
                        (static_cast<std::uint64_t>(static_cast<std::int64_t>(cell.cx)) << 24) ^
                        static_cast<std::uint64_t>(static_cast<std::int64_t>(cell.cy)));
              cellRx *= fad.gain(slotIdx, cellId, static_cast<std::uint64_t>(v));
            }
            total += cellRx;
            continue;
          }
          for (const NodeId local : cell.ids) {
            const NodeId w =
                txByChannel_[static_cast<std::size_t>(f.lo) + static_cast<std::size_t>(local)];
            const Vec2 pw = dynamicPositions_ ? positions[static_cast<std::size_t>(w)]
                                              : f.grid.point(local);
            const double d2raw = dist2(pw, pv);
            double rx = kern(d2raw > 0.0 ? d2raw : kMinD2);
            if (hasFading) rx *= fad.gain(slotIdx, static_cast<std::uint64_t>(w), static_cast<std::uint64_t>(v));
            total += rx;
            if (rx > best) {
              best = rx;
              bestTx = w;
            }
          }
        }
      }

      Reception& r = out[static_cast<std::size_t>(v)];
      r.totalPower = total;
      // SINR condition (1) for the strongest transmitter.  With beta >= 1 no
      // weaker transmitter can satisfy it, so checking the strongest suffices.
      if (bestTx != kNoNode && best >= beta * (noise + (total - best))) {
        r.received = true;
        r.msg = intents[static_cast<std::size_t>(bestTx)].msg;
        r.sinr = best / (noise + (total - best));
        r.signalPower = best;
        r.senderDistance = params_.distanceFromPower(best);
        ++localDecodes;
      }
    }
    decodes.fetch_add(localDecodes, std::memory_order_relaxed);
  };

  if (pool_) {
    pool_->parallelFor(listeners_.size(), processRange);
  } else {
    processRange(0, listeners_.size());
  }
  stats_.decodes += decodes.load(std::memory_order_relaxed);
}

}  // namespace mcs
