#include "sinr/medium.h"

#include <cassert>
#include <cmath>

namespace mcs {

Medium::Medium(SinrParams params, int numChannels)
    : params_(params), numChannels_(numChannels) {
  assert(params_.valid());
  assert(numChannels_ >= 1);
  txByChannelStart_.assign(static_cast<std::size_t>(numChannels_) + 1, 0);
}

void Medium::resolveSlot(std::span<const Vec2> positions, std::span<const Intent> intents,
                         std::vector<Reception>& out) {
  const std::size_t n = positions.size();
  assert(intents.size() == n);
  out.assign(n, Reception{});
  ++stats_.slots;

  // Bucket transmitters by channel (counting sort) and collect listeners.
  txByChannelStart_.assign(static_cast<std::size_t>(numChannels_) + 1, 0);
  listeners_.clear();
  std::size_t txTotal = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const Intent& it = intents[v];
    if (it.action == Action::Idle) continue;
    assert(it.channel >= 0 && it.channel < numChannels_);
    if (it.action == Action::Transmit) {
      ++txByChannelStart_[static_cast<std::size_t>(it.channel) + 1];
      ++txTotal;
    } else {
      listeners_.push_back(static_cast<NodeId>(v));
    }
  }
  stats_.transmissions += txTotal;
  stats_.listens += listeners_.size();
  if (listeners_.empty()) return;

  for (int c = 0; c < numChannels_; ++c) {
    txByChannelStart_[static_cast<std::size_t>(c) + 1] +=
        txByChannelStart_[static_cast<std::size_t>(c)];
  }
  txByChannel_.resize(txTotal);
  {
    std::vector<std::int32_t> cursor(txByChannelStart_.begin(), txByChannelStart_.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      const Intent& it = intents[v];
      if (it.action != Action::Transmit) continue;
      txByChannel_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(it.channel)]++)] =
          static_cast<NodeId>(v);
    }
  }

  const double alpha = params_.alpha;
  const double beta = params_.beta;
  const double noise = params_.noise;
  const double power = params_.power;

  for (const NodeId v : listeners_) {
    const ChannelId c = intents[static_cast<std::size_t>(v)].channel;
    const std::int32_t lo = txByChannelStart_[static_cast<std::size_t>(c)];
    const std::int32_t hi = txByChannelStart_[static_cast<std::size_t>(c) + 1];
    if (lo == hi) continue;  // silent channel

    double total = 0.0;
    double best = -1.0;
    NodeId bestTx = kNoNode;
    const Vec2 pv = positions[static_cast<std::size_t>(v)];
    for (std::int32_t i = lo; i < hi; ++i) {
      const NodeId w = txByChannel_[static_cast<std::size_t>(i)];
      const double d2 = dist2(positions[static_cast<std::size_t>(w)], pv);
      // Distinct positions are a model requirement; guard nonetheless.
      const double rx = d2 > 0.0 ? power / std::pow(d2, alpha / 2.0) : 1e300;
      total += rx;
      if (rx > best) {
        best = rx;
        bestTx = w;
      }
    }

    Reception& r = out[static_cast<std::size_t>(v)];
    r.totalPower = total;
    // SINR condition (1) for the strongest transmitter.  With beta >= 1 no
    // weaker transmitter can satisfy it, so checking the strongest suffices.
    if (bestTx != kNoNode && best >= beta * (noise + (total - best))) {
      r.received = true;
      r.msg = intents[static_cast<std::size_t>(bestTx)].msg;
      r.sinr = best / (noise + (total - best));
      r.signalPower = best;
      r.senderDistance = params_.distanceFromPower(best);
      ++stats_.decodes;
    }
  }
}

}  // namespace mcs
