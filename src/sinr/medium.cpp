#include "sinr/medium.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cmath>
#include <mutex>
#include <string>
#include <type_traits>

#include "telemetry/probes.h"
#include "telemetry/telemetry.h"
#include "util/log.h"

namespace mcs {

namespace {

/// Registered once; the ids are stable for the process.  Counter totals
/// are deterministic per seed and thread-count invariant (the engine's
/// reproducibility contracts make the underlying work deterministic);
/// timers measure wall time and are not.
struct MediumTelemetry {
  telemetry::TimerId resolve = telemetry::timerId("medium.resolve_slot");
  telemetry::TimerId populate = telemetry::timerId("medium.populate");
  telemetry::TimerId buildFields = telemetry::timerId("medium.build_fields");
  telemetry::TimerId sweep = telemetry::timerId("medium.sweep");
  telemetry::TimerId hierTraverse = telemetry::timerId("geom.hier_traverse");
  telemetry::CounterId slots = telemetry::counterId("medium.slots");
  telemetry::CounterId txIntents = telemetry::counterId("medium.tx_intents");
  telemetry::CounterId listenIntents = telemetry::counterId("medium.listen_intents");
  telemetry::CounterId decodes = telemetry::counterId("medium.decodes");
  telemetry::CounterId candidates = telemetry::counterId("medium.decode_candidates");
  telemetry::CounterId exactPairs = telemetry::counterId("medium.exact_pairs");
  telemetry::CounterId nearPairs = telemetry::counterId("medium.near_pairs_exact");
  telemetry::CounterId farCells = telemetry::counterId("medium.far_cells_batched");
  // Decode-attribution causes (probes-armed runs only).  Exclusive per
  // failed listen, so their sum equals listen_intents - decodes exactly —
  // the partition invariant CI checks on every smoke.
  telemetry::CounterId causeNoTransmitter = telemetry::counterId("cause.no_transmitter");
  telemetry::CounterId causeDeadListener = telemetry::counterId("cause.dead_listener");
  telemetry::CounterId causeNoiseLimited = telemetry::counterId("cause.noise_limited");
  telemetry::CounterId causeInterferenceLimited =
      telemetry::counterId("cause.interference_limited");
  telemetry::CounterId causeNearfarTruncated =
      telemetry::counterId("cause.nearfar_truncated");
  telemetry::CounterId causeLostTie = telemetry::counterId("cause.lost_tie");
};

const MediumTelemetry& mediumTm() {
  static const MediumTelemetry ids;
  return ids;
}

/// Hier admissions are reported per pyramid level; ids are registered
/// lazily the first time a level is seen.
telemetry::CounterId hierLevelCounter(int level) {
  return telemetry::counterId("medium.hier_far_cells.L" + std::to_string(level));
}

/// Matches HierGrid's private kMaxLevels bound (64 halvings cover any
/// long-indexable grid); sized for the per-slot admission tally below.
constexpr int kHierLevelSlots = 64;

}  // namespace

Medium::Medium(SinrParams params, int numChannels, int numThreads)
    : params_(params),
      kernel_(params.kernel()),
      fading_(params.fading, FadingField::kDefaultKey),
      numChannels_(numChannels),
      // NearFar decode correctness requires nearRadius_ >= R_T (every
      // decodable transmitter must be summed exactly); clamp rather than
      // trust the assert below, which is compiled out in Release.
      nearRadius_(std::max(params.nearField, 1.0) * params.transmissionRange()) {
  assert(params_.valid());
  assert(numChannels_ >= 1);
  assert(numThreads >= 1);
  if (numThreads > 1) pool_ = std::make_unique<ThreadPool>(numThreads);
}

void Medium::buildFields(bool buildHier) {
  fields_.resize(static_cast<std::size_t>(numChannels_));
  // Half the near radius balances batching (fewer kernel calls per far
  // cell) against centroid accuracy (smaller spread within a cell).
  const double cellSize = nearRadius_ * 0.5;
  for (int c = 0; c < numChannels_; ++c) {
    ChannelField& f = fields_[static_cast<std::size_t>(c)];
    f.lo = ws_.bucketBegin(static_cast<ChannelId>(c));
    const std::int32_t hi = ws_.bucketEnd(static_cast<ChannelId>(c));
    f.cells.clear();
    if (buildHier) f.hier.clear();
    if (f.lo == hi) continue;  // no transmitters: cells stay empty
    fieldPts_.clear();
    for (std::int32_t i = f.lo; i < hi; ++i) {
      fieldPts_.push_back({ws_.txX[static_cast<std::size_t>(i)],
                           ws_.txY[static_cast<std::size_t>(i)]});
    }
    f.grid.rebuild(fieldPts_, cellSize);
    hierBase_.clear();
    f.grid.forEachCell([&](long cx, long cy, std::span<const NodeId> ids) {
      Vec2 sum{};
      for (const NodeId id : ids) sum = sum + f.grid.point(id);
      f.cells.push_back({sum * (1.0 / static_cast<double>(ids.size())), cx, cy, ids});
      if (buildHier) {
        hierBase_.push_back({cx, cy, sum.x, sum.y, static_cast<std::int64_t>(ids.size()),
                             static_cast<std::int32_t>(f.cells.size()) - 1});
      }
    });
    if (buildHier) {
      f.hier.build(f.grid.minX(), f.grid.minY(), cellSize, f.grid.nxCells(), f.grid.nyCells(),
                   hierBase_);
    }
  }
}

void Medium::buildFieldsDynamic(std::span<const Vec2> positions, bool buildHier) {
  // One persistent grid over every node position, advanced incrementally:
  // bounded per-slot displacement moves points between cells inside
  // GridIndex::update; leaving the box falls back to a rebuild there.
  allGrid_.ensure(positions, nearRadius_ * 0.5);

  fields_.resize(static_cast<std::size_t>(numChannels_));
  for (int c = 0; c < numChannels_; ++c) {
    ChannelField& f = fields_[static_cast<std::size_t>(c)];
    f.lo = ws_.bucketBegin(static_cast<ChannelId>(c));
    const std::int32_t hi = ws_.bucketEnd(static_cast<ChannelId>(c));
    f.cells.clear();
    f.sortedLocals.clear();
    if (buildHier) f.hier.clear();
    if (f.lo == hi) continue;

    // Group this channel's transmitters by their shared-grid cell.
    cellLocal_.clear();
    for (std::int32_t i = f.lo; i < hi; ++i) {
      const NodeId w = ws_.txIds[static_cast<std::size_t>(i)];
      cellLocal_.emplace_back(allGrid_.cellOfId(w), static_cast<NodeId>(i - f.lo));
    }
    std::sort(cellLocal_.begin(), cellLocal_.end());
    f.sortedLocals.reserve(cellLocal_.size());
    for (const auto& [cell, local] : cellLocal_) f.sortedLocals.push_back(local);

    hierBase_.clear();
    std::size_t i = 0;
    while (i < cellLocal_.size()) {
      const long cell = cellLocal_[i].first;
      std::size_t j = i;
      Vec2 sum{};
      while (j < cellLocal_.size() && cellLocal_[j].first == cell) {
        const NodeId w = ws_.txIds[static_cast<std::size_t>(f.lo) +
                                   static_cast<std::size_t>(cellLocal_[j].second)];
        sum = sum + positions[static_cast<std::size_t>(w)];
        ++j;
      }
      const auto [cx, cy] = allGrid_.cellCoords(cell);
      f.cells.push_back({sum * (1.0 / static_cast<double>(j - i)), cx, cy,
                         std::span<const NodeId>(f.sortedLocals.data() + i, j - i)});
      if (buildHier) {
        hierBase_.push_back({cx, cy, sum.x, sum.y, static_cast<std::int64_t>(j - i),
                             static_cast<std::int32_t>(f.cells.size()) - 1});
      }
      i = j;
    }
    if (buildHier) {
      f.hier.build(allGrid_.minX(), allGrid_.minY(), allGrid_.cellSize(), allGrid_.nxCells(),
                   allGrid_.nyCells(), hierBase_);
    }
  }
}

void Medium::resolveSlot(std::span<const Vec2> positions, std::span<const Intent> intents,
                         std::vector<Reception>& out) {
  const std::size_t n = positions.size();
  assert(intents.size() == n);
  const telemetry::PhaseTimer resolveTimer(mediumTm().resolve);
  out.assign(n, Reception{});
  ++stats_.slots;

  // Stage the slot in the SoA workspace: channel-bucketed transmitter
  // ids/coordinates (counting sort) plus the listener list.  populate
  // also validates every intent's channel with a Release-armed check.
  std::size_t txTotal;
  {
    const telemetry::PhaseTimer t(mediumTm().populate);
    txTotal = ws_.populate(positions, intents, numChannels_);
  }
  stats_.transmissions += txTotal;
  stats_.listens += ws_.listeners.size();
  if (telemetry::enabled()) {
    telemetry::counterAdd(mediumTm().slots);
    telemetry::counterAdd(mediumTm().txIntents, txTotal);
    telemetry::counterAdd(mediumTm().listenIntents, ws_.listeners.size());
  }
  if (ws_.listeners.empty()) {
    if (telemetry::probesEnabled()) {
      // Listener-free slots still tick the series so the active-transmitter
      // trace covers every resolved slot, not just contended ones.
      telemetry::SlotProbeSample sample;
      sample.txIntents = txTotal;
      telemetry::probeSlot(stats_.slots - 1, sample);
    }
    return;
  }

  const MediumMode mode = params_.mediumMode;
  if (mode == MediumMode::Hierarchical && n < kHierSmallNCrossover) {
    logWarnOnce("medium.hier_small_n",
                "medium_mode=hier with n=" + std::to_string(n) + " (< " +
                    std::to_string(kHierSmallNCrossover) +
                    "): the per-slot pyramid build usually outweighs its savings at this "
                    "scale (BENCH_medium.json: 0.96x the exact kernel at n=500/8ch); "
                    "prefer medium_mode=nearfar below the crossover");
  }
  const bool gridded = mode != MediumMode::Exact;
  if (gridded && txTotal > 0) {
    const telemetry::PhaseTimer t(mediumTm().buildFields);
    const bool buildHier = mode == MediumMode::Hierarchical;
    if (dynamicPositions_) {
      buildFieldsDynamic(positions, buildHier);
    } else {
      buildFields(buildHier);
    }
  }

  const PowerKernel kern = kernel_;
  const double beta = params_.beta;
  const double noise = params_.noise;
  const double nearR = nearRadius_;
  const double nearR2 = nearR * nearR;
  const double theta = params_.hierTheta;
  constexpr double kMinD2 = SinrParams::kMinDistance * SinrParams::kMinDistance;
  const FadingField fad = fading_;
  const bool hasFading = fad.enabled();
  // Keyed on the slot ordinal so gains redraw every slot (block fading).
  const std::uint64_t slotIdx = ++fadingSlot_;

  std::atomic<std::uint64_t> decodes{0};
  // Per-slot telemetry tallies: lanes accumulate locally (an add per
  // batched cell or near pair, noise next to the kernel work) and publish
  // once per range; the registry is only touched when telemetry is on.
  std::atomic<std::uint64_t> tmCandidates{0};
  std::atomic<std::uint64_t> tmExactPairs{0};
  std::atomic<std::uint64_t> tmNearPairs{0};
  std::atomic<std::uint64_t> tmFarCells{0};
  std::array<std::atomic<std::uint64_t>, kHierLevelSlots> tmHierLevels{};

  // Decode attribution (telemetry/probes.h): armed runs classify every
  // failed listen into exactly one cause and sketch SINR margins, through
  // a separate compile-time instantiation of the sweep below — the
  // disarmed hot path keeps its exact instruction stream.  Cause tallies
  // ride the same lane-local/publish-once pattern as the counters above;
  // lane margin sketches fold into one slot-level sample under a slot-
  // local mutex (sketch merges commute, so lane arrival order — and hence
  // thread count — cannot change the result).
  const bool probesArmed = telemetry::probesEnabled();
  const std::uint8_t* aliveMask = aliveMask_.empty() ? nullptr : aliveMask_.data();
  const std::size_t aliveMaskSize = aliveMask_.size();
  std::atomic<std::uint64_t> causeNoTx{0};
  std::atomic<std::uint64_t> causeDead{0};
  std::atomic<std::uint64_t> causeNoise{0};
  std::atomic<std::uint64_t> causeInterf{0};
  std::atomic<std::uint64_t> causeTrunc{0};
  std::atomic<std::uint64_t> causeTie{0};
  telemetry::SlotProbeSample slotSample;
  std::mutex slotSampleMu;

  // Exact per-pair re-check of the far field for one failed listener:
  // the strongest far transmitter's *exact* faded power.  Only reachable
  // with fading in a gridded mode — without fading, far implies
  // d > nearR >= R_T, hence rx < beta*noise, so no far transmitter could
  // have decoded under Exact semantics and the scan is skipped entirely.
  const auto farBestExact = [&](ChannelId c, Vec2 pv, NodeId v) {
    const ChannelField& f = fields_[static_cast<std::size_t>(c)];
    const GridIndex& geom = dynamicPositions_ ? allGrid_ : f.grid;
    double farBest = -1.0;
    for (const FarCell& cell : f.cells) {
      if (geom.cellDist2(cell.cx, cell.cy, pv) <= nearR2) continue;
      for (const NodeId local : cell.ids) {
        const NodeId w =
            ws_.txIds[static_cast<std::size_t>(f.lo) + static_cast<std::size_t>(local)];
        const Vec2 pw = dynamicPositions_ ? positions[static_cast<std::size_t>(w)]
                                          : f.grid.point(local);
        const double d2raw = dist2(pw, pv);
        double rx = kern(d2raw > 0.0 ? d2raw : kMinD2);
        rx *= fad.gain(slotIdx, static_cast<std::uint64_t>(w), static_cast<std::uint64_t>(v));
        if (rx > farBest) farBest = rx;
      }
    }
    return farBest;
  };

  const auto processRangeImpl = [&](auto probesTag, std::size_t rangeBegin,
                                    std::size_t rangeEnd) {
    constexpr bool kProbes = decltype(probesTag)::value;
    // Exact-mode sweep tile: distances and kernel values for up to kTile
    // transmitters are staged in flat buffers so the distance and
    // PowerKernel::batch phases auto-vectorize, while the reduction that
    // follows stays scalar and in bucket order — bit-identical totals.
    constexpr std::size_t kTile = 2048;
    double d2Tile[kTile];
    double rxTile[kTile];
    const double* xs = ws_.txX.data();
    const double* ys = ws_.txY.data();
    const NodeId* ids = ws_.txIds.data();

    std::uint64_t localDecodes = 0;
    std::uint64_t localCandidates = 0;
    std::uint64_t localExactPairs = 0;
    std::uint64_t localNearPairs = 0;
    std::uint64_t localFarCells = 0;
    std::array<std::uint64_t, kHierLevelSlots> localHierLevels{};
    // Attribution lane-locals (dead in the disarmed instantiation).
    [[maybe_unused]] std::uint64_t localCauseNoTx = 0, localCauseDead = 0,
                                   localCauseNoise = 0, localCauseInterf = 0,
                                   localCauseTrunc = 0, localCauseTie = 0;
    QuantileSketch localMargin, localNear, localFar;
    // Hier traversal is timed per worker range, not per listener: a clock
    // read per listener costs more than the traversal it would measure
    // (the per-level admission counters carry the fine-grained breakdown).
    const bool timeHier = mode == MediumMode::Hierarchical && telemetry::enabled();
    const std::uint64_t hierT0 = timeHier ? nowNanos() : 0;
    for (std::size_t li = rangeBegin; li < rangeEnd; ++li) {
      const NodeId v = ws_.listeners[li];
      const ChannelId c = intents[static_cast<std::size_t>(v)].channel;
      const std::int32_t lo = ws_.bucketBegin(c);
      const std::int32_t hi = ws_.bucketEnd(c);
      // Liveness is an attribution concern only (see setAliveMask); a dead
      // listener's Reception is computed exactly like everyone else's.
      [[maybe_unused]] bool deadListener = false;
      if constexpr (kProbes) {
        deadListener = aliveMask != nullptr && static_cast<std::size_t>(v) < aliveMaskSize &&
                       aliveMask[static_cast<std::size_t>(v)] == 0;
      }
      if (lo == hi) {  // silent channel
        if constexpr (kProbes) {
          if (deadListener) {
            ++localCauseDead;
          } else {
            ++localCauseNoTx;
          }
        }
        continue;
      }
      ++localCandidates;

      double total = 0.0;
      double best = -1.0;
      NodeId bestTx = kNoNode;
      // Tie tracking (armed only): how many transmitters share the final
      // bit-equal `best` — equality compares never perturb best/bestTx, so
      // receptions stay identical to the disarmed sweep.
      [[maybe_unused]] std::uint64_t tieCount = 0;
      [[maybe_unused]] double farTotal = 0.0;
      const Vec2 pv = positions[static_cast<std::size_t>(v)];

      // Exact accumulation of one transmitter; shared by the NearFar and
      // Hierarchical near paths.  Distinct positions are a model
      // requirement; exactly co-located pairs are clamped to kMinDistance
      // so power and ranging stay finite (any positive distance passes
      // through untouched).
      const auto accumulatePair = [&](NodeId w, Vec2 pw) {
        ++localNearPairs;
        const double d2raw = dist2(pw, pv);
        double rx = kern(d2raw > 0.0 ? d2raw : kMinD2);
        if (hasFading) {
          rx *= fad.gain(slotIdx, static_cast<std::uint64_t>(w), static_cast<std::uint64_t>(v));
        }
        total += rx;
        if constexpr (kProbes) {
          if (rx > best) {
            best = rx;
            bestTx = w;
            tieCount = 1;
          } else if (rx == best && bestTx != kNoNode) {
            ++tieCount;
          }
        } else {
          if (rx > best) {
            best = rx;
            bestTx = w;
          }
        }
      };

      if (mode == MediumMode::Exact) {
        for (std::int32_t i0 = lo; i0 < hi; i0 += static_cast<std::int32_t>(kTile)) {
          const std::size_t base = static_cast<std::size_t>(i0);
          const std::size_t m = std::min(kTile, static_cast<std::size_t>(hi) - base);
          localExactPairs += m;
          for (std::size_t j = 0; j < m; ++j) {
            // Same operand order as dist2(pw, pv) in the scalar path.
            const double dx = xs[base + j] - pv.x;
            const double dy = ys[base + j] - pv.y;
            const double d2raw = dx * dx + dy * dy;
            d2Tile[j] = d2raw > 0.0 ? d2raw : kMinD2;
          }
          kern.batch(d2Tile, rxTile, m);
          if (hasFading) {
            for (std::size_t j = 0; j < m; ++j) {
              rxTile[j] *= fad.gain(slotIdx, static_cast<std::uint64_t>(ids[base + j]),
                                    static_cast<std::uint64_t>(v));
            }
          }
          for (std::size_t j = 0; j < m; ++j) {
            const double rx = rxTile[j];
            total += rx;
            if constexpr (kProbes) {
              if (rx > best) {
                best = rx;
                bestTx = ids[base + j];
                tieCount = 1;
              } else if (rx == best && bestTx != kNoNode) {
                ++tieCount;
              }
            } else {
              if (rx > best) {
                best = rx;
                bestTx = ids[base + j];
              }
            }
          }
        }
      } else if (mode == MediumMode::NearFar) {
        const ChannelField& f = fields_[static_cast<std::size_t>(c)];
        // Static path: the per-channel grid built this slot.  Dynamic
        // path: cells/coords come from the shared incremental allGrid_,
        // member positions from the caller's drifting span.
        const GridIndex& geom = dynamicPositions_ ? allGrid_ : f.grid;
        // Single pass over non-empty cells: cells entirely beyond the near
        // radius contribute count * P/d(centroid)^alpha in one kernel call;
        // cells touching the near ball have every member summed exactly.
        // Any transmitter that could decode is within R_T <= nearR, hence
        // inside a touching cell, hence an exact `best` candidate.
        for (const FarCell& cell : f.cells) {
          if (geom.cellDist2(cell.cx, cell.cy, pv) > nearR2) {
            ++localFarCells;
            const double d2c = dist2(cell.centroid, pv);
            double cellRx = static_cast<double>(cell.ids.size()) * kern(d2c > 0.0 ? d2c : kMinD2);
            if (hasFading) {
              // One shared draw per (slot, cell, listener): far cells are
              // already a batched approximation, and a shared gain keeps
              // the per-slot cost O(cells), not O(transmitters).
              const std::uint64_t cellId =
                  mix64((static_cast<std::uint64_t>(c) << 48) ^
                        (static_cast<std::uint64_t>(static_cast<std::int64_t>(cell.cx)) << 24) ^
                        static_cast<std::uint64_t>(static_cast<std::int64_t>(cell.cy)));
              cellRx *= fad.gain(slotIdx, cellId, static_cast<std::uint64_t>(v));
            }
            total += cellRx;
            if constexpr (kProbes) farTotal += cellRx;
            continue;
          }
          for (const NodeId local : cell.ids) {
            const NodeId w =
                ws_.txIds[static_cast<std::size_t>(f.lo) + static_cast<std::size_t>(local)];
            const Vec2 pw = dynamicPositions_ ? positions[static_cast<std::size_t>(w)]
                                              : f.grid.point(local);
            accumulatePair(w, pw);
          }
        }
      } else {
        const ChannelField& f = fields_[static_cast<std::size_t>(c)];
        // Coarse-to-fine pyramid walk: admissible regions contribute one
        // centroid kernel call at the coarsest level; base cells near the
        // listener resolve through the same exact member summation as
        // NearFar (so every decodable transmitter is a `best` candidate).
        f.hier.forEachField(
            pv, nearR, theta,
            [&](std::int64_t count, Vec2 centroid, int level, long cx, long cy) {
              ++localFarCells;
              ++localHierLevels[static_cast<std::size_t>(level)];
              const double d2c = dist2(centroid, pv);
              double cellRx = static_cast<double>(count) * kern(d2c > 0.0 ? d2c : kMinD2);
              if (hasFading) {
                // Shared draw per (slot, level, cell, listener); the
                // level tag keeps draws distinct across pyramid levels.
                const std::uint64_t cellId = mix64(
                    (static_cast<std::uint64_t>(c) << 52) ^
                    (static_cast<std::uint64_t>(static_cast<unsigned>(level + 1)) << 46) ^
                    (static_cast<std::uint64_t>(static_cast<std::int64_t>(cx)) << 23) ^
                    static_cast<std::uint64_t>(static_cast<std::int64_t>(cy)));
                cellRx *= fad.gain(slotIdx, cellId, static_cast<std::uint64_t>(v));
              }
              total += cellRx;
              if constexpr (kProbes) farTotal += cellRx;
            },
            [&](std::int32_t ref) {
              const FarCell& cell = f.cells[static_cast<std::size_t>(ref)];
              for (const NodeId local : cell.ids) {
                const NodeId w =
                    ws_.txIds[static_cast<std::size_t>(f.lo) + static_cast<std::size_t>(local)];
                const Vec2 pw = dynamicPositions_ ? positions[static_cast<std::size_t>(w)]
                                                  : f.grid.point(local);
                accumulatePair(w, pw);
              }
            });
      }

      Reception& r = out[static_cast<std::size_t>(v)];
      r.totalPower = total;
      // SINR condition (1) for the strongest transmitter.  With beta >= 1 no
      // weaker transmitter can satisfy it, so checking the strongest suffices.
      const bool decoded = bestTx != kNoNode && best >= beta * (noise + (total - best));
      if (decoded) {
        r.received = true;
        r.msg = intents[static_cast<std::size_t>(bestTx)].msg;
        r.sinr = best / (noise + (total - best));
        r.signalPower = best;
        r.senderDistance = params_.distanceFromPower(best);
        ++localDecodes;
      }

      if constexpr (kProbes) {
        // SINR margin in dB for every decode candidate (positive decoded,
        // negative failed), plus the near/far split of this listener's
        // interference power.
        if (bestTx != kNoNode) {
          const double denom = beta * (noise + (total - best));
          if (best > 0.0 && denom > 0.0) {
            localMargin.add(10.0 * std::log10(best / denom));
          }
          const double nearInterf = total - farTotal - best;
          if (nearInterf > 0.0) localNear.add(10.0 * std::log10(nearInterf));
        }
        if (farTotal > 0.0) localFar.add(10.0 * std::log10(farTotal));

        if (!decoded) {
          // Exclusive causes, checked in precedence order so every failed
          // listen lands in exactly one bucket (the partition invariant:
          // sum(cause.*) == listen_intents - decodes).
          if (deadListener) {
            ++localCauseDead;
          } else {
            // Would the strongest *far* transmitter have decoded under
            // Exact per-pair semantics?  Only possible with fading in a
            // gridded mode (see farBestExact above).
            const double farBest =
                (gridded && hasFading) ? farBestExact(c, pv, v) : -1.0;
            const double eff = best > farBest ? best : farBest;
            if (eff < beta * noise) {
              // Even with zero interference the strongest signal is
              // under beta: the link itself is too weak.
              ++localCauseNoise;
            } else if (best < beta * noise) {
              // A far transmitter cleared beta*noise but the near-field
              // best did not: the grid approximation truncated a decode
              // that Exact semantics would have allowed.
              ++localCauseTrunc;
            } else if (tieCount >= 2) {
              ++localCauseTie;
            } else {
              ++localCauseInterf;
            }
          }
        }
      }
    }
    decodes.fetch_add(localDecodes, std::memory_order_relaxed);
    if (timeHier) telemetry::timerRecordSlow(mediumTm().hierTraverse, nowNanos() - hierT0);
    if (telemetry::enabled()) {
      tmCandidates.fetch_add(localCandidates, std::memory_order_relaxed);
      tmExactPairs.fetch_add(localExactPairs, std::memory_order_relaxed);
      tmNearPairs.fetch_add(localNearPairs, std::memory_order_relaxed);
      tmFarCells.fetch_add(localFarCells, std::memory_order_relaxed);
      for (int k = 0; k < kHierLevelSlots; ++k) {
        if (localHierLevels[static_cast<std::size_t>(k)] > 0) {
          tmHierLevels[static_cast<std::size_t>(k)].fetch_add(
              localHierLevels[static_cast<std::size_t>(k)], std::memory_order_relaxed);
        }
      }
    }
    if constexpr (kProbes) {
      causeNoTx.fetch_add(localCauseNoTx, std::memory_order_relaxed);
      causeDead.fetch_add(localCauseDead, std::memory_order_relaxed);
      causeNoise.fetch_add(localCauseNoise, std::memory_order_relaxed);
      causeInterf.fetch_add(localCauseInterf, std::memory_order_relaxed);
      causeTrunc.fetch_add(localCauseTrunc, std::memory_order_relaxed);
      causeTie.fetch_add(localCauseTie, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(slotSampleMu);
        slotSample.marginDb.merge(localMargin);
        slotSample.nearDb.merge(localNear);
        slotSample.farDb.merge(localFar);
      }
    }
  };
  // One compile-time instantiation per arming state: the disarmed sweep
  // keeps its exact instruction stream, the armed one adds only reads and
  // compares — receptions are bit-identical either way.
  const auto processRange = [&](std::size_t rangeBegin, std::size_t rangeEnd) {
    if (probesArmed) {
      processRangeImpl(std::true_type{}, rangeBegin, rangeEnd);
    } else {
      processRangeImpl(std::false_type{}, rangeBegin, rangeEnd);
    }
  };

  {
    const telemetry::PhaseTimer t(mediumTm().sweep);
    if (pool_) {
      pool_->parallelFor(ws_.listeners.size(), processRange);
    } else {
      processRange(0, ws_.listeners.size());
    }
  }
  stats_.decodes += decodes.load(std::memory_order_relaxed);

  if (probesArmed) {
    telemetry::counterAdd(mediumTm().causeNoTransmitter,
                          causeNoTx.load(std::memory_order_relaxed));
    telemetry::counterAdd(mediumTm().causeDeadListener,
                          causeDead.load(std::memory_order_relaxed));
    telemetry::counterAdd(mediumTm().causeNoiseLimited,
                          causeNoise.load(std::memory_order_relaxed));
    telemetry::counterAdd(mediumTm().causeInterferenceLimited,
                          causeInterf.load(std::memory_order_relaxed));
    telemetry::counterAdd(mediumTm().causeNearfarTruncated,
                          causeTrunc.load(std::memory_order_relaxed));
    telemetry::counterAdd(mediumTm().causeLostTie,
                          causeTie.load(std::memory_order_relaxed));
    slotSample.listens = ws_.listeners.size();
    slotSample.decodes = decodes.load(std::memory_order_relaxed);
    slotSample.txIntents = txTotal;
    telemetry::probeSlot(stats_.slots - 1, slotSample);
  }

  if (telemetry::enabled()) {
    telemetry::counterAdd(mediumTm().decodes, decodes.load(std::memory_order_relaxed));
    telemetry::counterAdd(mediumTm().candidates, tmCandidates.load(std::memory_order_relaxed));
    telemetry::counterAdd(mediumTm().exactPairs, tmExactPairs.load(std::memory_order_relaxed));
    telemetry::counterAdd(mediumTm().nearPairs, tmNearPairs.load(std::memory_order_relaxed));
    telemetry::counterAdd(mediumTm().farCells, tmFarCells.load(std::memory_order_relaxed));
    for (int k = 0; k < kHierLevelSlots; ++k) {
      const std::uint64_t adm = tmHierLevels[static_cast<std::size_t>(k)].load(
          std::memory_order_relaxed);
      if (adm > 0) telemetry::counterAdd(hierLevelCounter(k), adm);
    }
  }
}

}  // namespace mcs
