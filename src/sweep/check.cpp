#include "sweep/check.h"

#include <cmath>
#include <cstdio>

namespace mcs {

namespace {

const Json* findCell(const Json& campaign, const std::string& label) {
  const Json* cells = campaign.find("cells");
  if (cells == nullptr || !cells->isArray()) return nullptr;
  for (const Json& cell : cells->items()) {
    if (cell.isObject() && cell.stringAt("label") == label) return &cell;
  }
  return nullptr;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void compareCell(const Json& base, const Json& cand, const SweepCheckOptions& opts,
                 SweepCheckResult& out) {
  const std::string label = base.stringAt("label");

  // Reliability counters must not get worse.
  const double baseFailures = base.numberAt("failures");
  const double candFailures = cand.numberAt("failures");
  if (candFailures > baseFailures) {
    out.violations.push_back("cell " + label + ": failures " + fmt(baseFailures) + " -> " +
                             fmt(candFailures));
  }
  const double baseDelivered = base.numberAt("delivered");
  const double candDelivered = cand.numberAt("delivered");
  if (candDelivered < baseDelivered) {
    out.violations.push_back("cell " + label + ": delivered " + fmt(baseDelivered) + " -> " +
                             fmt(candDelivered));
  }
  if (cand.numberAt("invalid") > base.numberAt("invalid")) {
    out.violations.push_back("cell " + label + ": ground-truth invalid count increased");
  }

  const Json* baseSums = base.find("summaries");
  const Json* candSums = cand.find("summaries");
  if (baseSums == nullptr || !baseSums->isObject()) return;
  for (const auto& [metric, baseSum] : baseSums->members()) {
    const Json* candSum =
        candSums != nullptr && candSums->isObject() ? candSums->find(metric) : nullptr;
    if (candSum == nullptr || !candSum->isObject()) {
      out.violations.push_back("cell " + label + ": metric " + metric +
                               " missing from candidate");
      continue;
    }
    const double baseMean = baseSum.numberAt("mean");
    const double candMean = candSum->numberAt("mean");
    ++out.metricsCompared;
    if (metric == "wall_sec") {
      // Perf gate: only a regression (slower) beyond tolerance fails.
      const double denom = std::max(baseMean, opts.absFloor);
      const double regression = (candMean - baseMean) / denom;
      if (regression > opts.wallTol) {
        out.violations.push_back("cell " + label + ": wall_sec regression " +
                                 fmt(regression * 100.0) + "% (" + fmt(baseMean) + "s -> " +
                                 fmt(candMean) + "s, tol " + fmt(opts.wallTol * 100.0) + "%)");
      }
      continue;
    }
    const double denom = std::max(std::abs(baseMean), opts.absFloor);
    const double drift = std::abs(candMean - baseMean) / denom;
    if (drift > opts.metricTol) {
      out.violations.push_back("cell " + label + ": metric " + metric + " drift " +
                               fmt(drift * 100.0) + "% (" + fmt(baseMean) + " -> " +
                               fmt(candMean) + ", tol " + fmt(opts.metricTol * 100.0) + "%)");
    }
  }
}

}  // namespace

SweepCheckResult compareCampaigns(const Json& baseline, const Json& candidate,
                                  const SweepCheckOptions& opts) {
  SweepCheckResult out;
  if (!baseline.isObject() || !candidate.isObject()) {
    out.violations.push_back("baseline or candidate is not a campaign JSON object");
    return out;
  }
  if (baseline.stringAt("name") != candidate.stringAt("name")) {
    out.notes.push_back("campaign names differ: \"" + baseline.stringAt("name") + "\" vs \"" +
                        candidate.stringAt("name") + "\"");
  }

  const Json* baseCells = baseline.find("cells");
  if (baseCells == nullptr || !baseCells->isArray() || baseCells->size() == 0) {
    out.violations.push_back("baseline has no cells");
    return out;
  }
  for (const Json& baseCell : baseCells->items()) {
    const std::string label = baseCell.stringAt("label");
    const Json* candCell = findCell(candidate, label);
    if (candCell == nullptr) {
      if (opts.allowMissing) {
        out.notes.push_back("cell " + label + " not in candidate (allowed)");
      } else {
        out.violations.push_back("cell " + label + " missing from candidate");
      }
      continue;
    }
    ++out.cellsCompared;
    compareCell(baseCell, *candCell, opts, out);
  }

  // Extra candidate cells are informational: a grown campaign should
  // refresh its baseline, but new cells cannot regress old ones.
  const Json* candCells = candidate.find("cells");
  if (candCells != nullptr && candCells->isArray()) {
    for (const Json& candCell : candCells->items()) {
      if (findCell(baseline, candCell.stringAt("label")) == nullptr) {
        out.notes.push_back("cell " + candCell.stringAt("label") +
                            " in candidate but not in baseline");
      }
    }
  }
  if (out.cellsCompared == 0 && out.ok()) {
    out.violations.push_back("no cells compared (shard mismatch?)");
  }
  return out;
}

namespace {

/// Row identity: every string-valued column, in member order.
std::string rowKey(const Json& row) {
  std::string key;
  for (const auto& [name, value] : row.members()) {
    if (!value.isString()) continue;
    if (!key.empty()) key += '/';
    key += value.asString();
  }
  return key;
}

const Json* findRow(const Json& report, const std::string& key) {
  const Json* rows = report.find("rows");
  if (rows == nullptr || !rows->isArray()) return nullptr;
  for (const Json& row : rows->items()) {
    if (row.isObject() && rowKey(row) == key) return &row;
  }
  return nullptr;
}

void compareRow(const Json& base, const Json& cand, const SweepCheckOptions& opts,
                SweepCheckResult& out) {
  const std::string key = rowKey(base);
  for (const auto& [column, baseVal] : base.members()) {
    if (!baseVal.isNumber()) continue;
    const Json* candVal = cand.find(column);
    if (candVal == nullptr || !candVal->isNumber()) {
      out.violations.push_back("row " + key + ": column " + column +
                               " missing from candidate");
      continue;
    }
    const double baseNum = baseVal.asDouble();
    const double candNum = candVal->asDouble();
    ++out.metricsCompared;
    if (column.find("wall") != std::string::npos) {
      const double denom = std::max(baseNum, opts.absFloor);
      const double regression = (candNum - baseNum) / denom;
      if (regression > opts.wallTol) {
        out.violations.push_back("row " + key + ": " + column + " regression " +
                                 fmt(regression * 100.0) + "% (" + fmt(baseNum) + " -> " +
                                 fmt(candNum) + ", tol " + fmt(opts.wallTol * 100.0) + "%)");
      }
      continue;
    }
    if (column.find("speedup") != std::string::npos) {
      const double denom = std::max(baseNum, opts.absFloor);
      const double drop = (baseNum - candNum) / denom;
      if (drop > opts.wallTol) {
        out.violations.push_back("row " + key + ": " + column + " dropped " +
                                 fmt(drop * 100.0) + "% (" + fmt(baseNum) + " -> " +
                                 fmt(candNum) + ", tol " + fmt(opts.wallTol * 100.0) + "%)");
      }
      continue;
    }
    const double denom = std::max(std::abs(baseNum), opts.absFloor);
    const double drift = std::abs(candNum - baseNum) / denom;
    if (drift > opts.metricTol) {
      out.violations.push_back("row " + key + ": " + column + " drift " +
                               fmt(drift * 100.0) + "% (" + fmt(baseNum) + " -> " +
                               fmt(candNum) + ", tol " + fmt(opts.metricTol * 100.0) + "%)");
    }
  }
}

}  // namespace

SweepCheckResult compareBenchRows(const Json& baseline, const Json& candidate,
                                  const SweepCheckOptions& opts) {
  SweepCheckResult out;
  if (!baseline.isObject() || !candidate.isObject()) {
    out.violations.push_back("baseline or candidate is not a bench report JSON object");
    return out;
  }
  if (baseline.stringAt("name") != candidate.stringAt("name")) {
    out.notes.push_back("report names differ: \"" + baseline.stringAt("name") + "\" vs \"" +
                        candidate.stringAt("name") + "\"");
  }
  const Json* baseRows = baseline.find("rows");
  if (baseRows == nullptr || !baseRows->isArray() || baseRows->size() == 0) {
    out.violations.push_back("baseline has no rows");
    return out;
  }
  for (const Json& baseRow : baseRows->items()) {
    const std::string key = rowKey(baseRow);
    const Json* candRow = findRow(candidate, key);
    if (candRow == nullptr) {
      if (opts.allowMissing) {
        out.notes.push_back("row " + key + " not in candidate (allowed)");
      } else {
        out.violations.push_back("row " + key + " missing from candidate");
      }
      continue;
    }
    ++out.cellsCompared;
    compareRow(baseRow, *candRow, opts, out);
  }
  const Json* candRows = candidate.find("rows");
  if (candRows != nullptr && candRows->isArray()) {
    for (const Json& candRow : candRows->items()) {
      if (findRow(baseline, rowKey(candRow)) == nullptr) {
        out.notes.push_back("row " + rowKey(candRow) + " in candidate but not in baseline");
      }
    }
  }
  if (out.cellsCompared == 0 && out.ok()) {
    out.violations.push_back("no rows compared (report mismatch?)");
  }
  return out;
}

}  // namespace mcs
