#include "sweep/check.h"

#include <cmath>
#include <cstdio>

namespace mcs {

namespace {

const Json* findCell(const Json& campaign, const std::string& label) {
  const Json* cells = campaign.find("cells");
  if (cells == nullptr || !cells->isArray()) return nullptr;
  for (const Json& cell : cells->items()) {
    if (cell.isObject() && cell.stringAt("label") == label) return &cell;
  }
  return nullptr;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void compareCell(const Json& base, const Json& cand, const SweepCheckOptions& opts,
                 SweepCheckResult& out) {
  const std::string label = base.stringAt("label");

  // Reliability counters must not get worse.
  const double baseFailures = base.numberAt("failures");
  const double candFailures = cand.numberAt("failures");
  if (candFailures > baseFailures) {
    out.violations.push_back("cell " + label + ": failures " + fmt(baseFailures) + " -> " +
                             fmt(candFailures));
  }
  const double baseDelivered = base.numberAt("delivered");
  const double candDelivered = cand.numberAt("delivered");
  if (candDelivered < baseDelivered) {
    out.violations.push_back("cell " + label + ": delivered " + fmt(baseDelivered) + " -> " +
                             fmt(candDelivered));
  }
  if (cand.numberAt("invalid") > base.numberAt("invalid")) {
    out.violations.push_back("cell " + label + ": ground-truth invalid count increased");
  }

  const Json* baseSums = base.find("summaries");
  const Json* candSums = cand.find("summaries");
  if (baseSums == nullptr || !baseSums->isObject()) return;
  for (const auto& [metric, baseSum] : baseSums->members()) {
    const Json* candSum =
        candSums != nullptr && candSums->isObject() ? candSums->find(metric) : nullptr;
    if (candSum == nullptr || !candSum->isObject()) {
      out.violations.push_back("cell " + label + ": metric " + metric +
                               " missing from candidate");
      continue;
    }
    const double baseMean = baseSum.numberAt("mean");
    const double candMean = candSum->numberAt("mean");
    ++out.metricsCompared;
    if (metric == "wall_sec") {
      // Perf gate: only a regression (slower) beyond tolerance fails.
      const double denom = std::max(baseMean, opts.absFloor);
      const double regression = (candMean - baseMean) / denom;
      if (regression > opts.wallTol) {
        out.violations.push_back("cell " + label + ": wall_sec regression " +
                                 fmt(regression * 100.0) + "% (" + fmt(baseMean) + "s -> " +
                                 fmt(candMean) + "s, tol " + fmt(opts.wallTol * 100.0) + "%)");
      }
      continue;
    }
    const double denom = std::max(std::abs(baseMean), opts.absFloor);
    const double drift = std::abs(candMean - baseMean) / denom;
    if (drift > opts.metricTol) {
      out.violations.push_back("cell " + label + ": metric " + metric + " drift " +
                               fmt(drift * 100.0) + "% (" + fmt(baseMean) + " -> " +
                               fmt(candMean) + ", tol " + fmt(opts.metricTol * 100.0) + "%)");
    }
  }
}

}  // namespace

SweepCheckResult compareCampaigns(const Json& baseline, const Json& candidate,
                                  const SweepCheckOptions& opts) {
  SweepCheckResult out;
  if (!baseline.isObject() || !candidate.isObject()) {
    out.violations.push_back("baseline or candidate is not a campaign JSON object");
    return out;
  }
  if (baseline.stringAt("name") != candidate.stringAt("name")) {
    out.notes.push_back("campaign names differ: \"" + baseline.stringAt("name") + "\" vs \"" +
                        candidate.stringAt("name") + "\"");
  }

  const Json* baseCells = baseline.find("cells");
  if (baseCells == nullptr || !baseCells->isArray() || baseCells->size() == 0) {
    out.violations.push_back("baseline has no cells");
    return out;
  }
  for (const Json& baseCell : baseCells->items()) {
    const std::string label = baseCell.stringAt("label");
    const Json* candCell = findCell(candidate, label);
    if (candCell == nullptr) {
      if (opts.allowMissing) {
        out.notes.push_back("cell " + label + " not in candidate (allowed)");
      } else {
        out.violations.push_back("cell " + label + " missing from candidate");
      }
      continue;
    }
    ++out.cellsCompared;
    compareCell(baseCell, *candCell, opts, out);
  }

  // Extra candidate cells are informational: a grown campaign should
  // refresh its baseline, but new cells cannot regress old ones.
  const Json* candCells = candidate.find("cells");
  if (candCells != nullptr && candCells->isArray()) {
    for (const Json& candCell : candCells->items()) {
      if (findCell(baseline, candCell.stringAt("label")) == nullptr) {
        out.notes.push_back("cell " + candCell.stringAt("label") +
                            " in candidate but not in baseline");
      }
    }
  }
  if (out.cellsCompared == 0 && out.ok()) {
    out.violations.push_back("no cells compared (shard mismatch?)");
  }
  return out;
}

}  // namespace mcs
