#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sweep/runner.h"
#include "util/json.h"

/// Campaign serialization: per-cell JSONs (the resume substrate), the
/// campaign-level BENCH_sweep_<name>.json artifact, and the long-form
/// CSV.  The JSON layout is locked by a golden-file test; sweep_check
/// consumes the campaign JSON, so layout changes need a baseline refresh.
namespace mcs {

/// One cell as JSON: identity (index/label/assignments/scenario), batch
/// counters, the per-metric summary table, and the per-seed rows.
[[nodiscard]] Json cellToJson(const CellResult& cell);

/// A Summary as the JSON object the cell "summaries" block uses
/// (count/mean/stddev/ci95/min/p50/p95/max), and its inverse.  Shared
/// with the campaign worker protocol, which streams per-cell summary
/// tables over the wire in exactly this layout.
[[nodiscard]] Json summaryToJson(const Summary& s);
[[nodiscard]] Summary summaryFromJson(const Json& j);

/// Zeroes every wall-clock field of a cell or campaign JSON tree in
/// place (per-seed "wall_sec" values, the "wall_sec" summary block, and
/// campaign meta wall time).  Wall time is the single nondeterministic
/// field in an otherwise bit-reproducible report, so the byte-identity
/// tests and tooling compare dumps after this canonicalization.
void stripWallTimes(Json& j);

/// The whole campaign: name, sweep metadata (base, shard, cell counts),
/// and every cell of this shard in expansion order.
[[nodiscard]] Json campaignToJson(const CampaignResult& campaign);

/// Writes one per-cell JSON (parent directory must exist).  The write is
/// atomic — bytes land in `<path>.tmp` and rename() into place — so a
/// killed worker can leave a stale temp file but never a truncated
/// `cell_<i>.json` for --resume to misread.
bool writeCellFile(const CellResult& cell, const std::string& path, std::string& err);

/// Parses a per-cell JSON back into a CellResult (batch fully populated,
/// summaries recomputable).  The inverse of writeCellFile.
bool loadCellResult(const std::string& path, CellResult& out, std::string& err);

/// Writes `BENCH_sweep_<name>.json` into `dir`; reports the path in
/// `pathOut`.
bool writeCampaignReport(const CampaignResult& campaign, const std::string& dir,
                         std::string& pathOut, std::string& err);

/// Long-form CSV: one row per (cell, seed, metric) with the campaign's
/// axis keys as leading columns — `cell,label,<axis...>,seed,metric,value`.
/// Metric names and labels pass through csvEscape.
bool writeCampaignCsv(const CampaignResult& campaign, const std::string& path,
                      std::string& err);

/// The axis-key union over `assignments` lists in first-appearance order
/// (the CSV's leading columns).  Factored out so the streaming CSV
/// writer in campaign/report.cpp derives the identical header from cell
/// summary records without materializing CellResults.
[[nodiscard]] std::vector<std::string> campaignAxisKeys(
    const std::vector<std::vector<std::pair<std::string, std::string>>>& assignments);

/// Appends one cell's CSV rows (per-seed, summary, telemetry) to an open
/// stream under the given axis-key header.  writeCampaignCsv and the
/// work-queue streaming writer share this, so both modes emit
/// byte-identical rows for the same cell.
void appendCellCsvRows(std::ostream& f, const CellResult& cell,
                       const std::vector<std::string>& axisKeys);

}  // namespace mcs
