#pragma once

#include <string>

#include "sweep/runner.h"
#include "util/json.h"

/// Campaign serialization: per-cell JSONs (the resume substrate), the
/// campaign-level BENCH_sweep_<name>.json artifact, and the long-form
/// CSV.  The JSON layout is locked by a golden-file test; sweep_check
/// consumes the campaign JSON, so layout changes need a baseline refresh.
namespace mcs {

/// One cell as JSON: identity (index/label/assignments/scenario), batch
/// counters, the per-metric summary table, and the per-seed rows.
[[nodiscard]] Json cellToJson(const CellResult& cell);

/// The whole campaign: name, sweep metadata (base, shard, cell counts),
/// and every cell of this shard in expansion order.
[[nodiscard]] Json campaignToJson(const CampaignResult& campaign);

/// Writes one per-cell JSON (parent directory must exist).
bool writeCellFile(const CellResult& cell, const std::string& path, std::string& err);

/// Parses a per-cell JSON back into a CellResult (batch fully populated,
/// summaries recomputable).  The inverse of writeCellFile.
bool loadCellResult(const std::string& path, CellResult& out, std::string& err);

/// Writes `BENCH_sweep_<name>.json` into `dir`; reports the path in
/// `pathOut`.
bool writeCampaignReport(const CampaignResult& campaign, const std::string& dir,
                         std::string& pathOut, std::string& err);

/// Long-form CSV: one row per (cell, seed, metric) with the campaign's
/// axis keys as leading columns — `cell,label,<axis...>,seed,metric,value`.
/// Metric names and labels pass through csvEscape.
bool writeCampaignCsv(const CampaignResult& campaign, const std::string& path,
                      std::string& err);

}  // namespace mcs
