#pragma once

#include <string>
#include <vector>

#include "sweep/spec.h"

/// Named sweep presets: the E1-E9 experiment grids from bench/exp_*,
/// expressed as embedded sweep-file text and parsed by the same parser as
/// on-disk sweep files — so `sweep_runner --preset=e4_coloring` and a
/// committed `sweeps/*.sweep` file are the same code path, and the whole
/// experiment suite is reachable declaratively.
namespace mcs {

struct SweepPresetInfo {
  std::string name;
  std::string description;
};

class SweepRegistry {
 public:
  /// All presets with one-line descriptions, in registration order.
  [[nodiscard]] static std::vector<SweepPresetInfo> list();

  /// The preset's raw sweep-file text ("" when unknown) — what you would
  /// commit under sweeps/ to pin the campaign to a file.
  [[nodiscard]] static std::string text(const std::string& name);

  /// Parses the preset into a SweepSpec; false (with diagnostic) when the
  /// name is unknown.  Preset text is compiled in, so parse errors here
  /// are build bugs — a registry self-test locks every preset.
  [[nodiscard]] static bool find(const std::string& name, SweepSpec& out, std::string& err);
};

}  // namespace mcs
