#include "sweep/presets.h"

#include <iterator>

namespace mcs {

namespace {

struct PresetEntry {
  const char* name;
  const char* description;
  const char* text;
};

/// The E1-E9 grids.  Side values for fixed-density sweeps are
/// sqrt(n / 900) (the exp_e2/e3/e5 density default), paired with n via
/// zip axes.  Sizes mirror the original binaries; override with flags
/// (e.g. `--seeds=1 --n=...`) for smoke runs.
constexpr PresetEntry kPresets[] = {
    {"e1_speedup",
     "E1: aggregation slots vs channel count F on a dense patch (Thm 22 speedup)",
     "name = e1_speedup\n"
     "base = uniform_square\n"
     "n = 3500\n"
     "side = 0.65\n"
     "seeds = 1\n"
     "seed0 = 1\n"
     "sweep.channels = 1:32:*2\n"},

    {"e2_scaling",
     "E2: aggregation cost vs n at fixed density 900 and F=8 (Thm 22 in n)",
     "name = e2_scaling\n"
     "base = uniform_square\n"
     "protocol = agg_max\n"
     "channels = 8\n"
     "seeds = 2\n"
     "seed0 = 2\n"
     "# fixed node density 900 per unit area: side = sqrt(n / 900)\n"
     "zip.n = 250,500,1000,2000,4000\n"
     "zip.side = 0.527046,0.745356,1.054093,1.490712,2.108185\n"},

    {"e3_structure",
     "E3: structure construction cost vs n at fixed density (Thm 10 stages)",
     "name = e3_structure\n"
     "base = uniform_square\n"
     "protocol = structure\n"
     "channels = 8\n"
     "seeds = 2\n"
     "seed0 = 3\n"
     "zip.n = 250,500,1000,2000,4000\n"
     "zip.side = 0.527046,0.745356,1.054093,1.490712,2.108185\n"},

    {"e4_coloring",
     "E4: node coloring vs channel count on a dense patch (Thm 24)",
     "name = e4_coloring\n"
     "base = coloring_patch\n"
     "n = 1500\n"
     "side = 1.0\n"
     "seeds = 1\n"
     "seed0 = 4\n"
     "sweep.channels = 1,2,4,8,16\n"},

    {"e5_ruling",
     "E5: (r, 2r)-ruling set size and rounds vs n at fixed density (Lemma 6)",
     "name = e5_ruling\n"
     "base = ruling_field\n"
     "seeds = 3\n"
     "seed0 = 5\n"
     "zip.n = 250,500,1000,2000,4000\n"
     "zip.side = 0.527046,0.745356,1.054093,1.490712,2.108185\n"},

    {"e6_csa",
     "E6: cluster-size approximation across F, DeltaHat knowledge, and variant (Lemma 14)",
     "name = e6_csa\n"
     "base = csa_patch\n"
     "n = 1000\n"
     "side = 1.1\n"
     "seeds = 1\n"
     "seed0 = 6\n"
     "sweep.channels = 2,8,32\n"
     "sweep.delta_hat = -1,128\n"
     "sweep.csa_variant = large,small\n"},

    {"e7_chain",
     "E7: exponential-chain concurrency sampling vs channel count (the §1 lower bound)",
     "name = e7_chain\n"
     "base = chain_lowerbound\n"
     "n = 48\n"
     "chain_base = 1.25\n"
     "chain_max_gap = 0.45\n"
     "chain_trials = 600\n"
     "seeds = 1\n"
     "seed0 = 7\n"
     "sweep.channels = 1:8:*2\n"},

    {"e8_robustness",
     "E8: aggregation across the physical alpha x beta range (§2 robustness)",
     "name = e8_robustness\n"
     "base = uniform_square\n"
     "n = 800\n"
     "side = 1.0\n"
     "channels = 8\n"
     "seeds = 2\n"
     "seed0 = 8\n"
     "sweep.alpha = 2.5,3,4\n"
     "sweep.beta = 1.2,1.5,3\n"
     "# after the axes: rescale noise so R_T = 1 under the cell's alpha/beta\n"
     "range = 1.0\n"},

    {"e8_uncertainty",
     "E8b: aggregation as the nodes' parameter knowledge degrades (bounds_width)",
     "name = e8_uncertainty\n"
     "base = uniform_square\n"
     "n = 800\n"
     "side = 1.0\n"
     "channels = 8\n"
     "seeds = 2\n"
     "seed0 = 8\n"
     "sweep.bounds_width = 0,0.1,0.2,0.4\n"},

    {"e9_contention",
     "E9: uplink contention machinery vs n on a fixed dense patch (Lemmas 19-21)",
     "name = e9_contention\n"
     "base = uniform_square\n"
     "protocol = agg_max\n"
     "side = 1.0\n"
     "channels = 8\n"
     "seeds = 1\n"
     "seed0 = 9\n"
     "sweep.n = 500,1000,2000,4000\n"},

    {"e10_mobility",
     "E10: aggregation under mobility x churn — graph drift, survival, re-delivery",
     "name = e10_mobility\n"
     "base = uniform_square\n"
     "protocol = agg_max\n"
     "n = 350\n"
     "side = 1.3\n"
     "channels = 8\n"
     "seeds = 2\n"
     "seed0 = 10\n"
     "mobility = random_walk\n"
     "churn_arrival_rate = 0.01\n"
     "sweep.mobility_speed = 0.0005,0.002,0.008\n"
     "sweep.churn_departure_rate = 0,0.0005\n"},
};

}  // namespace

std::vector<SweepPresetInfo> SweepRegistry::list() {
  std::vector<SweepPresetInfo> out;
  out.reserve(std::size(kPresets));
  for (const PresetEntry& e : kPresets) out.push_back({e.name, e.description});
  return out;
}

std::string SweepRegistry::text(const std::string& name) {
  for (const PresetEntry& e : kPresets) {
    if (name == e.name) return e.text;
  }
  return "";
}

bool SweepRegistry::find(const std::string& name, SweepSpec& out, std::string& err) {
  for (const PresetEntry& e : kPresets) {
    if (name != e.name) continue;
    out = SweepSpec{};
    return parseSweepText(out, e.text, std::string("preset ") + e.name, "", err);
  }
  err = "unknown sweep preset \"" + name + "\"";
  return false;
}

}  // namespace mcs
