#include "sweep/runner.h"

#include <chrono>
#include <filesystem>

#include "sweep/report.h"

namespace mcs {

namespace {

double wallNow() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A cached cell is only trusted when it is the very same cell: the
/// stored complete spec fingerprint must match the freshly expanded spec
/// (any base/fixed-key/axis edit changes it), with a complete seed batch.
bool cacheMatches(const CellResult& cached, const SweepCell& cell) {
  return cached.cell.label == cell.label &&
         cached.specFingerprint == scenarioToKeyValues(cell.spec) &&
         static_cast<int>(cached.batch.perSeed.size()) == cell.spec.seeds;
}

}  // namespace

std::vector<std::pair<std::string, Summary>> CellResult::summaries() const {
  std::vector<std::pair<std::string, Summary>> out;
  out.emplace_back("slots", batch.summarizeSlots());
  out.emplace_back("decode_rate", batch.summarizeDecodeRate());
  Summary structure;
  {
    std::vector<double> xs;
    xs.reserve(batch.perSeed.size());
    for (const SeedResult& r : batch.perSeed) {
      if (!r.failed()) xs.push_back(static_cast<double>(r.structureSlots));
    }
    structure = summarize(xs);
  }
  out.emplace_back("structure_slots", structure);
  out.emplace_back("wall_sec", batch.summarizeWallSec());
  for (const std::string& name : batch.metricNames()) {
    out.emplace_back(name, batch.summarizeMetric(name));
  }
  return out;
}

std::string cellFilePath(const std::string& outDir, const std::string& campaign,
                         int cellIndex) {
  return outDir + "/sweep_cells/" + campaign + "/cell_" + std::to_string(cellIndex) + ".json";
}

bool runCampaign(const SweepSpec& spec, const CampaignOptions& opts, CampaignResult& out,
                 std::string& err) {
  out = CampaignResult{};
  out.name = spec.name;
  out.baseName = spec.baseName;
  out.description = describeSweep(spec);
  out.shardIndex = opts.shardIndex;
  out.shardCount = opts.shardCount;

  std::vector<SweepCell> cells;
  if (!expandSweep(spec, cells, err)) return false;
  out.totalCells = static_cast<int>(cells.size());

  const double t0 = wallNow();
  for (SweepCell& cell : cells) {
    if (!cellInShard(cell.index, opts.shardIndex, opts.shardCount)) continue;
    const std::string path = cellFilePath(opts.outDir, spec.name, cell.index);

    if (opts.resume && std::filesystem::exists(path)) {
      CellResult cached;
      std::string loadErr;
      if (loadCellResult(path, cached, loadErr) && cacheMatches(cached, cell)) {
        cached.cell = cell;  // trust the freshly expanded spec, not the file
        cached.fromCache = true;
        if (opts.onCell) opts.onCell(cell, true);
        out.cells.push_back(std::move(cached));
        continue;
      }
      // Stale or unreadable: fall through and re-run the cell.
    }

    if (opts.onCell) opts.onCell(cell, false);
    CellResult res;
    res.cell = cell;
    res.batch = runScenarioBatch(cell.spec, opts.threads);
    if (opts.writeCellFiles) {
      std::error_code ec;
      std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
      std::string writeErr;
      if (!writeCellFile(res, path, writeErr)) {
        err = "cell " + std::to_string(cell.index) + ": " + writeErr;
        return false;
      }
    }
    out.cells.push_back(std::move(res));
  }
  out.wallSec = wallNow() - t0;
  return true;
}

}  // namespace mcs
