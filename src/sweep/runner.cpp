#include "sweep/runner.h"

#include <cstdio>
#include <filesystem>

#include "sweep/report.h"
#include "telemetry/telemetry.h"
#include "util/clock.h"

namespace mcs {

bool cellCacheMatches(const CellResult& cached, const SweepCell& cell) {
  return cached.cell.label == cell.label &&
         cached.specFingerprint == scenarioToKeyValues(cell.spec) &&
         static_cast<int>(cached.batch.perSeed.size()) == cell.spec.seeds;
}

void recordCellTelemetry(const telemetry::MetricsSnapshot& delta, MetricMap& out) {
  for (const telemetry::CounterSample& c : delta.counters) {
    if (c.value != 0) out.set("tm." + c.name, static_cast<double>(c.value));
  }
  for (const telemetry::TimerSample& t : delta.timers) {
    if (t.count == 0) continue;
    out.set("tm." + t.name + ".sec", t.totalSec);
    out.set("tm." + t.name + ".count", static_cast<double>(t.count));
  }
}

namespace {

/// Campaign progress heartbeat on stderr: cells done, throughput, ETA.
/// Cells vary wildly in cost across a sweep axis, so the ETA is the
/// honest kind — average-so-far extrapolated, not a promise.
struct Heartbeat {
  bool enabled = false;
  std::string campaign;
  int shardCells = 0;
  double t0 = 0.0;
  double lastEmit = 0.0;
  int done = 0;
  int cached = 0;

  void cellDone(bool fromCache) {
    ++done;
    if (fromCache) ++cached;
    if (!enabled) return;
    const double now = nowSec();
    if (done < shardCells && now - lastEmit < 0.5) return;
    lastEmit = now;
    const double elapsed = now - t0;
    const double rate = elapsed > 0.0 ? done / elapsed : 0.0;
    const double eta = rate > 0.0 ? (shardCells - done) / rate : 0.0;
    std::fprintf(stderr, "[sweep %s] %d/%d cells (%d cached) | %.2f cells/s | ETA %.0fs\n",
                 campaign.c_str(), done, shardCells, cached, rate, eta);
    std::fflush(stderr);
  }
};

}  // namespace

std::vector<std::pair<std::string, Summary>> CellResult::summaries() const {
  std::vector<std::pair<std::string, Summary>> out;
  out.emplace_back("slots", batch.summarizeSlots());
  out.emplace_back("decode_rate", batch.summarizeDecodeRate());
  Summary structure;
  {
    std::vector<double> xs;
    xs.reserve(batch.perSeed.size());
    for (const SeedResult& r : batch.perSeed) {
      if (!r.failed()) xs.push_back(static_cast<double>(r.structureSlots));
    }
    structure = summarize(xs);
  }
  out.emplace_back("structure_slots", structure);
  out.emplace_back("wall_sec", batch.summarizeWallSec());
  for (const std::string& name : batch.metricNames()) {
    out.emplace_back(name, batch.summarizeMetric(name));
  }
  return out;
}

std::string cellFilePath(const std::string& outDir, const std::string& campaign,
                         int cellIndex) {
  return outDir + "/sweep_cells/" + campaign + "/cell_" + std::to_string(cellIndex) + ".json";
}

bool runCampaign(const SweepSpec& spec, const CampaignOptions& opts, CampaignResult& out,
                 std::string& err) {
  out = CampaignResult{};
  out.name = spec.name;
  out.baseName = spec.baseName;
  out.description = describeSweep(spec);
  out.shardIndex = opts.shardIndex;
  out.shardCount = opts.shardCount;

  std::vector<SweepCell> cells;
  if (!expandSweep(spec, cells, err)) return false;
  out.totalCells = static_cast<int>(cells.size());

  static const telemetry::TimerId kCellTimer = telemetry::timerId("sweep.cell");

  const double t0 = nowSec();
  Heartbeat beat;
  beat.enabled = opts.heartbeat;
  beat.campaign = spec.name;
  beat.t0 = t0;
  for (const SweepCell& cell : cells) {
    if (cellInShard(cell.index, opts.shardIndex, opts.shardCount)) ++beat.shardCells;
  }

  for (SweepCell& cell : cells) {
    if (!cellInShard(cell.index, opts.shardIndex, opts.shardCount)) continue;
    const std::string path = cellFilePath(opts.outDir, spec.name, cell.index);

    if (opts.resume && std::filesystem::exists(path)) {
      CellResult cached;
      std::string loadErr;
      if (loadCellResult(path, cached, loadErr) && cellCacheMatches(cached, cell)) {
        cached.cell = cell;  // trust the freshly expanded spec, not the file
        cached.fromCache = true;
        if (opts.onCell) opts.onCell(cell, true);
        out.cells.push_back(std::move(cached));
        beat.cellDone(true);
        continue;
      }
      // Stale or unreadable: fall through and re-run the cell.
    }

    if (opts.onCell) opts.onCell(cell, false);
    CellResult res;
    res.cell = cell;
    // Cells run sequentially and seed batches join before returning, so a
    // snapshot delta around the batch attributes engine counters to this
    // cell exactly (when telemetry is enabled; free otherwise).
    const bool withTelemetry = telemetry::enabled();
    telemetry::MetricsSnapshot before;
    if (withTelemetry) before = telemetry::snapshotMetrics();
    {
      const telemetry::PhaseTimer cellTimer(kCellTimer);
      res.batch = runScenarioBatch(cell.spec, opts.threads);
    }
    if (withTelemetry) {
      recordCellTelemetry(telemetry::snapshotMetrics().diff(before), res.telemetry);
    }
    if (opts.writeCellFiles) {
      std::error_code ec;
      std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
      std::string writeErr;
      if (!writeCellFile(res, path, writeErr)) {
        err = "cell " + std::to_string(cell.index) + ": " + writeErr;
        return false;
      }
    }
    out.cells.push_back(std::move(res));
    beat.cellDone(false);
  }
  out.wallSec = nowSec() - t0;
  return true;
}

}  // namespace mcs
