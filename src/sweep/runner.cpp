#include "sweep/runner.h"

#include <cstdio>
#include <filesystem>

#include "store/writer.h"
#include "sweep/report.h"
#include "telemetry/telemetry.h"
#include "util/clock.h"

namespace mcs {

bool cellCacheMatches(const CellResult& cached, const SweepCell& cell) {
  return cached.cell.label == cell.label &&
         cached.specFingerprint == scenarioToKeyValues(cell.spec) &&
         static_cast<int>(cached.batch.perSeed.size()) == cell.spec.seeds;
}

void recordCellTelemetry(const telemetry::MetricsSnapshot& delta, MetricMap& out) {
  for (const telemetry::CounterSample& c : delta.counters) {
    if (c.value != 0) out.set("tm." + c.name, static_cast<double>(c.value));
  }
  for (const telemetry::TimerSample& t : delta.timers) {
    if (t.count == 0) continue;
    out.set("tm." + t.name + ".sec", t.totalSec);
    out.set("tm." + t.name + ".count", static_cast<double>(t.count));
  }
}

namespace {

/// Campaign progress heartbeat on stderr: cells done, throughput, ETA.
/// Cells vary wildly in cost across a sweep axis, so the ETA is the
/// honest kind — average-so-far extrapolated, not a promise.  Resume
/// cache hits cost microseconds, so the throughput and ETA only count
/// cells that actually ran; a resumed campaign no longer advertises a
/// fantasy cells/s and an ETA of ~0 while real work remains.
struct Heartbeat {
  bool enabled = false;
  std::string campaign;
  int shardCells = 0;
  double t0 = 0.0;
  double lastEmit = 0.0;
  int done = 0;
  int cached = 0;

  void cellDone(bool fromCache) {
    ++done;
    if (fromCache) ++cached;
    if (!enabled) return;
    const double now = nowSec();
    if (done < shardCells && now - lastEmit < 0.5) return;
    lastEmit = now;
    const double elapsed = now - t0;
    const int ran = done - cached;
    const double rate = elapsed > 0.0 ? ran / elapsed : 0.0;
    char eta[32];
    if (rate > 0.0) {
      std::snprintf(eta, sizeof eta, "%.0fs", (shardCells - done) / rate);
    } else {
      std::snprintf(eta, sizeof eta, "--");
    }
    std::fprintf(stderr, "[sweep %s] %d/%d cells (%d ran, %d cached) | %.2f cells/s | ETA %s\n",
                 campaign.c_str(), done, shardCells, ran, cached, rate, eta);
    std::fflush(stderr);
  }
};

}  // namespace

NamedStats cellStats(const CellResult& cell) {
  NamedStats out;
  StreamingStats slots, decodeRate, structureSlots, wallSec;
  for (const SeedResult& r : cell.batch.perSeed) {
    wallSec.add(r.wallSec);  // wall time counts failed seeds, like summarizeWallSec
    if (r.failed()) continue;
    slots.add(static_cast<double>(r.slots));
    decodeRate.add(r.decodeRate);
    structureSlots.add(static_cast<double>(r.structureSlots));
  }
  out.emplace_back("slots", std::move(slots));
  out.emplace_back("decode_rate", std::move(decodeRate));
  out.emplace_back("structure_slots", std::move(structureSlots));
  out.emplace_back("wall_sec", std::move(wallSec));
  for (const std::string& name : cell.batch.metricNames()) {
    StreamingStats s;
    for (const SeedResult& r : cell.batch.perSeed) {
      if (r.failed()) continue;
      if (const double* v = r.metrics.find(name)) s.add(*v);
    }
    out.emplace_back(name, std::move(s));
  }
  return out;
}

std::vector<std::pair<std::string, Summary>> CellResult::summaries() const {
  std::vector<std::pair<std::string, Summary>> out;
  const NamedStats stats = cellStats(*this);
  out.reserve(stats.size());
  for (const auto& [name, s] : stats) out.emplace_back(name, s.summary());
  return out;
}

std::string cellFilePath(const std::string& outDir, const std::string& campaign,
                         int cellIndex) {
  return outDir + "/sweep_cells/" + campaign + "/cell_" + std::to_string(cellIndex) + ".json";
}

bool runCampaign(const SweepSpec& spec, const CampaignOptions& opts, CampaignResult& out,
                 std::string& err) {
  out = CampaignResult{};
  out.name = spec.name;
  out.baseName = spec.baseName;
  out.description = describeSweep(spec);
  out.shardIndex = opts.shardIndex;
  out.shardCount = opts.shardCount;

  std::vector<SweepCell> cells;
  if (!expandSweep(spec, cells, err)) return false;
  out.totalCells = static_cast<int>(cells.size());

  static const telemetry::TimerId kCellTimer = telemetry::timerId("sweep.cell");

  const double t0 = nowSec();
  Heartbeat beat;
  beat.enabled = opts.heartbeat;
  beat.campaign = spec.name;
  beat.t0 = t0;
  for (const SweepCell& cell : cells) {
    if (cellInShard(cell.index, opts.shardIndex, opts.shardCount)) ++beat.shardCells;
  }

  store::StoreWriter storeWriter;
  if (!opts.storePath.empty()) {
    store::StoreMeta meta;
    meta.campaign = spec.name;
    meta.base = spec.baseName;
    meta.totalCells = out.totalCells;
    meta.shardIndex = opts.shardIndex;
    meta.shardCount = opts.shardCount;
    meta.cellSlots = static_cast<std::size_t>(beat.shardCells);
    meta.stripWall = opts.storeStripWall;
    if (!storeWriter.open(opts.storePath, meta, err)) return false;
  }
  const auto appendStoreRow = [&](const CellResult& res, std::string& rowErr) {
    if (!storeWriter.isOpen()) return true;
    const NamedStats stats = cellStats(res);
    store::StoreCellRow row;
    row.cellIndex = res.cell.index;
    row.label = res.cell.label;
    row.assignments = res.cell.assignments;
    row.seeds = res.cell.spec.seeds;
    row.failures = res.batch.failures();
    row.delivered = res.batch.deliveredCount();
    row.valid = res.batch.validCount();
    row.invalid = res.batch.invalidCount();
    row.stats = &stats;
    row.telemetry = &res.telemetry;
    row.probes = &res.probes;
    // Slot = position in shard order; out.cells grows in that order.
    return storeWriter.appendCell(out.cells.size() - 1, row, rowErr);
  };

  for (SweepCell& cell : cells) {
    if (!cellInShard(cell.index, opts.shardIndex, opts.shardCount)) continue;
    const std::string path = cellFilePath(opts.outDir, spec.name, cell.index);

    if (opts.resume && std::filesystem::exists(path)) {
      CellResult cached;
      std::string loadErr;
      if (loadCellResult(path, cached, loadErr) && cellCacheMatches(cached, cell)) {
        cached.cell = cell;  // trust the freshly expanded spec, not the file
        cached.fromCache = true;
        if (opts.onCell) opts.onCell(cell, true);
        out.cells.push_back(std::move(cached));
        std::string rowErr;
        if (!appendStoreRow(out.cells.back(), rowErr)) {
          err = "cell " + std::to_string(cell.index) + " store row: " + rowErr;
          return false;
        }
        beat.cellDone(true);
        continue;
      }
      // Stale or unreadable: fall through and re-run the cell.
    }

    if (opts.onCell) opts.onCell(cell, false);
    CellResult res;
    res.cell = cell;
    // Cells run sequentially and seed batches join before returning, so a
    // snapshot delta around the batch attributes engine counters to this
    // cell exactly (when telemetry is enabled; free otherwise).
    const bool withTelemetry = telemetry::enabled();
    telemetry::MetricsSnapshot before;
    if (withTelemetry) before = telemetry::snapshotMetrics();
    // Probes have no snapshot-delta idiom (sketches don't subtract), so
    // per-cell attribution is a reset/snapshot pair — sound because cells
    // run serially here; only the seeds within a cell are concurrent, and
    // probe folds commute.
    const bool withProbes = telemetry::probesEnabled();
    if (withProbes) telemetry::resetProbes();
    {
      const telemetry::PhaseTimer cellTimer(kCellTimer);
      res.batch = runScenarioBatch(cell.spec, opts.threads);
    }
    if (withTelemetry) {
      recordCellTelemetry(telemetry::snapshotMetrics().diff(before), res.telemetry);
    }
    if (withProbes) res.probes = telemetry::snapshotProbes();
    if (opts.writeCellFiles) {
      std::error_code ec;
      std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
      std::string writeErr;
      if (!writeCellFile(res, path, writeErr)) {
        err = "cell " + std::to_string(cell.index) + ": " + writeErr;
        return false;
      }
    }
    out.cells.push_back(std::move(res));
    std::string rowErr;
    if (!appendStoreRow(out.cells.back(), rowErr)) {
      err = "cell " + std::to_string(cell.index) + " store row: " + rowErr;
      return false;
    }
    beat.cellDone(false);
  }
  if (storeWriter.isOpen() && !storeWriter.finish(err)) return false;
  out.wallSec = nowSec() - t0;
  return true;
}

}  // namespace mcs
