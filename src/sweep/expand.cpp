#include "sweep/expand.h"

#include "util/args.h"

namespace mcs {

namespace {

constexpr std::size_t kMaxCells = 100000;

/// One dimension of the grid; the zip group is a single dimension shared
/// by every Zip assignment.
struct Dimension {
  std::size_t size = 0;
};

/// Maps each assignment to its dimension index (-1 for Fixed), building
/// the dimension list on the way.  Returns false when zip lengths differ.
bool buildDimensions(const SweepSpec& spec, std::vector<Dimension>& dims,
                     std::vector<int>& dimOf, std::string& err) {
  int zipDim = -1;
  for (const SweepAssignment& a : spec.assignments) {
    switch (a.kind) {
      case SweepAssignKind::Fixed:
        dimOf.push_back(-1);
        break;
      case SweepAssignKind::Axis:
        dimOf.push_back(static_cast<int>(dims.size()));
        dims.push_back({a.values.size()});
        break;
      case SweepAssignKind::Zip:
        if (zipDim < 0) {
          zipDim = static_cast<int>(dims.size());
          dims.push_back({a.values.size()});
        } else if (dims[static_cast<std::size_t>(zipDim)].size != a.values.size()) {
          err = "zip axes must have equal lengths: \"" + a.key + "\" has " +
                std::to_string(a.values.size()) + " values, expected " +
                std::to_string(dims[static_cast<std::size_t>(zipDim)].size);
          return false;
        }
        dimOf.push_back(zipDim);
        break;
    }
  }
  return true;
}

}  // namespace

std::size_t sweepCellCount(const SweepSpec& spec) {
  std::vector<Dimension> dims;
  std::vector<int> dimOf;
  std::string err;
  if (!buildDimensions(spec, dims, dimOf, err)) return 0;
  std::size_t cells = 1;
  for (const Dimension& d : dims) cells *= d.size;
  return cells;
}

bool expandSweep(const SweepSpec& spec, std::vector<SweepCell>& out, std::string& err) {
  out.clear();
  std::vector<Dimension> dims;
  std::vector<int> dimOf;
  if (!buildDimensions(spec, dims, dimOf, err)) return false;

  std::size_t cells = 1;
  for (const Dimension& d : dims) {
    cells *= d.size;
    if (cells > kMaxCells) {
      err = "sweep \"" + spec.name + "\" expands to more than " + std::to_string(kMaxCells) +
            " cells";
      return false;
    }
  }

  // Strides for row-major order: the first-declared dimension varies
  // slowest, the last fastest.
  std::vector<std::size_t> stride(dims.size(), 1);
  for (std::size_t d = dims.size(); d-- > 1;) stride[d - 1] = stride[d] * dims[d].size;

  out.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    SweepCell cell;
    cell.index = static_cast<int>(c);
    cell.spec = spec.base;
    for (std::size_t i = 0; i < spec.assignments.size(); ++i) {
      const SweepAssignment& a = spec.assignments[i];
      std::size_t valueIdx = 0;
      if (dimOf[i] >= 0) {
        const auto d = static_cast<std::size_t>(dimOf[i]);
        valueIdx = (c / stride[d]) % dims[d].size;
        if (!cell.label.empty()) cell.label += ",";
        cell.label += a.key + "=" + a.values[valueIdx];
        cell.assignments.emplace_back(a.key, a.values[valueIdx]);
      }
      std::string keyErr;
      if (!applyScenarioKey(cell.spec, a.key, a.values[valueIdx], keyErr)) {
        err = "cell " + std::to_string(c) + " (" + cell.label + "): " + keyErr;
        return false;
      }
    }
    if (cell.label.empty()) cell.label = "base";
    cell.spec.name = cell.label;
    const std::string invalid = validateScenario(cell.spec);
    if (!invalid.empty()) {
      err = "cell " + std::to_string(c) + " (" + cell.label + "): " + invalid;
      return false;
    }
    out.push_back(std::move(cell));
  }
  return true;
}

bool cellInShard(int index, int shardIndex, int shardCount) noexcept {
  if (shardCount <= 1) return true;
  return index % shardCount == shardIndex;
}

bool parseShard(const std::string& text, int& shardIndex, int& shardCount, std::string& err) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    err = "shard \"" + text + "\": expected i/k (e.g. 0/2)";
    return false;
  }
  long i = 0, k = 0;
  if (!parseLong(text.substr(0, slash), i) || !parseLong(text.substr(slash + 1), k)) {
    err = "shard \"" + text + "\": malformed integer";
    return false;
  }
  if (k < 1 || i < 0 || i >= k) {
    err = "shard \"" + text + "\": need 0 <= i < k";
    return false;
  }
  shardIndex = static_cast<int>(i);
  shardCount = static_cast<int>(k);
  return true;
}

}  // namespace mcs
