#include "sweep/report.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <system_error>

#include "telemetry/telemetry.h"
#include "util/csv.h"
#include "util/stats.h"

namespace mcs {

Json summaryToJson(const Summary& s) {
  Json j = Json::object();
  j.set("count", s.count);
  j.set("mean", s.mean);
  j.set("stddev", s.stddev);
  j.set("ci95", s.ci95);
  j.set("min", s.min);
  j.set("p50", s.median);
  j.set("p95", s.p95);
  j.set("max", s.max);
  return j;
}

void stripWallTimes(Json& j) {
  if (j.isObject()) {
    for (auto& [key, value] : j.members()) {
      if (key == "wall_sec") {
        if (value.isNumber()) {
          value = Json(0.0);
          continue;
        }
        if (value.isObject()) {
          // The wall_sec summary block: keep the (deterministic) sample
          // count, zero the derived statistics.
          for (auto& [stat, v] : value.members()) {
            if (stat != "count" && v.isNumber()) v = Json(0.0);
          }
          continue;
        }
      }
      stripWallTimes(value);
    }
  } else if (j.isArray()) {
    for (Json& item : j.items()) stripWallTimes(item);
  }
}

Summary summaryFromJson(const Json& j) {
  Summary s;
  s.count = static_cast<std::size_t>(j.numberAt("count"));
  s.mean = j.numberAt("mean");
  s.stddev = j.numberAt("stddev");
  s.ci95 = j.numberAt("ci95");
  s.min = j.numberAt("min");
  s.median = j.numberAt("p50");
  s.p95 = j.numberAt("p95");
  s.max = j.numberAt("max");
  return s;
}

namespace {

Json seedToJson(const SeedResult& r) {
  Json j = Json::object();
  j.set("seed", static_cast<double>(r.seed));
  j.set("deployed_n", r.deployedN);
  j.set("slots", static_cast<double>(r.slots));
  j.set("transmissions", static_cast<double>(r.transmissions));
  j.set("listens", static_cast<double>(r.listens));
  j.set("decodes", static_cast<double>(r.decodes));
  j.set("decode_rate", r.decodeRate);
  j.set("structure_slots", static_cast<double>(r.structureSlots));
  j.set("delivered", r.delivered);
  j.set("valid", toString(r.validity));
  j.set("wall_sec", r.wallSec);
  j.set("error", r.error);
  Json metrics = Json::object();
  for (const auto& [name, value] : r.metrics.entries()) metrics.set(name, value);
  j.set("metrics", std::move(metrics));
  return j;
}

bool seedFromJson(const Json& j, SeedResult& r, std::string& err) {
  if (!j.isObject()) {
    err = "per-seed entry is not an object";
    return false;
  }
  r.seed = static_cast<std::uint64_t>(j.numberAt("seed"));
  r.deployedN = static_cast<int>(j.numberAt("deployed_n"));
  r.slots = static_cast<std::uint64_t>(j.numberAt("slots"));
  r.transmissions = static_cast<std::uint64_t>(j.numberAt("transmissions"));
  r.listens = static_cast<std::uint64_t>(j.numberAt("listens"));
  r.decodes = static_cast<std::uint64_t>(j.numberAt("decodes"));
  r.decodeRate = j.numberAt("decode_rate");
  r.structureSlots = static_cast<std::uint64_t>(j.numberAt("structure_slots"));
  const Json* delivered = j.find("delivered");
  r.delivered = delivered != nullptr && delivered->asBool();
  const std::string validity = j.stringAt("valid", "unchecked");
  r.validity = validity == "valid"     ? OutcomeValidity::Valid
               : validity == "INVALID" ? OutcomeValidity::Invalid
                                       : OutcomeValidity::NotChecked;
  r.wallSec = j.numberAt("wall_sec");
  r.error = j.stringAt("error");
  if (const Json* metrics = j.find("metrics"); metrics != nullptr && metrics->isObject()) {
    for (const auto& [name, value] : metrics->members()) {
      r.metrics.set(name, value.asDouble());
    }
  }
  return true;
}

}  // namespace

Json cellToJson(const CellResult& cell) {
  Json j = Json::object();
  j.set("index", cell.cell.index);
  j.set("label", cell.cell.label);
  Json assigns = Json::object();
  for (const auto& [key, value] : cell.cell.assignments) assigns.set(key, value);
  j.set("assignments", std::move(assigns));
  j.set("scenario", describeScenario(cell.cell.spec));
  j.set("spec", scenarioToKeyValues(cell.cell.spec));
  j.set("seeds", cell.cell.spec.seeds);
  j.set("seed0", static_cast<double>(cell.cell.spec.seed0));
  j.set("failures", cell.batch.failures());
  j.set("delivered", cell.batch.deliveredCount());
  j.set("valid", cell.batch.validCount());
  j.set("invalid", cell.batch.invalidCount());
  Json summaries = Json::object();
  for (const auto& [name, summary] : cell.summaries()) {
    summaries.set(name, summaryToJson(summary));
  }
  j.set("summaries", std::move(summaries));
  Json perSeed = Json::array();
  for (const SeedResult& r : cell.batch.perSeed) perSeed.push_back(seedToJson(r));
  j.set("per_seed", std::move(perSeed));
  // Telemetry block only when the runner captured one (telemetry enabled):
  // default runs keep the historical cell layout byte-for-byte.
  if (!cell.telemetry.entries().empty()) {
    Json tm = Json::object();
    for (const auto& [name, value] : cell.telemetry.entries()) tm.set(name, value);
    j.set("telemetry", std::move(tm));
  }
  // Probe block only when probes were armed for this cell (same layout
  // guarantee): sketches + series round-trip losslessly, so a resumed or
  // worker-shipped cell reproduces the in-process probe bytes exactly.
  if (!cell.probes.empty()) j.set("probes", telemetry::probesToJson(cell.probes));
  return j;
}

Json campaignToJson(const CampaignResult& campaign) {
  Json j = Json::object();
  j.set("name", "sweep_" + campaign.name);
  j.set("kind", "sweep");
  Json meta = Json::object();
  meta.set("sweep", campaign.name);
  meta.set("base", campaign.baseName);
  meta.set("description", campaign.description);
  meta.set("total_cells", campaign.totalCells);
  meta.set("shard_index", campaign.shardIndex);
  meta.set("shard_count", campaign.shardCount);
  meta.set("cells_in_shard", static_cast<int>(campaign.cells.size()));
  meta.set("cells_cached", campaign.cachedCells());
  meta.set("failures", campaign.failures());
  meta.set("wall_sec", campaign.wallSec);
  j.set("meta", std::move(meta));
  Json cells = Json::array();
  for (const CellResult& cell : campaign.cells) cells.push_back(cellToJson(cell));
  j.set("cells", std::move(cells));
  // Campaign-wide probe aggregate: the merge of every cell's probe state
  // (merge order cannot matter — sketch and series folds commute), present
  // only when some cell captured probes.  Sits between "cells" and
  // "telemetry"; the work-queue report writer replicates this layout.
  {
    telemetry::ProbeState merged;
    for (const CellResult& cell : campaign.cells) merged.merge(cell.probes);
    if (!merged.empty()) j.set("probes", telemetry::probesToJson(merged));
  }
  // Campaign-wide counter/timer totals, present only when telemetry is
  // enabled — the default report layout stays byte-identical.
  if (telemetry::enabled()) {
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    if (!snap.empty()) j.set("telemetry", snap.toJson());
  }
  return j;
}

bool writeCellFile(const CellResult& cell, const std::string& path, std::string& err) {
  // tmp + rename: a worker killed mid-write leaves `<path>.tmp` behind,
  // never a truncated cell_<i>.json that --resume would choke on.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp);
    f << cellToJson(cell).dump() << '\n';
    f.flush();
    if (!f.good()) {
      err = "cannot write cell file \"" + tmp + "\"";
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    err = "cannot rename \"" + tmp + "\" to \"" + path + "\": " + ec.message();
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

bool loadCellResult(const std::string& path, CellResult& out, std::string& err) {
  Json j;
  if (!Json::parseFile(path, j, err)) return false;
  if (!j.isObject()) {
    err = path + ": not a JSON object";
    return false;
  }
  out = CellResult();
  out.cell.index = static_cast<int>(j.numberAt("index", -1));
  out.cell.label = j.stringAt("label");
  if (const Json* assigns = j.find("assignments"); assigns != nullptr && assigns->isObject()) {
    for (const auto& [key, value] : assigns->members()) {
      out.cell.assignments.emplace_back(key, value.asString());
    }
  }
  out.specFingerprint = j.stringAt("spec");
  out.batch.spec.seeds = static_cast<int>(j.numberAt("seeds"));
  out.batch.spec.seed0 = static_cast<std::uint64_t>(j.numberAt("seed0"));
  const Json* perSeed = j.find("per_seed");
  if (perSeed == nullptr || !perSeed->isArray()) {
    err = path + ": missing per_seed array";
    return false;
  }
  for (const Json& entry : perSeed->items()) {
    SeedResult r;
    if (!seedFromJson(entry, r, err)) {
      err = path + ": " + err;
      return false;
    }
    out.batch.perSeed.push_back(std::move(r));
  }
  if (const Json* tm = j.find("telemetry"); tm != nullptr && tm->isObject()) {
    for (const auto& [name, value] : tm->members()) {
      out.telemetry.set(name, value.asDouble());
    }
  }
  if (const Json* probes = j.find("probes"); probes != nullptr) {
    out.probes = telemetry::probesFromJson(*probes);
  }
  return true;
}

bool writeCampaignReport(const CampaignResult& campaign, const std::string& dir,
                         std::string& pathOut, std::string& err) {
  pathOut = dir + "/BENCH_sweep_" + campaign.name + ".json";
  std::ofstream f(pathOut);
  f << campaignToJson(campaign).dump() << '\n';
  f.flush();
  if (!f.good()) {
    err = "cannot write campaign report \"" + pathOut + "\"";
    return false;
  }
  return true;
}

std::vector<std::string> campaignAxisKeys(
    const std::vector<std::vector<std::pair<std::string, std::string>>>& assignments) {
  // Axis columns: union over cells in first-appearance order (cells of
  // one campaign share the same axis keys).
  std::vector<std::string> axisKeys;
  for (const auto& cellAssignments : assignments) {
    for (const auto& [key, value] : cellAssignments) {
      bool seen = false;
      for (const std::string& have : axisKeys) {
        if (have == key) {
          seen = true;
          break;
        }
      }
      if (!seen) axisKeys.push_back(key);
    }
  }
  return axisKeys;
}

void appendCellCsvRows(std::ostream& f, const CellResult& cell,
                       const std::vector<std::string>& axisKeys) {
  std::vector<std::string> prefix = {std::to_string(cell.cell.index), cell.cell.label};
  for (const std::string& key : axisKeys) {
    std::string value;
    for (const auto& [k, v] : cell.cell.assignments) {
      if (k == key) {
        value = v;
        break;
      }
    }
    prefix.push_back(value);
  }
  for (const SeedResult& r : cell.batch.perSeed) {
    const auto emit = [&](const std::string& metric, double value) {
      std::vector<std::string> cols = prefix;
      cols.push_back(std::to_string(r.seed));
      cols.push_back(metric);
      cols.push_back(formatDouble(value, 9));
      f << csvJoin(cols) << '\n';
    };
    emit("slots", static_cast<double>(r.slots));
    emit("decode_rate", r.decodeRate);
    emit("structure_slots", static_cast<double>(r.structureSlots));
    emit("delivered", r.delivered ? 1.0 : 0.0);
    emit("wall_sec", r.wallSec);
    for (const auto& [name, value] : r.metrics.entries()) emit(name, value);
  }
  // Per-cell summary rows: the batch mean and its 95% CI half-width,
  // one pair per summarized metric, with the literal words "mean" /
  // "ci95" in the seed column (long-form consumers filter on it).
  for (const auto& [metric, summary] : cell.summaries()) {
    const auto emitSummary = [&](const char* stat, double value) {
      std::vector<std::string> cols = prefix;
      cols.emplace_back(stat);
      cols.push_back(metric);
      cols.push_back(formatDouble(value, 9));
      f << csvJoin(cols) << '\n';
    };
    emitSummary("mean", summary.mean);
    emitSummary("ci95", summary.ci95);
  }
  // Per-cell telemetry rows (engine counters / phase timings attributed
  // to this cell), with the literal word "telemetry" in the seed column.
  // Absent unless the campaign ran with --metrics, so default CSVs are
  // unchanged.
  for (const auto& [name, value] : cell.telemetry.entries()) {
    std::vector<std::string> cols = prefix;
    cols.emplace_back("telemetry");
    cols.push_back(name);
    cols.push_back(formatDouble(value, 9));
    f << csvJoin(cols) << '\n';
  }
}

bool writeCampaignCsv(const CampaignResult& campaign, const std::string& path,
                      std::string& err) {
  std::ofstream f(path);
  if (!f) {
    err = "cannot write campaign CSV \"" + path + "\"";
    return false;
  }
  std::vector<std::vector<std::pair<std::string, std::string>>> assignments;
  assignments.reserve(campaign.cells.size());
  for (const CellResult& cell : campaign.cells) assignments.push_back(cell.cell.assignments);
  const std::vector<std::string> axisKeys = campaignAxisKeys(assignments);

  std::vector<std::string> header = {"cell", "label"};
  for (const std::string& key : axisKeys) header.push_back(key);
  header.insert(header.end(), {"seed", "metric", "value"});
  f << csvJoin(header) << '\n';

  for (const CellResult& cell : campaign.cells) appendCellCsvRows(f, cell, axisKeys);
  f.flush();
  if (!f.good()) {
    err = "cannot write campaign CSV \"" + path + "\"";
    return false;
  }
  return true;
}

}  // namespace mcs
