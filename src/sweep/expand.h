#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sweep/spec.h"

/// Grid expansion of a SweepSpec into runnable cells, plus the
/// deterministic shard partition the CI matrix uses.
namespace mcs {

/// One cell of the campaign grid: a fully resolved ScenarioSpec plus the
/// axis assignments that produced it.
struct SweepCell {
  /// Position in the full (unsharded) expansion order; cell file names
  /// and the shard partition key off this.
  int index = 0;
  /// `key=value` pairs of the non-fixed assignments, comma-joined in
  /// declaration order ("base" when the sweep has no axes).
  std::string label;
  /// The non-fixed assignments (declaration order), for report columns.
  std::vector<std::pair<std::string, std::string>> assignments;
  ScenarioSpec spec;
};

/// Expands the full grid: every Axis crossed with every other (the Zip
/// group is a single axis), first-declared axis varying slowest.  Every
/// cell is validated; any invalid cell fails the whole expansion with a
/// cell-labelled diagnostic.  Deterministic: same spec, same cells, same
/// order.
bool expandSweep(const SweepSpec& spec, std::vector<SweepCell>& out, std::string& err);

/// Total cell count of the expansion without building it.
[[nodiscard]] std::size_t sweepCellCount(const SweepSpec& spec);

/// The shard partition: cell `index` belongs to shard `shardIndex` of
/// `shardCount` iff index % shardCount == shardIndex.  Shards 0..k-1
/// together cover every cell exactly once.
[[nodiscard]] bool cellInShard(int index, int shardIndex, int shardCount) noexcept;

/// Parses a `--shard i/k` value (0 <= i < k).
bool parseShard(const std::string& text, int& shardIndex, int& shardCount, std::string& err);

}  // namespace mcs
