#pragma once

#include <string>
#include <vector>

#include "util/json.h"

/// The perf-regression gate: diffs a candidate campaign JSON against a
/// committed baseline and reports violations when metric means drift or
/// wall time regresses beyond tolerance.  Cells are matched by label, so
/// a baseline survives axis reordering-free edits and sharded candidates
/// can be checked with allowMissing.
namespace mcs {

struct SweepCheckOptions {
  /// Allowed relative drift of every summary mean except wall_sec.  The
  /// per-seed pipeline is deterministic, so on the machine that produced
  /// the baseline this can be ~0; across compilers/libms keep some slack.
  double metricTol = 1e-6;
  /// Allowed relative wall-time *increase* (candidate may always be
  /// faster).  Wall time is noisy: keep this loose in CI.
  double wallTol = 0.5;
  /// Near-zero means compare against this absolute floor instead of a
  /// relative one, so 0 -> 1e-15 noise is not an infinite drift.
  double absFloor = 1e-9;
  /// Accept candidates that miss baseline cells (e.g. one shard of a
  /// campaign); extra candidate cells are always just noted.
  bool allowMissing = false;
};

struct SweepCheckResult {
  /// Failures: one human-readable line each.  Empty == gate passes.
  std::vector<std::string> violations;
  /// Non-fatal observations (extra cells, skipped metrics, ...).
  std::vector<std::string> notes;
  int cellsCompared = 0;
  int metricsCompared = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Compares two campaign JSONs (the campaignToJson layout).
[[nodiscard]] SweepCheckResult compareCampaigns(const Json& baseline, const Json& candidate,
                                                const SweepCheckOptions& opts);

/// Compares two bench-report JSONs (the BenchReport {"rows": [...]}
/// layout, e.g. BENCH_campaign.json).  Rows are matched by the
/// concatenation of their string-valued columns — reports gated this way
/// must key each row uniquely by its string columns (BENCH_campaign uses
/// mode + config).  Numeric columns then compare by name: columns
/// containing "wall" are a perf gate (only an increase beyond wallTol
/// fails), columns containing "speedup" are a floor (only a decrease
/// beyond wallTol fails — a slower speedup IS a perf regression), and
/// everything else is a metricTol drift check.
[[nodiscard]] SweepCheckResult compareBenchRows(const Json& baseline, const Json& candidate,
                                                const SweepCheckOptions& opts);

}  // namespace mcs
