#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.h"

/// Declarative parameter-sweep campaigns layered on the scenario engine.
///
/// A sweep file is the same `key = value` / `#`-comment format as a
/// scenario file, with three extra key forms:
///
///   name      = e2_scaling          # campaign name (BENCH_sweep_<name>.json)
///   base      = uniform_square      # start from a registry preset...
///   base_file = specs/dense.txt     # ...or from a scenario file
///   sweep.<key> = <values>          # a sweep axis over any scenario key
///   zip.<key>   = <values>          # paired axes: all zip.* advance together
///   <key>       = <value>           # fixed scenario override
///
/// Axis values are either a comma list (`1000,4000,16000`, also for enum
/// keys: `none,rayleigh`) or a numeric range `lo:hi:step` where the step
/// is additive (`1:9:+2` or `1:9:2`) or geometric (`1:8:*2`); a bare
/// `lo:hi` steps by +1.  Fixed overrides and axes apply to each cell in
/// file order, so e.g. `range = 1.0` placed after `sweep.alpha` rescales
/// the noise floor using the cell's alpha.
///
/// Expansion (sweep/expand.h) crosses every axis (the zip group counts as
/// one axis) into a deterministic row-major grid of ScenarioSpecs; the
/// campaign runner (sweep/runner.h) executes each cell as a seed batch.
namespace mcs {

enum class SweepAssignKind : std::uint8_t {
  Fixed = 0,  ///< One value applied to every cell.
  Axis,       ///< Own sweep dimension.
  Zip,        ///< Shares the single zipped dimension with all other Zip axes.
};

/// One `key = value(s)` line of a sweep file, in declaration order.
struct SweepAssignment {
  SweepAssignKind kind = SweepAssignKind::Fixed;
  std::string key;
  std::vector<std::string> values;  // Fixed: exactly one
};

/// A parsed sweep campaign: the resolved base scenario plus the ordered
/// assignment list.
struct SweepSpec {
  std::string name = "sweep";
  /// The resolved base scenario (registry preset or scenario file);
  /// defaults when the file names neither.
  ScenarioSpec base;
  /// What `base` / `base_file` named ("" when defaulted).
  std::string baseName;
  std::vector<SweepAssignment> assignments;

  /// Keys of the non-fixed assignments, in declaration order (zip keys
  /// included individually).  These are the campaign's axis columns.
  [[nodiscard]] std::vector<std::string> axisKeys() const;
};

/// Parses an axis value list: comma list or `lo:hi[:step]` range (see the
/// header comment for the syntax).  Returns false with a diagnostic for
/// malformed ranges, empty elements, or absurd expansions (> 10000).
bool parseAxisValues(const std::string& value, std::vector<std::string>& out, std::string& err);

/// Applies one sweep-file assignment.  `baseDir` anchors relative
/// `base_file` paths (pass the sweep file's directory, or "" for cwd).
bool applySweepKey(SweepSpec& spec, const std::string& key, const std::string& value,
                   const std::string& baseDir, std::string& err);

/// CLI-override variant: replaces any existing assignment of the same
/// scenario key instead of rejecting the duplicate, so
/// `sweep_runner --preset=e2_scaling --seeds=1` shrinks a campaign.
bool applySweepOverride(SweepSpec& spec, const std::string& key, const std::string& value,
                        std::string& err);

/// Parses sweep-file text (`sourceName` labels diagnostics).
bool parseSweepText(SweepSpec& spec, const std::string& text, const std::string& sourceName,
                    const std::string& baseDir, std::string& err);

/// Loads a sweep file; `base_file` paths resolve relative to it.
bool loadSweepFile(SweepSpec& spec, const std::string& path, std::string& err);

/// One-line human-readable summary (axis keys and sizes).
[[nodiscard]] std::string describeSweep(const SweepSpec& spec);

}  // namespace mcs
