#pragma once

#include <functional>
#include <string>
#include <vector>

#include "scenario/runner.h"
#include "sweep/expand.h"
#include "telemetry/probes.h"
#include "telemetry/telemetry.h"
#include "util/sketch.h"

/// The campaign runner: executes a sweep's cells as seed batches via
/// runScenarioBatch, with deterministic sharding for CI matrices and
/// resume-by-skipping for interrupted campaigns.
namespace mcs {

struct CampaignOptions {
  /// ThreadPool lanes per cell batch (<= 1: sequential seeds).
  int threads = 1;
  /// Shard of the cell grid to run (cellInShard); 0/1 = everything.
  int shardIndex = 0;
  int shardCount = 1;
  /// Skip cells whose per-cell JSON already exists under `outDir` and
  /// still matches the cell (same label / seed batch); mismatched or
  /// unreadable files are re-run.  Off by default: a fresh campaign
  /// overwrites stale cell files instead of trusting them.
  bool resume = false;
  /// Root for per-cell JSONs (`<outDir>/sweep_cells/<campaign>/cell_<i>.json`).
  std::string outDir = ".";
  /// Write per-cell JSONs as cells finish (the resume substrate; also
  /// what a crashed campaign leaves behind).  Tests turn this off.
  bool writeCellFiles = true;
  /// Emit a progress heartbeat on stderr after cells finish (cells done /
  /// cells-per-sec / ETA), throttled to roughly twice a second.  The CLIs
  /// turn this on; library callers and tests default off.
  bool heartbeat = false;
  /// Progress hook, called before each cell runs or is skipped.
  std::function<void(const SweepCell&, bool cached)> onCell;
  /// When non-empty, stream every finished (or resumed) cell into the
  /// columnar campaign store at this path (store/writer.h): one row per
  /// cell, written as cells complete, atomically renamed into place at
  /// the end.  Empty = no store.
  std::string storePath;
  /// Zero the wall_sec stats/sketch in store rows (the count survives):
  /// wall time is the single nondeterministic field, so stripping it
  /// makes the store byte-identical across runs and worker counts — the
  /// same canonicalization stripWallTimes applies to report JSON.
  bool storeStripWall = false;
};

/// One executed (or resumed) cell: the cell plus its seed batch.
struct CellResult {
  SweepCell cell;
  /// True when the batch was loaded from a per-cell JSON, not re-run.
  bool fromCache = false;
  /// The cell file's stored scenarioToKeyValues fingerprint (set by
  /// loadCellResult); resume only trusts a file whose fingerprint matches
  /// the freshly expanded cell exactly.
  std::string specFingerprint;
  ScenarioBatchResult batch;
  /// Telemetry delta attributed to this cell (counter totals plus
  /// per-phase timer seconds/counts, "tm."-prefixed), captured around the
  /// cell's seed batch when telemetry is enabled; empty otherwise — and
  /// empty means the cell JSON/CSV layout is byte-identical to the
  /// pre-telemetry engine.
  MetricMap telemetry;
  /// Probe aggregate attributed to this cell (margin/interference sketches
  /// plus the SlotSeries, telemetry/probes.h), captured by a
  /// resetProbes/snapshotProbes pair around the cell's seed batch when
  /// probes are armed; empty otherwise — and empty keeps the cell JSON
  /// byte-identical to the pre-probes layout.
  telemetry::ProbeState probes;

  /// The summary table the reports emit: slots, decode_rate,
  /// structure_slots, wall_sec, then every named protocol metric.
  /// Derived from cellStats(), so reports, RESULT frames, and store rows
  /// all read the same accumulators.
  [[nodiscard]] std::vector<std::pair<std::string, Summary>> summaries() const;
};

/// Per-metric streaming accumulators for one cell, in display order:
/// slots / decode_rate / structure_slots over non-failed seeds, wall_sec
/// over all seeds, then every named protocol metric over the non-failed
/// seeds that carry it.  The single per-cell statistics path — summaries()
/// renders it, the campaign workers serialize it, the store writes it.
[[nodiscard]] NamedStats cellStats(const CellResult& cell);

/// A campaign run: the shard's cells, in expansion order.
struct CampaignResult {
  std::string name;
  std::string baseName;
  std::string description;  // describeSweep at run time
  int totalCells = 0;       // full grid, not just this shard
  int shardIndex = 0;
  int shardCount = 1;
  std::vector<CellResult> cells;
  double wallSec = 0.0;

  [[nodiscard]] int failures() const noexcept {
    int f = 0;
    for (const CellResult& c : cells) f += c.batch.failures();
    return f;
  }
  [[nodiscard]] int cachedCells() const noexcept {
    int n = 0;
    for (const CellResult& c : cells) n += c.fromCache ? 1 : 0;
    return n;
  }
};

/// The per-cell JSON path used by resume and by writeCellFiles.
[[nodiscard]] std::string cellFilePath(const std::string& outDir, const std::string& campaign,
                                       int cellIndex);

/// Whether a loaded per-cell JSON is trustworthy as a cache of `cell`:
/// same label, same complete spec fingerprint (any base/fixed-key/axis
/// edit changes it), complete seed batch.  Shared by --resume here and by
/// the campaign coordinator's pre-lease cache pass.
[[nodiscard]] bool cellCacheMatches(const CellResult& cached, const SweepCell& cell);

/// Flattens a telemetry snapshot delta into `out` under a "tm." prefix
/// (counters as totals, timers as ".sec"/".count" pairs) — the per-cell
/// telemetry attribution used by both the in-process runner and the
/// campaign workers.
void recordCellTelemetry(const telemetry::MetricsSnapshot& delta, MetricMap& out);

/// Expands and runs the campaign (this shard's cells only).  Returns
/// false on expansion errors or unwritable cell files; per-seed failures
/// do NOT fail the run — they are recorded in the batch (check
/// CampaignResult::failures()).
bool runCampaign(const SweepSpec& spec, const CampaignOptions& opts, CampaignResult& out,
                 std::string& err);

}  // namespace mcs
