#include "sweep/spec.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scenario/registry.h"
#include "util/args.h"

namespace mcs {

namespace {

constexpr std::size_t kMaxAxisValues = 10000;

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Formats a generated range value so applyScenarioKey can parse it back:
/// integral values print without a decimal point (parseLong-compatible),
/// everything else with shortest round-trip formatting.
std::string formatAxisValue(double v) {
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

bool expandRange(const std::string& value, std::vector<std::string>& out, std::string& err) {
  // lo:hi[:step]; step `*k` geometric, `+d` or bare `d` additive.
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = value.find(':', start);
    parts.push_back(trim(value.substr(start, colon - start)));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 2 || parts.size() > 3) {
    err = "range \"" + value + "\": expected lo:hi or lo:hi:step";
    return false;
  }
  double lo = 0.0, hi = 0.0;
  if (!parseDouble(parts[0], lo) || !parseDouble(parts[1], hi)) {
    err = "range \"" + value + "\": malformed bound";
    return false;
  }
  if (hi < lo) {
    err = "range \"" + value + "\": hi < lo";
    return false;
  }
  bool geometric = false;
  double step = 1.0;
  if (parts.size() == 3) {
    std::string s = parts[2];
    if (!s.empty() && (s[0] == '*' || s[0] == '+')) {
      geometric = s[0] == '*';
      s = trim(s.substr(1));
    }
    if (!parseDouble(s, step)) {
      err = "range \"" + value + "\": malformed step \"" + parts[2] + "\"";
      return false;
    }
  }
  if (geometric) {
    if (step <= 1.0 || lo <= 0.0) {
      err = "range \"" + value + "\": geometric step needs factor > 1 and lo > 0";
      return false;
    }
  } else if (step <= 0.0) {
    err = "range \"" + value + "\": additive step must be > 0";
    return false;
  }
  // Inclusive upper bound with a relative epsilon so 1:8:*2 hits 8 and
  // 0:1:0.1 hits 1 despite accumulated rounding.
  const double slack = 1e-9 * std::max(1.0, std::abs(hi));
  for (double v = lo; v <= hi + slack; v = geometric ? v * step : v + step) {
    out.push_back(formatAxisValue(v));
    if (out.size() > kMaxAxisValues) {
      err = "range \"" + value + "\": expands to more than " +
            std::to_string(kMaxAxisValues) + " values";
      return false;
    }
  }
  return true;
}

/// Builds the assignment a `key = value` line describes (Fixed, or an
/// Axis/Zip for the sweep./zip. prefixes).  Validates the key name (not
/// the values: enum/range validity can depend on the rest of the cell)
/// by probing a scratch copy of the base.
bool makeAssignment(const SweepSpec& spec, const std::string& key, const std::string& value,
                    SweepAssignment& a, std::string& err) {
  a = SweepAssignment{};
  std::string scenarioKey = key;
  if (key.rfind("sweep.", 0) == 0) {
    a.kind = SweepAssignKind::Axis;
    scenarioKey = key.substr(6);
  } else if (key.rfind("zip.", 0) == 0) {
    a.kind = SweepAssignKind::Zip;
    scenarioKey = key.substr(4);
  }
  if (scenarioKey.empty()) {
    err = "key \"" + key + "\": missing scenario key after the prefix";
    return false;
  }
  a.key = scenarioKey;
  if (a.kind == SweepAssignKind::Fixed) {
    a.values = {value};
  } else if (!parseAxisValues(value, a.values, err)) {
    err = "key \"" + key + "\": " + err;
    return false;
  }
  ScenarioSpec scratch = spec.base;
  std::string probeErr;
  if (!applyScenarioKey(scratch, a.key, a.values.front(), probeErr) &&
      probeErr.rfind("unknown scenario key", 0) == 0) {
    err = "key \"" + key + "\": " + probeErr;
    return false;
  }
  return true;
}

}  // namespace

std::vector<std::string> SweepSpec::axisKeys() const {
  std::vector<std::string> keys;
  for (const SweepAssignment& a : assignments) {
    if (a.kind != SweepAssignKind::Fixed) keys.push_back(a.key);
  }
  return keys;
}

bool parseAxisValues(const std::string& value, std::vector<std::string>& out,
                     std::string& err) {
  out.clear();
  if (value.find(':') != std::string::npos) return expandRange(value, out, err);
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = value.find(',', start);
    const std::string item = trim(value.substr(start, comma - start));
    if (item.empty()) {
      err = "axis \"" + value + "\": empty element";
      return false;
    }
    out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

bool applySweepKey(SweepSpec& spec, const std::string& key, const std::string& value,
                   const std::string& baseDir, std::string& err) {
  if (key == "name") {
    spec.name = value;
    return true;
  }
  if (key == "base") {
    if (!ScenarioRegistry::find(value, spec.base)) {
      err = "unknown base preset \"" + value + "\"";
      return false;
    }
    spec.baseName = value;
    return true;
  }
  if (key == "base_file") {
    std::filesystem::path p(value);
    if (p.is_relative() && !baseDir.empty()) p = std::filesystem::path(baseDir) / p;
    if (!loadScenarioFile(spec.base, p.string(), err)) return false;
    spec.baseName = value;
    return true;
  }

  SweepAssignment a;
  if (!makeAssignment(spec, key, value, a, err)) return false;
  for (const SweepAssignment& have : spec.assignments) {
    if (have.key == a.key) {
      err = "key \"" + key + "\": scenario key \"" + a.key + "\" assigned twice";
      return false;
    }
  }
  spec.assignments.push_back(std::move(a));
  return true;
}

bool applySweepOverride(SweepSpec& spec, const std::string& key, const std::string& value,
                        std::string& err) {
  if (key == "name" || key == "base" || key == "base_file") {
    return applySweepKey(spec, key, value, "", err);
  }
  SweepAssignment a;
  if (!makeAssignment(spec, key, value, a, err)) return false;
  // Replace in place: the assignment keeps its declared position, so
  // file-order application (and the cell index/label order) survives the
  // override — an erase-and-append would silently reorder both.
  for (SweepAssignment& have : spec.assignments) {
    if (have.key == a.key) {
      have = std::move(a);
      return true;
    }
  }
  spec.assignments.push_back(std::move(a));
  return true;
}

bool parseSweepText(SweepSpec& spec, const std::string& text, const std::string& sourceName,
                    const std::string& baseDir, std::string& err) {
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      err = sourceName + ":" + std::to_string(lineNo) + ": expected `key = value`, got \"" +
            line + "\"";
      return false;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      err = sourceName + ":" + std::to_string(lineNo) + ": empty key or value";
      return false;
    }
    std::string keyErr;
    if (!applySweepKey(spec, key, value, baseDir, keyErr)) {
      err = sourceName + ":" + std::to_string(lineNo) + ": " + keyErr;
      return false;
    }
  }
  return true;
}

bool loadSweepFile(SweepSpec& spec, const std::string& path, std::string& err) {
  std::ifstream f(path);
  if (!f) {
    err = "cannot open sweep file \"" + path + "\"";
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return parseSweepText(spec, buf.str(), path,
                        std::filesystem::path(path).parent_path().string(), err);
}

std::string describeSweep(const SweepSpec& spec) {
  std::ostringstream os;
  os << spec.name << ": base=" << (spec.baseName.empty() ? "(defaults)" : spec.baseName);
  std::size_t zipLen = 0;
  std::string zipKeys;
  for (const SweepAssignment& a : spec.assignments) {
    if (a.kind == SweepAssignKind::Axis) {
      os << " " << a.key << "[" << a.values.size() << "]";
    } else if (a.kind == SweepAssignKind::Zip) {
      if (!zipKeys.empty()) zipKeys += "+";
      zipKeys += a.key;
      zipLen = std::max(zipLen, a.values.size());
    }
  }
  if (!zipKeys.empty()) os << " zip(" << zipKeys << ")[" << zipLen << "]";
  return os.str();
}

}  // namespace mcs
