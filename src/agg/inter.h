#pragma once

#include <cstdint>
#include <vector>

#include "agg/intra.h"
#include "proto/clustering.h"
#include "sim/simulator.h"

/// Inter-cluster aggregation on the constant-density dominator backbone
/// (§6, substituting for Bodlaender-Halldórsson-Mitra [2], Thm 3; see
/// DESIGN.md §3.2).
///
/// Backbone edges connect dominators at distance <= R_{eps/2}; this graph
/// is connected whenever the communication graph is, because
/// R_eps + 2 r_c <= R_{eps/2}.  Two modes:
///  * gossipAggregate — pipelined flooding for idempotent aggregates
///    (Max/Min), O(D + log n) rounds;
///  * treeAggregate — sink-rooted BFS tree with level-windowed
///    convergecast and a flooded downcast; exact for Sum.
namespace mcs {

struct InterResult {
  /// Per node id; meaningful at dominators (the agreed global aggregate).
  std::vector<double> valueAtDominator;
  std::uint64_t slots = 0;
  /// True iff every dominator reached the correct global value.
  bool converged = true;
};

/// `initial[d]` (dominator ids) holds each cluster's aggregate.
InterResult gossipAggregate(Simulator& sim, const Clustering& cl, const TdmaSchedule& tdma,
                            const std::vector<double>& initial, AggKind kind);

InterResult treeAggregate(Simulator& sim, const Clustering& cl, const TdmaSchedule& tdma,
                          const std::vector<double>& initial, AggKind kind);

/// Dominators broadcast `values[dominator]` to their clusters; on return
/// `values[v]` holds every node's received copy.  Returns slots used.
std::uint64_t broadcastToClusters(Simulator& sim, const Clustering& cl, const TdmaSchedule& tdma,
                                  std::vector<double>& values, int repeats = 2);

/// Ground-truth backbone diameter (hop count at radius R_{eps/2} among
/// dominators); used for round caps and by the experiment harness.
[[nodiscard]] int backboneDiameter(const Network& net, const Clustering& cl);

}  // namespace mcs
