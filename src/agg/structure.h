#pragma once

#include <cstdint>
#include <vector>

#include "proto/clustering.h"
#include "proto/reporter.h"
#include "sim/simulator.h"

/// The hierarchical aggregation structure of §5 (Theorem 10): dominating
/// set -> cluster coloring/TDMA -> cluster-size approximation -> reporter
/// election -> reporter tree.
namespace mcs {

/// Slot costs per pipeline stage (all values are medium slots).
struct StageCosts {
  std::uint64_t dominatingSet = 0;
  std::uint64_t clusterColoring = 0;
  std::uint64_t csa = 0;
  std::uint64_t reporters = 0;
  std::uint64_t uplink = 0;
  std::uint64_t tree = 0;
  std::uint64_t inter = 0;
  std::uint64_t broadcast = 0;

  [[nodiscard]] std::uint64_t structureTotal() const noexcept {
    return dominatingSet + clusterColoring + csa + reporters;
  }
  [[nodiscard]] std::uint64_t aggregationTotal() const noexcept {
    return uplink + tree + inter + broadcast;
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    return structureTotal() + aggregationTotal();
  }
};

struct AggregationStructure {
  Clustering clustering;
  TdmaSchedule tdma;
  /// Per node: CSA estimate of its cluster's dominatee count.
  std::vector<double> sizeEstimate;
  /// Per node: f_v, the number of channels its cluster uses.
  std::vector<int> fvOfNode;
  /// Per dominatee: its election channel (reporters: their own channel).
  std::vector<ChannelId> reporterChannel;
  std::vector<char> isReporter;
  StageCosts costs;

  [[nodiscard]] bool isFollower(NodeId v) const {
    const auto vi = static_cast<std::size_t>(v);
    return !clustering.isDominator[vi] && !isReporter[vi];
  }
};

enum class CsaVariant { Auto, Large, Small };

struct StructureOptions {
  /// Known upper bound DeltaHat on cluster size (<= 0: use n).
  int deltaHat = -1;
  CsaVariant csa = CsaVariant::Auto;
};

/// Runs the full §5 construction on `sim`.  Costs are recorded per stage.
AggregationStructure buildStructure(Simulator& sim, const StructureOptions& opts = {});

}  // namespace mcs
