#include "agg/structure.h"

#include <utility>

#include "proto/cluster_coloring.h"
#include "proto/csa.h"
#include "proto/dominating_set.h"

namespace mcs {

AggregationStructure buildStructure(Simulator& sim, const StructureOptions& opts) {
  AggregationStructure s;

  DominatingSetResult ds = buildDominatingSet(sim);
  s.clustering = std::move(ds.clustering);
  s.costs.dominatingSet = ds.slotsUsed;

  ClusterColoringResult cc = colorClusters(sim, s.clustering);
  s.costs.clusterColoring = cc.slotsUsed;
  s.tdma = TdmaSchedule::from(s.clustering);

  CsaResult csa;
  switch (opts.csa) {
    case CsaVariant::Large: csa = runCsaLarge(sim, s.clustering, opts.deltaHat); break;
    case CsaVariant::Small: csa = runCsaSmall(sim, s.clustering, opts.deltaHat); break;
    case CsaVariant::Auto: csa = runCsa(sim, s.clustering, opts.deltaHat); break;
  }
  s.sizeEstimate = std::move(csa.estimateOfNode);
  s.costs.csa = csa.slotsUsed;

  ReporterSetup rep = electReporters(sim, s.clustering, s.sizeEstimate);
  s.fvOfNode = std::move(rep.fvOfNode);
  s.reporterChannel = std::move(rep.channelOfNode);
  s.isReporter = std::move(rep.isReporter);
  s.costs.reporters = rep.slotsUsed;
  return s;
}

}  // namespace mcs
