#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "agg/structure.h"
#include "sim/simulator.h"

/// Intra-cluster aggregation (§6): the phased follower -> reporter uplink
/// with dominator-driven backoff (Lemmas 18-21) and the deterministic
/// reporter-tree convergecast (Lemma 16).
namespace mcs {

/// Aggregate functions.  Max/Min are idempotent (gossip-able on the
/// backbone); Sum requires exact tree aggregation.
enum class AggKind { Max, Min, Sum };

[[nodiscard]] double aggIdentity(AggKind kind) noexcept;
[[nodiscard]] double aggCombine(AggKind kind, double a, double b) noexcept;

struct UplinkMetrics {
  std::uint64_t slots = 0;
  /// Phase counts across all clusters (Lemma 20/21 shape checks).
  int increasingPhases = 0;
  int unchangingPhases = 0;
  int maxPhasesAnyCluster = 0;
  /// Ground-truth max over (cluster, phase) of contention / f_v; Lemma 19
  /// says this stays <= lambda whp.
  double maxContentionRatio = 0.0;
  bool allDelivered = true;
  /// Followers whose message was never acknowledged (empty on success).
  std::vector<NodeId> undelivered;
};

/// Runs the uplink until every follower's message is acknowledged by a
/// reporter of its cluster (or the phase cap is hit).
///
/// `makeMsg(v)` builds follower v's payload (type/a are overwritten with
/// Data/cluster-id).  `onDeliver(reporter, msg)` fires exactly once per
/// follower, at the acknowledging reporter (acks dedupe retransmissions).
/// If `reporterChannelOfFollower` is non-null it receives, per follower,
/// the channel of the reporter that acknowledged it (kNoChannel if none) —
/// the acks carry it for the coloring's procedure 4 (§7).
UplinkMetrics runFollowerUplink(Simulator& sim, const AggregationStructure& s,
                                const std::function<Message(NodeId)>& makeMsg,
                                const std::function<void(NodeId, const Message&)>& onDeliver,
                                std::vector<ChannelId>* reporterChannelOfFollower = nullptr);

struct IntraResult {
  /// Per dominator id: the aggregate of its whole cluster.
  std::vector<double> clusterValue;
  UplinkMetrics uplink;
  std::uint64_t treeSlots = 0;
  bool treeComplete = true;
};

/// Full intra-cluster aggregation of `values` (one per node): uplink to
/// reporters, then convergecast over the reporter tree to the dominator.
IntraResult aggregateIntra(Simulator& sim, const AggregationStructure& s,
                           std::span<const double> values, AggKind kind);

}  // namespace mcs
