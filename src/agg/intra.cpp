#include "agg/intra.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "proto/heap_tree.h"

namespace mcs {

double aggIdentity(AggKind kind) noexcept {
  switch (kind) {
    case AggKind::Max: return -std::numeric_limits<double>::infinity();
    case AggKind::Min: return std::numeric_limits<double>::infinity();
    case AggKind::Sum: return 0.0;
  }
  return 0.0;
}

double aggCombine(AggKind kind, double a, double b) noexcept {
  switch (kind) {
    case AggKind::Max: return a > b ? a : b;
    case AggKind::Min: return a < b ? a : b;
    case AggKind::Sum: return a + b;
  }
  return a;
}

UplinkMetrics runFollowerUplink(Simulator& sim, const AggregationStructure& s,
                                const std::function<Message(NodeId)>& makeMsg,
                                const std::function<void(NodeId, const Message&)>& onDeliver,
                                std::vector<ChannelId>* reporterChannelOfFollower) {
  const Network& net = sim.network();
  const Tuning& tun = net.tuning();
  const int n = net.size();
  const Clustering& cl = s.clustering;
  const TdmaSchedule& tdma = s.tdma;

  const int gamma2 = tun.lnRounds(tun.aggGamma2, n, 4);  // Gamma: data rounds per phase
  const int phaseLen = gamma2 + 1;                       // + notify round
  const int omega2 = std::max(2, tun.lnRounds(tun.aggOmega2, n));

  UplinkMetrics met;

  std::vector<char> isFollower(static_cast<std::size_t>(n), 0);
  std::vector<char> done(static_cast<std::size_t>(n), 0);
  std::vector<double> prob(static_cast<std::size_t>(n), 0.0);
  int undone = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (s.isFollower(v)) {
      isFollower[vi] = 1;
      // p_u = lambda f_v / |C_v| (§6(i)), from the node's own CSA view.
      prob[vi] = std::min(0.5, tun.aggLambda * static_cast<double>(s.fvOfNode[vi]) /
                                   std::max(1.0, s.sizeEstimate[vi]));
      ++undone;
    }
  }

  // Per-round scratch.
  // deliveredTo[f]: the unique reporter that owns follower f's message.
  // Only that reporter acks f, so retransmissions after a lost ack cannot
  // migrate f to another reporter (lists and ack channels stay coherent).
  std::vector<NodeId> deliveredTo(static_cast<std::size_t>(n), kNoNode);
  std::vector<int> activeRounds(static_cast<std::size_t>(n), 0);
  std::vector<int> domCount(static_cast<std::size_t>(n), 0);  // dominator phase counter
  std::vector<ChannelId> sentOn(static_cast<std::size_t>(n), kNoChannel);
  std::vector<NodeId> pendingAck(static_cast<std::size_t>(n), kNoNode);
  std::vector<char> gotBackoff(static_cast<std::size_t>(n), 0);

  // Ground-truth contention metric (Lemma 19), recomputed at phase ends.
  const auto recordContention = [&]() {
    std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (isFollower[vi] && !done[vi]) {
        sum[static_cast<std::size_t>(cl.dominatorOf[vi])] += prob[vi];
      }
    }
    for (const NodeId d : cl.dominators) {
      const double ratio =
          sum[static_cast<std::size_t>(d)] /
          static_cast<double>(std::max(1, s.fvOfNode[static_cast<std::size_t>(d)]));
      met.maxContentionRatio = std::max(met.maxContentionRatio, ratio);
    }
  };
  recordContention();

  const long maxRounds =
      static_cast<long>(tun.aggMaxPhases) * phaseLen * std::max(1, tdma.period);
  long round = 0;
  while (undone > 0 && round < maxRounds) {
    // ---- Slot 1: data (or, on notify rounds, the backoff broadcast) ------
    std::fill(sentOn.begin(), sentOn.end(), kNoChannel);
    std::fill(pendingAck.begin(), pendingAck.end(), kNoNode);
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!tdma.active(v, round)) return Intent::idle();
          const int pos = activeRounds[vi] % phaseLen;
          if (pos == gamma2) {  // notify round
            if (cl.isDominator[vi]) {
              const bool backoff = domCount[vi] >= omega2;
              domCount[vi] = 0;
              if (backoff) {
                ++met.unchangingPhases;
                Message m;
                m.type = MsgType::Backoff;
                m.src = v;
                return Intent::transmit(0, m);
              }
              ++met.increasingPhases;
              return Intent::idle();
            }
            if (isFollower[vi]) return Intent::listen(0);
            return Intent::idle();
          }
          // Data round.
          if (isFollower[vi] && !done[vi]) {
            const int fv = std::max(1, s.fvOfNode[vi]);
            if (sim.rng(v).bernoulli(prob[vi])) {
              const auto c =
                  static_cast<ChannelId>(sim.rng(v).below(static_cast<std::uint64_t>(fv)));
              sentOn[vi] = c;
              Message m = makeMsg(v);
              m.type = MsgType::Data;
              m.src = v;
              m.a = cl.dominatorOf[vi];
              return Intent::transmit(c, m);
            }
            return Intent::idle();
          }
          if (s.isReporter[vi]) return Intent::listen(s.reporterChannel[vi]);
          if (cl.isDominator[vi]) return Intent::listen(0);
          return Intent::idle();
        },
        [&](NodeId v, const Reception& r) {
          const auto vi = static_cast<std::size_t>(v);
          if (!r.received) return;
          const int pos = activeRounds[vi] % phaseLen;
          if (pos == gamma2) {
            if (r.msg.type == MsgType::Backoff && isFollower[vi] &&
                r.msg.src == cl.dominatorOf[vi]) {
              gotBackoff[vi] = 1;
            }
            return;
          }
          if (r.msg.type != MsgType::Data) return;
          if (s.isReporter[vi] && r.msg.a == cl.dominatorOf[vi]) {
            // Exactly-once delivery: retransmissions after a lost ack are
            // re-acked by the owning reporter only (Lemma 9 treats
            // in-cluster acks as reliable; see DESIGN.md).
            const auto src = static_cast<std::size_t>(r.msg.src);
            if (deliveredTo[src] == kNoNode) {
              deliveredTo[src] = v;
              onDeliver(v, r.msg);
            }
            if (deliveredTo[src] == v) pendingAck[vi] = r.msg.src;
          } else if (cl.isDominator[vi] && r.msg.a == v) {
            ++domCount[vi];
          }
        });
    ++met.slots;

    // ---- Slot 2: acks (idle on notify rounds) -----------------------------
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!tdma.active(v, round)) return Intent::idle();
          if (activeRounds[vi] % phaseLen == gamma2) return Intent::idle();
          // 0.85: if a faulty election left duplicate reporters on one
          // channel, deterministic simultaneous acks would collide forever.
          if (pendingAck[vi] != kNoNode && sim.rng(v).bernoulli(0.85)) {
            Message m;
            m.type = MsgType::DataAck;
            m.src = v;
            m.dst = pendingAck[vi];
            m.a = s.reporterChannel[vi];  // tells the follower its reporter's channel
            return Intent::transmit(s.reporterChannel[vi], m);
          }
          if (sentOn[vi] != kNoChannel) return Intent::listen(sentOn[vi]);
          return Intent::idle();
        },
        [&](NodeId v, const Reception& r) {
          const auto vi = static_cast<std::size_t>(v);
          if (!r.received || r.msg.type != MsgType::DataAck || r.msg.dst != v) return;
          if (!done[vi]) {
            done[vi] = 1;
            --undone;
            if (reporterChannelOfFollower != nullptr) {
              (*reporterChannelOfFollower)[vi] = static_cast<ChannelId>(r.msg.a);
            }
          }
        });
    ++met.slots;

    // ---- Phase bookkeeping ------------------------------------------------
    bool phaseBoundary = false;
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (!tdma.active(v, round)) continue;
      if (activeRounds[vi] % phaseLen == gamma2 && isFollower[vi]) {
        if (gotBackoff[vi]) {
          gotBackoff[vi] = 0;
        } else {
          prob[vi] = std::min(0.5, prob[vi] * 2.0);
        }
        phaseBoundary = true;
      }
      ++activeRounds[vi];
    }
    if (phaseBoundary) recordContention();
    ++round;
  }

  int maxPhases = 0;
  for (const NodeId d : cl.dominators) {
    maxPhases = std::max(maxPhases, activeRounds[static_cast<std::size_t>(d)] / phaseLen);
  }
  met.maxPhasesAnyCluster = maxPhases;
  met.allDelivered = undone == 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (isFollower[vi] && !done[vi]) met.undelivered.push_back(v);
  }
  return met;
}

IntraResult aggregateIntra(Simulator& sim, const AggregationStructure& s,
                           std::span<const double> values, AggKind kind) {
  const Network& net = sim.network();
  const int n = net.size();
  const Clustering& cl = s.clustering;
  const TdmaSchedule& tdma = s.tdma;
  assert(static_cast<int>(values.size()) == n);

  IntraResult out;
  out.clusterValue.assign(static_cast<std::size_t>(n), aggIdentity(kind));

  // base[v]: the node's own value combined with its delivered followers.
  std::vector<double> base(static_cast<std::size_t>(n), aggIdentity(kind));
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (s.isReporter[vi] || cl.isDominator[vi]) base[vi] = values[vi];
  }

  out.uplink = runFollowerUplink(
      sim, s,
      [&](NodeId v) {
        Message m;
        m.x = values[static_cast<std::size_t>(v)];
        return m;
      },
      [&](NodeId reporter, const Message& m) {
        const auto ri = static_cast<std::size_t>(reporter);
        base[ri] = aggCombine(kind, base[ri], m.x);
      });

  // ---- Reporter-tree convergecast (Lemma 16) -----------------------------
  // Deterministic heap schedule; two passes make rare cross-cluster decode
  // failures harmless.  Parents keep the latest value per child slot, so a
  // retransmission *replaces* the child's contribution (exact for Sum).
  const int F = sim.numChannels();
  const int maxLevel = heapMaxLevel(F);
  std::vector<std::vector<double>> childVal(static_cast<std::size_t>(n));
  std::vector<std::vector<char>> childSeen(static_cast<std::size_t>(n));
  const auto heapOf = [&](NodeId v) -> int {
    const auto vi = static_cast<std::size_t>(v);
    if (cl.isDominator[vi]) return 0;
    if (s.isReporter[vi]) return static_cast<int>(s.reporterChannel[vi]) + 1;
    return -1;
  };
  for (NodeId v = 0; v < n; ++v) {
    if (heapOf(v) >= 0) {
      childVal[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(F) + 2, 0.0);
      childSeen[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(F) + 2, 0);
    }
  }
  const auto valueOf = [&](NodeId v) {
    const auto vi = static_cast<std::size_t>(v);
    double acc = base[vi];
    for (std::size_t k = 0; k < childVal[vi].size(); ++k) {
      if (childSeen[vi][k]) acc = aggCombine(kind, acc, childVal[vi][k]);
    }
    return acc;
  };

  std::vector<NodeId> ackTo(static_cast<std::size_t>(n), kNoNode);
  std::vector<char> delivered(static_cast<std::size_t>(n), 0);
  const int passes = 3;
  long round = 0;
  for (int pass = 0; pass < passes; ++pass) {
    std::fill(delivered.begin(), delivered.end(), 0);
    for (int level = maxLevel; level >= 0; --level) {
      for (long cycle = 0; cycle < tdma.period; ++cycle, ++round) {
        for (const int parity : {0, 1}) {
          std::fill(ackTo.begin(), ackTo.end(), kNoNode);
          sim.step(
              [&](NodeId v) -> Intent {
                const auto vi = static_cast<std::size_t>(v);
                const int k = heapOf(v);
                if (k < 0 || !tdma.active(v, round)) return Intent::idle();
                // 0.9: a same-color cluster's tree would otherwise collide
                // deterministically in every pass.  Parents replace child
                // values, so retransmissions stay exact for Sum.
                if (k >= 1 && heapLevel(k) == level && (k & 1) == parity && !delivered[vi] &&
                    sim.rng(v).bernoulli(0.9)) {
                  Message m;
                  m.type = MsgType::TreeUp;
                  m.src = v;
                  m.a = k;
                  m.b = cl.dominatorOf[vi];
                  m.x = valueOf(v);
                  return Intent::transmit(heapUplinkChannel(k), m);
                }
                // Parents of this level's children listen on their channel.
                if (heapLevel(std::max(1, k * 2)) == level) {
                  return Intent::listen(heapChannel(k));
                }
                return Intent::idle();
              },
              [&](NodeId v, const Reception& r) {
                const auto vi = static_cast<std::size_t>(v);
                if (!r.received || r.msg.type != MsgType::TreeUp) return;
                if (r.msg.b != cl.dominatorOf[vi]) return;  // other cluster
                const int childK = static_cast<int>(r.msg.a);
                if (heapParent(childK) != heapOf(v)) return;
                childVal[vi][static_cast<std::size_t>(childK)] = r.msg.x;
                childSeen[vi][static_cast<std::size_t>(childK)] = 1;
                ackTo[vi] = r.msg.src;
              });
          ++out.treeSlots;

          sim.step(
              [&](NodeId v) -> Intent {
                const auto vi = static_cast<std::size_t>(v);
                const int k = heapOf(v);
                if (k < 0 || !tdma.active(v, round)) return Intent::idle();
                if (ackTo[vi] != kNoNode) {
                  Message m;
                  m.type = MsgType::TreeUpAck;
                  m.src = v;
                  m.dst = ackTo[vi];
                  return Intent::transmit(heapChannel(k), m);
                }
                if (k >= 1 && heapLevel(k) == level && (k & 1) == parity && !delivered[vi]) {
                  return Intent::listen(heapUplinkChannel(k));
                }
                return Intent::idle();
              },
              [&](NodeId v, const Reception& r) {
                const auto vi = static_cast<std::size_t>(v);
                if (r.received && r.msg.type == MsgType::TreeUpAck && r.msg.dst == v) {
                  delivered[vi] = 1;
                }
              });
          ++out.treeSlots;
        }
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (s.isReporter[vi] && !delivered[vi]) out.treeComplete = false;
  }

  // Fallback for idempotent aggregates: a reporter whose heap parent is
  // missing (its channel elected nobody — probability e^{-c1 ln n} per
  // channel, negligible at the paper's c1 but possible at practical
  // tunings) delivers its subtotal directly to the dominator on channel 0.
  // Safe for Max/Min because double-merging is harmless; Sum relies on c1
  // keeping channels nonempty (see DESIGN.md).
  if (!out.treeComplete && kind != AggKind::Sum) {
    const int rounds = net.tuning().lnRounds(2.0, n, 8) * std::max(1, tdma.period);
    for (int t = 0; t < rounds; ++t, ++round) {
      sim.step(
          [&](NodeId v) -> Intent {
            const auto vi = static_cast<std::size_t>(v);
            if (!tdma.active(v, round)) return Intent::idle();
            if (s.isReporter[vi] && !delivered[vi] && sim.rng(v).bernoulli(0.4)) {
              Message m;
              m.type = MsgType::TreeUp;
              m.src = v;
              m.a = 0;  // direct delivery
              m.b = cl.dominatorOf[vi];
              m.x = valueOf(v);
              return Intent::transmit(0, m);
            }
            if (cl.isDominator[vi]) return Intent::listen(0);
            return Intent::idle();
          },
          [&](NodeId v, const Reception& r) {
            const auto vi = static_cast<std::size_t>(v);
            if (!r.received || r.msg.type != MsgType::TreeUp || !cl.isDominator[vi]) return;
            if (r.msg.b != v) return;
            base[vi] = aggCombine(kind, base[vi], r.msg.x);
          });
      ++out.treeSlots;
    }
  }

  for (const NodeId d : cl.dominators) {
    out.clusterValue[static_cast<std::size_t>(d)] = valueOf(d);
  }
  return out;
}

}  // namespace mcs
