#pragma once

#include <span>

#include "agg/inter.h"
#include "agg/intra.h"
#include "agg/structure.h"

/// The end-to-end data aggregation pipeline (§6, Theorem 22): every node
/// contributes a value; every node learns the aggregate.
namespace mcs {

struct AggregateRun {
  /// Final value at every node after the cluster broadcast.
  std::vector<double> valueAtNode;
  /// Aggregation-phase slot costs (structure costs live on the structure).
  StageCosts costs;
  UplinkMetrics uplink;
  /// True iff the uplink, tree, backbone and broadcast all completed and
  /// every node holds the correct aggregate (validated by the harness).
  bool delivered = true;
};

/// Runs aggregation on an already-built structure.  Max/Min ride the
/// gossip backbone (O(D + log n)); Sum uses the exact backbone tree.
AggregateRun runAggregation(Simulator& sim, const AggregationStructure& s,
                            std::span<const double> values, AggKind kind);

/// Convenience: builds the structure, then aggregates.  The structure's
/// stage costs are merged into the returned costs.
AggregateRun buildAndAggregate(Simulator& sim, std::span<const double> values, AggKind kind,
                               const StructureOptions& opts = {});

/// Ground-truth aggregate of `values` (for validation).
[[nodiscard]] double aggregateGroundTruth(std::span<const double> values, AggKind kind);

/// Whether a delivered aggregate matches the ground truth.  Max/Min copy
/// values without combining, so the match is bitwise; Sum combines in
/// tree order, so a small relative tolerance absorbs the floating-point
/// reassociation against the linear ground-truth sum.
[[nodiscard]] bool aggregateMatches(double got, double truth, AggKind kind);

}  // namespace mcs
