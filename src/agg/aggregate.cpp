#include "agg/aggregate.h"

#include <cmath>

namespace mcs {

double aggregateGroundTruth(std::span<const double> values, AggKind kind) {
  double acc = aggIdentity(kind);
  for (const double x : values) acc = aggCombine(kind, acc, x);
  return acc;
}

bool aggregateMatches(double got, double truth, AggKind kind) {
  if (kind == AggKind::Sum) {
    return std::abs(got - truth) <= 1e-9 * std::max(1.0, std::abs(truth));
  }
  return got == truth;
}

AggregateRun runAggregation(Simulator& sim, const AggregationStructure& s,
                            std::span<const double> values, AggKind kind) {
  AggregateRun run;

  IntraResult intra = aggregateIntra(sim, s, values, kind);
  run.costs.uplink = intra.uplink.slots;
  run.costs.tree = intra.treeSlots;
  run.uplink = intra.uplink;
  // treeComplete is a diagnostic (missing acks); correctness is judged
  // against the ground truth below.
  run.delivered = intra.uplink.allDelivered;

  InterResult inter = kind == AggKind::Sum
                          ? treeAggregate(sim, s.clustering, s.tdma, intra.clusterValue, kind)
                          : gossipAggregate(sim, s.clustering, s.tdma, intra.clusterValue, kind);
  run.costs.inter = inter.slots;
  run.delivered = run.delivered && inter.converged;

  run.valueAtNode = inter.valueAtDominator;
  run.costs.broadcast = broadcastToClusters(sim, s.clustering, s.tdma, run.valueAtNode, 6);

  const double truth = aggregateGroundTruth(values, kind);
  for (const double x : run.valueAtNode) {
    // Tolerant comparison: Sum accumulates in tree order, which need not
    // match the ground truth's sequential rounding.
    if (std::abs(x - truth) > 1e-9 * std::max(1.0, std::abs(truth))) {
      run.delivered = false;
      break;
    }
  }
  return run;
}

AggregateRun buildAndAggregate(Simulator& sim, std::span<const double> values, AggKind kind,
                               const StructureOptions& opts) {
  const AggregationStructure s = buildStructure(sim, opts);
  AggregateRun run = runAggregation(sim, s, values, kind);
  run.costs.dominatingSet = s.costs.dominatingSet;
  run.costs.clusterColoring = s.costs.clusterColoring;
  run.costs.csa = s.costs.csa;
  run.costs.reporters = s.costs.reporters;
  return run;
}

}  // namespace mcs
