#include "agg/inter.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "sim/comm_graph.h"

namespace mcs {
namespace {

/// All dominators hold the combine of every dominator's `cur`?
bool allReached(const Clustering& cl, const std::vector<double>& cur, double target) {
  for (const NodeId d : cl.dominators) {
    if (cur[static_cast<std::size_t>(d)] != target) return false;
  }
  return true;
}

}  // namespace

int backboneDiameter(const Network& net, const Clustering& cl) {
  std::vector<Vec2> pts;
  pts.reserve(cl.dominators.size());
  for (const NodeId d : cl.dominators) pts.push_back(net.position(d));
  const CommGraph bb(pts, net.rEpsHalf());
  return bb.diameterExact();
}

InterResult gossipAggregate(Simulator& sim, const Clustering& cl, const TdmaSchedule& tdma,
                            const std::vector<double>& initial, AggKind kind) {
  const Network& net = sim.network();
  const Tuning& tun = net.tuning();
  const int n = net.size();

  InterResult out;
  out.valueAtDominator.assign(static_cast<std::size_t>(n), aggIdentity(kind));
  double target = aggIdentity(kind);
  for (const NodeId d : cl.dominators) {
    out.valueAtDominator[static_cast<std::size_t>(d)] = initial[static_cast<std::size_t>(d)];
    target = aggCombine(kind, target, initial[static_cast<std::size_t>(d)]);
  }
  if (cl.dominators.size() <= 1) return out;

  const int dbb = backboneDiameter(net, cl);
  const long cap = static_cast<long>(
      tun.interSlack * static_cast<double>(tdma.period) *
      static_cast<double>(dbb + tun.lnRounds(tun.gammaInter, n)) * (1.0 / tun.interTxProb));

  std::vector<double>& cur = out.valueAtDominator;
  long round = 0;
  while (!allReached(cl, cur, target) && round < cap) {
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!cl.isDominator[vi]) return Intent::idle();
          if (tdma.active(v, round) && sim.rng(v).bernoulli(tun.interTxProb)) {
            Message m;
            m.type = MsgType::Beacon;
            m.src = v;
            m.x = cur[vi];
            return Intent::transmit(0, m);
          }
          return Intent::listen(0);
        },
        [&](NodeId v, const Reception& r) {
          if (!r.received || r.msg.type != MsgType::Beacon) return;
          const auto vi = static_cast<std::size_t>(v);
          cur[vi] = aggCombine(kind, cur[vi], r.msg.x);
        });
    ++round;
    ++out.slots;
  }
  out.converged = allReached(cl, cur, target);
  return out;
}

InterResult treeAggregate(Simulator& sim, const Clustering& cl, const TdmaSchedule& tdma,
                          const std::vector<double>& initial, AggKind kind) {
  const Network& net = sim.network();
  const Tuning& tun = net.tuning();
  const SinrBounds& kb = net.bounds();
  const int n = net.size();

  InterResult out;
  out.valueAtDominator.assign(static_cast<std::size_t>(n), aggIdentity(kind));
  if (cl.dominators.empty()) return out;
  if (cl.dominators.size() == 1) {
    const NodeId d = cl.dominators.front();
    out.valueAtDominator[static_cast<std::size_t>(d)] = initial[static_cast<std::size_t>(d)];
    return out;
  }

  const int dbb = backboneDiameter(net, cl);
  const NodeId root = cl.dominators.front();

  std::vector<int> level(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> parent(static_cast<std::size_t>(n), kNoNode);
  level[static_cast<std::size_t>(root)] = 0;

  // ---- Stage 1: beacon flood builds the BFS tree -------------------------
  const long floodCap = static_cast<long>(
      tun.interSlack * static_cast<double>(tdma.period) *
      static_cast<double>(dbb + tun.lnRounds(tun.gammaInter, n)) * (1.0 / tun.interTxProb));
  const auto allLeveled = [&]() {
    for (const NodeId d : cl.dominators) {
      if (level[static_cast<std::size_t>(d)] < 0) return false;
    }
    return true;
  };
  long round = 0;
  while (!allLeveled() && round < floodCap) {
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!cl.isDominator[vi]) return Intent::idle();
          if (level[vi] >= 0 && tdma.active(v, round) &&
              sim.rng(v).bernoulli(tun.interTxProb)) {
            Message m;
            m.type = MsgType::Beacon;
            m.src = v;
            m.a = level[vi];
            return Intent::transmit(0, m);
          }
          return Intent::listen(0);
        },
        [&](NodeId v, const Reception& r) {
          const auto vi = static_cast<std::size_t>(v);
          if (!r.received || r.msg.type != MsgType::Beacon || level[vi] >= 0) return;
          // Only adopt backbone-length edges (<= R_{eps/2}).
          if (kb.distanceUpper(r.signalPower) <= net.rEpsHalf()) {
            level[vi] = static_cast<int>(r.msg.a) + 1;
            parent[vi] = r.msg.src;
          }
        });
    ++round;
    ++out.slots;
  }
  if (!allLeveled()) {
    out.converged = false;
    return out;
  }

  // ---- Stage 2: level-windowed convergecast ------------------------------
  int maxLevel = 0;
  for (const NodeId d : cl.dominators) {
    maxLevel = std::max(maxLevel, level[static_cast<std::size_t>(d)]);
  }
  // Latest value per child (replace semantics: exact for Sum under
  // retransmissions).
  std::vector<std::unordered_map<NodeId, double>> childVal(static_cast<std::size_t>(n));
  const auto subtotal = [&](NodeId v) {
    const auto vi = static_cast<std::size_t>(v);
    double acc = initial[vi];
    for (const auto& [child, x] : childVal[vi]) acc = aggCombine(kind, acc, x);
    return acc;
  };

  for (int lv = maxLevel; lv >= 1; --lv) {
    // Floor of 24 active rounds: at tiny n the log-window would leave a
    // node a ~20% chance of never transmitting within its level.
    const long activeRounds = std::max<long>(
        24, static_cast<long>(tun.interLevelWindow * tun.lnFactor *
                              std::log(std::max(2.0, static_cast<double>(n))) /
                              tun.interTxProb));
    const long window = activeRounds * tdma.period + tdma.period;
    for (long w = 0; w < window; ++w, ++round) {
      sim.step(
          [&](NodeId v) -> Intent {
            const auto vi = static_cast<std::size_t>(v);
            if (!cl.isDominator[vi]) return Intent::idle();
            if (level[vi] == lv && tdma.active(v, round) &&
                sim.rng(v).bernoulli(tun.interTxProb)) {
              Message m;
              m.type = MsgType::InterUp;
              m.src = v;
              m.dst = parent[vi];
              m.x = subtotal(v);
              return Intent::transmit(0, m);
            }
            return Intent::listen(0);
          },
          [&](NodeId v, const Reception& r) {
            if (!r.received || r.msg.type != MsgType::InterUp || r.msg.dst != v) return;
            childVal[static_cast<std::size_t>(v)][r.msg.src] = r.msg.x;
          });
      ++out.slots;
    }
  }

  const double total = subtotal(root);

  // ---- Stage 3: flooded downcast of the result ----------------------------
  std::vector<double>& have = out.valueAtDominator;
  std::vector<char> gotResult(static_cast<std::size_t>(n), 0);
  gotResult[static_cast<std::size_t>(root)] = 1;
  have[static_cast<std::size_t>(root)] = total;
  const auto allHave = [&]() {
    for (const NodeId d : cl.dominators) {
      if (!gotResult[static_cast<std::size_t>(d)]) return false;
    }
    return true;
  };
  long downRound = 0;
  while (!allHave() && downRound < floodCap) {
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!cl.isDominator[vi]) return Intent::idle();
          if (gotResult[vi] && tdma.active(v, downRound) &&
              sim.rng(v).bernoulli(tun.interTxProb)) {
            Message m;
            m.type = MsgType::InterDown;
            m.src = v;
            m.x = have[vi];
            return Intent::transmit(0, m);
          }
          return Intent::listen(0);
        },
        [&](NodeId v, const Reception& r) {
          const auto vi = static_cast<std::size_t>(v);
          if (!r.received || r.msg.type != MsgType::InterDown || gotResult[vi]) return;
          have[vi] = r.msg.x;
          gotResult[vi] = 1;
        });
    ++downRound;
    ++out.slots;
  }
  out.converged = allHave();

  // The convergecast is only exact if every dominator's subtotal reached
  // its parent; validate against the ground truth.
  if (out.converged) {
    double expect = aggIdentity(kind);
    for (const NodeId d : cl.dominators) {
      expect = aggCombine(kind, expect, initial[static_cast<std::size_t>(d)]);
    }
    // Tolerant: the convergecast accumulates in tree order, which rounds
    // differently from this sequential reference.
    if (std::abs(total - expect) > 1e-9 * std::max(1.0, std::abs(expect))) {
      out.converged = false;
    }
  }
  return out;
}

std::uint64_t broadcastToClusters(Simulator& sim, const Clustering& cl, const TdmaSchedule& tdma,
                                  std::vector<double>& values, int repeats) {
  std::uint64_t slots = 0;
  for (long round = 0; round < static_cast<long>(repeats) * tdma.period; ++round) {
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!tdma.active(v, round)) return Intent::idle();
          // 0.85: a rare same-color neighbor pair (coloring failure) would
          // otherwise collide identically in every repeat.
          if (cl.isDominator[vi] && sim.rng(v).bernoulli(0.85)) {
            Message m;
            m.type = MsgType::InterDown;
            m.src = v;
            m.x = values[vi];
            return Intent::transmit(0, m);
          }
          return Intent::listen(0);
        },
        [&](NodeId v, const Reception& r) {
          if (r.received && r.msg.type == MsgType::InterDown &&
              r.msg.src == cl.dominatorOf[static_cast<std::size_t>(v)]) {
            values[static_cast<std::size_t>(v)] = r.msg.x;
          }
        });
    ++slots;
  }
  return slots;
}

}  // namespace mcs
