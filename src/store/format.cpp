#include "store/format.h"

#include <cstring>

namespace mcs::store {

namespace {

template <typename T>
void appendRaw(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
bool readRaw(const char*& p, const char* end, T& v) {
  if (static_cast<std::size_t>(end - p) < sizeof(T)) return false;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return true;
}

}  // namespace

std::vector<std::uint32_t> columnLayout(std::uint32_t axisCount, std::uint32_t metricCount) {
  std::vector<std::uint32_t> layout;
  layout.reserve(7 + axisCount + static_cast<std::size_t>(metricCount) * kMetricFields + 4);
  layout.push_back(4);  // cell_index
  layout.push_back(4);  // label_id
  for (std::uint32_t a = 0; a < axisCount; ++a) layout.push_back(4);
  layout.push_back(4);  // seeds
  layout.push_back(4);  // failures
  layout.push_back(4);  // delivered
  layout.push_back(4);  // valid
  layout.push_back(4);  // invalid
  for (std::uint32_t m = 0; m < metricCount; ++m) {
    layout.push_back(8);  // count
    layout.push_back(8);  // mean
    layout.push_back(8);  // m2
    layout.push_back(8);  // min
    layout.push_back(8);  // max
    layout.push_back(8);  // sum
    layout.push_back(8);  // q_off
    layout.push_back(4);  // q_len
  }
  layout.push_back(8);  // tm_off
  layout.push_back(4);  // tm_len
  layout.push_back(8);  // pb_off
  layout.push_back(4);  // pb_len
  return layout;
}

std::vector<std::size_t> rowFieldOffsets(const std::vector<std::uint32_t>& layout) {
  std::vector<std::size_t> offsets;
  offsets.reserve(layout.size());
  std::size_t off = 0;
  for (std::uint32_t size : layout) {
    offsets.push_back(off);
    off += size;
  }
  return offsets;
}

std::size_t rowBytes(const std::vector<std::uint32_t>& layout) {
  std::size_t off = 0;
  for (std::uint32_t size : layout) off += size;
  return off;
}

void appendQuantileBlob(const StreamingQuantiles& q, std::string& out) {
  if (!q.sketchMode()) {
    appendRaw<std::uint8_t>(out, 0);
    const std::vector<double> values = q.sortedExactValues();
    appendRaw<std::uint32_t>(out, static_cast<std::uint32_t>(values.size()));
    for (double v : values) appendRaw(out, v);
    return;
  }
  const QuantileSketch& s = q.sketch();
  appendRaw<std::uint8_t>(out, 1);
  appendRaw<std::uint64_t>(out, s.zeroCount());
  appendRaw<std::uint32_t>(out, static_cast<std::uint32_t>(s.negativeBuckets().size()));
  appendRaw<std::uint32_t>(out, static_cast<std::uint32_t>(s.positiveBuckets().size()));
  for (const QuantileSketch::Bucket& b : s.negativeBuckets()) {
    appendRaw(out, b.index);
    appendRaw(out, b.count);
  }
  for (const QuantileSketch::Bucket& b : s.positiveBuckets()) {
    appendRaw(out, b.index);
    appendRaw(out, b.count);
  }
}

bool parseQuantileBlob(const char* p, std::size_t len, double alpha,
                       std::size_t exactThreshold, StreamingQuantiles& out,
                       std::string& err) {
  const char* end = p + len;
  std::uint8_t mode = 0;
  if (!readRaw(p, end, mode)) {
    err = "quantile blob truncated (mode)";
    return false;
  }
  if (mode == 0) {
    std::uint32_t n = 0;
    if (!readRaw(p, end, n)) {
      err = "quantile blob truncated (exact count)";
      return false;
    }
    std::vector<double> values;
    values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      double v = 0.0;
      if (!readRaw(p, end, v)) {
        err = "quantile blob truncated (exact values)";
        return false;
      }
      values.push_back(v);
    }
    out = StreamingQuantiles::fromExact(alpha, exactThreshold, std::move(values));
    return true;
  }
  if (mode != 1) {
    err = "quantile blob has unknown mode " + std::to_string(mode);
    return false;
  }
  std::uint64_t zero = 0;
  std::uint32_t nneg = 0, npos = 0;
  if (!readRaw(p, end, zero) || !readRaw(p, end, nneg) || !readRaw(p, end, npos)) {
    err = "quantile blob truncated (sketch counts)";
    return false;
  }
  const auto readSide = [&](std::uint32_t n, std::vector<QuantileSketch::Bucket>& side) {
    side.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      QuantileSketch::Bucket b;
      if (!readRaw(p, end, b.index) || !readRaw(p, end, b.count)) return false;
      side.push_back(b);
    }
    return true;
  };
  std::vector<QuantileSketch::Bucket> neg, pos;
  if (!readSide(nneg, neg) || !readSide(npos, pos)) {
    err = "quantile blob truncated (sketch buckets)";
    return false;
  }
  out = StreamingQuantiles::fromSketch(
      exactThreshold, QuantileSketch::fromState(alpha, zero, std::move(neg), std::move(pos)));
  return true;
}

void appendTelemetryBlob(const std::vector<std::pair<std::uint32_t, double>>& entries,
                         std::string& out) {
  appendRaw<std::uint32_t>(out, static_cast<std::uint32_t>(entries.size()));
  for (const auto& [nameId, value] : entries) {
    appendRaw(out, nameId);
    appendRaw(out, value);
  }
}

bool parseTelemetryBlob(const char* p, std::size_t len,
                        std::vector<std::pair<std::uint32_t, double>>& out,
                        std::string& err) {
  const char* end = p + len;
  std::uint32_t n = 0;
  if (!readRaw(p, end, n)) {
    err = "telemetry blob truncated (count)";
    return false;
  }
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t nameId = 0;
    double value = 0.0;
    if (!readRaw(p, end, nameId) || !readRaw(p, end, value)) {
      err = "telemetry blob truncated (entries)";
      return false;
    }
    out.emplace_back(nameId, value);
  }
  return true;
}

namespace {

void appendSketch(const QuantileSketch& s, std::string& out) {
  appendRaw<std::uint64_t>(out, s.zeroCount());
  appendRaw<std::uint32_t>(out, static_cast<std::uint32_t>(s.negativeBuckets().size()));
  appendRaw<std::uint32_t>(out, static_cast<std::uint32_t>(s.positiveBuckets().size()));
  for (const QuantileSketch::Bucket& b : s.negativeBuckets()) {
    appendRaw(out, b.index);
    appendRaw(out, b.count);
  }
  for (const QuantileSketch::Bucket& b : s.positiveBuckets()) {
    appendRaw(out, b.index);
    appendRaw(out, b.count);
  }
}

bool parseSketch(const char*& p, const char* end, QuantileSketch& out, std::string& err) {
  std::uint64_t zero = 0;
  std::uint32_t nneg = 0, npos = 0;
  if (!readRaw(p, end, zero) || !readRaw(p, end, nneg) || !readRaw(p, end, npos)) {
    err = "probe blob truncated (sketch counts)";
    return false;
  }
  const auto readSide = [&](std::uint32_t n, std::vector<QuantileSketch::Bucket>& side) {
    side.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      QuantileSketch::Bucket b;
      if (!readRaw(p, end, b.index) || !readRaw(p, end, b.count)) return false;
      side.push_back(b);
    }
    return true;
  };
  std::vector<QuantileSketch::Bucket> neg, pos;
  if (!readSide(nneg, neg) || !readSide(npos, pos)) {
    err = "probe blob truncated (sketch buckets)";
    return false;
  }
  // Probe sketches are always default-alpha (they are built by the probe
  // registry, never by campaign config), matching the JSON round-trip.
  out = QuantileSketch::fromState(QuantileSketch::kDefaultAlpha, zero, std::move(neg),
                                  std::move(pos));
  return true;
}

}  // namespace

void appendProbeBlob(const telemetry::ProbeState& state, std::string& out) {
  if (state.empty()) {
    appendRaw<std::uint8_t>(out, 0);
    return;
  }
  appendRaw<std::uint8_t>(out, 1);
  appendSketch(state.marginDb, out);
  appendSketch(state.nearDb, out);
  appendSketch(state.farDb, out);
  appendRaw<std::uint64_t>(out, state.series.span());
  const std::size_t used = state.series.windowsUsed();
  appendRaw<std::uint32_t>(out, static_cast<std::uint32_t>(used));
  for (std::size_t i = 0; i < used; ++i) {
    const telemetry::SlotSeries::Window& w = state.series.windows()[i];
    appendRaw<std::uint64_t>(out, w.slots);
    appendRaw<std::uint64_t>(out, w.listens);
    appendRaw<std::uint64_t>(out, w.decodes);
    appendRaw<std::uint64_t>(out, w.txIntents);
    appendRaw<std::uint64_t>(out, w.progressNum);
    appendRaw<std::uint64_t>(out, w.progressDen);
    appendSketch(w.margin, out);
  }
}

bool parseProbeBlob(const char* p, std::size_t len, telemetry::ProbeState& out,
                    std::string& err) {
  const char* end = p + len;
  out = telemetry::ProbeState();
  std::uint8_t flag = 0;
  if (!readRaw(p, end, flag)) {
    err = "probe blob truncated (flag)";
    return false;
  }
  if (flag == 0) return true;
  if (flag != 1) {
    err = "probe blob has unknown flag " + std::to_string(flag);
    return false;
  }
  if (!parseSketch(p, end, out.marginDb, err) || !parseSketch(p, end, out.nearDb, err) ||
      !parseSketch(p, end, out.farDb, err)) {
    return false;
  }
  std::uint64_t span = 0;
  std::uint32_t used = 0;
  if (!readRaw(p, end, span) || !readRaw(p, end, used)) {
    err = "probe blob truncated (series header)";
    return false;
  }
  if (used > telemetry::SlotSeries::kWindows) {
    err = "probe blob series window count " + std::to_string(used) + " exceeds bound";
    return false;
  }
  std::vector<telemetry::SlotSeries::Window> leading;
  leading.reserve(used);
  for (std::uint32_t i = 0; i < used; ++i) {
    telemetry::SlotSeries::Window w;
    if (!readRaw(p, end, w.slots) || !readRaw(p, end, w.listens) ||
        !readRaw(p, end, w.decodes) || !readRaw(p, end, w.txIntents) ||
        !readRaw(p, end, w.progressNum) || !readRaw(p, end, w.progressDen)) {
      err = "probe blob truncated (series window)";
      return false;
    }
    if (!parseSketch(p, end, w.margin, err)) return false;
    leading.push_back(std::move(w));
  }
  out.series = telemetry::SlotSeries::fromState(span, std::move(leading));
  return true;
}

}  // namespace mcs::store
