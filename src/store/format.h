#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/probes.h"
#include "util/sketch.h"

/// The columnar campaign store's on-disk format — the shared contract
/// between StoreWriter (store/writer.h) and StoreReader (store/reader.h).
///
/// File layout (all offsets from byte 0, all sections 8-byte aligned):
///
///   [StoreHeader]              120 bytes, native-endian with endian tag
///   [string table]             concatenated NUL-terminated strings;
///                              a string id is its byte offset here
///   [names]                    axis name ids (u32 x axisCount), then
///                              metric name ids (u32 x metricCount)
///   [columns]                  one contiguous array per column, in
///                              columnLayout() order, each column start
///                              padded to 8 so typed pointers into the
///                              mmap are always aligned
///   [blob heap]                per cell, in slot order: one quantile
///                              state blob per metric (metric order),
///                              then the probe blob, then the telemetry
///                              blob
///
/// Column order (n = header.cells rows each):
///
///   cell_index u32 | label_id u32 | axis value ids u32 x axisCount |
///   seeds u32 | failures u32 | delivered u32 | valid u32 | invalid u32 |
///   per metric: count u64, mean f64, m2 f64, min f64, max f64, sum f64,
///               q_off u64, q_len u32 |
///   tm_off u64 | tm_len u32 | pb_off u64 | pb_len u32
///
/// q_off/q_len, tm_off/tm_len and pb_off/pb_len slice the blob heap
/// (offsets relative to header.blobOff).  Everything a row stores is the
/// *full* per-metric accumulator state (moments + quantile sketch) plus
/// the cell's probe state, so any subset of cells can be re-aggregated
/// from the store alone, bit-identically to an in-process merge.
///
/// Version 2 added the probe blob column (decode attribution + slot
/// series, telemetry/probes.h).  The blob is self-contained — no string
/// ids — so it needs no remapping at finish time.
namespace mcs::store {

inline constexpr char kMagic[8] = {'M', 'C', 'S', 'S', 'T', 'O', 'R', '1'};
inline constexpr std::uint32_t kStoreVersion = 2;
/// Written natively; a reader seeing the bytes reversed knows the file
/// crossed an endianness boundary and refuses loudly instead of
/// misreading every column.
inline constexpr std::uint32_t kEndianTag = 0x01020304;
/// Set when wall_sec stats/sketches were zeroed at write time
/// (CampaignOptions::storeStripWall), keeping the file byte-identical
/// across runs and worker counts.
inline constexpr std::uint32_t kFlagWallStripped = 1u << 0;

struct StoreHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian;
  std::uint64_t cells;
  std::uint32_t axisCount;
  std::uint32_t metricCount;
  std::uint32_t flags;
  std::uint32_t sketchThreshold;
  double sketchAlpha;
  std::uint64_t stringsOff;
  std::uint64_t stringsLen;
  std::uint64_t namesOff;
  std::uint64_t columnsOff;
  std::uint64_t blobOff;
  std::uint64_t blobLen;
  std::uint32_t campaignNameId;
  std::uint32_t baseNameId;
  std::uint32_t totalCells;
  std::uint32_t shardIndex;
  std::uint32_t shardCount;
  std::uint32_t reserved;
};
static_assert(sizeof(StoreHeader) == 120, "header layout is the on-disk contract");

/// Element width of every column, in the on-disk order above.  The same
/// list describes one packed row record (the writer's streaming spool),
/// so writer and reader can never disagree about offsets.
[[nodiscard]] std::vector<std::uint32_t> columnLayout(std::uint32_t axisCount,
                                                      std::uint32_t metricCount);

/// Logical field positions inside columnLayout()'s order.
inline constexpr std::size_t kColCellIndex = 0;
inline constexpr std::size_t kColLabel = 1;
[[nodiscard]] inline std::size_t colAxis(std::size_t a) { return 2 + a; }
[[nodiscard]] inline std::size_t colSeeds(std::uint32_t axisCount) { return 2 + axisCount; }
[[nodiscard]] inline std::size_t colFailures(std::uint32_t axisCount) { return 3 + axisCount; }
[[nodiscard]] inline std::size_t colDelivered(std::uint32_t axisCount) { return 4 + axisCount; }
[[nodiscard]] inline std::size_t colValid(std::uint32_t axisCount) { return 5 + axisCount; }
[[nodiscard]] inline std::size_t colInvalid(std::uint32_t axisCount) { return 6 + axisCount; }
/// Per-metric sub-fields, in order.
inline constexpr std::size_t kMetricFields = 8;
inline constexpr std::size_t kMetricCount = 0;
inline constexpr std::size_t kMetricMean = 1;
inline constexpr std::size_t kMetricM2 = 2;
inline constexpr std::size_t kMetricMin = 3;
inline constexpr std::size_t kMetricMax = 4;
inline constexpr std::size_t kMetricSum = 5;
inline constexpr std::size_t kMetricQOff = 6;
inline constexpr std::size_t kMetricQLen = 7;
[[nodiscard]] inline std::size_t colMetric(std::uint32_t axisCount, std::size_t m,
                                           std::size_t field) {
  return 7 + axisCount + m * kMetricFields + field;
}
[[nodiscard]] inline std::size_t colTmOff(std::uint32_t axisCount, std::uint32_t metricCount) {
  return 7 + axisCount + static_cast<std::size_t>(metricCount) * kMetricFields;
}
[[nodiscard]] inline std::size_t colTmLen(std::uint32_t axisCount, std::uint32_t metricCount) {
  return colTmOff(axisCount, metricCount) + 1;
}
[[nodiscard]] inline std::size_t colPbOff(std::uint32_t axisCount, std::uint32_t metricCount) {
  return colTmLen(axisCount, metricCount) + 1;
}
[[nodiscard]] inline std::size_t colPbLen(std::uint32_t axisCount, std::uint32_t metricCount) {
  return colPbOff(axisCount, metricCount) + 1;
}

/// Packed row byte offsets (no padding — rows are memcpy'd field by
/// field) and the row's total width.
[[nodiscard]] std::vector<std::size_t> rowFieldOffsets(
    const std::vector<std::uint32_t>& layout);
[[nodiscard]] std::size_t rowBytes(const std::vector<std::uint32_t>& layout);

/// Quantile state blob: u8 mode (0 = exact, 1 = sketch); exact follows
/// with u32 n + f64 x n sorted values, sketch with u64 zeroCount,
/// u32 negCount, u32 posCount, then (i32 index, u64 count) pairs for the
/// negative side (index ascending) and the positive side.  Alpha and the
/// exact threshold are file-global (header), not per-blob.
void appendQuantileBlob(const StreamingQuantiles& q, std::string& out);
[[nodiscard]] bool parseQuantileBlob(const char* p, std::size_t len, double alpha,
                                     std::size_t exactThreshold, StreamingQuantiles& out,
                                     std::string& err);

/// Telemetry blob: u32 n, then (u32 nameId, f64 value) x n in MetricMap
/// entry order.  Telemetry names vary per cell (zero counters are
/// skipped at capture), which is exactly why telemetry is a ragged blob
/// and not fixed columns.
void appendTelemetryBlob(const std::vector<std::pair<std::uint32_t, double>>& entries,
                         std::string& out);
[[nodiscard]] bool parseTelemetryBlob(const char* p, std::size_t len,
                                      std::vector<std::pair<std::uint32_t, double>>& out,
                                      std::string& err);

/// Probe blob: u8 flag (0 = empty, nothing follows; 1 = full state).
/// Full state is the three attribution sketches (margin_db, near_db,
/// far_db), then the slot series: u64 span, u32 window count, then per
/// window six u64 counts (slots, listens, decodes, tx_intents,
/// progress_num, progress_den) followed by the window's margin sketch.
/// Each sketch serializes as u64 zeroCount, u32 negCount, u32 posCount,
/// then (i32 index, u64 count) pairs, negative side then positive side —
/// the exact bucket state, so parse(append(s)) == s and re-merged
/// subsets stay bit-identical to in-process merges.
void appendProbeBlob(const telemetry::ProbeState& state, std::string& out);
[[nodiscard]] bool parseProbeBlob(const char* p, std::size_t len, telemetry::ProbeState& out,
                                  std::string& err);

/// 8-byte section alignment.
[[nodiscard]] inline std::uint64_t alignUp8(std::uint64_t off) { return (off + 7) & ~7ull; }

}  // namespace mcs::store
