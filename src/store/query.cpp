#include "store/query.h"

#include <unordered_map>

#include "sweep/report.h"
#include "telemetry/telemetry.h"

namespace mcs::store {

namespace {

std::string namesList(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out.empty() ? "(none)" : out;
}

/// Equality filter against a string column, with an id memo so each
/// distinct interned id is resolved once per scan.
struct ColumnFilter {
  const std::uint32_t* col = nullptr;
  std::string value;
  std::unordered_map<std::uint32_t, bool> memo;

  bool matches(const StoreReader& reader, std::size_t row) {
    const std::uint32_t id = col[row];
    const auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    const bool ok = reader.str(id) == value;
    memo.emplace(id, ok);
    return ok;
  }
};

bool resolveColumn(const StoreReader& reader, const std::string& key,
                   const std::uint32_t*& col, std::string& err) {
  if (key == "label") {
    col = reader.labelCol();
    return true;
  }
  const int a = reader.axisIndex(key);
  if (a < 0) {
    err = "axis \"" + key + "\" not in store (has: label, " +
          namesList(reader.axisNames()) + ")";
    return false;
  }
  col = reader.axisCol(static_cast<std::size_t>(a));
  return true;
}

bool resolveFilters(const StoreReader& reader,
                    const std::vector<std::pair<std::string, std::string>>& where,
                    std::vector<ColumnFilter>& filters, std::string& err) {
  filters.clear();
  filters.reserve(where.size());
  for (const auto& [key, value] : where) {
    ColumnFilter f;
    if (!resolveColumn(reader, key, f.col, err)) return false;
    f.value = value;
    filters.push_back(std::move(f));
  }
  return true;
}

constexpr const char* kTmPrefix = "tm.";

bool isTmMetric(const std::string& name) {
  return name.rfind(kTmPrefix, 0) == 0 && name.size() > 3;
}

}  // namespace

bool checkStoreUnion(const std::vector<const StoreReader*>& readers, std::string& err) {
  std::unordered_map<std::uint32_t, std::size_t> seen;  // cell index -> reader position
  for (std::size_t i = 0; i < readers.size(); ++i) {
    const StoreReader& reader = *readers[i];
    const std::uint32_t* idx = reader.cellIndexCol();
    for (std::size_t row = 0; row < reader.cells(); ++row) {
      const auto it = seen.find(idx[row]);
      if (it != seen.end()) {
        err = "cell index " + std::to_string(idx[row]) + " appears in store #" +
              std::to_string(it->second + 1) + " and store #" + std::to_string(i + 1) +
              " — union requires disjoint shards";
        return false;
      }
      seen.emplace(idx[row], i);
    }
  }
  return true;
}

bool runStoreQueryUnion(const std::vector<const StoreReader*>& readers,
                        const StoreQuery& query, std::vector<QueryGroup>& out,
                        std::string& err) {
  static const telemetry::TimerId kScan = telemetry::timerId("query.scan");
  static const telemetry::CounterId kSketchMerges =
      telemetry::counterId("store.sketch_merges");
  out.clear();
  if (readers.empty()) {
    err = "no stores to query";
    return false;
  }
  if (!checkStoreUnion(readers, err)) return false;

  std::vector<std::string> metricNames = query.metrics;
  if (metricNames.empty()) metricNames = readers.front()->metricNames();
  bool anyTm = false;
  for (const std::string& name : metricNames) anyTm = anyTm || isTmMetric(name);

  const telemetry::PhaseTimer scan(kScan);
  std::unordered_map<std::string, std::size_t> groupOf;  // group key -> out index
  const auto groupFor = [&](const std::string& key, double alpha,
                            std::uint32_t threshold) -> QueryGroup& {
    const auto it = groupOf.find(key);
    if (it != groupOf.end()) return out[it->second];
    QueryGroup g;
    g.key = key;
    g.stats.reserve(metricNames.size());
    for (const std::string& name : metricNames) {
      g.stats.emplace_back(name, StreamingStats(alpha, threshold));
    }
    groupOf.emplace(key, out.size());
    out.push_back(std::move(g));
    return out.back();
  };

  for (const StoreReader* rp : readers) {
    const StoreReader& reader = *rp;
    // Per-store resolution: metric positions (and axis columns) may
    // differ between stores even when the names agree.
    std::vector<int> metricIdx(metricNames.size(), -1);
    for (std::size_t k = 0; k < metricNames.size(); ++k) {
      if (isTmMetric(metricNames[k])) continue;
      metricIdx[k] = reader.metricIndex(metricNames[k]);
      if (metricIdx[k] < 0) {
        err = "metric \"" + metricNames[k] + "\" not in store (has: " +
              namesList(reader.metricNames()) + "; tm.<counter> selects telemetry)";
        return false;
      }
    }
    std::vector<ColumnFilter> filters;
    if (!resolveFilters(reader, query.where, filters, err)) return false;
    const std::uint32_t* groupCol = nullptr;
    if (!query.groupBy.empty() && !resolveColumn(reader, query.groupBy, groupCol, err)) {
      return false;
    }
    const double alpha = reader.header().sketchAlpha;
    const std::uint32_t threshold = reader.header().sketchThreshold;

    for (std::size_t row = 0; row < reader.cells(); ++row) {
      bool pass = true;
      for (ColumnFilter& f : filters) {
        if (!f.matches(reader, row)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      QueryGroup& group =
          groupFor(groupCol != nullptr ? reader.str(groupCol[row]) : "all", alpha, threshold);
      ++group.cells;
      std::vector<std::pair<std::string, double>> tmEntries;
      if (anyTm && !reader.telemetryAt(row, tmEntries, err)) return false;
      for (std::size_t k = 0; k < metricNames.size(); ++k) {
        StreamingStats& acc = group.stats[k].second;
        if (metricIdx[k] < 0) {
          // Telemetry metric: the cell's counter value is one sample
          // (absent counter = 0.0, e.g. a cause that never fired).  The
          // blob keys carry the "tm." prefix already, so the selector name
          // is the lookup key as-is.
          const std::string& key = metricNames[k];
          double value = 0.0;
          for (const auto& [name, v] : tmEntries) {
            if (name == key) {
              value = v;
              break;
            }
          }
          acc.add(value);
          continue;
        }
        StreamingStats rowStats;
        if (!reader.statsAt(static_cast<std::size_t>(metricIdx[k]), row, rowStats, err)) {
          return false;
        }
        if (acc.quantiles.sketchMode() || rowStats.quantiles.sketchMode()) {
          telemetry::counterAdd(kSketchMerges);
        }
        acc.merge(rowStats);
      }
    }
  }
  return true;
}

bool runStoreQuery(const StoreReader& reader, const StoreQuery& query,
                   std::vector<QueryGroup>& out, std::string& err) {
  return runStoreQueryUnion({&reader}, query, out, err);
}

bool mergeStoreProbes(const std::vector<const StoreReader*>& readers,
                      const std::vector<std::pair<std::string, std::string>>& where,
                      mcs::telemetry::ProbeState& out, std::string& err) {
  out = mcs::telemetry::ProbeState();
  if (readers.empty()) {
    err = "no stores to query";
    return false;
  }
  if (!checkStoreUnion(readers, err)) return false;
  for (const StoreReader* rp : readers) {
    const StoreReader& reader = *rp;
    std::vector<ColumnFilter> filters;
    if (!resolveFilters(reader, where, filters, err)) return false;
    for (std::size_t row = 0; row < reader.cells(); ++row) {
      bool pass = true;
      for (ColumnFilter& f : filters) {
        if (!f.matches(reader, row)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      mcs::telemetry::ProbeState cell;
      if (!reader.probesAt(row, cell, err)) return false;
      out.merge(cell);
    }
  }
  return true;
}

bool storeSummariesJson(const StoreReader& reader, Json& out, std::string& err) {
  const std::string campaign = reader.campaignName();
  out = Json::object();
  out.set("name", "sweep_" + campaign);
  out.set("kind", "sweep");
  Json meta = Json::object();
  meta.set("sweep", campaign);
  meta.set("base", reader.baseName());
  meta.set("total_cells", static_cast<int>(reader.header().totalCells));
  meta.set("shard_index", static_cast<int>(reader.header().shardIndex));
  meta.set("shard_count", static_cast<int>(reader.header().shardCount));
  meta.set("cells_in_shard", reader.cells());
  meta.set("source", "store");
  out.set("meta", std::move(meta));

  Json cells = Json::array();
  for (std::size_t row = 0; row < reader.cells(); ++row) {
    Json cell = Json::object();
    cell.set("index", static_cast<int>(reader.cellIndexCol()[row]));
    cell.set("label", reader.str(reader.labelCol()[row]));
    Json assigns = Json::object();
    for (std::size_t a = 0; a < reader.axisNames().size(); ++a) {
      assigns.set(reader.axisNames()[a], reader.str(reader.axisCol(a)[row]));
    }
    cell.set("assignments", std::move(assigns));
    cell.set("seeds", static_cast<int>(reader.seedsCol()[row]));
    cell.set("failures", static_cast<int>(reader.failuresCol()[row]));
    cell.set("delivered", static_cast<int>(reader.deliveredCol()[row]));
    cell.set("valid", static_cast<int>(reader.validCol()[row]));
    cell.set("invalid", static_cast<int>(reader.invalidCol()[row]));
    Json summaries = Json::object();
    for (std::size_t m = 0; m < reader.metricNames().size(); ++m) {
      StreamingStats stats;
      if (!reader.statsAt(m, row, stats, err)) return false;
      summaries.set(reader.metricNames()[m], summaryToJson(stats.summary()));
    }
    cell.set("summaries", std::move(summaries));
    cells.push_back(std::move(cell));
  }
  out.set("cells", std::move(cells));
  return true;
}

}  // namespace mcs::store
