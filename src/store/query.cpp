#include "store/query.h"

#include <unordered_map>

#include "sweep/report.h"
#include "telemetry/telemetry.h"

namespace mcs::store {

namespace {

std::string namesList(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out.empty() ? "(none)" : out;
}

/// Equality filter against a string column, with an id memo so each
/// distinct interned id is resolved once per scan.
struct ColumnFilter {
  const std::uint32_t* col = nullptr;
  std::string value;
  std::unordered_map<std::uint32_t, bool> memo;

  bool matches(const StoreReader& reader, std::size_t row) {
    const std::uint32_t id = col[row];
    const auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    const bool ok = reader.str(id) == value;
    memo.emplace(id, ok);
    return ok;
  }
};

}  // namespace

bool runStoreQuery(const StoreReader& reader, const StoreQuery& query,
                   std::vector<QueryGroup>& out, std::string& err) {
  static const telemetry::TimerId kScan = telemetry::timerId("query.scan");
  static const telemetry::CounterId kSketchMerges =
      telemetry::counterId("store.sketch_merges");
  out.clear();

  std::vector<std::string> metricNames = query.metrics;
  if (metricNames.empty()) metricNames = reader.metricNames();
  std::vector<std::size_t> metricIdx;
  metricIdx.reserve(metricNames.size());
  for (const std::string& name : metricNames) {
    const int m = reader.metricIndex(name);
    if (m < 0) {
      err = "metric \"" + name + "\" not in store (has: " +
            namesList(reader.metricNames()) + ")";
      return false;
    }
    metricIdx.push_back(static_cast<std::size_t>(m));
  }

  const auto resolveColumn = [&](const std::string& key,
                                 const std::uint32_t*& col) -> bool {
    if (key == "label") {
      col = reader.labelCol();
      return true;
    }
    const int a = reader.axisIndex(key);
    if (a < 0) {
      err = "axis \"" + key + "\" not in store (has: label, " +
            namesList(reader.axisNames()) + ")";
      return false;
    }
    col = reader.axisCol(static_cast<std::size_t>(a));
    return true;
  };

  std::vector<ColumnFilter> filters;
  filters.reserve(query.where.size());
  for (const auto& [key, value] : query.where) {
    ColumnFilter f;
    if (!resolveColumn(key, f.col)) return false;
    f.value = value;
    filters.push_back(std::move(f));
  }

  const std::uint32_t* groupCol = nullptr;
  if (!query.groupBy.empty() && !resolveColumn(query.groupBy, groupCol)) return false;

  const telemetry::PhaseTimer scan(kScan);
  const double alpha = reader.header().sketchAlpha;
  std::unordered_map<std::uint32_t, std::size_t> groupOf;  // value id -> out index
  const auto groupFor = [&](std::size_t row) -> QueryGroup& {
    if (groupCol == nullptr) {
      if (out.empty()) {
        QueryGroup g;
        g.key = "all";
        out.push_back(std::move(g));
      }
      return out.front();
    }
    const std::uint32_t id = groupCol[row];
    const auto it = groupOf.find(id);
    if (it != groupOf.end()) return out[it->second];
    QueryGroup g;
    g.key = reader.str(id);
    groupOf.emplace(id, out.size());
    out.push_back(std::move(g));
    return out.back();
  };

  for (std::size_t row = 0; row < reader.cells(); ++row) {
    bool pass = true;
    for (ColumnFilter& f : filters) {
      if (!f.matches(reader, row)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    QueryGroup& group = groupFor(row);
    if (group.stats.empty()) {
      group.stats.reserve(metricNames.size());
      for (const std::string& name : metricNames) {
        group.stats.emplace_back(
            name, StreamingStats(alpha, reader.header().sketchThreshold));
      }
    }
    ++group.cells;
    for (std::size_t k = 0; k < metricIdx.size(); ++k) {
      StreamingStats rowStats;
      if (!reader.statsAt(metricIdx[k], row, rowStats, err)) return false;
      StreamingStats& acc = group.stats[k].second;
      if (acc.quantiles.sketchMode() || rowStats.quantiles.sketchMode()) {
        telemetry::counterAdd(kSketchMerges);
      }
      acc.merge(rowStats);
    }
  }
  return true;
}

bool storeSummariesJson(const StoreReader& reader, Json& out, std::string& err) {
  const std::string campaign = reader.campaignName();
  out = Json::object();
  out.set("name", "sweep_" + campaign);
  out.set("kind", "sweep");
  Json meta = Json::object();
  meta.set("sweep", campaign);
  meta.set("base", reader.baseName());
  meta.set("total_cells", static_cast<int>(reader.header().totalCells));
  meta.set("shard_index", static_cast<int>(reader.header().shardIndex));
  meta.set("shard_count", static_cast<int>(reader.header().shardCount));
  meta.set("cells_in_shard", reader.cells());
  meta.set("source", "store");
  out.set("meta", std::move(meta));

  Json cells = Json::array();
  for (std::size_t row = 0; row < reader.cells(); ++row) {
    Json cell = Json::object();
    cell.set("index", static_cast<int>(reader.cellIndexCol()[row]));
    cell.set("label", reader.str(reader.labelCol()[row]));
    Json assigns = Json::object();
    for (std::size_t a = 0; a < reader.axisNames().size(); ++a) {
      assigns.set(reader.axisNames()[a], reader.str(reader.axisCol(a)[row]));
    }
    cell.set("assignments", std::move(assigns));
    cell.set("seeds", static_cast<int>(reader.seedsCol()[row]));
    cell.set("failures", static_cast<int>(reader.failuresCol()[row]));
    cell.set("delivered", static_cast<int>(reader.deliveredCol()[row]));
    cell.set("valid", static_cast<int>(reader.validCol()[row]));
    cell.set("invalid", static_cast<int>(reader.invalidCol()[row]));
    Json summaries = Json::object();
    for (std::size_t m = 0; m < reader.metricNames().size(); ++m) {
      StreamingStats stats;
      if (!reader.statsAt(m, row, stats, err)) return false;
      summaries.set(reader.metricNames()[m], summaryToJson(stats.summary()));
    }
    cell.set("summaries", std::move(summaries));
    cells.push_back(std::move(cell));
  }
  out.set("cells", std::move(cells));
  return true;
}

}  // namespace mcs::store
