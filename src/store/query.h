#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "store/reader.h"
#include "util/json.h"
#include "util/sketch.h"

/// Query engine over a memory-mapped campaign store: filter by axis
/// value, group by an axis, and re-aggregate the per-cell accumulator
/// states — moments merge exactly, quantile sketches merge within the
/// documented alpha bound (exactly below the spill threshold).  Scans
/// touch only the columns a query names; nothing is loaded wholesale.
namespace mcs::store {

struct StoreQuery {
  /// Metric names to aggregate; empty = every metric in the store.  A
  /// name starting with "tm." selects a per-cell telemetry counter
  /// instead (e.g. "tm.cause.noise_limited"): each matching cell
  /// contributes its counter value as one sample, absent entries count
  /// as 0.0 — so mean is the per-cell average and sum the campaign
  /// total.
  std::vector<std::string> metrics;
  /// Conjunctive equality filters: axis name (or "label") == value.
  std::vector<std::pair<std::string, std::string>> where;
  /// Axis name to group by; empty = one "all" group.
  std::string groupBy;
};

struct QueryGroup {
  /// The group's axis value ("all" for the ungrouped query).
  std::string key;
  std::uint64_t cells = 0;
  /// Selected metrics in query order, each the merge of the group's
  /// per-cell states in slot order (deterministic).
  NamedStats stats;
};

/// Runs the query; groups come out in first-appearance (slot) order.
/// Unknown metric/axis names fail with a message listing what the store
/// holds.  Instrumented with the query.scan timer and the
/// store.sketch_merges counter.
[[nodiscard]] bool runStoreQuery(const StoreReader& reader, const StoreQuery& query,
                                 std::vector<QueryGroup>& out, std::string& err);

/// Union precondition for multi-store queries: every cell index must
/// appear in at most one store (the intended shape is shards of one
/// campaign).  An overlap fails with the offending index and stores.
[[nodiscard]] bool checkStoreUnion(const std::vector<const StoreReader*>& readers,
                                   std::string& err);

/// Runs the query over several stores as one logical campaign.  Checks
/// the union precondition first; groups merge by axis-value string
/// across stores, ordered by first appearance scanning the stores in
/// argument order.
[[nodiscard]] bool runStoreQueryUnion(const std::vector<const StoreReader*>& readers,
                                      const StoreQuery& query, std::vector<QueryGroup>& out,
                                      std::string& err);

/// Merges the probe states (decode attribution + slot series) of every
/// cell passing `where`, across all stores — the input for
/// sweep_query --series.  Probe merges commute, so the result is
/// independent of store order and bit-identical to an in-process merge
/// of the same cells.
[[nodiscard]] bool mergeStoreProbes(
    const std::vector<const StoreReader*>& readers,
    const std::vector<std::pair<std::string, std::string>>& where,
    mcs::telemetry::ProbeState& out, std::string& err);

/// The campaign-summaries view of a store: a campaign JSON tree
/// ({"name","kind","meta","cells":[{index,label,assignments,seeds,
/// failures,delivered,valid,invalid,summaries}]}) whose summary blocks
/// are recomputed from the stored accumulators.  Moment-derived fields
/// are bit-identical to the legacy report; p50/p95 are exact below the
/// sketch threshold and within alpha above it.  This is what lets
/// sweep_check gate a store against a JSON baseline (--candidate-store)
/// — the store is the source of truth, the JSON a view.
[[nodiscard]] bool storeSummariesJson(const StoreReader& reader, Json& out, std::string& err);

}  // namespace mcs::store
