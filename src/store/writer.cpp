#include "store/writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "telemetry/telemetry.h"

namespace mcs::store {

namespace {

bool pwriteAll(int fd, const char* p, std::size_t len, std::uint64_t off, std::string& err) {
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      err = "pwrite: " + std::string(std::strerror(errno));
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
    off += static_cast<std::uint64_t>(n);
  }
  return true;
}

bool preadAll(int fd, char* p, std::size_t len, std::uint64_t off, std::string& err) {
  while (len > 0) {
    const ssize_t n = ::pread(fd, p, len, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      err = "pread: " + std::string(std::strerror(errno));
      return false;
    }
    if (n == 0) {
      err = "pread: unexpected EOF";
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
    off += static_cast<std::uint64_t>(n);
  }
  return true;
}

template <typename T>
void putField(std::string& row, std::size_t offset, T v) {
  std::memcpy(row.data() + offset, &v, sizeof(T));
}

template <typename T>
T getField(const char* row, std::size_t offset) {
  T v;
  std::memcpy(&v, row + offset, sizeof(T));
  return v;
}

/// Appends `bytes` plus zero padding up to the next 8-byte boundary.
bool writeSection(int fd, const std::string& bytes, std::uint64_t& pos, std::string& err) {
  if (!pwriteAll(fd, bytes.data(), bytes.size(), pos, err)) return false;
  pos += bytes.size();
  const std::uint64_t aligned = alignUp8(pos);
  if (aligned > pos) {
    const char pad[8] = {};
    if (!pwriteAll(fd, pad, aligned - pos, pos, err)) return false;
    pos = aligned;
  }
  return true;
}

}  // namespace

StoreWriter::~StoreWriter() {
  if (rowsFd_ >= 0) {
    // open() succeeded but finish() never did: drop the spool files.
    closeFds();
    removeTemps();
  }
}

void StoreWriter::closeFds() {
  if (rowsFd_ >= 0) ::close(rowsFd_);
  if (blobFd_ >= 0) ::close(blobFd_);
  rowsFd_ = -1;
  blobFd_ = -1;
}

void StoreWriter::removeTemps() {
  ::unlink((path_ + ".rows.tmp").c_str());
  ::unlink((path_ + ".blob.tmp").c_str());
  ::unlink((path_ + ".tmp").c_str());
}

std::uint32_t StoreWriter::intern(const std::string& s) {
  const auto it = stringIds_.find(s);
  if (it != stringIds_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.append(s);
  strings_.push_back('\0');
  stringIds_.emplace(s, id);
  return id;
}

bool StoreWriter::open(const std::string& path, const StoreMeta& meta, std::string& err) {
  path_ = path;
  meta_ = meta;
  // The store may open before the campaign's out-dir exists (the runner
  // creates it at report-write time, after the cells run).
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      err = "cannot create \"" + parent.string() + "\": " + ec.message();
      return false;
    }
  }
  const std::string rowsPath = path + ".rows.tmp";
  const std::string blobPath = path + ".blob.tmp";
  rowsFd_ = ::open(rowsPath.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (rowsFd_ < 0) {
    err = "cannot create \"" + rowsPath + "\": " + std::strerror(errno);
    return false;
  }
  blobFd_ = ::open(blobPath.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (blobFd_ < 0) {
    err = "cannot create \"" + blobPath + "\": " + std::strerror(errno);
    ::close(rowsFd_);
    rowsFd_ = -1;
    ::unlink(rowsPath.c_str());
    return false;
  }
  // Interned before any row so their ids do not depend on cell content.
  (void)intern(meta_.campaign);
  (void)intern(meta_.base);
  written_.assign(meta_.cellSlots, false);
  writtenCount_ = 0;
  blobSize_ = 0;
  return true;
}

bool StoreWriter::bindSchema(const StoreCellRow& row, std::string& err) {
  axisNames_.clear();
  metricNames_.clear();
  for (const auto& [key, value] : row.assignments) {
    (void)value;
    axisNames_.push_back(key);
    (void)intern(key);
  }
  if (row.stats != nullptr) {
    for (const auto& [name, stats] : *row.stats) {
      (void)stats;
      metricNames_.push_back(name);
      (void)intern(name);
    }
  }
  layout_ = columnLayout(static_cast<std::uint32_t>(axisNames_.size()),
                         static_cast<std::uint32_t>(metricNames_.size()));
  fieldOffsets_ = rowFieldOffsets(layout_);
  rowBytes_ = rowBytes(layout_);
  schemaBound_ = true;
  (void)err;
  return true;
}

bool StoreWriter::appendCell(std::size_t slot, const StoreCellRow& row, std::string& err) {
  static const telemetry::TimerId kWriteCell = telemetry::timerId("store.write_cell");
  static const telemetry::CounterId kCellsWritten =
      telemetry::counterId("store.cells_written");
  const telemetry::PhaseTimer timer(kWriteCell);

  if (rowsFd_ < 0) {
    err = "store writer is not open";
    return false;
  }
  if (slot >= meta_.cellSlots) {
    err = "store slot " + std::to_string(slot) + " out of range (cells " +
          std::to_string(meta_.cellSlots) + ")";
    return false;
  }
  if (written_[slot]) {
    err = "store slot " + std::to_string(slot) + " written twice";
    return false;
  }
  if (!schemaBound_ && !bindSchema(row, err)) return false;

  const auto axisCount = static_cast<std::uint32_t>(axisNames_.size());
  if (row.assignments.size() != axisNames_.size()) {
    err = "cell " + std::to_string(row.cellIndex) + " has " +
          std::to_string(row.assignments.size()) + " axes, store schema has " +
          std::to_string(axisNames_.size());
    return false;
  }

  std::string rec(rowBytes_, '\0');
  putField(rec, fieldOffsets_[kColCellIndex], static_cast<std::uint32_t>(row.cellIndex));
  putField(rec, fieldOffsets_[kColLabel], intern(row.label));
  for (std::size_t a = 0; a < axisNames_.size(); ++a) {
    if (row.assignments[a].first != axisNames_[a]) {
      err = "cell " + std::to_string(row.cellIndex) + " axis \"" +
            row.assignments[a].first + "\" does not match store schema axis \"" +
            axisNames_[a] + "\"";
      return false;
    }
    putField(rec, fieldOffsets_[colAxis(a)], intern(row.assignments[a].second));
  }
  putField(rec, fieldOffsets_[colSeeds(axisCount)], static_cast<std::uint32_t>(row.seeds));
  putField(rec, fieldOffsets_[colFailures(axisCount)],
           static_cast<std::uint32_t>(row.failures));
  putField(rec, fieldOffsets_[colDelivered(axisCount)],
           static_cast<std::uint32_t>(row.delivered));
  putField(rec, fieldOffsets_[colValid(axisCount)], static_cast<std::uint32_t>(row.valid));
  putField(rec, fieldOffsets_[colInvalid(axisCount)],
           static_cast<std::uint32_t>(row.invalid));

  // Every stat the row carries must be a schema metric: a new name
  // appearing mid-campaign means the first cell bound an incomplete
  // schema, and silently dropping data is worse than failing the run.
  static const NamedStats kEmptyStats;
  const NamedStats& stats = row.stats != nullptr ? *row.stats : kEmptyStats;
  for (const auto& [name, s] : stats) {
    (void)s;
    bool known = false;
    for (const std::string& m : metricNames_) {
      if (m == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      err = "cell " + std::to_string(row.cellIndex) + " metric \"" + name +
            "\" is not in the store schema (bound by the first cell)";
      return false;
    }
  }

  std::string blobs;
  for (std::size_t m = 0; m < metricNames_.size(); ++m) {
    const StreamingStats* s = nullptr;
    // Display order normally matches the schema exactly; fall back to a
    // name search so a metric missing from one cell shifts nothing.
    if (m < stats.size() && stats[m].first == metricNames_[m]) {
      s = &stats[m].second;
    } else {
      for (const auto& [name, candidate] : stats) {
        if (name == metricNames_[m]) {
          s = &candidate;
          break;
        }
      }
    }
    StreamingStats empty;
    const bool strip = meta_.stripWall && metricNames_[m] == "wall_sec";
    if (s == nullptr) s = &empty;

    const OnlineStats& mo = s->moments;
    putField(rec, fieldOffsets_[colMetric(axisCount, m, kMetricCount)],
             static_cast<std::uint64_t>(mo.count()));
    putField(rec, fieldOffsets_[colMetric(axisCount, m, kMetricMean)],
             strip ? 0.0 : mo.mean());
    putField(rec, fieldOffsets_[colMetric(axisCount, m, kMetricM2)], strip ? 0.0 : mo.m2());
    putField(rec, fieldOffsets_[colMetric(axisCount, m, kMetricMin)], strip ? 0.0 : mo.min());
    putField(rec, fieldOffsets_[colMetric(axisCount, m, kMetricMax)], strip ? 0.0 : mo.max());
    putField(rec, fieldOffsets_[colMetric(axisCount, m, kMetricSum)], strip ? 0.0 : mo.sum());

    const std::uint64_t qOff = blobSize_ + blobs.size();
    const std::size_t before = blobs.size();
    appendQuantileBlob(strip ? empty.quantiles : s->quantiles, blobs);
    putField(rec, fieldOffsets_[colMetric(axisCount, m, kMetricQOff)], qOff);
    putField(rec, fieldOffsets_[colMetric(axisCount, m, kMetricQLen)],
             static_cast<std::uint32_t>(blobs.size() - before));
  }

  // Probe blob sits between the quantile blobs and the telemetry blob:
  // it carries no string ids (needs no remap at finish), and keeping the
  // telemetry blob last preserves finish()'s "remap the cell's trailing
  // tmLen bytes" invariant.
  {
    static const telemetry::ProbeState kNoProbes;
    const std::uint64_t pbOff = blobSize_ + blobs.size();
    const std::size_t pbBefore = blobs.size();
    appendProbeBlob(row.probes != nullptr ? *row.probes : kNoProbes, blobs);
    const auto mc = static_cast<std::uint32_t>(metricNames_.size());
    putField(rec, fieldOffsets_[colPbOff(axisCount, mc)], pbOff);
    putField(rec, fieldOffsets_[colPbLen(axisCount, mc)],
             static_cast<std::uint32_t>(blobs.size() - pbBefore));
  }

  std::vector<std::pair<std::uint32_t, double>> tmEntries;
  if (row.telemetry != nullptr) {
    for (const auto& [name, value] : row.telemetry->entries()) {
      // Timer totals (the ".sec" entries) are the only wall-derived
      // values in the telemetry blob; stripWall zeroes them — entry and
      // count survive — so armed stores stay byte-identical across runs
      // and worker counts, same canonicalization as the wall_sec metric.
      const bool isWall = meta_.stripWall && value != 0.0 && name.size() > 4 &&
                          name.compare(name.size() - 4, 4, ".sec") == 0;
      tmEntries.emplace_back(intern(name), isWall ? 0.0 : value);
    }
  }
  const std::uint64_t tmOff = blobSize_ + blobs.size();
  const std::size_t tmBefore = blobs.size();
  appendTelemetryBlob(tmEntries, blobs);
  putField(rec, fieldOffsets_[colTmOff(axisCount, static_cast<std::uint32_t>(
                                                      metricNames_.size()))],
           tmOff);
  putField(rec, fieldOffsets_[colTmLen(axisCount, static_cast<std::uint32_t>(
                                                      metricNames_.size()))],
           static_cast<std::uint32_t>(blobs.size() - tmBefore));

  if (!pwriteAll(blobFd_, blobs.data(), blobs.size(), blobSize_, err)) return false;
  blobSize_ += blobs.size();
  if (!pwriteAll(rowsFd_, rec.data(), rec.size(),
                 static_cast<std::uint64_t>(slot) * rowBytes_, err)) {
    return false;
  }
  written_[slot] = true;
  ++writtenCount_;
  telemetry::counterAdd(kCellsWritten);
  return true;
}

bool StoreWriter::finish(std::string& err) {
  static const telemetry::CounterId kBytesWritten =
      telemetry::counterId("store.bytes_written");
  if (rowsFd_ < 0) {
    err = "store writer is not open";
    return false;
  }
  if (writtenCount_ != meta_.cellSlots) {
    for (std::size_t i = 0; i < written_.size(); ++i) {
      if (!written_[i]) {
        err = "store is missing slot " + std::to_string(i) + " (" +
              std::to_string(writtenCount_) + "/" + std::to_string(meta_.cellSlots) +
              " written)";
        return false;
      }
    }
  }
  if (!schemaBound_) {
    // Zero-cell store: header + strings only, empty column set.
    StoreCellRow empty;
    if (!bindSchema(empty, err)) return false;
  }

  const auto n = static_cast<std::uint64_t>(meta_.cellSlots);
  const auto axisCount = static_cast<std::uint32_t>(axisNames_.size());
  const auto metricCount = static_cast<std::uint32_t>(metricNames_.size());
  const std::size_t tmOffField = colTmOff(axisCount, metricCount);
  const std::size_t tmLenField = colTmLen(axisCount, metricCount);
  const std::size_t pbOffField = colPbOff(axisCount, metricCount);
  const std::size_t pbLenField = colPbLen(axisCount, metricCount);

  // Canonical string table.  The spool interned strings in appendCell
  // arrival order, which differs between the in-process runner and a
  // work queue's completion order; re-pooling sorted (and remapping every
  // id on the way out) makes the final bytes a function of the string
  // SET, which is what the byte-identity contract needs.  Ids are fixed
  // 4-byte fields everywhere (columns, names, telemetry blobs), so no
  // section size or offset moves.
  std::vector<std::string> allStrings;
  allStrings.reserve(stringIds_.size());
  for (const auto& [s, id] : stringIds_) allStrings.push_back(s);
  std::sort(allStrings.begin(), allStrings.end());
  std::string canonicalStrings;
  canonicalStrings.reserve(strings_.size());
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(stringIds_.size());
  std::unordered_map<std::string, std::uint32_t> canonicalIds;
  canonicalIds.reserve(stringIds_.size());
  for (const std::string& s : allStrings) {
    const auto id = static_cast<std::uint32_t>(canonicalStrings.size());
    canonicalIds.emplace(s, id);
    remap.emplace(stringIds_.at(s), id);
    canonicalStrings += s;
    canonicalStrings.push_back('\0');
  }

  // Chunked row reads keep finish() at O(chunk) memory no matter the
  // campaign size.
  const std::size_t chunkRows =
      rowBytes_ > 0 ? std::max<std::size_t>(1, (4u << 20) / rowBytes_) : 1;
  std::string chunk;

  // Pass 1: per-slot blob bases in the canonical (slot-order) final
  // layout — the only O(cells) state, 8 bytes per slot.
  std::vector<std::uint64_t> blobBase(meta_.cellSlots, 0);
  std::uint64_t blobTotal = 0;
  for (std::uint64_t at = 0; at < n; at += chunkRows) {
    const std::size_t rows = static_cast<std::size_t>(std::min<std::uint64_t>(chunkRows, n - at));
    chunk.resize(rows * rowBytes_);
    if (!preadAll(rowsFd_, chunk.data(), chunk.size(), at * rowBytes_, err)) return false;
    for (std::size_t r = 0; r < rows; ++r) {
      const char* rec = chunk.data() + r * rowBytes_;
      blobBase[at + r] = blobTotal;
      for (std::uint32_t m = 0; m < metricCount; ++m) {
        blobTotal += getField<std::uint32_t>(
            rec, fieldOffsets_[colMetric(axisCount, m, kMetricQLen)]);
      }
      blobTotal += getField<std::uint32_t>(rec, fieldOffsets_[pbLenField]);
      blobTotal += getField<std::uint32_t>(rec, fieldOffsets_[tmLenField]);
    }
  }

  // Section offsets are all computable up front.
  StoreHeader header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kStoreVersion;
  header.endian = kEndianTag;
  header.cells = n;
  header.axisCount = axisCount;
  header.metricCount = metricCount;
  header.flags = meta_.stripWall ? kFlagWallStripped : 0;
  header.sketchThreshold = meta_.sketchThreshold;
  header.sketchAlpha = meta_.sketchAlpha;
  header.stringsOff = sizeof(StoreHeader);
  header.stringsLen = canonicalStrings.size();
  header.namesOff = alignUp8(header.stringsOff + header.stringsLen);
  header.columnsOff =
      alignUp8(header.namesOff + 4ull * (axisCount + static_cast<std::uint64_t>(metricCount)));
  std::uint64_t pos = header.columnsOff;
  for (std::uint32_t size : layout_) pos = alignUp8(pos + size * n);
  header.blobOff = pos;
  header.blobLen = blobTotal;
  header.campaignNameId = canonicalIds.at(meta_.campaign);
  header.baseNameId = canonicalIds.at(meta_.base);
  header.totalCells = static_cast<std::uint32_t>(meta_.totalCells);
  header.shardIndex = static_cast<std::uint32_t>(meta_.shardIndex);
  header.shardCount = static_cast<std::uint32_t>(meta_.shardCount);

  const std::string outPath = path_ + ".tmp";
  const int outFd = ::open(outPath.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (outFd < 0) {
    err = "cannot create \"" + outPath + "\": " + std::strerror(errno);
    return false;
  }
  const auto fail = [&](const std::string& what) {
    ::close(outFd);
    ::unlink(outPath.c_str());
    err = what.empty() ? err : what;
    return false;
  };

  std::uint64_t out = 0;
  {
    std::string headerBytes(reinterpret_cast<const char*>(&header), sizeof header);
    if (!writeSection(outFd, headerBytes, out, err)) return fail("");
    if (!writeSection(outFd, canonicalStrings, out, err)) return fail("");
    std::string names;
    names.reserve(4ull * (axisNames_.size() + metricNames_.size()));
    const auto appendId = [&](const std::string& s) {
      const std::uint32_t id = canonicalIds.at(s);
      names.append(reinterpret_cast<const char*>(&id), sizeof id);
    };
    for (const std::string& a : axisNames_) appendId(a);
    for (const std::string& m : metricNames_) appendId(m);
    if (!writeSection(outFd, names, out, err)) return fail("");
  }
  if (out != header.columnsOff) return fail("store layout accounting bug (columnsOff)");

  // Column passes: one strided scan of the spool per column.  q_off and
  // tm_off are rewritten from spool offsets to canonical blob offsets.
  for (std::size_t field = 0; field < layout_.size(); ++field) {
    const std::uint32_t elemSize = layout_[field];
    bool isQOff = false;
    std::uint32_t qOffMetric = 0;
    for (std::uint32_t m = 0; m < metricCount; ++m) {
      if (field == colMetric(axisCount, m, kMetricQOff)) {
        isQOff = true;
        qOffMetric = m;
        break;
      }
    }
    const bool isTmOff = field == tmOffField;
    const bool isPbOff = field == pbOffField;
    // Label and axis-value columns hold string ids that must follow the
    // canonical re-pooling.
    const bool isStringId =
        field == kColLabel || (field >= colAxis(0) && field < colAxis(axisCount));

    std::string col;
    for (std::uint64_t at = 0; at < n; at += chunkRows) {
      const std::size_t rows =
          static_cast<std::size_t>(std::min<std::uint64_t>(chunkRows, n - at));
      chunk.resize(rows * rowBytes_);
      if (!preadAll(rowsFd_, chunk.data(), chunk.size(), at * rowBytes_, err)) return fail("");
      col.resize(rows * elemSize);
      for (std::size_t r = 0; r < rows; ++r) {
        const char* rec = chunk.data() + r * rowBytes_;
        if (isQOff || isTmOff || isPbOff) {
          // Canonical offset: this slot's base plus the lengths of the
          // blobs that precede it within the cell (metric order, then
          // probes, then telemetry) — all readable from the same row.
          std::uint64_t off = blobBase[at + r];
          const std::uint32_t upto = isQOff ? qOffMetric : metricCount;
          for (std::uint32_t m = 0; m < upto; ++m) {
            off += getField<std::uint32_t>(
                rec, fieldOffsets_[colMetric(axisCount, m, kMetricQLen)]);
          }
          if (isTmOff) {
            off += getField<std::uint32_t>(rec, fieldOffsets_[pbLenField]);
          }
          std::memcpy(col.data() + r * elemSize, &off, sizeof off);
        } else if (isStringId) {
          const std::uint32_t id = remap.at(getField<std::uint32_t>(rec, fieldOffsets_[field]));
          std::memcpy(col.data() + r * elemSize, &id, sizeof id);
        } else {
          std::memcpy(col.data() + r * elemSize, rec + fieldOffsets_[field], elemSize);
        }
      }
      if (!pwriteAll(outFd, col.data(), col.size(), out, err)) return fail("");
      out += col.size();
    }
    const std::uint64_t aligned = alignUp8(out);
    if (aligned > out) {
      const char pad[8] = {};
      if (!pwriteAll(outFd, pad, aligned - out, out, err)) return fail("");
      out = aligned;
    }
  }
  if (out != header.blobOff) return fail("store layout accounting bug (blobOff)");

  // Blob pass: each cell's spool blobs are contiguous (appendCell writes
  // them in one shot), so one read per cell re-emits them in slot order.
  std::string blob;
  for (std::uint64_t at = 0; at < n; at += chunkRows) {
    const std::size_t rows =
        static_cast<std::size_t>(std::min<std::uint64_t>(chunkRows, n - at));
    chunk.resize(rows * rowBytes_);
    if (!preadAll(rowsFd_, chunk.data(), chunk.size(), at * rowBytes_, err)) return fail("");
    for (std::size_t r = 0; r < rows; ++r) {
      const char* rec = chunk.data() + r * rowBytes_;
      std::uint64_t cellLen = getField<std::uint32_t>(rec, fieldOffsets_[tmLenField]);
      cellLen += getField<std::uint32_t>(rec, fieldOffsets_[pbLenField]);
      for (std::uint32_t m = 0; m < metricCount; ++m) {
        cellLen += getField<std::uint32_t>(
            rec, fieldOffsets_[colMetric(axisCount, m, kMetricQLen)]);
      }
      if (cellLen == 0) continue;
      // The cell's first spool blob: metric 0's quantile state, or the
      // probe blob when there are no metrics (it precedes telemetry).
      const std::uint64_t cellOff =
          metricCount > 0
              ? getField<std::uint64_t>(
                    rec, fieldOffsets_[colMetric(axisCount, 0, kMetricQOff)])
              : getField<std::uint64_t>(rec, fieldOffsets_[pbOffField]);
      blob.resize(static_cast<std::size_t>(cellLen));
      if (!preadAll(blobFd_, blob.data(), blob.size(), cellOff, err)) return fail("");
      // The telemetry blob (the cell's last) embeds string ids: remap
      // them in place.  Layout: u32 entry count, then (u32 id, f64) pairs.
      const std::uint32_t tmLen = getField<std::uint32_t>(rec, fieldOffsets_[tmLenField]);
      if (tmLen >= 4) {
        char* tm = blob.data() + blob.size() - tmLen;
        std::uint32_t entries = 0;
        std::memcpy(&entries, tm, sizeof entries);
        for (std::uint32_t e = 0; e < entries; ++e) {
          char* at = tm + 4 + static_cast<std::size_t>(e) * 12;
          std::uint32_t id = 0;
          std::memcpy(&id, at, sizeof id);
          id = remap.at(id);
          std::memcpy(at, &id, sizeof id);
        }
      }
      if (!pwriteAll(outFd, blob.data(), blob.size(), out, err)) return fail("");
      out += blob.size();
    }
  }
  if (out != header.blobOff + header.blobLen) {
    return fail("store layout accounting bug (blobLen)");
  }

  if (::fsync(outFd) != 0) {
    return fail("fsync: " + std::string(std::strerror(errno)));
  }
  ::close(outFd);
  if (::rename(outPath.c_str(), path_.c_str()) != 0) {
    err = "rename \"" + outPath + "\" -> \"" + path_ + "\": " + std::strerror(errno);
    ::unlink(outPath.c_str());
    return false;
  }
  closeFds();
  removeTemps();
  bytesWritten_ = out;
  telemetry::counterAdd(kBytesWritten, static_cast<std::uint64_t>(out));
  return true;
}

}  // namespace mcs::store
