#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "store/format.h"
#include "util/sketch.h"

/// Memory-mapped reader for the columnar campaign store.  open() maps
/// the file read-only and validates the header (magic, version, endian
/// tag, section bounds); column accessors return typed pointers straight
/// into the mapping — every column start is 8-byte aligned by the
/// format, so the pointers are safe to dereference and a scan touches
/// only the pages of the columns it reads.  Nothing is ever loaded
/// wholesale.
namespace mcs::store {

class StoreReader {
 public:
  StoreReader() = default;
  ~StoreReader();
  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  [[nodiscard]] bool open(const std::string& path, std::string& err);

  [[nodiscard]] const StoreHeader& header() const noexcept { return *header_; }
  [[nodiscard]] std::size_t cells() const noexcept {
    return static_cast<std::size_t>(header_->cells);
  }
  [[nodiscard]] std::uint64_t fileBytes() const noexcept { return size_; }

  /// Resolves a string-table id (bounds-checked; out-of-range ids yield
  /// an empty string rather than reading past the section).
  [[nodiscard]] std::string str(std::uint32_t id) const;

  [[nodiscard]] const std::vector<std::string>& axisNames() const noexcept {
    return axisNames_;
  }
  [[nodiscard]] const std::vector<std::string>& metricNames() const noexcept {
    return metricNames_;
  }
  /// Index of an axis / metric by name, or -1.
  [[nodiscard]] int axisIndex(const std::string& name) const;
  [[nodiscard]] int metricIndex(const std::string& name) const;

  [[nodiscard]] std::string campaignName() const { return str(header_->campaignNameId); }
  [[nodiscard]] std::string baseName() const { return str(header_->baseNameId); }

  // Typed column pointers (length = cells()).
  [[nodiscard]] const std::uint32_t* cellIndexCol() const { return u32Col(kColCellIndex); }
  [[nodiscard]] const std::uint32_t* labelCol() const { return u32Col(kColLabel); }
  [[nodiscard]] const std::uint32_t* axisCol(std::size_t a) const { return u32Col(colAxis(a)); }
  [[nodiscard]] const std::uint32_t* seedsCol() const {
    return u32Col(colSeeds(header_->axisCount));
  }
  [[nodiscard]] const std::uint32_t* failuresCol() const {
    return u32Col(colFailures(header_->axisCount));
  }
  [[nodiscard]] const std::uint32_t* deliveredCol() const {
    return u32Col(colDelivered(header_->axisCount));
  }
  [[nodiscard]] const std::uint32_t* validCol() const {
    return u32Col(colValid(header_->axisCount));
  }
  [[nodiscard]] const std::uint32_t* invalidCol() const {
    return u32Col(colInvalid(header_->axisCount));
  }

  struct MetricView {
    const std::uint64_t* count = nullptr;
    const double* mean = nullptr;
    const double* m2 = nullptr;
    const double* min = nullptr;
    const double* max = nullptr;
    const double* sum = nullptr;
    const std::uint64_t* qOff = nullptr;
    const std::uint32_t* qLen = nullptr;
  };
  [[nodiscard]] MetricView metric(std::size_t m) const;

  /// One row's full accumulator state for metric `m`, rebuilt from the
  /// moment columns and the quantile blob — merging these across rows is
  /// bit-identical to the in-process campaign reduction.
  [[nodiscard]] OnlineStats momentsAt(std::size_t m, std::size_t row) const;
  [[nodiscard]] bool statsAt(std::size_t m, std::size_t row, StreamingStats& out,
                             std::string& err) const;

  /// The row's telemetry entries, names resolved (empty when the cell
  /// recorded none).
  [[nodiscard]] bool telemetryAt(std::size_t row,
                                 std::vector<std::pair<std::string, double>>& out,
                                 std::string& err) const;

  /// The row's probe state (decode attribution + slot series), rebuilt
  /// from the probe blob — empty when the cell ran with probes disarmed.
  /// Merging these across rows is bit-identical to the in-process merge.
  [[nodiscard]] bool probesAt(std::size_t row, mcs::telemetry::ProbeState& out,
                              std::string& err) const;

 private:
  [[nodiscard]] const std::uint32_t* u32Col(std::size_t field) const;
  [[nodiscard]] const char* blobAt(std::uint64_t off, std::uint32_t len) const;

  const char* map_ = nullptr;
  std::uint64_t size_ = 0;
  const StoreHeader* header_ = nullptr;
  std::vector<std::uint64_t> columnOff_;  // file offset per column
  std::vector<std::string> axisNames_;
  std::vector<std::string> metricNames_;
};

}  // namespace mcs::store
