#include "store/reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mcs::store {

StoreReader::~StoreReader() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), static_cast<std::size_t>(size_));
  }
}

bool StoreReader::open(const std::string& path, std::string& err) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    err = "cannot open store \"" + path + "\": " + std::strerror(errno);
    return false;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    err = "fstat \"" + path + "\": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  if (size_ < sizeof(StoreHeader)) {
    err = "store \"" + path + "\" is smaller than its header";
    ::close(fd);
    return false;
  }
  void* m = ::mmap(nullptr, static_cast<std::size_t>(size_), PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (m == MAP_FAILED) {
    err = "mmap \"" + path + "\": " + std::strerror(errno);
    return false;
  }
  map_ = static_cast<const char*>(m);
  header_ = reinterpret_cast<const StoreHeader*>(map_);

  if (std::memcmp(header_->magic, kMagic, sizeof kMagic) != 0) {
    err = "\"" + path + "\" is not a campaign store (bad magic)";
    return false;
  }
  if (header_->version != kStoreVersion) {
    err = "store \"" + path + "\" has version " + std::to_string(header_->version) +
          ", this build reads version " + std::to_string(kStoreVersion);
    return false;
  }
  if (header_->endian != kEndianTag) {
    err = "store \"" + path + "\" was written on a different-endian machine";
    return false;
  }
  if (header_->stringsOff + header_->stringsLen > size_ || header_->namesOff > size_ ||
      header_->columnsOff > size_ || header_->blobOff + header_->blobLen > size_) {
    err = "store \"" + path + "\" has sections past EOF (truncated?)";
    return false;
  }

  const std::vector<std::uint32_t> layout =
      columnLayout(header_->axisCount, header_->metricCount);
  columnOff_.clear();
  columnOff_.reserve(layout.size());
  std::uint64_t pos = header_->columnsOff;
  for (std::uint32_t size : layout) {
    columnOff_.push_back(pos);
    pos = alignUp8(pos + size * header_->cells);
  }
  if (pos != header_->blobOff) {
    err = "store \"" + path + "\" column section does not meet its blob section";
    return false;
  }

  const std::uint64_t namesEnd =
      header_->namesOff + 4ull * (header_->axisCount + header_->metricCount);
  if (namesEnd > size_) {
    err = "store \"" + path + "\" names section past EOF";
    return false;
  }
  const char* names = map_ + header_->namesOff;
  axisNames_.clear();
  metricNames_.clear();
  for (std::uint32_t a = 0; a < header_->axisCount; ++a) {
    std::uint32_t id = 0;
    std::memcpy(&id, names + 4ull * a, sizeof id);
    axisNames_.push_back(str(id));
  }
  for (std::uint32_t m = 0; m < header_->metricCount; ++m) {
    std::uint32_t id = 0;
    std::memcpy(&id, names + 4ull * (header_->axisCount + m), sizeof id);
    metricNames_.push_back(str(id));
  }
  return true;
}

std::string StoreReader::str(std::uint32_t id) const {
  if (id >= header_->stringsLen) return "";
  const char* base = map_ + header_->stringsOff;
  const char* end = base + header_->stringsLen;
  const char* p = base + id;
  const char* nul = static_cast<const char*>(std::memchr(p, '\0', end - p));
  return nul != nullptr ? std::string(p, nul) : std::string(p, end);
}

int StoreReader::axisIndex(const std::string& name) const {
  for (std::size_t a = 0; a < axisNames_.size(); ++a) {
    if (axisNames_[a] == name) return static_cast<int>(a);
  }
  return -1;
}

int StoreReader::metricIndex(const std::string& name) const {
  for (std::size_t m = 0; m < metricNames_.size(); ++m) {
    if (metricNames_[m] == name) return static_cast<int>(m);
  }
  return -1;
}

const std::uint32_t* StoreReader::u32Col(std::size_t field) const {
  return reinterpret_cast<const std::uint32_t*>(map_ + columnOff_[field]);
}

StoreReader::MetricView StoreReader::metric(std::size_t m) const {
  const std::uint32_t axisCount = header_->axisCount;
  MetricView v;
  v.count = reinterpret_cast<const std::uint64_t*>(
      map_ + columnOff_[colMetric(axisCount, m, kMetricCount)]);
  v.mean = reinterpret_cast<const double*>(
      map_ + columnOff_[colMetric(axisCount, m, kMetricMean)]);
  v.m2 = reinterpret_cast<const double*>(
      map_ + columnOff_[colMetric(axisCount, m, kMetricM2)]);
  v.min = reinterpret_cast<const double*>(
      map_ + columnOff_[colMetric(axisCount, m, kMetricMin)]);
  v.max = reinterpret_cast<const double*>(
      map_ + columnOff_[colMetric(axisCount, m, kMetricMax)]);
  v.sum = reinterpret_cast<const double*>(
      map_ + columnOff_[colMetric(axisCount, m, kMetricSum)]);
  v.qOff = reinterpret_cast<const std::uint64_t*>(
      map_ + columnOff_[colMetric(axisCount, m, kMetricQOff)]);
  v.qLen = reinterpret_cast<const std::uint32_t*>(
      map_ + columnOff_[colMetric(axisCount, m, kMetricQLen)]);
  return v;
}

const char* StoreReader::blobAt(std::uint64_t off, std::uint32_t len) const {
  if (off + len > header_->blobLen) return nullptr;
  return map_ + header_->blobOff + off;
}

OnlineStats StoreReader::momentsAt(std::size_t m, std::size_t row) const {
  const MetricView v = metric(m);
  return OnlineStats::fromMoments(static_cast<std::size_t>(v.count[row]), v.mean[row],
                                  v.m2[row], v.min[row], v.max[row], v.sum[row]);
}

bool StoreReader::statsAt(std::size_t m, std::size_t row, StreamingStats& out,
                          std::string& err) const {
  const MetricView v = metric(m);
  out.moments = momentsAt(m, row);
  const char* blob = blobAt(v.qOff[row], v.qLen[row]);
  if (blob == nullptr) {
    err = "row " + std::to_string(row) + " quantile blob out of bounds";
    return false;
  }
  return parseQuantileBlob(blob, v.qLen[row], header_->sketchAlpha,
                           header_->sketchThreshold, out.quantiles, err);
}

bool StoreReader::telemetryAt(std::size_t row,
                              std::vector<std::pair<std::string, double>>& out,
                              std::string& err) const {
  const std::uint64_t* tmOff = reinterpret_cast<const std::uint64_t*>(
      map_ + columnOff_[colTmOff(header_->axisCount, header_->metricCount)]);
  const std::uint32_t* tmLen = reinterpret_cast<const std::uint32_t*>(
      map_ + columnOff_[colTmLen(header_->axisCount, header_->metricCount)]);
  const char* blob = blobAt(tmOff[row], tmLen[row]);
  if (blob == nullptr) {
    err = "row " + std::to_string(row) + " telemetry blob out of bounds";
    return false;
  }
  std::vector<std::pair<std::uint32_t, double>> raw;
  if (!parseTelemetryBlob(blob, tmLen[row], raw, err)) return false;
  out.clear();
  out.reserve(raw.size());
  for (const auto& [id, value] : raw) out.emplace_back(str(id), value);
  return true;
}

bool StoreReader::probesAt(std::size_t row, mcs::telemetry::ProbeState& out,
                           std::string& err) const {
  const std::uint64_t* pbOff = reinterpret_cast<const std::uint64_t*>(
      map_ + columnOff_[colPbOff(header_->axisCount, header_->metricCount)]);
  const std::uint32_t* pbLen = reinterpret_cast<const std::uint32_t*>(
      map_ + columnOff_[colPbLen(header_->axisCount, header_->metricCount)]);
  const char* blob = blobAt(pbOff[row], pbLen[row]);
  if (blob == nullptr) {
    err = "row " + std::to_string(row) + " probe blob out of bounds";
    return false;
  }
  return parseProbeBlob(blob, pbLen[row], out, err);
}

}  // namespace mcs::store
