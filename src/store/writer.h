#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "scenario/driver.h"
#include "store/format.h"
#include "util/sketch.h"

/// Streaming writer for the columnar campaign store.
///
/// Rows land by *slot* — the cell's position in the shard's expansion
/// order — via pwrite into a fixed-width spool file, so the coordinator
/// can append RESULT frames in whatever order workers finish and still
/// produce the same bytes as the in-process runner appending in order:
/// the spool is positional, the variable-length blobs are reordered
/// canonically at finish(), and the final file is assembled column by
/// column with chunked strided reads (O(chunk) memory, never
/// all-rows-in-memory) and renamed into place atomically.
///
/// Memory: a string table (labels/axis values/telemetry names — shared,
/// tiny), a written-slot bitmap, and one 8-byte blob base per slot at
/// finish time.  No per-seed rows, no row buffering.
namespace mcs::store {

struct StoreMeta {
  std::string campaign;
  std::string base;
  int totalCells = 0;
  int shardIndex = 0;
  int shardCount = 1;
  /// Rows in this store = cells in this shard.
  std::size_t cellSlots = 0;
  /// Zero wall_sec stats/sketch rows (count survives) — see
  /// kFlagWallStripped.
  bool stripWall = false;
  double sketchAlpha = QuantileSketch::kDefaultAlpha;
  std::uint32_t sketchThreshold = StreamingQuantiles::kDefaultExactThreshold;
};

/// One cell's row.  `stats` must be in display order (cellStats()); the
/// first appended row binds the store's axis and metric schema, later
/// rows must carry the same axis keys, and a metric missing from a row
/// writes as an empty accumulator while an unknown metric name is a
/// loud error.
struct StoreCellRow {
  int cellIndex = 0;
  std::string label;
  std::vector<std::pair<std::string, std::string>> assignments;
  int seeds = 0;
  int failures = 0;
  int delivered = 0;
  int valid = 0;
  int invalid = 0;
  const NamedStats* stats = nullptr;
  const MetricMap* telemetry = nullptr;  // optional
  /// Optional probe state (decode attribution + slot series); null or
  /// empty writes the canonical empty blob, so armed and unarmed rows
  /// share one layout.
  const mcs::telemetry::ProbeState* probes = nullptr;
};

class StoreWriter {
 public:
  StoreWriter() = default;
  ~StoreWriter();
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Creates the spool files next to `path`.  The store itself only
  /// appears (atomically) when finish() succeeds.
  [[nodiscard]] bool open(const std::string& path, const StoreMeta& meta, std::string& err);

  /// Writes one cell at `slot` (0-based shard-order position, < cellSlots).
  /// Each slot must be written exactly once, in any order.
  [[nodiscard]] bool appendCell(std::size_t slot, const StoreCellRow& row, std::string& err);

  /// Assembles the columnar file and renames it into place.  Fails if
  /// any slot is missing.
  [[nodiscard]] bool finish(std::string& err);

  /// Final file size in bytes (valid after finish()).
  [[nodiscard]] std::uint64_t bytesWritten() const noexcept { return bytesWritten_; }

  [[nodiscard]] bool isOpen() const noexcept { return rowsFd_ >= 0; }

 private:
  [[nodiscard]] std::uint32_t intern(const std::string& s);
  [[nodiscard]] bool bindSchema(const StoreCellRow& row, std::string& err);
  void closeFds();
  void removeTemps();

  std::string path_;
  StoreMeta meta_;
  int rowsFd_ = -1;
  int blobFd_ = -1;
  std::uint64_t blobSize_ = 0;

  bool schemaBound_ = false;
  std::vector<std::string> axisNames_;
  std::vector<std::string> metricNames_;
  std::vector<std::uint32_t> layout_;
  std::vector<std::size_t> fieldOffsets_;
  std::size_t rowBytes_ = 0;

  std::string strings_;  // concatenated NUL-terminated pool; id = offset
  std::unordered_map<std::string, std::uint32_t> stringIds_;
  std::vector<bool> written_;
  std::size_t writtenCount_ = 0;
  std::uint64_t bytesWritten_ = 0;
};

}  // namespace mcs::store
