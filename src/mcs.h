#pragma once

/// Umbrella header for the mcsinr library: a from-scratch C++20
/// implementation of "Leveraging Multiple Channels in Ad Hoc Networks"
/// (Halldórsson, Wang, Yu; PODC 2015), including the SINR multi-channel
/// simulator it runs on and the single-channel baselines it compares to.
///
/// Typical use (see examples/quickstart.cpp):
///
///   mcs::Rng rng(1);
///   auto pts = mcs::deployUniformSquare(1000, 1.5, rng);
///   mcs::Network net(std::move(pts), mcs::SinrParams{});
///   mcs::Simulator sim(net, /*channels=*/8, /*seed=*/42);
///   std::vector<double> values = ...;  // one per node
///   auto run = mcs::buildAndAggregate(sim, values, mcs::AggKind::Max);
///   // run.valueAtNode[v] == max(values) at every node; run.costs has the
///   // per-stage slot counts.

#include "agg/aggregate.h"
#include "agg/inter.h"
#include "agg/intra.h"
#include "agg/structure.h"
#include "baseline/aloha_agg.h"
#include "baseline/chain.h"
#include "coloring/coloring.h"
#include "geom/deployment.h"
#include "geom/grid_index.h"
#include "geom/vec2.h"
#include "proto/cluster_coloring.h"
#include "proto/clustering.h"
#include "proto/csa.h"
#include "proto/dominating_set.h"
#include "proto/heap_tree.h"
#include "proto/reporter.h"
#include "proto/ruling_set.h"
#include "scenario/driver.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "sim/comm_graph.h"
#include "sim/message.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/tuning.h"
#include "sinr/fading.h"
#include "sinr/medium.h"
#include "sinr/params.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/args.h"
#include "util/clock.h"
#include "util/csv.h"
#include "util/ids.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"
