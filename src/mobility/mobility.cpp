#include "mobility/mobility.h"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace mcs {

namespace {

struct ChurnTelemetry {
  telemetry::CounterId departures = telemetry::counterId("churn.departures");
  telemetry::CounterId arrivals = telemetry::counterId("churn.arrivals");
  telemetry::TraceNameId depart = telemetry::traceName("churn.depart");
  telemetry::TraceNameId arrive = telemetry::traceName("churn.arrive");
};

const ChurnTelemetry& churnTm() {
  static const ChurnTelemetry ids;
  return ids;
}

/// Salts separating the independent draw families (same key, disjoint
/// streams).  Arbitrary odd constants.
constexpr std::uint64_t kArrivalSalt = 0x9e6d63735f617272ULL;   // "..mcs_arr"
constexpr std::uint64_t kWaypointSalt = 0x6d63735f77617970ULL;  // "mcs_wayp"
constexpr std::uint64_t kGroupSalt = 0x6d63735f67727570ULL;     // "mcs_grup"
constexpr std::uint64_t kMemberSalt = 0x6d63735f6d656d62ULL;    // "mcs_memb"

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Reflects x into [lo, hi] (degenerate intervals clamp to lo).
double reflect(double x, double lo, double hi) noexcept {
  if (hi <= lo) return lo;
  const double span = hi - lo;
  double t = std::fmod(x - lo, 2.0 * span);
  if (t < 0.0) t += 2.0 * span;
  return lo + (t <= span ? t : 2.0 * span - t);
}

}  // namespace

std::vector<MobilityModelInfo> mobilityModelList() {
  return {
      {"static", "no motion; scenarios stay bit-identical to pre-mobility runs"},
      {"random_walk",
       "each node steps `mobility_speed` in a fresh uniform direction per slot "
       "(reflected at the deployment box)"},
      {"random_waypoint",
       "walk toward a uniform waypoint at `mobility_speed`, dwell `mobility_pause` "
       "slots, repeat"},
      {"group",
       "`mobility_groups` reference points random-walk; members drift around them "
       "within `mobility_group_radius`"},
  };
}

TopologyDynamics::TopologyDynamics(const TopologyParams& params, std::span<const Vec2> initial,
                                   double graphRadius, std::uint64_t mobilityKey,
                                   std::uint64_t churnKey)
    : params_(params),
      graphRadius_(graphRadius),
      mobilityKey_(mobilityKey),
      churnKey_(churnKey),
      initial_(initial.begin(), initial.end()),
      alive_(initial.size(), 1),
      aliveCount_(static_cast<int>(initial.size())) {
  if (initial_.empty()) return;
  loX_ = hiX_ = initial_[0].x;
  loY_ = hiY_ = initial_[0].y;
  for (const Vec2& p : initial_) {
    loX_ = std::min(loX_, p.x);
    loY_ = std::min(loY_, p.y);
    hiX_ = std::max(hiX_, p.x);
    hiY_ = std::max(hiY_, p.y);
  }

  if (params_.mobility.kind == MobilityKind::RandomWaypoint) {
    const auto n = initial_.size();
    target_.resize(n);
    pauseLeft_.assign(n, 0);
    waypointIndex_.assign(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      target_[v] = {loX_ + (hiX_ - loX_) * unitDraw(mobilityKey_, kWaypointSalt ^ v, 0),
                    loY_ + (hiY_ - loY_) * unitDraw(mobilityKey_, kWaypointSalt ^ v, 1)};
    }
  }
  if (params_.mobility.kind == MobilityKind::GroupReference) {
    const int groups = std::max(1, params_.mobility.groups);
    groupRef_.assign(static_cast<std::size_t>(groups), Vec2{});
    std::vector<int> members(static_cast<std::size_t>(groups), 0);
    for (std::size_t v = 0; v < initial_.size(); ++v) {
      const auto g = static_cast<std::size_t>(v % static_cast<std::size_t>(groups));
      groupRef_[g] = groupRef_[g] + initial_[v];
      ++members[g];
    }
    for (std::size_t g = 0; g < groupRef_.size(); ++g) {
      if (members[g] > 0) groupRef_[g] = groupRef_[g] * (1.0 / members[g]);
    }
  }

  // Slot-zero graph sample: the baseline the drift metrics diff against.
  sampleGraph(initial_, /*final=*/false);
}

void TopologyDynamics::advance(std::uint64_t slot, std::vector<Vec2>& positions) {
  if (params_.churn.enabled()) advanceChurn(slot);
  if (params_.mobility.moving()) advanceMotion(slot, positions);
  const auto every = static_cast<std::uint64_t>(std::max(1, params_.sampleEvery));
  if ((slot + 1) % every == 0) sampleGraph(positions, /*final=*/false);
}

void TopologyDynamics::advanceChurn(std::uint64_t slot) {
  const double dep = params_.churn.departureRate;
  const double arr = params_.churn.arrivalRate;
  for (std::size_t v = 0; v < alive_.size(); ++v) {
    if (alive_[v] != 0) {
      if (dep > 0.0 && unitDraw(churnKey_, slot, v) < dep) {
        alive_[v] = 0;
        --aliveCount_;
        ++stats_.departures;
        telemetry::counterAdd(churnTm().departures);
        telemetry::traceInstant(churnTm().depart, static_cast<std::int64_t>(v));
      }
    } else if (arr > 0.0 && unitDraw(churnKey_, slot, v ^ kArrivalSalt) < arr) {
      alive_[v] = 1;
      ++aliveCount_;
      ++stats_.arrivals;
      telemetry::counterAdd(churnTm().arrivals);
      telemetry::traceInstant(churnTm().arrive, static_cast<std::int64_t>(v));
    }
  }
}

void TopologyDynamics::advanceMotion(std::uint64_t slot, std::vector<Vec2>& positions) {
  const MobilityParams& m = params_.mobility;
  const double speed = m.speed;

  switch (m.kind) {
    case MobilityKind::Static:
      return;

    case MobilityKind::RandomWalk:
      for (std::size_t v = 0; v < positions.size(); ++v) {
        if (alive_[v] == 0) continue;  // departed nodes do not move
        const double theta = kTwoPi * unitDraw(mobilityKey_, slot, v);
        Vec2& p = positions[v];
        p.x = reflect(p.x + speed * std::cos(theta), loX_, hiX_);
        p.y = reflect(p.y + speed * std::sin(theta), loY_, hiY_);
      }
      return;

    case MobilityKind::RandomWaypoint:
      for (std::size_t v = 0; v < positions.size(); ++v) {
        if (alive_[v] == 0) continue;
        if (pauseLeft_[v] > 0) {
          --pauseLeft_[v];
          continue;
        }
        Vec2& p = positions[v];
        const Vec2 d = target_[v] - p;
        const double len = d.norm();
        if (len <= speed) {
          p = target_[v];
          pauseLeft_[v] = m.pause;
          const std::uint64_t idx = ++waypointIndex_[v];
          target_[v] = {
              loX_ + (hiX_ - loX_) * unitDraw(mobilityKey_, kWaypointSalt ^ v, 2 * idx),
              loY_ + (hiY_ - loY_) * unitDraw(mobilityKey_, kWaypointSalt ^ v, 2 * idx + 1)};
        } else {
          p = p + d * (speed / len);
        }
      }
      return;

    case MobilityKind::GroupReference: {
      for (std::size_t g = 0; g < groupRef_.size(); ++g) {
        const double theta = kTwoPi * unitDraw(mobilityKey_, slot, g ^ kGroupSalt);
        Vec2& r = groupRef_[g];
        r.x = reflect(r.x + speed * std::cos(theta), loX_, hiX_);
        r.y = reflect(r.y + speed * std::sin(theta), loY_, hiY_);
      }
      const std::size_t groups = groupRef_.size();
      const double memberStep = speed * 0.5;
      for (std::size_t v = 0; v < positions.size(); ++v) {
        if (alive_[v] == 0) continue;
        const Vec2 ref = groupRef_[v % groups];
        Vec2 offset = positions[v] - ref;
        const double theta = kTwoPi * unitDraw(mobilityKey_, slot, v ^ kMemberSalt);
        offset.x += memberStep * std::cos(theta);
        offset.y += memberStep * std::sin(theta);
        const double len = offset.norm();
        if (len > m.groupRadius) {
          // Soft tether: pull toward the boundary at the member step
          // rate.  A hard projection would teleport members whose
          // initial offset exceeds the tether (e.g. a uniform deployment
          // with near-coincident group references), breaking the
          // bounded-per-slot-displacement premise the incremental
          // GridIndex path and the drift metrics rest on.
          const double pull = std::min(memberStep, len - m.groupRadius);
          offset = offset * ((len - pull) / len);
        }
        positions[v] = ref + offset;
      }
      return;
    }
  }
}

void TopologyDynamics::sampleGraph(std::span<const Vec2> positions, bool final) {
  if (graphRadius_ <= 0.0 || positions.empty()) return;

  // Persistent index over ALL nodes (dead ones keep their last position
  // and are filtered by the alive mask below).  Bounded per-slot motion
  // keeps the incremental path hot; leaving the original bounding box
  // falls back to a full rebuild inside update().
  grid_.ensure(positions, graphRadius_);

  scratchEdges_.clear();
  const auto n = static_cast<NodeId>(positions.size());
  for (NodeId v = 0; v < n; ++v) {
    if (alive_[static_cast<std::size_t>(v)] == 0) continue;
    grid_.forEachInBall(positions[static_cast<std::size_t>(v)], graphRadius_, [&](NodeId u) {
      if (u > v && alive_[static_cast<std::size_t>(u)] != 0) {
        scratchEdges_.push_back((static_cast<std::uint64_t>(v) << 32) |
                                static_cast<std::uint32_t>(u));
      }
    });
  }
  std::sort(scratchEdges_.begin(), scratchEdges_.end());

  ++stats_.graphSamples;
  if (stats_.graphSamples == 1) {
    initialEdges_ = scratchEdges_;
    stats_.initialEdges = initialEdges_.size();
  } else {
    // Sorted symmetric difference against the previous sample.
    std::size_t i = 0, j = 0;
    std::uint64_t added = 0, removed = 0;
    while (i < prevEdges_.size() && j < scratchEdges_.size()) {
      if (prevEdges_[i] == scratchEdges_[j]) {
        ++i;
        ++j;
      } else if (prevEdges_[i] < scratchEdges_[j]) {
        ++removed;
        ++i;
      } else {
        ++added;
        ++j;
      }
    }
    removed += prevEdges_.size() - i;
    added += scratchEdges_.size() - j;
    stats_.edgesAdded += added;
    stats_.edgesRemoved += removed;
  }
  prevEdges_ = scratchEdges_;

  if (final) {
    stats_.finalEdges = scratchEdges_.size();
    std::size_t surviving = 0, i = 0, j = 0;
    while (i < initialEdges_.size() && j < scratchEdges_.size()) {
      if (initialEdges_[i] == scratchEdges_[j]) {
        ++surviving;
        ++i;
        ++j;
      } else if (initialEdges_[i] < scratchEdges_[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    stats_.survivingInitialEdges = surviving;
  }
}

void TopologyDynamics::finalize(std::span<const Vec2> current) {
  sampleGraph(current, /*final=*/true);
  double total = 0.0;
  for (std::size_t v = 0; v < initial_.size() && v < current.size(); ++v) {
    total += dist(initial_[v], current[v]);
  }
  stats_.meanDisplacement = initial_.empty() ? 0.0 : total / static_cast<double>(initial_.size());
}

}  // namespace mcs
