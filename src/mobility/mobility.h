#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/grid_index.h"
#include "geom/vec2.h"
#include "sinr/fading.h"
#include "util/ids.h"

/// Mobility & churn: deterministic per-slot topology dynamics.
///
/// A TopologyDynamics instance advances node positions (a mobility model)
/// and an alive mask (a churn process) once per simulation slot, between
/// intent collection of consecutive slots.  The Simulator owns one when a
/// scenario declares motion or churn; static runs attach nothing and are
/// bit-identical to the pre-mobility engine.
///
/// Reproducibility contract (mirrors sinr/fading.h): every random choice
/// is a pure function of (key, slot, node[, counter]) through the
/// splitmix64 finalizer — no shared mutable RNG — and the advance step
/// runs single-threaded before the Medium resolves the slot.  The two
/// 64-bit keys are drawn from dedicated forks of the Simulator root Rng
/// (streams kMobilityStream / kChurnStream), so a run is bit-identical
/// per seed and independent of the Medium's thread count, exactly like
/// fading.  Forking does not consume root draws, so attaching dynamics
/// never perturbs the per-node protocol streams.
namespace mcs {

/// Which mobility model advances positions each slot.
enum class MobilityKind : std::uint8_t {
  /// No motion (the default; scenarios stay bit-identical to pre-mobility
  /// runs because no dynamics are attached at all).
  Static = 0,
  /// Every node steps `speed` in an i.i.d. uniform direction per slot,
  /// reflected into the deployment bounding box.
  RandomWalk,
  /// Every node walks toward a uniform waypoint at `speed` per slot,
  /// pauses `pause` slots on arrival, then draws the next waypoint.
  RandomWaypoint,
  /// Reference-point group mobility: nodes split into `groups` groups;
  /// each group's reference point random-walks at `speed`, members drift
  /// around it with steps of `speed / 2`, softly tethered to
  /// `groupRadius` (members beyond the tether are pulled toward it at
  /// the member step rate, so per-slot displacement stays bounded by
  /// ~2 * speed).  References start at their group's member centroid, so
  /// the model fits deployments whose index order matches the grouping
  /// (v % groups — e.g. `clustered`); on spatially unsorted deployments
  /// the groups slowly contract toward near-coincident references.
  GroupReference,
};

/// Geometry knobs of the mobility model (units of R_T, per slot).
struct MobilityParams {
  MobilityKind kind = MobilityKind::Static;
  /// Displacement per slot.  Typical: 1e-4 .. 1e-2 (protocol phases span
  /// hundreds of slots, so 1e-3 already drifts nodes by whole cluster
  /// radii over one structure construction).
  double speed = 0.0;
  /// RandomWaypoint: slots to dwell at a reached waypoint.
  int pause = 0;
  /// GroupReference: number of groups (node v belongs to group v % groups).
  int groups = 4;
  /// GroupReference: maximum member distance from the reference point.
  double groupRadius = 0.25;

  [[nodiscard]] bool moving() const noexcept {
    return kind != MobilityKind::Static && speed > 0.0;
  }
};

/// Discretized Poisson churn: per-slot hazard rates.  An alive node
/// departs in a slot with probability `departureRate` (geometric
/// lifetime, the discrete analogue of a Poisson departure process); a
/// departed node re-arrives with probability `arrivalRate`, resuming at
/// its last position.  Dead nodes neither transmit nor listen (the
/// Simulator forces their intent to Idle and skips their protocol
/// callbacks), and they do not move.
struct ChurnParams {
  double departureRate = 0.0;
  double arrivalRate = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return departureRate > 0.0 || arrivalRate > 0.0;
  }
};

/// Everything a scenario declares about topology dynamics.
struct TopologyParams {
  MobilityParams mobility;
  ChurnParams churn;
  /// Drift-metric sampling period: every `sampleEvery` slots the dynamics
  /// re-derive the communication graph (incremental GridIndex update) and
  /// accumulate edge churn.  Purely observational — never affects the run.
  int sampleEvery = 32;

  /// True when a Simulator needs a TopologyDynamics at all.
  [[nodiscard]] bool dynamic() const noexcept {
    return mobility.moving() || churn.enabled();
  }
};

/// Root-fork stream ids for the two dynamics keys.  Far above the
/// per-node streams (1..n) and the fading stream (0), below the scenario
/// value stream (1 << 63); see scenario/runner.h for the full layout.
inline constexpr std::uint64_t kMobilityStream = (1ULL << 62) + 1;
inline constexpr std::uint64_t kChurnStream = (1ULL << 62) + 2;

/// Aggregate observation counters (drift metrics).
struct TopologyStats {
  std::uint64_t departures = 0;  ///< Alive -> dead transitions.
  std::uint64_t arrivals = 0;    ///< Dead -> alive transitions.
  std::uint64_t graphSamples = 0;
  /// Edge-set symmetric difference accumulated across samples.
  std::uint64_t edgesAdded = 0;
  std::uint64_t edgesRemoved = 0;
  std::size_t initialEdges = 0;
  std::size_t finalEdges = 0;
  /// Initial edges still present at finalize() ("structure survival").
  std::size_t survivingInitialEdges = 0;
  /// Mean over nodes of |final - initial| position (finalize()).
  double meanDisplacement = 0.0;

  [[nodiscard]] double edgeChurnPerSlot(std::uint64_t slots) const noexcept {
    return slots ? static_cast<double>(edgesAdded + edgesRemoved) /
                       static_cast<double>(slots)
                 : 0.0;
  }
  [[nodiscard]] double edgeSurvival() const noexcept {
    return initialEdges ? static_cast<double>(survivingInitialEdges) /
                              static_cast<double>(initialEdges)
                        : 1.0;
  }
};

/// One mobility model name + one-line description (CLI listings, README).
struct MobilityModelInfo {
  const char* name;
  const char* description;
};

/// All MobilityKind values with their `mobility =` key names, in enum
/// order (scenario_runner --list prints them).
[[nodiscard]] std::vector<MobilityModelInfo> mobilityModelList();

/// The per-simulation dynamics engine.  Owned by the Simulator; advance()
/// is called once at the top of every slot with the Simulator's mutable
/// position buffer.
class TopologyDynamics {
 public:
  /// `initial` seeds the position history and the reflective bounding
  /// box; `graphRadius` is the communication radius R_eps the drift
  /// metrics sample at; the keys come from root-Rng forks (see above).
  TopologyDynamics(const TopologyParams& params, std::span<const Vec2> initial,
                   double graphRadius, std::uint64_t mobilityKey, std::uint64_t churnKey);

  /// Advances churn, then motion, for slot ordinal `slot` (0-based), and
  /// samples the communication graph every `sampleEvery` slots.
  void advance(std::uint64_t slot, std::vector<Vec2>& positions);

  [[nodiscard]] bool alive(NodeId v) const noexcept {
    return alive_[static_cast<std::size_t>(v)] != 0;
  }
  [[nodiscard]] const std::vector<char>& aliveMask() const noexcept { return alive_; }
  [[nodiscard]] int aliveCount() const noexcept { return aliveCount_; }

  /// Takes the final graph sample, computes survival against the initial
  /// edge set and the mean displacement.  Idempotent per position state.
  void finalize(std::span<const Vec2> current);

  [[nodiscard]] const TopologyStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const TopologyParams& params() const noexcept { return params_; }

 private:
  void advanceChurn(std::uint64_t slot);
  void advanceMotion(std::uint64_t slot, std::vector<Vec2>& positions);
  void sampleGraph(std::span<const Vec2> positions, bool final);

  /// Uniform in [0, 1), pure in (key, a, b): the fading-layer recipe.
  [[nodiscard]] static double unitDraw(std::uint64_t key, std::uint64_t a,
                                       std::uint64_t b) noexcept {
    std::uint64_t h = mix64(key ^ (a + 0x9e3779b97f4a7c15ULL));
    h = mix64(h ^ b);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  TopologyParams params_;
  double graphRadius_;
  std::uint64_t mobilityKey_;
  std::uint64_t churnKey_;

  std::vector<Vec2> initial_;
  std::vector<char> alive_;
  int aliveCount_ = 0;
  // Reflective bounding box (from the initial deployment).
  double loX_ = 0.0, loY_ = 0.0, hiX_ = 0.0, hiY_ = 0.0;

  // RandomWaypoint state.
  std::vector<Vec2> target_;
  std::vector<int> pauseLeft_;
  std::vector<std::uint32_t> waypointIndex_;

  // GroupReference state.
  std::vector<Vec2> groupRef_;

  // Drift-metric sampling state (incremental GridIndex over all nodes).
  GridIndex grid_;
  std::vector<std::uint64_t> initialEdges_;
  std::vector<std::uint64_t> prevEdges_;
  std::vector<std::uint64_t> scratchEdges_;

  TopologyStats stats_;
};

}  // namespace mcs
