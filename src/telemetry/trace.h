#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/clock.h"
#include "util/json.h"

/// Slot-level trace recorder emitting Chrome `trace_event` JSON (load the
/// file in chrome://tracing or https://ui.perfetto.dev).  Spans (`"X"`
/// complete events) cover slot resolution and engine phases; instants
/// (`"i"`) mark protocol/topology state transitions (churn departures and
/// arrivals, seed milestones).  Events live in a bounded ring buffer:
/// when a run emits more than the capacity, the oldest events are
/// overwritten, so a million-slot run keeps its *last* N events — the
/// window that matters when a run misbehaves at the end.
///
/// Like the metrics registry, tracing never feeds back into simulation
/// state: recording is armed by a global flag checked with one relaxed
/// atomic load per site, and emitting appends to the ring under a mutex
/// (tracing is an opt-in debugging mode, so per-event locking is an
/// acceptable cost; disabled cost is the flag check alone).
namespace mcs::telemetry {

namespace detail {
inline std::atomic<bool> g_traceEnabled{false};
}  // namespace detail

[[nodiscard]] inline bool traceEnabled() noexcept {
  return detail::g_traceEnabled.load(std::memory_order_relaxed);
}

/// Arms the recorder with a fresh ring of `ringCapacity` events (previous
/// events are discarded); `on = false` disarms and keeps whatever was
/// recorded for export.
void setTraceEnabled(bool on, std::size_t ringCapacity = 1 << 16);

/// Drops every recorded event (the ring capacity is kept).
void clearTrace();

/// Interns a span/instant name; cache the id in a call-site static.
using TraceNameId = std::uint32_t;
[[nodiscard]] TraceNameId traceName(std::string_view name);

/// Records a complete span ("X"): `tsNs` start, `durNs` duration.
/// `arg` >= 0 is attached as {"args": {"v": arg}} (slot ordinal, node id).
void traceCompleteSlow(TraceNameId name, std::uint64_t tsNs, std::uint64_t durNs,
                       std::int64_t arg);
/// Records an instant event ("i") at the current time.
void traceInstantSlow(TraceNameId name, std::int64_t arg);

inline void traceInstant(TraceNameId name, std::int64_t arg = -1) {
  if (traceEnabled()) traceInstantSlow(name, arg);
}

/// RAII span: construction-to-destruction becomes one complete event.
class TraceScope {
 public:
  explicit TraceScope(TraceNameId name, std::int64_t arg = -1) noexcept
      : name_(name), arg_(arg), armed_(traceEnabled()), t0_(armed_ ? nowNanos() : 0) {}
  ~TraceScope() {
    if (armed_) traceCompleteSlow(name_, t0_, nowNanos() - t0_, arg_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceNameId name_;
  std::int64_t arg_;
  bool armed_;
  std::uint64_t t0_;
};

/// Events currently held in the ring.
[[nodiscard]] std::size_t traceEventCount();

/// The Chrome trace object: {"displayTimeUnit": "ms", "traceEvents":
/// [...]}.  Events are sorted by start time and rebased so the first one
/// starts at ts = 0; timestamps/durations are microseconds (the
/// trace_event convention).  `pid` tags every event (campaign workers use
/// workerId + 1 so merged traces keep one lane per process); a non-empty
/// `processName` prepends a process_name "M" metadata event so the viewer
/// labels the lane.
[[nodiscard]] Json traceToJson(int pid = 1, const std::string& processName = {});

/// Serializes traceToJson() to `path`.  False + `err` on I/O failure.
bool writeTraceFile(const std::string& path, std::string& err, int pid = 1,
                    const std::string& processName = {});

}  // namespace mcs::telemetry
