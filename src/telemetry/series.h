#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/sketch.h"

/// Bounded per-slot time series: how a run evolved, in O(windows) memory
/// regardless of slot count.
///
/// A SlotSeries bins slot ordinals into kWindows fixed windows of
/// `span()` slots each.  The span starts at 1 and doubles whenever a
/// recorded slot falls past the last window, coalescing adjacent window
/// pairs exactly (windows align at slot 0, so binning at span s and then
/// pair-coalescing equals binning at span 2s directly:
/// floor(floor(t/s)/2) == floor(t/2s)).  Every window field is an integer
/// count or a QuantileSketch (integer bucket counts), so both record and
/// merge are associative and commutative — a series built from any
/// interleaving of the same slot records, or merged in any order or tree
/// shape, is bit-identical (locked by tests/test_probes.cpp).  That is
/// what lets the series ride RESULT frames and the campaign tree reducer
/// without wobbling the aggregate, and what makes concurrent seed lanes
/// recording into one shared series (under the probes mutex) equivalent
/// to sequential runs.
///
/// Semantics per window: `slots` counts slot records landing in the
/// window (across every seed that recorded), `listens`/`decodes`/
/// `txIntents` sum the medium's per-slot tallies (delivery rate =
/// decodes/listens), `margin` folds the slot-level SINR-margin sketches,
/// and `progressNum`/`progressDen` sum the optional ProtocolDriver
/// progress samples (fraction = num/den, a per-window mean of the
/// per-slot fractions).
namespace mcs::telemetry {

class SlotSeries {
 public:
  /// Fixed window count: memory stays O(kWindows) forever; resolution
  /// degrades by doubling instead.
  static constexpr std::size_t kWindows = 64;

  struct Window {
    std::uint64_t slots = 0;
    std::uint64_t listens = 0;
    std::uint64_t decodes = 0;
    std::uint64_t txIntents = 0;
    std::uint64_t progressNum = 0;
    std::uint64_t progressDen = 0;
    QuantileSketch margin;

    [[nodiscard]] bool empty() const noexcept {
      return slots == 0 && listens == 0 && decodes == 0 && txIntents == 0 &&
             progressNum == 0 && progressDen == 0 && margin.count() == 0;
    }
    void addCounts(const Window& o) {
      slots += o.slots;
      listens += o.listens;
      decodes += o.decodes;
      txIntents += o.txIntents;
      progressNum += o.progressNum;
      progressDen += o.progressDen;
      margin.merge(o.margin);
    }

    friend bool operator==(const Window& a, const Window& b) noexcept {
      return a.slots == b.slots && a.listens == b.listens && a.decodes == b.decodes &&
             a.txIntents == b.txIntents && a.progressNum == b.progressNum &&
             a.progressDen == b.progressDen && a.margin == b.margin;
    }
  };

  SlotSeries() : windows_(kWindows) {}

  /// Records one resolved slot: the medium's tallies plus the slot-level
  /// margin sketch (already merged across lanes).
  void recordSlot(std::uint64_t slot, std::uint64_t listens, std::uint64_t decodes,
                  std::uint64_t txIntents, const QuantileSketch& margin) {
    Window& w = windowFor(slot);
    ++w.slots;
    w.listens += listens;
    w.decodes += decodes;
    w.txIntents += txIntents;
    w.margin.merge(margin);
  }

  /// Records one protocol progress sample at `slot` (num/den = fraction
  /// done, e.g. nodes colored / nodes total).
  void recordProgress(std::uint64_t slot, std::uint64_t num, std::uint64_t den) {
    Window& w = windowFor(slot);
    w.progressNum += num;
    w.progressDen += den;
  }

  /// Folds `other` in: the finer series coalesces up to the coarser span,
  /// then windows add pairwise.
  void merge(const SlotSeries& other) {
    if (other.empty()) return;
    while (span_ < other.span_) coalesce();
    if (span_ == other.span_) {
      for (std::size_t i = 0; i < kWindows; ++i) windows_[i].addCounts(other.windows_[i]);
      return;
    }
    SlotSeries tmp = other;
    while (tmp.span_ < span_) tmp.coalesce();
    for (std::size_t i = 0; i < kWindows; ++i) windows_[i].addCounts(tmp.windows_[i]);
  }

  [[nodiscard]] std::uint64_t span() const noexcept { return span_; }
  [[nodiscard]] const std::vector<Window>& windows() const noexcept { return windows_; }

  /// Index one past the last non-empty window (0 when nothing recorded) —
  /// what the serializers trim to.
  [[nodiscard]] std::size_t windowsUsed() const noexcept {
    std::size_t used = kWindows;
    while (used > 0 && windows_[used - 1].empty()) --used;
    return used;
  }
  [[nodiscard]] bool empty() const noexcept { return windowsUsed() == 0; }

  /// Rebuilds from serialized state: span plus the leading windows (the
  /// trimmed tail is empty).
  [[nodiscard]] static SlotSeries fromState(std::uint64_t span, std::vector<Window> leading) {
    SlotSeries s;
    s.span_ = span < 1 ? 1 : span;
    for (std::size_t i = 0; i < leading.size() && i < kWindows; ++i) {
      s.windows_[i] = std::move(leading[i]);
    }
    return s;
  }

  friend bool operator==(const SlotSeries& a, const SlotSeries& b) noexcept {
    return a.span_ == b.span_ && a.windows_ == b.windows_;
  }

 private:
  Window& windowFor(std::uint64_t slot) {
    while (slot / span_ >= kWindows) coalesce();
    return windows_[static_cast<std::size_t>(slot / span_)];
  }

  void coalesce() {
    for (std::size_t i = 0; i < kWindows / 2; ++i) {
      Window merged = std::move(windows_[2 * i]);
      merged.addCounts(windows_[2 * i + 1]);
      windows_[i] = std::move(merged);
    }
    for (std::size_t i = kWindows / 2; i < kWindows; ++i) windows_[i] = Window();
    span_ *= 2;
  }

  std::uint64_t span_ = 1;
  std::vector<Window> windows_;
};

}  // namespace mcs::telemetry
