#include "telemetry/trace.h"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <vector>

namespace mcs::telemetry {

namespace {

struct TraceEvent {
  std::uint32_t name = 0;  ///< Index into Ring::names.
  std::uint32_t tid = 0;
  std::uint64_t tsNs = 0;
  std::uint64_t durNs = 0;  ///< 0 for instants.
  std::int64_t arg = -1;    ///< < 0: no args object.
  char ph = 'X';
};

struct Ring {
  std::mutex mu;
  std::vector<std::string> names;
  std::vector<TraceEvent> events;  ///< Ring storage, at most `capacity`.
  std::size_t capacity = 1 << 16;
  std::size_t head = 0;  ///< Next overwrite position once full.
  std::uint32_t nextTid = 1;
};

Ring& ring() {
  static Ring* r = new Ring();  // leaked: outlives worker-thread exit
  return *r;
}

/// Small dense per-thread id for the "tid" field (thread::id hashes are
/// unreadable in the viewer).
std::uint32_t threadTid() {
  thread_local std::uint32_t tid = 0;
  if (tid == 0) {
    Ring& r = ring();
    const std::lock_guard<std::mutex> lock(r.mu);
    tid = r.nextTid++;
  }
  return tid;
}

void push(TraceEvent e) {
  Ring& r = ring();
  const std::lock_guard<std::mutex> lock(r.mu);
  if (r.events.size() < r.capacity) {
    r.events.push_back(e);
  } else if (r.capacity > 0) {
    r.events[r.head] = e;
    r.head = (r.head + 1) % r.capacity;
  }
}

}  // namespace

void setTraceEnabled(bool on, std::size_t ringCapacity) {
  if (on) {
    Ring& r = ring();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.events.clear();
    r.events.reserve(ringCapacity);
    r.capacity = ringCapacity;
    r.head = 0;
  }
  detail::g_traceEnabled.store(on, std::memory_order_relaxed);
}

void clearTrace() {
  Ring& r = ring();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.events.clear();
  r.head = 0;
}

TraceNameId traceName(std::string_view name) {
  Ring& r = ring();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < r.names.size(); ++i) {
    if (r.names[i] == name) return static_cast<TraceNameId>(i);
  }
  r.names.emplace_back(name);
  return static_cast<TraceNameId>(r.names.size() - 1);
}

void traceCompleteSlow(TraceNameId name, std::uint64_t tsNs, std::uint64_t durNs,
                       std::int64_t arg) {
  push(TraceEvent{name, threadTid(), tsNs, durNs, arg, 'X'});
}

void traceInstantSlow(TraceNameId name, std::int64_t arg) {
  push(TraceEvent{name, threadTid(), nowNanos(), 0, arg, 'i'});
}

std::size_t traceEventCount() {
  Ring& r = ring();
  const std::lock_guard<std::mutex> lock(r.mu);
  return r.events.size();
}

Json traceToJson(int pid, const std::string& processName) {
  Ring& r = ring();
  std::vector<TraceEvent> events;
  std::vector<std::string> names;
  {
    const std::lock_guard<std::mutex> lock(r.mu);
    events = r.events;
    names = r.names;
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.tsNs < b.tsNs; });
  const std::uint64_t base = events.empty() ? 0 : events.front().tsNs;

  Json root = Json::object();
  root.set("displayTimeUnit", "ms");
  Json list = Json::array();
  if (!processName.empty()) {
    // process_name metadata ("M") labels this pid's lane in the viewer;
    // trace_check requires one per pid in merged multi-process traces.
    Json m = Json::object();
    m.set("name", "process_name");
    m.set("ph", "M");
    m.set("ts", 0.0);
    m.set("pid", pid);
    m.set("tid", 0.0);
    Json args = Json::object();
    args.set("name", processName);
    m.set("args", std::move(args));
    list.push_back(std::move(m));
  }
  for (const TraceEvent& e : events) {
    Json j = Json::object();
    j.set("name", names[e.name]);
    j.set("ph", std::string(1, e.ph));
    j.set("ts", static_cast<double>(e.tsNs - base) * 1e-3);
    if (e.ph == 'X') j.set("dur", static_cast<double>(e.durNs) * 1e-3);
    if (e.ph == 'i') j.set("s", "t");  // instant scope: thread
    j.set("pid", pid);
    j.set("tid", static_cast<double>(e.tid));
    if (e.arg >= 0) {
      Json args = Json::object();
      args.set("v", static_cast<double>(e.arg));
      j.set("args", std::move(args));
    }
    list.push_back(std::move(j));
  }
  root.set("traceEvents", std::move(list));
  return root;
}

bool writeTraceFile(const std::string& path, std::string& err, int pid,
                    const std::string& processName) {
  std::ofstream f(path);
  f << traceToJson(pid, processName).dump() << '\n';
  f.flush();
  if (!f.good()) {
    err = "cannot write trace file \"" + path + "\"";
    return false;
  }
  return true;
}

}  // namespace mcs::telemetry
