#include "telemetry/probes.h"

#include <mutex>
#include <utility>
#include <vector>

namespace mcs::telemetry {

namespace {

struct ProbeRegistry {
  std::mutex mu;
  ProbeState state;
};

ProbeRegistry& probeReg() {
  // Leaked like the counter registry: probe sites may fire during static
  // destruction of late-exiting threads.
  static ProbeRegistry* r = new ProbeRegistry();
  return *r;
}

Json sketchToJson(const QuantileSketch& s) {
  Json out = Json::object();
  out.set("z", static_cast<std::size_t>(s.zeroCount()));
  const auto sideToJson = [](const std::vector<QuantileSketch::Bucket>& side) {
    Json arr = Json::array();
    for (const QuantileSketch::Bucket& b : side) {
      Json pair = Json::array();
      pair.push_back(b.index);
      pair.push_back(static_cast<std::size_t>(b.count));
      arr.push_back(std::move(pair));
    }
    return arr;
  };
  out.set("neg", sideToJson(s.negativeBuckets()));
  out.set("pos", sideToJson(s.positiveBuckets()));
  return out;
}

QuantileSketch sketchFromJson(const Json* j) {
  if (j == nullptr || !j->isObject()) return QuantileSketch{};
  const auto sideFromJson = [](const Json* arr) {
    std::vector<QuantileSketch::Bucket> side;
    if (arr == nullptr || !arr->isArray()) return side;
    side.reserve(arr->size());
    for (const Json& pair : arr->items()) {
      if (!pair.isArray() || pair.size() != 2) continue;
      side.push_back(QuantileSketch::Bucket{
          static_cast<std::int32_t>(pair.items()[0].asDouble()),
          static_cast<std::uint64_t>(pair.items()[1].asDouble())});
    }
    return side;
  };
  return QuantileSketch::fromState(QuantileSketch::kDefaultAlpha,
                                   static_cast<std::uint64_t>(j->numberAt("z")),
                                   sideFromJson(j->find("neg")), sideFromJson(j->find("pos")));
}

std::uint64_t u64At(const Json& j, const char* key) {
  return static_cast<std::uint64_t>(j.numberAt(key));
}

}  // namespace

void probeSlot(std::uint64_t slot, const SlotProbeSample& sample) {
  ProbeRegistry& r = probeReg();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.state.marginDb.merge(sample.marginDb);
  r.state.nearDb.merge(sample.nearDb);
  r.state.farDb.merge(sample.farDb);
  r.state.series.recordSlot(slot, sample.listens, sample.decodes, sample.txIntents,
                            sample.marginDb);
}

void probeProgress(std::uint64_t slot, std::uint64_t num, std::uint64_t den) {
  ProbeRegistry& r = probeReg();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.state.series.recordProgress(slot, num, den);
}

ProbeState snapshotProbes() {
  ProbeRegistry& r = probeReg();
  const std::lock_guard<std::mutex> lock(r.mu);
  return r.state;
}

void resetProbes() {
  ProbeRegistry& r = probeReg();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.state = ProbeState();
}

Json probesToJson(const ProbeState& p) {
  Json out = Json::object();
  out.set("margin_db", sketchToJson(p.marginDb));
  out.set("near_db", sketchToJson(p.nearDb));
  out.set("far_db", sketchToJson(p.farDb));
  Json series = Json::object();
  series.set("span", static_cast<std::size_t>(p.series.span()));
  Json windows = Json::array();
  const std::size_t used = p.series.windowsUsed();
  for (std::size_t i = 0; i < used; ++i) {
    const SlotSeries::Window& w = p.series.windows()[i];
    Json jw = Json::object();
    jw.set("slots", static_cast<std::size_t>(w.slots));
    jw.set("listens", static_cast<std::size_t>(w.listens));
    jw.set("decodes", static_cast<std::size_t>(w.decodes));
    jw.set("tx", static_cast<std::size_t>(w.txIntents));
    jw.set("pnum", static_cast<std::size_t>(w.progressNum));
    jw.set("pden", static_cast<std::size_t>(w.progressDen));
    jw.set("margin", sketchToJson(w.margin));
    windows.push_back(std::move(jw));
  }
  series.set("windows", std::move(windows));
  out.set("series", std::move(series));
  return out;
}

ProbeState probesFromJson(const Json& j) {
  ProbeState p;
  if (!j.isObject()) return p;
  p.marginDb = sketchFromJson(j.find("margin_db"));
  p.nearDb = sketchFromJson(j.find("near_db"));
  p.farDb = sketchFromJson(j.find("far_db"));
  if (const Json* series = j.find("series"); series != nullptr && series->isObject()) {
    std::vector<SlotSeries::Window> leading;
    if (const Json* windows = series->find("windows");
        windows != nullptr && windows->isArray()) {
      leading.reserve(windows->size());
      for (const Json& jw : windows->items()) {
        SlotSeries::Window w;
        w.slots = u64At(jw, "slots");
        w.listens = u64At(jw, "listens");
        w.decodes = u64At(jw, "decodes");
        w.txIntents = u64At(jw, "tx");
        w.progressNum = u64At(jw, "pnum");
        w.progressDen = u64At(jw, "pden");
        w.margin = sketchFromJson(jw.find("margin"));
        leading.push_back(std::move(w));
      }
    }
    p.series = SlotSeries::fromState(static_cast<std::uint64_t>(series->numberAt("span", 1.0)),
                                     std::move(leading));
  }
  return p;
}

}  // namespace mcs::telemetry
