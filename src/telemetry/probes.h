#pragma once

#include <cstdint>
#include <string>

#include "telemetry/series.h"
#include "util/json.h"
#include "util/sketch.h"

/// Decode-attribution and time-series probes: the cause-and-time layer on
/// the telemetry contract (telemetry/telemetry.h).  Like counters and
/// timers, probes are write-only — arming them never changes a Reception,
/// an RNG draw, or any protocol output — and a disarmed probe site costs
/// one relaxed load (telemetry::probesEnabled()).
///
/// What is recorded (by Medium::resolveSlot and Simulator::step when
/// probesEnabled()):
///  - a campaign-wide SINR-margin sketch in dB — for every decode
///    candidate, 10*log10(best / (beta*(noise + interference))); positive
///    margins decoded, negative failed — plus near/far interference power
///    sketches in dB splitting each listener's interference into the
///    exactly-summed near-field part and the grid-batched far-field part;
///  - a SlotSeries (telemetry/series.h) of per-slot delivery counts,
///    active transmitters, margin quantiles, and optional protocol
///    progress samples.
///
/// Every piece of state is a QuantileSketch (integer bucket counts) or an
/// integer counter, and the global state is mutex-protected and touched
/// once per slot — so probe output is deterministic per seed and
/// invariant to thread count, worker count, and merge order, exactly like
/// the counter registry.  Per-cell capture uses resetProbes() before the
/// cell and snapshotProbes() after it (cells run serially in both the
/// in-process runner and each campaign worker); sketches cannot be
/// diffed like counters, so there is no snapshot-delta idiom here.
namespace mcs::telemetry {

/// One resolved slot's probe payload, accumulated lane-locally in the
/// medium and folded into the global state in a single probeSlot() call.
struct SlotProbeSample {
  std::uint64_t listens = 0;
  std::uint64_t decodes = 0;
  std::uint64_t txIntents = 0;
  QuantileSketch marginDb;
  QuantileSketch nearDb;
  QuantileSketch farDb;
};

/// The mergeable probe aggregate: what a cell captures, a RESULT frame
/// ships, the tree reducer folds, and a store row's probe blob encodes.
struct ProbeState {
  QuantileSketch marginDb;
  QuantileSketch nearDb;
  QuantileSketch farDb;
  SlotSeries series;

  void merge(const ProbeState& other) {
    marginDb.merge(other.marginDb);
    nearDb.merge(other.nearDb);
    farDb.merge(other.farDb);
    series.merge(other.series);
  }

  [[nodiscard]] bool empty() const noexcept {
    return marginDb.count() == 0 && nearDb.count() == 0 && farDb.count() == 0 &&
           series.empty();
  }

  friend bool operator==(const ProbeState& a, const ProbeState& b) noexcept {
    return a.marginDb == b.marginDb && a.nearDb == b.nearDb && a.farDb == b.farDb &&
           a.series == b.series;
  }
};

/// Folds one resolved slot into the global state (no-op when disarmed at
/// the call site — callers gate on probesEnabled() themselves to skip
/// building the sample).
void probeSlot(std::uint64_t slot, const SlotProbeSample& sample);

/// Records one protocol progress sample (Simulator's progress probe).
void probeProgress(std::uint64_t slot, std::uint64_t num, std::uint64_t den);

/// Copies the global probe state (take at a quiesce point).
[[nodiscard]] ProbeState snapshotProbes();

/// Clears the global probe state (call before each cell's batch).
void resetProbes();

/// JSON round-trip for cell files, RESULT frames, and campaign reports:
/// {"margin_db": <sketch>, "near_db": <sketch>, "far_db": <sketch>,
///  "series": {"span": s, "windows": [...]}} — lossless, so worker-written
/// cell files reproduce the in-process runner's probe bytes exactly.
[[nodiscard]] Json probesToJson(const ProbeState& p);
[[nodiscard]] ProbeState probesFromJson(const Json& j);

}  // namespace mcs::telemetry
