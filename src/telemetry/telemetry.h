#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/json.h"

/// Engine-wide observability: named monotonic counters and histogram
/// timers, recorded from anywhere in the stack (medium hot path, geometry
/// maintenance, drivers, campaign runner) without feeding anything back
/// into simulation state — enabling or disabling telemetry never changes
/// a Reception, an RNG draw, or any bit of protocol output, so all
/// bit-reproducibility contracts hold with it on or off.
///
/// Design:
///  - Disabled (the default), every record call is one relaxed atomic
///    load and a predicted branch — no clock reads, no locks, no
///    allocation — so instrumentation can live on per-slot and even
///    per-listener paths permanently.
///  - Enabled, each thread records into its own shard (registered on
///    first use, folded into a retired accumulator on thread exit), so
///    recording never contends.  Shard cells are accessed through
///    std::atomic_ref with relaxed ordering: snapshots taken while
///    workers are actively recording are approximate; taken at a quiesce
///    point (after parallelFor/batch joins, where every caller in this
///    repo reads them) they are exact.
///  - snapshotMetrics() merges shards deterministically: counters sum,
///    timers fold (sum count/total, max of max), and the result is
///    sorted by name — so for deterministic work the merged counters are
///    identical across thread counts (locked by tests/test_telemetry.cpp).
///
/// Names are registered once (mutex-protected, call-site statics cache
/// the dense id) and live for the process; the registry never shrinks.
namespace mcs::telemetry {

namespace detail {
inline std::atomic<bool> g_metricsEnabled{false};
inline std::atomic<bool> g_probesEnabled{false};
}  // namespace detail

/// True when counters/timers are being recorded.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_metricsEnabled.load(std::memory_order_relaxed);
}

/// Arms or disarms metric recording (process-global).
void setEnabled(bool on) noexcept;

/// True when decode-attribution and time-series probes are being recorded
/// (telemetry/probes.h).  Like enabled(), a disarmed check is one relaxed
/// load, so probe sites can live on per-slot paths permanently.
[[nodiscard]] inline bool probesEnabled() noexcept {
  return detail::g_probesEnabled.load(std::memory_order_relaxed);
}

/// Arms or disarms probe recording (process-global).  Arming probes also
/// arms metrics: the attribution cause counters ride the counter registry,
/// so a probes-armed run always has them.  Disarming probes leaves metrics
/// in whatever state they were.
void setProbesEnabled(bool on) noexcept;

using CounterId = std::uint32_t;
using TimerId = std::uint32_t;

/// Registers (or looks up) a counter/timer by name.  Call once per site
/// and cache the id (a function-local static is the idiom); the lookup
/// takes a mutex.
[[nodiscard]] CounterId counterId(std::string_view name);
[[nodiscard]] TimerId timerId(std::string_view name);

/// Slow paths: record unconditionally into this thread's shard.
void counterAddSlow(CounterId id, std::uint64_t delta);
void timerRecordSlow(TimerId id, std::uint64_t ns);

/// Adds `delta` to a monotonic counter (no-op when disabled).
inline void counterAdd(CounterId id, std::uint64_t delta = 1) {
  if (enabled() && delta != 0) counterAddSlow(id, delta);
}

/// Records one duration sample into a histogram timer (no-op when disabled).
inline void timerRecord(TimerId id, std::uint64_t ns) {
  if (enabled()) timerRecordSlow(id, ns);
}

/// RAII scope timer: measures construction-to-destruction and records it
/// into the timer.  When telemetry is disabled at construction the scope
/// never reads the clock.
class PhaseTimer {
 public:
  explicit PhaseTimer(TimerId id) noexcept
      : id_(id), armed_(enabled()), t0_(armed_ ? nowNanos() : 0) {}
  ~PhaseTimer() { stop(); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Records now, instead of at scope exit (idempotent).
  void stop() {
    if (armed_) {
      timerRecordSlow(id_, nowNanos() - t0_);
      armed_ = false;
    }
  }

 private:
  TimerId id_;
  bool armed_;
  std::uint64_t t0_;
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct TimerSample {
  std::string name;
  std::uint64_t count = 0;
  double totalSec = 0.0;
  double maxSec = 0.0;
};

/// A merged, name-sorted view of every registered counter and timer.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<TimerSample> timers;

  /// Counter value by name (0 when absent).
  [[nodiscard]] std::uint64_t counterOr(std::string_view name,
                                        std::uint64_t fallback = 0) const noexcept;
  /// Timer sample by name (nullptr when absent).
  [[nodiscard]] const TimerSample* findTimer(std::string_view name) const noexcept;

  /// True when nothing was recorded (all counters zero, all timers empty).
  [[nodiscard]] bool empty() const noexcept;

  /// This snapshot minus an earlier one (per-name monotonic subtraction;
  /// names absent from `prev` pass through).  The per-cell/per-run delta
  /// idiom: snapshot before, snapshot after, diff.
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& prev) const;

  /// {"counters": {name: value, ...},
  ///  "timers": {name: {"count": n, "total_sec": s, "mean_us": u,
  ///                    "max_us": m}, ...}}
  [[nodiscard]] Json toJson() const;
};

/// Merges every shard (live + retired) into a snapshot.  Exact when no
/// thread is concurrently recording (see the header comment).
[[nodiscard]] MetricsSnapshot snapshotMetrics();

/// Zeroes every counter and timer (registrations are kept).  Only call
/// at a quiesce point — e.g. between a warmup and a measured phase.
void resetMetrics();

}  // namespace mcs::telemetry
