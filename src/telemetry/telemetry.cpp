#include "telemetry/telemetry.h"

#include <algorithm>
#include <mutex>

namespace mcs::telemetry {

namespace {

struct TimerAcc {
  std::uint64_t count = 0;
  std::uint64_t totalNs = 0;
  std::uint64_t maxNs = 0;
};

/// One thread's recording area.  Cells are plain integers written by the
/// owning thread through relaxed std::atomic_ref stores; snapshot/reset
/// read and write them the same way, so cross-thread access is race-free
/// without per-record locking.  The vectors themselves only grow under
/// the registry mutex (see growCounters/growTimers), which snapshot also
/// holds, so reallocation never races a reader.
struct Shard {
  std::vector<std::uint64_t> counters;
  std::vector<TimerAcc> timers;
};

struct Registry {
  std::mutex mu;
  std::vector<std::string> counterNames;
  std::vector<std::string> timerNames;
  std::vector<Shard*> live;
  Shard retired;  ///< Folded-in shards of exited threads.
};

Registry& reg() {
  // Leaked on purpose: worker threads may exit (and merge their shards)
  // during static destruction, after a function-local static registry
  // would already be gone.
  static Registry* r = new Registry();
  return *r;
}

inline std::uint64_t relaxedLoad(const std::uint64_t& cell) noexcept {
  return std::atomic_ref<const std::uint64_t>(cell).load(std::memory_order_relaxed);
}

inline void relaxedStore(std::uint64_t& cell, std::uint64_t v) noexcept {
  std::atomic_ref<std::uint64_t>(cell).store(v, std::memory_order_relaxed);
}

/// Owner-thread increment (no RMW needed: a shard has exactly one writer).
inline void relaxedAdd(std::uint64_t& cell, std::uint64_t delta) noexcept {
  relaxedStore(cell, relaxedLoad(cell) + delta);
}

struct TlsShard {
  Shard shard;

  TlsShard() {
    Registry& r = reg();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.live.push_back(&shard);
  }

  ~TlsShard() {
    Registry& r = reg();
    const std::lock_guard<std::mutex> lock(r.mu);
    // Fold this thread's totals into the retired accumulator so counts
    // survive ThreadPool teardown (pools die before snapshots are read).
    auto& rc = r.retired.counters;
    if (rc.size() < shard.counters.size()) rc.resize(shard.counters.size());
    for (std::size_t i = 0; i < shard.counters.size(); ++i) rc[i] += shard.counters[i];
    auto& rt = r.retired.timers;
    if (rt.size() < shard.timers.size()) rt.resize(shard.timers.size());
    for (std::size_t i = 0; i < shard.timers.size(); ++i) {
      rt[i].count += shard.timers[i].count;
      rt[i].totalNs += shard.timers[i].totalNs;
      rt[i].maxNs = std::max(rt[i].maxNs, shard.timers[i].maxNs);
    }
    r.live.erase(std::find(r.live.begin(), r.live.end(), &shard));
  }
};

Shard& tls() {
  thread_local TlsShard t;
  return t.shard;
}

void growCounters(Shard& s, std::size_t atLeast) {
  Registry& r = reg();
  const std::lock_guard<std::mutex> lock(r.mu);
  s.counters.resize(std::max(atLeast, r.counterNames.size()));
}

void growTimers(Shard& s, std::size_t atLeast) {
  Registry& r = reg();
  const std::lock_guard<std::mutex> lock(r.mu);
  s.timers.resize(std::max(atLeast, r.timerNames.size()));
}

std::uint32_t internName(std::vector<std::string>& names, std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  }
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

}  // namespace

void setEnabled(bool on) noexcept {
  detail::g_metricsEnabled.store(on, std::memory_order_relaxed);
}

void setProbesEnabled(bool on) noexcept {
  if (on) setEnabled(true);
  detail::g_probesEnabled.store(on, std::memory_order_relaxed);
}

CounterId counterId(std::string_view name) {
  Registry& r = reg();
  const std::lock_guard<std::mutex> lock(r.mu);
  return internName(r.counterNames, name);
}

TimerId timerId(std::string_view name) {
  Registry& r = reg();
  const std::lock_guard<std::mutex> lock(r.mu);
  return internName(r.timerNames, name);
}

void counterAddSlow(CounterId id, std::uint64_t delta) {
  Shard& s = tls();
  if (id >= s.counters.size()) growCounters(s, static_cast<std::size_t>(id) + 1);
  relaxedAdd(s.counters[id], delta);
}

void timerRecordSlow(TimerId id, std::uint64_t ns) {
  Shard& s = tls();
  if (id >= s.timers.size()) growTimers(s, static_cast<std::size_t>(id) + 1);
  TimerAcc& acc = s.timers[id];
  relaxedAdd(acc.count, 1);
  relaxedAdd(acc.totalNs, ns);
  if (ns > relaxedLoad(acc.maxNs)) relaxedStore(acc.maxNs, ns);
}

std::uint64_t MetricsSnapshot::counterOr(std::string_view name,
                                         std::uint64_t fallback) const noexcept {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

const TimerSample* MetricsSnapshot::findTimer(std::string_view name) const noexcept {
  for (const TimerSample& t : timers) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

bool MetricsSnapshot::empty() const noexcept {
  for (const CounterSample& c : counters) {
    if (c.value != 0) return false;
  }
  for (const TimerSample& t : timers) {
    if (t.count != 0) return false;
  }
  return true;
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& prev) const {
  MetricsSnapshot out = *this;
  for (CounterSample& c : out.counters) {
    const std::uint64_t before = prev.counterOr(c.name);
    c.value = c.value >= before ? c.value - before : 0;
  }
  for (TimerSample& t : out.timers) {
    if (const TimerSample* before = prev.findTimer(t.name)) {
      t.count = t.count >= before->count ? t.count - before->count : 0;
      t.totalSec = std::max(0.0, t.totalSec - before->totalSec);
      // maxSec stays the lifetime max: per-interval maxima are not
      // recoverable from fold state, and the lifetime max is still a
      // valid upper bound for the interval.
    }
  }
  return out;
}

Json MetricsSnapshot::toJson() const {
  Json j = Json::object();
  Json c = Json::object();
  for (const CounterSample& s : counters) c.set(s.name, static_cast<double>(s.value));
  j.set("counters", std::move(c));
  Json t = Json::object();
  for (const TimerSample& s : timers) {
    Json one = Json::object();
    one.set("count", static_cast<double>(s.count));
    one.set("total_sec", s.totalSec);
    one.set("mean_us", s.count ? s.totalSec * 1e6 / static_cast<double>(s.count) : 0.0);
    one.set("max_us", s.maxSec * 1e6);
    t.set(s.name, std::move(one));
  }
  j.set("timers", std::move(t));
  return j;
}

MetricsSnapshot snapshotMetrics() {
  Registry& r = reg();
  const std::lock_guard<std::mutex> lock(r.mu);
  MetricsSnapshot out;
  out.counters.resize(r.counterNames.size());
  for (std::size_t i = 0; i < r.counterNames.size(); ++i) {
    out.counters[i].name = r.counterNames[i];
    std::uint64_t sum = i < r.retired.counters.size() ? r.retired.counters[i] : 0;
    for (const Shard* s : r.live) {
      if (i < s->counters.size()) sum += relaxedLoad(s->counters[i]);
    }
    out.counters[i].value = sum;
  }
  out.timers.resize(r.timerNames.size());
  for (std::size_t i = 0; i < r.timerNames.size(); ++i) {
    TimerSample& t = out.timers[i];
    t.name = r.timerNames[i];
    std::uint64_t count = 0, totalNs = 0, maxNs = 0;
    const auto fold = [&](const TimerAcc& acc) {
      count += relaxedLoad(acc.count);
      totalNs += relaxedLoad(acc.totalNs);
      maxNs = std::max(maxNs, relaxedLoad(acc.maxNs));
    };
    if (i < r.retired.timers.size()) fold(r.retired.timers[i]);
    for (const Shard* s : r.live) {
      if (i < s->timers.size()) fold(s->timers[i]);
    }
    t.count = count;
    t.totalSec = static_cast<double>(totalNs) * 1e-9;
    t.maxSec = static_cast<double>(maxNs) * 1e-9;
  }
  const auto byName = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(out.counters.begin(), out.counters.end(), byName);
  std::sort(out.timers.begin(), out.timers.end(), byName);
  return out;
}

void resetMetrics() {
  Registry& r = reg();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto zero = [](Shard& s) {
    for (std::uint64_t& c : s.counters) relaxedStore(c, 0);
    for (TimerAcc& t : s.timers) {
      relaxedStore(t.count, 0);
      relaxedStore(t.totalNs, 0);
      relaxedStore(t.maxNs, 0);
    }
  };
  zero(r.retired);
  for (Shard* s : r.live) zero(*s);
}

}  // namespace mcs::telemetry
