#include "proto/cluster_coloring.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "proto/ruling_set.h"

namespace mcs {
namespace {

/// One verification sweep (see colorClusters): colored dominators announce
/// their color; a dominator hearing its own color from a smaller-id
/// R_{eps/2}-neighbor demotes itself back to uncolored.  Returns the
/// number of demotions.
///
/// When colorPeriod > 0, rounds are sliced by color: in a color-c round
/// only color-c dominators participate.  Since a correct coloring keeps
/// same-color dominators >= R_{eps/2} apart, contention inside one slice
/// is negligible and a violating pair detects itself almost surely.
int verifySweep(Simulator& sim, Clustering& cl, std::vector<char>& uncolored, int rounds,
                double announceProb, std::uint64_t& slots, int colorPeriod = 0) {
  const Network& net = sim.network();
  const int n = net.size();
  std::vector<char> demote(static_cast<std::size_t>(n), 0);
  const int totalRounds = colorPeriod > 0 ? rounds * colorPeriod : rounds;
  for (int t = 0; t < totalRounds; ++t) {
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!cl.isDominator[vi] || cl.colorOfCluster[vi] < 0) return Intent::idle();
          if (colorPeriod > 0 && cl.colorOfCluster[vi] % colorPeriod != t % colorPeriod) {
            return Intent::idle();
          }
          if (sim.rng(v).bernoulli(announceProb)) {
            Message m;
            m.type = MsgType::Announce;
            m.src = v;
            m.a = cl.colorOfCluster[vi];
            return Intent::transmit(0, m);
          }
          return Intent::listen(0);
        },
        [&](NodeId v, const Reception& r) {
          const auto vi = static_cast<std::size_t>(v);
          if (!r.received || r.msg.type != MsgType::Announce) return;
          if (cl.colorOfCluster[vi] < 0) return;
          if (r.msg.a == cl.colorOfCluster[vi] && r.msg.src < v &&
              sim.network().bounds().distanceUpper(r.signalPower) <= net.rEpsHalf()) {
            demote[vi] = 1;
          }
        });
    ++slots;
  }
  int demotions = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (demote[vi]) {
      cl.colorOfCluster[vi] = -1;
      uncolored[vi] = 1;
      ++demotions;
    }
  }
  return demotions;
}

}  // namespace

ClusterColoringResult colorClusters(Simulator& sim, Clustering& cl) {
  const Network& net = sim.network();
  const Tuning& tun = net.tuning();
  const int n = net.size();

  cl.colorOfCluster.assign(static_cast<std::size_t>(n), -1);

  // Geometric bound phi on the number of dominators in an R_{eps/2}-ball
  // (the paper's 4 mu (R_{eps/2} + r_c/2)^2 / r_c^2, via packingBound).
  const int phiBound = packingBound(net.rEpsHalf(), net.rc());
  const int maxPhases = std::max(8, tun.coloringPhaseSlack * phiBound);

  std::vector<char> uncolored = cl.isDominator;
  int remaining = static_cast<int>(cl.dominators.size());

  ClusterColoringResult out;
  while (remaining > 0) {
    if (out.phases >= maxPhases) {
      throw std::runtime_error("colorClusters: phase cap exceeded");
    }
    RulingSetConfig cfg;
    cfg.radius = net.rEpsHalf();
    cfg.capProb = 1.0 / (2.0 * tun.muDensity);
    // Contention within an R_{eps/2}-ball can initially be ~phiBound
    // dominators, so start low and double (DESIGN.md §3.1).
    cfg.initialProb = std::min(cfg.capProb, 0.5 / std::max(2, std::min(phiBound, remaining)));
    cfg.epochRounds = tun.domEpochRounds;
    cfg.cycleProb = true;
    const int doublings =
        cfg.initialProb >= cfg.capProb
            ? 0
            : static_cast<int>(std::ceil(std::log2(cfg.capProb / cfg.initialProb)));
    cfg.totalRounds = doublings * tun.domEpochRounds + tun.lnRounds(tun.gammaRuling, n);
    // Survivors self-elect (as in §4): an isolated dominator has no
    // R_{eps/2}-neighbor to acknowledge it and must take the color
    // unilaterally.  Two *adjacent* survivors sharing a color is the rare
    // failure Lemma 6 bounds; the verification sweeps below repair it.
    cfg.selfElectSurvivors = true;

    RulingSetResult rs = runRulingSet(sim, uncolored, cfg);
    out.slotsUsed += rs.slotsUsed;

    int colored = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (uncolored[vi] && rs.inSet[vi]) {
        cl.colorOfCluster[vi] = out.phases;
        uncolored[vi] = 0;
        ++colored;
      }
    }
    remaining -= colored;
    ++out.phases;

    // Cheap per-phase conflict sweep: without Def-4 clear receptions two
    // nearby dominators can join the same phase's ruling set in the same
    // round (the failure Lemma 5 excludes).
    remaining += verifySweep(sim, cl, uncolored, tun.lnRounds(tun.gammaRuling / 2.0, n, 8),
                             1.0 / (2.0 * tun.muDensity), out.slotsUsed);

    // A phase that colors nothing can only happen if every uncolored
    // dominator was dominated-without-joining; the next phase retries, but
    // guard against a livelock under adversarial interference.
    if (colored == 0 && out.phases > maxPhases / 2) {
      throw std::runtime_error("colorClusters: no progress");
    }

    // Strong final verification once everyone is colored: color-sliced
    // sweeps (near-certain detection) until two consecutive clean passes.
    if (remaining == 0) {
      int cleanPasses = 0;
      for (int sweep = 0; sweep < 8 && remaining == 0 && cleanPasses < 2; ++sweep) {
        const int demoted =
            verifySweep(sim, cl, uncolored, tun.lnRounds(tun.gammaRuling / 2.0, n, 10), 0.4,
                        out.slotsUsed, std::max(1, out.phases));
        if (demoted == 0) {
          ++cleanPasses;
        } else {
          remaining += demoted;  // re-enter the phase loop
        }
      }
    }
  }
  cl.numColors = std::max(1, out.phases);
  return out;
}

}  // namespace mcs
