#pragma once

#include <cstdint>
#include <vector>

#include "proto/clustering.h"
#include "sim/simulator.h"

/// Cluster-Size Approximation (§5.2.1 and Appendix A, Lemmas 12-14).
///
/// Every node learns a constant-factor approximation of the number of
/// dominatees in its cluster.  Two variants:
///  * runCsaLarge — the single-channel doubling-probability estimator
///    (O(log DeltaHat * log n) rounds, Lemma 12);
///  * runCsaSmall — dominatees spread over all F channels, elect a
///    per-channel leader, estimate per channel in parallel and aggregate
///    over a binary tree with auxiliary-role fallback
///    (O(log n log log n) rounds for DeltaHat <= F polylog n, Lemma 13);
///  * runCsa — picks between them per Lemma 14.
namespace mcs {

struct CsaResult {
  /// Per node: estimated number of dominatees in its cluster (the node's
  /// own view after the final broadcast; consistent cluster-wide whp).
  std::vector<double> estimateOfNode;
  std::uint64_t slotsUsed = 0;
  /// Highest phase index any cluster reached (large variant).
  int phasesMax = 0;
  /// True iff every cluster terminated explicitly (no fallback estimate).
  bool allTerminated = true;
};

/// Single-channel CSA.  `deltaHat` is the known upper bound on cluster
/// size (<= 0 selects n, the naive bound).
CsaResult runCsaLarge(Simulator& sim, const Clustering& cl, int deltaHat = -1);

/// Channel-parallel CSA (Appendix A); requires deltaHat <= F * polylog n
/// for its bound but is correct for any input.
CsaResult runCsaSmall(Simulator& sim, const Clustering& cl, int deltaHat = -1);

/// Lemma 14 combination: small variant when deltaHat/F <= log^2 n,
/// large otherwise.
CsaResult runCsa(Simulator& sim, const Clustering& cl, int deltaHat = -1);

/// Ground-truth estimate quality: the worst multiplicative error of the
/// dominators' cluster-size estimates, on (size + 1) to stay finite for
/// empty clusters.  >= 1; 1 = exact.  Harness-side validation only.
[[nodiscard]] double csaWorstRatio(const Clustering& cl,
                                   const std::vector<double>& estimateOfNode);

}  // namespace mcs
