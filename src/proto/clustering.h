#pragma once

#include <vector>

#include "util/ids.h"

/// Shared clustering state produced by §5.1 and consumed by everything
/// downstream (CSA, reporters, aggregation, coloring).
namespace mcs {

/// The backbone clustering: a constant-density set of dominators, a
/// binding of every node to a dominator within r_c, and a coloring of
/// clusters such that dominators within R_{eps/2} get different colors.
struct Clustering {
  /// isDominator[v] != 0 iff v heads a cluster.
  std::vector<char> isDominator;
  /// dominatorOf[v]: the dominator v is bound to (v itself for dominators).
  std::vector<NodeId> dominatorOf;
  /// All dominator ids, ascending.
  std::vector<NodeId> dominators;
  /// colorOfCluster[d]: TDMA color of the cluster headed by dominator d
  /// (-1 for non-dominators).  Empty until cluster coloring runs.
  std::vector<int> colorOfCluster;
  /// Number of TDMA colors phi (0 until cluster coloring runs).
  int numColors = 0;

  [[nodiscard]] int clusterColorOf(NodeId v) const {
    return colorOfCluster[static_cast<std::size_t>(dominatorOf[static_cast<std::size_t>(v)])];
  }
};

/// The cluster-TDMA scheme of §5.1.2: in global round r, exactly the
/// clusters with color (r mod phi) are allowed to transmit.
struct TdmaSchedule {
  int period = 1;
  /// Per-node color (the color of the node's cluster).
  std::vector<int> colorOfNode;

  [[nodiscard]] static TdmaSchedule from(const Clustering& cl) {
    TdmaSchedule t;
    t.period = cl.numColors > 0 ? cl.numColors : 1;
    t.colorOfNode.resize(cl.dominatorOf.size());
    for (std::size_t v = 0; v < cl.dominatorOf.size(); ++v) {
      const NodeId d = cl.dominatorOf[v];
      t.colorOfNode[v] = d == kNoNode ? 0 : cl.colorOfCluster[static_cast<std::size_t>(d)];
    }
    return t;
  }

  /// May node v transmit in global round `round`?
  [[nodiscard]] bool active(NodeId v, long round) const noexcept {
    if (period <= 1) return true;
    return colorOfNode[static_cast<std::size_t>(v)] ==
           static_cast<int>(round % static_cast<long>(period));
  }
};

/// Per-dominator dominatee counts, indexed by node id (0 elsewhere; a
/// dominator does not count itself).
[[nodiscard]] inline std::vector<int> clusterSizes(const Clustering& cl) {
  std::vector<int> size(cl.dominatorOf.size(), 0);
  for (std::size_t v = 0; v < cl.dominatorOf.size(); ++v) {
    const NodeId d = cl.dominatorOf[v];
    if (d != kNoNode && d != static_cast<NodeId>(v)) ++size[static_cast<std::size_t>(d)];
  }
  return size;
}

/// Largest dominatee count over all clusters.
[[nodiscard]] inline int largestClusterSize(const Clustering& cl) {
  int best = 0;
  for (const int s : clusterSizes(cl)) {
    if (s > best) best = s;
  }
  return best;
}

/// Conservative bound on the number of pairwise r-independent points that
/// fit in a ball of radius R (area packing argument).
[[nodiscard]] inline int packingBound(double R, double r) noexcept {
  if (r <= 0.0) return 1;
  const double ratio = 2.0 * R / r + 1.0;
  return static_cast<int>(ratio * ratio) + 1;
}

}  // namespace mcs
