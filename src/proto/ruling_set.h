#pragma once

#include <cstdint>
#include <vector>

#include "proto/clustering.h"
#include "sim/simulator.h"
#include "util/ids.h"

/// The (r, 2r)-ruling-set protocol of §4.
///
/// Each round has three slots:
///   1. HELLO  — active nodes transmit with their current probability;
///   2. ACK    — nodes with a *clear reception* (Def. 4) of a HELLO from an
///               r-neighbor acknowledge it with probability capProb;
///   3. IN     — a HELLO sender acknowledged by an r-neighbor joins the
///               set, announces IN, and halts; listeners that decode an IN
///               from an r-neighbor halt as dominated.
///
/// The engine supports two probability schedules:
///  * fixed (epochRounds == 0): the paper's §4 algorithm, which assumes a
///    constant-density participant set and transmits with 1/(2 mu);
///  * doubling (epochRounds > 0): starts at initialProb and doubles every
///    epoch up to capProb.  This is our stand-in for the density-reduction
///    role of Scheideler et al. [28] (DESIGN.md §3.1) and is also used for
///    per-channel leader election where the local density is unknown.
namespace mcs {

struct RulingSetConfig {
  /// Independence radius r.  Members end pairwise > r apart (whp) and
  /// every halted participant is bound to a member within r.
  double radius = 0.1;
  /// Starting per-node transmission probability.
  double initialProb = 0.125;
  /// Probability cap on HELLO transmissions (1/(2 mu)).
  double capProb = 0.125;
  /// ACK transmission probability.  The paper uses 1/(2 mu), which makes
  /// pairwise elections succeed only ~1/(2 mu)^2 per round and forces its
  /// huge gamma; SINR capture lets us ack far more aggressively.
  double ackProb = 0.4;
  /// Members of S keep re-announcing IN with this probability after
  /// joining, so a single jammed IN slot cannot leave r-neighbors unaware
  /// (they would self-elect duplicates otherwise).
  double reannounceProb = 0.25;
  /// Active rounds between probability doublings; 0 = fixed probability.
  int epochRounds = 0;
  /// When true, a node whose probability reaches capProb wraps back to
  /// initialProb (a "decay cycle").  Repeated cycles sweep through every
  /// contention regime, which replaces the density-reduction role of
  /// Scheideler et al.'s phase 1 on arbitrary-density inputs.
  bool cycleProb = false;
  /// Active (non-gated) rounds each participant runs before the protocol
  /// ends; survivors then self-elect if selfElectSurvivors.
  int totalRounds = 100;
  bool selfElectSurvivors = true;
  /// Enforce Definition 4's clear reception (interference <= T_s) before
  /// acknowledging a HELLO.  The paper needs this only on constant-density
  /// inputs; on raw inputs it is so conservative that it serializes all
  /// elections, so the default relies on plain SINR decoding — capture
  /// already prevents two nearby nodes from being heard simultaneously.
  bool requireClear = false;
  /// Channel each participant operates on; empty = all on channel 0.
  std::vector<ChannelId> channelOf;
  /// Optional group id per participant (e.g. its cluster's dominator).
  /// HELLO/IN messages carry the sender's group and are ignored across
  /// groups, so concurrent per-cluster elections cannot dominate each
  /// other's members.  Empty = one global group.
  std::vector<NodeId> groupOf;
  /// Optional cluster-TDMA gate (period 1 = ungated).
  TdmaSchedule tdma;
  /// Global-round offset for TDMA alignment when composing protocols.
  long roundOffset = 0;
};

struct RulingSetResult {
  /// Membership in the ruling set S.
  std::vector<char> inSet;
  /// For halted participants: the member whose IN they decoded (their
  /// binding); kNoNode for members and non-participants.
  std::vector<NodeId> dominator;
  /// Active rounds executed (max over participants).
  int roundsRun = 0;
  /// Total slots consumed (3 per global round).
  std::uint64_t slotsUsed = 0;
};

/// Runs the protocol over `participants` (size n mask).  Non-participants
/// stay idle throughout.  Uses sim.rng(v) for all coin flips.
RulingSetResult runRulingSet(Simulator& sim, const std::vector<char>& participants,
                             const RulingSetConfig& cfg);

/// Ground-truth audit of a ruling-set run against Lemma 6's guarantees
/// (r-independence, 2r-domination, constant density).  Harness-side only:
/// reads true distances the protocol never sees.
struct RulingSetAudit {
  /// Members of S.
  int members = 0;
  /// Member pairs at distance <= radius (0 = r-independent).
  int independenceViolations = 0;
  /// Halted participants without a binding to a member within 2 * radius.
  int unbound = 0;
  /// Max members in any member's radius-ball, including itself (density).
  int maxDensity = 0;
};

[[nodiscard]] RulingSetAudit auditRulingSet(const Network& net,
                                            const std::vector<char>& participants,
                                            const RulingSetResult& rs, double radius);

}  // namespace mcs
