#include "proto/ruling_set.h"

#include <algorithm>
#include <cassert>

#include "geom/grid_index.h"

namespace mcs {
namespace {

enum class State : char { Out = 0, Active, InSet, Dominated };

}  // namespace

RulingSetResult runRulingSet(Simulator& sim, const std::vector<char>& participants,
                             const RulingSetConfig& cfg) {
  const int n = sim.network().size();
  assert(static_cast<int>(participants.size()) == n);
  assert(cfg.capProb > 0.0 && cfg.capProb <= 1.0);
  assert(cfg.totalRounds >= 1);

  const SinrBounds& kb = sim.network().bounds();
  // Conservative clear-reception threshold (Def. 4) under parameter
  // uncertainty: use the smallest T_s any in-range parameters give.  The
  // radius-scaled term P/(4r)^alpha is what actually certifies "no other
  // 4r-neighbor transmitted"; the paper's N-based form assumes r ~ R_T.
  double ts = kb.clearThresholdLower();
  if (cfg.requireClear) {
    for (const double a : {kb.alphaMin, kb.alphaMax}) {
      ts = std::max(ts, 0.5 * kb.power / std::pow(4.0 * cfg.radius, a));
    }
  }

  RulingSetResult res;
  res.inSet.assign(static_cast<std::size_t>(n), 0);
  res.dominator.assign(static_cast<std::size_t>(n), kNoNode);

  std::vector<State> state(static_cast<std::size_t>(n), State::Out);
  std::vector<double> prob(static_cast<std::size_t>(n), cfg.initialProb);
  std::vector<int> activeRounds(static_cast<std::size_t>(n), 0);
  int numActive = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (participants[static_cast<std::size_t>(v)]) {
      state[static_cast<std::size_t>(v)] = State::Active;
      ++numActive;
    }
  }

  const auto channel = [&](NodeId v) -> ChannelId {
    return cfg.channelOf.empty() ? ChannelId{0} : cfg.channelOf[static_cast<std::size_t>(v)];
  };
  const auto group = [&](NodeId v) -> NodeId {
    return cfg.groupOf.empty() ? kNoNode : cfg.groupOf[static_cast<std::size_t>(v)];
  };

  // Per-round scratch.
  std::vector<char> gated(static_cast<std::size_t>(n), 0);
  std::vector<char> sentHello(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> clearHelloFrom(static_cast<std::size_t>(n), kNoNode);
  std::vector<char> gotAck(static_cast<std::size_t>(n), 0);

  long round = cfg.roundOffset;

  // ---- Slot 3 (IN) behavior, also reused by the resolution tail ---------
  // Joiners announce; members re-announce (and otherwise listen, so two
  // members elected in the same round resolve by id: the larger demotes).
  // Dominated nodes keep listening and rebind to the smallest-id member
  // they hear, tracking demotions.
  const auto inSlotIntent = [&](NodeId v) -> Intent {
    const auto vi = static_cast<std::size_t>(v);
    if (!participants[vi] || !cfg.tdma.active(v, round)) return Intent::idle();
    Message m;
    m.type = MsgType::In;
    m.src = v;
    m.a = group(v);
    if (state[vi] == State::InSet && sim.rng(v).bernoulli(cfg.reannounceProb)) {
      return Intent::transmit(channel(v), m);
    }
    if (gated[vi] && sentHello[vi] && gotAck[vi]) return Intent::transmit(channel(v), m);
    return Intent::listen(channel(v));
  };
  const auto inSlotReceive = [&](NodeId v, const Reception& r) {
    const auto vi = static_cast<std::size_t>(v);
    if (!r.received || r.msg.type != MsgType::In) return;
    if (r.msg.a != group(v) || !participants[vi]) return;
    if (kb.distanceUpper(r.signalPower) > cfg.radius) return;
    switch (state[vi]) {
      case State::Active:
        state[vi] = State::Dominated;
        res.dominator[vi] = r.msg.src;
        --numActive;
        break;
      case State::InSet:
        if (r.msg.src < v) {  // conflict: yield to the smaller id
          state[vi] = State::Dominated;
          res.inSet[vi] = 0;
          res.dominator[vi] = r.msg.src;
        }
        break;
      case State::Dominated:
        if (res.dominator[vi] == kNoNode || r.msg.src < res.dominator[vi]) {
          res.dominator[vi] = r.msg.src;
        }
        break;
      default: break;
    }
  };

  int maxActiveRounds = 0;
  while (numActive > 0 && maxActiveRounds < cfg.totalRounds) {
    // Recompute the TDMA gate for this round.
    for (NodeId v = 0; v < n; ++v) {
      gated[static_cast<std::size_t>(v)] =
          state[static_cast<std::size_t>(v)] == State::Active && cfg.tdma.active(v, round);
    }

    // ---- Slot 1: HELLO --------------------------------------------------
    std::fill(sentHello.begin(), sentHello.end(), 0);
    std::fill(clearHelloFrom.begin(), clearHelloFrom.end(), kNoNode);
    sim.step(
        [&](NodeId v) -> Intent {
          if (!gated[static_cast<std::size_t>(v)]) return Intent::idle();
          if (sim.rng(v).bernoulli(prob[static_cast<std::size_t>(v)])) {
            sentHello[static_cast<std::size_t>(v)] = 1;
            Message m;
            m.type = MsgType::Hello;
            m.src = v;
            m.a = group(v);
            return Intent::transmit(channel(v), m);
          }
          return Intent::listen(channel(v));
        },
        [&](NodeId v, const Reception& r) {
          if (!r.received || r.msg.type != MsgType::Hello) return;
          if (r.msg.a != group(v)) return;  // another group's election
          // r-neighbor check, plus Def. 4's interference bound if enabled.
          if (kb.distanceUpper(r.signalPower) > cfg.radius) return;
          if (cfg.requireClear && r.interference() > ts) return;
          clearHelloFrom[static_cast<std::size_t>(v)] = r.msg.src;
        });

    // ---- Slot 2: ACK ----------------------------------------------------
    std::fill(gotAck.begin(), gotAck.end(), 0);
    sim.step(
        [&](NodeId v) -> Intent {
          if (!gated[static_cast<std::size_t>(v)]) return Intent::idle();
          const NodeId target = clearHelloFrom[static_cast<std::size_t>(v)];
          if (target != kNoNode && sim.rng(v).bernoulli(cfg.ackProb)) {
            Message m;
            m.type = MsgType::Ack;
            m.src = v;
            m.dst = target;
            return Intent::transmit(channel(v), m);
          }
          return Intent::listen(channel(v));
        },
        [&](NodeId v, const Reception& r) {
          if (!sentHello[static_cast<std::size_t>(v)]) return;
          if (!r.received || r.msg.type != MsgType::Ack || r.msg.dst != v) return;
          if (kb.distanceUpper(r.signalPower) <= cfg.radius) {
            gotAck[static_cast<std::size_t>(v)] = 1;
          }
        });

    // ---- Slot 3: IN -------------------------------------------------------
    sim.step(inSlotIntent, inSlotReceive);

    // Joiners enter S and halt.
    for (NodeId v = 0; v < n; ++v) {
      if (gated[static_cast<std::size_t>(v)] && sentHello[static_cast<std::size_t>(v)] &&
          gotAck[static_cast<std::size_t>(v)] &&
          state[static_cast<std::size_t>(v)] == State::Active) {
        state[static_cast<std::size_t>(v)] = State::InSet;
        res.inSet[static_cast<std::size_t>(v)] = 1;
        --numActive;
      }
    }

    // Advance per-node active-round counters and the doubling schedule.
    for (NodeId v = 0; v < n; ++v) {
      if (!gated[static_cast<std::size_t>(v)]) continue;
      const auto vi = static_cast<std::size_t>(v);
      ++activeRounds[vi];
      maxActiveRounds = std::max(maxActiveRounds, activeRounds[vi]);
      if (cfg.epochRounds > 0 && activeRounds[vi] % cfg.epochRounds == 0) {
        if (cfg.cycleProb && prob[vi] >= cfg.capProb) {
          prob[vi] = cfg.initialProb;  // decay cycle restart
        } else {
          prob[vi] = std::min(prob[vi] * 2.0, cfg.capProb);
        }
      }
    }
    ++round;
    res.slotsUsed += 3;
  }
  res.roundsRun = maxActiveRounds;

  // ---- Resolution tail: settle member conflicts and give stragglers a
  // last chance to hear a member before survivors self-elect --------------
  std::fill(sentHello.begin(), sentHello.end(), 0);
  std::fill(gotAck.begin(), gotAck.end(), 0);
  const int tailRounds =
      std::max(12, cfg.totalRounds / 4) * std::max(1, cfg.tdma.period);
  for (int t = 0; t < tailRounds; ++t) {
    sim.step(inSlotIntent, inSlotReceive);
    ++round;
    ++res.slotsUsed;
  }

  if (cfg.selfElectSurvivors) {
    for (NodeId v = 0; v < n; ++v) {
      if (state[static_cast<std::size_t>(v)] == State::Active) {
        res.inSet[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  return res;
}

RulingSetAudit auditRulingSet(const Network& net, const std::vector<char>& participants,
                              const RulingSetResult& rs, double radius) {
  RulingSetAudit audit;
  std::vector<NodeId> members;
  std::vector<Vec2> memberPos;
  for (NodeId v = 0; v < net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (!participants[vi]) continue;
    if (rs.inSet[vi]) {
      members.push_back(v);
      memberPos.push_back(net.positions()[vi]);
    } else if (rs.dominator[vi] == kNoNode ||
               net.distance(v, rs.dominator[vi]) > 2.0 * radius) {
      ++audit.unbound;
    }
  }
  audit.members = static_cast<int>(members.size());
  if (members.empty()) return audit;

  // Grid-accelerated ball counting: the former all-pairs scan was
  // O(members^2), which a self-elected million-node set turns into 10^12
  // distance evaluations.  The grid gathers each member's candidates in
  // O(ball occupancy); the decision predicate stays the literal
  // net.distance(u, v) <= radius of the all-pairs version (the slightly
  // inflated query radius only protects candidate gathering from the
  // squared-distance rounding at the boundary), so every count is
  // identical.
  const GridIndex memberGrid(memberPos, std::max(radius, 1e-12));
  const double gatherRadius = radius * (1.0 + 1e-12);
  for (std::size_t i = 0; i < members.size(); ++i) {
    int inBall = 0;
    memberGrid.forEachInBall(memberPos[i], gatherRadius, [&](NodeId j) {
      if (net.distance(members[i], members[static_cast<std::size_t>(j)]) <= radius) {
        ++inBall;
        if (static_cast<std::size_t>(j) > i) ++audit.independenceViolations;
      }
    });
    audit.maxDensity = std::max(audit.maxDensity, inBall);
  }
  return audit;
}

}  // namespace mcs
