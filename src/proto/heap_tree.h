#pragma once

#include "util/ids.h"

/// The complete binary "reporter tree" layout of §5.2.2 (Lemma 16).
///
/// Heap index k = 0 is the dominator (root).  Heap index k >= 1 is the
/// reporter elected on channel k - 1.  The parent of k is floor(k / 2),
/// and node k transmits to its parent on the parent's channel.
namespace mcs {

[[nodiscard]] constexpr int heapParent(int k) noexcept { return k / 2; }

/// Channel the owner of heap index k operates on.  The dominator (k = 0)
/// listens on channel 0.
[[nodiscard]] constexpr ChannelId heapChannel(int k) noexcept {
  return static_cast<ChannelId>(k <= 1 ? 0 : k - 1);
}

/// Channel on which the owner of heap index k transmits to its parent.
[[nodiscard]] constexpr ChannelId heapUplinkChannel(int k) noexcept {
  return heapChannel(heapParent(k));
}

/// Depth of heap index k: level(1) = 0, level(2..3) = 1, ...
[[nodiscard]] constexpr int heapLevel(int k) noexcept {
  int level = 0;
  while (k > 1) {
    k >>= 1;
    ++level;
  }
  return level;
}

/// Deepest level of a heap with indices 1..count.
[[nodiscard]] constexpr int heapMaxLevel(int count) noexcept {
  return count >= 1 ? heapLevel(count) : 0;
}

}  // namespace mcs
