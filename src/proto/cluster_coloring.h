#pragma once

#include <cstdint>

#include "proto/clustering.h"
#include "sim/simulator.h"

/// Cluster coloring and the TDMA scheme (§5.1.2, Lemma 8).
///
/// Dominators within distance R_{eps/2} receive different colors, so that
/// when only clusters of one color transmit, concurrent clusters are
/// spatially well separated (Lemma 9).  The algorithm repeatedly computes
/// an (R_{eps/2}, R_eps)-ruling set among the still-uncolored dominators;
/// phase i's ruling set gets color i.
namespace mcs {

struct ClusterColoringResult {
  std::uint64_t slotsUsed = 0;
  int phases = 0;
};

/// Colors `clustering`'s dominators in place (fills colorOfCluster and
/// numColors).  Throws if the phase safety cap is exceeded.
ClusterColoringResult colorClusters(Simulator& sim, Clustering& clustering);

}  // namespace mcs
