#pragma once

#include <cstdint>

#include "proto/clustering.h"
#include "sim/simulator.h"

/// Computing the r_c-dominating set and the clustering function (§5.1.1,
/// Lemma 7).
///
/// The paper adapts Scheideler et al. [28]; we obtain the same interface
/// guarantees (O(log n) rounds, constant density, every node bound to a
/// dominator within r_c) from the §4 ruling-set engine run on all nodes
/// with a doubling probability schedule — see DESIGN.md §3.1.
namespace mcs {

struct DominatingSetResult {
  Clustering clustering;  // colorOfCluster left empty (filled by coloring)
  std::uint64_t slotsUsed = 0;
  int roundsRun = 0;
};

/// Builds the clustering on channel 0.  Every node ends either a
/// dominator or bound to a dominator within r_c (whp).
DominatingSetResult buildDominatingSet(Simulator& sim);

}  // namespace mcs
