#include "proto/dominating_set.h"

#include <algorithm>
#include <cmath>

#include "proto/ruling_set.h"

namespace mcs {

DominatingSetResult buildDominatingSet(Simulator& sim) {
  const Network& net = sim.network();
  const Tuning& tun = net.tuning();
  const int n = net.size();

  RulingSetConfig cfg;
  cfg.radius = net.rc();
  cfg.capProb = 1.0 / (2.0 * tun.muDensity);
  cfg.initialProb = std::min(cfg.capProb, 0.5 / static_cast<double>(n < 1 ? 1 : n));
  cfg.epochRounds = tun.domEpochRounds;
  cfg.cycleProb = true;
  // Each decay cycle sweeps the probability from 1/(2n) to the cap; run
  // Theta(log n) cycles so every density regime is visited often enough.
  const int doublings =
      cfg.initialProb >= cfg.capProb
          ? 0
          : static_cast<int>(std::ceil(std::log2(cfg.capProb / cfg.initialProb)));
  const int cycleLen = std::max(1, doublings * tun.domEpochRounds);
  cfg.totalRounds = cycleLen + tun.lnRounds(tun.gammaDomTail, n) * std::max(1, cycleLen / 4);
  cfg.selfElectSurvivors = true;

  std::vector<char> everyone(static_cast<std::size_t>(n), 1);
  RulingSetResult rs = runRulingSet(sim, everyone, cfg);

  DominatingSetResult out;
  out.slotsUsed = rs.slotsUsed;
  out.roundsRun = rs.roundsRun;
  Clustering& cl = out.clustering;
  cl.isDominator = rs.inSet;
  cl.dominatorOf.assign(static_cast<std::size_t>(n), kNoNode);
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (cl.isDominator[vi]) {
      cl.dominatorOf[vi] = v;
      cl.dominators.push_back(v);
    } else {
      // Every halted node decoded an IN from within r_c; survivors
      // self-elected, so a binding always exists.
      cl.dominatorOf[vi] = rs.dominator[vi];
    }
  }
  // A binding can dangle when its target later yielded a member conflict
  // and the node heard no other member within r_c.  Re-associate: the
  // dominators announce themselves for Theta(log n) rounds and dangling
  // nodes rebind to any announcer within r_c.  Bindings stay within r_c —
  // the radius the Theorem-24 geometry (2 r_c + R_eps <= R_{eps/2})
  // depends on.
  std::vector<char> dangling(static_cast<std::size_t>(n), 0);
  int danglingCount = 0;
  const auto refreshDangling = [&] {
    danglingCount = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const NodeId d = cl.dominatorOf[vi];
      dangling[vi] = (d == kNoNode || !cl.isDominator[static_cast<std::size_t>(d)]) ? 1 : 0;
      danglingCount += dangling[vi];
    }
  };
  refreshDangling();
  if (danglingCount > 0) {
    const SinrBounds& kb = net.bounds();
    const int assocRounds = tun.lnRounds(tun.gammaAssoc, n, 8);
    for (int t = 0; t < assocRounds; ++t) {
      sim.step(
          [&](NodeId v) -> Intent {
            const auto vi = static_cast<std::size_t>(v);
            if (cl.isDominator[vi]) {
              if (sim.rng(v).bernoulli(cfg.capProb)) {
                Message m;
                m.type = MsgType::Announce;
                m.src = v;
                return Intent::transmit(0, m);
              }
              return Intent::idle();
            }
            return dangling[vi] ? Intent::listen(0) : Intent::idle();
          },
          [&](NodeId v, const Reception& r) {
            const auto vi = static_cast<std::size_t>(v);
            if (!dangling[vi] || !r.received || r.msg.type != MsgType::Announce) return;
            if (kb.distanceUpper(r.signalPower) <= net.rc()) {
              cl.dominatorOf[vi] = r.msg.src;
              dangling[vi] = 0;
            }
          });
      ++out.slotsUsed;
    }
  }
  // Still-dangling nodes self-promote (the maximality rule).
  refreshDangling();
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (dangling[vi]) {
      cl.isDominator[vi] = 1;
      cl.dominatorOf[vi] = v;
      cl.dominators.push_back(v);
    }
  }
  std::sort(cl.dominators.begin(), cl.dominators.end());
  cl.dominators.erase(std::unique(cl.dominators.begin(), cl.dominators.end()),
                      cl.dominators.end());
  return out;
}

}  // namespace mcs
