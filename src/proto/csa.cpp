#include "proto/csa.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "proto/heap_tree.h"
#include "proto/ruling_set.h"

namespace mcs {
namespace {

/// Final dissemination: dominators broadcast their estimate on channel 0
/// under the TDMA; every dominatee adopts its dominator's value.
std::uint64_t broadcastEstimates(Simulator& sim, const Clustering& cl, const TdmaSchedule& tdma,
                                 std::vector<double>& est, int repeats) {
  std::uint64_t slots = 0;
  for (long round = 0; round < static_cast<long>(repeats) * tdma.period; ++round) {
    sim.step(
        [&](NodeId v) -> Intent {
          if (!tdma.active(v, round)) return Intent::idle();
          if (cl.isDominator[static_cast<std::size_t>(v)] && sim.rng(v).bernoulli(0.85)) {
            Message m;
            m.type = MsgType::CsaEstimate;
            m.src = v;
            m.x = est[static_cast<std::size_t>(v)];
            return Intent::transmit(0, m);
          }
          return Intent::listen(0);
        },
        [&](NodeId v, const Reception& r) {
          if (r.received && r.msg.type == MsgType::CsaEstimate &&
              r.msg.src == cl.dominatorOf[static_cast<std::size_t>(v)]) {
            est[static_cast<std::size_t>(v)] = r.msg.x;
          }
        });
    ++slots;
  }
  return slots;
}

struct PhaseLoopOut {
  std::vector<double> est;  // per node: sink's estimate / member's received copy
  std::uint64_t slots = 0;
  int phasesMax = 0;
  bool allTerminated = true;
};

/// The doubling-probability estimation loop shared by both CSA variants
/// (§5.2.1.1).  Each participant probes its sink with probability
/// lambda 2^j / deltaHatLocal in phase j; a sink that hears >= Omega_1
/// messages within a phase terminates its group and announces the
/// inverted estimate.
PhaseLoopOut csaPhaseLoop(Simulator& sim, const TdmaSchedule& tdma,
                          const std::vector<NodeId>& sinkOf, const std::vector<ChannelId>& chanOf,
                          const std::vector<char>& isSink, int deltaHatLocal) {
  const Network& net = sim.network();
  const Tuning& tun = net.tuning();
  const int n = net.size();

  const int gamma1 = tun.lnRounds(tun.csaGamma1, n, 4);
  const int phaseLen = gamma1 + 1;
  const int omega1 = std::max(2, tun.lnRounds(tun.csaOmega1, n));
  const double lambda = tun.csaLambda;
  const int maxPhases =
      static_cast<int>(std::ceil(std::log2(std::max(2.0, static_cast<double>(deltaHatLocal))))) +
      2;

  const auto probOfPhase = [&](int j) {
    return std::min(lambda, lambda * std::pow(2.0, j) / static_cast<double>(deltaHatLocal));
  };
  // Inverting the threshold crossing: ~ |group| * p_j * kappa * gamma1
  // messages arrive in the terminating phase (Lemma 11).
  const auto estimateAtPhase = [&](int j) {
    return static_cast<double>(omega1) /
           (probOfPhase(j) * tun.csaKappaHat * static_cast<double>(gamma1));
  };

  PhaseLoopOut out;
  out.est.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<char> done(static_cast<std::size_t>(n), 0);
  std::vector<int> activeRounds(static_cast<std::size_t>(n), 0);
  std::vector<int> phaseCount(static_cast<std::size_t>(n), 0);

  int undone = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (isSink[vi] || sinkOf[vi] != kNoNode) {
      ++undone;
    } else {
      done[vi] = 1;  // bystander
    }
  }

  const long hardCap =
      static_cast<long>(maxPhases + 1) * phaseLen * std::max(1, tdma.period) + 16;
  long round = 0;
  while (undone > 0 && round < hardCap) {
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!tdma.active(v, round)) return Intent::idle();
          if (!isSink[vi] && sinkOf[vi] == kNoNode) return Intent::idle();
          const int pos = activeRounds[vi] % phaseLen;
          const int j = activeRounds[vi] / phaseLen;
          if (isSink[vi]) {
            if (pos < gamma1) {
              return done[vi] ? Intent::idle() : Intent::listen(chanOf[vi]);
            }
            // Notify round: announce termination (first time or repeat so
            // stragglers catch up).
            if (!done[vi] && phaseCount[vi] >= omega1) {
              out.est[vi] = estimateAtPhase(j);
              done[vi] = 1;
              --undone;
            } else if (!done[vi] && j + 1 >= maxPhases) {
              // Exhausted the schedule: the group is (near-)empty.
              out.est[vi] = 0.0;
              done[vi] = 1;
              out.allTerminated = false;
              --undone;
            } else if (!done[vi]) {
              phaseCount[vi] = 0;  // per-phase counting
            }
            if (done[vi]) {
              Message m;
              m.type = MsgType::CsaTerminate;
              m.src = v;
              m.x = out.est[vi];
              return Intent::transmit(chanOf[vi], m);
            }
            return Intent::idle();
          }
          // Participant (probing member).
          if (pos < gamma1) {
            if (!done[vi] && sim.rng(v).bernoulli(probOfPhase(j))) {
              Message m;
              m.type = MsgType::CsaProbe;
              m.src = v;
              m.dst = sinkOf[vi];
              return Intent::transmit(chanOf[vi], m);
            }
            return Intent::idle();
          }
          // Notify round: listen for termination (even when already done;
          // harmless and keeps estimates fresh).
          if (!done[vi] || activeRounds[vi] / phaseLen < maxPhases) {
            return Intent::listen(chanOf[vi]);
          }
          return Intent::idle();
        },
        [&](NodeId v, const Reception& r) {
          const auto vi = static_cast<std::size_t>(v);
          if (!r.received) return;
          if (isSink[vi]) {
            if (r.msg.type == MsgType::CsaProbe && r.msg.dst == v && !done[vi]) {
              ++phaseCount[vi];
            }
            return;
          }
          if (r.msg.type == MsgType::CsaTerminate && r.msg.src == sinkOf[vi]) {
            out.est[vi] = r.msg.x;
            if (!done[vi]) {
              done[vi] = 1;
              --undone;
            }
          }
        });
    // Advance per-node phase clocks, and estimate bookkeeping.
    int newPhasesMax = out.phasesMax;
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (!tdma.active(v, round)) continue;
      if (!isSink[vi] && sinkOf[vi] == kNoNode) continue;
      ++activeRounds[vi];
      newPhasesMax = std::max(newPhasesMax, activeRounds[vi] / phaseLen);
    }
    out.phasesMax = newPhasesMax;
    ++round;
    ++out.slots;
  }
  if (undone > 0) out.allTerminated = false;
  return out;
}

}  // namespace

CsaResult runCsaLarge(Simulator& sim, const Clustering& cl, int deltaHat) {
  const int n = sim.network().size();
  if (deltaHat <= 0) deltaHat = std::max(2, n);
  const TdmaSchedule tdma = TdmaSchedule::from(cl);

  // Dominatees probe their dominator on channel 0.
  std::vector<NodeId> sinkOf(static_cast<std::size_t>(n), kNoNode);
  std::vector<ChannelId> chanOf(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (!cl.isDominator[vi]) sinkOf[vi] = cl.dominatorOf[vi];
  }
  PhaseLoopOut loop = csaPhaseLoop(sim, tdma, sinkOf, chanOf, cl.isDominator, deltaHat);

  CsaResult out;
  out.estimateOfNode = std::move(loop.est);
  out.slotsUsed = loop.slots;
  out.phasesMax = loop.phasesMax;
  out.allTerminated = loop.allTerminated;
  out.slotsUsed += broadcastEstimates(sim, cl, tdma, out.estimateOfNode, 3);
  return out;
}

CsaResult runCsaSmall(Simulator& sim, const Clustering& cl, int deltaHat) {
  const Network& net = sim.network();
  const Tuning& tun = net.tuning();
  const int n = net.size();
  const int F = sim.numChannels();
  if (deltaHat <= 0) deltaHat = std::max(2, n);
  const TdmaSchedule tdma = TdmaSchedule::from(cl);

  CsaResult out;
  out.estimateOfNode.assign(static_cast<std::size_t>(n), 0.0);

  // ---- Procedure 1: random channels + per-channel leader election -------
  std::vector<ChannelId> chOf(static_cast<std::size_t>(n), 0);
  std::vector<char> dominatees(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (!cl.isDominator[vi] && cl.dominatorOf[vi] != kNoNode) {
      dominatees[vi] = 1;
      chOf[vi] = static_cast<ChannelId>(sim.rng(v).below(static_cast<std::uint64_t>(F)));
    }
  }

  RulingSetConfig rcfg;
  rcfg.radius = std::min(4.0 * net.rc(), 0.8 * net.rT());  // cluster spread can reach 4 r_c
  rcfg.capProb = 0.25;
  const double expectedPerChannel =
      std::max(2.0, static_cast<double>(deltaHat) / static_cast<double>(F));
  rcfg.initialProb = std::min(rcfg.capProb, 0.5 / expectedPerChannel);
  rcfg.epochRounds = tun.domEpochRounds;
  const int doublings =
      rcfg.initialProb >= rcfg.capProb
          ? 0
          : static_cast<int>(std::ceil(std::log2(rcfg.capProb / rcfg.initialProb)));
  rcfg.totalRounds = doublings * tun.domEpochRounds + tun.lnRounds(tun.gammaRuling, n);
  rcfg.channelOf = chOf;
  rcfg.groupOf = cl.dominatorOf;  // per-(cluster, channel) elections
  rcfg.tdma = tdma;
  RulingSetResult rs = runRulingSet(sim, dominatees, rcfg);
  out.slotsUsed += rs.slotsUsed;

  std::vector<NodeId> leaderOf(static_cast<std::size_t>(n), kNoNode);
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (!dominatees[vi]) continue;
    if (rs.inSet[vi]) continue;  // leaders are the sinks
    NodeId l = rs.dominator[vi];
    // Follow demotion forwarding so the binding targets a live leader.
    int hops = 0;
    while (l != kNoNode && !rs.inSet[static_cast<std::size_t>(l)] && hops < 4) {
      l = rs.dominator[static_cast<std::size_t>(l)];
      ++hops;
    }
    leaderOf[vi] = (l != kNoNode && rs.inSet[static_cast<std::size_t>(l)]) ? l : kNoNode;
  }

  // ---- Procedure 2: per-channel CSA with the leader as sink -------------
  const int deltaHatChannel =
      std::max(4, static_cast<int>(std::ceil(4.0 * deltaHat / static_cast<double>(F))));
  PhaseLoopOut loop = csaPhaseLoop(sim, tdma, leaderOf, chOf, rs.inSet, deltaHatChannel);
  out.slotsUsed += loop.slots;
  out.phasesMax = loop.phasesMax;
  out.allTerminated = loop.allTerminated;

  // ---- Procedure 3: aggregate per-channel counts over the binary tree ----
  // Roles: heap index k >= 1 is the leader of channel k-1 (value: channel
  // members + 1 for the leader itself); k = 0 is the dominator.  Empty
  // channels have no owner; the ack-fallback lets a child adopt its
  // missing parent (Appendix A's auxiliary nodes).
  std::vector<std::vector<std::pair<int, double>>> roles(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (dominatees[vi] && rs.inSet[vi]) {
      roles[vi].push_back({static_cast<int>(chOf[vi]) + 1, loop.est[vi] + 1.0});
    } else if (cl.isDominator[vi]) {
      roles[vi].push_back({0, 0.0});
    }
  }
  const auto roleIndex = [&](NodeId v, int k) -> int {
    const auto& rv = roles[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < rv.size(); ++i) {
      if (rv[i].first == k) return static_cast<int>(i);
    }
    return -1;
  };

  std::vector<char> delivered(static_cast<std::size_t>(n), 0);  // per level pass
  std::vector<int> pendingAck(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> pendingAckNode(static_cast<std::size_t>(n), kNoNode);
  // First-wins dedupe per (parent node, child heap index): a retried
  // child transmission after a lost ack must not be double-counted.
  std::vector<std::vector<char>> childSeen(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    if (!roles[static_cast<std::size_t>(v)].empty()) {
      childSeen[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(F) + 2, 0);
    }
  }

  const int maxLevel = heapMaxLevel(F);
  long round = 0;
  for (int level = maxLevel; level >= 0; --level) {
    // Local merges: a node owning both k and its parent skips the radio.
    for (NodeId v = 0; v < n; ++v) {
      auto& rv = roles[static_cast<std::size_t>(v)];
      for (std::size_t i = 0; i < rv.size(); ++i) {
        const int k = rv[i].first;
        if (k >= 1 && heapLevel(k) == level) {
          const int pi = roleIndex(v, heapParent(k));
          if (pi >= 0) {
            rv[static_cast<std::size_t>(pi)].second += rv[i].second;
            rv[i].first = -1;  // retired
          }
        }
      }
    }
    std::fill(delivered.begin(), delivered.end(), 0);
    // Two attempts per level: the second retries transmissions lost to
    // cross-cluster interference; adoption of a missing parent only
    // happens once the second attempt also went unacknowledged.
    for (int attempt = 0; attempt < 2; ++attempt) {
    for (long cycle = 0; cycle < tdma.period; ++cycle, ++round) {
      for (const int parity : {0, 1}) {
        // ---- Up slot: children of parity `parity` transmit -------------
        std::fill(pendingAck.begin(), pendingAck.end(), -1);
        sim.step(
            [&](NodeId v) -> Intent {
              const auto vi = static_cast<std::size_t>(v);
              if (!tdma.active(v, round)) return Intent::idle();
              for (const auto& [k, val] : roles[vi]) {
                if (k >= 1 && heapLevel(k) == level && (k & 1) == parity && !delivered[vi]) {
                  Message m;
                  m.type = MsgType::TreeUp;
                  m.src = v;
                  m.a = k;
                  m.b = cl.dominatorOf[vi];  // cluster-scoped
                  m.x = val;
                  return Intent::transmit(heapUplinkChannel(k), m);
                }
              }
              // Parent-role owners listen on their role channel.
              for (const auto& [k, val] : roles[vi]) {
                if (k >= 0 && heapLevel(std::max(1, k * 2)) == level) {
                  return Intent::listen(heapChannel(k));
                }
              }
              return Intent::idle();
            },
            [&](NodeId v, const Reception& r) {
              const auto vi = static_cast<std::size_t>(v);
              if (!r.received || r.msg.type != MsgType::TreeUp) return;
              if (r.msg.b != cl.dominatorOf[vi]) return;  // another cluster's tree
              const int k = static_cast<int>(r.msg.a);
              const int pi = roleIndex(v, heapParent(k));
              if (pi < 0) return;
              if (!childSeen[vi][static_cast<std::size_t>(k)]) {
                childSeen[vi][static_cast<std::size_t>(k)] = 1;
                roles[vi][static_cast<std::size_t>(pi)].second += r.msg.x;
              }
              pendingAck[vi] = k;  // (re-)ack either way
              pendingAckNode[vi] = r.msg.src;
            });
        ++out.slotsUsed;

        // ---- Ack slot ---------------------------------------------------
        sim.step(
            [&](NodeId v) -> Intent {
              const auto vi = static_cast<std::size_t>(v);
              if (!tdma.active(v, round)) return Intent::idle();
              if (pendingAck[vi] >= 0) {
                Message m;
                m.type = MsgType::TreeUpAck;
                m.src = v;
                m.dst = pendingAckNode[vi];  // addressed: cluster-safe
                m.a = pendingAck[vi];
                return Intent::transmit(heapUplinkChannel(pendingAck[vi]), m);
              }
              // Children that just transmitted listen for their ack.
              for (const auto& [k, val] : roles[vi]) {
                if (k >= 1 && heapLevel(k) == level && (k & 1) == parity && !delivered[vi]) {
                  return Intent::listen(heapUplinkChannel(k));
                }
              }
              return Intent::idle();
            },
            [&](NodeId v, const Reception& r) {
              const auto vi = static_cast<std::size_t>(v);
              if (!r.received || r.msg.type != MsgType::TreeUpAck || r.msg.dst != v) return;
              for (const auto& [k, val] : roles[vi]) {
                if (k >= 1 && heapLevel(k) == level && (k & 1) == parity &&
                    static_cast<int>(r.msg.a) == k) {
                  delivered[vi] = 1;
                }
              }
            });
        ++out.slotsUsed;

        // Adoption happens BETWEEN the parity sub-slots of the LAST
        // attempt: a left child (even k) whose up went unacknowledged
        // takes over the missing parent role immediately, so it already
        // listens as the parent when the right sibling transmits.  Only
        // one child adopts; the sibling gets acknowledged by the adopter.
        if (attempt == 1) {
          for (NodeId v = 0; v < n; ++v) {
            const auto vi = static_cast<std::size_t>(v);
            if (!tdma.active(v, round) || delivered[vi]) continue;
            auto& rv = roles[vi];
            const std::size_t existing = rv.size();
            for (std::size_t i = 0; i < existing; ++i) {
              const int k = rv[i].first;
              if (k >= 1 && heapLevel(k) == level && (k & 1) == parity) {
                rv.push_back({heapParent(k), rv[i].second});
                rv[i].first = -1;
                delivered[vi] = 1;  // role carried upward by adoption
                break;
              }
            }
          }
        }
      }
    }
    }
  }

  if (const char* dbg = std::getenv("MCS_CSA_DEBUG")) {
    const NodeId target = static_cast<NodeId>(std::atoi(dbg));
    for (NodeId v = 0; v < n; ++v) {
      if (cl.dominatorOf[static_cast<std::size_t>(v)] != target) continue;
      std::fprintf(stderr, "node %d dom=%d isLeader=%d ch=%d est=%.2f roles:", v,
                   cl.dominatorOf[static_cast<std::size_t>(v)],
                   (int)rs.inSet[static_cast<std::size_t>(v)],
                   (int)chOf[static_cast<std::size_t>(v)], loop.est[static_cast<std::size_t>(v)]);
      for (auto& [k, val] : roles[static_cast<std::size_t>(v)]) {
        std::fprintf(stderr, " (%d,%.2f)", k, val);
      }
      std::fprintf(stderr, "\n");
    }
  }

  // Dominators now hold the cluster total in role 0.
  for (const NodeId d : cl.dominators) {
    const int ri = roleIndex(d, 0);
    out.estimateOfNode[static_cast<std::size_t>(d)] =
        ri >= 0 ? roles[static_cast<std::size_t>(d)][static_cast<std::size_t>(ri)].second : 0.0;
  }

  // ---- Procedure 4: broadcast the estimate to the cluster ----------------
  out.slotsUsed += broadcastEstimates(sim, cl, tdma, out.estimateOfNode, 3);
  return out;
}

CsaResult runCsa(Simulator& sim, const Clustering& cl, int deltaHat) {
  const int n = sim.network().size();
  if (deltaHat <= 0) deltaHat = std::max(2, n);
  const double lnn = std::log(std::max(2.0, static_cast<double>(n)));
  const double threshold = static_cast<double>(sim.numChannels()) * lnn * lnn;
  if (static_cast<double>(deltaHat) <= threshold) return runCsaSmall(sim, cl, deltaHat);
  return runCsaLarge(sim, cl, deltaHat);
}

double csaWorstRatio(const Clustering& cl, const std::vector<double>& estimateOfNode) {
  const std::vector<int> size = clusterSizes(cl);
  double worst = 1.0;
  for (const NodeId d : cl.dominators) {
    const auto di = static_cast<std::size_t>(d);
    const double got = estimateOfNode[di] + 1.0;
    const double want = static_cast<double>(size[di]) + 1.0;
    worst = std::max(worst, std::max(got / want, want / got));
  }
  return worst;
}

}  // namespace mcs
