#pragma once

#include <cstdint>
#include <vector>

#include "proto/clustering.h"
#include "sim/simulator.h"

/// Reporter election (§5.2.2, Lemma 15).
///
/// Each cluster C_v uses f_v = min(ceil(|C_v| / (c1 ln n)), F) channels.
/// Dominatees pick a channel uniformly at random; on each channel the §4
/// ruling-set protocol with radius 2 r_c (covering the whole cluster)
/// elects exactly one reporter whp.  The reporters form the complete
/// binary tree of heap_tree.h.
namespace mcs {

struct ReporterSetup {
  /// Per node: the number of channels f_v its cluster uses (its own view,
  /// derived from its CSA estimate; consistent cluster-wide whp).
  std::vector<int> fvOfNode;
  /// Per dominatee: the channel it selected for the election; for
  /// reporters this is the channel they were elected on.
  std::vector<ChannelId> channelOfNode;
  std::vector<char> isReporter;
  std::uint64_t slotsUsed = 0;
};

/// `estimateOfNode` is the CSA output (estimated dominatee count of the
/// node's cluster, per node).
ReporterSetup electReporters(Simulator& sim, const Clustering& cl,
                             const std::vector<double>& estimateOfNode);

/// f_v formula shared with tests: min(ceil((est + 1) / (c1 ln n)), F), >= 1.
[[nodiscard]] int channelsForCluster(double estimate, int n, int numChannels, const Tuning& tun);

}  // namespace mcs
