#include "proto/reporter.h"

#include <algorithm>
#include <cmath>

#include "proto/ruling_set.h"

namespace mcs {

int channelsForCluster(double estimate, int n, int numChannels, const Tuning& tun) {
  const double lnn = std::log(std::max(2.0, static_cast<double>(n)));
  const double denom = std::max(1.0, tun.c1 * tun.lnFactor * lnn);
  const int fv = static_cast<int>(std::ceil(std::max(1.0, estimate + 1.0) / denom));
  return std::clamp(fv, 1, numChannels);
}

ReporterSetup electReporters(Simulator& sim, const Clustering& cl,
                             const std::vector<double>& estimateOfNode) {
  const Network& net = sim.network();
  const Tuning& tun = net.tuning();
  const int n = net.size();
  const int F = sim.numChannels();
  const TdmaSchedule tdma = TdmaSchedule::from(cl);

  ReporterSetup out;
  out.fvOfNode.assign(static_cast<std::size_t>(n), 1);
  out.channelOfNode.assign(static_cast<std::size_t>(n), 0);

  std::vector<char> dominatees(static_cast<std::size_t>(n), 0);
  double maxPerChannel = 2.0;
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    out.fvOfNode[vi] = channelsForCluster(estimateOfNode[vi], n, F, tun);
    if (!cl.isDominator[vi] && cl.dominatorOf[vi] != kNoNode) {
      dominatees[vi] = 1;
      out.channelOfNode[vi] =
          static_cast<ChannelId>(sim.rng(v).below(static_cast<std::uint64_t>(out.fvOfNode[vi])));
      maxPerChannel = std::max(
          maxPerChannel, (estimateOfNode[vi] + 1.0) / static_cast<double>(out.fvOfNode[vi]));
    }
  }

  RulingSetConfig cfg;
  cfg.radius = std::min(4.0 * net.rc(), 0.8 * net.rT());  // cluster spread can reach 4 r_c
  cfg.capProb = 0.25;
  cfg.initialProb = std::min(cfg.capProb, 0.5 / maxPerChannel);
  cfg.epochRounds = tun.domEpochRounds;
  const int doublings =
      cfg.initialProb >= cfg.capProb
          ? 0
          : static_cast<int>(std::ceil(std::log2(cfg.capProb / cfg.initialProb)));
  cfg.totalRounds = doublings * tun.domEpochRounds + tun.lnRounds(tun.gammaRuling, n);
  cfg.channelOf = out.channelOfNode;
  cfg.groupOf = cl.dominatorOf;  // elections are cluster-scoped
  cfg.tdma = tdma;
  cfg.selfElectSurvivors = true;

  RulingSetResult rs = runRulingSet(sim, dominatees, cfg);
  out.isReporter = std::move(rs.inSet);
  out.slotsUsed = rs.slotsUsed;

  // Post-election verification: if a (cluster, channel) ended with two
  // reporters (both elected in the same round, or self-elected under
  // persistent interference), the higher id yields and rejoins as a
  // follower.  Duplicate reporters would otherwise collide in the
  // deterministic reporter-tree schedule and corrupt Sum/coloring ranges.
  const int verifyRounds = tun.lnRounds(2.0 * tun.gammaRuling, n, 24) * tdma.period;
  std::vector<char> demote(static_cast<std::size_t>(n), 0);
  for (int t = 0; t < verifyRounds; ++t) {
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!out.isReporter[vi] || demote[vi]) return Intent::idle();
          if (!tdma.active(v, t)) return Intent::idle();
          if (sim.rng(v).bernoulli(0.3)) {
            Message m;
            m.type = MsgType::In;
            m.src = v;
            m.a = cl.dominatorOf[vi];
            return Intent::transmit(out.channelOfNode[vi], m);
          }
          return Intent::listen(out.channelOfNode[vi]);
        },
        [&](NodeId v, const Reception& r) {
          const auto vi = static_cast<std::size_t>(v);
          if (!r.received || r.msg.type != MsgType::In) return;
          if (r.msg.a != cl.dominatorOf[vi]) return;
          if (r.msg.src < v) demote[vi] = 1;
        });
    ++out.slotsUsed;
  }
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (demote[vi]) out.isReporter[vi] = 0;
  }
  return out;
}

}  // namespace mcs
