#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace mcs {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel logLevel() noexcept { return g_level.load(std::memory_order_relaxed); }

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(logLevel())) return;
  std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

}  // namespace mcs
