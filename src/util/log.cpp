#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <unordered_set>

namespace mcs {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

/// Serializes the actual writes; the level check stays lock-free so
/// dropped messages cost one relaxed load.
std::mutex& logMutex() {
  static std::mutex mu;
  return mu;
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel logLevel() noexcept { return g_level.load(std::memory_order_relaxed); }

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(logLevel())) return;
  // One formatted buffer, one write: concurrent loggers can interleave
  // whole lines but never characters within a line.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += levelName(level);
  line += "] ";
  line += message;
  line += '\n';
  const std::lock_guard<std::mutex> lock(logMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
}

bool logWarnOnce(const std::string& key, const std::string& message) {
  {
    static std::unordered_set<std::string> seen;
    const std::lock_guard<std::mutex> lock(logMutex());
    if (!seen.insert(key).second) return false;
  }
  logMessage(LogLevel::Warn, message);
  return true;
}

}  // namespace mcs
