#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mcs {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

OnlineStats OnlineStats::fromMoments(std::size_t n, double mean, double m2, double min,
                                     double max, double sum) noexcept {
  OnlineStats s;
  s.n_ = n;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  s.sum_ = sum;
  return s;
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantileSorted(const std::vector<double>& xs, double q) {
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) {
    std::fprintf(stderr, "FATAL: quantile() on an empty sample\n");
    std::abort();
  }
  std::sort(xs.begin(), xs.end());
  return quantileSorted(xs, q);
}

double percentile(std::vector<double> xs, double p) {
  return quantile(std::move(xs), p / 100.0);
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  OnlineStats acc;
  for (double x : xs) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  if (s.count >= 2) {
    s.ci95 = 1.959963984540054 * s.stddev / std::sqrt(static_cast<double>(s.count));
  }
  s.min = acc.min();
  s.max = acc.max();
  // One sort for both percentiles.
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty()) {
    s.median = quantileSorted(sorted, 0.5);
    s.p95 = quantileSorted(sorted, 0.95);
  }
  return s;
}

std::string formatDouble(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, x);
  return buf;
}

double linearSlope(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace mcs
