#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mcs {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  OnlineStats acc;
  for (double x : xs) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = quantile(xs, 0.5);
  return s;
}

std::string formatDouble(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, x);
  return buf;
}

double linearSlope(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace mcs
