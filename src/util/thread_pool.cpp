#include "util/thread_pool.h"

#include <cassert>

namespace mcs {

ThreadPool::ThreadPool(int threads) {
  assert(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int lane = 1; lane < threads; ++lane) {
    workers_.emplace_back([this, lane] { workerLoop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk(std::size_t n, int lanes,
                                                      int lane) noexcept {
  const auto l = static_cast<std::size_t>(lanes);
  const auto i = static_cast<std::size_t>(lane);
  const std::size_t base = n / l;
  const std::size_t extra = n % l;
  // Lanes [0, extra) get base+1 items, the rest get base.
  const std::size_t begin = i * base + (i < extra ? i : extra);
  return {begin, begin + base + (i < extra ? 1 : 0)};
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    fn(0, n);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    jobN_ = n;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  workCv_.notify_all();

  const auto [begin, end] = chunk(n, threads(), 0);
  if (begin < end) fn(begin, end);

  std::unique_lock<std::mutex> lock(mu_);
  doneCv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::workerLoop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* job = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      workCv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      n = jobN_;
    }
    const auto [begin, end] = chunk(n, threads(), lane);
    if (begin < end) (*job)(begin, end);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) doneCv_.notify_one();
    }
  }
}

}  // namespace mcs
