#include "util/args.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace mcs {

namespace {

/// Diagnose-and-exit for malformed flag values (status 2, the
/// conventional usage-error code).
[[noreturn]] void failFlag(const std::string& program, const std::string& name,
                           const std::string& value, const char* expected) {
  std::fprintf(stderr, "%s: invalid value \"%s\" for --%s (expected %s)\n",
               program.empty() ? "args" : program.c_str(), value.c_str(), name.c_str(),
               expected);
  std::exit(2);
}

}  // namespace

bool parseLong(const std::string& text, long& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parseDouble(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      setNamed(token.substr(0, eq), token.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      setNamed(std::move(token), argv[++i]);
    } else {
      // std::string{"1"} (not = "1") sidesteps a GCC 12 -Wrestrict false
      // positive in libstdc++'s char* assignment under -O2.
      setNamed(std::move(token), std::string{"1"});
    }
  }
}

void Args::setNamed(std::string name, std::string value) {
  named_[name] = value;
  for (auto& [have, existing] : namedOrdered_) {
    if (have == name) {
      existing = std::move(value);
      return;
    }
  }
  namedOrdered_.emplace_back(std::move(name), std::move(value));
}

bool Args::has(const std::string& name) const { return named_.count(name) > 0; }

std::string Args::get(const std::string& name, const std::string& fallback) const {
  const auto it = named_.find(name);
  return it == named_.end() ? fallback : it->second;
}

long Args::getInt(const std::string& name, long fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  long v = 0;
  if (!parseLong(it->second, v)) failFlag(program_, name, it->second, "an integer");
  return v;
}

double Args::getDouble(const std::string& name, double fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  double v = 0.0;
  if (!parseDouble(it->second, v)) failFlag(program_, name, it->second, "a number");
  return v;
}

bool Args::getBool(const std::string& name, bool fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace mcs
