#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

/// Minimal command-line flag parser for examples and experiment binaries.
///
/// Accepts `--name=value`, `--name value`, and bare `--flag` (value "1").
/// Anything not starting with `--` is collected as a positional argument.
namespace mcs {

/// Strict whole-string numeric parsing: returns false unless the entire
/// (non-empty) string is a valid decimal integer / floating-point value.
/// Shared by Args and the scenario-spec parser so every user-facing
/// surface rejects malformed numbers the same way.
[[nodiscard]] bool parseLong(const std::string& text, long& out);
[[nodiscard]] bool parseDouble(const std::string& text, double& out);

class Args {
 public:
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback = "") const;
  /// Numeric getters return `fallback` when the flag is absent, but a flag
  /// that is present with a malformed value is a fatal usage error: they
  /// print a diagnostic naming the flag and exit with status 2 rather
  /// than silently running the experiment with a garbage parameter.
  [[nodiscard]] long getInt(const std::string& name, long fallback) const;
  [[nodiscard]] double getDouble(const std::string& name, double fallback) const;
  [[nodiscard]] bool getBool(const std::string& name, bool fallback = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }
  /// All `--name value` pairs, for callers that forward flags wholesale
  /// (e.g. scenario overrides).
  [[nodiscard]] const std::map<std::string, std::string>& named() const noexcept {
    return named_;
  }
  /// The same pairs in command-line order (a repeated flag keeps its
  /// first position with the last value, matching named()).  Scenario and
  /// sweep overrides apply in this order, because key order is
  /// load-bearing there (`--sweep.alpha=... --range=0.8` must rescale
  /// with the overridden alpha).
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& namedOrdered()
      const noexcept {
    return namedOrdered_;
  }

 private:
  void setNamed(std::string name, std::string value);

  std::string program_;
  std::map<std::string, std::string> named_;
  std::vector<std::pair<std::string, std::string>> namedOrdered_;
  std::vector<std::string> positional_;
};

}  // namespace mcs
