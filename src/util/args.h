#pragma once

#include <map>
#include <string>
#include <vector>

/// Minimal command-line flag parser for examples and experiment binaries.
///
/// Accepts `--name=value`, `--name value`, and bare `--flag` (value "1").
/// Anything not starting with `--` is collected as a positional argument.
namespace mcs {

class Args {
 public:
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback = "") const;
  [[nodiscard]] long getInt(const std::string& name, long fallback) const;
  [[nodiscard]] double getDouble(const std::string& name, double fallback) const;
  [[nodiscard]] bool getBool(const std::string& name, bool fallback = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

}  // namespace mcs
