#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/stats.h"

/// Mergeable streaming quantiles — the campaign store's replacement for
/// buffered percentiles.
///
/// A sweep cell holds a handful of seeds, but a campaign-wide quantile
/// over 10^6 cells cannot buffer every sample.  QuantileSketch is a
/// DDSketch-style log-binned histogram: a value lands in bucket
/// i = ceil(log_gamma |x|) with gamma = (1+alpha)/(1-alpha), and the
/// bucket's midpoint estimate 2*gamma^i/(gamma+1) is within relative
/// error alpha of every value the bucket can hold.  Bucket counts are
/// integers, so merging sketches is pure count addition — associative,
/// commutative, and therefore bit-identical under any merge order or
/// tree shape (locked by tests/test_sketch.cpp).  That is the same
/// determinism contract the campaign tree reducer gives moments, which
/// is what lets RESULT frames carry sketch state and the coordinator
/// fold it in arrival order without wobbling the aggregate.
///
/// StreamingQuantiles is the hybrid the report pipeline actually uses:
/// below an exact-buffer threshold it keeps raw values and reproduces
/// quantileSorted() bit-for-bit (existing p50/p95 goldens stay
/// byte-identical); past the threshold it spills into the sketch.  The
/// mode is a function of the total count only, and the spilled bucket
/// counts are a function of the value multiset only, so the canonical
/// state stays merge-order invariant in both modes and across the
/// spill boundary.
namespace mcs {

class QuantileSketch {
 public:
  /// 1% relative error; index range at this alpha spans roughly +-34500
  /// over the full double range, comfortably inside int32.
  static constexpr double kDefaultAlpha = 0.01;
  /// Magnitudes below this collapse into the zero bucket (estimate 0.0),
  /// keeping log() away from the denormal range.
  static constexpr double kMinAbs = 1e-300;

  struct Bucket {
    std::int32_t index = 0;
    std::uint64_t count = 0;

    friend bool operator==(const Bucket& a, const Bucket& b) noexcept {
      return a.index == b.index && a.count == b.count;
    }
  };

  explicit QuantileSketch(double alpha = kDefaultAlpha);

  void add(double x, std::uint64_t weight = 1);

  /// Adds `other`'s bucket counts in.  Both sketches must share alpha
  /// (they always do in this codebase: alpha is campaign-global); a
  /// mismatch is a programming error and aborts loudly.
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// The q-quantile estimate (q in [0,1]): the midpoint estimate of the
  /// bucket holding the order statistic of rank
  /// floor(q*(count-1) + 0.5).  Guaranteed within relative error alpha
  /// of that order statistic; 0 on an empty sketch.  A pure function of
  /// the canonical state, so bit-identical across merge orders.
  [[nodiscard]] double quantile(double q) const;

  /// Canonical state: zero-bucket count plus the signed bucket lists,
  /// each sorted by index ascending.  This is what the wire and store
  /// serializations write, and what fromState() rebuilds.
  [[nodiscard]] std::uint64_t zeroCount() const noexcept { return zero_; }
  [[nodiscard]] const std::vector<Bucket>& negativeBuckets() const noexcept { return neg_; }
  [[nodiscard]] const std::vector<Bucket>& positiveBuckets() const noexcept { return pos_; }

  [[nodiscard]] static QuantileSketch fromState(double alpha, std::uint64_t zero,
                                                std::vector<Bucket> neg,
                                                std::vector<Bucket> pos);

  friend bool operator==(const QuantileSketch& a, const QuantileSketch& b) noexcept {
    return a.alpha_ == b.alpha_ && a.zero_ == b.zero_ && a.neg_ == b.neg_ && a.pos_ == b.pos_;
  }

 private:
  [[nodiscard]] std::int32_t bucketIndex(double absValue) const;
  [[nodiscard]] double bucketEstimate(std::int32_t index) const;
  static void bump(std::vector<Bucket>& side, std::int32_t index, std::uint64_t weight);
  static void mergeSide(std::vector<Bucket>& into, const std::vector<Bucket>& from);

  double alpha_;
  double gamma_;
  double invLogGamma_;
  std::uint64_t count_ = 0;
  std::uint64_t zero_ = 0;
  std::vector<Bucket> neg_;  // indices of |x|, ascending; larger index = more negative x
  std::vector<Bucket> pos_;  // indices ascending
};

class StreamingQuantiles {
 public:
  /// Exact-buffer size bound: a cell's seed batch (tens of samples) and
  /// the committed smoke campaigns stay exact, so existing p50/p95
  /// goldens keep their bytes; million-cell aggregates spill.
  static constexpr std::size_t kDefaultExactThreshold = 4096;

  explicit StreamingQuantiles(double alpha = QuantileSketch::kDefaultAlpha,
                              std::size_t exactThreshold = kDefaultExactThreshold);

  void add(double x);
  void merge(const StreamingQuantiles& other);

  [[nodiscard]] std::uint64_t count() const noexcept {
    return sketchMode_ ? sketch_.count() : static_cast<std::uint64_t>(exact_.size());
  }
  [[nodiscard]] bool sketchMode() const noexcept { return sketchMode_; }
  [[nodiscard]] double alpha() const noexcept { return sketch_.alpha(); }
  [[nodiscard]] std::size_t exactThreshold() const noexcept { return threshold_; }

  /// Exact-mode: quantileSorted() over the buffered values, bit-identical
  /// to summarize()'s median/p95.  Sketch-mode: QuantileSketch::quantile.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double percentile(double p) const { return quantile(p / 100.0); }

  /// Canonical exact-mode state (sorted copy of the buffer) — what the
  /// serializers write, so the bytes do not depend on insertion order.
  [[nodiscard]] std::vector<double> sortedExactValues() const;
  [[nodiscard]] const QuantileSketch& sketch() const noexcept { return sketch_; }

  [[nodiscard]] static StreamingQuantiles fromExact(double alpha, std::size_t exactThreshold,
                                                    std::vector<double> values);
  [[nodiscard]] static StreamingQuantiles fromSketch(std::size_t exactThreshold,
                                                     QuantileSketch sketch);

 private:
  void spill();

  std::size_t threshold_;
  bool sketchMode_ = false;
  std::vector<double> exact_;
  QuantileSketch sketch_;
};

/// The unified per-metric accumulator the campaign pipeline carries:
/// moments for mean/stddev/min/max, a streaming quantile state for
/// p50/p95.  Both halves are mergeable with the fixed-shape determinism
/// contract, so a StreamingStats can be a reduction-tree node, a RESULT
/// frame payload, or a store row.
struct StreamingStats {
  OnlineStats moments;
  StreamingQuantiles quantiles;

  StreamingStats() = default;
  explicit StreamingStats(double alpha,
                          std::size_t exactThreshold = StreamingQuantiles::kDefaultExactThreshold)
      : quantiles(alpha, exactThreshold) {}

  void add(double x) {
    moments.add(x);
    quantiles.add(x);
  }
  void merge(const StreamingStats& other) {
    moments.merge(other.moments);
    quantiles.merge(other.quantiles);
  }

  /// The report-facing Summary.  In exact mode this reproduces
  /// summarize() bit-for-bit for the same sample sequence (same Welford
  /// adds, same quantileSorted), which is what keeps the golden JSON/CSV
  /// layouts byte-identical through the StreamingStats migration.
  [[nodiscard]] Summary summary() const;
};

/// Named per-metric stats in display order (slots, decode_rate,
/// structure_slots, wall_sec, then protocol metrics) — the row shape the
/// store writes and the wire ships.
using NamedStats = std::vector<std::pair<std::string, StreamingStats>>;

}  // namespace mcs
