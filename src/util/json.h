#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// Minimal JSON tree: enough to round-trip the sweep campaign reports
/// (sweep/report.h) and to diff them in sweep_check.  Objects preserve
/// insertion order so serialization is deterministic and diffs are
/// stable.  Numbers are doubles with shortest round-trip formatting,
/// matching the BENCH_*.json convention from bench_common.h.
namespace mcs {

class Json {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Json() = default;  // null
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double v) : type_(Type::Number), number_(v) {}
  Json(int v) : type_(Type::Number), number_(v) {}
  Json(std::size_t v) : type_(Type::Number), number_(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::String), string_(s) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool isNull() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool isNumber() const noexcept { return type_ == Type::Number; }
  [[nodiscard]] bool isString() const noexcept { return type_ == Type::String; }
  [[nodiscard]] bool isArray() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool isObject() const noexcept { return type_ == Type::Object; }

  /// Value accessors with fallbacks (no exceptions on type mismatch).
  [[nodiscard]] double asDouble(double fallback = 0.0) const noexcept {
    return type_ == Type::Number ? number_ : fallback;
  }
  [[nodiscard]] bool asBool(bool fallback = false) const noexcept {
    return type_ == Type::Bool ? bool_ : fallback;
  }
  [[nodiscard]] const std::string& asString() const noexcept { return string_; }

  /// Array / object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const noexcept {
    return type_ == Type::Array ? items_.size() : members_.size();
  }

  /// Array access.
  void push_back(Json v) { items_.push_back(std::move(v)); }
  [[nodiscard]] const std::vector<Json>& items() const noexcept { return items_; }
  [[nodiscard]] std::vector<Json>& items() noexcept { return items_; }

  /// Object access: set() appends or overwrites, find() returns nullptr
  /// when absent.
  void set(const std::string& key, Json v);
  [[nodiscard]] const Json* find(const std::string& key) const noexcept;
  [[nodiscard]] Json* find(const std::string& key) noexcept;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return members_;
  }
  [[nodiscard]] std::vector<std::pair<std::string, Json>>& members() noexcept {
    return members_;
  }

  /// Convenience lookups on objects.
  [[nodiscard]] double numberAt(const std::string& key, double fallback = 0.0) const noexcept {
    const Json* v = find(key);
    return v ? v->asDouble(fallback) : fallback;
  }
  [[nodiscard]] std::string stringAt(const std::string& key,
                                     const std::string& fallback = "") const {
    const Json* v = find(key);
    return v && v->isString() ? v->string_ : fallback;
  }

  /// Compact serialization (`{"a": 1, "b": [2, 3]}`), deterministic in
  /// member order; NaN/inf serialize as null.
  [[nodiscard]] std::string dump() const;

  /// Parses `text` (one JSON value, trailing whitespace allowed).  On
  /// failure returns false with a position-annotated diagnostic in `err`.
  [[nodiscard]] static bool parse(const std::string& text, Json& out, std::string& err);

  /// Reads and parses a JSON file; `err` covers both I/O and syntax.
  [[nodiscard]] static bool parseFile(const std::string& path, Json& out, std::string& err);

 private:
  void dumpTo(std::string& out) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace mcs
