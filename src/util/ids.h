#pragma once

#include <cstdint>

/// Core identifier types shared by all mcsinr modules.
namespace mcs {

/// Index of a node in the network, dense in [0, n).
using NodeId = std::int32_t;
/// Sentinel: "no node".
inline constexpr NodeId kNoNode = -1;

/// Index of a communication channel, dense in [0, F).
using ChannelId = std::int16_t;
/// Sentinel: "no channel" (node is idle / off the medium).
inline constexpr ChannelId kNoChannel = -1;

/// A cluster is identified by the NodeId of its dominator.
using ClusterId = std::int32_t;
/// Sentinel: "no cluster".
inline constexpr ClusterId kNoCluster = -1;

}  // namespace mcs
