#include "util/framing.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mcs {

namespace {

std::string errnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

bool writeFdAll(int fd, const void* data, std::size_t len, std::string& err) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      err = errnoText("write");
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool writeFrame(int fd, std::string_view payload, std::string& err) {
  if (payload.size() > kMaxFrameBytes) {
    err = "frame payload exceeds kMaxFrameBytes";
    return false;
  }
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  const unsigned char hdr[4] = {
      static_cast<unsigned char>(n >> 24), static_cast<unsigned char>(n >> 16),
      static_cast<unsigned char>(n >> 8), static_cast<unsigned char>(n)};
  // Header and payload in one buffer so a frame is one write() when it
  // fits the socket buffer (it always does for campaign frames) — the
  // peer never observes a header without its payload mid-stream.
  std::string wire;
  wire.reserve(sizeof hdr + payload.size());
  wire.append(reinterpret_cast<const char*>(hdr), sizeof hdr);
  wire.append(payload.data(), payload.size());
  return writeFdAll(fd, wire.data(), wire.size(), err);
}

void FrameDecoder::feed(const char* data, std::size_t len) {
  if (bad_) return;
  // Compact the consumed prefix before it grows unbounded.
  if (off_ > 0 && (off_ >= buf_.size() || off_ > 4096)) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  buf_.append(data, len);
}

bool FrameDecoder::next(std::string& payload) {
  if (bad_) return false;
  if (buf_.size() - off_ < 4) return false;
  const unsigned char* h = reinterpret_cast<const unsigned char*>(buf_.data() + off_);
  const std::uint32_t n = (std::uint32_t{h[0]} << 24) | (std::uint32_t{h[1]} << 16) |
                          (std::uint32_t{h[2]} << 8) | std::uint32_t{h[3]};
  if (n > kMaxFrameBytes) {
    bad_ = true;
    return false;
  }
  if (buf_.size() - off_ < 4 + static_cast<std::size_t>(n)) return false;
  payload.assign(buf_, off_ + 4, n);
  off_ += 4 + static_cast<std::size_t>(n);
  return true;
}

bool readFrameBlocking(int fd, FrameDecoder& dec, std::string& payload, std::string& err) {
  for (;;) {
    if (dec.next(payload)) return true;
    if (dec.bad()) {
      err = "frame stream corrupt (impossible length prefix)";
      return false;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n == 0) {
      err = "eof";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      err = errnoText("read");
      return false;
    }
    dec.feed(chunk, static_cast<std::size_t>(n));
  }
}

bool setNonBlocking(int fd, bool on, std::string& err) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    err = errnoText("fcntl(F_GETFL)");
    return false;
  }
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    err = errnoText("fcntl(F_SETFL)");
    return false;
  }
  return true;
}

}  // namespace mcs
