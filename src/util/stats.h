#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// Lightweight statistics helpers used by benches and tests.
namespace mcs {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;

  /// Folds another accumulator in (Chan's parallel update), as if every
  /// sample of `other` had been add()ed here.  Order-independent up to
  /// floating-point rounding, so independently filled accumulators (e.g.
  /// per-shard or per-thread) can be combined after the fact.
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Raw second central moment (sum of squared deviations) — together
  /// with count/mean/min/max/sum this is the accumulator's full state, so
  /// an OnlineStats can cross a process boundary (the campaign workers
  /// serialize these five numbers) and merge() on the far side behaves
  /// exactly as if the samples had been added there.
  [[nodiscard]] double m2() const noexcept { return m2_; }

  /// Rebuilds an accumulator from serialized state (the inverse of
  /// reading count/mean/m2/min/max/sum).  No validation: garbage moments
  /// yield garbage statistics, exactly like garbage samples.
  [[nodiscard]] static OnlineStats fromMoments(std::size_t n, double mean, double m2,
                                               double min, double max, double sum) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// The q-quantile of an already sorted, NON-EMPTY sample by linear
/// interpolation between order statistics.  Exposed so the streaming
/// quantile state (util/sketch.h) reproduces the exact-path bits.
[[nodiscard]] double quantileSorted(const std::vector<double>& xs, double q);

/// Returns the q-quantile (q in [0,1]) of `xs` by linear interpolation.
/// `xs` is copied and sorted.  An empty sample has no quantiles: the
/// call is a logged fatal (abort), because every historical caller that
/// hit it silently read 0.0 as a real statistic.
[[nodiscard]] double quantile(std::vector<double> xs, double q);

/// The p-th percentile (p in [0,100]); quantile() scaled the way bench
/// tables and sweep summaries label it (p50, p95, ...).  Empty input is
/// a logged fatal, like quantile().
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Five-number-ish summary of a sample, handy for bench tables.  The
/// median is the 50th percentile; p95 is the sweep engine's tail
/// statistic.  Both linearly interpolate between order statistics, so for
/// small samples p95 lands between the two largest values (p95 of {1, 2}
/// is 1.95), reaching max only at p100.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Half-width of the 95% normal-approximation confidence interval on
  /// the mean: 1.96 * stddev / sqrt(count) (0 below two samples).  The
  /// sweep reports surface it so per-cell means carry their uncertainty.
  double ci95 = 0.0;
  double min = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(const std::vector<double>& xs);

/// Formats `x` with `digits` significant decimals (no trailing zeros mess).
[[nodiscard]] std::string formatDouble(double x, int digits = 2);

/// Least-squares slope of y against x (both same length, >= 2 points).
[[nodiscard]] double linearSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace mcs
