#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// A small fixed-size worker pool for data-parallel loops.
///
/// The pool owns `threads - 1` workers; the calling thread participates as
/// the remaining lane, so `parallelFor` never context-switches for
/// single-threaded pools and degenerates to a plain loop when threads == 1.
/// Work is split into one contiguous chunk per lane, which keeps the
/// partition deterministic: a given (n, threads) pair always yields the
/// same chunks, so numerically order-sensitive reductions stay reproducible.
namespace mcs {

class ThreadPool {
 public:
  /// Spawns a pool with `threads` lanes total (>= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(begin, end)` over a partition of [0, n) into one contiguous
  /// chunk per lane, in parallel.  Blocks until every chunk finished.
  /// `fn` must be safe to call concurrently from different threads on
  /// disjoint ranges.  Empty chunks are skipped.
  void parallelFor(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  /// The [begin, end) chunk lane `lane` owns out of [0, n) split `lanes` ways.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> chunk(std::size_t n, int lanes,
                                                                 int lane) noexcept;

 private:
  void workerLoop(int lane);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable workCv_;
  std::condition_variable doneCv_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t jobN_ = 0;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace mcs
