#include "util/csv.h"

#include <stdexcept>

namespace mcs {

CsvWriter::CsvWriter(const std::string& path) : out_(path), toFile_(true) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string csvEscape(const std::string& field) {
  const bool needsQuote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuote) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string csvJoin(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += csvEscape(fields[i]);
  }
  return line;
}

std::string CsvWriter::escape(const std::string& field) { return csvEscape(field); }

void CsvWriter::writeLine(const std::vector<std::string>& values) {
  if (!toFile_) return;
  out_ << csvJoin(values) << '\n';
}

void CsvWriter::header(const std::vector<std::string>& names) { writeLine(names); }

void CsvWriter::row(const std::vector<std::string>& values) {
  writeLine(values);
  ++rows_;
}

}  // namespace mcs
