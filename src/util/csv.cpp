#include "util/csv.h"

#include <stdexcept>

namespace mcs {

CsvWriter::CsvWriter(const std::string& path) : out_(path), toFile_(true) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needsQuote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuote) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::writeLine(const std::vector<std::string>& values) {
  if (!toFile_) return;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(values[i]);
  }
  out_ << '\n';
}

void CsvWriter::header(const std::vector<std::string>& names) { writeLine(names); }

void CsvWriter::row(const std::vector<std::string>& values) {
  writeLine(values);
  ++rows_;
}

}  // namespace mcs
