#pragma once

#include <string>

/// Tiny leveled logger.  Protocol code logs at Debug level; benches and
/// examples raise the level to Info.  All output goes to stderr so that
/// experiment tables on stdout stay machine-readable.
namespace mcs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level) noexcept;
[[nodiscard]] LogLevel logLevel() noexcept;

/// Writes one log line ("[level] message\n") if `level` passes the threshold.
void logMessage(LogLevel level, const std::string& message);

inline void logDebug(const std::string& m) { logMessage(LogLevel::Debug, m); }
inline void logInfo(const std::string& m) { logMessage(LogLevel::Info, m); }
inline void logWarn(const std::string& m) { logMessage(LogLevel::Warn, m); }
inline void logError(const std::string& m) { logMessage(LogLevel::Error, m); }

}  // namespace mcs
