#pragma once

#include <string>

/// Tiny leveled logger.  Protocol code logs at Debug level; benches and
/// examples raise the level to Info.  All output goes to stderr so that
/// experiment tables on stdout stay machine-readable.
///
/// Thread-safe: each line is formatted into one buffer and written with a
/// single stdio call under a mutex, so lines from ThreadPool workers
/// never interleave mid-line.
namespace mcs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level) noexcept;
[[nodiscard]] LogLevel logLevel() noexcept;

/// Writes one log line ("[level] message\n") if `level` passes the threshold.
void logMessage(LogLevel level, const std::string& message);

inline void logDebug(const std::string& m) { logMessage(LogLevel::Debug, m); }
inline void logInfo(const std::string& m) { logMessage(LogLevel::Info, m); }
inline void logWarn(const std::string& m) { logMessage(LogLevel::Warn, m); }
inline void logError(const std::string& m) { logMessage(LogLevel::Error, m); }

/// Warns exactly once per `key` for the process lifetime — the hot-loop
/// idiom ("grid fell back to a rebuild", "fading gain clamped") where the
/// first occurrence is signal and the next million are noise.  Returns
/// true when this call actually logged.
bool logWarnOnce(const std::string& key, const std::string& message);

}  // namespace mcs
