#pragma once

#include <chrono>
#include <cstdint>

/// Monotonic wall-clock helpers shared by the runners, benches, and the
/// telemetry subsystem.  All timing in the repo goes through these two
/// functions so "seconds" always means the same steady clock.
namespace mcs {

/// Monotonic wall-clock seconds (steady_clock since its epoch).
[[nodiscard]] inline double nowSec() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic nanoseconds — the telemetry timer/trace resolution.
[[nodiscard]] inline std::uint64_t nowNanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace mcs
