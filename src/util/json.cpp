#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mcs {

void Json::set(const std::string& key, Json v) {
  type_ = Type::Object;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const Json* Json::find(const std::string& key) const noexcept {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json* Json::find(const std::string& key) noexcept {
  for (auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

/// Recursive-descent parser over a char range.  Depth-limited so a
/// pathological input cannot overflow the stack.
class Parser {
 public:
  Parser(const std::string& text, std::string& err) : s_(text), err_(err) {}

  bool run(Json& out) {
    skipWs();
    if (!value(out, 0)) return false;
    skipWs();
    if (pos_ != s_.size()) return fail("trailing characters after JSON value");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    err_ = "JSON parse error at offset " + std::to_string(pos_) + ": " + what;
    return false;
  }

  void skipWs() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool peekIs(char c) const { return pos_ < s_.size() && s_[pos_] == c; }

  bool expect(char c) {
    if (!peekIs(c)) return fail(std::string("expected '") + c + "'");
    ++pos_;
    return true;
  }

  bool literal(const char* word, Json v, Json& out) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return fail("bad literal");
    }
    out = std::move(v);
    return true;
  }

  bool string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // The reports only ever escape control characters; encode the
          // code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(Json& out) {
    const std::size_t start = pos_;
    if (peekIs('-')) ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double v = 0.0;
    const auto res = std::from_chars(s_.data() + start, s_.data() + pos_, v);
    if (res.ec != std::errc() || res.ptr != s_.data() + pos_) return fail("malformed number");
    out = Json(v);
    return true;
  }

  bool value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    switch (c) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"': {
        std::string s;
        if (!string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case 't': return literal("true", Json(true), out);
      case 'f': return literal("false", Json(false), out);
      case 'n': return literal("null", Json(), out);
      default: return number(out);
    }
  }

  bool object(Json& out, int depth) {
    ++pos_;  // '{'
    out = Json::object();
    skipWs();
    if (peekIs('}')) {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      std::string key;
      if (!string(key)) return false;
      skipWs();
      if (!expect(':')) return false;
      skipWs();
      Json v;
      if (!value(v, depth + 1)) return false;
      out.set(key, std::move(v));
      skipWs();
      if (peekIs(',')) {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  bool array(Json& out, int depth) {
    ++pos_;  // '['
    out = Json::array();
    skipWs();
    if (peekIs(']')) {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      Json v;
      if (!value(v, depth + 1)) return false;
      out.push_back(std::move(v));
      skipWs();
      if (peekIs(',')) {
        ++pos_;
        continue;
      }
      return expect(']');
    }
  }

  const std::string& s_;
  std::string& err_;
  std::size_t pos_ = 0;
};

}  // namespace

void Json::dumpTo(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: appendNumber(out, number_); break;
    case Type::String: appendEscaped(out, string_); break;
    case Type::Array:
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ", ";
        items_[i].dumpTo(out);
      }
      out += ']';
      break;
    case Type::Object:
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ", ";
        appendEscaped(out, members_[i].first);
        out += ": ";
        members_[i].second.dumpTo(out);
      }
      out += '}';
      break;
  }
}

std::string Json::dump() const {
  std::string out;
  dumpTo(out);
  return out;
}

bool Json::parse(const std::string& text, Json& out, std::string& err) {
  return Parser(text, err).run(out);
}

bool Json::parseFile(const std::string& path, Json& out, std::string& err) {
  std::ifstream f(path);
  if (!f) {
    err = "cannot open \"" + path + "\"";
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  if (!Json::parse(buf.str(), out, err)) {
    err = path + ": " + err;
    return false;
  }
  return true;
}

}  // namespace mcs
