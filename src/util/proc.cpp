#include "util/proc.h"

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

namespace mcs {

bool spawnChildWithSocket(const std::function<int(int)>& childMain,
                          const std::vector<int>& closeInChild, ChildProc& out,
                          std::string& err) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    err = std::string("socketpair: ") + std::strerror(errno);
    return false;
  }
  // The child must not flush a copy of the parent's buffered stdio.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    err = std::string("fork: ") + std::strerror(errno);
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    ::close(sv[0]);
    for (const int fd : closeInChild) ::close(fd);
    const int code = childMain(sv[1]);
    ::close(sv[1]);
    ::_exit(code);
  }
  ::close(sv[1]);
  out.pid = pid;
  out.fd = sv[0];
  return true;
}

bool reapChild(ChildProc& c, int& status) {
  if (c.pid <= 0) return false;
  const pid_t r = ::waitpid(c.pid, &status, WNOHANG);
  if (r == c.pid) {
    c.pid = -1;
    return true;
  }
  return false;
}

void killChildProc(ChildProc& c) {
  if (c.pid > 0) {
    ::kill(c.pid, SIGKILL);
    int status = 0;
    while (::waitpid(c.pid, &status, 0) < 0 && errno == EINTR) {
    }
    c.pid = -1;
  }
  if (c.fd >= 0) {
    ::close(c.fd);
    c.fd = -1;
  }
}

SigPipeGuard::SigPipeGuard() { previous_ = std::signal(SIGPIPE, SIG_IGN); }

SigPipeGuard::~SigPipeGuard() {
  if (previous_ != SIG_ERR) std::signal(SIGPIPE, previous_);
}

}  // namespace mcs
