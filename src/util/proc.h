#pragma once

#include <sys/types.h>

#include <functional>
#include <string>
#include <vector>

/// Child-process helpers for the campaign coordinator: fork a worker
/// connected by a socketpair, reap it, kill it.  POSIX-only, like the
/// fork-based execution model itself; everything else in the repo stays
/// process-agnostic.
namespace mcs {

/// One forked child and the parent's end of its socketpair.
struct ChildProc {
  pid_t pid = -1;
  int fd = -1;

  [[nodiscard]] bool valid() const noexcept { return pid > 0 && fd >= 0; }
};

/// Creates a socketpair and forks.  The child closes every fd in
/// `closeInChild` (the parent ends of earlier siblings — a child holding
/// one would keep that sibling's EOF from ever reaching the coordinator),
/// runs `childMain(childFd)`, and _exit()s with its return value
/// (_exit, not exit: the child must not flush stdio buffers it inherited
/// from the parent).  stdio is flushed in the parent before forking for
/// the same reason.  On success the parent gets {pid, parentFd}.
bool spawnChildWithSocket(const std::function<int(int)>& childMain,
                          const std::vector<int>& closeInChild, ChildProc& out,
                          std::string& err);

/// waitpid(WNOHANG).  Returns true when the child has exited and was
/// reaped (status filled in); false while it is still running.  `pid` is
/// reset to -1 once reaped so a second call is a no-op.
bool reapChild(ChildProc& c, int& status);

/// SIGKILL + blocking reap + close of the parent fd (all best-effort,
/// idempotent).  For fault injection and coordinator teardown.
void killChildProc(ChildProc& c);

/// RAII SIGPIPE suppression: a write to a worker that just died must
/// surface as EPIPE from write(), not kill the coordinator.  Restores the
/// previous disposition on destruction.
class SigPipeGuard {
 public:
  SigPipeGuard();
  ~SigPipeGuard();
  SigPipeGuard(const SigPipeGuard&) = delete;
  SigPipeGuard& operator=(const SigPipeGuard&) = delete;

 private:
  void (*previous_)(int);
};

}  // namespace mcs
