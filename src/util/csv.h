#pragma once

#include <fstream>
#include <string>
#include <vector>

/// Minimal CSV writer for experiment outputs.
namespace mcs {

/// Escapes one CSV field per RFC 4180: fields containing commas, quotes,
/// or line breaks are quoted with embedded quotes doubled.  Shared by
/// CsvWriter and by the sweep campaign reports, so metric names and
/// preset descriptions with punctuation survive a round trip through any
/// CSV reader.
[[nodiscard]] std::string csvEscape(const std::string& field);

/// Joins already-unescaped fields into one CSV line (no trailing newline).
[[nodiscard]] std::string csvJoin(const std::vector<std::string>& fields);

/// Writes rows to a CSV file (or keeps them in memory if no path given).
/// Values containing commas/quotes/newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter() = default;
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& values);

  /// Number of data rows written (header excluded).
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

  /// Escapes a single CSV field.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  void writeLine(const std::vector<std::string>& values);

  std::ofstream out_;
  bool toFile_ = false;
  std::size_t rows_ = 0;
};

}  // namespace mcs
