#include "util/sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mcs {

QuantileSketch::QuantileSketch(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    std::fprintf(stderr, "FATAL: QuantileSketch alpha %g outside (0,1)\n", alpha);
    std::abort();
  }
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  invLogGamma_ = 1.0 / std::log(gamma_);
}

std::int32_t QuantileSketch::bucketIndex(double absValue) const {
  return static_cast<std::int32_t>(std::ceil(std::log(absValue) * invLogGamma_));
}

double QuantileSketch::bucketEstimate(std::int32_t index) const {
  return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

void QuantileSketch::bump(std::vector<Bucket>& side, std::int32_t index,
                          std::uint64_t weight) {
  const auto it = std::lower_bound(
      side.begin(), side.end(), index,
      [](const Bucket& b, std::int32_t idx) { return b.index < idx; });
  if (it != side.end() && it->index == index) {
    it->count += weight;
    return;
  }
  side.insert(it, Bucket{index, weight});
}

void QuantileSketch::add(double x, std::uint64_t weight) {
  if (weight == 0) return;
  count_ += weight;
  const double ax = std::abs(x);
  if (!(ax >= kMinAbs)) {  // zero, denormal-tiny, or NaN
    zero_ += weight;
    return;
  }
  bump(x < 0.0 ? neg_ : pos_, bucketIndex(ax), weight);
}

void QuantileSketch::mergeSide(std::vector<Bucket>& into, const std::vector<Bucket>& from) {
  std::vector<Bucket> out;
  out.reserve(into.size() + from.size());
  std::size_t i = 0, j = 0;
  while (i < into.size() || j < from.size()) {
    if (j >= from.size() || (i < into.size() && into[i].index < from[j].index)) {
      out.push_back(into[i++]);
    } else if (i >= into.size() || from[j].index < into[i].index) {
      out.push_back(from[j++]);
    } else {
      out.push_back(Bucket{into[i].index, into[i].count + from[j].count});
      ++i;
      ++j;
    }
  }
  into = std::move(out);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (alpha_ != other.alpha_) {
    std::fprintf(stderr, "FATAL: merging QuantileSketch alpha %g into alpha %g\n",
                 other.alpha_, alpha_);
    std::abort();
  }
  count_ += other.count_;
  zero_ += other.zero_;
  mergeSide(neg_, other.neg_);
  mergeSide(pos_, other.pos_);
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank convention shared with the error-bound tests: the order
  // statistic nearest the interpolated position q*(n-1).
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t seen = 0;
  // Ascending value order: most-negative first (descending |x| index).
  for (auto it = neg_.rbegin(); it != neg_.rend(); ++it) {
    seen += it->count;
    if (seen > rank) return -bucketEstimate(it->index);
  }
  seen += zero_;
  if (seen > rank) return 0.0;
  for (const Bucket& b : pos_) {
    seen += b.count;
    if (seen > rank) return bucketEstimate(b.index);
  }
  // Unreachable when counts are consistent; be defensive about the tail.
  return pos_.empty() ? 0.0 : bucketEstimate(pos_.back().index);
}

QuantileSketch QuantileSketch::fromState(double alpha, std::uint64_t zero,
                                         std::vector<Bucket> neg, std::vector<Bucket> pos) {
  QuantileSketch s(alpha);
  s.zero_ = zero;
  s.neg_ = std::move(neg);
  s.pos_ = std::move(pos);
  s.count_ = zero;
  for (const Bucket& b : s.neg_) s.count_ += b.count;
  for (const Bucket& b : s.pos_) s.count_ += b.count;
  return s;
}

StreamingQuantiles::StreamingQuantiles(double alpha, std::size_t exactThreshold)
    : threshold_(exactThreshold), sketch_(alpha) {}

void StreamingQuantiles::spill() {
  for (double v : exact_) sketch_.add(v);
  exact_.clear();
  exact_.shrink_to_fit();
  sketchMode_ = true;
}

void StreamingQuantiles::add(double x) {
  if (sketchMode_) {
    sketch_.add(x);
    return;
  }
  exact_.push_back(x);
  if (exact_.size() > threshold_) spill();
}

void StreamingQuantiles::merge(const StreamingQuantiles& other) {
  if (other.count() == 0) return;
  if (!sketchMode_ && !other.sketchMode_) {
    exact_.insert(exact_.end(), other.exact_.begin(), other.exact_.end());
    if (exact_.size() > threshold_) spill();
    return;
  }
  if (!sketchMode_) spill();
  if (other.sketchMode_) {
    sketch_.merge(other.sketch_);
  } else {
    for (double v : other.exact_) sketch_.add(v);
  }
}

double StreamingQuantiles::quantile(double q) const {
  if (sketchMode_) return sketch_.quantile(q);
  if (exact_.empty()) return 0.0;
  std::vector<double> sorted = exact_;
  std::sort(sorted.begin(), sorted.end());
  return quantileSorted(sorted, q);
}

std::vector<double> StreamingQuantiles::sortedExactValues() const {
  std::vector<double> sorted = exact_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

StreamingQuantiles StreamingQuantiles::fromExact(double alpha, std::size_t exactThreshold,
                                                 std::vector<double> values) {
  StreamingQuantiles q(alpha, exactThreshold);
  q.exact_ = std::move(values);
  if (q.exact_.size() > q.threshold_) q.spill();
  return q;
}

StreamingQuantiles StreamingQuantiles::fromSketch(std::size_t exactThreshold,
                                                  QuantileSketch sketch) {
  StreamingQuantiles q(sketch.alpha(), exactThreshold);
  q.sketch_ = std::move(sketch);
  q.sketchMode_ = true;
  return q;
}

Summary StreamingStats::summary() const {
  Summary s;
  s.count = moments.count();
  s.mean = moments.mean();
  s.stddev = moments.stddev();
  if (s.count >= 2) {
    s.ci95 = 1.959963984540054 * s.stddev / std::sqrt(static_cast<double>(s.count));
  }
  s.min = moments.min();
  s.max = moments.max();
  if (quantiles.count() > 0) {
    s.median = quantiles.quantile(0.5);
    s.p95 = quantiles.quantile(0.95);
  }
  return s;
}

}  // namespace mcs
