#pragma once

#include <cstdint>
#include <limits>

/// Deterministic, fork-able random number generation.
///
/// All randomness in mcsinr flows through Rng so that every simulation is
/// exactly reproducible from a single 64-bit seed.  The generator is
/// xoshiro256** seeded via splitmix64, which is both fast and has
/// well-studied statistical quality; `fork()` derives statistically
/// independent streams (one per node, per protocol, ...) from a parent.
namespace mcs {

/// splitmix64 step; used for seeding and stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child stream keyed by `stream`.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept {
    std::uint64_t sm = state_[0] ^ (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
    Rng child(splitmix64(sm));
    return child;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace mcs
