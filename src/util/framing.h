#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

/// Length-prefixed byte framing over POSIX file descriptors — the wire
/// substrate of the campaign coordinator/worker protocol (see
/// campaign/protocol.h for the frame vocabulary).
///
/// A frame on the wire is a 4-byte big-endian payload length followed by
/// exactly that many payload bytes.  The format carries no alignment or
/// checksum machinery: frames flow over in-process socketpairs between a
/// coordinator and the workers it forked, so the kernel guarantees
/// ordered, reliable delivery and the only failure modes are a peer
/// dying mid-frame (surfaces as EOF) and a corrupted/hostile length
/// (bounded by kMaxFrameBytes and surfaced as a decoder error, never an
/// allocation of attacker-chosen size).
namespace mcs {

/// Upper bound on one frame's payload.  Campaign frames are cell leases
/// and per-cell summary records — kilobytes, not megabytes — so anything
/// near this bound is corruption, not data.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Writes all `len` bytes (EINTR-retried, handles short writes).  Returns
/// false with a diagnostic on error — including EPIPE when the peer died,
/// which callers must expect (the coordinator treats it as worker death).
bool writeFdAll(int fd, const void* data, std::size_t len, std::string& err);

/// Writes one length-prefixed frame.
bool writeFrame(int fd, std::string_view payload, std::string& err);

/// Incremental frame decoder: feed() arbitrary byte chunks as they
/// arrive from a (possibly nonblocking) fd, next() pops complete frames.
/// A frame boundary never has to align with a read() boundary.
class FrameDecoder {
 public:
  /// Appends raw bytes from the wire.
  void feed(const char* data, std::size_t len);

  /// Pops the next complete frame payload into `payload`.  Returns false
  /// when no complete frame is buffered (more bytes needed) — or when the
  /// decoder is bad(); callers must check bad() to tell the two apart.
  bool next(std::string& payload);

  /// True once an impossible length prefix was seen (> kMaxFrameBytes).
  /// The stream is unrecoverable from that point; the peer is broken.
  [[nodiscard]] bool bad() const noexcept { return bad_; }

  /// Bytes buffered but not yet consumed (diagnostics/tests).
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - off_; }

 private:
  std::string buf_;
  std::size_t off_ = 0;  // consumed prefix of buf_, compacted lazily
  bool bad_ = false;
};

/// Blocking convenience: reads from `fd` until one complete frame is
/// decoded.  Returns false on EOF, read error, or a bad length prefix
/// (`err` distinguishes; EOF sets err to "eof").  Used by workers, whose
/// sockets stay blocking; the coordinator runs the decoder itself over
/// nonblocking fds.
bool readFrameBlocking(int fd, FrameDecoder& dec, std::string& payload, std::string& err);

/// Sets O_NONBLOCK on (or off) `fd`.
bool setNonBlocking(int fd, bool on, std::string& err);

}  // namespace mcs
