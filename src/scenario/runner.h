#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/driver.h"
#include "scenario/spec.h"
#include "util/stats.h"

/// Batched multi-seed scenario execution.
///
/// Per-seed contract (what "directly wired" code must replicate to match
/// the engine bit-for-bit, and what tests/test_scenario.cpp locks in):
///
///   Rng deployRng(seed);
///   auto pts = materializeDeployment(spec.deployment, deployRng);
///   Network net(std::move(pts), spec.sinr);
///   Simulator sim(net, spec.channels, seed);
///   if (spec.topology.dynamic()) sim.attachDynamics(spec.topology);
///   Rng valueRng = Rng(seed).fork(kValueStream);
///   protocolDriver(spec.protocol).run(sim, spec, valueRng);
///
/// The driver layer (scenario/driver.h) owns step five: every
/// ProtocolKind maps to one ProtocolDriver, and the runner is oblivious
/// to what the workload actually is.  With fading disabled this
/// reproduces a hand-wired Simulator run exactly; with fading enabled
/// the same seed still reproduces the same decode trace (the fading key
/// is Simulator stream 0).  Seeds of a batch are independent, so the
/// runner executes them in parallel on a ThreadPool (one Simulator per
/// seed); each Medium stays single-threaded inside a batch and results
/// do not depend on the lane count.
namespace mcs {

/// Root-fork stream id for the per-node contribution values.  Far above
/// the per-node streams (1..n) and the fading stream (0), so the value
/// draw never collides with simulation randomness.
inline constexpr std::uint64_t kValueStream = 1ULL << 63;

/// Everything measured about one seed of a scenario: medium totals owned
/// by the runner, plus the driver's protocol-agnostic outcome (delivery,
/// structure cost, named metrics, validity verdict).
struct SeedResult {
  std::uint64_t seed = 0;
  /// Nodes actually deployed (PoissonDisk may saturate below spec n).
  int deployedN = 0;
  /// Medium totals for the whole run.
  std::uint64_t slots = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t listens = 0;
  std::uint64_t decodes = 0;
  double decodeRate = 0.0;
  /// Structure construction cost (slots); 0 when the protocol has none.
  std::uint64_t structureSlots = 0;
  /// Protocol-level success (aggregate delivered / structure built / ...).
  bool delivered = false;
  /// The driver's ground-truth verdict (NotChecked when it has none).
  OutcomeValidity validity = OutcomeValidity::NotChecked;
  /// The protocol's named metrics (e.g. agg_value, colors_used,
  /// csa_worst_ratio, ruling_set_size); see the driver for each kind.
  MetricMap metrics;
  double wallSec = 0.0;
  /// Non-empty iff the run threw; the batch continues past failures.
  std::string error;

  [[nodiscard]] bool failed() const noexcept { return !error.empty(); }
  /// Convenience metric lookup (fallback when the kind lacks the metric).
  [[nodiscard]] double metricOr(const std::string& name, double fallback = 0.0) const noexcept {
    return metrics.getOr(name, fallback);
  }
};

/// A whole batch plus per-metric summaries.
struct ScenarioBatchResult {
  ScenarioSpec spec;
  std::vector<SeedResult> perSeed;

  [[nodiscard]] int failures() const noexcept {
    int f = 0;
    for (const SeedResult& r : perSeed) f += r.failed() ? 1 : 0;
    return f;
  }
  [[nodiscard]] int deliveredCount() const noexcept {
    int d = 0;
    for (const SeedResult& r : perSeed) d += r.delivered ? 1 : 0;
    return d;
  }
  /// Seeds whose ground-truth check ran and held / ran and failed.
  [[nodiscard]] int validCount() const noexcept {
    int c = 0;
    for (const SeedResult& r : perSeed) c += r.validity == OutcomeValidity::Valid ? 1 : 0;
    return c;
  }
  [[nodiscard]] int invalidCount() const noexcept {
    int c = 0;
    for (const SeedResult& r : perSeed) c += r.validity == OutcomeValidity::Invalid ? 1 : 0;
    return c;
  }

  /// Summary over non-failed seeds of one metric.
  [[nodiscard]] Summary summarizeSlots() const;
  [[nodiscard]] Summary summarizeDecodeRate() const;
  /// Per-seed wall time, including failed seeds (perf regressions show up
  /// in BENCH artifacts either way).
  [[nodiscard]] Summary summarizeWallSec() const;
  /// Summary of one named metric over the non-failed seeds that carry it.
  [[nodiscard]] Summary summarizeMetric(const std::string& name) const;
  /// Union of metric names across seeds, in first-appearance order (the
  /// JSON/CSV column order; identical across seeds of one protocol).
  [[nodiscard]] std::vector<std::string> metricNames() const;
};

/// Runs one seed of the scenario (the contract above).  Exceptions are
/// captured into SeedResult::error.
[[nodiscard]] SeedResult runScenarioSeed(const ScenarioSpec& spec, std::uint64_t seed);

/// Runs the spec's whole seed batch (seed0 .. seed0+seeds-1) on `threads`
/// ThreadPool lanes (<= 1: sequential).  Results are ordered by seed and
/// independent of `threads`.
[[nodiscard]] ScenarioBatchResult runScenarioBatch(const ScenarioSpec& spec, int threads = 1);

}  // namespace mcs
