#include "scenario/runner.h"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "agg/aggregate.h"
#include "baseline/aloha_agg.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace mcs {

namespace {

double wallNow() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<double> drawValues(std::uint64_t seed, int n) {
  Rng vr = Rng(seed).fork(kValueStream);
  std::vector<double> values(static_cast<std::size_t>(n));
  for (double& x : values) x = vr.uniform();
  return values;
}

Summary summarizeMetric(const std::vector<SeedResult>& perSeed, double (*metric)(const SeedResult&)) {
  std::vector<double> xs;
  xs.reserve(perSeed.size());
  for (const SeedResult& r : perSeed) {
    if (!r.failed()) xs.push_back(metric(r));
  }
  return summarize(xs);
}

}  // namespace

Summary ScenarioBatchResult::summarizeSlots() const {
  return summarizeMetric(perSeed, [](const SeedResult& r) { return static_cast<double>(r.slots); });
}

Summary ScenarioBatchResult::summarizeDecodeRate() const {
  return summarizeMetric(perSeed, [](const SeedResult& r) { return r.decodeRate; });
}

SeedResult runScenarioSeed(const ScenarioSpec& spec, std::uint64_t seed) {
  SeedResult res;
  res.seed = seed;
  const double t0 = wallNow();
  try {
    Rng deployRng(seed);
    auto pts = materializeDeployment(spec.deployment, deployRng);
    res.deployedN = static_cast<int>(pts.size());
    if (pts.empty()) throw std::runtime_error("deployment produced no nodes");

    Network net(std::move(pts), spec.sinr);
    Simulator sim(net, spec.channels, seed);
    StructureOptions opts;
    opts.deltaHat = spec.deltaHat;

    switch (spec.protocol) {
      case ProtocolKind::Structure: {
        const AggregationStructure s = buildStructure(sim, opts);
        res.structureSlots = s.costs.structureTotal();
        res.delivered = !s.clustering.dominators.empty();
        break;
      }
      case ProtocolKind::AggregateMax:
      case ProtocolKind::AggregateSum: {
        const AggKind kind =
            spec.protocol == ProtocolKind::AggregateMax ? AggKind::Max : AggKind::Sum;
        const auto values = drawValues(seed, res.deployedN);
        const AggregationStructure s = buildStructure(sim, opts);
        res.structureSlots = s.costs.structureTotal();
        const AggregateRun run = runAggregation(sim, s, values, kind);
        res.delivered = run.delivered;
        res.aggValue = run.valueAtNode.empty() ? 0.0 : run.valueAtNode[0];
        res.truthValue = aggregateGroundTruth(values, kind);
        res.uplinkSlots = run.costs.uplink;
        res.aggSlots = run.costs.aggregationTotal();
        break;
      }
      case ProtocolKind::Aloha: {
        const auto values = drawValues(seed, res.deployedN);
        const AggregationStructure s = buildStructure(sim, opts);
        res.structureSlots = s.costs.structureTotal();
        const AggregateRun run = runAlohaAggregation(sim, s, values, AggKind::Max);
        res.delivered = run.delivered;
        res.aggValue = run.valueAtNode.empty() ? 0.0 : run.valueAtNode[0];
        res.truthValue = aggregateGroundTruth(values, AggKind::Max);
        res.uplinkSlots = run.costs.uplink;
        res.aggSlots = run.costs.aggregationTotal();
        break;
      }
    }

    const MediumStats& ms = sim.mediumStats();
    res.slots = ms.slots;
    res.transmissions = ms.transmissions;
    res.listens = ms.listens;
    res.decodes = ms.decodes;
    res.decodeRate = ms.decodeRate();
  } catch (const std::exception& e) {
    res.error = e.what();
  } catch (...) {
    res.error = "unknown exception";
  }
  res.wallSec = wallNow() - t0;
  return res;
}

ScenarioBatchResult runScenarioBatch(const ScenarioSpec& spec, int threads) {
  ScenarioBatchResult batch;
  batch.spec = spec;
  const int seeds = spec.seeds;
  batch.perSeed.resize(static_cast<std::size_t>(seeds));
  const auto runRange = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      batch.perSeed[i] = runScenarioSeed(spec, spec.seed0 + i);
    }
  };
  if (threads > 1 && seeds > 1) {
    ThreadPool pool(threads);
    pool.parallelFor(static_cast<std::size_t>(seeds), runRange);
  } else {
    runRange(0, static_cast<std::size_t>(seeds));
  }
  return batch;
}

}  // namespace mcs
