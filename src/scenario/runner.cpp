#include "scenario/runner.h"

#include <exception>
#include <stdexcept>
#include <utility>

#include "sim/network.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/clock.h"
#include "util/thread_pool.h"

namespace mcs {

namespace {

struct SeedTelemetry {
  telemetry::TimerId deploy = telemetry::timerId("scenario.deploy");
  telemetry::TimerId driverRun = telemetry::timerId("driver.run");
  telemetry::TraceNameId seedStart = telemetry::traceName("seed.start");
  telemetry::TraceNameId seedDeployed = telemetry::traceName("seed.deployed");
  telemetry::TraceNameId seedDone = telemetry::traceName("seed.done");
};

const SeedTelemetry& seedTm() {
  static const SeedTelemetry ids;
  return ids;
}

template <class Fn>
Summary summarizeOver(const std::vector<SeedResult>& perSeed, Fn metric) {
  std::vector<double> xs;
  xs.reserve(perSeed.size());
  for (const SeedResult& r : perSeed) {
    if (!r.failed()) xs.push_back(metric(r));
  }
  return summarize(xs);
}

}  // namespace

Summary ScenarioBatchResult::summarizeSlots() const {
  return summarizeOver(perSeed, [](const SeedResult& r) { return static_cast<double>(r.slots); });
}

Summary ScenarioBatchResult::summarizeDecodeRate() const {
  return summarizeOver(perSeed, [](const SeedResult& r) { return r.decodeRate; });
}

Summary ScenarioBatchResult::summarizeWallSec() const {
  std::vector<double> xs;
  xs.reserve(perSeed.size());
  for (const SeedResult& r : perSeed) xs.push_back(r.wallSec);
  return summarize(xs);
}

Summary ScenarioBatchResult::summarizeMetric(const std::string& name) const {
  std::vector<double> xs;
  xs.reserve(perSeed.size());
  for (const SeedResult& r : perSeed) {
    if (r.failed()) continue;
    if (const double* v = r.metrics.find(name)) xs.push_back(*v);
  }
  return summarize(xs);
}

std::vector<std::string> ScenarioBatchResult::metricNames() const {
  std::vector<std::string> names;
  for (const SeedResult& r : perSeed) {
    for (const auto& [name, value] : r.metrics.entries()) {
      bool seen = false;
      for (const std::string& have : names) {
        if (have == name) {
          seen = true;
          break;
        }
      }
      if (!seen) names.push_back(name);
    }
  }
  return names;
}

SeedResult runScenarioSeed(const ScenarioSpec& spec, std::uint64_t seed) {
  SeedResult res;
  res.seed = seed;
  const double t0 = nowSec();
  const auto seedArg = static_cast<std::int64_t>(seed);
  telemetry::traceInstant(seedTm().seedStart, seedArg);
  try {
    Rng deployRng(seed);
    std::vector<Vec2> pts;
    {
      const telemetry::PhaseTimer t(seedTm().deploy);
      pts = materializeDeployment(spec.deployment, deployRng);
    }
    telemetry::traceInstant(seedTm().seedDeployed, seedArg);
    res.deployedN = static_cast<int>(pts.size());
    if (pts.empty()) throw std::runtime_error("deployment produced no nodes");

    // bounds_width > 0 hands the protocols uncertainty ranges instead of
    // the exact parameters; the Medium still runs on the true sinr.
    const SinrBounds bounds = spec.boundsWidth > 0.0
                                  ? SinrBounds::around(spec.sinr, spec.boundsWidth)
                                  : SinrBounds::exact(spec.sinr);
    Network net(std::move(pts), spec.sinr, Tuning{}, &bounds);
    Simulator sim(net, spec.channels, seed);
    // Dynamic topologies attach the per-slot mobility/churn hook; static
    // specs attach nothing and stay bit-identical to the pre-mobility
    // engine (the dynamics keys are root-Rng forks, never draws).
    if (spec.topology.dynamic()) sim.attachDynamics(spec.topology);
    Rng valueRng = Rng(seed).fork(kValueStream);

    ProtocolOutcome out;
    {
      const telemetry::PhaseTimer t(seedTm().driverRun);
      out = protocolDriver(spec.protocol).run(sim, spec, valueRng);
    }
    res.structureSlots = out.structureSlots;
    res.delivered = out.delivered;
    res.validity = out.validity;
    res.metrics = std::move(out.metrics);

    const MediumStats& ms = sim.mediumStats();
    res.slots = ms.slots;
    res.transmissions = ms.transmissions;
    res.listens = ms.listens;
    res.decodes = ms.decodes;
    res.decodeRate = ms.decodeRate();

    if (sim.dynamic()) {
      // Drift metrics: how much the communication graph decayed under the
      // run's motion/churn (sampled every mobility_sample_every slots via
      // the incremental GridIndex; see mobility/mobility.h).
      sim.finalizeDynamics();
      const TopologyStats& ts = sim.dynamics()->stats();
      res.metrics.set("alive_final", sim.aliveCount());
      res.metrics.set("churn_departures", static_cast<double>(ts.departures));
      res.metrics.set("churn_arrivals", static_cast<double>(ts.arrivals));
      res.metrics.set("mean_displacement", ts.meanDisplacement);
      res.metrics.set("edge_churn_per_slot", ts.edgeChurnPerSlot(ms.slots));
      res.metrics.set("edge_survival", ts.edgeSurvival());
    }
  } catch (const std::exception& e) {
    res.error = e.what();
  } catch (...) {
    res.error = "unknown exception";
  }
  res.wallSec = nowSec() - t0;
  telemetry::traceInstant(seedTm().seedDone, seedArg);
  return res;
}

ScenarioBatchResult runScenarioBatch(const ScenarioSpec& spec, int threads) {
  ScenarioBatchResult batch;
  batch.spec = spec;
  const int seeds = spec.seeds;
  batch.perSeed.resize(static_cast<std::size_t>(seeds));
  const auto runRange = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      batch.perSeed[i] = runScenarioSeed(spec, spec.seed0 + i);
    }
  };
  if (threads > 1 && seeds > 1) {
    ThreadPool pool(threads);
    pool.parallelFor(static_cast<std::size_t>(seeds), runRange);
  } else {
    runRange(0, static_cast<std::size_t>(seeds));
  }
  return batch;
}

}  // namespace mcs
