#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "scenario/spec.h"
#include "util/rng.h"

/// The protocol driver layer: one uniform interface between "what
/// workload runs" (a ProtocolKind on a ScenarioSpec) and "how a seed
/// batch executes" (scenario/runner.h).  Every ProtocolKind — the four
/// aggregation-flavored kinds plus coloring, CSA, ruling set, dominating
/// set, cluster coloring, and the chain baseline — is implemented by
/// exactly one ProtocolDriver wrapping the protocol's library entry
/// point, so benches, tests, and the scenario_runner CLI all share the
/// same execution path.
namespace mcs {

class Simulator;

/// Ordered name -> value map for protocol-level metrics.  Insertion
/// order is preserved (deterministic JSON/CSV column order); `set` on an
/// existing name overwrites in place.
class MetricMap {
 public:
  void set(const std::string& name, double value) {
    for (auto& [k, v] : entries_) {
      if (k == name) {
        v = value;
        return;
      }
    }
    entries_.emplace_back(name, value);
  }

  /// Pointer to the value, or nullptr when absent.
  [[nodiscard]] const double* find(const std::string& name) const noexcept {
    for (const auto& [k, v] : entries_) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  [[nodiscard]] double getOr(const std::string& name, double fallback = 0.0) const noexcept {
    const double* v = find(name);
    return v ? *v : fallback;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  [[nodiscard]] bool operator==(const MetricMap&) const = default;

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

/// Result of a driver's optional ground-truth check (harness-side: it
/// may read true distances/values the protocol never sees).
enum class OutcomeValidity : std::uint8_t {
  NotChecked = 0,  ///< The kind defines no ground-truth check.
  Valid,           ///< The check ran and the guarantee held.
  Invalid,         ///< The check ran and the guarantee was violated.
};

[[nodiscard]] std::string toString(OutcomeValidity v);

/// Everything a protocol run reports back to the seed runner, in
/// protocol-agnostic form: success, structure cost, the kind's named
/// metrics, and the validity verdict.
struct ProtocolOutcome {
  /// Protocol-level success (aggregate delivered / structure built / ...).
  bool delivered = false;
  /// Structure-construction cost in slots (0 when the kind has none).
  std::uint64_t structureSlots = 0;
  MetricMap metrics;
  OutcomeValidity validity = OutcomeValidity::NotChecked;
};

/// One workload, decoupled from batch execution.  Drivers are stateless
/// (all state lives in the Simulator and the outcome), so a single
/// instance is shared across threads of a batch.
class ProtocolDriver {
 public:
  virtual ~ProtocolDriver() = default;

  /// The ProtocolKind this driver implements.
  [[nodiscard]] virtual ProtocolKind kind() const noexcept = 0;

  /// One-line description (CLI listings, README protocol matrix).
  [[nodiscard]] virtual const char* description() const noexcept = 0;

  /// Executes the workload on a freshly seeded Simulator.  `valueRng` is
  /// the per-seed value stream (Rng(seed).fork(kValueStream)); drivers
  /// draw any input data from it so data stays independent of the
  /// simulation randomness.  May throw; the seed runner traps.
  ///
  /// Progress-hook contract (telemetry/probes.h): a workload MAY install
  /// Simulator::setProgressProbe around its run so probes-armed runs get a
  /// per-slot completion fraction in the SlotSeries (e.g. runColoring
  /// reports nodes-colored / nodes-total).  The probe must be write-only
  /// (observe protocol state, never feed back into it) and must be cleared
  /// before the workload returns — it references stack state the Simulator
  /// outlives.  Workloads without a natural fraction simply skip it.
  [[nodiscard]] virtual ProtocolOutcome run(Simulator& sim, const ScenarioSpec& spec,
                                            Rng& valueRng) const = 0;
};

/// The driver implementing `kind`.  Every ProtocolKind has exactly one;
/// the returned reference is to a process-lifetime singleton.
[[nodiscard]] const ProtocolDriver& protocolDriver(ProtocolKind kind);

/// All protocol kinds in enum order (registry iteration, coverage tests).
[[nodiscard]] std::vector<ProtocolKind> allProtocolKinds();

}  // namespace mcs
