#pragma once

#include <string>
#include <vector>

#include "agg/structure.h"
#include "geom/deployment.h"
#include "geom/vec2.h"
#include "mobility/mobility.h"
#include "sinr/params.h"
#include "util/args.h"
#include "util/rng.h"

/// Declarative scenario descriptions: one struct that captures everything
/// needed to reproduce a workload — deployment generator + geometry
/// knobs, SINR parameters, channel impairments, protocol, channel count,
/// and the seed batch — parseable from `--key=value` flags and from a
/// simple `key = value` scenario file.  This is the substrate the
/// multi-seed runner (scenario/runner.h) and the preset registry
/// (scenario/registry.h) build on, replacing per-experiment hand-wiring.
namespace mcs {

/// Which generator from geom/deployment.h realizes the node positions.
enum class DeploymentKind : std::uint8_t {
  UniformSquare = 0,
  UniformDisk,
  PerturbedGrid,
  Clustered,
  Corridor,
  ExponentialChain,
  PoissonDisk,
  Mixture,
};

/// Which workload runs on the deployed network.  Every kind is executed
/// by a ProtocolDriver (scenario/driver.h); the driver defines the named
/// metrics and the ground-truth validity check the kind reports.
enum class ProtocolKind : std::uint8_t {
  /// Build the §5 structure, then aggregate MAX (§6, the paper's headline).
  AggregateMax = 0,
  /// Same, aggregating SUM over the exact backbone tree.
  AggregateSum,
  /// Single-channel ALOHA baseline aggregation on the same structure.
  Aloha,
  /// Build the aggregation structure only (no data phase).
  Structure,
  /// Node coloring on the aggregation structure (§7, Thm 24).
  Coloring,
  /// Dominating set + cluster coloring / TDMA (§5.1, Lemmas 7-8).
  ClusterColoring,
  /// Cluster-size approximation on the colored clustering (§5.2.1).
  Csa,
  /// The (r, 2r)-ruling set over all nodes (§4, Lemma 6).
  RulingSet,
  /// The r_c-dominating set + clustering function (§5.1.1, Lemma 7).
  DominatingSet,
  /// Exponential-chain concurrency sampling (§1 lower bound).
  ChainBaseline,
};

/// Number of ProtocolKind values (driver registry iteration).  Derived
/// from the last enumerator so appending a kind keeps it in sync.
inline constexpr int kNumProtocolKinds =
    static_cast<int>(ProtocolKind::ChainBaseline) + 1;

/// Geometry knobs for every DeploymentKind (unused fields are ignored by
/// the kinds that do not read them; defaults keep each kind sensible).
struct DeploymentSpec {
  DeploymentKind kind = DeploymentKind::UniformSquare;
  int n = 400;
  double side = 1.4;        // square-ish kinds: region side length (units of R_T)
  double radius = 0.8;      // UniformDisk
  double jitter = 0.35;     // PerturbedGrid
  int clusters = 9;         // Clustered
  double spread = 0.07;     // Clustered: Gaussian std around each center
  double length = 3.0;      // Corridor
  double width = 0.3;       // Corridor
  double chainBase = 1.25;  // ExponentialChain
  double chainMaxGap = 0.45;  // ExponentialChain (< R_eps keeps it connected)
  double minDist = 0.04;    // PoissonDisk separation
  double denseFrac = 0.6;   // Mixture: fraction of nodes in the hotspot
  double patchFrac = 0.12;  // Mixture: hotspot side as a fraction of side
  /// Exact-duplicate perturbation radius (0 disables dedupePositions).
  double dedupeEps = 1e-7;
};

/// The full declarative scenario.
struct ScenarioSpec {
  std::string name = "custom";
  DeploymentSpec deployment;
  /// Physical layer, including mediumMode/nearField and the fading model.
  SinrParams sinr;
  /// Relative width of the parameter-uncertainty ranges the *protocols*
  /// see (§2 "Knowledge of Nodes"): 0 = exact knowledge; 0.2 = nodes only
  /// know each of alpha/beta/N to within +-10% (SinrBounds::around).  The
  /// Medium always uses the true `sinr` — this knob degrades knowledge,
  /// not physics.  Key: bounds_width.
  double boundsWidth = 0.0;
  ProtocolKind protocol = ProtocolKind::AggregateMax;
  int channels = 8;
  /// Known cluster-size bound DeltaHat fed to CSA (<= 0: naive n).
  int deltaHat = -1;
  /// CSA variant (Auto = the Lemma-14 choice); consumed by the Csa
  /// protocol and by every structure-building kind.
  CsaVariant csaVariant = CsaVariant::Auto;
  /// RulingSet: independence radius r (<= 0: the network's r_c).
  double rulingRadius = 0.0;
  /// RulingSet: active-round budget (<= 0: 40 + 4 ln n, the E5 default).
  int rulingRounds = 0;
  /// ChainBaseline: random slots sampled per seed.
  int chainTrials = 400;
  /// Topology dynamics (mobility model + churn process); the static
  /// default attaches nothing, keeping every pre-mobility run
  /// bit-identical.  Keys: mobility, mobility_speed, mobility_pause,
  /// mobility_groups, mobility_group_radius, churn_departure_rate,
  /// churn_arrival_rate, mobility_sample_every.
  TopologyParams topology;
  /// Seed batch: seeds seed0, seed0+1, ..., seed0+seeds-1.
  int seeds = 8;
  std::uint64_t seed0 = 1;
};

/// Canonical names (round-trip with the parsers below).
[[nodiscard]] std::string toString(DeploymentKind kind);
[[nodiscard]] std::string toString(ProtocolKind kind);
[[nodiscard]] std::string toString(FadingModel model);
[[nodiscard]] std::string toString(MediumMode mode);
[[nodiscard]] std::string toString(CsaVariant variant);
[[nodiscard]] std::string toString(MobilityKind kind);

/// Applies one `key = value` assignment.  Unknown keys and malformed
/// values return false with a diagnostic in `err`; the spec is only
/// modified on success.
bool applyScenarioKey(ScenarioSpec& spec, const std::string& key, const std::string& value,
                      std::string& err);

/// Loads a scenario file: one `key = value` per line, `#` comments and
/// blank lines ignored.  Stops at the first bad line (diagnostic includes
/// the line number).
bool loadScenarioFile(ScenarioSpec& spec, const std::string& path, std::string& err);

/// Applies every `--key=value` flag as a scenario assignment, skipping
/// the runner-owned flags listed in `reserved`.  Unknown keys fail, so a
/// typo'd override aborts instead of silently running the default.
bool applyScenarioArgs(ScenarioSpec& spec, const Args& args,
                       const std::vector<std::string>& reserved, std::string& err);

/// Cross-field validation; returns an empty string when the spec is
/// runnable, otherwise a diagnostic.
[[nodiscard]] std::string validateScenario(const ScenarioSpec& spec);

/// One-line human-readable summary (logs, report metadata).
[[nodiscard]] std::string describeScenario(const ScenarioSpec& spec);

/// Canonical, complete `key = value` serialization: every field the
/// parser accepts, one line each, in a fixed order, with round-trippable
/// number formatting.  `loadScenarioFile`/`applyScenarioKey` on the
/// output reproduces the spec exactly; the sweep engine uses it as the
/// cell fingerprint that decides whether a cached cell JSON is stale.
[[nodiscard]] std::string scenarioToKeyValues(const ScenarioSpec& spec);

/// Realizes the deployment: runs the selected generator with `rng` and
/// applies dedupePositions when dedupeEps > 0.  This is step one of the
/// per-seed contract documented in scenario/runner.h.
[[nodiscard]] std::vector<Vec2> materializeDeployment(const DeploymentSpec& d, Rng& rng);

}  // namespace mcs
