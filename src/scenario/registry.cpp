#include "scenario/registry.h"

#include <utility>

namespace mcs {

namespace {

struct Entry {
  ScenarioSpec spec;
  std::string description;
};

ScenarioSpec preset(const char* name, DeploymentKind kind, ProtocolKind protocol, int n,
                    int channels) {
  ScenarioSpec s;
  s.name = name;
  s.deployment.kind = kind;
  s.deployment.n = n;
  s.protocol = protocol;
  s.channels = channels;
  return s;
}

/// Builds the registry.  Every DeploymentKind appears at least once and
/// every ProtocolKind has at least one preset (CI smokes them all); the
/// impairment presets exercise the fading layer.  Preset defaults are
/// sized so the whole registry smoke-runs in seconds.
std::vector<Entry> buildRegistry() {
  std::vector<Entry> r;
  const auto add = [&r](ScenarioSpec spec, std::string description) {
    r.push_back({std::move(spec), std::move(description)});
  };

  // -- one preset per deployment generator --------------------------------
  add(preset("uniform_square", DeploymentKind::UniformSquare, ProtocolKind::AggregateMax, 400,
             8),
      "uniform square deployment, MAX aggregation (the paper's headline workload)");

  {
    ScenarioSpec s = preset("uniform_disk", DeploymentKind::UniformDisk,
                            ProtocolKind::AggregateMax, 400, 8);
    s.deployment.radius = 0.8;
    add(s, "uniform disk deployment, MAX aggregation");
  }

  {
    ScenarioSpec s = preset("perturbed_grid", DeploymentKind::PerturbedGrid,
                            ProtocolKind::AggregateMax, 400, 8);
    s.deployment.side = 1.6;
    s.deployment.jitter = 0.35;
    add(s, "jittered grid deployment, MAX aggregation");
  }

  {
    ScenarioSpec s =
        preset("clustered", DeploymentKind::Clustered, ProtocolKind::AggregateMax, 450, 8);
    s.deployment.side = 1.8;
    s.deployment.clusters = 9;
    s.deployment.spread = 0.07;
    add(s, "Gaussian cluster deployment, MAX aggregation");
  }

  {
    ScenarioSpec s =
        preset("corridor", DeploymentKind::Corridor, ProtocolKind::AggregateSum, 320, 4);
    s.deployment.length = 3.0;
    s.deployment.width = 0.3;
    add(s, "long thin corridor, SUM over the exact backbone tree");
  }

  {
    // The §1 lower-bound instance.  Structure-only: the point of the
    // chain is slot-level behavior (see bench/exp_e7), and the blob of
    // near-origin points makes the full data phase pathological.
    ScenarioSpec s = preset("exponential_chain", DeploymentKind::ExponentialChain,
                            ProtocolKind::Structure, 48, 4);
    s.deployment.chainBase = 1.25;
    s.deployment.chainMaxGap = 0.45;  // < R_eps = 0.5: the chain stays connected
    add(s, "exponential chain (§1 instance), structure construction only");
  }

  // -- new workloads -------------------------------------------------------
  {
    // Poisson-disk "sensor mesh": engineered near-uniform coverage.
    ScenarioSpec s =
        preset("sensor_mesh", DeploymentKind::PoissonDisk, ProtocolKind::AggregateMax, 400, 8);
    s.deployment.side = 1.6;
    s.deployment.minDist = 0.04;
    add(s, "Poisson-disk sensor mesh (near-uniform coverage), MAX aggregation");
  }

  {
    // Hotspot: 60% of nodes in a patch 12% of the side, rest sparse.
    ScenarioSpec s =
        preset("hotspot_mixture", DeploymentKind::Mixture, ProtocolKind::AggregateMax, 500, 8);
    s.deployment.side = 2.0;
    s.deployment.denseFrac = 0.6;
    s.deployment.patchFrac = 0.12;
    add(s, "dense hotspot inside a sparse field, MAX aggregation");
  }

  // -- channel impairments -------------------------------------------------
  {
    ScenarioSpec s = preset("rayleigh_mesh", DeploymentKind::UniformSquare,
                            ProtocolKind::AggregateMax, 350, 8);
    s.deployment.side = 1.3;
    s.sinr.fading.model = FadingModel::Rayleigh;
    add(s, "MAX aggregation under Rayleigh block fading");
  }

  {
    ScenarioSpec s =
        preset("shadowed_city", DeploymentKind::Clustered, ProtocolKind::Structure, 400, 8);
    s.deployment.side = 1.6;
    s.deployment.clusters = 8;
    s.deployment.spread = 0.06;
    s.sinr.fading.model = FadingModel::RayleighLognormal;
    s.sinr.fading.shadowSigmaDb = 4.0;
    add(s, "structure construction under composite Rayleigh + 4dB shadowing");
  }

  // -- baselines / medium modes -------------------------------------------
  {
    ScenarioSpec s =
        preset("aloha_patch", DeploymentKind::UniformSquare, ProtocolKind::Aloha, 300, 1);
    s.deployment.side = 0.9;
    add(s, "single-channel ALOHA baseline aggregation on a dense patch");
  }

  {
    ScenarioSpec s = preset("nearfar_dense", DeploymentKind::UniformSquare,
                            ProtocolKind::AggregateMax, 600, 8);
    s.deployment.side = 0.8;
    s.sinr.mediumMode = MediumMode::NearFar;
    add(s, "dense MAX aggregation under the grid-batched NearFar medium");
  }

  {
    // The million-node scale target (ROADMAP item 1) under the
    // hierarchical far-field medium.  Ruling set keeps per-slot traffic
    // sparse (initial tx probability ~ 1/n) and never builds the O(n
    // Delta) communication graph, so the deployment + slot loop is the
    // whole cost; side = 1000 keeps the density near one node per unit
    // square.  CI smokes it with --ruling_rounds=2 --seeds=1; defaults
    // here are for real (minutes-long) runs.  The "huge_" name prefix
    // excludes it from the every-preset smoke loop in ci/verify.sh.
    ScenarioSpec s = preset("huge_hier", DeploymentKind::UniformSquare,
                            ProtocolKind::RulingSet, 1'000'000, 1);
    s.deployment.side = 1000.0;
    s.sinr.mediumMode = MediumMode::Hierarchical;
    s.seeds = 1;
    add(s, "million-node (r, 2r)-ruling set under the hierarchical far-field medium");
  }

  // -- symmetry-breaking / structure workloads (one per new ProtocolKind) --
  {
    ScenarioSpec s =
        preset("coloring_patch", DeploymentKind::UniformSquare, ProtocolKind::Coloring, 350, 8);
    s.deployment.side = 1.0;
    add(s, "node coloring (§7) on a dense patch: O(Delta) colors, proper on G");
  }

  {
    ScenarioSpec s = preset("cluster_palette", DeploymentKind::Clustered,
                            ProtocolKind::ClusterColoring, 350, 8);
    s.deployment.side = 1.6;
    s.deployment.clusters = 8;
    s.deployment.spread = 0.07;
    add(s, "dominating set + cluster coloring/TDMA (§5.1) on a clustered field");
  }

  {
    ScenarioSpec s = preset("csa_patch", DeploymentKind::UniformSquare, ProtocolKind::Csa, 350,
                            8);
    s.deployment.side = 1.0;
    add(s, "cluster-size approximation (§5.2.1) on a dense patch");
  }

  {
    ScenarioSpec s = preset("ruling_field", DeploymentKind::UniformSquare,
                            ProtocolKind::RulingSet, 400, 1);
    s.deployment.side = 1.4;
    add(s, "(r, 2r)-ruling set (§4) over a uniform field, single channel");
  }

  {
    ScenarioSpec s = preset("dominators", DeploymentKind::UniformSquare,
                            ProtocolKind::DominatingSet, 400, 1);
    s.deployment.side = 1.4;
    add(s, "r_c-dominating set + clustering (§5.1.1) over a uniform field");
  }

  {
    ScenarioSpec s = preset("chain_lowerbound", DeploymentKind::ExponentialChain,
                            ProtocolKind::ChainBaseline, 32, 4);
    s.deployment.chainBase = 2.0;  // the literal {2^i} instance of §1
    s.deployment.chainMaxGap = 0.9;
    s.chainTrials = 300;
    add(s, "§1 chain concurrency sampling: <= 1 descending sender per channel per slot");
  }

  // -- mobility & churn (one mobile preset per ProtocolKind) ---------------
  // Speeds are units of R_T per slot: 5e-4 drifts a node by ~half a
  // cluster radius over a typical structure construction — enough to
  // decay the graph measurably while letting every protocol still finish.
  const auto mobile = [](ScenarioSpec s, const char* name, MobilityKind kind, double speed,
                         double dep = 0.0, double arr = 0.0) {
    s.name = name;
    s.topology.mobility.kind = kind;
    s.topology.mobility.speed = speed;
    s.topology.churn.departureRate = dep;
    s.topology.churn.arrivalRate = arr;
    return s;
  };

  add(mobile(preset("mobile_agg_max", DeploymentKind::UniformSquare,
                    ProtocolKind::AggregateMax, 400, 8),
             "mobile_agg_max", MobilityKind::RandomWalk, 5e-4),
      "MAX aggregation while every node random-walks (drift + re-delivery metrics)");

  {
    // SUM's exact backbone tree is the most drift-fragile machinery in
    // the repo: ballistic motion at any practical speed starves the
    // convergecast, so this preset stresses it with diffusive drift plus
    // churn instead (waypoint motion lives on the sturdier kinds).
    ScenarioSpec s = preset("mobile_agg_sum", DeploymentKind::UniformSquare,
                            ProtocolKind::AggregateSum, 350, 8);
    s.deployment.side = 1.2;
    add(mobile(std::move(s), "mobile_agg_sum", MobilityKind::RandomWalk, 5e-5, 5e-5, 2e-2),
        "SUM over the exact backbone tree under slow diffusive drift plus churn");
  }

  {
    ScenarioSpec s =
        preset("mobile_aloha", DeploymentKind::UniformSquare, ProtocolKind::Aloha, 300, 1);
    s.deployment.side = 0.9;
    add(mobile(std::move(s), "mobile_aloha", MobilityKind::RandomWalk, 5e-4),
        "single-channel ALOHA baseline with random-walking nodes");
  }

  {
    ScenarioSpec s = preset("mobile_structure", DeploymentKind::Clustered,
                            ProtocolKind::Structure, 400, 8);
    s.deployment.side = 1.8;
    s.deployment.clusters = 8;
    s.deployment.spread = 0.07;
    s = mobile(std::move(s), "mobile_structure", MobilityKind::GroupReference, 1e-3);
    s.topology.mobility.groups = 8;
    s.topology.mobility.groupRadius = 0.25;
    add(s, "structure construction while clusters drift as mobile groups (RPGM)");
  }

  {
    ScenarioSpec s = preset("mobile_coloring", DeploymentKind::UniformSquare,
                            ProtocolKind::Coloring, 350, 8);
    s.deployment.side = 1.0;
    add(mobile(std::move(s), "mobile_coloring", MobilityKind::RandomWalk, 5e-4),
        "node coloring under random-walk drift: how stale does proper get?");
  }

  {
    ScenarioSpec s = preset("mobile_palette", DeploymentKind::Clustered,
                            ProtocolKind::ClusterColoring, 350, 8);
    s.deployment.side = 1.6;
    s.deployment.clusters = 8;
    s.deployment.spread = 0.07;
    s = mobile(std::move(s), "mobile_palette", MobilityKind::GroupReference, 1e-3);
    s.topology.mobility.groups = 8;
    add(s, "cluster coloring/TDMA while the clusters themselves move (group mobility)");
  }

  {
    ScenarioSpec s =
        preset("mobile_csa", DeploymentKind::UniformSquare, ProtocolKind::Csa, 350, 8);
    s.deployment.side = 1.0;
    add(mobile(std::move(s), "mobile_csa", MobilityKind::RandomWalk, 5e-4, 2e-4, 5e-3),
        "cluster-size approximation under drift plus light churn");
  }

  {
    ScenarioSpec s = preset("mobile_ruling", DeploymentKind::UniformSquare,
                            ProtocolKind::RulingSet, 400, 1);
    s.deployment.side = 1.4;
    s = mobile(std::move(s), "mobile_ruling", MobilityKind::RandomWaypoint, 1e-3);
    s.topology.mobility.pause = 20;
    add(s, "(r, 2r)-ruling set under random-waypoint motion");
  }

  {
    ScenarioSpec s = preset("mobile_dominators", DeploymentKind::UniformSquare,
                            ProtocolKind::DominatingSet, 400, 1);
    s.deployment.side = 1.4;
    add(mobile(std::move(s), "mobile_dominators", MobilityKind::RandomWalk, 1e-3, 2e-4, 5e-3),
        "r_c-dominating set while nodes walk and churn in and out");
  }

  {
    // Dynamic chain runs sample through the scenario Simulator, so churn
    // gates the senders slot by slot.  Motion stays off: the exponential
    // chain's geometry IS the instance.
    ScenarioSpec s = preset("mobile_chain", DeploymentKind::ExponentialChain,
                            ProtocolKind::ChainBaseline, 32, 4);
    s.deployment.chainBase = 2.0;
    s.deployment.chainMaxGap = 0.9;
    s.chainTrials = 300;
    add(mobile(std::move(s), "mobile_chain", MobilityKind::Static, 0.0, 1e-3, 1e-2),
        "§1 chain sampling with churn-only dynamics (alive-mask plumbing smoke)");
  }

  {
    ScenarioSpec s = preset("mobile_nearfar", DeploymentKind::UniformSquare,
                            ProtocolKind::AggregateMax, 600, 8);
    s.deployment.side = 0.8;
    s.sinr.mediumMode = MediumMode::NearFar;
    add(mobile(std::move(s), "mobile_nearfar", MobilityKind::RandomWalk, 5e-4),
        "dense mobile MAX aggregation on the incremental-grid NearFar medium");
  }

  return r;
}

const std::vector<Entry>& registry() {
  static const std::vector<Entry> r = buildRegistry();
  return r;
}

}  // namespace

std::vector<std::string> ScenarioRegistry::names() {
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const Entry& e : registry()) out.push_back(e.spec.name);
  return out;
}

std::vector<ScenarioPresetInfo> ScenarioRegistry::list() {
  std::vector<ScenarioPresetInfo> out;
  out.reserve(registry().size());
  for (const Entry& e : registry()) out.push_back({e.spec.name, e.description});
  return out;
}

bool ScenarioRegistry::find(const std::string& name, ScenarioSpec& out) {
  for (const Entry& e : registry()) {
    if (e.spec.name == name) {
      out = e.spec;
      return true;
    }
  }
  return false;
}

std::string ScenarioRegistry::describe(const std::string& name) {
  for (const Entry& e : registry()) {
    if (e.spec.name == name) return e.description;
  }
  return "";
}

}  // namespace mcs
