#include "scenario/registry.h"

namespace mcs {

namespace {

ScenarioSpec preset(const char* name, DeploymentKind kind, ProtocolKind protocol, int n,
                    int channels) {
  ScenarioSpec s;
  s.name = name;
  s.deployment.kind = kind;
  s.deployment.n = n;
  s.protocol = protocol;
  s.channels = channels;
  return s;
}

/// Builds the registry.  Every DeploymentKind appears at least once; the
/// impairment presets exercise the fading layer; `aloha_patch` keeps the
/// single-channel baseline runnable from the same CLI.
std::vector<ScenarioSpec> buildRegistry() {
  std::vector<ScenarioSpec> r;

  // -- one preset per deployment generator --------------------------------
  r.push_back(preset("uniform_square", DeploymentKind::UniformSquare,
                     ProtocolKind::AggregateMax, 400, 8));

  {
    ScenarioSpec s = preset("uniform_disk", DeploymentKind::UniformDisk,
                            ProtocolKind::AggregateMax, 400, 8);
    s.deployment.radius = 0.8;
    r.push_back(s);
  }

  {
    ScenarioSpec s = preset("perturbed_grid", DeploymentKind::PerturbedGrid,
                            ProtocolKind::AggregateMax, 400, 8);
    s.deployment.side = 1.6;
    s.deployment.jitter = 0.35;
    r.push_back(s);
  }

  {
    ScenarioSpec s =
        preset("clustered", DeploymentKind::Clustered, ProtocolKind::AggregateMax, 450, 8);
    s.deployment.side = 1.8;
    s.deployment.clusters = 9;
    s.deployment.spread = 0.07;
    r.push_back(s);
  }

  {
    ScenarioSpec s =
        preset("corridor", DeploymentKind::Corridor, ProtocolKind::AggregateSum, 320, 4);
    s.deployment.length = 3.0;
    s.deployment.width = 0.3;
    r.push_back(s);
  }

  {
    // The §1 lower-bound instance.  Structure-only: the point of the
    // chain is slot-level behavior (see bench/exp_e7), and the blob of
    // near-origin points makes the full data phase pathological.
    ScenarioSpec s = preset("exponential_chain", DeploymentKind::ExponentialChain,
                            ProtocolKind::Structure, 48, 4);
    s.deployment.chainBase = 1.25;
    s.deployment.chainMaxGap = 0.45;  // < R_eps = 0.5: the chain stays connected
    r.push_back(s);
  }

  // -- new workloads -------------------------------------------------------
  {
    // Poisson-disk "sensor mesh": engineered near-uniform coverage.
    ScenarioSpec s =
        preset("sensor_mesh", DeploymentKind::PoissonDisk, ProtocolKind::AggregateMax, 400, 8);
    s.deployment.side = 1.6;
    s.deployment.minDist = 0.04;
    r.push_back(s);
  }

  {
    // Hotspot: 60% of nodes in a patch 12% of the side, rest sparse.
    ScenarioSpec s =
        preset("hotspot_mixture", DeploymentKind::Mixture, ProtocolKind::AggregateMax, 500, 8);
    s.deployment.side = 2.0;
    s.deployment.denseFrac = 0.6;
    s.deployment.patchFrac = 0.12;
    r.push_back(s);
  }

  // -- channel impairments -------------------------------------------------
  {
    ScenarioSpec s = preset("rayleigh_mesh", DeploymentKind::UniformSquare,
                            ProtocolKind::AggregateMax, 350, 8);
    s.deployment.side = 1.3;
    s.sinr.fading.model = FadingModel::Rayleigh;
    r.push_back(s);
  }

  {
    ScenarioSpec s = preset("shadowed_city", DeploymentKind::Clustered,
                            ProtocolKind::Structure, 400, 8);
    s.deployment.side = 1.6;
    s.deployment.clusters = 8;
    s.deployment.spread = 0.06;
    s.sinr.fading.model = FadingModel::RayleighLognormal;
    s.sinr.fading.shadowSigmaDb = 4.0;
    r.push_back(s);
  }

  // -- baselines / medium modes -------------------------------------------
  {
    ScenarioSpec s =
        preset("aloha_patch", DeploymentKind::UniformSquare, ProtocolKind::Aloha, 300, 1);
    s.deployment.side = 0.9;
    r.push_back(s);
  }

  {
    ScenarioSpec s = preset("nearfar_dense", DeploymentKind::UniformSquare,
                            ProtocolKind::AggregateMax, 600, 8);
    s.deployment.side = 0.8;
    s.sinr.mediumMode = MediumMode::NearFar;
    r.push_back(s);
  }

  return r;
}

const std::vector<ScenarioSpec>& registry() {
  static const std::vector<ScenarioSpec> r = buildRegistry();
  return r;
}

}  // namespace

std::vector<std::string> ScenarioRegistry::names() {
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const ScenarioSpec& s : registry()) out.push_back(s.name);
  return out;
}

bool ScenarioRegistry::find(const std::string& name, ScenarioSpec& out) {
  for (const ScenarioSpec& s : registry()) {
    if (s.name == name) {
      out = s;
      return true;
    }
  }
  return false;
}

}  // namespace mcs
