#pragma once

#include <string>
#include <vector>

#include "scenario/spec.h"

/// Named scenario presets: one for every deployment generator in
/// geom/deployment.h plus impairment/baseline variants.  Presets are
/// starting points — the runner applies file and flag overrides on top,
/// so `--scenario=uniform_square --n=5000 --fading=rayleigh` is a valid
/// one-liner.  Preset defaults are sized so the whole registry smoke-runs
/// in seconds (CI runs every preset on every push).
namespace mcs {

class ScenarioRegistry {
 public:
  /// All registered preset names, in registration order.
  [[nodiscard]] static std::vector<std::string> names();

  /// Looks up `name`; returns false (out untouched) when unknown.
  [[nodiscard]] static bool find(const std::string& name, ScenarioSpec& out);
};

}  // namespace mcs
