#pragma once

#include <string>
#include <vector>

#include "scenario/spec.h"

/// Named scenario presets: one for every deployment generator in
/// geom/deployment.h plus impairment/baseline variants.  Presets are
/// starting points — the runner applies file and flag overrides on top,
/// so `--scenario=uniform_square --n=5000 --fading=rayleigh` is a valid
/// one-liner.  Preset defaults are sized so the whole registry smoke-runs
/// in seconds (CI runs every preset on every push).
namespace mcs {

/// Listing entry: a preset's name and its one-line description (shown by
/// `scenario_runner --list` and the README preset table).
struct ScenarioPresetInfo {
  std::string name;
  std::string description;
};

class ScenarioRegistry {
 public:
  /// All registered preset names, in registration order.
  [[nodiscard]] static std::vector<std::string> names();

  /// All presets with their descriptions, in registration order.
  [[nodiscard]] static std::vector<ScenarioPresetInfo> list();

  /// Looks up `name`; returns false (out untouched) when unknown.
  [[nodiscard]] static bool find(const std::string& name, ScenarioSpec& out);

  /// The preset's one-line description ("" when unknown).
  [[nodiscard]] static std::string describe(const std::string& name);
};

}  // namespace mcs
