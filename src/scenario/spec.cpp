#include "scenario/spec.h"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <sstream>

namespace mcs {

namespace {

struct KindName {
  const char* name;
  std::uint8_t value;
};

constexpr KindName kDeploymentNames[] = {
    {"uniform_square", static_cast<std::uint8_t>(DeploymentKind::UniformSquare)},
    {"uniform_disk", static_cast<std::uint8_t>(DeploymentKind::UniformDisk)},
    {"perturbed_grid", static_cast<std::uint8_t>(DeploymentKind::PerturbedGrid)},
    {"clustered", static_cast<std::uint8_t>(DeploymentKind::Clustered)},
    {"corridor", static_cast<std::uint8_t>(DeploymentKind::Corridor)},
    {"exponential_chain", static_cast<std::uint8_t>(DeploymentKind::ExponentialChain)},
    {"poisson_disk", static_cast<std::uint8_t>(DeploymentKind::PoissonDisk)},
    {"mixture", static_cast<std::uint8_t>(DeploymentKind::Mixture)},
};

constexpr KindName kProtocolNames[] = {
    {"agg_max", static_cast<std::uint8_t>(ProtocolKind::AggregateMax)},
    {"agg_sum", static_cast<std::uint8_t>(ProtocolKind::AggregateSum)},
    {"aloha", static_cast<std::uint8_t>(ProtocolKind::Aloha)},
    {"structure", static_cast<std::uint8_t>(ProtocolKind::Structure)},
    {"coloring", static_cast<std::uint8_t>(ProtocolKind::Coloring)},
    {"cluster_coloring", static_cast<std::uint8_t>(ProtocolKind::ClusterColoring)},
    {"csa", static_cast<std::uint8_t>(ProtocolKind::Csa)},
    {"ruling_set", static_cast<std::uint8_t>(ProtocolKind::RulingSet)},
    {"dominating_set", static_cast<std::uint8_t>(ProtocolKind::DominatingSet)},
    {"chain_baseline", static_cast<std::uint8_t>(ProtocolKind::ChainBaseline)},
};

constexpr KindName kCsaVariantNames[] = {
    {"auto", static_cast<std::uint8_t>(CsaVariant::Auto)},
    {"large", static_cast<std::uint8_t>(CsaVariant::Large)},
    {"small", static_cast<std::uint8_t>(CsaVariant::Small)},
};

constexpr KindName kFadingNames[] = {
    {"none", static_cast<std::uint8_t>(FadingModel::None)},
    {"rayleigh", static_cast<std::uint8_t>(FadingModel::Rayleigh)},
    {"lognormal", static_cast<std::uint8_t>(FadingModel::Lognormal)},
    {"rayleigh_lognormal", static_cast<std::uint8_t>(FadingModel::RayleighLognormal)},
};

constexpr KindName kMediumModeNames[] = {
    {"exact", static_cast<std::uint8_t>(MediumMode::Exact)},
    {"nearfar", static_cast<std::uint8_t>(MediumMode::NearFar)},
    {"hier", static_cast<std::uint8_t>(MediumMode::Hierarchical)},
};

constexpr KindName kMobilityNames[] = {
    {"static", static_cast<std::uint8_t>(MobilityKind::Static)},
    {"random_walk", static_cast<std::uint8_t>(MobilityKind::RandomWalk)},
    {"random_waypoint", static_cast<std::uint8_t>(MobilityKind::RandomWaypoint)},
    {"group", static_cast<std::uint8_t>(MobilityKind::GroupReference)},
};

template <std::size_t N>
std::string nameOf(const KindName (&table)[N], std::uint8_t value) {
  for (const KindName& k : table) {
    if (k.value == value) return k.name;
  }
  return "?";
}

template <std::size_t N>
bool valueOf(const KindName (&table)[N], const std::string& name, std::uint8_t& out,
             std::string& err, const char* what) {
  for (const KindName& k : table) {
    if (name == k.name) {
      out = k.value;
      return true;
    }
  }
  std::string known;
  for (const KindName& k : table) {
    if (!known.empty()) known += "|";
    known += k.name;
  }
  err = std::string("unknown ") + what + " \"" + name + "\" (one of: " + known + ")";
  return false;
}

bool setLong(long& field, const std::string& key, const std::string& value, std::string& err) {
  long v = 0;
  if (!parseLong(value, v)) {
    err = "key \"" + key + "\": malformed integer \"" + value + "\"";
    return false;
  }
  field = v;
  return true;
}

bool setInt(int& field, const std::string& key, const std::string& value, std::string& err) {
  long v = 0;
  if (!setLong(v, key, value, err)) return false;
  field = static_cast<int>(v);
  return true;
}

bool setDouble(double& field, const std::string& key, const std::string& value,
               std::string& err) {
  double v = 0.0;
  if (!parseDouble(value, v)) {
    err = "key \"" + key + "\": malformed number \"" + value + "\"";
    return false;
  }
  field = v;
  return true;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::string toString(DeploymentKind kind) {
  return nameOf(kDeploymentNames, static_cast<std::uint8_t>(kind));
}
std::string toString(ProtocolKind kind) {
  return nameOf(kProtocolNames, static_cast<std::uint8_t>(kind));
}
std::string toString(FadingModel model) {
  return nameOf(kFadingNames, static_cast<std::uint8_t>(model));
}
std::string toString(MediumMode mode) {
  return nameOf(kMediumModeNames, static_cast<std::uint8_t>(mode));
}
std::string toString(CsaVariant variant) {
  return nameOf(kCsaVariantNames, static_cast<std::uint8_t>(variant));
}
std::string toString(MobilityKind kind) {
  return nameOf(kMobilityNames, static_cast<std::uint8_t>(kind));
}

bool applyScenarioKey(ScenarioSpec& spec, const std::string& key, const std::string& value,
                      std::string& err) {
  DeploymentSpec& d = spec.deployment;
  SinrParams& p = spec.sinr;
  std::uint8_t enumValue = 0;

  if (key == "name") {
    spec.name = value;
    return true;
  }
  if (key == "deployment") {
    if (!valueOf(kDeploymentNames, value, enumValue, err, "deployment")) return false;
    d.kind = static_cast<DeploymentKind>(enumValue);
    return true;
  }
  if (key == "protocol") {
    if (!valueOf(kProtocolNames, value, enumValue, err, "protocol")) return false;
    spec.protocol = static_cast<ProtocolKind>(enumValue);
    return true;
  }
  if (key == "fading") {
    if (!valueOf(kFadingNames, value, enumValue, err, "fading model")) return false;
    p.fading.model = static_cast<FadingModel>(enumValue);
    return true;
  }
  if (key == "medium_mode") {
    if (!valueOf(kMediumModeNames, value, enumValue, err, "medium mode")) return false;
    p.mediumMode = static_cast<MediumMode>(enumValue);
    return true;
  }
  if (key == "csa_variant") {
    if (!valueOf(kCsaVariantNames, value, enumValue, err, "CSA variant")) return false;
    spec.csaVariant = static_cast<CsaVariant>(enumValue);
    return true;
  }
  if (key == "mobility") {
    if (!valueOf(kMobilityNames, value, enumValue, err, "mobility model")) return false;
    spec.topology.mobility.kind = static_cast<MobilityKind>(enumValue);
    return true;
  }
  if (key == "range") {
    // Convenience: rescale noise so transmissionRange() == value.
    double rt = 0.0;
    if (!setDouble(rt, key, value, err)) return false;
    if (rt <= 0.0) {
      err = "key \"range\": must be > 0";
      return false;
    }
    p = p.withRange(rt);
    return true;
  }
  if (key == "seed0") {
    long v = 0;
    if (!setLong(v, key, value, err)) return false;
    spec.seed0 = static_cast<std::uint64_t>(v);
    return true;
  }

  // Plain numeric keys.
  if (key == "n") return setInt(d.n, key, value, err);
  if (key == "side") return setDouble(d.side, key, value, err);
  if (key == "radius") return setDouble(d.radius, key, value, err);
  if (key == "jitter") return setDouble(d.jitter, key, value, err);
  if (key == "clusters") return setInt(d.clusters, key, value, err);
  if (key == "spread") return setDouble(d.spread, key, value, err);
  if (key == "length") return setDouble(d.length, key, value, err);
  if (key == "width") return setDouble(d.width, key, value, err);
  if (key == "chain_base") return setDouble(d.chainBase, key, value, err);
  if (key == "chain_max_gap") return setDouble(d.chainMaxGap, key, value, err);
  if (key == "min_dist") return setDouble(d.minDist, key, value, err);
  if (key == "dense_frac") return setDouble(d.denseFrac, key, value, err);
  if (key == "patch_frac") return setDouble(d.patchFrac, key, value, err);
  if (key == "dedupe_eps") return setDouble(d.dedupeEps, key, value, err);
  if (key == "alpha") return setDouble(p.alpha, key, value, err);
  if (key == "beta") return setDouble(p.beta, key, value, err);
  if (key == "noise") return setDouble(p.noise, key, value, err);
  if (key == "power") return setDouble(p.power, key, value, err);
  if (key == "near_field") return setDouble(p.nearField, key, value, err);
  if (key == "hier_theta") return setDouble(p.hierTheta, key, value, err);
  if (key == "bounds_width") return setDouble(spec.boundsWidth, key, value, err);
  if (key == "shadow_sigma_db") return setDouble(p.fading.shadowSigmaDb, key, value, err);
  if (key == "channels") return setInt(spec.channels, key, value, err);
  if (key == "delta_hat") return setInt(spec.deltaHat, key, value, err);
  if (key == "ruling_radius") return setDouble(spec.rulingRadius, key, value, err);
  if (key == "ruling_rounds") return setInt(spec.rulingRounds, key, value, err);
  if (key == "chain_trials") return setInt(spec.chainTrials, key, value, err);
  if (key == "mobility_speed") return setDouble(spec.topology.mobility.speed, key, value, err);
  if (key == "mobility_pause") return setInt(spec.topology.mobility.pause, key, value, err);
  if (key == "mobility_groups") return setInt(spec.topology.mobility.groups, key, value, err);
  if (key == "mobility_group_radius") {
    return setDouble(spec.topology.mobility.groupRadius, key, value, err);
  }
  if (key == "churn_departure_rate") {
    return setDouble(spec.topology.churn.departureRate, key, value, err);
  }
  if (key == "churn_arrival_rate") {
    return setDouble(spec.topology.churn.arrivalRate, key, value, err);
  }
  if (key == "mobility_sample_every") return setInt(spec.topology.sampleEvery, key, value, err);
  if (key == "seeds") return setInt(spec.seeds, key, value, err);

  err = "unknown scenario key \"" + key + "\"";
  return false;
}

bool loadScenarioFile(ScenarioSpec& spec, const std::string& path, std::string& err) {
  std::ifstream f(path);
  if (!f) {
    err = "cannot open scenario file \"" + path + "\"";
    return false;
  }
  std::string line;
  int lineNo = 0;
  while (std::getline(f, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      err = path + ":" + std::to_string(lineNo) + ": expected `key = value`, got \"" + line +
            "\"";
      return false;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      err = path + ":" + std::to_string(lineNo) + ": empty key or value";
      return false;
    }
    std::string keyErr;
    if (!applyScenarioKey(spec, key, value, keyErr)) {
      err = path + ":" + std::to_string(lineNo) + ": " + keyErr;
      return false;
    }
  }
  return true;
}

bool applyScenarioArgs(ScenarioSpec& spec, const Args& args,
                       const std::vector<std::string>& reserved, std::string& err) {
  // Command-line order, not map order: `--alpha=2.5 --range=0.8` must
  // rescale the noise with the overridden alpha.
  for (const auto& [key, value] : args.namedOrdered()) {
    bool skip = false;
    for (const std::string& r : reserved) {
      if (key == r) {
        skip = true;
        break;
      }
    }
    if (skip) continue;
    if (!applyScenarioKey(spec, key, value, err)) return false;
  }
  return true;
}

std::string validateScenario(const ScenarioSpec& spec) {
  const DeploymentSpec& d = spec.deployment;
  if (d.n <= 0) return "deployment n must be > 0";
  if (spec.channels < 1) return "channels must be >= 1";
  if (spec.seeds < 1) return "seeds must be >= 1";
  if (!spec.sinr.valid()) {
    return "invalid SINR parameters (need alpha > 2, beta >= 1, noise > 0, power > 0, "
           "near_field >= 1, 0 < hier_theta <= 1, shadow_sigma_db >= 0)";
  }
  switch (d.kind) {
    case DeploymentKind::UniformSquare:
    case DeploymentKind::PerturbedGrid:
      if (d.side <= 0.0) return "side must be > 0";
      break;
    case DeploymentKind::UniformDisk:
      if (d.radius <= 0.0) return "radius must be > 0";
      break;
    case DeploymentKind::Clustered:
      if (d.side <= 0.0) return "side must be > 0";
      if (d.clusters < 1) return "clusters must be >= 1";
      if (d.spread <= 0.0) return "spread must be > 0";
      break;
    case DeploymentKind::Corridor:
      if (d.length <= 0.0 || d.width <= 0.0) return "corridor length/width must be > 0";
      break;
    case DeploymentKind::ExponentialChain:
      if (d.chainBase <= 1.0) return "chain_base must be > 1";
      if (d.chainMaxGap <= 0.0) return "chain_max_gap must be > 0";
      break;
    case DeploymentKind::PoissonDisk:
      if (d.side <= 0.0) return "side must be > 0";
      if (d.minDist <= 0.0) return "min_dist must be > 0";
      break;
    case DeploymentKind::Mixture:
      if (d.side <= 0.0) return "side must be > 0";
      if (d.denseFrac < 0.0 || d.denseFrac > 1.0) return "dense_frac must be in [0, 1]";
      if (d.patchFrac <= 0.0 || d.patchFrac > 1.0) return "patch_frac must be in (0, 1]";
      break;
  }
  if (spec.protocol == ProtocolKind::Aloha && spec.channels != 1) {
    return "protocol aloha is the single-channel baseline (set channels = 1)";
  }
  if (spec.protocol == ProtocolKind::ChainBaseline) {
    if (d.kind != DeploymentKind::ExponentialChain) {
      return "protocol chain_baseline samples the §1 lower-bound instance "
             "(set deployment = exponential_chain)";
    }
    if (spec.chainTrials < 1) return "chain_trials must be >= 1";
  }
  if (spec.boundsWidth < 0.0) return "bounds_width must be >= 0 (0 = exact knowledge)";
  if (spec.rulingRounds < 0) return "ruling_rounds must be >= 0 (0 = auto)";
  if (spec.rulingRadius < 0.0) return "ruling_radius must be >= 0 (0 = auto r_c)";
  const TopologyParams& t = spec.topology;
  if (t.mobility.speed < 0.0) return "mobility_speed must be >= 0";
  if (t.mobility.kind != MobilityKind::Static && t.mobility.speed <= 0.0) {
    return "mobility model \"" + toString(t.mobility.kind) +
           "\" needs mobility_speed > 0 (or set mobility = static)";
  }
  if (t.mobility.pause < 0) return "mobility_pause must be >= 0";
  if (t.mobility.groups < 1) return "mobility_groups must be >= 1";
  if (t.mobility.groupRadius <= 0.0) return "mobility_group_radius must be > 0";
  if (t.churn.departureRate < 0.0 || t.churn.departureRate > 1.0) {
    return "churn_departure_rate is a per-slot probability (0..1)";
  }
  if (t.churn.arrivalRate < 0.0 || t.churn.arrivalRate > 1.0) {
    return "churn_arrival_rate is a per-slot probability (0..1)";
  }
  if (t.sampleEvery < 1) return "mobility_sample_every must be >= 1";
  return "";
}

std::string describeScenario(const ScenarioSpec& spec) {
  std::ostringstream os;
  const DeploymentSpec& d = spec.deployment;
  os << spec.name << ": " << toString(d.kind) << " n=" << d.n << " F=" << spec.channels
     << " protocol=" << toString(spec.protocol) << " medium=" << toString(spec.sinr.mediumMode)
     << " fading=" << toString(spec.sinr.fading.model);
  if (spec.sinr.fading.model == FadingModel::Lognormal ||
      spec.sinr.fading.model == FadingModel::RayleighLognormal) {
    os << "(" << spec.sinr.fading.shadowSigmaDb << "dB)";
  }
  if (spec.boundsWidth > 0.0) os << " bounds_width=" << spec.boundsWidth;
  if (spec.topology.mobility.moving()) {
    os << " mobility=" << toString(spec.topology.mobility.kind) << "@"
       << spec.topology.mobility.speed;
  }
  if (spec.topology.churn.enabled()) {
    os << " churn=" << spec.topology.churn.departureRate << "/"
       << spec.topology.churn.arrivalRate;
  }
  os << " seeds=" << spec.seeds << "@" << spec.seed0;
  return os.str();
}

std::string scenarioToKeyValues(const ScenarioSpec& spec) {
  const DeploymentSpec& d = spec.deployment;
  const SinrParams& p = spec.sinr;
  std::string out;
  const auto add = [&out](const char* key, const std::string& value) {
    out += key;
    out += " = ";
    out += value;
    out += "\n";
  };
  const auto num = [](double v) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
  };
  add("name", spec.name);
  add("deployment", toString(d.kind));
  add("n", std::to_string(d.n));
  add("side", num(d.side));
  add("radius", num(d.radius));
  add("jitter", num(d.jitter));
  add("clusters", std::to_string(d.clusters));
  add("spread", num(d.spread));
  add("length", num(d.length));
  add("width", num(d.width));
  add("chain_base", num(d.chainBase));
  add("chain_max_gap", num(d.chainMaxGap));
  add("min_dist", num(d.minDist));
  add("dense_frac", num(d.denseFrac));
  add("patch_frac", num(d.patchFrac));
  add("dedupe_eps", num(d.dedupeEps));
  add("alpha", num(p.alpha));
  add("beta", num(p.beta));
  add("noise", num(p.noise));
  add("power", num(p.power));
  add("medium_mode", toString(p.mediumMode));
  add("near_field", num(p.nearField));
  add("hier_theta", num(p.hierTheta));
  add("fading", toString(p.fading.model));
  add("shadow_sigma_db", num(p.fading.shadowSigmaDb));
  add("bounds_width", num(spec.boundsWidth));
  add("protocol", toString(spec.protocol));
  add("channels", std::to_string(spec.channels));
  add("delta_hat", std::to_string(spec.deltaHat));
  add("csa_variant", toString(spec.csaVariant));
  add("ruling_radius", num(spec.rulingRadius));
  add("ruling_rounds", std::to_string(spec.rulingRounds));
  add("chain_trials", std::to_string(spec.chainTrials));
  add("mobility", toString(spec.topology.mobility.kind));
  add("mobility_speed", num(spec.topology.mobility.speed));
  add("mobility_pause", std::to_string(spec.topology.mobility.pause));
  add("mobility_groups", std::to_string(spec.topology.mobility.groups));
  add("mobility_group_radius", num(spec.topology.mobility.groupRadius));
  add("churn_departure_rate", num(spec.topology.churn.departureRate));
  add("churn_arrival_rate", num(spec.topology.churn.arrivalRate));
  add("mobility_sample_every", std::to_string(spec.topology.sampleEvery));
  add("seeds", std::to_string(spec.seeds));
  add("seed0", std::to_string(spec.seed0));
  return out;
}

std::vector<Vec2> materializeDeployment(const DeploymentSpec& d, Rng& rng) {
  std::vector<Vec2> pts;
  switch (d.kind) {
    case DeploymentKind::UniformSquare:
      pts = deployUniformSquare(d.n, d.side, rng);
      break;
    case DeploymentKind::UniformDisk:
      pts = deployUniformDisk(d.n, d.radius, rng);
      break;
    case DeploymentKind::PerturbedGrid:
      pts = deployPerturbedGrid(d.n, d.side, d.jitter, rng);
      break;
    case DeploymentKind::Clustered:
      pts = deployClustered(d.n, d.clusters, d.side, d.spread, rng);
      break;
    case DeploymentKind::Corridor:
      pts = deployCorridor(d.n, d.length, d.width, rng);
      break;
    case DeploymentKind::ExponentialChain:
      pts = deployExponentialChain(d.n, d.chainBase, d.chainMaxGap);
      break;
    case DeploymentKind::PoissonDisk:
      pts = deployPoissonDisk(d.n, d.side, d.minDist, rng);
      break;
    case DeploymentKind::Mixture:
      pts = deployDenseSparseMixture(d.n, d.side, d.denseFrac, d.patchFrac, rng);
      break;
  }
  if (d.dedupeEps > 0.0) pts = dedupePositions(std::move(pts), d.dedupeEps, rng);
  return pts;
}

}  // namespace mcs
