#include "scenario/driver.h"

#include <algorithm>
#include <utility>

#include "agg/aggregate.h"
#include "baseline/aloha_agg.h"
#include "baseline/chain.h"
#include "coloring/coloring.h"
#include "proto/cluster_coloring.h"
#include "proto/csa.h"
#include "proto/dominating_set.h"
#include "proto/ruling_set.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace mcs {

std::string toString(OutcomeValidity v) {
  switch (v) {
    case OutcomeValidity::NotChecked: return "unchecked";
    case OutcomeValidity::Valid: return "valid";
    case OutcomeValidity::Invalid: return "INVALID";
  }
  return "?";
}

namespace {

OutcomeValidity verdict(bool ok) {
  return ok ? OutcomeValidity::Valid : OutcomeValidity::Invalid;
}

double u64(std::uint64_t x) { return static_cast<double>(x); }

std::vector<double> drawValues(Rng& valueRng, int n) {
  std::vector<double> values(static_cast<std::size_t>(n));
  for (double& x : values) x = valueRng.uniform();
  return values;
}

StructureOptions structureOptions(const ScenarioSpec& spec) {
  StructureOptions opts;
  opts.deltaHat = spec.deltaHat;
  opts.csa = spec.csaVariant;
  return opts;
}

/// Every node bound to a dominator within r_c — the Lemma-7 guarantee
/// the Theorem-24 geometry (2 r_c + R_eps <= R_{eps/2}) rests on.  A
/// tiny slack absorbs the boundary case of RSSI-ranged bindings.
bool clusteringBindsWithinRc(const Network& net, const Clustering& cl) {
  const double limit = net.rc() * (1.0 + 1e-9);
  for (NodeId v = 0; v < net.size(); ++v) {
    const NodeId d = cl.dominatorOf[static_cast<std::size_t>(v)];
    if (d == kNoNode) return false;
    if (d != v && net.distance(v, d) > limit) return false;
  }
  return true;
}

/// Dominator pairs within R_{eps/2} sharing a TDMA color (Lemma 8 wants 0).
int clusterColorSeparationViolations(const Network& net, const Clustering& cl) {
  int violations = 0;
  for (std::size_t i = 0; i < cl.dominators.size(); ++i) {
    for (std::size_t j = i + 1; j < cl.dominators.size(); ++j) {
      const NodeId a = cl.dominators[i];
      const NodeId b = cl.dominators[j];
      if (net.distance(a, b) <= net.rEpsHalf() &&
          cl.colorOfCluster[static_cast<std::size_t>(a)] ==
              cl.colorOfCluster[static_cast<std::size_t>(b)]) {
        ++violations;
      }
    }
  }
  return violations;
}

// ------------------------------------------------------------ aggregation

/// Shared body of the four PR-2 kinds.  The call sequence (draw values,
/// build structure, aggregate) is bit-identical to the pre-driver
/// runScenarioSeed, which tests/test_scenario.cpp locks in.
ProtocolOutcome runAggregationWorkload(Simulator& sim, const ScenarioSpec& spec, Rng& valueRng,
                                       AggKind kind, bool aloha) {
  const int n = sim.network().size();
  const auto values = drawValues(valueRng, n);
  const AggregationStructure s = buildStructure(sim, structureOptions(spec));
  const AggregateRun run = aloha ? runAlohaAggregation(sim, s, values, kind)
                                 : runAggregation(sim, s, values, kind);
  ProtocolOutcome out;
  out.structureSlots = s.costs.structureTotal();
  out.delivered = run.delivered;
  const double got = run.valueAtNode.empty() ? 0.0 : run.valueAtNode[0];
  const double truth = aggregateGroundTruth(values, kind);
  out.metrics.set("agg_value", got);
  out.metrics.set("truth_value", truth);
  out.metrics.set("uplink_slots", u64(run.costs.uplink));
  out.metrics.set("agg_slots", u64(run.costs.aggregationTotal()));
  out.validity = verdict(run.delivered && aggregateMatches(got, truth, kind));
  if (sim.dynamic()) {
    // Re-delivery under motion: a second data phase over the now-stale
    // structure, after the network kept drifting through the first one.
    // How much of the aggregation machinery survives the decay is the
    // drift stress the static metrics cannot show.
    const AggregateRun re = aloha ? runAlohaAggregation(sim, s, values, kind)
                                  : runAggregation(sim, s, values, kind);
    out.metrics.set("redelivered", re.delivered ? 1.0 : 0.0);
    out.metrics.set("redelivery_slots", u64(re.costs.aggregationTotal()));
  }
  return out;
}

struct AggregateMaxDriver final : ProtocolDriver {
  ProtocolKind kind() const noexcept override { return ProtocolKind::AggregateMax; }
  const char* description() const noexcept override {
    return "build the §5 structure, aggregate MAX (§6, the headline result)";
  }
  ProtocolOutcome run(Simulator& sim, const ScenarioSpec& spec, Rng& valueRng) const override {
    return runAggregationWorkload(sim, spec, valueRng, AggKind::Max, /*aloha=*/false);
  }
};

struct AggregateSumDriver final : ProtocolDriver {
  ProtocolKind kind() const noexcept override { return ProtocolKind::AggregateSum; }
  const char* description() const noexcept override {
    return "build the §5 structure, aggregate SUM over the exact backbone tree (§6)";
  }
  ProtocolOutcome run(Simulator& sim, const ScenarioSpec& spec, Rng& valueRng) const override {
    return runAggregationWorkload(sim, spec, valueRng, AggKind::Sum, /*aloha=*/false);
  }
};

struct AlohaDriver final : ProtocolDriver {
  ProtocolKind kind() const noexcept override { return ProtocolKind::Aloha; }
  const char* description() const noexcept override {
    return "single-channel ALOHA baseline aggregation (MAX) on the same structure";
  }
  ProtocolOutcome run(Simulator& sim, const ScenarioSpec& spec, Rng& valueRng) const override {
    return runAggregationWorkload(sim, spec, valueRng, AggKind::Max, /*aloha=*/true);
  }
};

struct StructureDriver final : ProtocolDriver {
  ProtocolKind kind() const noexcept override { return ProtocolKind::Structure; }
  const char* description() const noexcept override {
    return "build the §5 aggregation structure only (no data phase)";
  }
  ProtocolOutcome run(Simulator& sim, const ScenarioSpec& spec, Rng&) const override {
    const AggregationStructure s = buildStructure(sim, structureOptions(spec));
    const Clustering& cl = s.clustering;
    ProtocolOutcome out;
    out.structureSlots = s.costs.structureTotal();
    out.delivered = !cl.dominators.empty();
    out.metrics.set("clusters", static_cast<double>(cl.dominators.size()));
    out.metrics.set("tdma_colors", cl.numColors);
    out.metrics.set("max_cluster", largestClusterSize(cl));
    out.metrics.set("ds_slots", u64(s.costs.dominatingSet));
    out.metrics.set("cluster_coloring_slots", u64(s.costs.clusterColoring));
    out.metrics.set("csa_slots", u64(s.costs.csa));
    out.metrics.set("reporter_slots", u64(s.costs.reporters));
    out.validity = verdict(out.delivered && cl.numColors > 0 &&
                           clusteringBindsWithinRc(sim.network(), cl));
    return out;
  }
};

// --------------------------------------------------------------- coloring

struct ColoringDriver final : ProtocolDriver {
  ProtocolKind kind() const noexcept override { return ProtocolKind::Coloring; }
  const char* description() const noexcept override {
    return "node coloring on the aggregation structure (§7, Thm 24): O(Delta) colors";
  }
  ProtocolOutcome run(Simulator& sim, const ScenarioSpec& spec, Rng&) const override {
    const Network& net = sim.network();
    const AggregationStructure s = buildStructure(sim, structureOptions(spec));
    const ColoringResult col = runColoring(sim, s);
    const int violations = countColoringViolations(net, col.colorOf);
    ProtocolOutcome out;
    out.structureSlots = s.costs.structureTotal();
    out.delivered = col.complete;
    out.metrics.set("colors_used", col.colorsUsed);
    out.metrics.set("color_classes", countDistinctColors(col.colorOf));
    out.metrics.set("coloring_violations", violations);
    out.metrics.set("coloring_uplink_slots", u64(col.costs.uplink));
    out.metrics.set("coloring_tree_slots", u64(col.costs.tree));
    out.metrics.set("coloring_assign_slots", u64(col.costs.broadcast));
    out.metrics.set("delta", net.maxDegree());
    out.validity = verdict(col.complete && violations == 0);
    return out;
  }
};

struct ClusterColoringDriver final : ProtocolDriver {
  ProtocolKind kind() const noexcept override { return ProtocolKind::ClusterColoring; }
  const char* description() const noexcept override {
    return "dominating set + cluster coloring/TDMA (§5.1): R_{eps/2}-separated palettes";
  }
  ProtocolOutcome run(Simulator& sim, const ScenarioSpec&, Rng&) const override {
    const Network& net = sim.network();
    DominatingSetResult ds = buildDominatingSet(sim);
    Clustering cl = std::move(ds.clustering);
    const ClusterColoringResult cc = colorClusters(sim, cl);
    const int violations = clusterColorSeparationViolations(net, cl);
    ProtocolOutcome out;
    out.structureSlots = ds.slotsUsed + cc.slotsUsed;
    out.delivered = cl.numColors > 0;
    out.metrics.set("clusters", static_cast<double>(cl.dominators.size()));
    out.metrics.set("tdma_colors", cl.numColors);
    out.metrics.set("coloring_phases", cc.phases);
    out.metrics.set("separation_violations", violations);
    out.metrics.set("ds_slots", u64(ds.slotsUsed));
    out.metrics.set("cluster_coloring_slots", u64(cc.slotsUsed));
    out.validity = verdict(out.delivered && violations == 0);
    return out;
  }
};

// -------------------------------------------------------------------- CSA

struct CsaDriver final : ProtocolDriver {
  /// The paper guarantees a constant-factor estimate; audit against a
  /// generous multiple so only gross failures flag as invalid.
  static constexpr double kWorstRatioBound = 16.0;

  ProtocolKind kind() const noexcept override { return ProtocolKind::Csa; }
  const char* description() const noexcept override {
    return "cluster-size approximation on the colored clustering (§5.2.1, Lemmas 12-14)";
  }
  ProtocolOutcome run(Simulator& sim, const ScenarioSpec& spec, Rng&) const override {
    DominatingSetResult ds = buildDominatingSet(sim);
    Clustering cl = std::move(ds.clustering);
    const ClusterColoringResult cc = colorClusters(sim, cl);
    CsaResult csa;
    switch (spec.csaVariant) {
      case CsaVariant::Auto: csa = runCsa(sim, cl, spec.deltaHat); break;
      case CsaVariant::Large: csa = runCsaLarge(sim, cl, spec.deltaHat); break;
      case CsaVariant::Small: csa = runCsaSmall(sim, cl, spec.deltaHat); break;
    }
    const double ratio = csaWorstRatio(cl, csa.estimateOfNode);
    ProtocolOutcome out;
    out.structureSlots = ds.slotsUsed + cc.slotsUsed;
    out.delivered = !csa.estimateOfNode.empty();
    out.metrics.set("csa_slots", u64(csa.slotsUsed));
    out.metrics.set("csa_phases_max", csa.phasesMax);
    out.metrics.set("csa_all_terminated", csa.allTerminated ? 1.0 : 0.0);
    out.metrics.set("csa_worst_ratio", ratio);
    out.metrics.set("clusters", static_cast<double>(cl.dominators.size()));
    out.metrics.set("max_cluster", largestClusterSize(cl));
    out.validity = verdict(out.delivered && ratio <= kWorstRatioBound);
    return out;
  }
};

// ----------------------------------------------------- symmetry breaking

struct RulingSetDriver final : ProtocolDriver {
  ProtocolKind kind() const noexcept override { return ProtocolKind::RulingSet; }
  const char* description() const noexcept override {
    return "the (r, 2r)-ruling set over all nodes (§4, Lemma 6): O(log n) rounds";
  }
  ProtocolOutcome run(Simulator& sim, const ScenarioSpec& spec, Rng&) const override {
    const Network& net = sim.network();
    const Tuning& tun = net.tuning();
    const int n = net.size();

    RulingSetConfig cfg;
    cfg.radius = spec.rulingRadius > 0.0 ? spec.rulingRadius : net.rc();
    cfg.capProb = 1.0 / (2.0 * tun.muDensity);
    cfg.initialProb = std::min(cfg.capProb, 0.5 / static_cast<double>(n < 1 ? 1 : n));
    cfg.epochRounds = tun.domEpochRounds;
    cfg.cycleProb = true;
    cfg.totalRounds = spec.rulingRounds > 0 ? spec.rulingRounds : 40 + tun.lnRounds(4.0, n);

    const std::vector<char> everyone(static_cast<std::size_t>(n), 1);
    const RulingSetResult rs = runRulingSet(sim, everyone, cfg);
    const RulingSetAudit audit = auditRulingSet(net, everyone, rs, cfg.radius);

    ProtocolOutcome out;
    out.structureSlots = rs.slotsUsed;
    out.delivered = audit.members > 0;
    out.metrics.set("ruling_set_size", audit.members);
    out.metrics.set("ruling_rounds", rs.roundsRun);
    out.metrics.set("independence_violations", audit.independenceViolations);
    out.metrics.set("unbound", audit.unbound);
    out.metrics.set("max_density", audit.maxDensity);
    out.metrics.set("ruling_radius", cfg.radius);
    // Validity gates on the load-bearing guarantees (2r-domination and
    // constant density via the packing bound).  Strict r-independence is
    // reported but not gating: the practical tuning (self-electing
    // survivors, cycling probabilities) trades a small violation rate
    // for O(log n) rounds — see RulingSetConfig.
    out.validity = verdict(audit.members > 0 && audit.unbound == 0 &&
                           audit.maxDensity <= packingBound(cfg.radius, cfg.radius));
    return out;
  }
};

struct DominatingSetDriver final : ProtocolDriver {
  ProtocolKind kind() const noexcept override { return ProtocolKind::DominatingSet; }
  const char* description() const noexcept override {
    return "the r_c-dominating set + clustering function (§5.1.1, Lemma 7)";
  }
  ProtocolOutcome run(Simulator& sim, const ScenarioSpec&, Rng&) const override {
    const Network& net = sim.network();
    const DominatingSetResult ds = buildDominatingSet(sim);
    const Clustering& cl = ds.clustering;
    ProtocolOutcome out;
    out.structureSlots = ds.slotsUsed;
    out.delivered = !cl.dominators.empty();
    out.metrics.set("clusters", static_cast<double>(cl.dominators.size()));
    out.metrics.set("ds_rounds", ds.roundsRun);
    out.metrics.set("max_cluster", largestClusterSize(cl));
    out.validity = verdict(out.delivered && clusteringBindsWithinRc(net, cl));
    return out;
  }
};

// ---------------------------------------------------------- chain baseline

struct ChainBaselineDriver final : ProtocolDriver {
  ProtocolKind kind() const noexcept override { return ProtocolKind::ChainBaseline; }
  const char* description() const noexcept override {
    return "exponential-chain concurrency sampling (§1): <= 1 descending sender/channel/slot";
  }
  ProtocolOutcome run(Simulator& sim, const ScenarioSpec& spec, Rng& valueRng) const override {
    const Network& net = sim.network();
    // The sampler's seed comes from the value stream so the draw is
    // per-seed deterministic.
    const std::uint64_t chainSeed = valueRng();
    // Static runs sample on a private Simulator (bit-identical to the
    // pre-mobility driver); dynamic runs sample through the scenario's
    // own Simulator, so churn gates the senders and the runner's drift
    // metrics cover the sampled slots.
    const ChainSlotStats st =
        sim.dynamic() ? chainConcurrency(sim, spec.chainTrials)
                      : chainConcurrency(net, sim.numChannels(), spec.chainTrials, chainSeed);
    ProtocolOutcome out;
    out.delivered = st.trials > 0;
    out.metrics.set("chain_trials", st.trials);
    out.metrics.set("max_descending", st.maxDescendingSuccesses);
    out.metrics.set("mean_descending", st.meanDescendingSuccesses);
    out.metrics.set("max_total", st.maxConcurrentSuccesses);
    out.metrics.set("mean_total", st.meanSuccesses);
    out.metrics.set("concurrency_bound",
                    chainConcurrencyBound(net.sinr().alpha, net.sinr().beta));
    // §1: at most ONE distinct descending sender per channel per slot.
    out.validity = verdict(st.trials > 0 && st.maxDescendingSuccesses <= sim.numChannels());
    return out;
  }
};

}  // namespace

const ProtocolDriver& protocolDriver(ProtocolKind kind) {
  static const AggregateMaxDriver aggMax;
  static const AggregateSumDriver aggSum;
  static const AlohaDriver aloha;
  static const StructureDriver structure;
  static const ColoringDriver coloring;
  static const ClusterColoringDriver clusterColoring;
  static const CsaDriver csa;
  static const RulingSetDriver rulingSet;
  static const DominatingSetDriver dominatingSet;
  static const ChainBaselineDriver chainBaseline;
  switch (kind) {
    case ProtocolKind::AggregateMax: return aggMax;
    case ProtocolKind::AggregateSum: return aggSum;
    case ProtocolKind::Aloha: return aloha;
    case ProtocolKind::Structure: return structure;
    case ProtocolKind::Coloring: return coloring;
    case ProtocolKind::ClusterColoring: return clusterColoring;
    case ProtocolKind::Csa: return csa;
    case ProtocolKind::RulingSet: return rulingSet;
    case ProtocolKind::DominatingSet: return dominatingSet;
    case ProtocolKind::ChainBaseline: return chainBaseline;
  }
  return aggMax;  // unreachable for in-range kinds
}

std::vector<ProtocolKind> allProtocolKinds() {
  std::vector<ProtocolKind> kinds;
  kinds.reserve(kNumProtocolKinds);
  for (int k = 0; k < kNumProtocolKinds; ++k) {
    kinds.push_back(static_cast<ProtocolKind>(k));
  }
  return kinds;
}

}  // namespace mcs
