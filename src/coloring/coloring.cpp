#include "coloring/coloring.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "agg/intra.h"
#include "proto/heap_tree.h"

namespace mcs {
namespace {

/// Heap role of a node within its cluster's reporter tree (-1 = follower).
int heapOf(const AggregationStructure& s, NodeId v) {
  const auto vi = static_cast<std::size_t>(v);
  if (s.clustering.isDominator[vi]) return 0;
  if (s.isReporter[vi]) return static_cast<int>(s.reporterChannel[vi]) + 1;
  return -1;
}

}  // namespace

ColoringResult runColoring(Simulator& sim, const AggregationStructure& s) {
  const Network& net = sim.network();
  const Tuning& tun = net.tuning();
  const int n = net.size();
  const int F = sim.numChannels();
  const Clustering& cl = s.clustering;
  const TdmaSchedule& tdma = s.tdma;
  const int phi = std::max(1, tdma.period);

  ColoringResult out;
  out.colorOf.assign(static_cast<std::size_t>(n), -1);

  // Protocol progress probe (telemetry/probes.h): nodes colored so far
  // over the node total, sampled per slot when probes are armed.  The
  // guard clears the probe on every exit path so the Simulator never
  // holds a dangling reference to `out` after this frame returns.
  struct ProgressProbeGuard {
    Simulator& sim;
    ~ProgressProbeGuard() { sim.setProgressProbe({}); }
  } probeGuard{sim};
  sim.setProgressProbe([&out, n](std::uint64_t& num, std::uint64_t& den) {
    std::uint64_t colored = 0;
    for (const int c : out.colorOf) colored += c >= 0 ? 1 : 0;
    num = colored;
    den = static_cast<std::uint64_t>(n);
    return true;
  });

  // ---- Procedure 1: followers report their IDs to reporters --------------
  std::vector<std::vector<NodeId>> followersOf(static_cast<std::size_t>(n));
  std::vector<ChannelId> reporterChannelOfFollower(static_cast<std::size_t>(n), kNoChannel);
  UplinkMetrics uplink = runFollowerUplink(
      sim, s, [](NodeId) { return Message{}; },
      [&](NodeId reporter, const Message& m) {
        followersOf[static_cast<std::size_t>(reporter)].push_back(m.src);
      },
      &reporterChannelOfFollower);
  out.costs.uplink = uplink.slots;
  out.complete = uplink.allDelivered;

  // ---- Procedure 2: subtree sizes up the reporter tree -------------------
  // ownBlock[v]: 1 (the role owner) + its followers.
  // childCount[v][k]: subtree size reported by heap child k.
  std::vector<std::int64_t> ownBlock(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<std::int64_t>> childCount(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const int k = heapOf(s, v);
    if (k < 0) continue;
    const auto vi = static_cast<std::size_t>(v);
    ownBlock[vi] = 1 + static_cast<std::int64_t>(followersOf[vi].size());
    childCount[vi].assign(static_cast<std::size_t>(F) + 2, 0);
  }
  const auto subtreeCount = [&](NodeId v) {
    const auto vi = static_cast<std::size_t>(v);
    std::int64_t total = ownBlock[vi];
    for (const std::int64_t c : childCount[vi]) total += c;
    return total;
  };

  const int maxLevel = heapMaxLevel(F);
  std::vector<NodeId> ackTo(static_cast<std::size_t>(n), kNoNode);
  std::vector<char> delivered(static_cast<std::size_t>(n), 0);
  long round = 0;
  const int passes = 3;
  // Retries happen WITHIN a level (pass loop inside): counts below a level
  // are final before the level transmits, so a parent can never hold a
  // stale child count — a child either delivers its final subtree size or
  // is dropped entirely (and then falls back to the overflow band below).
  for (int level = maxLevel; level >= 0; --level) {
    std::fill(delivered.begin(), delivered.end(), 0);
    for (int pass = 0; pass < passes; ++pass) {
      for (long cycle = 0; cycle < tdma.period; ++cycle, ++round) {
        for (const int parity : {0, 1}) {
          std::fill(ackTo.begin(), ackTo.end(), kNoNode);
          sim.step(
              [&](NodeId v) -> Intent {
                const auto vi = static_cast<std::size_t>(v);
                const int k = heapOf(s, v);
                if (k < 0 || !tdma.active(v, round)) return Intent::idle();
                // 0.9: deterministic retransmissions would collide with a
                // same-color cluster's tree forever.
                if (k >= 1 && heapLevel(k) == level && (k & 1) == parity && !delivered[vi] &&
                    sim.rng(v).bernoulli(0.9)) {
                  Message m;
                  m.type = MsgType::SubtreeCount;
                  m.src = v;
                  m.a = k;
                  m.b = cl.dominatorOf[vi];
                  m.x = static_cast<double>(subtreeCount(v));
                  return Intent::transmit(heapUplinkChannel(k), m);
                }
                if (heapLevel(std::max(1, k * 2)) == level) {
                  return Intent::listen(heapChannel(k));
                }
                return Intent::idle();
              },
              [&](NodeId v, const Reception& r) {
                const auto vi = static_cast<std::size_t>(v);
                if (!r.received || r.msg.type != MsgType::SubtreeCount) return;
                if (r.msg.b != cl.dominatorOf[vi]) return;
                const int childK = static_cast<int>(r.msg.a);
                if (heapParent(childK) != heapOf(s, v)) return;
                childCount[vi][static_cast<std::size_t>(childK)] =
                    static_cast<std::int64_t>(r.msg.x);
                ackTo[vi] = r.msg.src;
              });
          ++out.costs.tree;
          sim.step(
              [&](NodeId v) -> Intent {
                const auto vi = static_cast<std::size_t>(v);
                const int k = heapOf(s, v);
                if (k < 0 || !tdma.active(v, round)) return Intent::idle();
                if (ackTo[vi] != kNoNode) {
                  Message m;
                  m.type = MsgType::TreeUpAck;
                  m.src = v;
                  m.dst = ackTo[vi];
                  return Intent::transmit(heapChannel(k), m);
                }
                if (k >= 1 && heapLevel(k) == level && (k & 1) == parity && !delivered[vi]) {
                  return Intent::listen(heapUplinkChannel(k));
                }
                return Intent::idle();
              },
              [&](NodeId v, const Reception& r) {
                if (r.received && r.msg.type == MsgType::TreeUpAck && r.msg.dst == v) {
                  delivered[static_cast<std::size_t>(v)] = 1;
                }
              });
          ++out.costs.tree;
        }
      }
    }
  }

  // ---- Procedure 3: color ranges down the reporter tree ------------------
  // rangeLo[v] is the start of the role's block; the role takes indices
  // [rangeLo, rangeLo + ownBlock), its left child the next chunk, etc.
  std::vector<std::int64_t> rangeLo(static_cast<std::size_t>(n), -1);
  for (const NodeId d : cl.dominators) rangeLo[static_cast<std::size_t>(d)] = 0;

  const auto childRange = [&](NodeId v, int childK) -> std::int64_t {
    // Start index of child childK's block within v's range.
    const auto vi = static_cast<std::size_t>(v);
    const int k = heapOf(s, v);
    std::int64_t lo = rangeLo[vi] + ownBlock[vi];
    const int left = 2 * k;
    if (childK == left) return lo;
    return lo + childCount[vi][static_cast<std::size_t>(left)];
  };

  for (int pass = 0; pass < passes; ++pass) {
    for (int level = 0; level <= maxLevel; ++level) {
      for (long cycle = 0; cycle < tdma.period; ++cycle, ++round) {
        for (const int parity : {0, 1}) {
          sim.step(
              [&](NodeId v) -> Intent {
                const auto vi = static_cast<std::size_t>(v);
                const int k = heapOf(s, v);
                if (k < 0 || !tdma.active(v, round)) return Intent::idle();
                // Parents with a known range announce the child of this
                // parity at this level.
                const int childK = 2 * k + parity;
                if (rangeLo[vi] >= 0 && childK >= 1 && heapLevel(childK) == level &&
                    childCount[vi][static_cast<std::size_t>(childK)] > 0 &&
                    sim.rng(v).bernoulli(0.9)) {
                  Message m;
                  m.type = MsgType::ColorRange;
                  m.src = v;
                  m.a = childK;
                  m.b = childRange(v, childK);
                  m.x = static_cast<double>(cl.dominatorOf[vi]);  // cluster-scoped
                  return Intent::transmit(heapChannel(k), m);
                }
                if (k >= 1 && heapLevel(k) == level && (k & 1) == parity && rangeLo[vi] < 0) {
                  return Intent::listen(heapUplinkChannel(k));
                }
                return Intent::idle();
              },
              [&](NodeId v, const Reception& r) {
                const auto vi = static_cast<std::size_t>(v);
                if (!r.received || r.msg.type != MsgType::ColorRange) return;
                if (static_cast<NodeId>(r.msg.x) != cl.dominatorOf[vi]) return;
                if (static_cast<int>(r.msg.a) == heapOf(s, v) && rangeLo[vi] < 0) {
                  rangeLo[vi] = r.msg.b;
                }
              });
          ++out.costs.tree;
        }
      }
    }
  }

  // Fallback for orphaned subtrees: a channel that elected no reporter
  // leaves its heap children without a parent, so no range ever reaches
  // them.  An orphan reporter k instead uses the reserved overflow band
  // [n(k+1), n(k+1) + block): n bounds every cluster size (nodes know a
  // polynomial estimate of n, §2), so bands are disjoint from the main
  // range [0, |C_v|) and from each other (distinct k).  Rare, and only
  // inflates the palette when it triggers.
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const int k = heapOf(s, v);
    if (k >= 1 && s.isReporter[vi] && rangeLo[vi] < 0) {
      rangeLo[vi] = static_cast<std::int64_t>(n) * static_cast<std::int64_t>(k + 1);
    }
  }

  // ---- Procedure 4: reporters assign colors to their followers ------------
  // color = clusterColor + phi * k-index.  Role owners color themselves.
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (heapOf(s, v) >= 0 && rangeLo[vi] >= 0) {
      out.colorOf[vi] =
          tdma.colorOfNode[vi] + phi * static_cast<int>(rangeLo[vi]);
    }
  }

  std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
  std::vector<char> acked(static_cast<std::size_t>(n), 0);  // per-slot scratch
  int pendingFollowers = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (s.isFollower(v)) ++pendingFollowers;
  }
  std::size_t maxList = 0;
  for (NodeId v = 0; v < n; ++v) {
    maxList = std::max(maxList, followersOf[static_cast<std::size_t>(v)].size());
  }
  const long cap =
      (static_cast<long>(maxList) * 2 + tun.lnRounds(4.0, n)) * std::max(1, tdma.period) + 8;
  for (long t = 0; t < cap && pendingFollowers > 0; ++t, ++round) {
    // Slot A: assignment.
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!tdma.active(v, round)) return Intent::idle();
          // 0.85: deterministic retransmissions would collide forever with
          // a same-color cluster assigning on the same channel.
          if (s.isReporter[vi] && rangeLo[vi] >= 0 && cursor[vi] < followersOf[vi].size() &&
              sim.rng(v).bernoulli(0.85)) {
            const NodeId f = followersOf[vi][cursor[vi]];
            Message m;
            m.type = MsgType::AssignColor;
            m.src = v;
            m.dst = f;
            // Follower i gets k-index rangeLo + 1 + i.
            m.a = rangeLo[vi] + 1 + static_cast<std::int64_t>(cursor[vi]);
            return Intent::transmit(s.reporterChannel[vi], m);
          }
          // Followers keep listening even once colored: a lost ack makes
          // the reporter re-send, and the re-receipt re-arms the ack.
          if (s.isFollower(v) && reporterChannelOfFollower[vi] != kNoChannel) {
            return Intent::listen(reporterChannelOfFollower[vi]);
          }
          return Intent::idle();
        },
        [&](NodeId v, const Reception& r) {
          const auto vi = static_cast<std::size_t>(v);
          if (!r.received || r.msg.type != MsgType::AssignColor || r.msg.dst != v) return;
          if (out.colorOf[vi] < 0) {
            out.colorOf[vi] = tdma.colorOfNode[vi] + phi * static_cast<int>(r.msg.a);
            --pendingFollowers;
          }
          acked[vi] = 1;  // remember to ack in slot B
        });
    ++out.costs.broadcast;
    // Slot B: follower acks; reporter advances its cursor.
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!tdma.active(v, round)) return Intent::idle();
          if (acked[vi] && sim.rng(v).bernoulli(0.85)) {
            acked[vi] = 0;
            Message m;
            m.type = MsgType::DataAck;
            m.src = v;
            m.dst = kNoNode;
            return Intent::transmit(reporterChannelOfFollower[vi], m);
          }
          if (s.isReporter[vi] && rangeLo[vi] >= 0 &&
              cursor[vi] < followersOf[vi].size()) {
            return Intent::listen(s.reporterChannel[vi]);
          }
          return Intent::idle();
        },
        [&](NodeId v, const Reception& r) {
          const auto vi = static_cast<std::size_t>(v);
          if (!r.received || r.msg.type != MsgType::DataAck) return;
          if (s.isReporter[vi] &&
              r.msg.src == followersOf[vi][std::min(cursor[vi], followersOf[vi].size() - 1)]) {
            ++cursor[vi];
          }
        });
    ++out.costs.broadcast;
  }
  if (pendingFollowers > 0) out.complete = false;

  if (std::getenv("MCS_COLOR_DEBUG") != nullptr) {
    int repNoRange = 0, folNoChan = 0, folUncolored = 0, repPending = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (s.isReporter[vi] && rangeLo[vi] < 0) ++repNoRange;
      if (s.isReporter[vi] && rangeLo[vi] >= 0 && cursor[vi] < followersOf[vi].size()) {
        ++repPending;
      }
      if (s.isFollower(v) && reporterChannelOfFollower[vi] == kNoChannel) ++folNoChan;
      if (s.isFollower(v) && out.colorOf[vi] < 0) ++folUncolored;
    }
    std::fprintf(stderr,
                 "[coloring] uplinkOK=%d repNoRange=%d repPending=%d folNoChan=%d "
                 "folUncolored=%d pending=%d\n",
                 uplink.allDelivered ? 1 : 0, repNoRange, repPending, folNoChan, folUncolored,
                 pendingFollowers);
    const NodeId target = static_cast<NodeId>(std::atoi(std::getenv("MCS_COLOR_DEBUG")));
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (cl.dominatorOf[vi] != target) continue;
      const int k = heapOf(s, v);
      if (k < 0) continue;
      std::fprintf(stderr, "  role k=%d node=%d rangeLo=%lld ownBlock=%lld children:",
                   k, v, static_cast<long long>(rangeLo[vi]),
                   static_cast<long long>(ownBlock[vi]));
      for (std::size_t c = 0; c < childCount[vi].size(); ++c) {
        if (childCount[vi][c] > 0) {
          std::fprintf(stderr, " [%zu]=%lld", c, static_cast<long long>(childCount[vi][c]));
        }
      }
      std::fprintf(stderr, "\n");
    }
  }

  int maxColor = -1;
  for (const int c : out.colorOf) maxColor = std::max(maxColor, c);
  out.colorsUsed = maxColor + 1;
  return out;
}

int countColoringViolations(const Network& net, const std::vector<int>& colorOf) {
  const CommGraph& g = net.graph();
  int violations = 0;
  for (NodeId v = 0; v < net.size(); ++v) {
    for (const NodeId u : g.neighbors(v)) {
      if (u > v && colorOf[static_cast<std::size_t>(u)] >= 0 &&
          colorOf[static_cast<std::size_t>(u)] == colorOf[static_cast<std::size_t>(v)]) {
        ++violations;
      }
    }
  }
  return violations;
}

int countDistinctColors(const std::vector<int>& colorOf) {
  std::vector<int> sorted(colorOf);
  std::sort(sorted.begin(), sorted.end());
  int classes = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= 0 && (i == 0 || sorted[i] != sorted[i - 1])) ++classes;
  }
  return classes;
}

}  // namespace mcs
