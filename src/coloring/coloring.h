#pragma once

#include <cstdint>
#include <vector>

#include "agg/structure.h"
#include "sim/simulator.h"

/// Distributed node coloring on the aggregation structure (§7, Thm 24):
/// O(Delta) colors in O(Delta/F + log n log log n) rounds.
///
/// Colors are laid out as  color = clusterColor + phi * k  where k is a
/// per-cluster index (dominator k = 0), so clusters whose dominators are
/// within R_{eps/2} use disjoint color sets.
///
/// Four procedures, exactly as in the paper:
///  1. followers report their IDs to reporters (follower uplink);
///  2. subtree sizes flow up the reporter tree;
///  3. disjoint color ranges flow back down;
///  4. each reporter assigns and announces one color per follower.
namespace mcs {

struct ColoringResult {
  /// Per node: assigned color (>= 0), or -1 if the node was missed
  /// (complete == false in that case).
  std::vector<int> colorOf;
  /// Number of distinct colors used.
  int colorsUsed = 0;
  /// Slot costs: uplink = P1, tree = P2 + P3, broadcast = P4.
  StageCosts costs;
  bool complete = true;
};

ColoringResult runColoring(Simulator& sim, const AggregationStructure& s);

/// Ground-truth check: number of communication-graph edges whose
/// endpoints share a color (0 = proper).
[[nodiscard]] int countColoringViolations(const Network& net, const std::vector<int>& colorOf);

/// Number of distinct colors actually used (entries >= 0).  This is the
/// palette size a schedule needs; `colorsUsed` (max color + 1) can be
/// inflated by the rare orphan overflow band without affecting it.
[[nodiscard]] int countDistinctColors(const std::vector<int>& colorOf);

}  // namespace mcs
