#include "campaign/protocol.h"

#include <cstddef>

namespace mcs::campaign {

const char* toString(FrameType t) noexcept {
  switch (t) {
    case FrameType::Lease: return "lease";
    case FrameType::Heartbeat: return "heartbeat";
    case FrameType::Result: return "result";
    case FrameType::Done: return "done";
  }
  return "done";
}

Frame makeFrame(FrameType t) {
  Frame f;
  f.type = t;
  f.body.set("type", toString(t));
  return f;
}

std::string encodeFrame(const Frame& f) { return f.body.dump(); }

bool decodeFrame(const std::string& bytes, Frame& out, std::string& err) {
  if (!Json::parse(bytes, out.body, err)) return false;
  if (!out.body.isObject()) {
    err = "frame is not a JSON object";
    return false;
  }
  const std::string type = out.body.stringAt("type");
  if (type == "lease") {
    out.type = FrameType::Lease;
  } else if (type == "heartbeat") {
    out.type = FrameType::Heartbeat;
  } else if (type == "result") {
    out.type = FrameType::Result;
  } else if (type == "done") {
    out.type = FrameType::Done;
  } else {
    err = "unknown frame type \"" + type + "\"";
    return false;
  }
  return true;
}

Json momentsToJson(const MetricStats& stats) {
  Json j = Json::object();
  for (const auto& [name, s] : stats) {
    Json m = Json::object();
    m.set("n", s.count());
    m.set("mean", s.mean());
    m.set("m2", s.m2());
    m.set("min", s.min());
    m.set("max", s.max());
    m.set("sum", s.sum());
    j.set(name, std::move(m));
  }
  return j;
}

MetricStats momentsFromJson(const Json& j) {
  MetricStats out;
  if (!j.isObject()) return out;
  out.reserve(j.size());
  for (const auto& [name, m] : j.members()) {
    out.emplace_back(name, OnlineStats::fromMoments(
                               static_cast<std::size_t>(m.numberAt("n")), m.numberAt("mean"),
                               m.numberAt("m2"), m.numberAt("min"), m.numberAt("max"),
                               m.numberAt("sum")));
  }
  return out;
}

MetricStats cellMetricStats(const CellResult& cell) {
  MetricStats out;
  OnlineStats slots, decodeRate, structureSlots, wallSec;
  for (const SeedResult& r : cell.batch.perSeed) {
    wallSec.add(r.wallSec);  // wall time counts failed seeds, like summarizeWallSec
    if (r.failed()) continue;
    slots.add(static_cast<double>(r.slots));
    decodeRate.add(r.decodeRate);
    structureSlots.add(static_cast<double>(r.structureSlots));
  }
  out.emplace_back("slots", slots);
  out.emplace_back("decode_rate", decodeRate);
  out.emplace_back("structure_slots", structureSlots);
  out.emplace_back("wall_sec", wallSec);
  for (const std::string& name : cell.batch.metricNames()) {
    OnlineStats s;
    for (const SeedResult& r : cell.batch.perSeed) {
      if (r.failed()) continue;
      if (const double* v = r.metrics.find(name)) s.add(*v);
    }
    out.emplace_back(name, s);
  }
  sortMetricStats(out);
  return out;
}

}  // namespace mcs::campaign
