#include "campaign/protocol.h"

#include <cstddef>

namespace mcs::campaign {

const char* toString(FrameType t) noexcept {
  switch (t) {
    case FrameType::Lease: return "lease";
    case FrameType::Heartbeat: return "heartbeat";
    case FrameType::Result: return "result";
    case FrameType::Done: return "done";
  }
  return "done";
}

Frame makeFrame(FrameType t) {
  Frame f;
  f.type = t;
  f.body.set("type", toString(t));
  return f;
}

std::string encodeFrame(const Frame& f) { return f.body.dump(); }

bool decodeFrame(const std::string& bytes, Frame& out, std::string& err) {
  if (!Json::parse(bytes, out.body, err)) return false;
  if (!out.body.isObject()) {
    err = "frame is not a JSON object";
    return false;
  }
  const std::string type = out.body.stringAt("type");
  if (type == "lease") {
    out.type = FrameType::Lease;
  } else if (type == "heartbeat") {
    out.type = FrameType::Heartbeat;
  } else if (type == "result") {
    out.type = FrameType::Result;
  } else if (type == "done") {
    out.type = FrameType::Done;
  } else {
    err = "unknown frame type \"" + type + "\"";
    return false;
  }
  return true;
}

namespace {

Json quantileStateToJson(const StreamingQuantiles& q) {
  Json out = Json::object();
  if (!q.sketchMode()) {
    out.set("k", "exact");
    Json values = Json::array();
    for (double v : q.sortedExactValues()) values.push_back(v);
    out.set("v", std::move(values));
    return out;
  }
  const QuantileSketch& s = q.sketch();
  out.set("k", "sketch");
  out.set("a", s.alpha());
  out.set("z", static_cast<std::size_t>(s.zeroCount()));
  const auto sideToJson = [](const std::vector<QuantileSketch::Bucket>& side) {
    Json arr = Json::array();
    for (const QuantileSketch::Bucket& b : side) {
      Json pair = Json::array();
      pair.push_back(b.index);
      pair.push_back(static_cast<std::size_t>(b.count));
      arr.push_back(std::move(pair));
    }
    return arr;
  };
  out.set("neg", sideToJson(s.negativeBuckets()));
  out.set("pos", sideToJson(s.positiveBuckets()));
  return out;
}

StreamingQuantiles quantileStateFromJson(const Json* j) {
  if (j == nullptr || !j->isObject()) return StreamingQuantiles{};
  if (j->stringAt("k") == "exact") {
    std::vector<double> values;
    if (const Json* v = j->find("v"); v != nullptr && v->isArray()) {
      values.reserve(v->size());
      for (const Json& x : v->items()) values.push_back(x.asDouble());
    }
    return StreamingQuantiles::fromExact(QuantileSketch::kDefaultAlpha,
                                         StreamingQuantiles::kDefaultExactThreshold,
                                         std::move(values));
  }
  const auto sideFromJson = [](const Json* arr) {
    std::vector<QuantileSketch::Bucket> side;
    if (arr == nullptr || !arr->isArray()) return side;
    side.reserve(arr->size());
    for (const Json& pair : arr->items()) {
      if (!pair.isArray() || pair.size() != 2) continue;
      side.push_back(QuantileSketch::Bucket{
          static_cast<std::int32_t>(pair.items()[0].asDouble()),
          static_cast<std::uint64_t>(pair.items()[1].asDouble())});
    }
    return side;
  };
  QuantileSketch sketch = QuantileSketch::fromState(
      j->numberAt("a", QuantileSketch::kDefaultAlpha),
      static_cast<std::uint64_t>(j->numberAt("z")), sideFromJson(j->find("neg")),
      sideFromJson(j->find("pos")));
  return StreamingQuantiles::fromSketch(StreamingQuantiles::kDefaultExactThreshold,
                                        std::move(sketch));
}

}  // namespace

Json momentsToJson(const MetricStats& stats) {
  Json j = Json::object();
  for (const auto& [name, s] : stats) {
    Json m = Json::object();
    m.set("n", s.moments.count());
    m.set("mean", s.moments.mean());
    m.set("m2", s.moments.m2());
    m.set("min", s.moments.min());
    m.set("max", s.moments.max());
    m.set("sum", s.moments.sum());
    m.set("q", quantileStateToJson(s.quantiles));
    j.set(name, std::move(m));
  }
  return j;
}

MetricStats momentsFromJson(const Json& j) {
  MetricStats out;
  if (!j.isObject()) return out;
  out.reserve(j.size());
  for (const auto& [name, m] : j.members()) {
    StreamingStats s;
    s.moments = OnlineStats::fromMoments(static_cast<std::size_t>(m.numberAt("n")),
                                         m.numberAt("mean"), m.numberAt("m2"),
                                         m.numberAt("min"), m.numberAt("max"),
                                         m.numberAt("sum"));
    s.quantiles = quantileStateFromJson(m.find("q"));
    out.emplace_back(name, std::move(s));
  }
  return out;
}

MetricStats cellMetricStats(const CellResult& cell) { return cellStats(cell); }

}  // namespace mcs::campaign
