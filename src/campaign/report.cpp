#include "campaign/report.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "sweep/report.h"
#include "sweep/runner.h"
#include "telemetry/telemetry.h"
#include "util/csv.h"
#include "util/json.h"

namespace mcs::campaign {

namespace {

/// Reads one cell file's JSON bytes, trimmed of trailing whitespace so
/// they splice cleanly into an enclosing array.
bool readCellBytes(const std::string& path, std::string& bytes, std::string& err) {
  std::ifstream f(path);
  if (!f) {
    err = "cannot open cell file \"" + path + "\"";
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  bytes = buf.str();
  while (!bytes.empty() && (bytes.back() == '\n' || bytes.back() == '\r' ||
                            bytes.back() == ' ' || bytes.back() == '\t')) {
    bytes.pop_back();
  }
  if (bytes.empty()) {
    err = "cell file \"" + path + "\" is empty";
    return false;
  }
  return true;
}

}  // namespace

bool writeWorkQueueCampaignReport(const WorkQueueCampaign& campaign,
                                  const std::string& cellDir, const std::string& dir,
                                  std::string& pathOut, std::string& err) {
  pathOut = dir + "/BENCH_sweep_" + campaign.name + ".json";
  std::ofstream f(pathOut);
  if (!f) {
    err = "cannot write campaign report \"" + pathOut + "\"";
    return false;
  }

  // The envelope replicates campaignToJson's layout (and Json::dump's
  // `"key": value, ` formatting) exactly, with the cells array spliced
  // from the per-cell files instead of re-serialized — byte-identical
  // because cellToJson round-trips through loadCellResult losslessly,
  // so the worker-written file already holds the canonical bytes.
  Json meta = Json::object();
  meta.set("sweep", campaign.name);
  meta.set("base", campaign.baseName);
  meta.set("description", campaign.description);
  meta.set("total_cells", campaign.totalCells);
  meta.set("shard_index", campaign.shardIndex);
  meta.set("shard_count", campaign.shardCount);
  meta.set("cells_in_shard", static_cast<int>(campaign.cells.size()));
  meta.set("cells_cached", campaign.cachedCells());
  meta.set("failures", campaign.failures());
  meta.set("wall_sec", campaign.wallSec);

  f << "{\"name\": " << Json("sweep_" + campaign.name).dump() << ", \"kind\": \"sweep\""
    << ", \"meta\": " << meta.dump() << ", \"cells\": [";
  bool first = true;
  for (const CellRecord& rec : campaign.cells) {
    std::string bytes;
    if (!readCellBytes(cellFilePath(cellDir, campaign.name, rec.cell.index), bytes, err)) {
      return false;
    }
    if (!first) f << ", ";
    first = false;
    f << bytes;
  }
  f << ']';
  // Campaign-wide probe aggregate, between "cells" and "telemetry" like
  // campaignToJson: the coordinator's tree-reduced root equals the
  // in-process merge of the per-cell states (probe folds commute), so the
  // blocks match byte-for-byte.
  if (!campaign.probes.empty()) {
    f << ", \"probes\": " << telemetry::probesToJson(campaign.probes).dump();
  }
  if (telemetry::enabled()) {
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    if (!snap.empty()) f << ", \"telemetry\": " << snap.toJson().dump();
  }
  f << "}\n";
  f.flush();
  if (!f.good()) {
    err = "cannot write campaign report \"" + pathOut + "\"";
    return false;
  }
  return true;
}

bool writeWorkQueueCampaignCsv(const WorkQueueCampaign& campaign, const std::string& cellDir,
                               const std::string& path, std::string& err) {
  std::ofstream f(path);
  if (!f) {
    err = "cannot write campaign CSV \"" + path + "\"";
    return false;
  }
  // Axis keys come from the expansion the coordinator retained, so the
  // header is available before any cell file is touched.
  std::vector<std::vector<std::pair<std::string, std::string>>> assignments;
  assignments.reserve(campaign.cells.size());
  for (const CellRecord& rec : campaign.cells) assignments.push_back(rec.cell.assignments);
  const std::vector<std::string> axisKeys = campaignAxisKeys(assignments);

  std::vector<std::string> header = {"cell", "label"};
  for (const std::string& key : axisKeys) header.push_back(key);
  header.insert(header.end(), {"seed", "metric", "value"});
  f << csvJoin(header) << '\n';

  for (const CellRecord& rec : campaign.cells) {
    CellResult cell;
    std::string loadErr;
    if (!loadCellResult(cellFilePath(cellDir, campaign.name, rec.cell.index), cell, loadErr)) {
      err = loadErr;
      return false;
    }
    appendCellCsvRows(f, cell, axisKeys);
  }
  f.flush();
  if (!f.good()) {
    err = "cannot write campaign CSV \"" + path + "\"";
    return false;
  }
  return true;
}

}  // namespace mcs::campaign
