#include "campaign/coordinator.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>
#include <unordered_map>

#include "campaign/protocol.h"
#include "campaign/worker.h"
#include "store/writer.h"
#include "sweep/report.h"
#include "sweep/runner.h"
#include "telemetry/probes.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/clock.h"
#include "util/framing.h"
#include "util/proc.h"

namespace mcs::campaign {

namespace {

/// One live worker and its in-flight lease.
struct WorkerSlot {
  ChildProc proc;
  FrameDecoder dec;
  /// Leased cell index, or -1 when idle.
  int leasedCell = -1;
  double leaseSentAt = 0.0;
};

struct ProgressLine {
  bool enabled = false;
  std::string campaign;
  int shardCells = 0;
  double t0 = 0.0;
  double lastEmit = 0.0;

  void emit(int done, int cached, std::size_t queueDepth, int liveWorkers, bool force) {
    if (!enabled) return;
    const double now = nowSec();
    if (!force && now - lastEmit < 0.5) return;
    lastEmit = now;
    const double elapsed = now - t0;
    // Resume cache hits are free; only cells that actually ran count
    // toward throughput, so a resumed campaign's ETA stays honest.
    const int ran = done - cached;
    const double rate = elapsed > 0.0 ? ran / elapsed : 0.0;
    char eta[32];
    if (rate > 0.0) {
      std::snprintf(eta, sizeof eta, "%.0fs", (shardCells - done) / rate);
    } else {
      std::snprintf(eta, sizeof eta, "--");
    }
    std::fprintf(stderr,
                 "[campaign %s] %d/%d cells (%d ran, %d cached) | queue %zu | %d workers | "
                 "%.2f cells/s | ETA %s\n",
                 campaign.c_str(), done, shardCells, ran, cached, queueDepth, liveWorkers,
                 rate, eta);
    std::fflush(stderr);
  }
};

}  // namespace

bool runCampaignWorkQueue(const SweepSpec& spec, const WorkQueueOptions& opts,
                          WorkQueueCampaign& out, std::string& err) {
  out = WorkQueueCampaign();
  out.name = spec.name;
  out.baseName = spec.baseName;
  out.description = describeSweep(spec);
  out.shardIndex = opts.shardIndex;
  out.shardCount = opts.shardCount;

  std::vector<SweepCell> cells;
  if (!expandSweep(spec, cells, err)) return false;
  out.totalCells = static_cast<int>(cells.size());

  static const telemetry::CounterId kLeases = telemetry::counterId("campaign.leases");
  static const telemetry::CounterId kRequeues = telemetry::counterId("campaign.requeues");
  static const telemetry::CounterId kDeaths = telemetry::counterId("campaign.worker_deaths");
  static const telemetry::TimerId kLeaseRtt = telemetry::timerId("campaign.lease_rtt");
  static const telemetry::TimerId kReduce = telemetry::timerId("campaign.reduce");

  const double t0 = nowSec();

  // This shard's cells, in expansion order; leaf index in the reduction
  // tree = position here, so the reduced root only depends on the shard's
  // cell set, never on worker scheduling.
  std::vector<const SweepCell*> shardCells;
  for (const SweepCell& cell : cells) {
    if (cellInShard(cell.index, opts.shardIndex, opts.shardCount)) shardCells.push_back(&cell);
  }
  out.cells.resize(shardCells.size());
  for (std::size_t i = 0; i < shardCells.size(); ++i) out.cells[i].cell = *shardCells[i];
  std::unordered_map<int, std::size_t> leafOf;  // cell.index -> leaf/record position
  for (std::size_t i = 0; i < shardCells.size(); ++i) leafOf[shardCells[i]->index] = i;

  const auto recordDisplayMeans = [](CellRecord& rec, const MetricStats& stats) {
    for (const auto& [name, s] : stats) {
      if (name == "slots") rec.slotsMean = s.moments.mean();
      if (name == "decode_rate") rec.decodeRateMean = s.moments.mean();
      if (name == "wall_sec") rec.wallMeanSec = s.moments.mean();
    }
  };

  store::StoreWriter storeWriter;
  if (!opts.storePath.empty()) {
    store::StoreMeta meta;
    meta.campaign = spec.name;
    meta.base = spec.baseName;
    meta.totalCells = out.totalCells;
    meta.shardIndex = opts.shardIndex;
    meta.shardCount = opts.shardCount;
    meta.cellSlots = shardCells.size();
    meta.stripWall = opts.storeStripWall;
    if (!storeWriter.open(opts.storePath, meta, err)) return false;
  }
  // Store rows land by slot, so arrival order is irrelevant to the file's
  // final bytes.  Stats must be appended BEFORE the reducer consumes them.
  const auto appendStoreRow = [&](std::size_t slot, const CellRecord& rec,
                                  const MetricStats& stats, const MetricMap& tm,
                                  const telemetry::ProbeState& probes, std::string& rowErr) {
    if (!storeWriter.isOpen()) return true;
    store::StoreCellRow row;
    row.cellIndex = rec.cell.index;
    row.label = rec.cell.label;
    row.assignments = rec.cell.assignments;
    row.seeds = rec.cell.spec.seeds;
    row.failures = rec.failures;
    row.delivered = rec.delivered;
    row.valid = rec.valid;
    row.invalid = rec.invalid;
    row.stats = &stats;
    row.telemetry = &tm;
    row.probes = &probes;
    return storeWriter.appendCell(slot, row, rowErr);
  };

  TreeReducer reducer(shardCells.size());
  const auto foldLeaf = [&](std::size_t leaf, MetricStats stats,
                            telemetry::ProbeState probes) {
    const double r0 = nowSec();
    reducer.addLeaf(leaf, std::move(stats), std::move(probes));
    telemetry::timerRecord(kReduce, static_cast<std::uint64_t>((nowSec() - r0) * 1e9));
    if (reducer.pendingNodes() > out.peakPendingNodes) {
      out.peakPendingNodes = reducer.pendingNodes();
    }
  };

  int done = 0;
  const int shardTotal = static_cast<int>(shardCells.size());

  // Resume pass: fold trusted cached cells before anything is leased.
  std::deque<int> queue;  // pending cell indices, expansion order
  for (std::size_t i = 0; i < shardCells.size(); ++i) {
    const SweepCell& cell = *shardCells[i];
    if (opts.resume) {
      const std::string path = cellFilePath(opts.outDir, spec.name, cell.index);
      CellResult cached;
      std::string loadErr;
      if (std::filesystem::exists(path) && loadCellResult(path, cached, loadErr) &&
          cellCacheMatches(cached, cell)) {
        cached.cell = cell;
        CellRecord& rec = out.cells[i];
        rec.fromCache = true;
        rec.failures = cached.batch.failures();
        rec.delivered = cached.batch.deliveredCount();
        rec.valid = cached.batch.validCount();
        rec.invalid = cached.batch.invalidCount();
        MetricStats stats = cellMetricStats(cached);
        recordDisplayMeans(rec, stats);
        std::string rowErr;
        if (!appendStoreRow(i, rec, stats, cached.telemetry, cached.probes, rowErr)) {
          err = "cell " + std::to_string(cell.index) + " store row: " + rowErr;
          return false;
        }
        foldLeaf(i, std::move(stats), std::move(cached.probes));
        if (opts.onCell) opts.onCell(cell, true);
        ++done;
        continue;
      }
      // Stale or unreadable: fall through and lease the cell.
    }
    queue.push_back(cell.index);
  }

  int workerCount = opts.workers;
  if (workerCount <= 0) {
    workerCount = static_cast<int>(std::thread::hardware_concurrency());
    if (workerCount <= 0) workerCount = 2;
  }
  // Never more workers than leases to hand out.
  if (static_cast<std::size_t>(workerCount) > queue.size()) {
    workerCount = static_cast<int>(queue.size());
  }

  const SigPipeGuard sigpipe;  // dead-worker writes must be EPIPE, not SIGPIPE
  // Per-worker trace dumps: distinct worker ordinals (respawns included)
  // keep pids and file names collision-free; the merge pass below folds
  // whatever files materialized into the single --trace-out trace.
  const bool tracingWorkers = !opts.traceOut.empty() && telemetry::traceEnabled();
  int nextWorkerId = 0;
  std::vector<std::string> workerTracePaths;

  std::vector<WorkerSlot> workers;
  const auto liveFds = [&]() {
    std::vector<int> fds;
    for (const WorkerSlot& w : workers) {
      if (w.proc.valid()) fds.push_back(w.proc.fd);
    }
    return fds;
  };
  const auto spawnWorker = [&]() -> bool {
    WorkerConfig workerCfg;
    workerCfg.campaign = spec.name;
    workerCfg.outDir = opts.outDir;
    workerCfg.threads = opts.threadsPerWorker;
    workerCfg.workerId = nextWorkerId++;
    if (tracingWorkers) {
      workerCfg.tracePath = opts.traceOut + ".worker" + std::to_string(workerCfg.workerId);
      workerTracePaths.push_back(workerCfg.tracePath);
    }
    const auto childMain = [&cells, workerCfg](int fd) {
      return campaignWorkerMain(fd, cells, workerCfg);
    };
    WorkerSlot slot;
    if (!spawnChildWithSocket(childMain, liveFds(), slot.proc, err)) return false;
    std::string fdErr;
    if (!setNonBlocking(slot.proc.fd, true, fdErr)) {
      killChildProc(slot.proc);
      err = fdErr;
      return false;
    }
    workers.push_back(std::move(slot));
    return true;
  };
  const auto liveWorkers = [&]() {
    int n = 0;
    for (const WorkerSlot& w : workers) n += w.proc.valid() ? 1 : 0;
    return n;
  };
  const auto teardown = [&]() {
    for (WorkerSlot& w : workers) {
      if (w.proc.valid()) killChildProc(w.proc);
    }
  };

  // A deterministically crashing cell must become an error, not a fork
  // loop: the budget is generous against real transient deaths (each one
  // costs a respawn) but bounded in the cell count and fleet size.
  const std::uint64_t deathBudget = static_cast<std::uint64_t>(workerCount) * 2 + 4;
  bool faultArmed = opts.faultKillCell >= 0;

  for (int i = 0; i < workerCount; ++i) {
    if (!spawnWorker()) {
      teardown();
      return false;
    }
  }

  ProgressLine progress;
  progress.enabled = opts.heartbeat;
  progress.campaign = spec.name;
  progress.shardCells = shardTotal;
  progress.t0 = t0;

  const auto sendLease = [&](WorkerSlot& w, int cellIndex) -> bool {
    Frame lease = makeFrame(FrameType::Lease);
    lease.body.set("cell", cellIndex);
    std::string sendErr;
    if (!writeFrame(w.proc.fd, encodeFrame(lease), sendErr)) return false;
    w.leasedCell = cellIndex;
    w.leaseSentAt = nowSec();
    ++out.leases;
    telemetry::counterAdd(kLeases);
    if (opts.onCell) {
      const std::size_t leaf = leafOf.at(cellIndex);
      opts.onCell(*shardCells[leaf], false);
    }
    return true;
  };

  const auto handleDeath = [&](WorkerSlot& w) {
    ++out.workerDeaths;
    telemetry::counterAdd(kDeaths);
    if (w.leasedCell >= 0) {
      queue.push_front(w.leasedCell);  // requeue: idempotent by construction
      w.leasedCell = -1;
      ++out.requeues;
      telemetry::counterAdd(kRequeues);
    }
    killChildProc(w.proc);  // already dead; reaps the zombie and closes the fd
  };

  std::string protocolErr;
  while (done < shardTotal && protocolErr.empty()) {
    // Lease to every idle live worker first.
    for (WorkerSlot& w : workers) {
      if (queue.empty()) break;
      if (!w.proc.valid() || w.leasedCell >= 0) continue;
      const int cellIndex = queue.front();
      queue.pop_front();
      if (!sendLease(w, cellIndex)) {
        queue.push_front(cellIndex);
        handleDeath(w);
      }
    }
    if (liveWorkers() == 0) {
      if (out.workerDeaths > deathBudget) {
        protocolErr = "worker death budget exhausted (" + std::to_string(out.workerDeaths) +
                      " deaths) — a cell is crashing its worker deterministically";
        break;
      }
      if (!spawnWorker()) {
        protocolErr = err;
        break;
      }
      continue;
    }

    std::vector<pollfd> pfds;
    std::vector<std::size_t> pfdSlot;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (!workers[i].proc.valid()) continue;
      pfds.push_back(pollfd{workers[i].proc.fd, POLLIN, 0});
      pfdSlot.push_back(i);
    }
    const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 200);
    if (ready < 0 && errno != EINTR) {
      protocolErr = "poll: " + std::string(std::strerror(errno));
      break;
    }

    for (std::size_t p = 0; p < pfds.size() && protocolErr.empty(); ++p) {
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WorkerSlot& w = workers[pfdSlot[p]];
      if (!w.proc.valid()) continue;

      // Drain the socket; EOF after the drain is a death.
      bool sawEof = false;
      char buf[65536];
      for (;;) {
        const ssize_t n = ::read(w.proc.fd, buf, sizeof buf);
        if (n > 0) {
          w.dec.feed(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) sawEof = true;
        if (n < 0 && errno == EINTR) continue;
        break;  // EOF, EAGAIN, or error
      }

      std::string payload;
      while (protocolErr.empty() && w.dec.next(payload)) {
        Frame frame;
        std::string decodeErr;
        if (!decodeFrame(payload, frame, decodeErr)) {
          protocolErr = "worker frame: " + decodeErr;
          break;
        }
        const int cellIndex = static_cast<int>(frame.body.numberAt("cell", -1.0));
        if (frame.type == FrameType::Heartbeat) {
          if (cellIndex == w.leasedCell) {
            telemetry::timerRecord(
                kLeaseRtt, static_cast<std::uint64_t>((nowSec() - w.leaseSentAt) * 1e9));
          }
          if (faultArmed && cellIndex == opts.faultKillCell) {
            // Fault injection: the worker just started this cell — kill it
            // mid-cell and let the normal EOF path requeue the lease.
            faultArmed = false;
            ::kill(w.proc.pid, SIGKILL);
          }
          continue;
        }
        if (frame.type != FrameType::Result) continue;
        const auto leafIt = leafOf.find(cellIndex);
        if (leafIt == leafOf.end() || cellIndex != w.leasedCell) {
          protocolErr = "worker returned unleased cell " + std::to_string(cellIndex);
          break;
        }
        CellRecord& rec = out.cells[leafIt->second];
        rec.failures = static_cast<int>(frame.body.numberAt("failures"));
        rec.delivered = static_cast<int>(frame.body.numberAt("delivered"));
        rec.valid = static_cast<int>(frame.body.numberAt("valid"));
        rec.invalid = static_cast<int>(frame.body.numberAt("invalid"));
        rec.wallSec = frame.body.numberAt("wall_sec");
        const Json* moments = frame.body.find("moments");
        MetricStats stats = moments ? momentsFromJson(*moments) : MetricStats{};
        recordDisplayMeans(rec, stats);
        const Json* probesJson = frame.body.find("probes");
        telemetry::ProbeState probes =
            probesJson ? telemetry::probesFromJson(*probesJson) : telemetry::ProbeState();
        if (storeWriter.isOpen()) {
          MetricMap tm;
          if (const Json* tmJson = frame.body.find("telemetry");
              tmJson != nullptr && tmJson->isObject()) {
            for (const auto& [name, value] : tmJson->members()) tm.set(name, value.asDouble());
          }
          std::string rowErr;
          if (!appendStoreRow(leafIt->second, rec, stats, tm, probes, rowErr)) {
            protocolErr = "cell " + std::to_string(cellIndex) + " store row: " + rowErr;
            break;
          }
        }
        foldLeaf(leafIt->second, std::move(stats), std::move(probes));
        w.leasedCell = -1;
        ++done;
        progress.emit(done, out.cachedCells(), queue.size(), liveWorkers(),
                      done == shardTotal);
        if (!queue.empty()) {
          const int next = queue.front();
          queue.pop_front();
          if (!sendLease(w, next)) {
            queue.push_front(next);
            handleDeath(w);
            break;
          }
        }
      }
      if (protocolErr.empty() && w.proc.valid() && (w.dec.bad() || sawEof)) {
        handleDeath(w);
        if (out.workerDeaths > deathBudget) {
          protocolErr = "worker death budget exhausted (" +
                        std::to_string(out.workerDeaths) +
                        " deaths) — a cell is crashing its worker deterministically";
        }
      }
    }
  }

  if (!protocolErr.empty()) {
    teardown();
    err = protocolErr;
    return false;
  }

  // Graceful drain: DONE to every live worker, then close and reap.
  for (WorkerSlot& w : workers) {
    if (!w.proc.valid()) continue;
    std::string sendErr;
    (void)writeFrame(w.proc.fd, encodeFrame(makeFrame(FrameType::Done)), sendErr);
    ::close(w.proc.fd);
    w.proc.fd = -1;
    int status = 0;
    // The worker is between frames, so DONE (or the EOF from our close)
    // ends it promptly; the deadline only guards against a wedged child.
    const double deadline = nowSec() + 10.0;
    while (!reapChild(w.proc, status)) {
      if (nowSec() > deadline) {
        killChildProc(w.proc);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  if (storeWriter.isOpen() && !storeWriter.finish(err)) return false;

  // Merge the per-worker trace dumps (written at DONE, which the drain
  // above waited for) into one Chrome trace: events concatenate verbatim —
  // each worker's events are already rebased within its own pid lane and
  // ts monotonicity is only checked per (pid, tid).  The coordinator runs
  // no simulation, so its own ring contributes nothing.
  if (tracingWorkers) {
    Json merged = Json::object();
    merged.set("displayTimeUnit", "ms");
    Json events = Json::array();
    for (const std::string& path : workerTracePaths) {
      Json workerTrace;
      std::string parseErr;
      if (!std::filesystem::exists(path) ||
          !Json::parseFile(path, workerTrace, parseErr)) {
        continue;  // worker died before dumping: merge what exists
      }
      if (const Json* list = workerTrace.find("traceEvents");
          list != nullptr && list->isArray()) {
        for (const Json& e : list->items()) events.push_back(e);
      }
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
    merged.set("traceEvents", std::move(events));
    std::ofstream f(opts.traceOut);
    f << merged.dump() << '\n';
    f.flush();
    if (!f.good()) {
      err = "cannot write merged trace \"" + opts.traceOut + "\"";
      return false;
    }
  }

  out.reduction = reducer.root();
  out.probes = reducer.rootProbes();
  out.wallSec = nowSec() - t0;
  return true;
}

}  // namespace mcs::campaign
