#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/reduce.h"
#include "sweep/expand.h"

/// The campaign coordinator: multi-process work-queue execution of a
/// sweep.  Expands the sweep once, forks N workers connected by
/// socketpairs, and leases cells one at a time — a worker that finishes
/// early simply asks for more by finishing, so skewed grids (one heavy
/// axis value) load-balance instead of starving behind a static shard
/// split.
///
/// Contracts (locked by tests/test_campaign.cpp):
///  - Every per-cell JSON is byte-identical to what the in-process
///    single-threaded runner writes (wall times aside): workers run the
///    same batch code, and per-cell results are thread- and
///    process-count invariant.
///  - Leases are idempotent: a cell is identified by its deterministic
///    expansion fingerprint, cell files are written atomically, and
///    re-running a cell reproduces the same bytes — so a lease lost to a
///    worker death is simply requeued.
///  - The campaign-wide reduction folds per-cell moment records through
///    a fixed-shape tree (campaign/reduce.h), so the aggregate is
///    bit-identical no matter which worker finished which cell first.
///
/// Worker death (socket EOF, from crash or kill) requeues the in-flight
/// lease and respawns a replacement, up to a death budget that turns a
/// deterministically crashing cell into a campaign error instead of a
/// fork loop.  Memory stays O(cells in flight): the coordinator keeps
/// per-cell counter records and moment summaries, never per-seed rows —
/// those live in the cell files, which report writers stream back in.
namespace mcs::campaign {

struct WorkQueueOptions {
  /// Worker process count; 0 = hardware_concurrency.
  int workers = 0;
  /// ThreadPool lanes inside each worker's batch (default 1: process
  /// parallelism replaces lane parallelism).
  int threadsPerWorker = 1;
  /// Shard of the cell grid to run; composes with --shard so a CI matrix
  /// entry can itself run a work queue.
  int shardIndex = 0;
  int shardCount = 1;
  /// Skip cells whose per-cell JSON already exists and matches (checked
  /// in the coordinator before anything is leased).
  bool resume = false;
  std::string outDir = ".";
  /// Progress heartbeat on stderr (cells done, queue depth, live
  /// workers, throughput, ETA).
  bool heartbeat = false;
  /// Fault-injection hook for tests/CI: SIGKILL the worker holding this
  /// cell's *first* lease right after it acknowledges, forcing the
  /// requeue path deterministically.  -1 = off.
  int faultKillCell = -1;
  /// Progress hook, called when a cell is leased (or resumed from cache).
  std::function<void(const SweepCell&, bool cached)> onCell;
  /// When non-empty, stream every finished cell into the columnar
  /// campaign store at this path (store/writer.h).  Rows land by slot
  /// (expansion-order position), so the finished file is byte-identical
  /// to the in-process runner's no matter which worker finished first.
  std::string storePath;
  /// Zero the wall_sec stats in store rows (count survives) — the store
  /// analogue of stripWallTimes, for byte-for-byte comparisons.
  bool storeStripWall = false;
  /// When non-empty (and tracing is armed), merge every worker's trace
  /// ring into one Chrome trace at this path, with pid = workerId + 1 and
  /// a process_name label per worker — one viewer lane per process.
  /// Workers dump per-process files next to it (`<traceOut>.workerN`); the
  /// coordinator concatenates them and deletes the intermediates.
  std::string traceOut;
};

/// What the coordinator retains per cell: identity plus batch counters —
/// O(1) per cell, never per-seed rows.
struct CellRecord {
  SweepCell cell;
  bool fromCache = false;
  int failures = 0;
  int delivered = 0;
  int valid = 0;
  int invalid = 0;
  double wallSec = 0.0;
  /// Display means lifted from the cell's moment record (the CLI table
  /// prints these without reloading the cell file).
  double slotsMean = 0.0;
  double decodeRateMean = 0.0;
  double wallMeanSec = 0.0;
};

struct WorkQueueCampaign {
  std::string name;
  std::string baseName;
  std::string description;
  int totalCells = 0;
  int shardIndex = 0;
  int shardCount = 1;
  /// This shard's cells in expansion order (report order), regardless of
  /// completion order.
  std::vector<CellRecord> cells;
  /// Tree-reduced campaign-wide per-metric statistics.
  MetricStats reduction;
  /// Tree-reduced campaign-wide probe aggregate (empty unless probes were
  /// armed); byte-equivalent to the in-process runner's merged block.
  telemetry::ProbeState probes;
  /// Peak reducer frontier observed (memory diagnostics/tests).
  std::size_t peakPendingNodes = 0;
  double wallSec = 0.0;
  std::uint64_t leases = 0;
  std::uint64_t requeues = 0;
  std::uint64_t workerDeaths = 0;

  [[nodiscard]] int failures() const noexcept {
    int f = 0;
    for (const CellRecord& c : cells) f += c.failures;
    return f;
  }
  [[nodiscard]] int cachedCells() const noexcept {
    int n = 0;
    for (const CellRecord& c : cells) n += c.fromCache ? 1 : 0;
    return n;
  }
};

/// Runs the campaign through the work queue.  Returns false on expansion
/// errors, protocol failures, or an exhausted worker-death budget;
/// per-seed failures inside cells do NOT fail the run (they are counted
/// in the records, like the in-process runner).
bool runCampaignWorkQueue(const SweepSpec& spec, const WorkQueueOptions& opts,
                          WorkQueueCampaign& out, std::string& err);

}  // namespace mcs::campaign
