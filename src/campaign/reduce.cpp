#include "campaign/reduce.h"

#include <algorithm>
#include <cassert>

#include "telemetry/telemetry.h"

namespace mcs::campaign {

namespace {

std::uint64_t nodeKey(std::size_t level, std::size_t idx) {
  return (static_cast<std::uint64_t>(level) << 48) | static_cast<std::uint64_t>(idx);
}

}  // namespace

void sortMetricStats(MetricStats& stats) {
  std::sort(stats.begin(), stats.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

MetricStats mergeMetricStats(const MetricStats& left, const MetricStats& right) {
  MetricStats out;
  out.reserve(std::max(left.size(), right.size()));
  std::size_t i = 0, j = 0;
  while (i < left.size() || j < right.size()) {
    if (j >= right.size() || (i < left.size() && left[i].first < right[j].first)) {
      out.push_back(left[i++]);
    } else if (i >= left.size() || right[j].first < left[i].first) {
      out.push_back(right[j++]);
    } else {
      static const telemetry::CounterId kSketchMerges =
          telemetry::counterId("store.sketch_merges");
      StreamingStats s = left[i].second;
      if (s.quantiles.sketchMode() || right[j].second.quantiles.sketchMode()) {
        telemetry::counterAdd(kSketchMerges);
      }
      s.merge(right[j].second);
      out.emplace_back(left[i].first, std::move(s));
      ++i;
      ++j;
    }
  }
  return out;
}

TreeReducer::TreeReducer(std::size_t leaves) : leaves_(leaves) {
  std::size_t size = leaves;
  levelSize_.push_back(size);
  while (size > 1) {
    size = (size + 1) / 2;
    levelSize_.push_back(size);
  }
}

void TreeReducer::addLeaf(std::size_t index, MetricStats stats, telemetry::ProbeState probes) {
  assert(index < leaves_);
  sortMetricStats(stats);
  ++received_;
  place(0, index, Node{std::move(stats), std::move(probes)});
}

void TreeReducer::place(std::size_t level, std::size_t idx, Node node) {
  for (;;) {
    if (levelSize_[level] <= 1) {
      root_ = std::move(node);
      return;
    }
    const std::size_t sibling = idx ^ 1;
    if (sibling >= levelSize_[level]) {
      // Lone tail node of an odd level: promotes unchanged.
      ++level;
      idx /= 2;
      continue;
    }
    const auto it = pending_.find(nodeKey(level, sibling));
    if (it == pending_.end()) {
      pending_.emplace(nodeKey(level, idx), std::move(node));
      return;
    }
    Node other = std::move(it->second);
    pending_.erase(it);
    // Children always merge left-into-right regardless of which arrived
    // first — this is the whole determinism argument.
    if (idx & 1) {
      node.stats = mergeMetricStats(other.stats, node.stats);
      other.probes.merge(node.probes);
      node.probes = std::move(other.probes);
    } else {
      node.stats = mergeMetricStats(node.stats, other.stats);
      node.probes.merge(other.probes);
    }
    ++level;
    idx /= 2;
  }
}

}  // namespace mcs::campaign
