#include "campaign/worker.h"

#include <filesystem>
#include <system_error>

#include "campaign/protocol.h"
#include "sweep/report.h"
#include "sweep/runner.h"
#include "telemetry/probes.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/framing.h"
#include "util/proc.h"

namespace mcs::campaign {

namespace {

const SweepCell* findCell(const std::vector<SweepCell>& cells, int index) {
  // Expansion assigns index = position; trust but verify, fall back to a
  // scan so a future reindexing scheme degrades to O(n), not to wrong
  // cells.
  if (index >= 0 && index < static_cast<int>(cells.size()) && cells[index].index == index) {
    return &cells[index];
  }
  for (const SweepCell& c : cells) {
    if (c.index == index) return &c;
  }
  return nullptr;
}

}  // namespace

int campaignWorkerMain(int fd, const std::vector<SweepCell>& cells, const WorkerConfig& cfg) {
  const SigPipeGuard sigpipe;  // a dying coordinator must surface as EPIPE
  static const telemetry::TimerId kCellTimer = telemetry::timerId("sweep.cell");
  // Trace dump on every exit path (DONE, EOF, protocol error): the
  // coordinator merges whatever per-worker files exist, so a worker that
  // died mid-campaign still contributes the events it recorded.
  const auto dumpTrace = [&cfg] {
    if (cfg.tracePath.empty() || !telemetry::traceEnabled()) return;
    std::string traceErr;
    (void)telemetry::writeTraceFile(cfg.tracePath, traceErr, cfg.workerId + 1,
                                    "worker " + std::to_string(cfg.workerId));
  };
  FrameDecoder dec;
  std::string payload, err;
  for (;;) {
    if (!readFrameBlocking(fd, dec, payload, err)) {
      dumpTrace();
      return err == "eof" ? 0 : 2;  // coordinator gone: quiet exit
    }
    Frame frame;
    if (!decodeFrame(payload, frame, err)) return 2;
    if (frame.type == FrameType::Done) {
      dumpTrace();
      return 0;
    }
    if (frame.type != FrameType::Lease) continue;  // ignore unexpected kinds

    const int index = static_cast<int>(frame.body.numberAt("cell", -1.0));
    const SweepCell* cell = findCell(cells, index);
    if (cell == nullptr) return 3;  // coordinator leased a cell we don't hold

    // Lease acknowledgement — the coordinator's liveness signal and the
    // campaign.lease_rtt sample.
    Frame ack = makeFrame(FrameType::Heartbeat);
    ack.body.set("cell", index);
    if (!writeFrame(fd, encodeFrame(ack), err)) return 0;

    // Run the cell exactly as the in-process runner would.
    CellResult res;
    res.cell = *cell;
    const bool withTelemetry = telemetry::enabled();
    telemetry::MetricsSnapshot before;
    if (withTelemetry) before = telemetry::snapshotMetrics();
    // Same reset/snapshot attribution as the in-process runner: this
    // worker runs cells serially, so the pair brackets exactly one cell.
    const bool withProbes = telemetry::probesEnabled();
    if (withProbes) telemetry::resetProbes();
    double cellWall = 0.0;
    {
      const double t0 = nowSec();
      const telemetry::PhaseTimer cellTimer(kCellTimer);
      res.batch = runScenarioBatch(cell->spec, cfg.threads);
      cellWall = nowSec() - t0;
    }
    if (withTelemetry) {
      recordCellTelemetry(telemetry::snapshotMetrics().diff(before), res.telemetry);
    }
    if (withProbes) res.probes = telemetry::snapshotProbes();

    // Atomic cell write *before* RESULT: once the coordinator sees the
    // RESULT, the complete cell file is guaranteed on disk.
    const std::string path = cellFilePath(cfg.outDir, cfg.campaign, cell->index);
    std::error_code ec;
    std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
    std::string writeErr;
    if (!writeCellFile(res, path, writeErr)) return 4;

    Frame result = makeFrame(FrameType::Result);
    result.body.set("cell", index);
    result.body.set("failures", res.batch.failures());
    result.body.set("delivered", res.batch.deliveredCount());
    result.body.set("valid", res.batch.validCount());
    result.body.set("invalid", res.batch.invalidCount());
    result.body.set("wall_sec", cellWall);
    result.body.set("moments", momentsToJson(cellMetricStats(res)));
    // Telemetry rides along so the coordinator's store rows match what
    // the in-process runner would have written for this cell.
    if (!res.telemetry.entries().empty()) {
      Json tm = Json::object();
      for (const auto& [name, value] : res.telemetry.entries()) tm.set(name, value);
      result.body.set("telemetry", std::move(tm));
    }
    // Probe payload rides the RESULT frame (lossless JSON round-trip), so
    // the coordinator's store rows and reduction match the in-process
    // runner's bytes.
    if (!res.probes.empty()) {
      result.body.set("probes", telemetry::probesToJson(res.probes));
    }
    if (!writeFrame(fd, encodeFrame(result), err)) return 0;
  }
}

}  // namespace mcs::campaign
