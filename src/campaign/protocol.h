#pragma once

#include <string>

#include "campaign/reduce.h"
#include "sweep/runner.h"
#include "util/json.h"

/// The coordinator <-> worker wire protocol: length-prefixed JSON frames
/// (util/framing.h) carrying one of four message kinds.
///
///   LEASE     coordinator -> worker   {"type": "lease", "cell": i}
///   HEARTBEAT worker -> coordinator   {"type": "heartbeat", "cell": i,
///                                      "queue_depth" echoed back in the
///                                      coordinator's progress line}
///   RESULT    worker -> coordinator   {"type": "result", "cell": i,
///                                      counters, "moments": {...}}
///   DONE      coordinator -> worker   {"type": "done"}  (drain + exit 0)
///
/// A LEASE names a cell by its sweep expansion index only — workers fork
/// from the coordinator *after* expansion, so both sides already hold the
/// identical cell vector and the frame stays tiny.  The HEARTBEAT is the
/// lease acknowledgement (sent before the batch runs; it feeds the
/// campaign.lease_rtt timer).  The RESULT carries the cell's per-metric
/// moment sums (count/mean/m2/min/max/sum per metric) so the coordinator
/// can fold the cell into the streaming tree reduction without reparsing
/// the cell file; the authoritative per-seed rows live in the atomically
/// written cell_<i>.json, which the worker flushes *before* sending
/// RESULT (a RESULT therefore guarantees a complete cell file on disk).
namespace mcs::campaign {

enum class FrameType { Lease, Heartbeat, Result, Done };

[[nodiscard]] const char* toString(FrameType t) noexcept;

struct Frame {
  FrameType type = FrameType::Done;
  /// The whole frame object ("type" plus payload fields).
  Json body = Json::object();
};

/// Builds a frame with "type" set; callers add payload fields to `body`.
[[nodiscard]] Frame makeFrame(FrameType t);

/// Serializes to the JSON bytes that go inside one wire frame.
[[nodiscard]] std::string encodeFrame(const Frame& f);

/// Parses frame bytes; false (with diagnostic) on malformed JSON or an
/// unknown "type".
[[nodiscard]] bool decodeFrame(const std::string& bytes, Frame& out, std::string& err);

/// Per-metric accumulator serialization for RESULT frames: each metric
/// as {"n", "mean", "m2", "min", "max", "sum"} — the full OnlineStats
/// state — plus "q", the streaming quantile state (exact sorted values
/// below the spill threshold, sketch buckets above).  JSON numbers use
/// shortest-round-trip formatting, so the coordinator-side merge is
/// bit-identical to merging the original accumulators in process.
/// Metric order is preserved (display order, NOT sorted): the store
/// writer binds its column schema to this order, so the coordinator and
/// the in-process runner must see the same sequence.
[[nodiscard]] Json momentsToJson(const MetricStats& stats);
[[nodiscard]] MetricStats momentsFromJson(const Json& j);

/// One cell's reduction leaf: cellStats(cell) from sweep/runner.h — the
/// exact per-seed accumulation CellResult::summaries() reports, in
/// display order (the reducer name-sorts on addLeaf).
[[nodiscard]] MetricStats cellMetricStats(const CellResult& cell);

}  // namespace mcs::campaign
