#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "telemetry/probes.h"
#include "util/sketch.h"

/// Streaming tree reduction of per-cell statistics — the campaign
/// coordinator's merge stage.
///
/// Workers finish cells in whatever order the work queue and the
/// machine's scheduler produce, but the campaign-wide aggregates must
/// not depend on that order: OnlineStats::merge is only
/// order-independent *up to floating-point rounding*, so a naive
/// fold-on-arrival would make the reduced means wobble in the last bits
/// from run to run.  The reducer instead fixes a binary tree over the
/// leaf indices (the same shape for a given leaf count, the pattern
/// GASNet-style collective reductions use) and folds a node only when
/// both children are present, always left-into-right-of — so the merged
/// result is a pure function of the leaf values, bit-for-bit, no matter
/// the arrival permutation (locked by tests/test_campaign.cpp).
///
/// Memory stays proportional to the tree frontier: leaves arriving
/// roughly in order keep O(log n) pending nodes; the worst adversarial
/// order (every other leaf first) peaks at O(n/2) node records of a few
/// summaries each — still nothing like buffering per-seed rows.
namespace mcs::campaign {

/// Per-metric statistics of one reduction node, name-sorted: moments
/// plus the mergeable quantile state (util/sketch.h).  Leaves are a
/// cell's per-seed stats; the root is the whole campaign's.  The sketch
/// half is merge-order invariant outright (integer bucket counts), so
/// the fixed tree shape below is only load-bearing for the moments —
/// but both ride it, and the root stays a pure function of the leaves.
using MetricStats = NamedStats;

class TreeReducer {
 public:
  /// A reducer over exactly `leaves` cells (0 is valid and yields an
  /// empty reduction).
  explicit TreeReducer(std::size_t leaves);

  /// Folds leaf `index`'s statistics in; call exactly once per leaf, in
  /// any order.  `stats` need not be sorted; metric-name union across
  /// leaves is fine (a metric missing from a leaf simply contributes no
  /// samples there).  `probes` (decode-attribution sketches + slot
  /// series, telemetry/probes.h) rides the same node merges; its folds
  /// commute outright, so the fixed tree shape is belt-and-braces there,
  /// but carrying it through the one reduction path keeps the campaign
  /// aggregate a single pure function of the leaves.
  void addLeaf(std::size_t index, MetricStats stats,
               telemetry::ProbeState probes = telemetry::ProbeState());

  /// True once every leaf has arrived.
  [[nodiscard]] bool complete() const noexcept { return received_ == leaves_; }

  /// Pending (partially merged) internal nodes — the memory frontier.
  [[nodiscard]] std::size_t pendingNodes() const noexcept { return pending_.size(); }

  /// The root aggregate.  Only meaningful when complete(); an incomplete
  /// reduction returns whatever has reached the root (empty until then).
  [[nodiscard]] const MetricStats& root() const noexcept { return root_.stats; }

  /// The root probe aggregate (empty unless leaves carried probes).
  [[nodiscard]] const telemetry::ProbeState& rootProbes() const noexcept {
    return root_.probes;
  }

 private:
  /// One reduction node: the per-metric statistics plus the probe payload
  /// riding the same merges.
  struct Node {
    MetricStats stats;
    telemetry::ProbeState probes;
  };

  void place(std::size_t level, std::size_t idx, Node node);

  std::size_t leaves_ = 0;
  std::size_t received_ = 0;
  /// levelSize_[l] = node count at level l (level 0 = leaves); the last
  /// level has exactly one node, the root.
  std::vector<std::size_t> levelSize_;
  std::unordered_map<std::uint64_t, Node> pending_;
  Node root_;
};

/// Merges two name-sorted MetricStats (left folded into right's values
/// via StreamingStats::merge, i.e. result = left.merge(right) per shared
/// metric); names only in one side pass through.  Sketch-mode quantile
/// merges are counted under the store.sketch_merges telemetry counter.
/// Exposed for tests.
[[nodiscard]] MetricStats mergeMetricStats(const MetricStats& left, const MetricStats& right);

/// Sorts by metric name (the canonical node form addLeaf establishes).
void sortMetricStats(MetricStats& stats);

}  // namespace mcs::campaign
