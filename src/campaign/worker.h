#pragma once

#include <string>
#include <vector>

#include "sweep/expand.h"

/// The campaign worker: the child side of the work-queue protocol.
/// Forked from the coordinator after sweep expansion, so it already
/// holds the full cell vector; it then loops — read LEASE, ack with
/// HEARTBEAT, run the cell's seed batch, atomically write the per-cell
/// JSON, stream the RESULT summary back — until a DONE frame (or EOF,
/// meaning the coordinator died) ends it.
///
/// Cell execution is byte-for-byte the in-process runner's: same
/// runScenarioBatch call, same telemetry attribution, same
/// writeCellFile — so every cell file a worker produces is identical to
/// what a single-threaded `runCampaign` would have written (wall times
/// aside), which is what makes leases idempotent and crash re-leasing
/// safe.
namespace mcs::campaign {

struct WorkerConfig {
  /// Campaign (sweep) name — names the cell-file directory.
  std::string campaign;
  std::string outDir = ".";
  /// ThreadPool lanes per cell batch (<= 1: sequential seeds).  Workers
  /// default to 1: process-level parallelism replaces lane parallelism.
  int threads = 1;
  /// Zero-based worker ordinal; tags trace events with pid = workerId + 1
  /// so merged traces keep one viewer lane per worker process.
  int workerId = 0;
  /// When non-empty (tracing armed), the worker dumps its trace ring to
  /// this file on DONE/EOF; the coordinator merges the per-worker files
  /// into the single --trace-out trace and deletes them.
  std::string tracePath;
};

/// Runs the worker protocol loop over `fd` until DONE or EOF.  Returns
/// the child exit code: 0 on a clean DONE/EOF, nonzero on protocol or
/// I/O errors (the coordinator sees any nonzero exit as a worker death
/// and requeues the in-flight lease).
int campaignWorkerMain(int fd, const std::vector<SweepCell>& cells, const WorkerConfig& cfg);

}  // namespace mcs::campaign
