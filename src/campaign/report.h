#pragma once

#include <string>

#include "campaign/coordinator.h"

/// Work-queue campaign report writers.  The coordinator never holds
/// per-seed rows, so these writers stream the authoritative per-cell
/// JSONs back from disk: the campaign report splices each cell file's
/// bytes verbatim into the "cells" array (memory O(one cell)), and the
/// CSV loads one cell at a time through loadCellResult.  Both outputs
/// are byte-identical to what writeCampaignReport / writeCampaignCsv
/// produce for the same cells in-process — wall-time fields aside —
/// which is what lets sweep_check gate a --workers run against a
/// baseline recorded in-process (locked by tests/test_campaign.cpp).
namespace mcs::campaign {

/// Writes `BENCH_sweep_<name>.json` into `dir` by splicing the per-cell
/// JSONs under `cellDir` (the campaign's outDir); reports the path in
/// `pathOut`.  Fails if any cell file is missing or unreadable — in
/// workers mode a RESULT guarantees the file, so a hole means the run
/// did not complete.
bool writeWorkQueueCampaignReport(const WorkQueueCampaign& campaign,
                                  const std::string& cellDir, const std::string& dir,
                                  std::string& pathOut, std::string& err);

/// Streams the long-form campaign CSV (same layout as writeCampaignCsv)
/// from the per-cell JSONs, one cell in memory at a time.
bool writeWorkQueueCampaignCsv(const WorkQueueCampaign& campaign, const std::string& cellDir,
                               const std::string& path, std::string& err);

}  // namespace mcs::campaign
