#pragma once

#include <span>
#include <vector>

#include "geom/vec2.h"
#include "sim/comm_graph.h"
#include "sim/tuning.h"
#include "sinr/params.h"
#include "util/ids.h"

/// A deployed network instance: node positions, the SINR environment, and
/// the derived model geometry (R_T, R_eps, r_c, ...).
///
/// The Network is "ground truth" owned by the simulation harness.  The
/// distributed protocols never read positions or the communication graph;
/// they only see what the Medium delivers.  Tests and experiment scripts
/// use the ground truth to validate invariants and compute D and Delta.
namespace mcs {

class Network {
 public:
  /// Builds the network.  `bounds` models the nodes' (possibly
  /// uncertain) knowledge of the SINR parameters; by default exact.
  Network(std::vector<Vec2> positions, SinrParams sinr, Tuning tuning = {},
          const SinrBounds* bounds = nullptr);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(positions_.size()); }
  [[nodiscard]] std::span<const Vec2> positions() const noexcept { return positions_; }
  [[nodiscard]] Vec2 position(NodeId v) const noexcept {
    return positions_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] const SinrParams& sinr() const noexcept { return sinr_; }
  [[nodiscard]] const SinrBounds& bounds() const noexcept { return bounds_; }
  [[nodiscard]] const Tuning& tuning() const noexcept { return tuning_; }

  /// Transmission range R_T (true value).
  [[nodiscard]] double rT() const noexcept { return rT_; }
  /// Communication radius R_eps = (1 - eps) R_T.
  [[nodiscard]] double rEps() const noexcept { return rEps_; }
  /// Separation radius R_{eps/2} = (1 - eps/2) R_T used by the cluster
  /// coloring and the backbone.
  [[nodiscard]] double rEpsHalf() const noexcept { return rEpsHalf_; }
  /// Cluster radius r_c (§5.1.1); every node is assigned a dominator
  /// within this distance.
  [[nodiscard]] double rc() const noexcept { return rc_; }

  /// The communication graph G at radius R_eps (ground truth).
  [[nodiscard]] const CommGraph& graph() const;

  /// d(u, v): ground-truth distance, for validation only.
  [[nodiscard]] double distance(NodeId u, NodeId v) const noexcept {
    return dist(position(u), position(v));
  }

  /// Maximum degree Delta of G.
  [[nodiscard]] int maxDegree() const { return graph().maxDegree(); }
  /// Diameter D of G (exact; largest component).
  [[nodiscard]] int diameter() const { return graph().diameterExact(); }

 private:
  std::vector<Vec2> positions_;
  SinrParams sinr_;
  SinrBounds bounds_;
  Tuning tuning_;
  double rT_ = 0.0;
  double rEps_ = 0.0;
  double rEpsHalf_ = 0.0;
  double rc_ = 0.0;
  mutable CommGraph graph_;  // built lazily (positions are immutable)
  mutable bool graphBuilt_ = false;
};

}  // namespace mcs
