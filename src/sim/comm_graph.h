#pragma once

#include <span>
#include <vector>

#include "geom/vec2.h"
#include "util/ids.h"

/// The communication graph G(V, E) (paper §2): nodes are connected iff
/// their distance is at most R_eps = (1 - eps) * R_T.  Stored in CSR form.
namespace mcs {

class CommGraph {
 public:
  CommGraph() = default;

  /// Builds the graph over `positions` with connection radius `radius`.
  CommGraph(std::span<const Vec2> positions, double radius);

  [[nodiscard]] int size() const noexcept { return n_; }
  [[nodiscard]] double radius() const noexcept { return radius_; }

  /// Neighbors of v (excluding v itself).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    const auto lo = offsets_[static_cast<std::size_t>(v)];
    const auto hi = offsets_[static_cast<std::size_t>(v) + 1];
    return {adjacency_.data() + lo, adjacency_.data() + hi};
  }

  [[nodiscard]] int degree(NodeId v) const noexcept {
    return static_cast<int>(offsets_[static_cast<std::size_t>(v) + 1] -
                            offsets_[static_cast<std::size_t>(v)]);
  }

  /// Maximum degree Delta.
  [[nodiscard]] int maxDegree() const noexcept { return maxDegree_; }

  [[nodiscard]] std::size_t edgeCount() const noexcept { return adjacency_.size() / 2; }

  /// Hop distances from `source` (-1 for unreachable nodes).
  [[nodiscard]] std::vector<int> bfs(NodeId source) const;

  /// True iff the graph is connected (n == 0 counts as connected).
  [[nodiscard]] bool connected() const;

  /// Number of connected components.
  [[nodiscard]] int componentCount() const;

  /// Exact diameter (max eccentricity) of the largest component.
  /// O(n * m): intended for n up to a few thousand.
  [[nodiscard]] int diameterExact() const;

  /// Double-sweep lower bound on the diameter; cheap and usually tight on
  /// geometric graphs.
  [[nodiscard]] int diameterEstimate() const;

 private:
  int n_ = 0;
  double radius_ = 0.0;
  int maxDegree_ = 0;
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> adjacency_;
};

}  // namespace mcs
