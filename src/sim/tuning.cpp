#include "sim/tuning.h"

// Tuning is header-only; anchor translation unit.
namespace mcs {}
