#pragma once

#include <cmath>

/// All protocol constants in one place.
///
/// The paper's constants (gamma = 12 mu^2 / kappa^2, omega_1 = 36,
/// gamma_2 = 8 omega_2 / kappa_1, c_1 = 24, ...) come from worst-case
/// union-bound analysis; run literally they blow every phase up to
/// thousands of rounds without changing any asymptotic behavior.  The
/// defaults below preserve every structural relationship between the
/// constants (ratios of thresholds to phase lengths, doubling schedules)
/// at practical magnitudes.  `paperStrict()` restores the printed values
/// for fidelity checks.  See DESIGN.md §3.3.
namespace mcs {

struct Tuning {
  // ---- Global scaling ------------------------------------------------
  /// Multiplies every Theta(ln n) round count.
  double lnFactor = 1.0;
  /// Hard cap on slots for any single protocol run; exceeding it is a bug
  /// (tests assert completion well below the cap).
  long safetyCapSlots = 30'000'000;

  // ---- Geometry (§5.1.1) ---------------------------------------------
  /// Communication-graph margin epsilon: R_eps = (1 - eps) R_T.
  double eps = 0.5;
  /// Cluster radius r_c as a fraction of R_T.  0 selects the paper's
  /// worst-case formula  min{t/(2t+2) * R_{eps/2}, eps R_T / 4}.
  /// The default keeps 2 r_c + R_eps <= R_{eps/2} (the Theorem-24
  /// requirement that adjacent clusters' dominators share an
  /// R_{eps/2}-ball) while staying large enough for sizeable clusters.
  double rcFactor = 0.12;

  // ---- Ruling set (§4) -----------------------------------------------
  /// Rounds = ceil(gammaRuling * lnFactor * ln n).
  double gammaRuling = 4.0;
  /// Transmission probability 1/(2 mu); muDensity stands for the density
  /// bound mu of the constant-density dominating set.
  double muDensity = 4.0;

  // ---- Dominating set (§5.1.1) -----------------------------------------
  /// Rounds per doubling epoch in the density-reduction start.
  int domEpochRounds = 3;
  /// Tail rounds at the capped probability = ceil(gammaDomTail * ln n).
  double gammaDomTail = 3.0;
  /// Association phase rounds = ceil(gammaAssoc * ln n).
  double gammaAssoc = 3.0;

  // ---- Cluster coloring (§5.1.2) ---------------------------------------
  /// Safety multiple over the geometric packing bound for phase count.
  int coloringPhaseSlack = 4;

  // ---- Cluster-size approximation (§5.2.1) -----------------------------
  /// lambda: contention target (paper: 1/2).
  double csaLambda = 0.5;
  /// Rounds per CSA phase = ceil(gamma1 * ln n) (paper gamma_1 ~ 10^3).
  double csaGamma1 = 8.0;
  /// Termination threshold = ceil(omega1 * ln n) messages (paper 36 ln n).
  double csaOmega1 = 1.0;
  /// Assumed per-transmission success probability kappa (Lemma 3) used to
  /// invert the message count into a size estimate.
  double csaKappaHat = 0.7;

  // ---- Reporters (§5.2.2) ----------------------------------------------
  /// fv = min(ceil(|Cv| / (c1 * ln n)), F)   (paper c_1 = 24).
  double c1 = 2.0;

  // ---- Intra-cluster aggregation (§6) -----------------------------------
  /// Phase length Gamma = ceil(gamma2 * ln n)  (paper gamma_2 = 8 w_2/k_1).
  double aggGamma2 = 6.0;
  /// Backoff threshold Omega = ceil(omega2 * ln n) messages on channel 1.
  double aggOmega2 = 1.0;
  /// Initial follower probability factor lambda (p_u = lambda f_v/|C_v|).
  double aggLambda = 0.5;
  /// Cap on phases (safety; Lemma 21 gives O(Delta/(F log n) + log log n)).
  int aggMaxPhases = 150;

  // ---- Inter-cluster aggregation (§6, [2] substitute) --------------------
  /// Per-round transmit probability of backbone dominators.
  double interTxProb = 0.2;
  /// Gossip/beacon runs for ceil(interSlack * (D_bb + gammaInter*ln n)) rounds.
  double gammaInter = 2.0;
  double interSlack = 3.0;
  /// Convergecast window per backbone level = ceil(interLevelWindow * ln n).
  double interLevelWindow = 2.0;

  /// ceil(gamma * lnFactor * ln(max(n,2))), at least `atLeast`.
  [[nodiscard]] int lnRounds(double gamma, int n, int atLeast = 1) const noexcept {
    const double lnn = std::log(static_cast<double>(n < 2 ? 2 : n));
    const double r = std::ceil(gamma * lnFactor * lnn);
    return r < atLeast ? atLeast : static_cast<int>(r);
  }

  /// The constants as printed in the paper (very slow; fidelity runs only).
  [[nodiscard]] static Tuning paperStrict() noexcept {
    Tuning t;
    t.rcFactor = 0.0;  // paper's worst-case r_c formula
    t.muDensity = 8.0;
    t.gammaRuling = 48.0;  // gamma = 12 mu^2 / kappa^2 with kappa ~ mu/2...
    t.csaGamma1 = 288.0;   // gamma_1 = 2 * omega_1 * 2/(kappa lambda), kappa ~ 0.5
    t.csaOmega1 = 36.0;
    t.c1 = 24.0;
    t.aggGamma2 = 768.0;  // gamma_2 = 8 omega_2 / kappa_1, omega_2 = 96/kappa_1
    t.aggOmega2 = 96.0;
    t.safetyCapSlots = 400'000'000;
    return t;
  }
};

}  // namespace mcs
