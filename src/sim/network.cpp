#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace mcs {

Network::Network(std::vector<Vec2> positions, SinrParams sinr, Tuning tuning,
                 const SinrBounds* bounds)
    : positions_(std::move(positions)),
      sinr_(sinr),
      bounds_(bounds ? *bounds : SinrBounds::exact(sinr)),
      tuning_(tuning) {
  assert(sinr_.valid());
  rT_ = sinr_.transmissionRange();
  rEps_ = (1.0 - tuning_.eps) * rT_;
  rEpsHalf_ = (1.0 - tuning_.eps / 2.0) * rT_;
  if (tuning_.rcFactor > 0.0) {
    rc_ = tuning_.rcFactor * rT_;
  } else {
    // Paper §5.1.1: r_c = min{ t/(2t+2) * R_{eps/2}, eps R_T / 4 } with
    // t the Lemma-2 separation constant.
    const double t = sinr_.lemma2Factor();
    rc_ = std::min(t / (2.0 * t + 2.0) * rEpsHalf_, tuning_.eps * rT_ / 4.0);
  }
}

const CommGraph& Network::graph() const {
  if (!graphBuilt_) {
    graph_ = CommGraph(positions_, rEps_);
    graphBuilt_ = true;
  }
  return graph_;
}

}  // namespace mcs
