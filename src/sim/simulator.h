#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/message.h"
#include "sim/network.h"
#include "sinr/medium.h"
#include "util/rng.h"

/// Slot-synchronous execution engine.
///
/// A protocol advances the simulation one slot at a time: it supplies an
/// intent for every node, the Medium resolves all channels under SINR,
/// and the protocol observes each listener's Reception.  All protocol
/// randomness must come from `rng(v)` so runs are reproducible.  The
/// Medium's fading layer (when enabled via SinrParams::fading) is keyed
/// by a dedicated fork of the root Rng (stream 0), so impaired runs are
/// just as reproducible per seed.
namespace mcs {

class Simulator {
 public:
  /// `numChannels` is F; `seed` determines every random choice.
  /// `numThreads` > 1 parallelizes the Medium's per-listener loop over a
  /// persistent thread pool; slot results are identical either way.
  Simulator(const Network& net, int numChannels, std::uint64_t seed, int numThreads = 1);

  /// Runs one slot.  `intentOf(NodeId) -> Intent` is called for every
  /// node; `onReception(NodeId, const Reception&)` for every listener.
  template <class IntentFn, class RecvFn>
  void step(IntentFn&& intentOf, RecvFn&& onReception) {
    const int n = net_->size();
    for (NodeId v = 0; v < n; ++v) {
      intents_[static_cast<std::size_t>(v)] = intentOf(v);
    }
    medium_.resolveSlot(net_->positions(), intents_, receptions_);
    for (NodeId v = 0; v < n; ++v) {
      if (intents_[static_cast<std::size_t>(v)].action == Action::Listen) {
        onReception(v, receptions_[static_cast<std::size_t>(v)]);
      }
    }
    ++slots_;
    if (slots_ > static_cast<std::uint64_t>(net_->tuning().safetyCapSlots)) {
      throw std::runtime_error("Simulator: safety slot cap exceeded (protocol stuck?)");
    }
  }

  [[nodiscard]] const Network& network() const noexcept { return *net_; }
  [[nodiscard]] int numChannels() const noexcept { return medium_.numChannels(); }
  [[nodiscard]] std::uint64_t slots() const noexcept { return slots_; }
  [[nodiscard]] const MediumStats& mediumStats() const noexcept { return medium_.stats(); }

  /// Per-node deterministic random stream.
  [[nodiscard]] Rng& rng(NodeId v) noexcept { return rngs_[static_cast<std::size_t>(v)]; }
  /// Simulation-wide stream (harness-level choices, e.g. channel hashes).
  [[nodiscard]] Rng& rootRng() noexcept { return root_; }

 private:
  const Network* net_;
  Medium medium_;
  Rng root_;
  std::vector<Rng> rngs_;
  std::vector<Intent> intents_;
  std::vector<Reception> receptions_;
  std::uint64_t slots_ = 0;
};

}  // namespace mcs
