#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mobility/mobility.h"
#include "sim/message.h"
#include "sim/network.h"
#include "sinr/medium.h"
#include "telemetry/probes.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/rng.h"

/// Slot-synchronous execution engine.
///
/// A protocol advances the simulation one slot at a time: it supplies an
/// intent for every node, the Medium resolves all channels under SINR,
/// and the protocol observes each listener's Reception.  All protocol
/// randomness must come from `rng(v)` so runs are reproducible.  The
/// Medium's fading layer (when enabled via SinrParams::fading) is keyed
/// by a dedicated fork of the root Rng (stream 0), so impaired runs are
/// just as reproducible per seed.
///
/// Topology dynamics: attachDynamics() arms a per-slot hook that advances
/// a mobility model and a churn process (mobility/mobility.h) before the
/// intents of each slot are collected.  Dynamic runs resolve against the
/// Simulator's own drifting position buffer; nodes whose churn state is
/// "departed" are forced to Idle and their protocol callbacks are
/// skipped, so protocol state freezes until they re-arrive.  Without
/// dynamics nothing changes: intents, positions, and every RNG stream
/// are bit-identical to the pre-mobility engine.
namespace mcs {

class Simulator {
 public:
  /// `numChannels` is F; `seed` determines every random choice.
  /// `numThreads` > 1 parallelizes the Medium's per-listener loop over a
  /// persistent thread pool; slot results are identical either way.
  Simulator(const Network& net, int numChannels, std::uint64_t seed, int numThreads = 1);

  /// Arms per-slot topology dynamics (no-op topology params are rejected
  /// by the caller: check TopologyParams::dynamic() first).  Keys both
  /// processes off dedicated root-Rng forks, so attaching never perturbs
  /// the per-node or fading streams.
  void attachDynamics(const TopologyParams& params);

  /// Runs one slot.  `intentOf(NodeId) -> Intent` is called for every
  /// node; `onReception(NodeId, const Reception&)` for every listener.
  template <class IntentFn, class RecvFn>
  void step(IntentFn&& intentOf, RecvFn&& onReception) {
    // One "slot" span per step (arg = slot ordinal) when tracing is on;
    // a disarmed TraceScope costs one relaxed load.
    static const telemetry::TraceNameId kSlotSpan = telemetry::traceName("slot");
    const telemetry::TraceScope slotSpan(kSlotSpan, static_cast<std::int64_t>(slots_));
    const int n = net_->size();
    if (dyn_) dyn_->advance(slots_, positions_);
    for (NodeId v = 0; v < n; ++v) {
      intents_[static_cast<std::size_t>(v)] =
          (dyn_ && !dyn_->alive(v)) ? Intent::idle() : intentOf(v);
    }
    medium_.resolveSlot(positions(), intents_, receptions_);
    for (NodeId v = 0; v < n; ++v) {
      if (intents_[static_cast<std::size_t>(v)].action == Action::Listen) {
        onReception(v, receptions_[static_cast<std::size_t>(v)]);
      }
    }
    // Optional protocol progress probe (telemetry/probes.h): sampled after
    // the reception callbacks so the protocol's state reflects this slot.
    // Write-only — the probe observes, it never feeds back into the run.
    if (progressProbe_ && telemetry::probesEnabled()) {
      std::uint64_t num = 0, den = 0;
      if (progressProbe_(num, den)) telemetry::probeProgress(slots_, num, den);
    }
    ++slots_;
    if (slots_ > static_cast<std::uint64_t>(net_->tuning().safetyCapSlots)) {
      throw std::runtime_error("Simulator: safety slot cap exceeded (protocol stuck?)");
    }
  }

  [[nodiscard]] const Network& network() const noexcept { return *net_; }
  [[nodiscard]] int numChannels() const noexcept { return medium_.numChannels(); }
  [[nodiscard]] std::uint64_t slots() const noexcept { return slots_; }
  [[nodiscard]] const MediumStats& mediumStats() const noexcept { return medium_.stats(); }

  /// True when topology dynamics are attached.
  [[nodiscard]] bool dynamic() const noexcept { return dyn_ != nullptr; }
  /// The attached dynamics (nullptr when static).
  [[nodiscard]] const TopologyDynamics* dynamics() const noexcept { return dyn_.get(); }
  /// Current node positions: the drifting buffer when dynamic, the
  /// Network's immutable ground truth otherwise.
  [[nodiscard]] std::span<const Vec2> positions() const noexcept {
    return dyn_ ? std::span<const Vec2>(positions_) : net_->positions();
  }
  /// Churn state (always alive when static).
  [[nodiscard]] bool alive(NodeId v) const noexcept { return !dyn_ || dyn_->alive(v); }
  [[nodiscard]] int aliveCount() const noexcept {
    return dyn_ ? dyn_->aliveCount() : net_->size();
  }
  /// Takes the dynamics' final drift sample (no-op when static); call
  /// once after the workload finishes, before reading dynamics()->stats().
  void finalizeDynamics();

  /// Installs (or clears, with an empty function) the protocol progress
  /// probe: called once per slot when probes are armed, after the
  /// reception callbacks.  The callback fills num/den (e.g. nodes colored
  /// / nodes total) and returns whether the sample is meaningful; samples
  /// land in the SlotSeries as a per-window progress fraction.  Workload
  /// runners install this around their run and clear it before returning.
  void setProgressProbe(std::function<bool(std::uint64_t&, std::uint64_t&)> probe) {
    progressProbe_ = std::move(probe);
  }

  /// Per-node deterministic random stream.
  [[nodiscard]] Rng& rng(NodeId v) noexcept { return rngs_[static_cast<std::size_t>(v)]; }
  /// Simulation-wide stream (harness-level choices, e.g. channel hashes).
  [[nodiscard]] Rng& rootRng() noexcept { return root_; }

 private:
  const Network* net_;
  Medium medium_;
  Rng root_;
  std::vector<Rng> rngs_;
  std::vector<Intent> intents_;
  std::vector<Reception> receptions_;
  std::unique_ptr<TopologyDynamics> dyn_;
  std::vector<Vec2> positions_;  ///< Mutable copy, populated iff dynamic.
  std::function<bool(std::uint64_t&, std::uint64_t&)> progressProbe_;
  std::uint64_t slots_ = 0;
};

}  // namespace mcs
