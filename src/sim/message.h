#pragma once

#include <cstdint>

#include "util/ids.h"

/// Messages and per-slot intents exchanged through the simulated medium.
namespace mcs {

/// All message kinds used by the protocols in this library.  A real radio
/// would carry a few header bytes; here the enum + three payload words
/// model a single O(log n)-bit packet, as the paper assumes.
enum class MsgType : std::uint8_t {
  None = 0,
  // Ruling set (§4).
  Hello,
  Ack,
  In,
  // Dominating set association (§5.1.1).
  Announce,
  // Cluster-size approximation (§5.2.1).
  CsaProbe,
  CsaTerminate,
  CsaEstimate,
  // Intra-cluster aggregation (§6).
  Data,
  DataAck,
  Backoff,
  TreeUp,
  TreeUpAck,
  // Inter-cluster aggregation on the backbone (§6, [2] substitute).
  Beacon,
  InterUp,
  InterUpAck,
  InterDown,
  // Coloring (§7).
  IdReport,
  IdReportAck,
  SubtreeCount,
  ColorRange,
  AssignColor,
};

/// A fixed-size packet.  `a`, `b` are generic integer payload words and
/// `x` a value payload (the aggregate).  Interpretation is per MsgType.
struct Message {
  MsgType type = MsgType::None;
  NodeId src = kNoNode;
  NodeId dst = kNoNode;  // kNoNode = broadcast within decoding range
  std::int64_t a = 0;
  std::int64_t b = 0;
  double x = 0.0;
};

/// What a node does in one slot.
enum class Action : std::uint8_t { Idle = 0, Listen, Transmit };

/// A node's declared behavior for one slot: channel + action (+ message
/// when transmitting).  Nodes with Action::Idle touch no channel.
struct Intent {
  Action action = Action::Idle;
  ChannelId channel = kNoChannel;
  Message msg{};

  [[nodiscard]] static Intent idle() noexcept { return {}; }
  [[nodiscard]] static Intent listen(ChannelId c) noexcept {
    return {Action::Listen, c, {}};
  }
  [[nodiscard]] static Intent transmit(ChannelId c, const Message& m) noexcept {
    return {Action::Transmit, c, m};
  }
};

/// What a listening node observes in one slot.
struct Reception {
  /// True iff a message was decoded (SINR condition (1) held for the
  /// strongest same-channel transmitter).
  bool received = false;
  Message msg{};
  /// SINR of the decoded message (valid iff received).
  double sinr = 0.0;
  /// Received signal strength of the decoded message (valid iff received).
  double signalPower = 0.0;
  /// Total received power from ALL same-channel transmitters (carrier
  /// sense; available to every listener, decode or not).  Excludes noise.
  double totalPower = 0.0;
  /// Distance estimate for the decoded sender via RSSI inversion
  /// (valid iff received).
  double senderDistance = 0.0;

  /// Sensed interference as used by Definition 4: everything on the
  /// channel except the decoded signal.
  [[nodiscard]] double interference() const noexcept {
    return received ? totalPower - signalPower : totalPower;
  }
};

}  // namespace mcs
