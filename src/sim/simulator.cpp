#include "sim/simulator.h"

namespace mcs {

Simulator::Simulator(const Network& net, int numChannels, std::uint64_t seed, int numThreads)
    : net_(&net), medium_(net.sinr(), numChannels, numThreads), root_(seed) {
  const auto n = static_cast<std::size_t>(net.size());
  rngs_.reserve(n);
  // Stream layout of the root fork space: 0 is the fading layer, 1..n are
  // the per-node streams (scenario-level value streams use 2^63; see
  // scenario/runner.h).
  for (std::size_t v = 0; v < n; ++v) rngs_.push_back(root_.fork(v + 1));
  medium_.seedFading(root_.fork(0)());
  intents_.resize(n);
  receptions_.resize(n);
}

}  // namespace mcs
