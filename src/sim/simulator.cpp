#include "sim/simulator.h"

namespace mcs {

Simulator::Simulator(const Network& net, int numChannels, std::uint64_t seed, int numThreads)
    : net_(&net), medium_(net.sinr(), numChannels, numThreads), root_(seed) {
  const auto n = static_cast<std::size_t>(net.size());
  rngs_.reserve(n);
  for (std::size_t v = 0; v < n; ++v) rngs_.push_back(root_.fork(v + 1));
  intents_.resize(n);
  receptions_.resize(n);
}

}  // namespace mcs
