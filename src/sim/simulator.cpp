#include "sim/simulator.h"

namespace mcs {

Simulator::Simulator(const Network& net, int numChannels, std::uint64_t seed, int numThreads)
    : net_(&net), medium_(net.sinr(), numChannels, numThreads), root_(seed) {
  const auto n = static_cast<std::size_t>(net.size());
  rngs_.reserve(n);
  // Stream layout of the root fork space: 0 is the fading layer, 1..n are
  // the per-node streams, 2^62+1 / 2^62+2 the mobility/churn keys
  // (mobility/mobility.h), and scenario-level value streams use 2^63
  // (scenario/runner.h).
  for (std::size_t v = 0; v < n; ++v) rngs_.push_back(root_.fork(v + 1));
  medium_.seedFading(root_.fork(0)());
  intents_.resize(n);
  receptions_.resize(n);
}

void Simulator::attachDynamics(const TopologyParams& params) {
  const std::span<const Vec2> initial = net_->positions();
  positions_.assign(initial.begin(), initial.end());
  // fork() is const on the root stream, so keying the dynamics consumes
  // no root draws: the per-node and fading streams are untouched.
  Rng mobilityRng = root_.fork(kMobilityStream);
  Rng churnRng = root_.fork(kChurnStream);
  dyn_ = std::make_unique<TopologyDynamics>(params, initial, net_->rEps(), mobilityRng(),
                                            churnRng());
  // Drifting positions unlock the Medium's incremental NearFar path.
  medium_.setDynamicPositions(true);
}

void Simulator::finalizeDynamics() {
  if (dyn_) dyn_->finalize(positions_);
}

}  // namespace mcs
