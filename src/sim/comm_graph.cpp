#include "sim/comm_graph.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "geom/grid_index.h"

namespace mcs {

CommGraph::CommGraph(std::span<const Vec2> positions, double radius)
    : n_(static_cast<int>(positions.size())), radius_(radius) {
  assert(radius > 0.0);
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  if (n_ == 0) return;

  const GridIndex grid(positions, radius);
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n_));
  std::vector<NodeId> hits;
  for (NodeId v = 0; v < n_; ++v) {
    grid.queryBall(positions[static_cast<std::size_t>(v)], radius, hits);
    for (const NodeId u : hits) {
      if (u != v) adj[static_cast<std::size_t>(v)].push_back(u);
    }
    std::sort(adj[static_cast<std::size_t>(v)].begin(), adj[static_cast<std::size_t>(v)].end());
  }
  std::size_t total = 0;
  for (NodeId v = 0; v < n_; ++v) {
    total += adj[static_cast<std::size_t>(v)].size();
    offsets_[static_cast<std::size_t>(v) + 1] = total;
    maxDegree_ = std::max(maxDegree_, static_cast<int>(adj[static_cast<std::size_t>(v)].size()));
  }
  adjacency_.reserve(total);
  for (NodeId v = 0; v < n_; ++v) {
    adjacency_.insert(adjacency_.end(), adj[static_cast<std::size_t>(v)].begin(),
                      adj[static_cast<std::size_t>(v)].end());
  }
}

std::vector<int> CommGraph::bfs(NodeId source) const {
  std::vector<int> depth(static_cast<std::size_t>(n_), -1);
  if (n_ == 0) return depth;
  std::queue<NodeId> q;
  depth[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const NodeId u : neighbors(v)) {
      if (depth[static_cast<std::size_t>(u)] < 0) {
        depth[static_cast<std::size_t>(u)] = depth[static_cast<std::size_t>(v)] + 1;
        q.push(u);
      }
    }
  }
  return depth;
}

bool CommGraph::connected() const { return componentCount() <= 1; }

int CommGraph::componentCount() const {
  std::vector<char> seen(static_cast<std::size_t>(n_), 0);
  int components = 0;
  for (NodeId s = 0; s < n_; ++s) {
    if (seen[static_cast<std::size_t>(s)]) continue;
    ++components;
    std::queue<NodeId> q;
    q.push(s);
    seen[static_cast<std::size_t>(s)] = 1;
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (const NodeId u : neighbors(v)) {
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = 1;
          q.push(u);
        }
      }
    }
  }
  return components;
}

int CommGraph::diameterExact() const {
  int best = 0;
  for (NodeId v = 0; v < n_; ++v) {
    const std::vector<int> depth = bfs(v);
    for (const int d : depth) best = std::max(best, d);
  }
  return best;
}

int CommGraph::diameterEstimate() const {
  if (n_ == 0) return 0;
  // Sweep 1: farthest node from node 0 within its component.
  std::vector<int> depth = bfs(0);
  NodeId far = 0;
  for (NodeId v = 0; v < n_; ++v) {
    if (depth[static_cast<std::size_t>(v)] > depth[static_cast<std::size_t>(far)]) far = v;
  }
  // Sweep 2: eccentricity of that node.
  depth = bfs(far);
  int best = 0;
  for (const int d : depth) best = std::max(best, d);
  return best;
}

}  // namespace mcs
