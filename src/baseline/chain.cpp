#include "baseline/chain.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "sim/simulator.h"

namespace mcs {

double chainBetaThreshold(double alpha) noexcept { return std::pow(2.0, 1.0 / alpha); }

ChainSlotStats chainConcurrency(const Network& net, int numChannels, int trials,
                                std::uint64_t seed) {
  ChainSlotStats stats;
  stats.trials = trials;
  Simulator sim(net, numChannels, seed);
  const int n = net.size();

  long totalSuccesses = 0;
  long totalDescending = 0;
  std::set<NodeId> descendingSenders;
  for (int t = 0; t < trials; ++t) {
    std::vector<char> tx(static_cast<std::size_t>(n), 0);
    int successes = 0;
    sim.step(
        [&](NodeId v) -> Intent {
          const auto c = static_cast<ChannelId>(v % numChannels);
          if (sim.rng(v).bernoulli(0.5)) {
            tx[static_cast<std::size_t>(v)] = 1;
            Message m;
            m.type = MsgType::Data;
            m.src = v;
            return Intent::transmit(c, m);
          }
          return Intent::listen(c);
        },
        [&](NodeId v, const Reception& r) {
          if (!r.received) return;
          ++successes;
          if (net.position(v).x < net.position(r.msg.src).x) {
            descendingSenders.insert(r.msg.src);
          }
        });
    const int descending = static_cast<int>(descendingSenders.size());
    descendingSenders.clear();
    totalSuccesses += successes;
    totalDescending += descending;
    stats.maxConcurrentSuccesses = std::max(stats.maxConcurrentSuccesses, successes);
    stats.maxDescendingSuccesses = std::max(stats.maxDescendingSuccesses, descending);
  }
  if (trials > 0) {
    stats.meanSuccesses = static_cast<double>(totalSuccesses) / trials;
    stats.meanDescendingSuccesses = static_cast<double>(totalDescending) / trials;
  }
  return stats;
}

}  // namespace mcs
