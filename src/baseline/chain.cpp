#include "baseline/chain.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "sim/simulator.h"

namespace mcs {

double chainBetaThreshold(double alpha) noexcept { return std::pow(2.0, 1.0 / alpha); }

ChainSlotStats chainConcurrency(const Network& net, int numChannels, int trials,
                                std::uint64_t seed) {
  Simulator sim(net, numChannels, seed);
  return chainConcurrency(sim, trials);
}

ChainSlotStats chainConcurrency(Simulator& sim, int trials) {
  ChainSlotStats stats;
  stats.trials = trials;
  const int numChannels = sim.numChannels();

  long totalSuccesses = 0;
  long totalDescending = 0;
  std::set<NodeId> descendingSenders;
  for (int t = 0; t < trials; ++t) {
    int successes = 0;
    sim.step(
        [&](NodeId v) -> Intent {
          const auto c = static_cast<ChannelId>(v % numChannels);
          if (sim.rng(v).bernoulli(0.5)) {
            Message m;
            m.type = MsgType::Data;
            m.src = v;
            return Intent::transmit(c, m);
          }
          return Intent::listen(c);
        },
        [&](NodeId v, const Reception& r) {
          if (!r.received) return;
          ++successes;
          // Current positions: under mobility the descending direction is
          // judged where the nodes are, not where they started.
          const std::span<const Vec2> pos = sim.positions();
          if (pos[static_cast<std::size_t>(v)].x < pos[static_cast<std::size_t>(r.msg.src)].x) {
            descendingSenders.insert(r.msg.src);
          }
        });
    const int descending = static_cast<int>(descendingSenders.size());
    descendingSenders.clear();
    totalSuccesses += successes;
    totalDescending += descending;
    stats.maxConcurrentSuccesses = std::max(stats.maxConcurrentSuccesses, successes);
    stats.maxDescendingSuccesses = std::max(stats.maxDescendingSuccesses, descending);
  }
  if (trials > 0) {
    stats.meanSuccesses = static_cast<double>(totalSuccesses) / trials;
    stats.meanDescendingSuccesses = static_cast<double>(totalDescending) / trials;
  }
  return stats;
}

}  // namespace mcs
