#include "baseline/aloha_agg.h"

#include <algorithm>
#include <cmath>

namespace mcs {

AlohaUplinkResult alohaClusterUplink(Simulator& sim, const Clustering& cl,
                                     const TdmaSchedule& tdma,
                                     std::span<const double> values,
                                     std::span<const double> sizeEstimate, AggKind kind) {
  const Network& net = sim.network();
  const Tuning& tun = net.tuning();
  const int n = net.size();

  AlohaUplinkResult out;
  out.clusterValue.assign(static_cast<std::size_t>(n), aggIdentity(kind));
  for (const NodeId d : cl.dominators) {
    out.clusterValue[static_cast<std::size_t>(d)] = values[static_cast<std::size_t>(d)];
  }

  std::vector<char> pending(static_cast<std::size_t>(n), 0);
  std::vector<char> deliveredOnce(static_cast<std::size_t>(n), 0);
  std::vector<double> prob(static_cast<std::size_t>(n), 0.0);
  int undone = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (!cl.isDominator[vi] && cl.dominatorOf[vi] != kNoNode) {
      pending[vi] = 1;
      prob[vi] = std::min(0.5, tun.aggLambda / std::max(1.0, sizeEstimate[vi]));
      ++undone;
    }
  }

  // Doubling schedule without the dominator feedback channel: probability
  // doubles every Gamma rounds unless the dominator signals backoff, same
  // notify-round pattern as the main algorithm but on a single channel.
  const int gamma2 = tun.lnRounds(tun.aggGamma2, n, 4);
  const int phaseLen = gamma2 + 1;
  const int omega2 = std::max(2, tun.lnRounds(tun.aggOmega2, n));

  std::vector<int> activeRounds(static_cast<std::size_t>(n), 0);
  std::vector<int> domCount(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> pendingAck(static_cast<std::size_t>(n), kNoNode);
  std::vector<char> sent(static_cast<std::size_t>(n), 0);
  std::vector<char> gotBackoff(static_cast<std::size_t>(n), 0);

  const long maxRounds =
      static_cast<long>(tun.aggMaxPhases) * phaseLen * std::max(1, tdma.period);
  long round = 0;
  while (undone > 0 && round < maxRounds) {
    std::fill(pendingAck.begin(), pendingAck.end(), kNoNode);
    std::fill(sent.begin(), sent.end(), 0);
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!tdma.active(v, round)) return Intent::idle();
          const int pos = activeRounds[vi] % phaseLen;
          if (pos == gamma2) {  // notify round
            if (cl.isDominator[vi]) {
              const bool backoff = domCount[vi] >= omega2;
              domCount[vi] = 0;
              if (backoff) {
                Message m;
                m.type = MsgType::Backoff;
                m.src = v;
                return Intent::transmit(0, m);
              }
              return Intent::idle();
            }
            return pending[vi] ? Intent::listen(0) : Intent::idle();
          }
          if (pending[vi] && sim.rng(v).bernoulli(prob[vi])) {
            sent[vi] = 1;
            Message m;
            m.type = MsgType::Data;
            m.src = v;
            m.a = cl.dominatorOf[vi];
            m.x = values[static_cast<std::size_t>(v)];
            return Intent::transmit(0, m);
          }
          if (cl.isDominator[vi]) return Intent::listen(0);
          return Intent::idle();
        },
        [&](NodeId v, const Reception& r) {
          const auto vi = static_cast<std::size_t>(v);
          if (!r.received) return;
          const int pos = activeRounds[vi] % phaseLen;
          if (pos == gamma2) {
            if (r.msg.type == MsgType::Backoff && r.msg.src == cl.dominatorOf[vi]) {
              gotBackoff[vi] = 1;
            }
            return;
          }
          if (r.msg.type == MsgType::Data && cl.isDominator[vi] && r.msg.a == v) {
            const auto src = static_cast<std::size_t>(r.msg.src);
            if (!deliveredOnce[src]) {
              deliveredOnce[src] = 1;
              out.clusterValue[vi] = aggCombine(kind, out.clusterValue[vi], r.msg.x);
            }
            pendingAck[vi] = r.msg.src;
            ++domCount[vi];
          }
        });
    ++out.slots;

    // Ack slot.
    sim.step(
        [&](NodeId v) -> Intent {
          const auto vi = static_cast<std::size_t>(v);
          if (!tdma.active(v, round)) return Intent::idle();
          if (activeRounds[vi] % phaseLen == gamma2) return Intent::idle();
          if (pendingAck[vi] != kNoNode) {
            Message m;
            m.type = MsgType::DataAck;
            m.src = v;
            m.dst = pendingAck[vi];
            return Intent::transmit(0, m);
          }
          if (sent[vi]) return Intent::listen(0);
          return Intent::idle();
        },
        [&](NodeId v, const Reception& r) {
          const auto vi = static_cast<std::size_t>(v);
          if (r.received && r.msg.type == MsgType::DataAck && r.msg.dst == v && pending[vi]) {
            pending[vi] = 0;
            --undone;
          }
        });
    ++out.slots;

    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (!tdma.active(v, round)) continue;
      if (activeRounds[vi] % phaseLen == gamma2 && pending[vi]) {
        if (gotBackoff[vi]) {
          gotBackoff[vi] = 0;
        } else {
          prob[vi] = std::min(0.5, prob[vi] * 2.0);
        }
      }
      ++activeRounds[vi];
    }
    ++round;
  }
  out.allDelivered = undone == 0;
  return out;
}

AggregateRun runAlohaAggregation(Simulator& sim, const AggregationStructure& s,
                                 std::span<const double> values, AggKind kind) {
  AggregateRun run;
  AlohaUplinkResult up =
      alohaClusterUplink(sim, s.clustering, s.tdma, values, s.sizeEstimate, kind);
  run.costs.uplink = up.slots;
  run.delivered = up.allDelivered;

  InterResult inter = kind == AggKind::Sum
                          ? treeAggregate(sim, s.clustering, s.tdma, up.clusterValue, kind)
                          : gossipAggregate(sim, s.clustering, s.tdma, up.clusterValue, kind);
  run.costs.inter = inter.slots;
  run.delivered = run.delivered && inter.converged;

  run.valueAtNode = inter.valueAtDominator;
  run.costs.broadcast = broadcastToClusters(sim, s.clustering, s.tdma, run.valueAtNode, 6);

  const double truth = aggregateGroundTruth(values, kind);
  for (const double x : run.valueAtNode) {
    if (std::abs(x - truth) > 1e-9 * std::max(1.0, std::abs(truth))) {
      run.delivered = false;
      break;
    }
  }
  return run;
}

}  // namespace mcs
