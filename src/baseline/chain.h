#pragma once

#include <cmath>
#include <cstdint>

#include "sim/network.h"

/// Exponential-chain lower-bound experiments (§1).
///
/// On the instance {2^i} with uniform power, the number of simultaneous
/// successful receptions per channel is bounded by a small constant
/// c(alpha, beta) ~ 2^alpha / beta, independent of n: each additional
/// co-scheduled sender at a smaller scale contributes interference
/// comparable to the victim link's own signal attenuated by at most 2^alpha
/// (the paper's §1 sketch, citing [25], states the single-success version
/// for its stricter setup).  Hence single-channel aggregation needs
/// Omega(n) = Omega(Delta) slots here, and F channels can reduce that to at
/// most Delta/F — the limit the paper's algorithm attains.
namespace mcs {

/// Upper bound on concurrent successes per channel on the chain.
[[nodiscard]] inline int chainConcurrencyBound(double alpha, double beta) noexcept {
  return static_cast<int>(std::pow(2.0, alpha) / beta) + 1;
}

struct ChainSlotStats {
  /// Largest number of simultaneous successful receptions observed in a
  /// single slot, summed over channels.
  int maxConcurrentSuccesses = 0;
  /// Mean successes per slot across trials.
  double meanSuccesses = 0.0;
  /// Same, restricted to *distinct senders* decoded by some receiver
  /// closer to the origin (a "descending" delivery) — the direction data
  /// must flow to aggregate at the chain's near end.  If two distinct
  /// senders s1 < s2 are decoded descending on the same channel, s1 sits
  /// no farther from s2's receiver than s2 itself does, so s2's SINR <= 1
  /// < beta: at most ONE distinct descending sender per channel per slot.
  /// This is the paper's §1 lower bound in measurable form.
  int maxDescendingSuccesses = 0;
  double meanDescendingSuccesses = 0.0;
  int trials = 0;
};

/// Runs `trials` random slots on `net`: every node independently
/// transmits (p = 1/2) or listens; transmitters are assigned channels
/// round-robin by index.  Counts successful decodes per slot.
ChainSlotStats chainConcurrency(const Network& net, int numChannels, int trials,
                                std::uint64_t seed);

class Simulator;

/// Same sampling driven through a caller-owned Simulator: each trial is
/// one sim.step(), so attached topology dynamics (churn gating senders,
/// drifting positions) apply to the sampled slots and the caller's drift
/// metrics cover them.  The net/seed overload above delegates here with a
/// fresh Simulator, so its draws and results are unchanged.
ChainSlotStats chainConcurrency(Simulator& sim, int trials);

/// The beta threshold 2^(1/alpha) above which the single-success property
/// is guaranteed on the exponential chain.
[[nodiscard]] double chainBetaThreshold(double alpha) noexcept;

}  // namespace mcs
