#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "agg/aggregate.h"
#include "sim/simulator.h"

/// Single-channel baseline: direct follower -> dominator aggregation.
///
/// This is the classic uniform-power cluster aggregation in the style of
/// Li et al. [24] (O(D + Delta) class): every dominatee transmits its
/// value straight to its dominator on channel 0 with an adaptive
/// (doubling, backoff-capped) probability, the dominator acknowledges one
/// node per round.  It uses the same clustering/TDMA substrate as the
/// multi-channel algorithm, so the comparison in experiment E1 isolates
/// exactly the contribution of the paper: reporters + channel parallelism.
namespace mcs {

struct AlohaUplinkResult {
  /// Per dominator id: cluster aggregate.
  std::vector<double> clusterValue;
  std::uint64_t slots = 0;
  bool allDelivered = true;
};

AlohaUplinkResult alohaClusterUplink(Simulator& sim, const Clustering& cl,
                                     const TdmaSchedule& tdma,
                                     std::span<const double> values,
                                     std::span<const double> sizeEstimate, AggKind kind);

/// Full single-channel pipeline: direct uplink, then the same backbone
/// (gossip or exact tree) and cluster broadcast as the main algorithm.
AggregateRun runAlohaAggregation(Simulator& sim, const AggregationStructure& s,
                                 std::span<const double> values, AggKind kind);

}  // namespace mcs
