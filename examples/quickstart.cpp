// Quickstart: deploy a network, build the aggregation structure once, and
// aggregate with it.  This is the smallest end-to-end use of the library.
//
//   ./quickstart [--n=800] [--side=1.2] [--channels=8] [--seed=42]

#include <cstdio>

#include "mcs.h"

int main(int argc, char** argv) {
  const mcs::Args args(argc, argv);
  const int n = static_cast<int>(args.getInt("n", 800));
  const double side = args.getDouble("side", 1.2);
  const int channels = static_cast<int>(args.getInt("channels", 8));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 42));

  // 1. Deploy n nodes uniformly in a side x side square.  Distances are in
  //    units of the transmission range (R_T = 1 with default parameters).
  mcs::Rng rng(seed);
  auto positions = mcs::deployUniformSquare(n, side, rng);
  mcs::Network net(std::move(positions), mcs::SinrParams{});
  std::printf("deployed n=%d  Delta=%d  D=%d  connected=%s\n", net.size(), net.maxDegree(),
              net.graph().diameterEstimate(), net.graph().connected() ? "yes" : "no");

  // 2. One simulator per experiment: F channels, deterministic seed.
  mcs::Simulator sim(net, channels, seed);

  // 3. Build the paper's hierarchical aggregation structure (§5).
  const mcs::AggregationStructure s = mcs::buildStructure(sim);
  std::printf("structure: %zu clusters, %d TDMA colors, %llu slots\n",
              s.clustering.dominators.size(), s.clustering.numColors,
              static_cast<unsigned long long>(s.costs.structureTotal()));

  // 4. Aggregate: every node contributes a value; every node learns MAX.
  std::vector<double> values(static_cast<std::size_t>(n));
  for (auto& x : values) x = rng.uniform(0.0, 100.0);
  const mcs::AggregateRun run = mcs::runAggregation(sim, s, values, mcs::AggKind::Max);

  std::printf("aggregated MAX=%.3f in %llu slots (uplink %llu, tree %llu, backbone %llu, "
              "broadcast %llu)\n",
              run.valueAtNode[0], static_cast<unsigned long long>(run.costs.aggregationTotal()),
              static_cast<unsigned long long>(run.costs.uplink),
              static_cast<unsigned long long>(run.costs.tree),
              static_cast<unsigned long long>(run.costs.inter),
              static_cast<unsigned long long>(run.costs.broadcast));
  std::printf("every node holds the aggregate: %s\n", run.delivered ? "yes" : "NO");

  // 5. The structure is reusable for further aggregations (the paper's
  //    point: precompute once, aggregate fast forever after).
  for (auto& x : values) x = rng.uniform(0.0, 1.0);
  const mcs::AggregateRun second = mcs::runAggregation(sim, s, values, mcs::AggKind::Sum);
  std::printf("second run (SUM=%.3f) reused the structure in %llu slots\n",
              second.valueAtNode[0],
              static_cast<unsigned long long>(second.costs.aggregationTotal()));
  return run.delivered && second.delivered ? 0 : 1;
}
