// Scenario tour: the scenario engine as a library.  Runs a few presets
// from the registry, a custom spec assembled key-by-key, and a
// symmetry-breaking workload through the protocol driver layer — the
// same declarative surface the scenario_runner CLI exposes, without a
// single hand-wired deployment or protocol loop.
//
//   ./scenario_tour [--seeds=3] [--threads=4]

#include <cstdio>

#include "mcs.h"

int main(int argc, char** argv) {
  const mcs::Args args(argc, argv);
  const int seeds = static_cast<int>(args.getInt("seeds", 3));
  const int threads = static_cast<int>(args.getInt("threads", 4));

  // 1. Presets are one lookup away.
  for (const char* name : {"uniform_square", "hotspot_mixture", "rayleigh_mesh"}) {
    mcs::ScenarioSpec spec;
    if (!mcs::ScenarioRegistry::find(name, spec)) return 1;
    spec.seeds = seeds;
    const mcs::ScenarioBatchResult batch = mcs::runScenarioBatch(spec, threads);
    const mcs::Summary slots = batch.summarizeSlots();
    std::printf("%-16s %d/%d delivered | slots mean=%.0f [%.0f, %.0f] | decode rate %.3f\n",
                name, batch.deliveredCount(), spec.seeds, slots.mean, slots.min, slots.max,
                batch.summarizeDecodeRate().mean);
    if (batch.failures() > 0) return 1;
  }

  // 2. A custom scenario is a handful of key=value assignments (exactly
  //    what a scenario file contains, one per line).
  mcs::ScenarioSpec custom;
  std::string err;
  for (const auto& [key, value] :
       {std::pair<const char*, const char*>{"name", "corridor_shadowed"},
        {"deployment", "corridor"},
        {"n", "250"},
        {"length", "2.5"},
        {"width", "0.3"},
        {"channels", "4"},
        {"fading", "lognormal"},
        {"shadow_sigma_db", "3"},
        {"protocol", "agg_sum"}}) {
    if (!mcs::applyScenarioKey(custom, key, value, err)) {
      std::fprintf(stderr, "bad key: %s\n", err.c_str());
      return 1;
    }
  }
  custom.seeds = seeds;
  const std::string invalid = mcs::validateScenario(custom);
  if (!invalid.empty()) {
    std::fprintf(stderr, "invalid: %s\n", invalid.c_str());
    return 1;
  }
  const mcs::ScenarioBatchResult batch = mcs::runScenarioBatch(custom, threads);
  std::printf("%-16s %d/%d delivered | %s\n", custom.name.c_str(), batch.deliveredCount(),
              custom.seeds, mcs::describeScenario(custom).c_str());
  if (batch.failures() != 0 || batch.deliveredCount() == 0) return 1;

  // 3. Every ProtocolKind runs through the same driver dispatch, and each
  //    driver reports its own named metrics + ground-truth verdict.
  mcs::ScenarioSpec coloring;
  if (!mcs::ScenarioRegistry::find("coloring_patch", coloring)) return 1;
  coloring.deployment.n = 150;  // tour-sized
  coloring.seeds = seeds;
  const mcs::ScenarioBatchResult colored = mcs::runScenarioBatch(coloring, threads);
  std::printf("%-16s %d/%d valid | %s\n", coloring.name.c_str(), colored.validCount(),
              coloring.seeds, mcs::ScenarioRegistry::describe("coloring_patch").c_str());
  for (const std::string& metric : {std::string("color_classes"), std::string("delta")}) {
    const mcs::Summary m = colored.summarizeMetric(metric);
    std::printf("  %-14s mean=%.1f [%.0f, %.0f]\n", metric.c_str(), m.mean, m.min, m.max);
  }
  return colored.failures() == 0 && colored.validCount() > 0 ? 0 : 1;
}
