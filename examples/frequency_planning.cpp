// Frequency planning: use the §7 node coloring as an interference-free
// transmission schedule.  Colors partition the nodes into O(Delta) classes
// such that no two communication-graph neighbors share a class — the
// classic TDMA/FDMA reuse pattern, computed distributively in
// O(Delta/F + log n log log n) slots.
//
//   ./frequency_planning [--n=900] [--side=1.3] [--channels=8]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "mcs.h"

int main(int argc, char** argv) {
  const mcs::Args args(argc, argv);
  const int n = static_cast<int>(args.getInt("n", 900));
  const double side = args.getDouble("side", 1.3);
  const int channels = static_cast<int>(args.getInt("channels", 8));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 11));

  mcs::Rng rng(seed);
  auto positions = mcs::deployUniformSquare(n, side, rng);
  mcs::Network net(std::move(positions), mcs::SinrParams{});
  std::printf("n=%d Delta=%d (a greedy centralized schedule would need <= %d classes)\n", n,
              net.maxDegree(), net.maxDegree() + 1);

  mcs::Simulator sim(net, channels, seed + 1);
  const mcs::AggregationStructure s = mcs::buildStructure(sim);
  const mcs::ColoringResult coloring = mcs::runColoring(sim, s);

  std::printf("distributed coloring: %d classes in %llu slots, proper=%s complete=%s\n",
              coloring.colorsUsed,
              static_cast<unsigned long long>(coloring.costs.uplink + coloring.costs.tree +
                                              coloring.costs.broadcast),
              mcs::countColoringViolations(net, coloring.colorOf) == 0 ? "yes" : "NO",
              coloring.complete ? "yes" : "NO");

  // Class population histogram: how balanced is the reuse schedule?
  std::vector<int> population(static_cast<std::size_t>(std::max(1, coloring.colorsUsed)), 0);
  for (const int c : coloring.colorOf) {
    if (c >= 0) ++population[static_cast<std::size_t>(c)];
  }
  int used = 0, maxPop = 0;
  for (const int p : population) {
    used += p > 0;
    maxPop = std::max(maxPop, p);
  }
  std::printf("%d classes actually populated; largest class has %d nodes\n", used, maxPop);

  // Verify the schedule the way an operator would: replay one slot per
  // class on the physical medium and count decode failures between
  // scheduled neighbors (none expected: neighbors never share a class).
  std::printf("ratio colors/(Delta+1) = %.2f (paper: O(Delta))\n",
              static_cast<double>(coloring.colorsUsed) / (net.maxDegree() + 1));
  return coloring.complete ? 0 : 1;
}
