// Sensor field: the paper's motivating "killer app" (§1).  A field of
// temperature sensors computes the field-wide average (SUM and COUNT over
// the exact backbone tree) and the hottest reading (MAX over gossip), and
// every sensor learns the results — e.g. to trigger a local alarm.
//
//   ./sensor_field [--n=1200] [--length=3.0] [--width=0.8] [--channels=8]

#include <cmath>
#include <cstdio>

#include "mcs.h"

namespace {

/// Synthetic temperature field: a smooth gradient plus a hot spot.
double temperatureAt(mcs::Vec2 p) {
  const double gradient = 18.0 + 2.0 * p.x;
  const mcs::Vec2 hotspot{2.3, 0.4};
  const double d2 = mcs::dist2(p, hotspot);
  return gradient + 14.0 * std::exp(-d2 / 0.02);
}

}  // namespace

int main(int argc, char** argv) {
  const mcs::Args args(argc, argv);
  const int n = static_cast<int>(args.getInt("n", 1200));
  const double length = args.getDouble("length", 3.0);
  const double width = args.getDouble("width", 0.8);
  const int channels = static_cast<int>(args.getInt("channels", 8));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 7));

  mcs::Rng rng(seed);
  auto positions = mcs::deployCorridor(n, length, width, rng);
  mcs::Network net(std::move(positions), mcs::SinrParams{});
  std::printf("sensor corridor: n=%d, %.1f x %.1f transmission ranges, D=%d hops\n", n, length,
              width, net.graph().diameterEstimate());
  if (!net.graph().connected()) {
    std::printf("deployment disconnected; re-run with higher density\n");
    return 1;
  }

  std::vector<double> readings(static_cast<std::size_t>(n));
  for (mcs::NodeId v = 0; v < n; ++v) {
    readings[static_cast<std::size_t>(v)] = temperatureAt(net.position(v));
  }

  mcs::Simulator sim(net, channels, seed + 1);
  const mcs::AggregationStructure s = mcs::buildStructure(sim);

  // Average = SUM / COUNT, both exact through the reporter trees and the
  // backbone convergecast.
  const mcs::AggregateRun sum = mcs::runAggregation(sim, s, readings, mcs::AggKind::Sum);
  std::vector<double> ones(static_cast<std::size_t>(n), 1.0);
  const mcs::AggregateRun count = mcs::runAggregation(sim, s, ones, mcs::AggKind::Sum);
  const mcs::AggregateRun hottest = mcs::runAggregation(sim, s, readings, mcs::AggKind::Max);

  const double average = sum.valueAtNode[0] / count.valueAtNode[0];
  std::printf("field average: %.2f C   (true %.2f C)\n", average,
              mcs::aggregateGroundTruth(readings, mcs::AggKind::Sum) / n);
  std::printf("hottest spot:  %.2f C   (true %.2f C)\n", hottest.valueAtNode[0],
              mcs::aggregateGroundTruth(readings, mcs::AggKind::Max));
  std::printf("slots: structure %llu, sum %llu, count %llu, max %llu\n",
              static_cast<unsigned long long>(s.costs.structureTotal()),
              static_cast<unsigned long long>(sum.costs.aggregationTotal()),
              static_cast<unsigned long long>(count.costs.aggregationTotal()),
              static_cast<unsigned long long>(hottest.costs.aggregationTotal()));

  // Every sensor can now act locally: count alarms (reading within 2C of
  // the global maximum) — pure local computation after aggregation.
  int alarms = 0;
  for (mcs::NodeId v = 0; v < n; ++v) {
    if (readings[static_cast<std::size_t>(v)] >
        hottest.valueAtNode[static_cast<std::size_t>(v)] - 2.0) {
      ++alarms;
    }
  }
  std::printf("%d sensors raised a hot-spot alarm\n", alarms);
  return sum.delivered && count.delivered && hottest.delivered ? 0 : 1;
}
