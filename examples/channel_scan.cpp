// Channel scan: answer a deployment question with the library — "how many
// channels are worth licensing for THIS deployment?"  Runs the full
// pipeline at increasing F on the user's topology and prints the marginal
// benefit, including the single-channel ALOHA baseline.
//
//   ./channel_scan [--n=1500] [--side=0.8] [--maxF=16] [--seed=3]

#include <cstdio>

#include "mcs.h"

int main(int argc, char** argv) {
  const mcs::Args args(argc, argv);
  const int n = static_cast<int>(args.getInt("n", 1500));
  const double side = args.getDouble("side", 0.8);
  const int maxF = static_cast<int>(args.getInt("maxF", 16));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 3));

  mcs::Rng rng(seed);
  auto positions = mcs::deployUniformSquare(n, side, rng);
  mcs::Network net(std::move(positions), mcs::SinrParams{});
  std::printf("deployment: n=%d Delta=%d D=%d\n", net.size(), net.maxDegree(),
              net.graph().diameterEstimate());

  std::vector<double> values(static_cast<std::size_t>(n));
  for (auto& x : values) x = rng.uniform();

  std::printf("%-8s %14s %14s %10s\n", "F", "agg slots", "vs F=1", "ok");
  double base = 0.0;
  for (int channels = 1; channels <= maxF; channels *= 2) {
    mcs::Simulator sim(net, channels, seed + 5);
    const mcs::AggregationStructure s = mcs::buildStructure(sim);
    const mcs::AggregateRun run = mcs::runAggregation(sim, s, values, mcs::AggKind::Max);
    const auto slots = static_cast<double>(run.costs.aggregationTotal());
    if (channels == 1) base = slots;
    std::printf("%-8d %14.0f %13.2fx %10s\n", channels, slots, base / slots,
                run.delivered ? "yes" : "NO");
  }

  // Baseline for the same deployment.
  mcs::Simulator sim(net, 1, seed + 5);
  const mcs::AggregationStructure s = mcs::buildStructure(sim);
  const mcs::AggregateRun aloha = mcs::runAlohaAggregation(sim, s, values, mcs::AggKind::Max);
  std::printf("%-8s %14llu %13.2fx %10s\n", "aloha",
              static_cast<unsigned long long>(aloha.costs.aggregationTotal()),
              base / static_cast<double>(aloha.costs.aggregationTotal()),
              aloha.delivered ? "yes" : "NO");
  return 0;
}
