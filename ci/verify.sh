#!/usr/bin/env bash
# Tier-1 verify: configure, build (warnings are errors), run the full suite.
# This is the exact sequence CI runs; keep it in sync with ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# --- Bench seeding + scenario smoke -----------------------------------------
# Runs the medium regression bench and every registered scenario preset at
# its (small) default size, collecting the BENCH_*.json reports into
# build/bench-artifacts so CI can upload them and the perf history
# accumulates per commit.  Any nonzero exit or empty report fails the job.
cd build
mkdir -p bench-artifacts
(cd bench-artifacts && ../bench/bench_medium --budget=0.05)

# --list prints `name  description`, one preset per line, then a blank
# line and the mobility-model list; the preset names are the first column
# of the first block only.
./bench/scenario_runner --list
presets=$(./bench/scenario_runner --list | awk 'NF == 0 { exit } { print $1 }')

# The registry must keep at least one preset per ProtocolKind — static
# AND mobile — so the smoke loop below exercises every protocol driver
# end-to-end on both static and dynamic topologies.
for required in uniform_square corridor aloha_patch exponential_chain \
                coloring_patch cluster_palette csa_patch ruling_field \
                dominators chain_lowerbound \
                mobile_agg_max mobile_agg_sum mobile_aloha mobile_structure \
                mobile_coloring mobile_palette mobile_csa mobile_ruling \
                mobile_dominators mobile_chain mobile_nearfar; do
  echo "${presets}" | grep -qx "${required}" \
    || { echo "FAIL: registry is missing required preset ${required}"; exit 1; }
done

for preset in ${presets}; do
  case "${preset}" in
    huge_*)
      # Million-node presets are smoked separately below at a reduced
      # round budget; at --seeds=2 with default rounds they would
      # dominate the whole verify wall time.
      echo "--- scenario smoke: ${preset} (deferred to the huge-tier smoke)"
      continue
      ;;
  esac
  echo "--- scenario smoke: ${preset}"
  ./bench/scenario_runner --scenario="${preset}" --seeds=2 --out-dir=bench-artifacts
done

# --- Huge-tier smoke ---------------------------------------------------------
# One seed, two ruling-set rounds: enough to prove the hierarchical medium
# resolves million-node slots end-to-end without paying a full election.
./bench/scenario_runner --scenario=huge_hier --seeds=1 --ruling_rounds=2 \
  --out-dir=bench-artifacts

# --- Telemetry smoke ---------------------------------------------------------
# One preset with --metrics + --trace-out: the BENCH json must grow a
# telemetry block, and the Chrome trace must pass the trace_check
# validator (slot spans plus seed instants => well over 100 events).
./bench/scenario_runner --scenario=corridor --seeds=2 --metrics \
  --trace-out=bench-artifacts/trace_corridor.json --out-dir=bench-artifacts
./bench/trace_check bench-artifacts/trace_corridor.json --min-events=100 \
  --max-bytes=50000000
grep -q '"telemetry"' bench-artifacts/BENCH_scenario_corridor.json \
  || { echo "FAIL: --metrics produced no telemetry block"; exit 1; }

# Telemetry-overhead smoke: the same batch with metrics+trace armed must
# stay within 1.5x + 0.2s of the plain run (the real budget is <5%,
# measured on bench_medium locally; this loose gate only catches a
# hot-path instrumentation blunder through CI noise).
overhead_wall() {
  grep -o '"batch_wall_sec": [0-9.e+-]*' "$1" | head -1 | awk '{print $2}'
}
./bench/scenario_runner --scenario=uniform_square --seeds=3 --threads=2 \
  --out-dir=bench-artifacts
base_wall=$(overhead_wall bench-artifacts/BENCH_scenario_uniform_square.json)
./bench/scenario_runner --scenario=uniform_square --seeds=3 --threads=2 --metrics \
  --trace-out=bench-artifacts/trace_uniform_square.json --out-dir=bench-artifacts
telem_wall=$(overhead_wall bench-artifacts/BENCH_scenario_uniform_square.json)
awk -v off="${base_wall}" -v on="${telem_wall}" 'BEGIN {
  budget = off * 1.5 + 0.2;
  printf "telemetry overhead smoke: off=%.3fs on=%.3fs budget=%.3fs\n", off, on, budget;
  exit (on <= budget) ? 0 : 1;
}' || { echo "FAIL: telemetry overhead exceeds the smoke budget"; exit 1; }

# --- Sweep campaign smoke + perf-regression gate -----------------------------
# Runs the committed smoke campaign and diffs it against the committed
# baseline: metric drift beyond 20% or a wall-time regression beyond 9x
# fails the build.  (The tight bit-identical guarantees are locked by the
# unit tests; the loose tolerances here absorb cross-machine noise.)
./bench/sweep_runner --list
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --out-dir=bench-artifacts --threads=2
./bench/sweep_check --baseline=../sweeps/baseline.json \
  --candidate=bench-artifacts/BENCH_sweep_smoke.json --metric-tol=0.2 --wall-tol=9

# The E10 mobility campaign's smoke slice (one seed per cell) behind the
# same gate: drift metrics and re-delivery are deterministic per seed, so
# any mean moving against sweeps/e10_baseline.json is a real change.
./bench/sweep_runner --sweep=../sweeps/e10_mobility.sweep --seeds=1 \
  --out-dir=bench-artifacts --threads=2
./bench/sweep_check --baseline=../sweeps/e10_baseline.json \
  --candidate=bench-artifacts/BENCH_sweep_e10_mobility.json --metric-tol=0.2 --wall-tol=9

# --- Work-queue campaign smoke -----------------------------------------------
# The same smoke campaign through the multi-process coordinator
# (--workers): the spliced report must pass the identical baseline gate
# as the in-process run — the byte-identity contract makes one baseline
# serve both execution modes.  Separate out-dirs keep the in-process
# artifact intact.
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --workers=4 \
  --out-dir=bench-artifacts/wq-smoke
./bench/sweep_check --baseline=../sweeps/baseline.json \
  --candidate=bench-artifacts/wq-smoke/BENCH_sweep_smoke.json --metric-tol=0.2 --wall-tol=9

# Fault-injection smoke: SIGKILL the worker holding cell 0's first lease
# mid-cell.  The requeue/respawn path must still produce a report that
# passes the same baseline gate — worker deaths are invisible in output.
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --workers=2 --fault-kill-cell=0 \
  --out-dir=bench-artifacts/wq-fault
./bench/sweep_check --baseline=../sweeps/baseline.json \
  --candidate=bench-artifacts/wq-fault/BENCH_sweep_smoke.json --metric-tol=0.2 --wall-tol=9

# --- Campaign store smoke -----------------------------------------------------
# The smoke campaign again with --store: the columnar store must answer
# sweep_check against the same run's JSON report with zero metric drift
# (means re-merge exactly from the stored accumulators; the store's wall
# stats are stripped, which only ever reads as "faster").  Then the same
# campaign through 4 workers: the store file must be byte-for-byte
# identical to the in-process one — the slot-positional spool plus the
# canonical string table make worker arrival order invisible.
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --threads=2 \
  --store --store-strip-wall --out-dir=bench-artifacts/store-smoke
./bench/sweep_check --baseline=bench-artifacts/store-smoke/BENCH_sweep_smoke.json \
  --candidate-store=bench-artifacts/store-smoke/BENCH_sweep_smoke.store \
  --metric-tol=0 --wall-tol=9
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --workers=4 \
  --store --store-strip-wall --out-dir=bench-artifacts/store-wq
cmp bench-artifacts/store-smoke/BENCH_sweep_smoke.store \
    bench-artifacts/store-wq/BENCH_sweep_smoke.store \
  || { echo "FAIL: worker store differs from in-process store"; exit 1; }

# sweep_query must read the store it just gated: schema lists the swept
# axis, and a group-by over it aggregates every metric.
./bench/sweep_query bench-artifacts/store-smoke/BENCH_sweep_smoke.store --schema
./bench/sweep_query bench-artifacts/store-smoke/BENCH_sweep_smoke.store \
  --group-by=channels --select=slots,decode_rate
./bench/sweep_query bench-artifacts/store-smoke/BENCH_sweep_smoke.store \
  --group-by=channels --format=json | grep -q '"decode_rate"' \
  || { echo "FAIL: sweep_query json output missing decode_rate"; exit 1; }

# Sharded stores union in one query (disjoint cell indices merge), and
# overlapping stores are rejected loudly instead of double-counted.
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --threads=2 --shard=0/2 \
  --store --store-strip-wall --out-dir=bench-artifacts/store-sh0
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --threads=2 --shard=1/2 \
  --store --store-strip-wall --out-dir=bench-artifacts/store-sh1
./bench/sweep_query bench-artifacts/store-sh0/BENCH_sweep_smoke.store \
  bench-artifacts/store-sh1/BENCH_sweep_smoke.store --select=slots --format=csv \
  | grep -q '^all,3,slots,6,' \
  || { echo "FAIL: sharded store union did not merge 3 cells / 6 seeds"; exit 1; }
if ./bench/sweep_query bench-artifacts/store-smoke/BENCH_sweep_smoke.store \
     bench-artifacts/store-smoke/BENCH_sweep_smoke.store --select=slots \
     >/dev/null 2>&1; then
  echo "FAIL: overlapping store union was not rejected"; exit 1
fi

# --- Decode-attribution probes smoke ------------------------------------------
# The cause-and-time layer end-to-end.  Armed runs must stay within the
# same loose overhead budget as metrics (probes imply metrics, so this
# bounds the whole armed stack).
./bench/scenario_runner --scenario=uniform_square --seeds=3 --threads=2 --probes \
  --out-dir=bench-artifacts
probe_wall=$(overhead_wall bench-artifacts/BENCH_scenario_uniform_square.json)
awk -v off="${base_wall}" -v on="${probe_wall}" 'BEGIN {
  budget = off * 1.5 + 0.2;
  printf "probes overhead smoke: off=%.3fs on=%.3fs budget=%.3fs\n", off, on, budget;
  exit (on <= budget) ? 0 : 1;
}' || { echo "FAIL: probes overhead exceeds the smoke budget"; exit 1; }

# Probes-armed smoke campaign with a store.  Three gates in one artifact:
# the armed report must pass the unarmed committed baseline bit-exactly
# (arming probes never changes a result), the cause counters must
# partition failed listens exactly (sum(cause.*) == listens - decodes),
# and the 4-worker armed store must be byte-identical to the in-process
# one (probe blobs reduce associatively; wall-derived telemetry is
# stripped with the wall stats).
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --threads=2 --probes \
  --store --store-strip-wall --out-dir=bench-artifacts/probe-smoke
./bench/sweep_check --baseline=../sweeps/baseline.json \
  --candidate-store=bench-artifacts/probe-smoke/BENCH_sweep_smoke.store \
  --metric-tol=0 --wall-tol=9
./bench/sweep_query bench-artifacts/probe-smoke/BENCH_sweep_smoke.store \
  --select=tm.cause.no_transmitter,tm.cause.dead_listener,tm.cause.noise_limited,tm.cause.interference_limited,tm.cause.nearfar_truncated,tm.cause.lost_tie,tm.medium.listen_intents,tm.medium.decodes \
  --format=csv | awk -F, '
    $3 ~ /^tm\.cause\./           { causes += $4 * $5 }
    $3 == "tm.medium.listen_intents" { listens = $4 * $5 }
    $3 == "tm.medium.decodes"        { decodes = $4 * $5 }
    END {
      printf "cause partition: sum=%d listens=%d decodes=%d\n", causes, listens, decodes;
      exit (causes == listens - decodes && listens > 0) ? 0 : 1;
    }' || { echo "FAIL: cause counters do not partition failed listens"; exit 1; }
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --workers=4 --probes \
  --store --store-strip-wall --out-dir=bench-artifacts/probe-wq
cmp bench-artifacts/probe-smoke/BENCH_sweep_smoke.store \
    bench-artifacts/probe-wq/BENCH_sweep_smoke.store \
  || { echo "FAIL: probes-armed worker store differs from in-process store"; exit 1; }

# The probe views: --series must surface the slot series and attribution
# sketches, --pivot the axis-by-axis table.
./bench/sweep_query bench-artifacts/probe-smoke/BENCH_sweep_smoke.store --series \
  | grep -q 'slot series' \
  || { echo "FAIL: sweep_query --series printed no slot series"; exit 1; }
./bench/sweep_query bench-artifacts/probe-smoke/BENCH_sweep_smoke.store --series \
  --format=json | grep -q '"series"' \
  || { echo "FAIL: sweep_query --series json missing series"; exit 1; }
./bench/sweep_query bench-artifacts/probe-smoke/BENCH_sweep_smoke.store \
  --pivot=channels,label --select=decode_rate \
  | grep -q 'decode_rate: mean by channels' \
  || { echo "FAIL: sweep_query --pivot printed no pivot table"; exit 1; }

# Multi-process trace merge: 4 cells so all 4 workers lease work, then the
# merged Chrome trace must carry 4 labeled worker lanes with per-lane
# monotonic timestamps (trace_check validates all of it).
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --sweep.channels=1:8:*2 \
  --workers=4 --probes --trace-out=bench-artifacts/trace_workers.json \
  --out-dir=bench-artifacts/wq-trace
./bench/trace_check bench-artifacts/trace_workers.json --min-pids=4 \
  --max-bytes=100000000

# The 10^4-cell synthetic store bench: streams the write, answers a
# group-by from the mapping, and self-checks the aggregates (exit 1 on
# any mismatch).  Records BENCH_store.json for the perf history.
(cd bench-artifacts && ../bench/bench_store)

# Scheduling bench + its committed baseline (sweep_check's rows mode):
# the work queue must beat static round-robin shards by >= 1.5x makespan
# on the adversarial 8-worker grid, and the recorded rows must not drift
# from sweeps/campaign_baseline.json (lease/requeue counts are exact;
# makespans and speedups ride the loose wall tolerance plus the hard
# 1.5x floor).  After an intentional scheduling change, regenerate with
#   cp bench-artifacts/BENCH_campaign.json ../sweeps/campaign_baseline.json
(cd bench-artifacts && ../bench/bench_campaign --require-speedup=1.5)
./bench/sweep_check --baseline=../sweeps/campaign_baseline.json \
  --candidate=bench-artifacts/BENCH_campaign.json --metric-tol=0.2 --wall-tol=9

for report in bench-artifacts/BENCH_*.json; do
  if [ ! -s "${report}" ] || grep -qE '"(rows|cells)": \[\]' "${report}"; then
    echo "FAIL: empty bench report ${report}"
    exit 1
  fi
done
echo "bench artifacts:"
ls -l bench-artifacts
