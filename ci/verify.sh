#!/usr/bin/env bash
# Tier-1 verify: configure, build (warnings are errors), run the full suite.
# This is the exact sequence CI runs; keep it in sync with ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build && ctest --output-on-failure -j "$(nproc)"
