#!/usr/bin/env bash
# Tier-1 verify: configure, build (warnings are errors), run the full suite.
# This is the exact sequence CI runs; keep it in sync with ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# --- Bench seeding + scenario smoke -----------------------------------------
# Runs the medium regression bench and every registered scenario preset at
# its (small) default size, collecting the BENCH_*.json reports into
# build/bench-artifacts so CI can upload them and the perf history
# accumulates per commit.  Any nonzero exit or empty report fails the job.
cd build
mkdir -p bench-artifacts
(cd bench-artifacts && ../bench/bench_medium --budget=0.05)

# --list prints `name  description`; the first column is the preset name.
./bench/scenario_runner --list
presets=$(./bench/scenario_runner --list | awk '{print $1}')

# The registry must keep at least one preset per ProtocolKind, so the
# smoke loop below exercises every protocol driver end-to-end.
for required in uniform_square corridor aloha_patch exponential_chain \
                coloring_patch cluster_palette csa_patch ruling_field \
                dominators chain_lowerbound; do
  echo "${presets}" | grep -qx "${required}" \
    || { echo "FAIL: registry is missing required preset ${required}"; exit 1; }
done

for preset in ${presets}; do
  echo "--- scenario smoke: ${preset}"
  ./bench/scenario_runner --scenario="${preset}" --seeds=2 --out=bench-artifacts
done

for report in bench-artifacts/BENCH_*.json; do
  if [ ! -s "${report}" ] || grep -q '"rows": \[\]' "${report}"; then
    echo "FAIL: empty bench report ${report}"
    exit 1
  fi
done
echo "bench artifacts:"
ls -l bench-artifacts
