#!/usr/bin/env bash
# Tier-1 verify: configure, build (warnings are errors), run the full suite.
# This is the exact sequence CI runs; keep it in sync with ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# --- Bench seeding + scenario smoke -----------------------------------------
# Runs the medium regression bench and every registered scenario preset at
# its (small) default size, collecting the BENCH_*.json reports into
# build/bench-artifacts so CI can upload them and the perf history
# accumulates per commit.  Any nonzero exit or empty report fails the job.
cd build
mkdir -p bench-artifacts
(cd bench-artifacts && ../bench/bench_medium --budget=0.05)

# --list prints `name  description`, one preset per line, then a blank
# line and the mobility-model list; the preset names are the first column
# of the first block only.
./bench/scenario_runner --list
presets=$(./bench/scenario_runner --list | awk 'NF == 0 { exit } { print $1 }')

# The registry must keep at least one preset per ProtocolKind — static
# AND mobile — so the smoke loop below exercises every protocol driver
# end-to-end on both static and dynamic topologies.
for required in uniform_square corridor aloha_patch exponential_chain \
                coloring_patch cluster_palette csa_patch ruling_field \
                dominators chain_lowerbound \
                mobile_agg_max mobile_agg_sum mobile_aloha mobile_structure \
                mobile_coloring mobile_palette mobile_csa mobile_ruling \
                mobile_dominators mobile_chain mobile_nearfar; do
  echo "${presets}" | grep -qx "${required}" \
    || { echo "FAIL: registry is missing required preset ${required}"; exit 1; }
done

for preset in ${presets}; do
  case "${preset}" in
    huge_*)
      # Million-node presets are smoked separately below at a reduced
      # round budget; at --seeds=2 with default rounds they would
      # dominate the whole verify wall time.
      echo "--- scenario smoke: ${preset} (deferred to the huge-tier smoke)"
      continue
      ;;
  esac
  echo "--- scenario smoke: ${preset}"
  ./bench/scenario_runner --scenario="${preset}" --seeds=2 --out-dir=bench-artifacts
done

# --- Huge-tier smoke ---------------------------------------------------------
# One seed, two ruling-set rounds: enough to prove the hierarchical medium
# resolves million-node slots end-to-end without paying a full election.
./bench/scenario_runner --scenario=huge_hier --seeds=1 --ruling_rounds=2 \
  --out-dir=bench-artifacts

# --- Telemetry smoke ---------------------------------------------------------
# One preset with --metrics + --trace-out: the BENCH json must grow a
# telemetry block, and the Chrome trace must pass the trace_check
# validator (slot spans plus seed instants => well over 100 events).
./bench/scenario_runner --scenario=corridor --seeds=2 --metrics \
  --trace-out=bench-artifacts/trace_corridor.json --out-dir=bench-artifacts
./bench/trace_check bench-artifacts/trace_corridor.json --min-events=100 \
  --max-bytes=50000000
grep -q '"telemetry"' bench-artifacts/BENCH_scenario_corridor.json \
  || { echo "FAIL: --metrics produced no telemetry block"; exit 1; }

# Telemetry-overhead smoke: the same batch with metrics+trace armed must
# stay within 1.5x + 0.2s of the plain run (the real budget is <5%,
# measured on bench_medium locally; this loose gate only catches a
# hot-path instrumentation blunder through CI noise).
overhead_wall() {
  grep -o '"batch_wall_sec": [0-9.e+-]*' "$1" | head -1 | awk '{print $2}'
}
./bench/scenario_runner --scenario=uniform_square --seeds=3 --threads=2 \
  --out-dir=bench-artifacts
base_wall=$(overhead_wall bench-artifacts/BENCH_scenario_uniform_square.json)
./bench/scenario_runner --scenario=uniform_square --seeds=3 --threads=2 --metrics \
  --trace-out=bench-artifacts/trace_uniform_square.json --out-dir=bench-artifacts
telem_wall=$(overhead_wall bench-artifacts/BENCH_scenario_uniform_square.json)
awk -v off="${base_wall}" -v on="${telem_wall}" 'BEGIN {
  budget = off * 1.5 + 0.2;
  printf "telemetry overhead smoke: off=%.3fs on=%.3fs budget=%.3fs\n", off, on, budget;
  exit (on <= budget) ? 0 : 1;
}' || { echo "FAIL: telemetry overhead exceeds the smoke budget"; exit 1; }

# --- Sweep campaign smoke + perf-regression gate -----------------------------
# Runs the committed smoke campaign and diffs it against the committed
# baseline: metric drift beyond 20% or a wall-time regression beyond 9x
# fails the build.  (The tight bit-identical guarantees are locked by the
# unit tests; the loose tolerances here absorb cross-machine noise.)
./bench/sweep_runner --list
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --out-dir=bench-artifacts --threads=2
./bench/sweep_check --baseline=../sweeps/baseline.json \
  --candidate=bench-artifacts/BENCH_sweep_smoke.json --metric-tol=0.2 --wall-tol=9

# The E10 mobility campaign's smoke slice (one seed per cell) behind the
# same gate: drift metrics and re-delivery are deterministic per seed, so
# any mean moving against sweeps/e10_baseline.json is a real change.
./bench/sweep_runner --sweep=../sweeps/e10_mobility.sweep --seeds=1 \
  --out-dir=bench-artifacts --threads=2
./bench/sweep_check --baseline=../sweeps/e10_baseline.json \
  --candidate=bench-artifacts/BENCH_sweep_e10_mobility.json --metric-tol=0.2 --wall-tol=9

# --- Work-queue campaign smoke -----------------------------------------------
# The same smoke campaign through the multi-process coordinator
# (--workers): the spliced report must pass the identical baseline gate
# as the in-process run — the byte-identity contract makes one baseline
# serve both execution modes.  Separate out-dirs keep the in-process
# artifact intact.
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --workers=4 \
  --out-dir=bench-artifacts/wq-smoke
./bench/sweep_check --baseline=../sweeps/baseline.json \
  --candidate=bench-artifacts/wq-smoke/BENCH_sweep_smoke.json --metric-tol=0.2 --wall-tol=9

# Fault-injection smoke: SIGKILL the worker holding cell 0's first lease
# mid-cell.  The requeue/respawn path must still produce a report that
# passes the same baseline gate — worker deaths are invisible in output.
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --workers=2 --fault-kill-cell=0 \
  --out-dir=bench-artifacts/wq-fault
./bench/sweep_check --baseline=../sweeps/baseline.json \
  --candidate=bench-artifacts/wq-fault/BENCH_sweep_smoke.json --metric-tol=0.2 --wall-tol=9

# --- Campaign store smoke -----------------------------------------------------
# The smoke campaign again with --store: the columnar store must answer
# sweep_check against the same run's JSON report with zero metric drift
# (means re-merge exactly from the stored accumulators; the store's wall
# stats are stripped, which only ever reads as "faster").  Then the same
# campaign through 4 workers: the store file must be byte-for-byte
# identical to the in-process one — the slot-positional spool plus the
# canonical string table make worker arrival order invisible.
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --threads=2 \
  --store --store-strip-wall --out-dir=bench-artifacts/store-smoke
./bench/sweep_check --baseline=bench-artifacts/store-smoke/BENCH_sweep_smoke.json \
  --candidate-store=bench-artifacts/store-smoke/BENCH_sweep_smoke.store \
  --metric-tol=0 --wall-tol=9
./bench/sweep_runner --sweep=../sweeps/smoke.sweep --workers=4 \
  --store --store-strip-wall --out-dir=bench-artifacts/store-wq
cmp bench-artifacts/store-smoke/BENCH_sweep_smoke.store \
    bench-artifacts/store-wq/BENCH_sweep_smoke.store \
  || { echo "FAIL: worker store differs from in-process store"; exit 1; }

# sweep_query must read the store it just gated: schema lists the swept
# axis, and a group-by over it aggregates every metric.
./bench/sweep_query bench-artifacts/store-smoke/BENCH_sweep_smoke.store --schema
./bench/sweep_query bench-artifacts/store-smoke/BENCH_sweep_smoke.store \
  --group-by=channels --select=slots,decode_rate
./bench/sweep_query bench-artifacts/store-smoke/BENCH_sweep_smoke.store \
  --group-by=channels --format=json | grep -q '"decode_rate"' \
  || { echo "FAIL: sweep_query json output missing decode_rate"; exit 1; }

# The 10^4-cell synthetic store bench: streams the write, answers a
# group-by from the mapping, and self-checks the aggregates (exit 1 on
# any mismatch).  Records BENCH_store.json for the perf history.
(cd bench-artifacts && ../bench/bench_store)

# Scheduling bench + its committed baseline (sweep_check's rows mode):
# the work queue must beat static round-robin shards by >= 1.5x makespan
# on the adversarial 8-worker grid, and the recorded rows must not drift
# from sweeps/campaign_baseline.json (lease/requeue counts are exact;
# makespans and speedups ride the loose wall tolerance plus the hard
# 1.5x floor).  After an intentional scheduling change, regenerate with
#   cp bench-artifacts/BENCH_campaign.json ../sweeps/campaign_baseline.json
(cd bench-artifacts && ../bench/bench_campaign --require-speedup=1.5)
./bench/sweep_check --baseline=../sweeps/campaign_baseline.json \
  --candidate=bench-artifacts/BENCH_campaign.json --metric-tol=0.2 --wall-tol=9

for report in bench-artifacts/BENCH_*.json; do
  if [ ! -s "${report}" ] || grep -qE '"(rows|cells)": \[\]' "${report}"; then
    echo "FAIL: empty bench report ${report}"
    exit 1
  fi
done
echo "bench artifacts:"
ls -l bench-artifacts
