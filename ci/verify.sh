#!/usr/bin/env bash
# Tier-1 verify: configure, build (warnings are errors), run the full suite.
# This is the exact sequence CI runs; keep it in sync with ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# --- Bench seeding + scenario smoke -----------------------------------------
# Runs the medium regression bench and every registered scenario preset at
# its (small) default size, collecting the BENCH_*.json reports into
# build/bench-artifacts so CI can upload them and the perf history
# accumulates per commit.  Any nonzero exit or empty report fails the job.
cd build
mkdir -p bench-artifacts
(cd bench-artifacts && ../bench/bench_medium --budget=0.05)

./bench/scenario_runner --list
for preset in $(./bench/scenario_runner --list); do
  echo "--- scenario smoke: ${preset}"
  ./bench/scenario_runner --scenario="${preset}" --seeds=2 --out=bench-artifacts
done

for report in bench-artifacts/BENCH_*.json; do
  if [ ! -s "${report}" ] || grep -q '"rows": \[\]' "${report}"; then
    echo "FAIL: empty bench report ${report}"
    exit 1
  fi
done
echo "bench artifacts:"
ls -l bench-artifacts
