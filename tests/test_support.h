#pragma once

#include <utility>
#include <vector>

#include "mcs.h"

/// Shared helpers for the mcsinr test suite.
namespace mcs::test {

/// A connected-ish uniform deployment in a `side` x `side` square.
inline Network makeUniformNetwork(int n, double side, std::uint64_t seed, Tuning tuning = {}) {
  Rng rng(seed);
  auto pts = deployUniformSquare(n, side, rng);
  return Network(std::move(pts), SinrParams{}, tuning);
}

/// Builds the full aggregation structure on a fresh simulator.
struct BuiltStructure {
  Network net;
  Simulator sim;
  AggregationStructure s;

  BuiltStructure(int n, double side, int channels, std::uint64_t seed, Tuning tuning = {},
                 StructureOptions opts = {})
      : net(makeUniformNetwork(n, side, seed, tuning)), sim(net, channels, seed ^ 0xabcdef), s() {
    s = buildStructure(sim, opts);
  }
};

/// Ground truth: number of dominatees per dominator id.
inline std::vector<int> trueClusterSizes(const Network& net, const Clustering& cl) {
  std::vector<int> size(static_cast<std::size_t>(net.size()), 0);
  for (NodeId v = 0; v < net.size(); ++v) {
    const NodeId d = cl.dominatorOf[static_cast<std::size_t>(v)];
    if (d != kNoNode && d != v) ++size[static_cast<std::size_t>(d)];
  }
  return size;
}

/// Number of dominator pairs within distance r (independence violations).
inline int independenceViolations(const Network& net, const Clustering& cl, double r) {
  int violations = 0;
  for (std::size_t i = 0; i < cl.dominators.size(); ++i) {
    for (std::size_t j = i + 1; j < cl.dominators.size(); ++j) {
      if (net.distance(cl.dominators[i], cl.dominators[j]) <= r) ++violations;
    }
  }
  return violations;
}

/// Number of same-color dominator pairs within R_{eps/2}.
inline int colorSeparationViolations(const Network& net, const Clustering& cl) {
  int violations = 0;
  for (std::size_t i = 0; i < cl.dominators.size(); ++i) {
    for (std::size_t j = i + 1; j < cl.dominators.size(); ++j) {
      const NodeId a = cl.dominators[i];
      const NodeId b = cl.dominators[j];
      if (cl.colorOfCluster[static_cast<std::size_t>(a)] ==
              cl.colorOfCluster[static_cast<std::size_t>(b)] &&
          net.distance(a, b) <= net.rEpsHalf()) {
        ++violations;
      }
    }
  }
  return violations;
}

/// Reporter census per (cluster, channel < fv): returns {channels with
/// exactly one reporter, channels with members but wrong reporter count}.
inline std::pair<int, int> reporterCensus(const Network& net, const AggregationStructure& s) {
  int good = 0;
  int bad = 0;
  for (const NodeId d : s.clustering.dominators) {
    const int fv = s.fvOfNode[static_cast<std::size_t>(d)];
    std::vector<int> reporters(static_cast<std::size_t>(fv), 0);
    std::vector<int> members(static_cast<std::size_t>(fv), 0);
    for (NodeId v = 0; v < net.size(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (s.clustering.dominatorOf[vi] != d || v == d) continue;
      if (s.reporterChannel[vi] < fv) {
        ++members[static_cast<std::size_t>(s.reporterChannel[vi])];
        if (s.isReporter[vi]) ++reporters[static_cast<std::size_t>(s.reporterChannel[vi])];
      }
    }
    for (int c = 0; c < fv; ++c) {
      if (members[static_cast<std::size_t>(c)] == 0) continue;  // empty channel: vacuous
      if (reporters[static_cast<std::size_t>(c)] == 1) {
        ++good;
      } else {
        ++bad;
      }
    }
  }
  return {good, bad};
}

}  // namespace mcs::test
