#include <gtest/gtest.h>

#include "test_support.h"

/// Integration and edge-case suite: degenerate topologies, structure
/// reuse across many aggregations, message-layer helpers, and a smoke run
/// with the paper's literal constants.
namespace mcs {
namespace {

TEST(MessageLayer, IntentHelpers) {
  const Intent i = Intent::idle();
  EXPECT_EQ(i.action, Action::Idle);
  const Intent l = Intent::listen(3);
  EXPECT_EQ(l.action, Action::Listen);
  EXPECT_EQ(l.channel, 3);
  Message m;
  m.type = MsgType::Data;
  const Intent t = Intent::transmit(1, m);
  EXPECT_EQ(t.action, Action::Transmit);
  EXPECT_EQ(t.msg.type, MsgType::Data);
}

TEST(MessageLayer, ReceptionInterference) {
  Reception r;
  r.received = true;
  r.signalPower = 3.0;
  r.totalPower = 5.0;
  EXPECT_DOUBLE_EQ(r.interference(), 2.0);
  r.received = false;
  EXPECT_DOUBLE_EQ(r.interference(), 5.0);
}

TEST(Integration, SingletonNetwork) {
  Network net({{0.0, 0.0}}, SinrParams{});
  Simulator sim(net, 4, 1);
  const std::vector<double> values{7.5};
  const AggregateRun run = buildAndAggregate(sim, values, AggKind::Max);
  EXPECT_TRUE(run.delivered);
  EXPECT_EQ(run.valueAtNode[0], 7.5);
}

TEST(Integration, TwoNodesAllKinds) {
  for (const AggKind kind : {AggKind::Max, AggKind::Min, AggKind::Sum}) {
    Network net({{0.0, 0.0}, {0.3, 0.0}}, SinrParams{});
    Simulator sim(net, 2, 5);
    const std::vector<double> values{2.0, 5.0};
    const AggregateRun run = buildAndAggregate(sim, values, kind);
    EXPECT_TRUE(run.delivered);
    EXPECT_EQ(run.valueAtNode[0], aggregateGroundTruth(values, kind));
    EXPECT_EQ(run.valueAtNode[1], aggregateGroundTruth(values, kind));
  }
}

TEST(Integration, ManyAggregationsReuseOneStructure) {
  test::BuiltStructure b(250, 1.2, 4, 31);
  Rng rng(32);
  for (int i = 0; i < 5; ++i) {
    std::vector<double> values(static_cast<std::size_t>(b.net.size()));
    for (double& x : values) x = rng.uniform(-5, 5);
    const AggKind kind = i % 2 == 0 ? AggKind::Max : AggKind::Sum;
    const AggregateRun run = runAggregation(b.sim, b.s, values, kind);
    EXPECT_TRUE(run.delivered) << "round " << i;
  }
}

TEST(Integration, ColoringAfterAggregationSameStructure) {
  test::BuiltStructure b(250, 1.2, 4, 33);
  std::vector<double> values(static_cast<std::size_t>(b.net.size()), 1.0);
  const AggregateRun run = runAggregation(b.sim, b.s, values, AggKind::Sum);
  EXPECT_TRUE(run.delivered);
  const ColoringResult col = runColoring(b.sim, b.s);
  EXPECT_TRUE(col.complete);
  EXPECT_EQ(countColoringViolations(b.net, col.colorOf), 0);
}

TEST(Integration, DisconnectedComponentsAggregatePerComponent) {
  // Two far-apart blobs: the backbone cannot bridge them, so global
  // delivery must fail, but no protocol may hang or throw.
  Rng rng(35);
  auto a = deployUniformDisk(60, 0.3, rng);
  auto c = deployUniformDisk(60, 0.3, rng);
  for (auto& p : c) p.x += 10.0;
  a.insert(a.end(), c.begin(), c.end());
  Network net(std::move(a), SinrParams{});
  ASSERT_FALSE(net.graph().connected());
  Simulator sim(net, 4, 36);
  std::vector<double> values(static_cast<std::size_t>(net.size()));
  for (double& x : values) x = rng.uniform();
  const AggregateRun run = buildAndAggregate(sim, values, AggKind::Max);
  EXPECT_FALSE(run.delivered);  // no channel can cross a 10 R_T gap
}

TEST(Integration, CollinearDenseLine) {
  // Degenerate geometry: all nodes on one line.
  std::vector<Vec2> pts;
  Rng rng(37);
  for (int i = 0; i < 150; ++i) pts.push_back({rng.uniform(0.0, 2.0), 0.0});
  Network net(std::move(pts), SinrParams{});
  if (!net.graph().connected()) GTEST_SKIP();
  Simulator sim(net, 4, 38);
  std::vector<double> values(150, 1.0);
  const AggregateRun run = buildAndAggregate(sim, values, AggKind::Sum);
  EXPECT_TRUE(run.delivered);
  EXPECT_NEAR(run.valueAtNode[0], 150.0, 1e-9);
}

TEST(Integration, PaperStrictTuningSmoke) {
  // The literal constants from the paper on a tiny instance: slow but
  // must behave identically in structure (this exercises the r_c formula
  // path, rcFactor = 0, and the huge round counts).
  Tuning strict = Tuning::paperStrict();
  Rng rng(39);
  auto pts = deployUniformDisk(30, 0.25, rng);
  Network net(std::move(pts), SinrParams{}, strict);
  EXPECT_GT(net.rc(), 0.0);
  EXPECT_LT(net.rc(), 0.1);  // the worst-case formula is tiny
  Simulator sim(net, 2, 40);
  const DominatingSetResult ds = buildDominatingSet(sim);
  for (NodeId v = 0; v < net.size(); ++v) {
    EXPECT_NE(ds.clustering.dominatorOf[static_cast<std::size_t>(v)], kNoNode);
  }
}

TEST(Integration, HighChannelCountOnTinyNetwork) {
  // F far larger than any cluster: must degrade gracefully to few used
  // channels, not break.
  Network net = test::makeUniformNetwork(80, 0.8, 41);
  Simulator sim(net, 64, 42);
  const AggregationStructure s = buildStructure(sim);
  for (NodeId v = 0; v < net.size(); ++v) {
    EXPECT_LE(s.fvOfNode[static_cast<std::size_t>(v)], 64);
  }
  std::vector<double> values(80, 2.0);
  const AggregateRun run = runAggregation(sim, s, values, AggKind::Max);
  EXPECT_TRUE(run.delivered);
}

TEST(Integration, DedupedCoincidentPositions) {
  // Users may feed coincident sensor positions; dedupePositions makes the
  // deployment valid for the SINR model.
  Rng rng(43);
  std::vector<Vec2> pts(50, Vec2{0.1, 0.1});
  auto fixed = dedupePositions(std::move(pts), 1e-4, rng);
  Network net(std::move(fixed), SinrParams{});
  Simulator sim(net, 2, 44);
  std::vector<double> values(50, 3.0);
  const AggregateRun run = buildAndAggregate(sim, values, AggKind::Max);
  EXPECT_TRUE(run.delivered);
}

}  // namespace
}  // namespace mcs
