#include <gtest/gtest.h>

#include <algorithm>

#include "geom/deployment.h"
#include "sim/comm_graph.h"
#include "sim/network.h"
#include "util/rng.h"

namespace mcs {
namespace {

TEST(CommGraph, MatchesBruteForce) {
  Rng rng(17);
  const auto pts = deployUniformSquare(300, 1.5, rng);
  const double radius = 0.4;
  const CommGraph g(pts, radius);
  for (NodeId v = 0; v < g.size(); ++v) {
    std::vector<NodeId> want;
    for (NodeId u = 0; u < g.size(); ++u) {
      if (u != v && dist(pts[static_cast<std::size_t>(u)], pts[static_cast<std::size_t>(v)]) <=
                        radius) {
        want.push_back(u);
      }
    }
    const auto nbrs = g.neighbors(v);
    std::vector<NodeId> got(nbrs.begin(), nbrs.end());
    EXPECT_EQ(got, want);
    EXPECT_EQ(g.degree(v), static_cast<int>(want.size()));
  }
}

TEST(CommGraph, MaxDegreeAndEdgeCount) {
  const std::vector<Vec2> pts{{0, 0}, {0.1, 0}, {0.2, 0}, {5, 5}};
  const CommGraph g(pts, 0.15);
  EXPECT_EQ(g.maxDegree(), 2);       // middle node sees both ends
  EXPECT_EQ(g.edgeCount(), 2u);      // 0-1, 1-2
  EXPECT_EQ(g.degree(3), 0);
}

TEST(CommGraph, BfsDepths) {
  // Path graph 0 - 1 - 2 - 3.
  const std::vector<Vec2> pts{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const CommGraph g(pts, 1.1);
  const auto depth = g.bfs(0);
  EXPECT_EQ(depth, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CommGraph, BfsUnreachable) {
  const std::vector<Vec2> pts{{0, 0}, {10, 0}};
  const CommGraph g(pts, 1.0);
  const auto depth = g.bfs(0);
  EXPECT_EQ(depth[0], 0);
  EXPECT_EQ(depth[1], -1);
}

TEST(CommGraph, Connectivity) {
  const std::vector<Vec2> path{{0, 0}, {0.5, 0}, {1.0, 0}};
  EXPECT_TRUE(CommGraph(path, 0.6).connected());
  EXPECT_EQ(CommGraph(path, 0.6).componentCount(), 1);
  const std::vector<Vec2> split{{0, 0}, {0.5, 0}, {9, 0}, {9.5, 0}};
  EXPECT_FALSE(CommGraph(split, 0.6).connected());
  EXPECT_EQ(CommGraph(split, 0.6).componentCount(), 2);
}

TEST(CommGraph, DiameterPathGraph) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 12; ++i) pts.push_back({0.5 * i, 0.0});
  const CommGraph g(pts, 0.6);
  EXPECT_EQ(g.diameterExact(), 11);
  EXPECT_EQ(g.diameterEstimate(), 11);  // double sweep is exact on paths
}

TEST(CommGraph, DiameterEstimateIsLowerBound) {
  Rng rng(23);
  const auto pts = deployUniformSquare(250, 2.5, rng);
  const CommGraph g(pts, 0.5);
  EXPECT_LE(g.diameterEstimate(), g.diameterExact());
  // On random geometric graphs the double sweep is nearly tight.
  EXPECT_GE(g.diameterEstimate() + 2, g.diameterExact());
}

TEST(CommGraph, EmptyAndSingleton) {
  EXPECT_EQ(CommGraph(std::vector<Vec2>{}, 1.0).diameterExact(), 0);
  EXPECT_TRUE(CommGraph(std::vector<Vec2>{}, 1.0).connected());
  const std::vector<Vec2> one{{0, 0}};
  EXPECT_EQ(CommGraph(one, 1.0).diameterExact(), 0);
  EXPECT_TRUE(CommGraph(one, 1.0).connected());
}

TEST(Network, DerivedRadii) {
  Tuning tun;
  Network net({{0, 0}, {0.3, 0}}, SinrParams{}, tun);
  EXPECT_NEAR(net.rT(), 1.0, 1e-12);
  EXPECT_NEAR(net.rEps(), (1.0 - tun.eps) * net.rT(), 1e-12);
  EXPECT_NEAR(net.rEpsHalf(), (1.0 - tun.eps / 2.0) * net.rT(), 1e-12);
  EXPECT_NEAR(net.rc(), tun.rcFactor * net.rT(), 1e-12);
  // Theorem 24 geometry: adjacent clusters' dominators share an
  // R_{eps/2}-ball.
  EXPECT_LE(2.0 * net.rc() + net.rEps(), net.rEpsHalf() + 1e-12);
}

TEST(Network, PaperRcFormula) {
  Tuning tun;
  tun.rcFactor = 0.0;  // paper's worst-case formula
  Network net({{0, 0}, {0.3, 0}}, SinrParams{}, tun);
  const double t = SinrParams{}.lemma2Factor();
  const double expect = std::min(t / (2 * t + 2) * net.rEpsHalf(), tun.eps * net.rT() / 4);
  EXPECT_NEAR(net.rc(), expect, 1e-12);
  EXPECT_GT(net.rc(), 0.0);
}

TEST(Network, GraphUsesREps) {
  Network net({{0, 0}, {0.45, 0}, {0.6, 0}}, SinrParams{});  // rEps = 0.5
  EXPECT_EQ(net.graph().degree(0), 1);  // only the 0.45 node
  EXPECT_EQ(net.maxDegree(), 2);        // middle node
}

}  // namespace
}  // namespace mcs
