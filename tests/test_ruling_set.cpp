#include <gtest/gtest.h>

#include "test_support.h"

namespace mcs {
namespace {

RulingSetConfig defaultConfig(int n, double radius) {
  RulingSetConfig cfg;
  cfg.radius = radius;
  cfg.capProb = 0.125;
  cfg.initialProb = std::min(0.125, 0.5 / std::max(2, n));
  cfg.epochRounds = 3;
  cfg.cycleProb = true;
  cfg.totalRounds = 40 + 4 * static_cast<int>(std::log(std::max(2, n)));
  return cfg;
}

class RulingSetSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RulingSetSeeds, DominationAndIndependence) {
  const std::uint64_t seed = GetParam();
  Network net = test::makeUniformNetwork(300, 1.2, seed);
  Simulator sim(net, 4, seed * 3 + 1);
  const double r = net.rc();
  std::vector<char> everyone(static_cast<std::size_t>(net.size()), 1);
  const RulingSetResult rs = runRulingSet(sim, everyone, defaultConfig(net.size(), r));

  int members = 0;
  for (NodeId v = 0; v < net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (rs.inSet[vi]) {
      ++members;
      continue;
    }
    // Every non-member is bound to a member within r (the binding may have
    // been forwarded once after a conflict demotion: allow 2r).
    const NodeId d = rs.dominator[vi];
    ASSERT_NE(d, kNoNode) << "node " << v << " unbound";
    EXPECT_LE(net.distance(v, d), 2 * r + 1e-12);
  }
  EXPECT_GT(members, 0);
  EXPECT_LT(members, net.size());

  // Independence: members pairwise > r apart, with a tiny tolerance for
  // same-round joins the conflict resolution did not catch.
  int violations = 0;
  std::vector<NodeId> mem;
  for (NodeId v = 0; v < net.size(); ++v) {
    if (rs.inSet[static_cast<std::size_t>(v)]) mem.push_back(v);
  }
  for (std::size_t i = 0; i < mem.size(); ++i) {
    for (std::size_t j = i + 1; j < mem.size(); ++j) {
      if (net.distance(mem[i], mem[j]) <= r) ++violations;
    }
  }
  // The bare engine (one channel, global contention, practical round
  // counts) resolves most but not all simultaneous joins; the §5 pipeline
  // layers re-association and verification on top (see those tests for
  // the tighter bounds).
  EXPECT_LE(violations, std::max(2, members / 10))
      << members << " members, " << violations << " close pairs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RulingSetSeeds, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(RulingSet, SingletonSelfElects) {
  Network net({{0, 0}}, SinrParams{});
  Simulator sim(net, 1, 1);
  std::vector<char> everyone{1};
  auto cfg = defaultConfig(1, 0.12);
  const RulingSetResult rs = runRulingSet(sim, everyone, cfg);
  EXPECT_TRUE(rs.inSet[0]);
}

TEST(RulingSet, IsolatedNodesAllJoin) {
  // Nodes far apart: everyone is isolated and must self-elect.
  std::vector<Vec2> pts;
  for (int i = 0; i < 5; ++i) pts.push_back({3.0 * i, 0.0});
  Network net(std::move(pts), SinrParams{});
  Simulator sim(net, 1, 2);
  std::vector<char> everyone(5, 1);
  const RulingSetResult rs = runRulingSet(sim, everyone, defaultConfig(5, 0.12));
  for (int v = 0; v < 5; ++v) EXPECT_TRUE(rs.inSet[static_cast<std::size_t>(v)]);
}

TEST(RulingSet, NonParticipantsUntouched) {
  Network net = test::makeUniformNetwork(100, 1.0, 5);
  Simulator sim(net, 1, 6);
  std::vector<char> participants(100, 0);
  for (int v = 0; v < 50; ++v) participants[static_cast<std::size_t>(v)] = 1;
  const RulingSetResult rs = runRulingSet(sim, participants, defaultConfig(100, net.rc()));
  for (int v = 50; v < 100; ++v) {
    EXPECT_FALSE(rs.inSet[static_cast<std::size_t>(v)]);
    EXPECT_EQ(rs.dominator[static_cast<std::size_t>(v)], kNoNode);
  }
  // Participants are all resolved.
  for (int v = 0; v < 50; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    EXPECT_TRUE(rs.inSet[vi] || rs.dominator[vi] != kNoNode);
  }
}

TEST(RulingSet, GroupsAreScoped) {
  // Two interleaved groups in the same small area: members of one group
  // must never be dominated by the other group's members.
  Network net = test::makeUniformNetwork(120, 0.5, 8);
  Simulator sim(net, 1, 9);
  std::vector<char> everyone(120, 1);
  auto cfg = defaultConfig(120, 0.4);
  cfg.groupOf.assign(120, 0);
  for (NodeId v = 0; v < 120; ++v) cfg.groupOf[static_cast<std::size_t>(v)] = v % 2;
  const RulingSetResult rs = runRulingSet(sim, everyone, cfg);
  for (NodeId v = 0; v < 120; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (rs.dominator[vi] != kNoNode) {
      EXPECT_EQ(v % 2, rs.dominator[vi] % 2) << "cross-group binding";
    }
  }
}

TEST(RulingSet, ChannelPartitionIndependentElections) {
  // All nodes in one tight ball, split over 4 channels: one member per
  // channel expected.
  Rng rng(11);
  auto pts = deployUniformDisk(40, 0.05, rng);
  Network net(std::move(pts), SinrParams{});
  Simulator sim(net, 4, 12);
  std::vector<char> everyone(40, 1);
  auto cfg = defaultConfig(40, 0.2);
  cfg.channelOf.assign(40, 0);
  for (NodeId v = 0; v < 40; ++v) {
    cfg.channelOf[static_cast<std::size_t>(v)] = static_cast<ChannelId>(v % 4);
  }
  const RulingSetResult rs = runRulingSet(sim, everyone, cfg);
  std::vector<int> perChannel(4, 0);
  for (NodeId v = 0; v < 40; ++v) {
    if (rs.inSet[static_cast<std::size_t>(v)]) ++perChannel[static_cast<std::size_t>(v % 4)];
  }
  for (int c = 0; c < 4; ++c) EXPECT_EQ(perChannel[static_cast<std::size_t>(c)], 1);
}

TEST(RulingSet, Determinism) {
  const auto run = [] {
    Network net = test::makeUniformNetwork(150, 1.0, 4);
    Simulator sim(net, 2, 77);
    std::vector<char> everyone(150, 1);
    const RulingSetResult rs = runRulingSet(sim, everyone, defaultConfig(150, net.rc()));
    return rs.inSet;
  };
  EXPECT_EQ(run(), run());
}

TEST(RulingSet, SlotsMatchThreePerRound) {
  Network net = test::makeUniformNetwork(60, 1.0, 6);
  Simulator sim(net, 1, 7);
  std::vector<char> everyone(60, 1);
  const std::uint64_t before = sim.slots();
  const RulingSetResult rs = runRulingSet(sim, everyone, defaultConfig(60, net.rc()));
  EXPECT_EQ(sim.slots() - before, rs.slotsUsed);
  EXPECT_GT(rs.slotsUsed, 0u);
}

}  // namespace
}  // namespace mcs
