#include <gtest/gtest.h>

#include <map>

#include "test_support.h"

namespace mcs {
namespace {

TEST(AggOps, IdentityAndCombine) {
  EXPECT_EQ(aggCombine(AggKind::Max, aggIdentity(AggKind::Max), 3.0), 3.0);
  EXPECT_EQ(aggCombine(AggKind::Min, aggIdentity(AggKind::Min), 3.0), 3.0);
  EXPECT_EQ(aggCombine(AggKind::Sum, aggIdentity(AggKind::Sum), 3.0), 3.0);
  EXPECT_EQ(aggCombine(AggKind::Max, 2.0, 5.0), 5.0);
  EXPECT_EQ(aggCombine(AggKind::Min, 2.0, 5.0), 2.0);
  EXPECT_EQ(aggCombine(AggKind::Sum, 2.0, 5.0), 7.0);
}

class IntraSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntraSeeds, ClusterValuesExact) {
  const std::uint64_t seed = GetParam();
  test::BuiltStructure b(400, 1.2, 8, seed);
  Rng rng(seed * 5 + 1);
  std::vector<double> values(static_cast<std::size_t>(b.net.size()));
  for (double& x : values) x = rng.uniform();

  const IntraResult res = aggregateIntra(b.sim, b.s, values, AggKind::Max);
  ASSERT_TRUE(res.uplink.allDelivered);

  std::vector<double> want(static_cast<std::size_t>(b.net.size()),
                           aggIdentity(AggKind::Max));
  for (NodeId v = 0; v < b.net.size(); ++v) {
    const NodeId d = b.s.clustering.dominatorOf[static_cast<std::size_t>(v)];
    want[static_cast<std::size_t>(d)] = std::max(want[static_cast<std::size_t>(d)],
                                                 values[static_cast<std::size_t>(v)]);
  }
  for (const NodeId d : b.s.clustering.dominators) {
    EXPECT_EQ(res.clusterValue[static_cast<std::size_t>(d)],
              want[static_cast<std::size_t>(d)])
        << "cluster " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntraSeeds, ::testing::Values(1u, 2u, 3u));

TEST(Intra, SumCountsEveryNodeOnce) {
  test::BuiltStructure b(350, 1.2, 4, 11);
  std::vector<double> ones(static_cast<std::size_t>(b.net.size()), 1.0);
  const IntraResult res = aggregateIntra(b.sim, b.s, ones, AggKind::Sum);
  ASSERT_TRUE(res.uplink.allDelivered);
  const auto sizes = test::trueClusterSizes(b.net, b.s.clustering);
  for (const NodeId d : b.s.clustering.dominators) {
    EXPECT_DOUBLE_EQ(res.clusterValue[static_cast<std::size_t>(d)],
                     sizes[static_cast<std::size_t>(d)] + 1.0)
        << "cluster " << d;
  }
}

TEST(Intra, BoundedContention) {
  // Lemma 19: the contention-to-f_v ratio stays near lambda; we allow a
  // small overshoot (one doubling past the backoff trigger).
  test::BuiltStructure b(500, 1.1, 8, 13);
  std::vector<double> ones(static_cast<std::size_t>(b.net.size()), 1.0);
  const IntraResult res = aggregateIntra(b.sim, b.s, ones, AggKind::Max);
  EXPECT_LE(res.uplink.maxContentionRatio, 4.0 * b.net.tuning().aggLambda);
}

TEST(Intra, PhaseCountsFollowLemma21) {
  test::BuiltStructure b(500, 1.1, 8, 17);
  std::vector<double> ones(static_cast<std::size_t>(b.net.size()), 1.0);
  const IntraResult res = aggregateIntra(b.sim, b.s, ones, AggKind::Max);
  // O(log(Delta/F) + log log n) phases for these sizes means "few".
  EXPECT_LE(res.uplink.maxPhasesAnyCluster, 30);
  EXPECT_GT(res.uplink.slots, 0u);
}

TEST(Intra, UplinkDelegateSeesEachFollowerOnce) {
  test::BuiltStructure b(300, 1.2, 4, 19);
  std::map<NodeId, int> deliveries;
  const UplinkMetrics met = runFollowerUplink(
      b.sim, b.s, [](NodeId) { return Message{}; },
      [&](NodeId, const Message& m) { ++deliveries[m.src]; });
  ASSERT_TRUE(met.allDelivered);
  int followers = 0;
  for (NodeId v = 0; v < b.net.size(); ++v) followers += b.s.isFollower(v);
  EXPECT_EQ(static_cast<int>(deliveries.size()), followers);
  for (const auto& [src, count] : deliveries) {
    EXPECT_EQ(count, 1) << "follower " << src << " delivered twice";
    EXPECT_TRUE(b.s.isFollower(src));
  }
}

TEST(Intra, ReporterChannelReturnedToFollowers) {
  test::BuiltStructure b(300, 1.2, 4, 23);
  std::vector<ChannelId> chan(static_cast<std::size_t>(b.net.size()), kNoChannel);
  const UplinkMetrics met = runFollowerUplink(
      b.sim, b.s, [](NodeId) { return Message{}; }, [](NodeId, const Message&) {}, &chan);
  ASSERT_TRUE(met.allDelivered);
  for (NodeId v = 0; v < b.net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (b.s.isFollower(v)) {
      EXPECT_NE(chan[vi], kNoChannel);
      EXPECT_LT(chan[vi], 8);
    } else {
      EXPECT_EQ(chan[vi], kNoChannel);
    }
  }
}

TEST(Intra, MoreChannelsFewerUplinkSlots) {
  // The headline effect at cluster scale: uplink cost shrinks with F.
  std::uint64_t slots1 = 0, slots8 = 0;
  {
    test::BuiltStructure b(900, 0.8, 1, 31);
    std::vector<double> ones(static_cast<std::size_t>(b.net.size()), 1.0);
    slots1 = aggregateIntra(b.sim, b.s, ones, AggKind::Max).uplink.slots;
  }
  {
    test::BuiltStructure b(900, 0.8, 8, 31);
    std::vector<double> ones(static_cast<std::size_t>(b.net.size()), 1.0);
    slots8 = aggregateIntra(b.sim, b.s, ones, AggKind::Max).uplink.slots;
  }
  EXPECT_LT(slots8, slots1);
}

}  // namespace
}  // namespace mcs
