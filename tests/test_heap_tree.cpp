#include <gtest/gtest.h>

#include "proto/heap_tree.h"

namespace mcs {
namespace {

TEST(HeapTree, ParentChain) {
  EXPECT_EQ(heapParent(1), 0);
  EXPECT_EQ(heapParent(2), 1);
  EXPECT_EQ(heapParent(3), 1);
  EXPECT_EQ(heapParent(6), 3);
  EXPECT_EQ(heapParent(7), 3);
}

TEST(HeapTree, Channels) {
  // The dominator (k=0) and the first reporter (k=1) share channel 0.
  EXPECT_EQ(heapChannel(0), 0);
  EXPECT_EQ(heapChannel(1), 0);
  EXPECT_EQ(heapChannel(2), 1);
  EXPECT_EQ(heapChannel(5), 4);
  // Uplink goes to the parent's channel.
  EXPECT_EQ(heapUplinkChannel(1), 0);
  EXPECT_EQ(heapUplinkChannel(2), 0);
  EXPECT_EQ(heapUplinkChannel(3), 0);
  EXPECT_EQ(heapUplinkChannel(4), 1);
  EXPECT_EQ(heapUplinkChannel(5), 1);
}

TEST(HeapTree, Levels) {
  EXPECT_EQ(heapLevel(1), 0);
  EXPECT_EQ(heapLevel(2), 1);
  EXPECT_EQ(heapLevel(3), 1);
  EXPECT_EQ(heapLevel(4), 2);
  EXPECT_EQ(heapLevel(7), 2);
  EXPECT_EQ(heapLevel(8), 3);
}

TEST(HeapTree, MaxLevelLogarithmic) {
  EXPECT_EQ(heapMaxLevel(1), 0);
  EXPECT_EQ(heapMaxLevel(2), 1);
  EXPECT_EQ(heapMaxLevel(3), 1);
  EXPECT_EQ(heapMaxLevel(4), 2);
  EXPECT_EQ(heapMaxLevel(15), 3);
  EXPECT_EQ(heapMaxLevel(16), 4);
}

class HeapTreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(HeapTreeSweep, StructuralInvariants) {
  const int k = GetParam();
  // Parent is strictly shallower; level = level(parent) + 1.
  EXPECT_EQ(heapLevel(k), heapLevel(heapParent(k)) + (k > 1 ? 1 : 0));
  // A child transmits on its parent's own channel.
  EXPECT_EQ(heapUplinkChannel(k), heapChannel(heapParent(k)));
  // Siblings 2p and 2p+1 have opposite parity (collision-free slots).
  if (k >= 2) {
    const int sibling = (k % 2 == 0) ? k + 1 : k - 1;
    EXPECT_NE(k % 2, sibling % 2);
    EXPECT_EQ(heapParent(k), heapParent(sibling));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallK, HeapTreeSweep, ::testing::Range(1, 64));

}  // namespace
}  // namespace mcs
