#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geom/deployment.h"

/// Deployment-generator contracts: determinism under a fixed seed, points
/// inside the declared region, and duplicate elimination.
namespace mcs {
namespace {

void expectIdentical(const std::vector<Vec2>& a, const std::vector<Vec2>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x) << "point " << i;
    EXPECT_EQ(a[i].y, b[i].y) << "point " << i;
  }
}

TEST(Deployment, DeterministicUnderFixedSeed) {
  // Every generator, same seed twice -> bitwise-identical point sets.
  for (int pass = 0; pass < 1; ++pass) {
    Rng r1(77), r2(77);
    expectIdentical(deployUniformSquare(200, 1.5, r1), deployUniformSquare(200, 1.5, r2));
    expectIdentical(deployUniformDisk(200, 0.8, r1), deployUniformDisk(200, 0.8, r2));
    expectIdentical(deployPerturbedGrid(200, 1.5, 0.4, r1),
                    deployPerturbedGrid(200, 1.5, 0.4, r2));
    expectIdentical(deployClustered(200, 5, 1.5, 0.1, r1),
                    deployClustered(200, 5, 1.5, 0.1, r2));
    expectIdentical(deployCorridor(200, 3.0, 0.3, r1), deployCorridor(200, 3.0, 0.3, r2));
    expectIdentical(deployPoissonDisk(150, 1.5, 0.05, r1),
                    deployPoissonDisk(150, 1.5, 0.05, r2));
    expectIdentical(deployDenseSparseMixture(200, 2.0, 0.6, 0.15, r1),
                    deployDenseSparseMixture(200, 2.0, 0.6, 0.15, r2));
  }
  // ExponentialChain takes no Rng at all.
  expectIdentical(deployExponentialChain(32, 1.3, 0.5), deployExponentialChain(32, 1.3, 0.5));
}

TEST(Deployment, DifferentSeedsDiffer) {
  Rng r1(1), r2(2);
  const auto a = deployUniformSquare(50, 1.0, r1);
  const auto b = deployUniformSquare(50, 1.0, r2);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += a[i] == b[i];
  EXPECT_EQ(same, 0);
}

TEST(Deployment, UniformSquareBounds) {
  Rng rng(5);
  const double side = 2.5;
  for (const Vec2& p : deployUniformSquare(500, side, rng)) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, side);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, side);
  }
}

TEST(Deployment, UniformDiskBounds) {
  Rng rng(6);
  const double radius = 1.25;
  for (const Vec2& p : deployUniformDisk(500, radius, rng)) {
    EXPECT_LE(p.norm(), radius);
  }
}

TEST(Deployment, PerturbedGridBoundsAndCount) {
  Rng rng(7);
  const double side = 1.8;
  const auto pts = deployPerturbedGrid(300, side, 0.4, rng);
  EXPECT_EQ(pts.size(), 300u);
  // Jitter is a fraction (< 0.5) of the grid pitch around cell centers,
  // so every point stays inside the declared square.
  for (const Vec2& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, side);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, side);
  }
}

TEST(Deployment, CorridorBounds) {
  Rng rng(8);
  for (const Vec2& p : deployCorridor(400, 4.0, 0.25, rng)) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 4.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 0.25);
  }
}

TEST(Deployment, ExponentialChainShape) {
  const int n = 24;
  const double maxGap = 0.5;
  const auto pts = deployExponentialChain(n, 1.4, maxGap);
  ASSERT_EQ(pts.size(), static_cast<std::size_t>(n));
  double largest = 0.0;
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(pts[static_cast<std::size_t>(i)].x, 0.0);
    EXPECT_EQ(pts[static_cast<std::size_t>(i)].y, 0.0);
    if (i > 0) {
      const double gap =
          pts[static_cast<std::size_t>(i)].x - pts[static_cast<std::size_t>(i - 1)].x;
      EXPECT_GT(gap, 0.0);  // strictly increasing positions
      largest = std::max(largest, gap);
    }
  }
  EXPECT_NEAR(largest, maxGap, 1e-12);
}

TEST(Deployment, PoissonDiskSeparationAndBounds) {
  Rng rng(9);
  const double side = 1.6;
  const double minDist = 0.05;
  const auto pts = deployPoissonDisk(300, side, minDist, rng);
  // Far below the packing limit (~870 for these knobs): all points placed.
  EXPECT_EQ(pts.size(), 300u);
  for (const Vec2& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, side);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, side);
  }
  const double minD2 = minDist * minDist;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_GE(dist2(pts[i], pts[j]), minD2) << "pair " << i << "," << j;
    }
  }
}

TEST(Deployment, PoissonDiskSaturatesGracefully) {
  Rng rng(10);
  // minDist so large the square cannot hold 100 points: must stop early
  // (budget-bounded), never hang, and still respect the separation.
  const auto pts = deployPoissonDisk(100, 1.0, 0.4, rng);
  EXPECT_LT(pts.size(), 100u);
  EXPECT_GE(pts.size(), 3u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_GE(dist(pts[i], pts[j]), 0.4);
    }
  }
}

TEST(Deployment, MixtureSplitsDenseAndSparse) {
  Rng rng(11);
  const double side = 2.0;
  const double patchFrac = 0.2;
  const auto pts = deployDenseSparseMixture(500, side, 0.6, patchFrac, rng);
  ASSERT_EQ(pts.size(), 500u);
  const double patch = side * patchFrac;
  const double lo = (side - patch) * 0.5;
  const double hi = lo + patch;
  int inPatch = 0;
  for (const Vec2& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, side);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, side);
    if (p.x >= lo && p.x <= hi && p.y >= lo && p.y <= hi) ++inPatch;
  }
  // The 300 dense points are in the patch by construction; of the 200
  // sparse ones only ~patchFrac^2 = 4% land there by chance.
  EXPECT_GE(inPatch, 300);
  EXPECT_LE(inPatch, 330);
}

TEST(Deployment, DedupeEliminatesDuplicatesAtTinyEpsilon) {
  // A run of four identical points plus scattered singles.
  std::vector<Vec2> pts{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5},
                        {0.1, 0.9}, {0.9, 0.1}, {0.1, 0.9}};
  Rng rng(13);
  const double eps = 1e-12;
  const auto out = dedupePositions(pts, eps, rng);
  ASSERT_EQ(out.size(), pts.size());
  // Every pair distinct afterwards...
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = i + 1; j < out.size(); ++j) {
      EXPECT_GT(dist2(out[i], out[j]), 0.0) << "pair " << i << "," << j;
    }
  }
  // ...and nothing moved farther than the documented perturbation radius
  // (eps * 1.5), so the geometry is preserved.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_LE(dist(out[i], pts[i]), 1.5 * eps) << "point " << i;
  }
}

TEST(Deployment, DedupeLeavesDistinctPointsUntouched) {
  std::vector<Vec2> pts{{0.0, 0.0}, {0.25, 0.75}, {1.0, 1.0}};
  Rng rng(14);
  const auto out = dedupePositions(pts, 1e-9, rng);
  expectIdentical(out, pts);
}

}  // namespace
}  // namespace mcs
