#include <gtest/gtest.h>

#include "test_support.h"

namespace mcs {
namespace {

TEST(ChannelsForCluster, Formula) {
  Tuning tun;
  tun.c1 = 1.0;
  tun.lnFactor = 1.0;
  const int n = 1000;
  const double lnn = std::log(1000.0);
  // Small cluster -> one channel.
  EXPECT_EQ(channelsForCluster(0.0, n, 8, tun), 1);
  EXPECT_EQ(channelsForCluster(2.0, n, 8, tun), 1);
  // est + 1 just above c1 ln n -> two channels.
  EXPECT_EQ(channelsForCluster(lnn + 0.5, n, 8, tun), 2);
  // Capped at F.
  EXPECT_EQ(channelsForCluster(1e9, n, 8, tun), 8);
  EXPECT_EQ(channelsForCluster(1e9, n, 3, tun), 3);
  // Never below one channel.
  EXPECT_GE(channelsForCluster(-5.0, n, 8, tun), 1);
}

class ReporterSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReporterSeeds, OneReporterPerNonemptyChannel) {
  const std::uint64_t seed = GetParam();
  test::BuiltStructure b(400, 1.2, 8, seed);
  const auto [good, bad] = test::reporterCensus(b.net, b.s);
  EXPECT_GT(good, 0);
  EXPECT_LE(bad, std::max(1, good / 20)) << "duplicate/missing reporters";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReporterSeeds, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Reporter, ChannelsWithinFv) {
  test::BuiltStructure b(300, 1.2, 8, 5);
  for (NodeId v = 0; v < b.net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (b.s.clustering.isDominator[vi]) continue;
    EXPECT_GE(b.s.fvOfNode[vi], 1);
    EXPECT_LE(b.s.fvOfNode[vi], 8);
    EXPECT_GE(b.s.reporterChannel[vi], 0);
    EXPECT_LT(b.s.reporterChannel[vi], b.s.fvOfNode[vi]);
  }
}

TEST(Reporter, ReportersAreDominatees) {
  test::BuiltStructure b(300, 1.2, 4, 6);
  for (NodeId v = 0; v < b.net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (b.s.isReporter[vi]) {
      EXPECT_FALSE(b.s.clustering.isDominator[vi]);
      EXPECT_NE(b.s.clustering.dominatorOf[vi], kNoNode);
    }
  }
}

TEST(Reporter, SingleChannelSingleReporterPerCluster) {
  test::BuiltStructure b(300, 1.2, 1, 7);
  std::vector<int> reporters(static_cast<std::size_t>(b.net.size()), 0);
  for (NodeId v = 0; v < b.net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (b.s.isReporter[vi]) {
      ++reporters[static_cast<std::size_t>(b.s.clustering.dominatorOf[vi])];
    }
  }
  int bad = 0;
  const auto sizes = test::trueClusterSizes(b.net, b.s.clustering);
  for (const NodeId d : b.s.clustering.dominators) {
    const auto di = static_cast<std::size_t>(d);
    if (sizes[di] == 0) continue;  // no dominatees, no reporter
    if (reporters[di] != 1) ++bad;
  }
  EXPECT_LE(bad, 1 + static_cast<int>(b.s.clustering.dominators.size()) / 20);
}

TEST(Reporter, FvGrowsWithClusterSize) {
  // Denser network -> larger clusters -> more channels used.
  test::BuiltStructure sparse(200, 1.6, 8, 8);
  test::BuiltStructure dense(1200, 0.9, 8, 8);
  const auto maxFv = [](const test::BuiltStructure& b) {
    int m = 0;
    for (const int f : b.s.fvOfNode) m = std::max(m, f);
    return m;
  };
  EXPECT_GT(maxFv(dense), maxFv(sparse));
}

}  // namespace
}  // namespace mcs
