#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "agg/aggregate.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "sim/network.h"
#include "sim/simulator.h"

/// The scenario engine: spec parsing, the preset registry, and the
/// per-seed execution contract (bit-identical to directly-wired runs).
namespace mcs {
namespace {

// ---------------------------------------------------------------- parsing

TEST(ScenarioSpec, AppliesKeys) {
  ScenarioSpec spec;
  std::string err;
  ASSERT_TRUE(applyScenarioKey(spec, "deployment", "corridor", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "n", "123", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "length", "2.5", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "channels", "4", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "protocol", "agg_sum", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "fading", "lognormal", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "shadow_sigma_db", "3.5", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "medium_mode", "nearfar", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "seeds", "5", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "seed0", "100", err)) << err;
  EXPECT_EQ(spec.deployment.kind, DeploymentKind::Corridor);
  EXPECT_EQ(spec.deployment.n, 123);
  EXPECT_DOUBLE_EQ(spec.deployment.length, 2.5);
  EXPECT_EQ(spec.channels, 4);
  EXPECT_EQ(spec.protocol, ProtocolKind::AggregateSum);
  EXPECT_EQ(spec.sinr.fading.model, FadingModel::Lognormal);
  EXPECT_DOUBLE_EQ(spec.sinr.fading.shadowSigmaDb, 3.5);
  EXPECT_EQ(spec.sinr.mediumMode, MediumMode::NearFar);
  EXPECT_EQ(spec.seeds, 5);
  EXPECT_EQ(spec.seed0, 100u);
  EXPECT_EQ(validateScenario(spec), "");
}

TEST(ScenarioSpec, RangeKeyRescalesNoise) {
  ScenarioSpec spec;
  std::string err;
  ASSERT_TRUE(applyScenarioKey(spec, "range", "2", err)) << err;
  EXPECT_NEAR(spec.sinr.transmissionRange(), 2.0, 1e-12);
}

TEST(ScenarioSpec, RejectsUnknownKey) {
  ScenarioSpec spec;
  std::string err;
  EXPECT_FALSE(applyScenarioKey(spec, "definitely_not_a_key", "1", err));
  EXPECT_NE(err.find("definitely_not_a_key"), std::string::npos);
}

TEST(ScenarioSpec, RejectsMalformedValues) {
  ScenarioSpec spec;
  std::string err;
  EXPECT_FALSE(applyScenarioKey(spec, "n", "12x", err));
  EXPECT_NE(err.find("malformed"), std::string::npos);
  EXPECT_FALSE(applyScenarioKey(spec, "alpha", "three", err));
  EXPECT_FALSE(applyScenarioKey(spec, "deployment", "donut", err));
  EXPECT_FALSE(applyScenarioKey(spec, "protocol", "magic", err));
  EXPECT_FALSE(applyScenarioKey(spec, "fading", "sunny", err));
  // Nothing was modified by the failed assignments.
  EXPECT_EQ(spec.deployment.n, ScenarioSpec{}.deployment.n);
}

TEST(ScenarioSpec, ValidateCatchesCrossFieldErrors) {
  ScenarioSpec spec;
  spec.deployment.n = 0;
  EXPECT_NE(validateScenario(spec), "");
  spec = ScenarioSpec{};
  spec.protocol = ProtocolKind::Aloha;  // channels defaults to 8
  EXPECT_NE(validateScenario(spec), "");
  spec.channels = 1;
  EXPECT_EQ(validateScenario(spec), "");
  spec = ScenarioSpec{};
  spec.sinr.fading.shadowSigmaDb = -1.0;
  EXPECT_NE(validateScenario(spec), "");
}

TEST(ScenarioSpec, HierModeAndThetaRoundTrip) {
  ScenarioSpec spec;
  std::string err;
  ASSERT_TRUE(applyScenarioKey(spec, "medium_mode", "hier", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "hier_theta", "0.25", err)) << err;
  EXPECT_EQ(spec.sinr.mediumMode, MediumMode::Hierarchical);
  EXPECT_DOUBLE_EQ(spec.sinr.hierTheta, 0.25);
  EXPECT_EQ(validateScenario(spec), "");

  // Serialize -> reparse preserves the mode and the knob.
  const std::string kv = scenarioToKeyValues(spec);
  EXPECT_NE(kv.find("medium_mode = hier"), std::string::npos) << kv;
  EXPECT_NE(kv.find("hier_theta = 0.25"), std::string::npos) << kv;

  // theta must lie in (0, 1]: 0 and >1 are cross-field validation errors.
  spec.sinr.hierTheta = 0.0;
  EXPECT_NE(validateScenario(spec), "");
  spec.sinr.hierTheta = 1.5;
  EXPECT_NE(validateScenario(spec), "");
  spec.sinr.hierTheta = 1.0;
  EXPECT_EQ(validateScenario(spec), "");
}

TEST(ScenarioSpec, LoadsScenarioFile) {
  const std::string path = ::testing::TempDir() + "scenario_test_spec.txt";
  {
    std::ofstream f(path);
    f << "# sensor mesh, impaired\n"
      << "name = mesh_test\n"
      << "deployment = poisson_disk   # inline comment\n"
      << "n = 64\n"
      << "side = 1.2\n"
      << "min_dist = 0.03\n"
      << "\n"
      << "fading = rayleigh\n"
      << "channels = 2\n";
  }
  ScenarioSpec spec;
  std::string err;
  ASSERT_TRUE(loadScenarioFile(spec, path, err)) << err;
  EXPECT_EQ(spec.name, "mesh_test");
  EXPECT_EQ(spec.deployment.kind, DeploymentKind::PoissonDisk);
  EXPECT_EQ(spec.deployment.n, 64);
  EXPECT_DOUBLE_EQ(spec.deployment.minDist, 0.03);
  EXPECT_EQ(spec.sinr.fading.model, FadingModel::Rayleigh);
  EXPECT_EQ(spec.channels, 2);
  std::remove(path.c_str());
}

TEST(ScenarioSpec, ScenarioFileErrorsNameTheLine) {
  const std::string path = ::testing::TempDir() + "scenario_bad_spec.txt";
  {
    std::ofstream f(path);
    f << "n = 10\n"
      << "not a key value line\n";
  }
  ScenarioSpec spec;
  std::string err;
  EXPECT_FALSE(loadScenarioFile(spec, path, err));
  EXPECT_NE(err.find(":2:"), std::string::npos) << err;
  std::remove(path.c_str());

  EXPECT_FALSE(loadScenarioFile(spec, "/nonexistent/file.scenario", err));
}

TEST(ScenarioSpec, ArgsOverridesRespectReservedAndRejectUnknown) {
  const char* argv[] = {"prog", "--scenario=uniform_square", "--n=42", "--fading=rayleigh"};
  const Args args(4, argv);
  ScenarioSpec spec;
  std::string err;
  ASSERT_TRUE(applyScenarioArgs(spec, args, {"scenario"}, err)) << err;
  EXPECT_EQ(spec.deployment.n, 42);
  EXPECT_EQ(spec.sinr.fading.model, FadingModel::Rayleigh);

  // Without the reservation, "scenario" is an unknown spec key: loud.
  ScenarioSpec fresh;
  EXPECT_FALSE(applyScenarioArgs(fresh, args, {}, err));
}

// --------------------------------------------------------------- registry

TEST(ScenarioRegistry, EveryPresetIsFindableAndValid) {
  const auto names = ScenarioRegistry::names();
  ASSERT_GE(names.size(), 10u);
  for (const std::string& name : names) {
    ScenarioSpec spec;
    ASSERT_TRUE(ScenarioRegistry::find(name, spec)) << name;
    EXPECT_EQ(spec.name, name);
    EXPECT_EQ(validateScenario(spec), "") << name << ": " << validateScenario(spec);
    EXPECT_FALSE(describeScenario(spec).empty());
  }
  ScenarioSpec spec;
  EXPECT_FALSE(ScenarioRegistry::find("no_such_preset", spec));
}

TEST(ScenarioRegistry, CoversEveryDeploymentKind) {
  bool seen[8] = {};
  for (const std::string& name : ScenarioRegistry::names()) {
    ScenarioSpec spec;
    ASSERT_TRUE(ScenarioRegistry::find(name, spec));
    seen[static_cast<std::size_t>(spec.deployment.kind)] = true;
  }
  for (int k = 0; k < 8; ++k) EXPECT_TRUE(seen[k]) << "DeploymentKind " << k << " uncovered";
}

// ---------------------------------------------------------------- engine

/// Small, fast spec used by the execution tests.
ScenarioSpec smallAggSpec() {
  ScenarioSpec spec;
  spec.name = "test_small";
  spec.deployment.kind = DeploymentKind::UniformSquare;
  spec.deployment.n = 150;
  spec.deployment.side = 1.0;
  spec.channels = 4;
  spec.protocol = ProtocolKind::AggregateMax;
  spec.seeds = 2;
  spec.seed0 = 5;
  return spec;
}

TEST(ScenarioRunner, MatchesDirectlyWiredSimulatorBitwise) {
  const ScenarioSpec spec = smallAggSpec();
  const std::uint64_t seed = 5;
  const SeedResult engine = runScenarioSeed(spec, seed);
  ASSERT_TRUE(engine.error.empty()) << engine.error;

  // The documented per-seed contract, wired by hand.
  Rng deployRng(seed);
  auto pts = materializeDeployment(spec.deployment, deployRng);
  Network net(std::move(pts), spec.sinr);
  Simulator sim(net, spec.channels, seed);
  Rng vr = Rng(seed).fork(kValueStream);
  std::vector<double> values(static_cast<std::size_t>(net.size()));
  for (double& x : values) x = vr.uniform();
  const AggregationStructure s = buildStructure(sim);
  const AggregateRun run = runAggregation(sim, s, values, AggKind::Max);

  EXPECT_EQ(engine.deployedN, net.size());
  EXPECT_EQ(engine.slots, sim.mediumStats().slots);
  EXPECT_EQ(engine.decodes, sim.mediumStats().decodes);
  EXPECT_EQ(engine.listens, sim.mediumStats().listens);
  EXPECT_EQ(engine.transmissions, sim.mediumStats().transmissions);
  EXPECT_EQ(engine.structureSlots, s.costs.structureTotal());
  EXPECT_EQ(engine.metricOr("uplink_slots"), static_cast<double>(run.costs.uplink));
  EXPECT_EQ(engine.delivered, run.delivered);
  EXPECT_EQ(engine.metricOr("agg_value"), run.valueAtNode[0]);  // bitwise
  EXPECT_EQ(engine.metricOr("truth_value"), aggregateGroundTruth(values, AggKind::Max));
}

TEST(ScenarioRunner, BatchIsOrderedAndLaneCountInvariant) {
  ScenarioSpec spec = smallAggSpec();
  spec.seeds = 3;
  const ScenarioBatchResult seq = runScenarioBatch(spec, 1);
  const ScenarioBatchResult par = runScenarioBatch(spec, 3);
  ASSERT_EQ(seq.perSeed.size(), 3u);
  ASSERT_EQ(par.perSeed.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(seq.perSeed[i].seed, spec.seed0 + i);
    EXPECT_EQ(seq.perSeed[i].slots, par.perSeed[i].slots);
    EXPECT_EQ(seq.perSeed[i].decodes, par.perSeed[i].decodes);
    EXPECT_TRUE(seq.perSeed[i].metrics == par.perSeed[i].metrics);
    EXPECT_TRUE(seq.perSeed[i].delivered);
  }
  EXPECT_EQ(seq.failures(), 0);
  EXPECT_EQ(seq.deliveredCount(), 3);
}

TEST(ScenarioRunner, FadingRunsAreSeedDeterministic) {
  ScenarioSpec spec = smallAggSpec();
  spec.sinr.fading.model = FadingModel::RayleighLognormal;
  spec.sinr.fading.shadowSigmaDb = 3.0;
  const SeedResult a = runScenarioSeed(spec, 11);
  const SeedResult b = runScenarioSeed(spec, 11);
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.decodes, b.decodes);  // same seed => same decode trace
  EXPECT_EQ(a.metricOr("agg_value"), b.metricOr("agg_value"));
  EXPECT_EQ(a.delivered, b.delivered);

  const SeedResult c = runScenarioSeed(spec, 12);
  EXPECT_FALSE(a.slots == c.slots && a.decodes == c.decodes);  // new seed, new trace
}

TEST(ScenarioRunner, ExactAndNearFarAgreeUnderTheEngine) {
  // Dense instance where the far-field batching actually engages.  The
  // modes may differ in borderline decodes (documented contract), but
  // both must deliver the correct aggregate.
  ScenarioSpec spec = smallAggSpec();
  spec.deployment.n = 250;
  spec.deployment.side = 0.8;
  const SeedResult exact = runScenarioSeed(spec, 21);
  spec.sinr.mediumMode = MediumMode::NearFar;
  const SeedResult nearfar = runScenarioSeed(spec, 21);
  ASSERT_TRUE(exact.error.empty()) << exact.error;
  ASSERT_TRUE(nearfar.error.empty()) << nearfar.error;
  EXPECT_TRUE(exact.delivered);
  EXPECT_TRUE(nearfar.delivered);
  EXPECT_EQ(exact.metricOr("agg_value"), exact.metricOr("truth_value"));
  EXPECT_EQ(nearfar.metricOr("agg_value"), nearfar.metricOr("truth_value"));
  // Same seed, same values either way.
  EXPECT_EQ(exact.metricOr("truth_value"), nearfar.metricOr("truth_value"));
  EXPECT_NEAR(nearfar.decodeRate, exact.decodeRate, 0.25 * exact.decodeRate);
}

TEST(ScenarioRunner, StructureProtocolReportsCosts) {
  ScenarioSpec spec = smallAggSpec();
  spec.protocol = ProtocolKind::Structure;
  const SeedResult r = runScenarioSeed(spec, 31);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.delivered);
  EXPECT_GT(r.structureSlots, 0u);
  EXPECT_GT(r.slots, 0u);
  // Structure-only runs report clustering metrics, not aggregation ones.
  EXPECT_GE(r.metricOr("clusters"), 1.0);
  EXPECT_EQ(r.metrics.find("agg_value"), nullptr);
  EXPECT_EQ(r.validity, OutcomeValidity::Valid);
}

TEST(ScenarioRunner, FailuresAreCapturedNotThrown) {
  // runScenarioSeed is the unit the batch parallelizes, so it must trap
  // rather than propagate: an empty deployment (n = 0 bypasses the CLI's
  // validateScenario on purpose) becomes a SeedResult::error.
  ScenarioSpec spec = smallAggSpec();
  spec.deployment.n = 0;
  const SeedResult r = runScenarioSeed(spec, 41);
  EXPECT_FALSE(r.error.empty());
  EXPECT_FALSE(r.delivered);

  // And a batch containing only failures reports them instead of dying.
  spec.seeds = 2;
  const ScenarioBatchResult batch = runScenarioBatch(spec, 2);
  EXPECT_EQ(batch.failures(), 2);
  EXPECT_EQ(batch.deliveredCount(), 0);
}

}  // namespace
}  // namespace mcs
