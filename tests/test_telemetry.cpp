#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "test_support.h"

/// The telemetry subsystem: counter/timer determinism across thread
/// counts, the never-feeds-back contract (enabled vs disabled runs are
/// bit-identical), the bounded trace ring and its Chrome-JSON round trip,
/// and the thread-safe log helpers.
namespace mcs {
namespace {

/// Arms metrics around a test and restores the global disabled default
/// (the registry is process-wide; every other test expects it dark).
struct TelemetryGuard {
  explicit TelemetryGuard(bool metrics = true) {
    telemetry::resetMetrics();
    telemetry::setEnabled(metrics);
  }
  ~TelemetryGuard() {
    telemetry::setEnabled(false);
    telemetry::setTraceEnabled(false);
    telemetry::resetMetrics();
  }
};

/// A small mixed-intent workload for direct Medium runs.
struct MediumWorkload {
  std::vector<Vec2> pts;
  std::vector<Intent> intents;

  MediumWorkload(int n, int channels, std::uint64_t seed) {
    Rng rng(seed);
    pts = deployUniformSquare(n, 1.2, rng);
    intents.resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      const auto c = static_cast<ChannelId>(rng.below(static_cast<std::uint64_t>(channels)));
      intents[static_cast<std::size_t>(v)] =
          rng.bernoulli(0.1) ? Intent::transmit(c, {}) : Intent::listen(c);
    }
  }
};

// -------------------------------------------------------------- registry

TEST(TelemetryRegistry, IdsAreIdempotentAndDistinct) {
  const telemetry::CounterId a = telemetry::counterId("test.registry.a");
  const telemetry::CounterId b = telemetry::counterId("test.registry.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, telemetry::counterId("test.registry.a"));
  EXPECT_EQ(b, telemetry::counterId("test.registry.b"));
  // Counter and timer namespaces are independent.
  const telemetry::TimerId t = telemetry::timerId("test.registry.a");
  EXPECT_EQ(t, telemetry::timerId("test.registry.a"));
}

TEST(TelemetryRegistry, DisabledRecordsNothing) {
  telemetry::setEnabled(false);
  const telemetry::CounterId c = telemetry::counterId("test.disabled.counter");
  const telemetry::TimerId t = telemetry::timerId("test.disabled.timer");
  const telemetry::MetricsSnapshot before = telemetry::snapshotMetrics();
  telemetry::counterAdd(c, 7);
  { const telemetry::PhaseTimer timer(t); }
  const telemetry::MetricsSnapshot delta = telemetry::snapshotMetrics().diff(before);
  EXPECT_EQ(delta.counterOr("test.disabled.counter"), 0u);
  const telemetry::TimerSample* ts = delta.findTimer("test.disabled.timer");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->count, 0u);
}

TEST(TelemetryRegistry, CountersTimersAndDiff) {
  const TelemetryGuard guard;
  const telemetry::CounterId c = telemetry::counterId("test.basic.counter");
  const telemetry::TimerId t = telemetry::timerId("test.basic.timer");

  telemetry::counterAdd(c, 5);
  for (int i = 0; i < 3; ++i) {
    const telemetry::PhaseTimer timer(t);
  }
  const telemetry::MetricsSnapshot mid = telemetry::snapshotMetrics();
  EXPECT_EQ(mid.counterOr("test.basic.counter"), 5u);
  const telemetry::TimerSample* ts = mid.findTimer("test.basic.timer");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->count, 3u);
  EXPECT_GE(ts->totalSec, 0.0);
  EXPECT_GE(ts->maxSec, 0.0);

  telemetry::counterAdd(c, 2);
  { const telemetry::PhaseTimer timer(t); }
  const telemetry::MetricsSnapshot delta = telemetry::snapshotMetrics().diff(mid);
  EXPECT_EQ(delta.counterOr("test.basic.counter"), 2u);
  const telemetry::TimerSample* dts = delta.findTimer("test.basic.timer");
  ASSERT_NE(dts, nullptr);
  EXPECT_EQ(dts->count, 1u);

  // Snapshots are name-sorted (the determinism substrate).
  for (std::size_t i = 1; i < mid.counters.size(); ++i) {
    EXPECT_LT(mid.counters[i - 1].name, mid.counters[i].name);
  }
  for (std::size_t i = 1; i < mid.timers.size(); ++i) {
    EXPECT_LT(mid.timers[i - 1].name, mid.timers[i].name);
  }
}

TEST(TelemetryRegistry, SnapshotJsonShape) {
  const TelemetryGuard guard;
  telemetry::counterAdd(telemetry::counterId("test.json.counter"), 3);
  { const telemetry::PhaseTimer t(telemetry::timerId("test.json.timer")); }
  const Json j = telemetry::snapshotMetrics().toJson();
  // Round-trip through the parser: the export is real JSON.
  Json parsed;
  std::string err;
  ASSERT_TRUE(Json::parse(j.dump(), parsed, err)) << err;
  const Json* counters = parsed.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->numberAt("test.json.counter"), 3.0);
  const Json* timers = parsed.find("timers");
  ASSERT_NE(timers, nullptr);
  const Json* timer = timers->find("test.json.timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_DOUBLE_EQ(timer->numberAt("count"), 1.0);
  EXPECT_GE(timer->numberAt("total_sec"), 0.0);
}

// ---------------------------------------------- determinism across threads

/// Engine counters are sums of per-listener work: how the listener loop is
/// partitioned across lanes must not change the totals.
TEST(TelemetryDeterminism, MediumCountersThreadCountInvariant) {
  const MediumWorkload w(600, 2, 11);
  SinrParams params;
  params = params.withRange(1.0);

  const auto countersWithThreads = [&](int threads) {
    const TelemetryGuard guard;
    Medium medium(params, 2, threads);
    std::vector<Reception> rx;
    for (int slot = 0; slot < 5; ++slot) medium.resolveSlot(w.pts, w.intents, rx);
    return telemetry::snapshotMetrics();
  };
  const telemetry::MetricsSnapshot one = countersWithThreads(1);
  const telemetry::MetricsSnapshot four = countersWithThreads(4);

  ASSERT_EQ(one.counters.size(), four.counters.size());
  for (std::size_t i = 0; i < one.counters.size(); ++i) {
    EXPECT_EQ(one.counters[i].name, four.counters[i].name);
    EXPECT_EQ(one.counters[i].value, four.counters[i].value)
        << "counter " << one.counters[i].name << " depends on thread count";
  }
  EXPECT_EQ(one.counterOr("medium.slots"), 5u);
  EXPECT_GT(one.counterOr("medium.tx_intents"), 0u);
  EXPECT_GT(one.counterOr("medium.decode_candidates"), 0u);
}

TEST(TelemetryDeterminism, ScenarioBatchCountersThreadCountInvariant) {
  ScenarioSpec spec;
  std::string err;
  ASSERT_TRUE(applyScenarioKey(spec, "n", "150", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "channels", "2", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "protocol", "agg_max", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "seeds", "3", err)) << err;
  ASSERT_EQ(validateScenario(spec), "");

  const auto countersWithThreads = [&](int threads) {
    const TelemetryGuard guard;
    const ScenarioBatchResult batch = runScenarioBatch(spec, threads);
    EXPECT_EQ(batch.failures(), 0);
    return telemetry::snapshotMetrics();
  };
  const telemetry::MetricsSnapshot one = countersWithThreads(1);
  const telemetry::MetricsSnapshot three = countersWithThreads(3);

  ASSERT_EQ(one.counters.size(), three.counters.size());
  for (std::size_t i = 0; i < one.counters.size(); ++i) {
    EXPECT_EQ(one.counters[i].name, three.counters[i].name);
    EXPECT_EQ(one.counters[i].value, three.counters[i].value)
        << "counter " << one.counters[i].name << " depends on batch lanes";
  }
  // Timer *counts* are deterministic too (durations of course are not).
  for (const telemetry::TimerSample& t : one.timers) {
    const telemetry::TimerSample* other = three.findTimer(t.name);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(t.count, other->count) << "timer " << t.name;
  }
}

// ----------------------------------------- the never-feeds-back contract

/// Telemetry must be write-only: arming it cannot change a Reception.
/// Fading exercises the counter-keyed draw path where an accidental RNG
/// perturbation would show up immediately.
TEST(TelemetryDeterminism, EnabledRunBitIdenticalToDisabled) {
  const MediumWorkload w(400, 2, 29);
  SinrParams params;
  params = params.withRange(1.0);
  params.fading.model = FadingModel::RayleighLognormal;
  params.mediumMode = MediumMode::NearFar;

  const auto receptions = [&](bool withTelemetry) {
    const TelemetryGuard guard(withTelemetry);
    if (withTelemetry) telemetry::setTraceEnabled(true, 1024);
    Medium medium(params, 2);
    medium.seedFading(77);
    std::vector<Reception> rx;
    std::vector<Reception> all;
    for (int slot = 0; slot < 4; ++slot) {
      medium.resolveSlot(w.pts, w.intents, rx);
      all.insert(all.end(), rx.begin(), rx.end());
    }
    return all;
  };
  const std::vector<Reception> off = receptions(false);
  const std::vector<Reception> on = receptions(true);

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].received, on[i].received) << i;
    EXPECT_EQ(off[i].sinr, on[i].sinr) << i;              // bitwise: no tolerance
    EXPECT_EQ(off[i].signalPower, on[i].signalPower) << i;
    EXPECT_EQ(off[i].totalPower, on[i].totalPower) << i;
  }
}

// ------------------------------------------------------------------ trace

TEST(TelemetryTrace, RingBoundsAndChromeJsonRoundTrip) {
  const TelemetryGuard guard;
  telemetry::setTraceEnabled(true, 8);
  const telemetry::TraceNameId name = telemetry::traceName("test.trace.instant");
  const telemetry::TraceNameId span = telemetry::traceName("test.trace.span");
  for (int i = 0; i < 20; ++i) telemetry::traceInstant(name, i);
  { const telemetry::TraceScope scope(span, 42); }
  // 21 events through a ring of 8: only the last 8 survive.
  EXPECT_EQ(telemetry::traceEventCount(), 8u);

  const Json j = telemetry::traceToJson();
  Json parsed;
  std::string err;
  ASSERT_TRUE(Json::parse(j.dump(), parsed, err)) << err;
  const Json* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  ASSERT_EQ(events->items().size(), 8u);
  bool sawSpan = false;
  double prevTs = 0.0;
  for (const Json& e : events->items()) {
    ASSERT_TRUE(e.isObject());
    EXPECT_FALSE(e.stringAt("name").empty());
    const std::string ph = e.stringAt("ph");
    EXPECT_TRUE(ph == "X" || ph == "i");
    const Json* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_TRUE(ts->isNumber());
    EXPECT_GE(ts->asDouble(), prevTs);  // sorted by start time
    prevTs = ts->asDouble();
    if (ph == "X") {
      sawSpan = true;
      EXPECT_NE(e.find("dur"), nullptr);
      const Json* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->numberAt("v"), 42.0);
    }
  }
  EXPECT_TRUE(sawSpan);
  // The first surviving event is rebased to ts = 0.
  EXPECT_DOUBLE_EQ(events->items().front().numberAt("ts"), 0.0);

  // File round trip (what --trace-out writes and trace_check reads).
  const std::string path = testing::TempDir() + "mcs_trace_roundtrip.json";
  ASSERT_TRUE(telemetry::writeTraceFile(path, err)) << err;
  Json fromFile;
  ASSERT_TRUE(Json::parseFile(path, fromFile, err)) << err;
  ASSERT_NE(fromFile.find("traceEvents"), nullptr);
  EXPECT_EQ(fromFile.find("traceEvents")->items().size(), 8u);
  std::remove(path.c_str());
}

TEST(TelemetryTrace, SimulatorEmitsSlotSpans) {
  const TelemetryGuard guard;
  telemetry::setTraceEnabled(true, 4096);
  Network net = test::makeUniformNetwork(60, 1.0, 5);
  Simulator sim(net, 2, 5);
  for (int i = 0; i < 3; ++i) {
    sim.step([](NodeId) { return Intent::listen(0); }, [](NodeId, const Reception&) {});
  }
  const Json j = telemetry::traceToJson();
  const Json* events = j.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int slotSpans = 0;
  for (const Json& e : events->items()) {
    if (e.stringAt("name") == "slot" && e.stringAt("ph") == "X") ++slotSpans;
  }
  EXPECT_EQ(slotSpans, 3);
}

// -------------------------------------------------------------------- log

TEST(TelemetryLog, WarnOnceDeduplicatesByKey) {
  EXPECT_TRUE(logWarnOnce("test.warn_once.key_a", "first time: logged"));
  EXPECT_FALSE(logWarnOnce("test.warn_once.key_a", "second time: suppressed"));
  EXPECT_FALSE(logWarnOnce("test.warn_once.key_a", "still suppressed"));
  EXPECT_TRUE(logWarnOnce("test.warn_once.key_b", "different key: logged"));
}

}  // namespace
}  // namespace mcs
