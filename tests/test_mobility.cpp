#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "mobility/mobility.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "test_support.h"

/// The mobility & churn subsystem: spec plumbing, per-seed determinism,
/// thread-count invariance, model kinematics, churn edge cases, and the
/// drift metrics.
namespace mcs {
namespace {

// ---------------------------------------------------------------- plumbing

TEST(MobilitySpec, KeysParseValidateAndRoundTrip) {
  ScenarioSpec spec;
  std::string err;
  EXPECT_FALSE(spec.topology.dynamic());  // static default attaches nothing

  ASSERT_TRUE(applyScenarioKey(spec, "mobility", "random_waypoint", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "mobility_speed", "0.002", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "mobility_pause", "25", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "churn_departure_rate", "0.001", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "churn_arrival_rate", "0.01", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "mobility_sample_every", "16", err)) << err;
  EXPECT_EQ(spec.topology.mobility.kind, MobilityKind::RandomWaypoint);
  EXPECT_DOUBLE_EQ(spec.topology.mobility.speed, 0.002);
  EXPECT_EQ(spec.topology.mobility.pause, 25);
  EXPECT_TRUE(spec.topology.dynamic());
  EXPECT_EQ(validateScenario(spec), "");

  // Round trip through the canonical serialization.
  ScenarioSpec loaded;
  std::string kv = scenarioToKeyValues(spec);
  std::size_t pos = 0;
  while (pos < kv.size()) {
    const std::size_t eol = kv.find('\n', pos);
    const std::string line = kv.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t eq = line.find('=');
    ASSERT_NE(eq, std::string::npos);
    const std::string key = line.substr(0, eq - 1);
    const std::string value = line.substr(eq + 2);
    ASSERT_TRUE(applyScenarioKey(loaded, key, value, err)) << line << ": " << err;
  }
  EXPECT_EQ(scenarioToKeyValues(loaded), kv);

  // Rejections.
  EXPECT_FALSE(applyScenarioKey(spec, "mobility", "teleport", err));
  spec.topology.mobility.speed = -1.0;
  EXPECT_NE(validateScenario(spec), "");
  spec.topology.mobility.speed = 0.0;  // moving model without speed
  EXPECT_NE(validateScenario(spec), "");
  spec.topology.mobility.speed = 0.002;
  spec.topology.churn.departureRate = 1.5;  // not a probability
  EXPECT_NE(validateScenario(spec), "");
}

TEST(MobilitySpec, ModelListCoversEveryKind) {
  const auto models = mobilityModelList();
  ASSERT_EQ(models.size(), 4u);
  ScenarioSpec spec;
  std::string err;
  for (const MobilityModelInfo& info : models) {
    EXPECT_TRUE(applyScenarioKey(spec, "mobility", info.name, err)) << info.name;
    EXPECT_FALSE(std::string(info.description).empty());
  }
}

// ----------------------------------------------------------- determinism

ScenarioSpec mobileSpec(MobilityKind kind, double speed = 2e-3) {
  ScenarioSpec spec;
  spec.name = "test_mobile";
  spec.deployment.n = 150;
  spec.deployment.side = 1.0;
  spec.channels = 4;
  spec.protocol = ProtocolKind::AggregateMax;
  spec.seeds = 1;
  spec.topology.mobility.kind = kind;
  spec.topology.mobility.speed = speed;
  spec.topology.sampleEvery = 16;
  return spec;
}

TEST(MobilityDeterminism, PerSeedBitIdenticalTrajectories) {
  for (const MobilityKind kind :
       {MobilityKind::RandomWalk, MobilityKind::RandomWaypoint, MobilityKind::GroupReference}) {
    ScenarioSpec spec = mobileSpec(kind);
    spec.topology.churn.departureRate = 5e-4;
    spec.topology.churn.arrivalRate = 5e-3;
    const SeedResult a = runScenarioSeed(spec, 11);
    const SeedResult b = runScenarioSeed(spec, 11);
    ASSERT_TRUE(a.error.empty()) << toString(kind) << ": " << a.error;
    EXPECT_EQ(a.slots, b.slots) << toString(kind);
    EXPECT_EQ(a.decodes, b.decodes) << toString(kind);
    EXPECT_EQ(a.metrics, b.metrics) << toString(kind);

    const SeedResult c = runScenarioSeed(spec, 12);
    EXPECT_FALSE(a.slots == c.slots && a.decodes == c.decodes) << toString(kind);
  }
}

TEST(MobilityDeterminism, MediumThreadCountInvariance) {
  // The same mobile run on a 1-thread and a 4-thread Medium must produce
  // the identical decode trace and identical trajectories (the dynamics
  // advance is counter-based, outside the threaded listener loop).
  const auto run = [](int threads) {
    Network net = test::makeUniformNetwork(120, 1.0, 17);
    Simulator sim(net, 2, 99, threads);
    TopologyParams topo;
    topo.mobility.kind = MobilityKind::RandomWalk;
    topo.mobility.speed = 2e-3;
    topo.churn.departureRate = 1e-3;
    topo.churn.arrivalRate = 1e-2;
    sim.attachDynamics(topo);
    std::uint64_t decodes = 0;
    for (int t = 0; t < 120; ++t) {
      sim.step(
          [&](NodeId v) {
            return sim.rng(v).bernoulli(0.2)
                       ? Intent::transmit(static_cast<ChannelId>(v % 2), {})
                       : Intent::listen(static_cast<ChannelId>(v % 2));
          },
          [&](NodeId, const Reception& r) { decodes += r.received; });
    }
    std::vector<Vec2> pos(sim.positions().begin(), sim.positions().end());
    return std::pair(decodes, pos);
  };
  const auto [d1, p1] = run(1);
  const auto [d4, p4] = run(4);
  EXPECT_EQ(d1, d4);
  EXPECT_EQ(p1, p4);
}

TEST(MobilityDeterminism, DynamicNearFarIsSeedAndThreadDeterministic) {
  ScenarioSpec spec = mobileSpec(MobilityKind::RandomWalk);
  spec.deployment.n = 250;
  spec.deployment.side = 0.8;
  spec.sinr.mediumMode = MediumMode::NearFar;
  const SeedResult a = runScenarioSeed(spec, 21);
  const SeedResult b = runScenarioSeed(spec, 21);
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.decodes, b.decodes);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_TRUE(a.delivered);
}

TEST(MobilityDeterminism, DynamicHierIsSeedAndThreadDeterministic) {
  // The hierarchical far-field shares the dynamic grid maintenance path
  // with NearFar; its pyramid rebuild and fixed-order traversal must keep
  // mobile runs reproducible run-to-run just like the flat modes.
  ScenarioSpec spec = mobileSpec(MobilityKind::RandomWalk);
  spec.deployment.n = 250;
  spec.deployment.side = 0.8;
  spec.sinr.mediumMode = MediumMode::Hierarchical;
  const SeedResult a = runScenarioSeed(spec, 21);
  const SeedResult b = runScenarioSeed(spec, 21);
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.decodes, b.decodes);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_TRUE(a.delivered);
}

TEST(MobilityDeterminism, AttachingDynamicsLeavesProtocolStreamsUntouched) {
  // The dynamics keys are root forks, not draws: a node's protocol RNG
  // sequence must be identical with and without dynamics attached.
  Network net = test::makeUniformNetwork(30, 1.0, 5);
  Simulator plain(net, 2, 7);
  Simulator mobile(net, 2, 7);
  TopologyParams topo;
  topo.mobility.kind = MobilityKind::RandomWalk;
  topo.mobility.speed = 1e-3;
  mobile.attachDynamics(topo);
  for (NodeId v = 0; v < net.size(); ++v) {
    EXPECT_EQ(plain.rng(v)(), mobile.rng(v)());
  }
}

// ------------------------------------------------------------- kinematics

TEST(MobilityKinematics, WalkAndWaypointRespectSpeedAndBox) {
  for (const MobilityKind kind : {MobilityKind::RandomWalk, MobilityKind::RandomWaypoint}) {
    Network net = test::makeUniformNetwork(80, 1.0, 23);
    double loX = 1e30, loY = 1e30, hiX = -1e30, hiY = -1e30;
    for (const Vec2& p : net.positions()) {
      loX = std::min(loX, p.x);
      loY = std::min(loY, p.y);
      hiX = std::max(hiX, p.x);
      hiY = std::max(hiY, p.y);
    }
    Simulator sim(net, 1, 3);
    TopologyParams topo;
    topo.mobility.kind = kind;
    topo.mobility.speed = 5e-3;
    sim.attachDynamics(topo);
    std::vector<Vec2> prev(net.positions().begin(), net.positions().end());
    for (int t = 0; t < 200; ++t) {
      sim.step([](NodeId) { return Intent::idle(); }, [](NodeId, const Reception&) {});
      const std::span<const Vec2> cur = sim.positions();
      for (std::size_t v = 0; v < prev.size(); ++v) {
        // Per-slot displacement is bounded by the speed (reflection can
        // only shorten the straight-line distance).
        EXPECT_LE(dist(prev[v], cur[v]), topo.mobility.speed + 1e-12);
        EXPECT_GE(cur[v].x, loX - 1e-12);
        EXPECT_LE(cur[v].x, hiX + 1e-12);
        EXPECT_GE(cur[v].y, loY - 1e-12);
        EXPECT_LE(cur[v].y, hiY + 1e-12);
      }
      prev.assign(cur.begin(), cur.end());
    }
    // And the network actually moved.
    double moved = 0.0;
    for (std::size_t v = 0; v < prev.size(); ++v) moved += dist(prev[v], net.position(static_cast<NodeId>(v)));
    EXPECT_GT(moved, 0.0);
  }
}

TEST(MobilityKinematics, GroupMembersStayTethered) {
  Network net = test::makeUniformNetwork(90, 1.0, 31);
  Simulator sim(net, 1, 3);
  TopologyParams topo;
  topo.mobility.kind = MobilityKind::GroupReference;
  topo.mobility.speed = 4e-3;
  topo.mobility.groups = 5;
  topo.mobility.groupRadius = 0.2;
  sim.attachDynamics(topo);
  // The tether is soft (bounded pull rate), so initially-far members take
  // ~|offset| / (speed/2) slots to reel in; 700 covers the whole box.
  // Along the way no member may teleport: reference motion + member step
  // + tether pull bound per-slot displacement by 2 * speed.
  std::vector<Vec2> prev(net.positions().begin(), net.positions().end());
  for (int t = 0; t < 700; ++t) {
    sim.step([](NodeId) { return Intent::idle(); }, [](NodeId, const Reception&) {});
    const std::span<const Vec2> now = sim.positions();
    for (std::size_t v = 0; v < prev.size(); ++v) {
      ASSERT_LE(dist(prev[v], now[v]), 2.0 * topo.mobility.speed + 1e-12)
          << "slot " << t << " node " << v;
    }
    prev.assign(now.begin(), now.end());
  }
  // After enough slots every member has been pulled to within the tether
  // of its group's reference point; group spread is therefore bounded.
  const std::span<const Vec2> cur = sim.positions();
  for (int g = 0; g < topo.mobility.groups; ++g) {
    Vec2 centroid{};
    int members = 0;
    for (int v = g; v < net.size(); v += topo.mobility.groups) {
      centroid = centroid + cur[static_cast<std::size_t>(v)];
      ++members;
    }
    centroid = centroid * (1.0 / members);
    for (int v = g; v < net.size(); v += topo.mobility.groups) {
      // Steady state: within the tether plus one member step of slack
      // (the soft pull catches an overshoot on the next slot).
      EXPECT_LE(dist(cur[static_cast<std::size_t>(v)], centroid),
                2.0 * topo.mobility.groupRadius + topo.mobility.speed)
          << "group " << g << " node " << v;
    }
  }
}

// ------------------------------------------------------------------ churn

TEST(Churn, AllNodesDeadIsSafeAndRevivable) {
  Network net = test::makeUniformNetwork(40, 1.0, 13);
  Simulator sim(net, 1, 3);
  TopologyParams topo;
  topo.churn.departureRate = 1.0;  // everyone departs in slot 0
  sim.attachDynamics(topo);
  int intentCalls = 0;
  sim.step([&](NodeId) { ++intentCalls; return Intent::listen(0); },
           [](NodeId, const Reception&) {});
  EXPECT_EQ(intentCalls, 0);  // dead nodes get no protocol callbacks
  EXPECT_EQ(sim.aliveCount(), 0);
  EXPECT_EQ(sim.mediumStats().listens, 0u);
  EXPECT_FALSE(sim.alive(0));  // the sink departs too — and nothing throws

  // Certain arrival revives the whole network on the next slot.
  Simulator sim2(net, 1, 3);
  TopologyParams revive;
  revive.churn.departureRate = 1.0;
  revive.churn.arrivalRate = 1.0;
  sim2.attachDynamics(revive);
  sim2.step([](NodeId) { return Intent::listen(0); }, [](NodeId, const Reception&) {});
  EXPECT_EQ(sim2.aliveCount(), 0);
  sim2.step([](NodeId) { return Intent::listen(0); }, [](NodeId, const Reception&) {});
  EXPECT_EQ(sim2.aliveCount(), net.size());
  ASSERT_NE(sim2.dynamics(), nullptr);
  EXPECT_EQ(sim2.dynamics()->stats().departures, static_cast<std::uint64_t>(net.size()));
  EXPECT_EQ(sim2.dynamics()->stats().arrivals, static_cast<std::uint64_t>(net.size()));
}

TEST(Churn, SinkDepartureFailsSoftlyThroughTheRunner) {
  // A dead-on-arrival network (certain departure, no arrivals — the sink
  // included) must come back as a normal SeedResult, never a crash or a
  // hang.  Frozen protocol state may still self-elect dominators, so
  // `delivered` is not asserted; zero radio activity and zero survivors
  // are.
  ScenarioSpec spec;
  spec.deployment.n = 60;
  spec.deployment.side = 1.0;
  spec.channels = 2;
  spec.protocol = ProtocolKind::Structure;
  spec.topology.churn.departureRate = 1.0;
  const SeedResult r = runScenarioSeed(spec, 3);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.metricOr("alive_final", -1.0), 0.0);
  EXPECT_EQ(r.listens, 0u);
  EXPECT_EQ(r.transmissions, 0u);
}

TEST(Churn, ChainSamplerIsChurnGated) {
  // Dynamic chain runs sample through the scenario Simulator, so churn
  // actually gates the senders: the sampled slots advance the dynamics
  // and the drift metrics are real (static chain runs keep sampling on a
  // private Simulator, slots = 0, bit-identical to the pre-mobility
  // driver).
  ScenarioSpec spec;
  ASSERT_TRUE(ScenarioRegistry::find("mobile_chain", spec));
  spec.seeds = 1;
  const SeedResult r = runScenarioSeed(spec, spec.seed0);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.slots, static_cast<std::uint64_t>(spec.chainTrials));
  EXPECT_GT(r.metricOr("churn_departures") + r.metricOr("churn_arrivals"), 0.0);

  ScenarioSpec still = spec;
  still.topology = TopologyParams{};
  const SeedResult s = runScenarioSeed(still, spec.seed0);
  ASSERT_TRUE(s.error.empty()) << s.error;
  EXPECT_EQ(s.slots, 0u);
}

// ----------------------------------------------------------- drift metrics

TEST(DriftMetrics, ReportedAndSane) {
  ScenarioSpec spec = mobileSpec(MobilityKind::RandomWalk, 4e-3);
  const SeedResult r = runScenarioSeed(spec, 9);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_GT(r.metricOr("mean_displacement"), 0.0);
  EXPECT_GT(r.metricOr("edge_churn_per_slot"), 0.0);
  const double survival = r.metricOr("edge_survival", -1.0);
  EXPECT_GE(survival, 0.0);
  EXPECT_LT(survival, 1.0);  // at this speed some initial edges must die
  EXPECT_EQ(r.metricOr("alive_final"), spec.deployment.n);  // no churn configured
  EXPECT_NE(r.metrics.find("redelivered"), nullptr);  // aggregation adds re-delivery

  // Static runs carry none of this.
  ScenarioSpec still = mobileSpec(MobilityKind::Static, 0.0);
  still.topology.mobility.speed = 0.0;
  const SeedResult s = runScenarioSeed(still, 9);
  EXPECT_EQ(s.metrics.find("edge_survival"), nullptr);
  EXPECT_EQ(s.metrics.find("redelivered"), nullptr);
}

// ---------------------------------------------------------------- presets

TEST(MobilePresets, EveryProtocolKindHasOneAndItRuns) {
  bool covered[kNumProtocolKinds] = {};
  for (const std::string& name : ScenarioRegistry::names()) {
    if (name.rfind("mobile_", 0) != 0) continue;
    ScenarioSpec spec;
    ASSERT_TRUE(ScenarioRegistry::find(name, spec));
    EXPECT_TRUE(spec.topology.dynamic()) << name;
    covered[static_cast<int>(spec.protocol)] = true;
    spec.seeds = 1;
    const SeedResult a = runScenarioSeed(spec, spec.seed0);
    EXPECT_TRUE(a.error.empty()) << name << ": " << a.error;
    EXPECT_TRUE(a.delivered) << name;
    const SeedResult b = runScenarioSeed(spec, spec.seed0);
    EXPECT_EQ(a.slots, b.slots) << name;
    EXPECT_EQ(a.metrics, b.metrics) << name;
  }
  for (int k = 0; k < kNumProtocolKinds; ++k) {
    EXPECT_TRUE(covered[k]) << "no mobile preset for ProtocolKind "
                            << toString(static_cast<ProtocolKind>(k));
  }
}

}  // namespace
}  // namespace mcs
